//===- examples/unfamiliar_program.cpp - Exploring control flow (§6) ------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the worked example of paper §6: "A completely different use
/// of the profiler is to analyze the control flow of an unfamiliar
/// program."  The paper's scenario: you must change the output format of a
/// program you didn't write whose output portion has the shape
///
///     CALC1   CALC2   CALC3
///        \    /   \    /
///       FORMAT1   FORMAT2
///            \     /
///             WRITE
///
/// "Initially you look through the gprof output for the system call
/// WRITE.  The format routine you will need to change is probably among
/// the parents of the WRITE procedure..."  This example builds exactly
/// that program, profiles a run, walks the report the way the paper
/// narrates, and finally performs the paper's suggested fix: splitting
/// FORMAT2 so CALC2's output can be retargeted without touching CALC3.
///
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"
#include "core/GraphPrinter.h"
#include "runtime/Monitor.h"
#include "vm/CodeGen.h"
#include "vm/VM.h"

#include <cstdio>
#include <set>
#include <string>

using namespace gprof;

namespace {

const char *OriginalProgram = R"(
  var written = 0;

  fn WRITE(x) { written = written + 1; return x; }

  fn FORMAT1(x) { return WRITE(x * 10 + 1); }
  fn FORMAT2(x) { return WRITE(x * 100 + 2); }

  fn CALC1(n) {
    var i = 0;
    while (i < n) { FORMAT1(i); i = i + 1; }
    return 0;
  }
  fn CALC2(n) {
    var i = 0;
    while (i < n * 2) { FORMAT2(i); i = i + 1; }
    return 0;
  }
  fn CALC3(n) {
    var i = 0;
    while (i < n) { FORMAT1(i); FORMAT2(i); i = i + 1; }
    return 0;
  }

  fn main() {
    CALC1(40);
    CALC2(40);
    CALC3(40);
    return written;
  }
)";

/// The paper's fix: FORMAT2 split in two, CALC2 retargeted to the new
/// format while CALC3's output is untouched.
const char *SplitProgram = R"(
  var written = 0;

  fn WRITE(x) { written = written + 1; return x; }

  fn FORMAT1(x) { return WRITE(x * 10 + 1); }
  fn FORMAT2A(x) { return WRITE(x * 1000 + 9); } // the NEW format
  fn FORMAT2B(x) { return WRITE(x * 100 + 2); }  // the old format

  fn CALC1(n) {
    var i = 0;
    while (i < n) { FORMAT1(i); i = i + 1; }
    return 0;
  }
  fn CALC2(n) {
    var i = 0;
    while (i < n * 2) { FORMAT2A(i); i = i + 1; }
    return 0;
  }
  fn CALC3(n) {
    var i = 0;
    while (i < n) { FORMAT1(i); FORMAT2B(i); i = i + 1; }
    return 0;
  }

  fn main() {
    CALC1(40);
    CALC2(40);
    CALC3(40);
    return written;
  }
)";

ProfileReport profileSource(const char *Source) {
  CodeGenOptions CG;
  CG.EnableProfiling = true;
  Image Img = compileTLOrDie(Source, CG);
  Monitor Mon(Img.lowPc(), Img.highPc());
  VMOptions VO;
  VO.CyclesPerTick = 200;
  VM Machine(Img, VO);
  Machine.setHooks(&Mon);
  cantFail(Machine.run());
  // "the static call information is particularly useful here since the
  // test case you run probably will not exercise the entire program."
  AnalyzerOptions Opts;
  Opts.UseStaticArcs = true;
  return cantFail(analyzeImageProfile(Img, Mon.finish(), Opts));
}

/// Names of the parents of \p Name, with their arc counts.
std::set<std::string> parentsOf(const ProfileReport &R,
                                const std::string &Name) {
  std::set<std::string> Parents;
  uint32_t Fn = R.findFunction(Name);
  for (const ReportArc &A : R.Arcs)
    if (A.Child == Fn && !A.SelfArc)
      Parents.insert(R.Functions[A.Parent].Name);
  return Parents;
}

} // namespace

int main() {
  std::printf("Exploring an unfamiliar program with gprof (paper section 6)"
              "\n============================================================"
              "\n\n");
  ProfileReport R = profileSource(OriginalProgram);

  // Step 1 of the paper's narrative: find WRITE and look at its parents.
  std::printf("step 1: \"look through the gprof output for the system "
              "call WRITE\"\n\n%s\n",
              printCallGraphEntry(R, "WRITE").c_str());

  std::printf("step 2: \"the format routine ... is probably among the "
              "parents of WRITE\":\n");
  for (const std::string &P : parentsOf(R, "WRITE"))
    std::printf("    %s\n", P.c_str());

  std::printf("\nstep 3: \"look at the profile entry for each of the "
              "parents\" — FORMAT2's callers:\n");
  for (const std::string &P : parentsOf(R, "FORMAT2"))
    std::printf("    %s\n", P.c_str());
  std::printf("\n%s\n", printCallGraphEntry(R, "FORMAT2").c_str());

  std::printf("step 4: FORMAT2 serves both CALC2 and CALC3.  \"If you "
              "desire to change the\noutput of CALC2, but not CALC3, then "
              "formatting routine FORMAT2 needs to be\nsplit into two "
              "separate routines.\"  After the split and retargeting:\n\n");

  ProfileReport R2 = profileSource(SplitProgram);
  std::printf("%s\n", printCallGraphEntry(R2, "FORMAT2A").c_str());
  std::printf("%s\n", printCallGraphEntry(R2, "FORMAT2B").c_str());

  bool Ok = parentsOf(R2, "FORMAT2A") == std::set<std::string>{"CALC2"} &&
            parentsOf(R2, "FORMAT2B") == std::set<std::string>{"CALC3"};
  std::printf("verification: FORMAT2A is reached only from CALC2 and "
              "FORMAT2B only from CALC3: %s\n",
              Ok ? "yes" : "NO");
  return Ok ? 0 : 1;
}
