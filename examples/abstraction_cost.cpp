//===- examples/abstraction_cost.cpp - Comparing abstraction costs --------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's motivating use case (§1): "The purpose of the gprof
/// profiling tool is to help the user evaluate alternative implementations
/// of abstractions."  And its motivating complaint: "as we partitioned
/// operations across several functions to make them more general, the
/// time for an operation spread across the several functions" — so a flat
/// profile stops telling you what the *abstraction* costs.
///
/// Here an arithmetic abstraction (`mulmod`) is implemented two ways:
///  - variant A decomposes it into reusable helper routines (shift-and-add
///    multiplication built on `double_mod` and `add_mod`);
///  - variant B uses the machine's multiply directly.
///
/// The flat profile of variant A spreads the cost over the helpers; the
/// call graph profile re-assembles it under `mulmod`, making the two
/// variants directly comparable.
///
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"
#include "core/FlatPrinter.h"
#include "core/GraphPrinter.h"
#include "runtime/Monitor.h"
#include "vm/CodeGen.h"
#include "vm/VM.h"

#include <cstdio>

using namespace gprof;

namespace {

/// Shared driver: hashes a range of values through mulmod.
const char *DriverSource = R"(
  fn checksum(n) {
    var h = 7;
    var i = 1;
    while (i <= n) {
      h = mulmod(h, i, 99991) + 1;
      i = i + 1;
    }
    return h;
  }
  fn main() { return checksum(2500); }
)";

/// Variant A: mulmod as an abstraction over small reusable routines.
const char *VariantA = R"(
  fn add_mod(a, b, m) { return (a + b) % m; }
  fn double_mod(a, m) { return (a + a) % m; }
  fn mulmod(a, b, m) {
    // Shift-and-add multiplication: the abstraction is spread over
    // add_mod and double_mod.
    var result = 0;
    var x = a % m;
    var y = b;
    while (y > 0) {
      if (y % 2 == 1) { result = add_mod(result, x, m); }
      x = double_mod(x, m);
      y = y / 2;
    }
    return result;
  }
)";

/// Variant B: mulmod straight on the hardware multiplier.
const char *VariantB = R"(
  fn mulmod(a, b, m) { return (a * b) % m; }
)";

struct VariantResult {
  ProfileReport Report;
  int64_t Answer = 0;
  uint64_t Cycles = 0;
};

VariantResult profileVariant(const std::string &Source) {
  CodeGenOptions CG;
  CG.EnableProfiling = true;
  Image Img = compileTLOrDie(Source, CG);

  Monitor Mon(Img.lowPc(), Img.highPc());
  VMOptions VO;
  VO.CyclesPerTick = 500;
  VM Machine(Img, VO);
  Machine.setHooks(&Mon);
  RunResult Run = cantFail(Machine.run());

  VariantResult R;
  R.Report = cantFail(analyzeImageProfile(Img, Mon.finish()));
  R.Answer = Run.ExitValue;
  R.Cycles = Run.Cycles;
  return R;
}

double abstractionTotal(const ProfileReport &R, const std::string &Name) {
  uint32_t Fn = R.findFunction(Name);
  return Fn == ~0u ? 0.0 : R.Functions[Fn].totalTime();
}

} // namespace

int main() {
  std::printf("Evaluating two implementations of the mulmod abstraction\n");
  std::printf("========================================================\n");

  VariantResult A = profileVariant(std::string(VariantA) + DriverSource);
  VariantResult B = profileVariant(std::string(VariantB) + DriverSource);

  if (A.Answer != B.Answer) {
    std::fprintf(stderr, "variants disagree: %lld vs %lld\n",
                 static_cast<long long>(A.Answer),
                 static_cast<long long>(B.Answer));
    return 1;
  }
  std::printf("both variants compute %lld\n\n",
              static_cast<long long>(A.Answer));

  std::printf("--- variant A (layered helpers): flat profile ---\n");
  std::printf("    (note how the abstraction's time is spread across\n");
  std::printf("     mulmod, add_mod and double_mod)\n\n");
  FlatPrintOptions FP;
  FP.Brief = true;
  std::printf("%s\n", printFlatProfile(A.Report, FP).c_str());

  std::printf("--- variant A: the call graph entry for mulmod ---\n");
  std::printf("    (self + descendants re-assembles the abstraction's "
              "true cost)\n\n");
  std::printf("%s\n", printCallGraphEntry(A.Report, "mulmod").c_str());

  std::printf("--- comparison the paper's way: total time charged to the "
              "abstraction ---\n\n");
  double TotalA = abstractionTotal(A.Report, "mulmod");
  double TotalB = abstractionTotal(B.Report, "mulmod");
  std::printf("  variant A: mulmod self+descendants = %6.2fs of %6.2fs "
              "total (%5.1f%%), %llu cycles overall\n",
              TotalA, A.Report.TotalTime,
              100.0 * TotalA / A.Report.TotalTime,
              static_cast<unsigned long long>(A.Cycles));
  std::printf("  variant B: mulmod self+descendants = %6.2fs of %6.2fs "
              "total (%5.1f%%), %llu cycles overall\n",
              TotalB, B.Report.TotalTime,
              100.0 * TotalB / B.Report.TotalTime,
              static_cast<unsigned long long>(B.Cycles));
  std::printf("\n  => the call graph profile prices the abstraction as a "
              "unit: variant B's\n     mulmod is %.1fx cheaper, a fact no "
              "flat profile row of variant A shows.\n",
              TotalB > 0 ? TotalA / TotalB : 0.0);
  return 0;
}
