//===- examples/self_hosted.cpp - Native profiling with real compiler hooks ===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's mechanism on the host machine: this executable is compiled
/// with GCC's -finstrument-functions, so every function prologue calls
/// __cyg_profile_func_enter(callee, call_site) — handing the hostprof
/// runtime exactly the call-graph arc the paper's mcount derives from
/// return addresses — while an ITIMER_PROF timer samples the PC into a
/// histogram.  The collected data flows through the very same gmon format
/// and analyzer as the VM profiles.
///
/// Sample counts depend on scheduler behaviour and may be small in
/// constrained environments; arc counts are exact.
///
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"
#include "core/FlatPrinter.h"
#include "core/GraphPrinter.h"
#include "gmon/GmonFile.h"
#include "hostprof/HostProfiler.h"

#include <cstdint>
#include <cstdio>
#include <vector>

using namespace gprof;

//===----------------------------------------------------------------------===//
// The profiled workload.  Plain C++ functions; GCC instruments each
// prologue.  They must not be inlined or the arcs disappear, exactly as
// inline expansion makes real gprof output "more granular" (paper §6).
//===----------------------------------------------------------------------===//

#define NOINLINE __attribute__((noinline))

// External linkage (not an anonymous namespace): -rdynamic then exports
// these symbols so dladdr can name them at dump time.
NOINLINE uint64_t spinMix(uint64_t X, int Rounds) {
  for (int I = 0; I != Rounds; ++I) {
    X ^= X >> 13;
    X *= 0x9e3779b97f4a7c15ULL;
    X ^= X >> 31;
  }
  return X;
}

NOINLINE uint64_t hashBlock(uint64_t Seed) { return spinMix(Seed, 2500); }

NOINLINE uint64_t checksumRegion(uint64_t Base) {
  uint64_t Acc = 0;
  for (int I = 0; I != 60; ++I)
    Acc += hashBlock(Base + I);
  return Acc;
}

NOINLINE uint64_t lightTouch(uint64_t X) { return spinMix(X, 40); }

NOINLINE uint64_t runWorkload() {
  uint64_t Acc = 0;
  for (int Round = 0; Round != 220; ++Round) {
    Acc += checksumRegion(Acc + Round);
    Acc += lightTouch(Acc);
  }
  return Acc;
}

int main() {
  std::printf("Native self-profiling via -finstrument-functions + "
              "SIGPROF\n====================================================="
              "=======\n\n");

  host::HostProfilerOptions Opts;
  Opts.SampleMicros = 1000;
  if (Error E = host::start(Opts)) {
    // No histogram (e.g. /proc unavailable): fall back to arcs only.
    std::printf("note: %s; continuing with arcs only\n",
                E.message().c_str());
    host::HostProfilerOptions ArcsOnly;
    ArcsOnly.SampleHistogram = false;
    cantFail(host::start(ArcsOnly));
  }

  uint64_t Result = runWorkload();
  host::stop();

  std::printf("workload result: %llu\n",
              static_cast<unsigned long long>(Result));

  ProfileData Data = host::extract();
  std::printf("collected %zu distinct arcs, %llu PC samples\n\n",
              Data.Arcs.size(),
              static_cast<unsigned long long>(Data.Hist.totalSamples()));

  // Round-trip through the gmon container, as a real run would via
  // gmon.out on disk.
  Data = cantFail(readGmon(writeGmon(Data)));

  SymbolTable Syms = host::symbolize(Data);
  Analyzer An(std::move(Syms));
  auto Report = An.analyze(Data);
  if (!Report) {
    std::fprintf(stderr, "analysis failed: %s\n", Report.message().c_str());
    return 1;
  }

  FlatPrintOptions FP;
  FP.Brief = true;
  std::printf("%s\n", printFlatProfile(*Report, FP).c_str());

  GraphPrintOptions GP;
  GP.Brief = true;
  GP.PrintIndex = false;
  std::printf("%s", printCallGraph(*Report, GP).c_str());

  // Sanity: the hot arc checksumRegion -> hashBlock must be present with
  // the exact count 220 * 60.
  bool FoundHotArc = false;
  for (const FunctionEntry &F : Report->Functions) {
    if (F.Name.find("hashBlock") == std::string::npos)
      continue;
    FoundHotArc = F.Calls == 220 * 60;
    std::printf("\nhashBlock observed calls: %llu (expected %d)\n",
                static_cast<unsigned long long>(F.Calls), 220 * 60);
  }
  std::printf("%s\n", FoundHotArc
                          ? "native arc collection is exact."
                          : "note: symbol names unresolved or arc counts "
                            "unexpected (see above)");
  return 0;
}
