//===- examples/gprof_on_itself.cpp - "we have used gprof on itself" ------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Paper §6: "Of course, among the programs on which we used the new
/// profiler was the profiler itself. ... we have used gprof on itself;
/// eliminating, rewriting, and inline expanding routines, until reading
/// data files ... represents the dominating factor in its execution
/// time."
///
/// This example repeats the exercise: the analyzer's own sources (core +
/// graph + gmon) are recompiled into this binary with
/// -finstrument-functions, the hostprof runtime collects arcs and PC
/// samples while the analyzer chews through a large synthetic profile,
/// and the result is fed back through the same analyzer and printers —
/// gprof profiling gprof.
///
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"
#include "core/FlatPrinter.h"
#include "core/GraphPrinter.h"
#include "graph/Generators.h"
#include "hostprof/HostProfiler.h"
#include "support/Format.h"
#include "support/Random.h"

#include <cstdio>

using namespace gprof;

namespace {

/// A big workload for the analyzer: a 4000-routine graph with cycles.
void buildWorkload(SymbolTable &Syms, ProfileData &Data) {
  constexpr Address Base = 0x10000;
  constexpr uint64_t FuncSize = 64;
  CallGraph G = makeRandomGraph(4000, 16000, 50, 0.02, /*Seed=*/2026);
  SplitMix64 Rng(7);
  for (NodeId N = 0; N != G.numNodes(); ++N)
    Syms.addSymbol(G.nodeName(N), Base + N * FuncSize, FuncSize);
  cantFail(Syms.finalize());
  Data.TicksPerSecond = 60;
  for (ArcId A = 0; A != G.numArcs(); ++A) {
    const Arc &E = G.arc(A);
    Data.Arcs.push_back({Base + E.From * FuncSize + 10,
                         Base + E.To * FuncSize, E.Count});
  }
  for (NodeId N = 0; N != G.numNodes(); ++N)
    if (G.inArcs(N).empty())
      Data.Arcs.push_back({0, Base + N * FuncSize, 1});
  Histogram H(Base, Base + G.numNodes() * FuncSize, FuncSize);
  for (NodeId N = 0; N != G.numNodes(); ++N)
    for (uint64_t S = Rng.nextBelow(10); S != 0; --S)
      H.recordPc(Base + N * FuncSize + 1);
  Data.Hist = std::move(H);
}

} // namespace

int main() {
  std::printf("gprof on itself (paper section 6)\n"
              "=================================\n\n");

  SymbolTable WorkSyms;
  ProfileData WorkData;
  buildWorkload(WorkSyms, WorkData);
  std::printf("workload: analyzing a %zu-routine, %zu-arc profile, "
              "30 times\n\n",
              WorkSyms.size(), WorkData.Arcs.size());

  // Profile the analyzer analyzing.
  host::HostProfilerOptions Opts;
  Opts.SampleMicros = 500;
  if (Error E = host::start(Opts)) {
    std::printf("note: %s; continuing with arcs only\n",
                E.message().c_str());
    host::HostProfilerOptions ArcsOnly;
    ArcsOnly.SampleHistogram = false;
    cantFail(host::start(ArcsOnly));
  }

  double Checksum = 0;
  for (int Round = 0; Round != 30; ++Round) {
    SymbolTable Syms;
    ProfileData Data;
    buildWorkload(Syms, Data);
    Analyzer An(std::move(Syms));
    ProfileReport R = cantFail(An.analyze(Data));
    Checksum += R.TotalTime;
  }
  host::stop();
  std::printf("analyzer checksum: %.2f\n\n", Checksum);

  // Feed the self-profile back through the very same pipeline.
  ProfileData SelfData = host::extract();
  SymbolTable SelfSyms = host::symbolize(SelfData);
  Analyzer SelfAnalyzer(std::move(SelfSyms));
  auto SelfReport = SelfAnalyzer.analyze(SelfData);
  if (!SelfReport) {
    std::fprintf(stderr, "self-analysis failed: %s\n",
                 SelfReport.message().c_str());
    return 1;
  }

  std::printf("collected %zu arcs and %llu samples from the analyzer "
              "itself\n\n",
              SelfData.Arcs.size(),
              static_cast<unsigned long long>(
                  SelfData.Hist.totalSamples()));

  // The hottest analyzer internals, by the analyzer's own reckoning.
  std::printf("top of the analyzer's own flat profile:\n");
  std::printf("  %%time     self    calls  routine\n");
  int Shown = 0;
  for (uint32_t I : SelfReport->FlatOrder) {
    const FunctionEntry &F = SelfReport->Functions[I];
    if (F.isUnused() || Shown == 12)
      break;
    std::printf("  %5s %8.3f %8llu  %.60s\n",
                formatPercent(F.SelfTime, SelfReport->TotalTime).c_str(),
                F.SelfTime,
                static_cast<unsigned long long>(F.totalCalls()),
                F.Name.c_str());
    ++Shown;
  }

  // And the call-graph entry for the pipeline's entry point.
  for (const FunctionEntry &F : SelfReport->Functions) {
    if (F.Name.find("Analyzer::analyze") == std::string::npos)
      continue;
    std::printf("\ncall graph entry for the analysis pipeline:\n\n%s",
                printCallGraphEntry(*SelfReport, F.Name).c_str());
    break;
  }
  return 0;
}
