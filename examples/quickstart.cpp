//===- examples/quickstart.cpp - End-to-end tour of the public API --------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shortest path through the whole system:
///   1. compile a TL program with profiling prologues (--pg equivalent);
///   2. run it on the VM with a Monitor attached (mcount + PC sampling);
///   3. condense the data (the gmon.out step) and round-trip the file;
///   4. analyze and print the flat profile and the call graph profile.
///
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"
#include "core/FlatPrinter.h"
#include "core/GraphPrinter.h"
#include "gmon/GmonFile.h"
#include "runtime/Monitor.h"
#include "vm/CodeGen.h"
#include "vm/VM.h"

#include <cstdio>

using namespace gprof;

namespace {

/// A little program with the structure the paper cares about: layered
/// abstractions (main -> work -> helpers), a hot leaf, and recursion.
const char *ProgramSource = R"(
// Compute some Fibonacci numbers and a sum of squares.
fn fib(n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}

fn square(x) { return x * x; }

fn sum_of_squares(n) {
  var total = 0;
  var i = 1;
  while (i <= n) {
    total = total + square(i);
    i = i + 1;
  }
  return total;
}

fn work() {
  var acc = 0;
  acc = acc + fib(18);
  acc = acc + sum_of_squares(500);
  return acc;
}

fn main() {
  var result = work();
  print result;
  return 0;
}
)";

} // namespace

int main() {
  // 1. Compile with profiling prologues.
  CodeGenOptions CG;
  CG.EnableProfiling = true;
  Image Img = compileTLOrDie(ProgramSource, CG);
  std::printf("compiled %zu functions, %zu bytes of code\n",
              Img.Functions.size(), Img.Code.size());

  // 2. Run under the monitor.
  Monitor Mon(Img.lowPc(), Img.highPc());
  VMOptions VO;
  VO.CyclesPerTick = 1000; // Sample finely so short runs still have data.
  VM Machine(Img, VO);
  Machine.setHooks(&Mon);

  auto Result = Machine.run();
  if (!Result) {
    std::fprintf(stderr, "run failed: %s\n", Result.message().c_str());
    return 1;
  }
  std::printf("program printed %lld; executed %llu instructions "
              "(%llu cycles, %llu ticks)\n\n",
              static_cast<long long>(Result->Printed.front()),
              static_cast<unsigned long long>(Result->Instructions),
              static_cast<unsigned long long>(Result->Cycles),
              static_cast<unsigned long long>(Result->Ticks));

  // 3. Condense and round-trip through the gmon container, as the real
  //    runtime does through gmon.out.
  ProfileData Data = Mon.finish();
  std::vector<uint8_t> FileBytes = writeGmon(Data);
  auto Reloaded = readGmon(FileBytes);
  if (!Reloaded) {
    std::fprintf(stderr, "gmon round-trip failed: %s\n",
                 Reloaded.message().c_str());
    return 1;
  }

  // 4. Analyze and print both presentations.
  auto Report = analyzeImageProfile(Img, *Reloaded);
  if (!Report) {
    std::fprintf(stderr, "analysis failed: %s\n", Report.message().c_str());
    return 1;
  }

  std::printf("%s\n", printFlatProfile(*Report).c_str());
  std::printf("%s", printCallGraph(*Report).c_str());
  return 0;
}
