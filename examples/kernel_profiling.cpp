//===- examples/kernel_profiling.cpp - Profiling a long-running kernel ----===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The retrospective's kernel story: "Unlike user programs that could be
/// run to completion ... we had to be able to profile events of interest
/// in the kernel without taking the kernel down ... The programmer's
/// interface allowed us to turn the profiler on and off, extract the
/// profiling data, and reset the data."  And: "Because of the interactions
/// of the kernel's major subsystems, there were several large cycles in
/// the profiles ... We added an option to specify a set of arcs to be
/// removed from the analysis [and] a heuristic to help choose arcs."
///
/// This example drives a long-lived TL "kernel" (network / filesystem /
/// buffer-cache subsystems that call into each other, closing a large
/// cycle through a rare retry path) syscall by syscall while exercising
/// the Monitor control interface, then shows the cycle swallowing the
/// subsystems — and the cycle-breaking heuristic separating them again.
///
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"
#include "core/FlatPrinter.h"
#include "core/GraphPrinter.h"
#include "runtime/Monitor.h"
#include "vm/CodeGen.h"
#include "vm/VM.h"

#include <cstdio>

using namespace gprof;

namespace {

const char *KernelSource = R"(
  var packets = 0;
  var blocks = 0;

  // --- buffer cache subsystem ---
  fn buf_hash(k) { return (k * 2654435 + 7) % 1024; }
  fn buf_get(k) {
    var h = buf_hash(k);
    var spin = 0;
    while (spin < 8) { h = (h * 31 + k) % 4096; spin = spin + 1; }
    return h;
  }

  // --- filesystem subsystem ---
  fn fs_read(blk) {
    blocks = blocks + 1;
    return buf_get(blk) + blk;
  }
  fn fs_write(blk) {
    blocks = blocks + 1;
    var v = buf_get(blk);
    // Rare: a write under memory pressure pushes a packet to the
    // network-backed swap device — the arc that closes the big cycle.
    if (blk % 97 == 0) { net_output(blk); }
    return v;
  }

  // --- network subsystem ---
  fn net_checksum(p) {
    var sum = 0;
    var i = 0;
    while (i < 24) { sum = sum + (p + i) * 3; i = i + 1; }
    return sum % 65536;
  }
  fn net_input(p) {
    packets = packets + 1;
    var c = net_checksum(p);
    // Received blocks are written through the filesystem.
    return fs_write(p % 512) + c;
  }
  fn net_output(p) {
    packets = packets + 1;
    var c = net_checksum(p);
    // Rare: transmit records are journaled through the filesystem —
    // the arc back into fs_write that completes the large cycle.
    if (p % 89 == 0) { fs_write(p % 512 + 1); }
    return c;
  }

  // --- syscall layer ---
  fn sys_read(arg) { return fs_read(arg % 512); }
  fn sys_recv(arg) { return net_input(arg); }

  fn main() { return sys_read(1) + sys_recv(2); }
)";

} // namespace

int main() {
  std::printf("Profiling a running kernel through the monitor control "
              "interface\n=================================================="
              "==============\n\n");

  CodeGenOptions CG;
  CG.EnableProfiling = true;
  Image Img = compileTLOrDie(KernelSource, CG);

  Monitor Mon(Img.lowPc(), Img.highPc());
  VMOptions VO;
  VO.CyclesPerTick = 300;
  VM Kernel(Img, VO);
  Kernel.setHooks(&Mon);

  // Boot traffic arrives before anyone asked to profile: keep the
  // profiler off (moncontrol(0)); the kernel keeps running.
  Mon.control(false);
  for (int64_t I = 0; I != 500; ++I)
    cantFail(Kernel.call(I % 2 ? "sys_recv" : "sys_read", {I}));
  std::printf("boot traffic processed with profiling off: %zu arcs "
              "recorded (expected 0)\n",
              Mon.extract().Arcs.size());

  // An operator turns profiling on for a measurement window.
  Mon.control(true);
  for (int64_t I = 0; I != 3000; ++I)
    cantFail(Kernel.call(I % 2 ? "sys_recv" : "sys_read", {I}));
  ProfileData Window1 = Mon.extract(); // kgmon-style extract, no stop.
  std::printf("measurement window 1: %zu arcs, %llu samples (extracted "
              "without stopping)\n",
              Window1.Arcs.size(),
              static_cast<unsigned long long>(Window1.Hist.totalSamples()));

  // Reset and measure a second, different window.
  Mon.reset();
  for (int64_t I = 0; I != 3000; ++I)
    cantFail(Kernel.call("sys_recv", {I}));
  ProfileData Window2 = Mon.extract();
  std::printf("measurement window 2 (receive-only): %zu arcs, %llu "
              "samples\n\n",
              Window2.Arcs.size(),
              static_cast<unsigned long long>(Window2.Hist.totalSamples()));

  // Analysis without cycle breaking: fs_write -> net_output -> ... the
  // rare swap-out path fuses the subsystems into one cycle.
  ProfileReport Fused = cantFail(analyzeImageProfile(Img, Window2));
  std::printf("analysis of window 2 WITHOUT cycle breaking:\n");
  if (!Fused.Cycles.empty()) {
    std::printf("  cycle 1 has %zu members:",
                Fused.Cycles[0].Members.size());
    for (uint32_t M : Fused.Cycles[0].Members)
      std::printf(" %s", Fused.Functions[M].Name.c_str());
    std::printf("\n  -> \"it was impossible to get useful timing results "
                "for modules like the\n     networking stack\"\n\n");
  }

  // With the bounded heuristic: the low-count swap-out arc is deleted.
  AnalyzerOptions Opts;
  Opts.AutoBreakCycleBound = 4;
  ProfileReport Broken =
      cantFail(analyzeImageProfile(Img, Window2, Opts));
  std::printf("analysis WITH --break-cycles 4:\n");
  std::printf("  arcs deleted by the heuristic:");
  for (auto [From, To] : Broken.RemovedArcs)
    std::printf(" %s->%s", Broken.Functions[From].Name.c_str(),
                Broken.Functions[To].Name.c_str());
  std::printf("\n  cycles remaining: %zu\n\n", Broken.Cycles.size());

  std::printf("subsystem costs, now separable (self+descendants):\n");
  for (const char *Sub : {"net_input", "fs_write", "buf_get"}) {
    uint32_t Fn = Broken.findFunction(Sub);
    std::printf("  %-10s %6.2fs of %6.2fs (%5.1f%%)\n", Sub,
                Broken.Functions[Fn].totalTime(), Broken.TotalTime,
                100.0 * Broken.Functions[Fn].totalTime() /
                    Broken.TotalTime);
  }

  bool Ok = !Fused.Cycles.empty() && Broken.Cycles.empty() &&
            !Broken.RemovedArcs.empty();
  std::printf("\n%s\n", Ok ? "kernel profiling scenario reproduced."
                           : "UNEXPECTED: cycle structure not as described");
  return Ok ? 0 : 1;
}
