//===- gmon/ProfileData.h - Condensed profile data for one (or more) runs ===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The in-memory form of the data the monitoring run condenses to a file at
/// program exit (paper §3.2): the arc table — "the source and destination
/// addresses of the arc and the count of the number of times the arc was
/// traversed" — and the PC sample histogram.  ProfileData also implements
/// multi-run summing: "the profile data for several executions of a
/// program can be combined by the post-processing to provide a profile of
/// many executions" (§3).
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_GMON_PROFILEDATA_H
#define GPROF_GMON_PROFILEDATA_H

#include "gmon/Histogram.h"
#include "support/Error.h"

#include <cstdint>
#include <vector>

namespace gprof {

/// One condensed call-graph arc: a call site (the "from" PC, inside the
/// caller), the callee's entry address, and a traversal count.
struct ArcRecord {
  Address FromPc = 0; ///< Address of the call site, inside the caller.
  Address SelfPc = 0; ///< Entry address of the callee.
  uint64_t Count = 0; ///< Traversals observed.
};

/// Parent index of a depth-1 context-tree node (a routine entered from
/// outside any recorded context — typically the program entry).
inline constexpr uint32_t CctRootParent = 0xffffffffu;

/// One node of the calling-context tree: the routine entered at SelfPc,
/// called from the site FromPc, within the calling context identified by
/// the Parent node.  Where an arc record aggregates all traversals of a
/// (site, callee) pair, a context node keeps one counter per *path* from
/// the root — the ground truth that the paper's §6 propagation
/// approximates ("all calls to a routine cost the same").
///
/// In canonical form (canonicalizeContexts) the vector is a preorder
/// serialization: every node's Parent index is strictly less than its own
/// index (or CctRootParent), siblings are merged per (FromPc, SelfPc) key
/// and ordered by that key.
struct CctNode {
  uint32_t Parent = CctRootParent; ///< Index of the calling context.
  Address FromPc = 0;  ///< Call site inside the parent routine.
  Address SelfPc = 0;  ///< Entry address of the routine this context runs.
  uint64_t Calls = 0;  ///< Times this exact context was entered.
  uint64_t Ticks = 0;  ///< Samples landing while this context was innermost.
};

/// The complete condensed output of one or more profiled executions.
struct ProfileData {
  /// PC-sample histogram over the profiled text range.
  Histogram Hist;
  /// Arc table, one record per distinct (call site, callee) pair.
  std::vector<ArcRecord> Arcs;
  /// Sampling rate: clock ticks per second of program time.  Each sample
  /// accounts for 1/TicksPerSecond seconds.
  uint64_t TicksPerSecond = 60;
  /// Number of executions summed into this data (1 for a single run).
  uint32_t RunCount = 1;
  /// True if the runtime arc table overflowed during any contributing run
  /// (mcount's "tos overflow"): arc counts are then lower bounds.
  bool ArcTableOverflowed = false;
  /// Calling-context tree in canonical preorder (empty when contexts were
  /// not recorded).  Collapsing it per (FromPc, SelfPc) reproduces Arcs
  /// exactly; summing Ticks per routine reproduces the histogram's
  /// per-routine sample totals (the CCT metamorphic invariant,
  /// tests/metamorphic_test.cpp).
  std::vector<CctNode> Contexts;
  /// True if the runtime context-tree recorder hit its node cap in any
  /// contributing run: context counts are then lower bounds (dropped
  /// paths attribute to their nearest recorded ancestor).
  bool ContextTreeOverflowed = false;

  /// Seconds of profiled execution represented by the histogram.
  double sampledSeconds() const {
    if (TicksPerSecond == 0)
      return 0.0;
    return static_cast<double>(Hist.totalSamples()) /
           static_cast<double>(TicksPerSecond);
  }

  /// Adds \p Count traversals for (FromPc, SelfPc), merging with an
  /// existing record if present.  Amortized O(1): a lazily built hash
  /// index over (FromPc, SelfPc) replaces the historical linear scan, so
  /// summing M files of A arcs is O(M·A) rather than O(M·A²).  Counts
  /// saturate at UINT64_MAX (see saturatingAdd), tallied on the
  /// "gmon.arcs.saturated" telemetry counter.
  void addArc(Address FromPc, Address SelfPc, uint64_t Count);

  /// Sums \p Other into this profile (gprof -s).  Sampling rates must
  /// match; histogram geometries must match unless one side is empty, in
  /// which case the empty side adopts the other's geometry (a run that
  /// recorded arcs but no samples is still summable).
  Error merge(const ProfileData &Other);

  /// Total traversals recorded into the callee at \p SelfPc.  Served
  /// from a lazily built per-callee total index, not a table scan.
  uint64_t callsInto(Address SelfPc) const;

  /// Puts Arcs into canonical form: duplicate (FromPc, SelfPc) records
  /// are coalesced (saturating) and the table is sorted by (FromPc,
  /// SelfPc).  Two profiles holding the same logical arc multiset then
  /// serialize to identical bytes regardless of the order their arcs
  /// were discovered in — the property Monitor::extract() relies on to
  /// make a merged multi-thread snapshot byte-identical to a
  /// single-thread run of the same call sequence (docs/RUNTIME_MT.md).
  void canonicalizeArcs();

  /// Folds another context tree into Contexts: paths present in both
  /// trees coalesce into one node with summed (saturating) counters, and
  /// the result is re-emitted in canonical preorder.  \p Nodes must
  /// satisfy the structural invariant Parent < index (the form every
  /// recorder snapshot and every successful gmon read provides).
  void addContextTree(const std::vector<CctNode> &Nodes);

  /// Puts Contexts into canonical form: duplicate sibling (FromPc,
  /// SelfPc) nodes are coalesced (saturating) and the tree is re-emitted
  /// in preorder with siblings ordered by (FromPc, SelfPc) — the
  /// context-tree analogue of canonicalizeArcs, and the property that
  /// makes a merged multi-thread CCT snapshot byte-identical to a
  /// single-thread run of the same logical call sequence.
  void canonicalizeContexts();

  /// Drops the lazy arc indexes.  The indexes revalidate themselves when
  /// Arcs changes size or an entry moves, so most direct mutation of
  /// Arcs needs no call here; call it after mutating Count values in
  /// place on a profile that addArc or callsInto has already indexed.
  void invalidateArcIndex() const;

private:
  /// One slot of the open-addressing (from, self) -> position table.
  /// PosPlus1 == 0 marks an empty slot, so a zeroed table is valid.
  struct ArcSlot {
    Address FromPc;
    Address SelfPc;
    size_t PosPlus1;
  };
  /// One slot of the open-addressing callee -> total table.
  struct CalleeSlot {
    Address SelfPc;
    uint64_t Total;
    bool Used;
  };

  /// Lazy caches over Arcs: (from, self) -> position, and callee ->
  /// total.  Rebuilt whenever Arcs' size disagrees with IndexedArcs or a
  /// position lookup finds the wrong key (external code sorted or
  /// rebuilt the table).  Copies stay consistent: positions are
  /// positional, not pointers.
  ///
  /// Both are flat open-addressing tables (power-of-two capacity, linear
  /// probe, ≤50% load) rather than node-based unordered_maps: summing a
  /// store's worth of arcs through addArc used to pay one heap node plus
  /// a pointer chase per arc; now a probe is one or two contiguous loads
  /// and a miss inserts with zero allocation (docs/READPATH.md).
  void rebuildArcIndex() const;
  /// Slot index holding (FromPc, SelfPc), or the empty slot where it
  /// would be inserted.  Capacity must be nonzero.
  size_t arcProbe(Address FromPc, Address SelfPc) const;
  size_t calleeProbe(Address SelfPc) const;
  /// Doubles the respective table when its load factor reaches 1/2.
  void growArcSlots() const;
  void growCalleeSlots() const;
  /// Adds \p Delta (saturating) to the callee total for \p SelfPc.
  void calleeAdd(Address SelfPc, uint64_t Delta) const;

  mutable std::vector<ArcSlot> ArcSlots;
  mutable std::vector<CalleeSlot> CalleeSlots;
  mutable size_t ArcSlotsUsed = 0;
  mutable size_t CalleeSlotsUsed = 0;
  mutable size_t IndexedArcs = 0;
  mutable bool ArcIndexValid = false;
};

} // namespace gprof

#endif // GPROF_GMON_PROFILEDATA_H
