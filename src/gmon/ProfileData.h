//===- gmon/ProfileData.h - Condensed profile data for one (or more) runs ===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The in-memory form of the data the monitoring run condenses to a file at
/// program exit (paper §3.2): the arc table — "the source and destination
/// addresses of the arc and the count of the number of times the arc was
/// traversed" — and the PC sample histogram.  ProfileData also implements
/// multi-run summing: "the profile data for several executions of a
/// program can be combined by the post-processing to provide a profile of
/// many executions" (§3).
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_GMON_PROFILEDATA_H
#define GPROF_GMON_PROFILEDATA_H

#include "gmon/Histogram.h"
#include "support/Error.h"

#include <cstdint>
#include <vector>

namespace gprof {

/// One condensed call-graph arc: a call site (the "from" PC, inside the
/// caller), the callee's entry address, and a traversal count.
struct ArcRecord {
  Address FromPc = 0; ///< Address of the call site, inside the caller.
  Address SelfPc = 0; ///< Entry address of the callee.
  uint64_t Count = 0; ///< Traversals observed.
};

/// The complete condensed output of one or more profiled executions.
struct ProfileData {
  /// PC-sample histogram over the profiled text range.
  Histogram Hist;
  /// Arc table, one record per distinct (call site, callee) pair.
  std::vector<ArcRecord> Arcs;
  /// Sampling rate: clock ticks per second of program time.  Each sample
  /// accounts for 1/TicksPerSecond seconds.
  uint64_t TicksPerSecond = 60;
  /// Number of executions summed into this data (1 for a single run).
  uint32_t RunCount = 1;
  /// True if the runtime arc table overflowed during any contributing run
  /// (mcount's "tos overflow"): arc counts are then lower bounds.
  bool ArcTableOverflowed = false;

  /// Seconds of profiled execution represented by the histogram.
  double sampledSeconds() const {
    if (TicksPerSecond == 0)
      return 0.0;
    return static_cast<double>(Hist.totalSamples()) /
           static_cast<double>(TicksPerSecond);
  }

  /// Adds \p Count traversals for (FromPc, SelfPc), merging with an
  /// existing record if present.  Linear scan: intended for building test
  /// fixtures and merging, not for the hot recording path (the runtime's
  /// ArcHashTable owns that).
  void addArc(Address FromPc, Address SelfPc, uint64_t Count);

  /// Sums \p Other into this profile (gprof -s).  Histogram ranges and
  /// sampling rates must match.
  Error merge(const ProfileData &Other);

  /// Total traversals recorded into the callee at \p SelfPc.
  uint64_t callsInto(Address SelfPc) const;
};

} // namespace gprof

#endif // GPROF_GMON_PROFILEDATA_H
