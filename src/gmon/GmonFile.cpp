//===- gmon/GmonFile.cpp --------------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "gmon/GmonFile.h"

#include "support/BinaryStream.h"
#include "support/FileUtils.h"
#include "support/Format.h"
#include "support/MappedFile.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cstring>

using namespace gprof;

namespace {

constexpr char Magic[4] = {'G', 'M', 'O', 'N'};
constexpr uint32_t Version = 1;
/// Version 2 appends tagged extension sections after the arc table; it is
/// written only when there is a context tree to carry, so profiles without
/// one stay byte-identical to version 1 (content addresses and goldens
/// unchanged).
constexpr uint32_t VersionContexts = 2;

/// Extension-section tag of the calling-context tree ("CCTR" as a
/// little-endian u32).  Readers skip sections with tags they do not know.
constexpr uint32_t SectionTagContexts = 0x52544343;

/// Serialized size of one context-tree node:
/// parent u32 + frompc u64 + selfpc u64 + calls u64 + ticks u64.
constexpr uint64_t CctNodeBytes = 36;

/// Cap on nbuckets/narcs accepted from a file, guarding allocation against
/// corrupted length fields (a 1 GiB histogram is already implausible).
constexpr uint64_t MaxRecords = (1ULL << 30) / 8;

/// Cap on extension sections per file (one is defined today).
constexpr uint32_t MaxSections = 64;

/// Assembles a little-endian u64 from \p P.  Byte-by-byte assembly is
/// endian-safe and alignment-safe; on little-endian hosts compilers fold
/// it to a single 8-byte load, which is what makes the in-place bulk
/// decode loops below cheap.
inline uint64_t loadU64LE(const uint8_t *P) {
  uint64_t V = 0;
  for (unsigned I = 0; I != 8; ++I)
    V |= static_cast<uint64_t>(P[I]) << (8 * I);
  return V;
}

inline uint32_t loadU32LE(const uint8_t *P) {
  uint32_t V = 0;
  for (unsigned I = 0; I != 4; ++I)
    V |= static_cast<uint32_t>(P[I]) << (8 * I);
  return V;
}

/// Bounds-checked view over borrowed bytes for the in-place parser.  The
/// failure message is byte-identical to BinaryReader::checkAvailable so
/// the zero-copy reader and the reference reader report the same errors —
/// pinned by the differential corpus test.
struct ByteCursor {
  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;

  size_t remaining() const { return Size - Pos; }
  bool atEnd() const { return Pos == Size; }
  Error need(size_t N) const {
    if (Size - Pos < N)
      return Error::failure(format(
          "truncated input: need %zu bytes at offset %zu, have %zu", N, Pos,
          Size - Pos));
    return Error::success();
  }
  // Unchecked readers: the caller establishes availability with need().
  uint8_t u8() { return Data[Pos++]; }
  uint32_t u32() {
    uint32_t V = loadU32LE(Data + Pos);
    Pos += 4;
    return V;
  }
  uint64_t u64() {
    uint64_t V = loadU64LE(Data + Pos);
    Pos += 8;
    return V;
  }
};

} // namespace

std::vector<uint8_t> gprof::writeGmon(const ProfileData &Data) {
  const bool HasContexts = !Data.Contexts.empty();
  BinaryWriter W;
  W.writeBytes(reinterpret_cast<const uint8_t *>(Magic), sizeof(Magic));
  W.writeU32(HasContexts ? VersionContexts : Version);
  W.writeU64(Data.TicksPerSecond);
  W.writeU32(Data.RunCount);
  uint8_t Flags = Data.ArcTableOverflowed ? 1 : 0;
  if (HasContexts && Data.ContextTreeOverflowed)
    Flags |= 2;
  W.writeU8(Flags);

  const Histogram &H = Data.Hist;
  W.writeU64(H.lowPc());
  W.writeU64(H.highPc());
  W.writeU64(H.bucketSize());
  W.writeU64(H.numBuckets());
  for (size_t I = 0; I != H.numBuckets(); ++I)
    W.writeU64(H.bucketCount(I));

  W.writeU64(Data.Arcs.size());
  for (const ArcRecord &R : Data.Arcs) {
    W.writeU64(R.FromPc);
    W.writeU64(R.SelfPc);
    W.writeU64(R.Count);
  }

  if (HasContexts) {
    W.writeU32(1); // extension section count
    W.writeU32(SectionTagContexts);
    W.writeU64(8 + Data.Contexts.size() * CctNodeBytes);
    W.writeU64(Data.Contexts.size());
    for (const CctNode &N : Data.Contexts) {
      W.writeU32(N.Parent);
      W.writeU64(N.FromPc);
      W.writeU64(N.SelfPc);
      W.writeU64(N.Calls);
      W.writeU64(N.Ticks);
    }
  }
  return W.takeBytes();
}

Expected<ProfileData> gprof::readGmon(const std::vector<uint8_t> &Bytes) {
  return readGmon(Bytes.data(), Bytes.size(), GmonReadOptions{}, nullptr);
}

Expected<ProfileData> gprof::readGmon(const std::vector<uint8_t> &Bytes,
                                      const GmonReadOptions &Opts,
                                      GmonSalvage *Salvage) {
  return readGmon(Bytes.data(), Bytes.size(), Opts, Salvage);
}

Expected<ProfileData> gprof::readGmon(const uint8_t *Bytes, size_t Size,
                                      const GmonReadOptions &Opts,
                                      GmonSalvage *Salvage) {
  GmonSalvage LocalSalvage;
  GmonSalvage &S = Salvage ? *Salvage : LocalSalvage;
  S = GmonSalvage{};
  ByteCursor R{Bytes, Size};

  // Publishes the salvage tallies once the tolerant path kept a damaged
  // file.  Counters, not gauges: the tallies derive from the bytes alone.
  auto NoteDamage = [&S](std::string Note) {
    S.Damaged = true;
    if (S.Note.empty())
      S.Note = std::move(Note);
  };
  auto FinishSalvaged = [&S](ProfileData Data) -> Expected<ProfileData> {
    if (S.Damaged) {
      telemetry::counter("gmon.read.salvaged_files").add(1);
      telemetry::counter("gmon.read.salvaged_arcs").add(S.SalvagedArcs);
      telemetry::counter("gmon.read.dropped_arcs").add(S.DroppedArcs);
      telemetry::counter("gmon.read.dropped_buckets").add(S.DroppedBuckets);
      telemetry::counter("gmon.read.dropped_contexts").add(S.DroppedContexts);
    }
    return Data;
  };

  if (Error E = R.need(sizeof(Magic)))
    return E;
  if (std::memcmp(R.Data + R.Pos, Magic, sizeof(Magic)) != 0)
    return Error::failure("not a gmon file: bad magic");
  R.Pos += sizeof(Magic);

  if (Error E = R.need(4))
    return E;
  uint32_t Ver = R.u32();
  if (Ver != Version && Ver != VersionContexts)
    return Error::failure(
        format("unsupported gmon version %u (expected %u)", Ver, Version));

  ProfileData Data;
  if (Error E = R.need(8))
    return E;
  uint64_t Hz = R.u64();
  if (Hz == 0)
    return Error::failure("gmon file has zero sampling rate");
  Data.TicksPerSecond = Hz;

  if (Error E = R.need(4))
    return E;
  uint32_t Runs = R.u32();
  if (Runs == 0)
    return Error::failure("gmon file records zero runs");
  Data.RunCount = Runs;

  if (Error E = R.need(1))
    return E;
  uint8_t Flags = R.u8();
  Data.ArcTableOverflowed = (Flags & 1) != 0;
  if (Ver >= VersionContexts)
    Data.ContextTreeOverflowed = (Flags & 2) != 0;

  // The histogram geometry words are checked one at a time so a cut
  // inside the header reports the same offset the reference reader does.
  if (Error E = R.need(8))
    return E;
  uint64_t LowPc = R.u64();
  if (Error E = R.need(8))
    return E;
  uint64_t HighPc = R.u64();
  if (Error E = R.need(8))
    return E;
  uint64_t BucketSize = R.u64();
  if (Error E = R.need(8))
    return E;
  uint64_t NumBuckets = R.u64();
  if (NumBuckets > MaxRecords)
    return Error::failure(
        format("gmon histogram implausibly large (%llu buckets)",
               static_cast<unsigned long long>(NumBuckets)));
  // Validate the length against the bytes actually present before
  // allocating, so corrupted counts fail cleanly instead of exhausting
  // memory.  Tolerant mode treats the shortfall as a torn tail instead
  // and keeps the buckets that made it to disk.
  if (!Opts.Tolerant && NumBuckets * 8 > R.remaining())
    return Error::failure("gmon histogram longer than the file");

  if (NumBuckets != 0) {
    if (HighPc <= LowPc || BucketSize == 0)
      return Error::failure("gmon histogram has an invalid address range");
    // Check the range-implied bucket count arithmetically (overflow-free)
    // before constructing — a corrupt HighPc must not drive a huge
    // allocation.
    uint64_t Span = HighPc - LowPc;
    uint64_t Implied = Span / BucketSize + (Span % BucketSize != 0);
    if (Implied != NumBuckets)
      return Error::failure(
          format("gmon histogram bucket count mismatch: header says %llu, "
                 "range implies %llu",
                 static_cast<unsigned long long>(NumBuckets),
                 static_cast<unsigned long long>(Implied)));
    Histogram H(LowPc, HighPc, BucketSize);
    // Bulk in-place decode: every whole 8-byte bucket still in the span.
    // Strict mode already proved all of them fit; tolerant mode keeps the
    // intact prefix and notes the torn tail.
    size_t Whole = H.numBuckets();
    if (R.remaining() / 8 < Whole) {
      Whole = R.remaining() / 8;
      NoteDamage(format("histogram truncated after %zu of %zu buckets",
                        Whole, H.numBuckets()));
    }
    const uint8_t *P = R.Data + R.Pos;
    for (size_t I = 0; I != Whole; ++I, P += 8)
      H.setBucketCount(I, loadU64LE(P));
    R.Pos += Whole * 8;
    S.SalvagedBuckets = Whole;
    S.DroppedBuckets = H.numBuckets() - Whole;
    Data.Hist = std::move(H);
    // A cut inside the counts leaves no room for an arc table; anything
    // left in the stream is the torn bucket, not records.
    if (S.DroppedBuckets != 0)
      return FinishSalvaged(std::move(Data));
  }

  if (Opts.Tolerant && R.remaining() < 8) {
    NoteDamage("arc table count truncated");
    return FinishSalvaged(std::move(Data));
  }
  if (Error E = R.need(8))
    return E;
  uint64_t NumArcs = R.u64();
  if (NumArcs > MaxRecords)
    return Error::failure(
        format("gmon arc table implausibly large (%llu records)",
               static_cast<unsigned long long>(NumArcs)));
  uint64_t WholeArcs = NumArcs;
  if (NumArcs * 24 > R.remaining()) {
    if (!Opts.Tolerant)
      return Error::failure("gmon arc table longer than the file");
    WholeArcs = R.remaining() / 24;
    NoteDamage(format("arc table truncated after %llu of %llu records",
                      static_cast<unsigned long long>(WholeArcs),
                      static_cast<unsigned long long>(NumArcs)));
  }
  // Bulk in-place decode of the arc table — the hot loop of a store-wide
  // read.  Records are viewed straight out of the mapping: three folded
  // loads per arc, one pre-sized vector, no BinaryStream, no byte copy.
  Data.Arcs.resize(static_cast<size_t>(WholeArcs));
  const uint8_t *P = R.Data + R.Pos;
  for (uint64_t I = 0; I != WholeArcs; ++I, P += 24) {
    ArcRecord &A = Data.Arcs[static_cast<size_t>(I)];
    A.FromPc = loadU64LE(P);
    A.SelfPc = loadU64LE(P + 8);
    A.Count = loadU64LE(P + 16);
  }
  R.Pos += static_cast<size_t>(WholeArcs) * 24;
  S.SalvagedArcs = WholeArcs;
  S.DroppedArcs = NumArcs - WholeArcs;
  // The bytes after the last whole record are the torn record, not
  // trailing junk; skip the trailing check for a truncated table.
  if (S.DroppedArcs != 0)
    return FinishSalvaged(std::move(Data));

  if (Ver >= VersionContexts) {
    if (Opts.Tolerant && R.remaining() < 4) {
      NoteDamage("extension section count truncated");
      return FinishSalvaged(std::move(Data));
    }
    if (Error E = R.need(4))
      return E;
    uint32_t NumSections = R.u32();
    if (NumSections > MaxSections)
      return Error::failure(
          format("gmon extension section count implausibly large (%u)",
                 NumSections));
    bool SeenContexts = false;
    for (uint32_t SI = 0; SI != NumSections; ++SI) {
      if (Opts.Tolerant && R.remaining() < 4) {
        NoteDamage(format("extension section header truncated "
                          "(section %u of %u)",
                          SI, NumSections));
        return FinishSalvaged(std::move(Data));
      }
      if (Error E = R.need(4))
        return E;
      uint32_t Tag = R.u32();
      if (Opts.Tolerant && R.remaining() < 8) {
        NoteDamage(format("extension section header truncated "
                          "(section %u of %u)",
                          SI, NumSections));
        return FinishSalvaged(std::move(Data));
      }
      if (Error E = R.need(8))
        return E;
      uint64_t Len = R.u64();
      const bool Truncated = Len > R.remaining();
      if (Truncated && !Opts.Tolerant)
        return Error::failure("gmon extension section longer than the file");
      if (Tag != SectionTagContexts) {
        // Forward compatibility: a section this reader does not know is
        // skipped whole, so older binaries read newer files cleanly.
        if (Truncated) {
          NoteDamage(format("unknown extension section 0x%08x truncated",
                            Tag));
          return FinishSalvaged(std::move(Data));
        }
        telemetry::counter("gmon.read.skipped_sections").add(1);
        R.Pos += static_cast<size_t>(Len);
        continue;
      }
      if (SeenContexts)
        return Error::failure("duplicate gmon context tree section");
      SeenContexts = true;
      uint64_t Avail = Truncated ? R.remaining() : Len;
      if (Avail < 8) {
        if (!Opts.Tolerant || !Truncated)
          return Error::failure("gmon context tree section too small");
        NoteDamage("context tree node count truncated");
        return FinishSalvaged(std::move(Data));
      }
      uint64_t NumNodes = R.u64();
      if (NumNodes > MaxRecords)
        return Error::failure(
            format("gmon context tree implausibly large (%llu nodes)",
                   static_cast<unsigned long long>(NumNodes)));
      // The section length and the in-payload node count must agree; a
      // mismatch is a lying header, rejected in both modes.
      if (Len != 8 + NumNodes * CctNodeBytes)
        return Error::failure("gmon context tree section length mismatch");
      uint64_t WholeNodes = NumNodes;
      if (Truncated) {
        WholeNodes = (Avail - 8) / CctNodeBytes;
        NoteDamage(format("context tree truncated after %llu of %llu nodes",
                          static_cast<unsigned long long>(WholeNodes),
                          static_cast<unsigned long long>(NumNodes)));
      }
      Data.Contexts.resize(static_cast<size_t>(WholeNodes));
      const uint8_t *CP = R.Data + R.Pos;
      for (uint64_t I = 0; I != WholeNodes; ++I, CP += CctNodeBytes) {
        CctNode &N = Data.Contexts[static_cast<size_t>(I)];
        N.Parent = loadU32LE(CP);
        N.FromPc = loadU64LE(CP + 4);
        N.SelfPc = loadU64LE(CP + 12);
        N.Calls = loadU64LE(CP + 20);
        N.Ticks = loadU64LE(CP + 28);
        // Structural invariant: parents precede children.  A violation is
        // corruption (it would let downstream accumulation loop), not
        // truncation, so both modes reject.
        if (N.Parent != CctRootParent && N.Parent >= I)
          return Error::failure(
              format("gmon context tree node %llu has invalid parent %u",
                     static_cast<unsigned long long>(I), N.Parent));
      }
      R.Pos += static_cast<size_t>(WholeNodes) * CctNodeBytes;
      S.SalvagedContexts = WholeNodes;
      S.DroppedContexts = NumNodes - WholeNodes;
      if (S.DroppedContexts != 0)
        return FinishSalvaged(std::move(Data));
    }
  }

  if (!R.atEnd()) {
    if (!Opts.Tolerant)
      return Error::failure(
          format("%zu trailing bytes after gmon data", R.remaining()));
    S.TrailingBytes = R.remaining();
    NoteDamage(format("%zu trailing bytes ignored after gmon data",
                      R.remaining()));
  }
  return FinishSalvaged(std::move(Data));
}

Expected<ProfileData>
gprof::readGmonReference(const std::vector<uint8_t> &Bytes,
                         const GmonReadOptions &Opts, GmonSalvage *Salvage) {
  GmonSalvage LocalSalvage;
  GmonSalvage &S = Salvage ? *Salvage : LocalSalvage;
  S = GmonSalvage{};
  BinaryReader R(Bytes);

  auto NoteDamage = [&S](std::string Note) {
    S.Damaged = true;
    if (S.Note.empty())
      S.Note = std::move(Note);
  };
  auto FinishSalvaged = [&S](ProfileData Data) -> Expected<ProfileData> {
    if (S.Damaged) {
      telemetry::counter("gmon.read.salvaged_files").add(1);
      telemetry::counter("gmon.read.salvaged_arcs").add(S.SalvagedArcs);
      telemetry::counter("gmon.read.dropped_arcs").add(S.DroppedArcs);
      telemetry::counter("gmon.read.dropped_buckets").add(S.DroppedBuckets);
      telemetry::counter("gmon.read.dropped_contexts").add(S.DroppedContexts);
    }
    return Data;
  };

  auto MagicBytes = R.readBytes(sizeof(Magic));
  if (!MagicBytes)
    return MagicBytes.takeError();
  if (!std::equal(MagicBytes->begin(), MagicBytes->end(), Magic))
    return Error::failure("not a gmon file: bad magic");

  auto Ver = R.readU32();
  if (!Ver)
    return Ver.takeError();
  if (*Ver != Version && *Ver != VersionContexts)
    return Error::failure(
        format("unsupported gmon version %u (expected %u)", *Ver, Version));

  ProfileData Data;
  auto Hz = R.readU64();
  if (!Hz)
    return Hz.takeError();
  if (*Hz == 0)
    return Error::failure("gmon file has zero sampling rate");
  Data.TicksPerSecond = *Hz;

  auto Runs = R.readU32();
  if (!Runs)
    return Runs.takeError();
  if (*Runs == 0)
    return Error::failure("gmon file records zero runs");
  Data.RunCount = *Runs;

  auto Flags = R.readU8();
  if (!Flags)
    return Flags.takeError();
  Data.ArcTableOverflowed = (*Flags & 1) != 0;
  if (*Ver >= VersionContexts)
    Data.ContextTreeOverflowed = (*Flags & 2) != 0;

  auto LowPc = R.readU64();
  if (!LowPc)
    return LowPc.takeError();
  auto HighPc = R.readU64();
  if (!HighPc)
    return HighPc.takeError();
  auto BucketSize = R.readU64();
  if (!BucketSize)
    return BucketSize.takeError();
  auto NumBuckets = R.readU64();
  if (!NumBuckets)
    return NumBuckets.takeError();
  if (*NumBuckets > MaxRecords)
    return Error::failure(
        format("gmon histogram implausibly large (%llu buckets)",
               static_cast<unsigned long long>(*NumBuckets)));
  if (!Opts.Tolerant && *NumBuckets * 8 > R.remaining())
    return Error::failure("gmon histogram longer than the file");

  if (*NumBuckets != 0) {
    if (*HighPc <= *LowPc || *BucketSize == 0)
      return Error::failure("gmon histogram has an invalid address range");
    uint64_t Span = *HighPc - *LowPc;
    uint64_t Implied = Span / *BucketSize + (Span % *BucketSize != 0);
    if (Implied != *NumBuckets)
      return Error::failure(
          format("gmon histogram bucket count mismatch: header says %llu, "
                 "range implies %llu",
                 static_cast<unsigned long long>(*NumBuckets),
                 static_cast<unsigned long long>(Implied)));
    Histogram H(*LowPc, *HighPc, *BucketSize);
    for (size_t I = 0; I != H.numBuckets(); ++I) {
      if (Opts.Tolerant && R.remaining() < 8) {
        NoteDamage(format("histogram truncated after %zu of %zu buckets",
                          I, H.numBuckets()));
        break;
      }
      auto C = R.readU64();
      if (!C)
        return C.takeError();
      H.setBucketCount(I, *C);
      ++S.SalvagedBuckets;
    }
    S.DroppedBuckets = H.numBuckets() - S.SalvagedBuckets;
    Data.Hist = std::move(H);
    if (S.DroppedBuckets != 0)
      return FinishSalvaged(std::move(Data));
  }

  if (Opts.Tolerant && R.remaining() < 8) {
    NoteDamage("arc table count truncated");
    return FinishSalvaged(std::move(Data));
  }
  auto NumArcs = R.readU64();
  if (!NumArcs)
    return NumArcs.takeError();
  if (*NumArcs > MaxRecords)
    return Error::failure(
        format("gmon arc table implausibly large (%llu records)",
               static_cast<unsigned long long>(*NumArcs)));
  uint64_t WholeArcs = *NumArcs;
  if (*NumArcs * 24 > R.remaining()) {
    if (!Opts.Tolerant)
      return Error::failure("gmon arc table longer than the file");
    WholeArcs = R.remaining() / 24;
    NoteDamage(format("arc table truncated after %llu of %llu records",
                      static_cast<unsigned long long>(WholeArcs),
                      static_cast<unsigned long long>(*NumArcs)));
  }
  Data.Arcs.reserve(static_cast<size_t>(WholeArcs));
  for (uint64_t I = 0; I != WholeArcs; ++I) {
    auto FromPc = R.readU64();
    if (!FromPc)
      return FromPc.takeError();
    auto SelfPc = R.readU64();
    if (!SelfPc)
      return SelfPc.takeError();
    auto Count = R.readU64();
    if (!Count)
      return Count.takeError();
    Data.Arcs.push_back({*FromPc, *SelfPc, *Count});
  }
  S.SalvagedArcs = WholeArcs;
  S.DroppedArcs = *NumArcs - WholeArcs;
  if (S.DroppedArcs != 0)
    return FinishSalvaged(std::move(Data));

  if (*Ver >= VersionContexts) {
    if (Opts.Tolerant && R.remaining() < 4) {
      NoteDamage("extension section count truncated");
      return FinishSalvaged(std::move(Data));
    }
    auto NumSections = R.readU32();
    if (!NumSections)
      return NumSections.takeError();
    if (*NumSections > MaxSections)
      return Error::failure(
          format("gmon extension section count implausibly large (%u)",
                 *NumSections));
    bool SeenContexts = false;
    for (uint32_t SI = 0; SI != *NumSections; ++SI) {
      if (Opts.Tolerant && R.remaining() < 4) {
        NoteDamage(format("extension section header truncated "
                          "(section %u of %u)",
                          SI, *NumSections));
        return FinishSalvaged(std::move(Data));
      }
      auto Tag = R.readU32();
      if (!Tag)
        return Tag.takeError();
      if (Opts.Tolerant && R.remaining() < 8) {
        NoteDamage(format("extension section header truncated "
                          "(section %u of %u)",
                          SI, *NumSections));
        return FinishSalvaged(std::move(Data));
      }
      auto Len = R.readU64();
      if (!Len)
        return Len.takeError();
      const bool Truncated = *Len > R.remaining();
      if (Truncated && !Opts.Tolerant)
        return Error::failure("gmon extension section longer than the file");
      if (*Tag != SectionTagContexts) {
        if (Truncated) {
          NoteDamage(format("unknown extension section 0x%08x truncated",
                            *Tag));
          return FinishSalvaged(std::move(Data));
        }
        telemetry::counter("gmon.read.skipped_sections").add(1);
        auto Skipped = R.readBytes(static_cast<size_t>(*Len));
        if (!Skipped)
          return Skipped.takeError();
        continue;
      }
      if (SeenContexts)
        return Error::failure("duplicate gmon context tree section");
      SeenContexts = true;
      uint64_t Avail = Truncated ? R.remaining() : *Len;
      if (Avail < 8) {
        if (!Opts.Tolerant || !Truncated)
          return Error::failure("gmon context tree section too small");
        NoteDamage("context tree node count truncated");
        return FinishSalvaged(std::move(Data));
      }
      auto NumNodes = R.readU64();
      if (!NumNodes)
        return NumNodes.takeError();
      if (*NumNodes > MaxRecords)
        return Error::failure(
            format("gmon context tree implausibly large (%llu nodes)",
                   static_cast<unsigned long long>(*NumNodes)));
      if (*Len != 8 + *NumNodes * CctNodeBytes)
        return Error::failure("gmon context tree section length mismatch");
      uint64_t WholeNodes = *NumNodes;
      if (Truncated) {
        WholeNodes = (Avail - 8) / CctNodeBytes;
        NoteDamage(format("context tree truncated after %llu of %llu nodes",
                          static_cast<unsigned long long>(WholeNodes),
                          static_cast<unsigned long long>(*NumNodes)));
      }
      Data.Contexts.reserve(static_cast<size_t>(WholeNodes));
      for (uint64_t I = 0; I != WholeNodes; ++I) {
        auto Parent = R.readU32();
        if (!Parent)
          return Parent.takeError();
        auto FromPc = R.readU64();
        if (!FromPc)
          return FromPc.takeError();
        auto SelfPc = R.readU64();
        if (!SelfPc)
          return SelfPc.takeError();
        auto Calls = R.readU64();
        if (!Calls)
          return Calls.takeError();
        auto Ticks = R.readU64();
        if (!Ticks)
          return Ticks.takeError();
        if (*Parent != CctRootParent && *Parent >= I)
          return Error::failure(
              format("gmon context tree node %llu has invalid parent %u",
                     static_cast<unsigned long long>(I), *Parent));
        Data.Contexts.push_back({*Parent, *FromPc, *SelfPc, *Calls, *Ticks});
      }
      S.SalvagedContexts = WholeNodes;
      S.DroppedContexts = *NumNodes - WholeNodes;
      if (S.DroppedContexts != 0)
        return FinishSalvaged(std::move(Data));
    }
  }

  if (!R.atEnd()) {
    if (!Opts.Tolerant)
      return Error::failure(
          format("%zu trailing bytes after gmon data", R.remaining()));
    S.TrailingBytes = R.remaining();
    NoteDamage(format("%zu trailing bytes ignored after gmon data",
                      R.remaining()));
  }
  return FinishSalvaged(std::move(Data));
}

Error gprof::writeGmonFile(const std::string &Path, const ProfileData &Data) {
  // Write-then-rename: a crash (or injected fault) mid-write leaves any
  // previous profile at Path byte-identical instead of torn.
  return writeFileBytesAtomic(Path, writeGmon(Data));
}

Expected<ProfileData> gprof::readGmonFile(const std::string &Path) {
  return readGmonFile(Path, GmonReadOptions{}, nullptr);
}

Expected<ProfileData> gprof::readGmonFile(const std::string &Path,
                                          const GmonReadOptions &Opts,
                                          GmonSalvage *Salvage) {
  // Zero-copy read path: map the file and parse records straight out of
  // the mapping — no heap buffer sized to the file, no byte copy.
  auto Map = MappedFile::open(Path);
  if (!Map)
    return Map.takeError();
  telemetry::counter("gmon.mmap.files").add(1);
  telemetry::counter("gmon.mmap.bytes").add(Map->size());
  auto Data = readGmon(Map->data(), Map->size(), Opts, Salvage);
  if (!Data)
    return Error::failure(Path + ": " + Data.message());
  return Data;
}

Expected<ProfileData>
gprof::readAndSumGmonFiles(const std::vector<std::string> &Paths,
                           const GmonReadOptions &Opts,
                           std::vector<GmonFileSalvage> *Salvages) {
  if (Paths.empty())
    return Error::failure("no gmon files given");
  auto RecordSalvage = [&](const std::string &Path, GmonSalvage &S) {
    if (Salvages && S.Damaged)
      Salvages->push_back({Path, std::move(S)});
  };
  GmonSalvage S;
  auto First = readGmonFile(Paths.front(), Opts, &S);
  if (!First)
    return First.takeError();
  RecordSalvage(Paths.front(), S);
  ProfileData Sum = First.takeValue();
  for (size_t I = 1; I != Paths.size(); ++I) {
    auto Next = readGmonFile(Paths[I], Opts, &S);
    if (!Next)
      return Next.takeError();
    RecordSalvage(Paths[I], S);
    // Name both sides: the accumulated sum carries the geometry of the
    // first file, so a mismatch is between Paths[I] and Paths[0].
    if (Error E = Sum.merge(*Next))
      return Error::failure(format("cannot sum '%s' with '%s': %s",
                                   Paths[I].c_str(), Paths.front().c_str(),
                                   E.message().c_str()));
  }
  return Sum;
}
