//===- gmon/GmonFile.cpp --------------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "gmon/GmonFile.h"

#include "support/BinaryStream.h"
#include "support/FileUtils.h"
#include "support/Format.h"
#include "support/Telemetry.h"

using namespace gprof;

namespace {

constexpr char Magic[4] = {'G', 'M', 'O', 'N'};
constexpr uint32_t Version = 1;

/// Cap on nbuckets/narcs accepted from a file, guarding allocation against
/// corrupted length fields (a 1 GiB histogram is already implausible).
constexpr uint64_t MaxRecords = (1ULL << 30) / 8;

} // namespace

std::vector<uint8_t> gprof::writeGmon(const ProfileData &Data) {
  BinaryWriter W;
  W.writeBytes(reinterpret_cast<const uint8_t *>(Magic), sizeof(Magic));
  W.writeU32(Version);
  W.writeU64(Data.TicksPerSecond);
  W.writeU32(Data.RunCount);
  W.writeU8(Data.ArcTableOverflowed ? 1 : 0);

  const Histogram &H = Data.Hist;
  W.writeU64(H.lowPc());
  W.writeU64(H.highPc());
  W.writeU64(H.bucketSize());
  W.writeU64(H.numBuckets());
  for (size_t I = 0; I != H.numBuckets(); ++I)
    W.writeU64(H.bucketCount(I));

  W.writeU64(Data.Arcs.size());
  for (const ArcRecord &R : Data.Arcs) {
    W.writeU64(R.FromPc);
    W.writeU64(R.SelfPc);
    W.writeU64(R.Count);
  }
  return W.takeBytes();
}

Expected<ProfileData> gprof::readGmon(const std::vector<uint8_t> &Bytes) {
  return readGmon(Bytes, GmonReadOptions{}, nullptr);
}

Expected<ProfileData> gprof::readGmon(const std::vector<uint8_t> &Bytes,
                                      const GmonReadOptions &Opts,
                                      GmonSalvage *Salvage) {
  GmonSalvage LocalSalvage;
  GmonSalvage &S = Salvage ? *Salvage : LocalSalvage;
  S = GmonSalvage{};
  BinaryReader R(Bytes);

  // Publishes the salvage tallies once the tolerant path kept a damaged
  // file.  Counters, not gauges: the tallies derive from the bytes alone.
  auto NoteDamage = [&S](std::string Note) {
    S.Damaged = true;
    if (S.Note.empty())
      S.Note = std::move(Note);
  };
  auto FinishSalvaged = [&S](ProfileData Data) -> Expected<ProfileData> {
    if (S.Damaged) {
      telemetry::counter("gmon.read.salvaged_files").add(1);
      telemetry::counter("gmon.read.salvaged_arcs").add(S.SalvagedArcs);
      telemetry::counter("gmon.read.dropped_arcs").add(S.DroppedArcs);
      telemetry::counter("gmon.read.dropped_buckets").add(S.DroppedBuckets);
    }
    return Data;
  };

  auto MagicBytes = R.readBytes(sizeof(Magic));
  if (!MagicBytes)
    return MagicBytes.takeError();
  if (!std::equal(MagicBytes->begin(), MagicBytes->end(), Magic))
    return Error::failure("not a gmon file: bad magic");

  auto Ver = R.readU32();
  if (!Ver)
    return Ver.takeError();
  if (*Ver != Version)
    return Error::failure(
        format("unsupported gmon version %u (expected %u)", *Ver, Version));

  ProfileData Data;
  auto Hz = R.readU64();
  if (!Hz)
    return Hz.takeError();
  if (*Hz == 0)
    return Error::failure("gmon file has zero sampling rate");
  Data.TicksPerSecond = *Hz;

  auto Runs = R.readU32();
  if (!Runs)
    return Runs.takeError();
  if (*Runs == 0)
    return Error::failure("gmon file records zero runs");
  Data.RunCount = *Runs;

  auto Flags = R.readU8();
  if (!Flags)
    return Flags.takeError();
  Data.ArcTableOverflowed = (*Flags & 1) != 0;

  auto LowPc = R.readU64();
  if (!LowPc)
    return LowPc.takeError();
  auto HighPc = R.readU64();
  if (!HighPc)
    return HighPc.takeError();
  auto BucketSize = R.readU64();
  if (!BucketSize)
    return BucketSize.takeError();
  auto NumBuckets = R.readU64();
  if (!NumBuckets)
    return NumBuckets.takeError();
  if (*NumBuckets > MaxRecords)
    return Error::failure(
        format("gmon histogram implausibly large (%llu buckets)",
               static_cast<unsigned long long>(*NumBuckets)));
  // Validate the length against the bytes actually present before
  // allocating, so corrupted counts fail cleanly instead of exhausting
  // memory.  Tolerant mode treats the shortfall as a torn tail instead
  // and keeps the buckets that made it to disk.
  if (!Opts.Tolerant && *NumBuckets * 8 > R.remaining())
    return Error::failure("gmon histogram longer than the file");

  if (*NumBuckets != 0) {
    if (*HighPc <= *LowPc || *BucketSize == 0)
      return Error::failure("gmon histogram has an invalid address range");
    // Check the range-implied bucket count arithmetically (overflow-free)
    // before constructing — a corrupt HighPc must not drive a huge
    // allocation.
    uint64_t Span = *HighPc - *LowPc;
    uint64_t Implied = Span / *BucketSize + (Span % *BucketSize != 0);
    if (Implied != *NumBuckets)
      return Error::failure(
          format("gmon histogram bucket count mismatch: header says %llu, "
                 "range implies %llu",
                 static_cast<unsigned long long>(*NumBuckets),
                 static_cast<unsigned long long>(Implied)));
    Histogram H(*LowPc, *HighPc, *BucketSize);
    for (size_t I = 0; I != H.numBuckets(); ++I) {
      if (Opts.Tolerant && R.remaining() < 8) {
        NoteDamage(format("histogram truncated after %zu of %zu buckets",
                          I, H.numBuckets()));
        break;
      }
      auto C = R.readU64();
      if (!C)
        return C.takeError();
      H.setBucketCount(I, *C);
      ++S.SalvagedBuckets;
    }
    S.DroppedBuckets = H.numBuckets() - S.SalvagedBuckets;
    Data.Hist = std::move(H);
    // A cut inside the counts leaves no room for an arc table; anything
    // left in the stream is the torn bucket, not records.
    if (S.DroppedBuckets != 0)
      return FinishSalvaged(std::move(Data));
  }

  if (Opts.Tolerant && R.remaining() < 8) {
    NoteDamage("arc table count truncated");
    return FinishSalvaged(std::move(Data));
  }
  auto NumArcs = R.readU64();
  if (!NumArcs)
    return NumArcs.takeError();
  if (*NumArcs > MaxRecords)
    return Error::failure(
        format("gmon arc table implausibly large (%llu records)",
               static_cast<unsigned long long>(*NumArcs)));
  uint64_t WholeArcs = *NumArcs;
  if (*NumArcs * 24 > R.remaining()) {
    if (!Opts.Tolerant)
      return Error::failure("gmon arc table longer than the file");
    WholeArcs = R.remaining() / 24;
    NoteDamage(format("arc table truncated after %llu of %llu records",
                      static_cast<unsigned long long>(WholeArcs),
                      static_cast<unsigned long long>(*NumArcs)));
  }
  Data.Arcs.reserve(static_cast<size_t>(WholeArcs));
  for (uint64_t I = 0; I != WholeArcs; ++I) {
    auto FromPc = R.readU64();
    if (!FromPc)
      return FromPc.takeError();
    auto SelfPc = R.readU64();
    if (!SelfPc)
      return SelfPc.takeError();
    auto Count = R.readU64();
    if (!Count)
      return Count.takeError();
    Data.Arcs.push_back({*FromPc, *SelfPc, *Count});
  }
  S.SalvagedArcs = WholeArcs;
  S.DroppedArcs = *NumArcs - WholeArcs;
  // The bytes after the last whole record are the torn record, not
  // trailing junk; skip the trailing check for a truncated table.
  if (S.DroppedArcs != 0)
    return FinishSalvaged(std::move(Data));

  if (!R.atEnd()) {
    if (!Opts.Tolerant)
      return Error::failure(
          format("%zu trailing bytes after gmon data", R.remaining()));
    S.TrailingBytes = R.remaining();
    NoteDamage(format("%zu trailing bytes ignored after gmon data",
                      R.remaining()));
  }
  return FinishSalvaged(std::move(Data));
}

Error gprof::writeGmonFile(const std::string &Path, const ProfileData &Data) {
  // Write-then-rename: a crash (or injected fault) mid-write leaves any
  // previous profile at Path byte-identical instead of torn.
  return writeFileBytesAtomic(Path, writeGmon(Data));
}

Expected<ProfileData> gprof::readGmonFile(const std::string &Path) {
  return readGmonFile(Path, GmonReadOptions{}, nullptr);
}

Expected<ProfileData> gprof::readGmonFile(const std::string &Path,
                                          const GmonReadOptions &Opts,
                                          GmonSalvage *Salvage) {
  auto Bytes = readFileBytes(Path);
  if (!Bytes)
    return Bytes.takeError();
  auto Data = readGmon(*Bytes, Opts, Salvage);
  if (!Data)
    return Error::failure(Path + ": " + Data.message());
  return Data;
}

Expected<ProfileData>
gprof::readAndSumGmonFiles(const std::vector<std::string> &Paths,
                           const GmonReadOptions &Opts,
                           std::vector<GmonFileSalvage> *Salvages) {
  if (Paths.empty())
    return Error::failure("no gmon files given");
  auto RecordSalvage = [&](const std::string &Path, GmonSalvage &S) {
    if (Salvages && S.Damaged)
      Salvages->push_back({Path, std::move(S)});
  };
  GmonSalvage S;
  auto First = readGmonFile(Paths.front(), Opts, &S);
  if (!First)
    return First.takeError();
  RecordSalvage(Paths.front(), S);
  ProfileData Sum = First.takeValue();
  for (size_t I = 1; I != Paths.size(); ++I) {
    auto Next = readGmonFile(Paths[I], Opts, &S);
    if (!Next)
      return Next.takeError();
    RecordSalvage(Paths[I], S);
    // Name both sides: the accumulated sum carries the geometry of the
    // first file, so a mismatch is between Paths[I] and Paths[0].
    if (Error E = Sum.merge(*Next))
      return Error::failure(format("cannot sum '%s' with '%s': %s",
                                   Paths[I].c_str(), Paths.front().c_str(),
                                   E.message().c_str()));
  }
  return Sum;
}
