//===- gmon/Histogram.h - Program-counter sample histogram ---------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The PC histogram of paper §3.2: "the operating system can provide a
/// histogram of the location of the program counter at the end of each
/// clock tick".  The histogram covers [LowPc, HighPc) with fixed-size
/// buckets; recording a PC increments the bucket containing it.  "The
/// ranges themselves are summarized as a lower and upper bound and a step
/// size."  Granularity is configurable — the retrospective's epiphany of a
/// one-to-one PC→bucket mapping corresponds to BucketSize == 1.
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_GMON_HISTOGRAM_H
#define GPROF_GMON_HISTOGRAM_H

#include "support/Error.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace gprof {

/// A code address in the profiled image's flat address space.
using Address = uint64_t;

/// Adds without wrapping: adversarial or long-aggregated counts clamp to
/// UINT64_MAX instead of silently restarting from zero.  Saturating
/// addition stays commutative and associative (the result is
/// min(true sum, max) for any grouping), so the merge engine's
/// determinism guarantee survives.
inline uint64_t saturatingAdd(uint64_t A, uint64_t B) {
  uint64_t Sum = A + B; // Unsigned wrap is well-defined; detect it.
  return Sum < A ? UINT64_MAX : Sum;
}

/// PC-sample histogram over a half-open address range.
class Histogram {
public:
  /// Creates an empty histogram (no range; records are ignored).
  Histogram() = default;

  /// Creates a histogram over [LowPc, HighPc) with \p BucketSize addresses
  /// per bucket.  HighPc must be > LowPc and BucketSize nonzero.
  Histogram(Address LowPc, Address HighPc, uint64_t BucketSize);

  /// Records one clock-tick sample at \p Pc.  Samples outside the range are
  /// counted separately (the paper's routines compiled without profiling
  /// live outside the monitored range).
  void recordPc(Address Pc);

  /// Adds \p Other bucket-by-bucket, saturating at UINT64_MAX.  Fails
  /// unless the ranges and bucket sizes are identical, mirroring gprof's
  /// refusal to sum profiles from different executables — except that an
  /// empty side (a run with no samples) is compatible with anything and
  /// adopts the other side's geometry.
  Error merge(const Histogram &Other);

  Address lowPc() const { return LowPc; }
  Address highPc() const { return HighPc; }
  uint64_t bucketSize() const { return BucketSize; }
  bool empty() const { return Counts.empty(); }
  size_t numBuckets() const { return Counts.size(); }

  /// Unchecked in release builds (asserted in debug): bucket indices come
  /// from loops bounded by numBuckets(), and the .at() bounds check sat on
  /// the sample-assignment hot path (docs/READPATH.md).
  uint64_t bucketCount(size_t I) const {
    assert(I < Counts.size() && "bucket index out of range");
    return Counts[I];
  }
  void setBucketCount(size_t I, uint64_t V) {
    assert(I < Counts.size() && "bucket index out of range");
    Counts[I] = V;
  }

  /// Start address of bucket \p I.
  Address bucketStart(size_t I) const {
    return LowPc + static_cast<Address>(I) * BucketSize;
  }
  /// One past the last address of bucket \p I (clamped to HighPc).
  Address bucketEnd(size_t I) const {
    Address E = bucketStart(I) + BucketSize;
    return E < HighPc ? E : HighPc;
  }

  /// Total samples recorded in range.
  uint64_t totalSamples() const;
  /// Samples whose PC fell outside [LowPc, HighPc).
  uint64_t outOfRangeSamples() const { return OutOfRange; }

  const std::vector<uint64_t> &counts() const { return Counts; }

private:
  Address LowPc = 0;
  Address HighPc = 0;
  uint64_t BucketSize = 1;
  std::vector<uint64_t> Counts;
  uint64_t OutOfRange = 0;
};

} // namespace gprof

#endif // GPROF_GMON_HISTOGRAM_H
