//===- gmon/GmonFile.h - Binary profile file format -----------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "gmon.out" equivalent: a versioned binary container for one run's
/// condensed profiling data.  Layout (all little-endian):
///
///   magic   "GMON"            4 bytes
///   version u32               1, or 2 when extension sections follow
///   hz      u64               ticks per second
///   runs    u32               runs summed into this file
///   flags   u8                bit 0: arc table overflowed
///                             bit 1 (v2): context-tree recorder overflowed
///   hist:   lowpc u64, highpc u64, bucketsize u64, nbuckets u64,
///           counts u64[nbuckets]   (nbuckets == 0 encodes "no histogram")
///   arcs:   narcs u64, then {frompc u64, selfpc u64, count u64}[narcs]
///
/// Version 2 appends tagged extension sections after the arc table —
/// nsections u32, then per section {tag u32, bytelen u64, payload} — so a
/// reader skips tags it does not know and future records ride along
/// without another version bump.  The one section defined today is the
/// calling-context tree (tag "CCTR"): nnodes u64 followed by 36-byte
/// nodes {parent u32, frompc u64, selfpc u64, calls u64, ticks u64} in
/// canonical preorder (parent index < node index, CctRootParent at depth
/// 1).  A profile without contexts still writes version 1, byte-identical
/// to every earlier release — store digests and goldens are unchanged.
///
/// The reader validates the magic, version, and every length field, and
/// rejects trailing garbage, so damaged files are reported rather than
/// silently misparsed.  A tolerant mode (GmonReadOptions) instead
/// salvages every record fully serialized before a truncation point —
/// the recovery story for profiles torn by a crash at condense time
/// (docs/ROBUSTNESS.md).
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_GMON_GMONFILE_H
#define GPROF_GMON_GMONFILE_H

#include "gmon/ProfileData.h"
#include "support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace gprof {

/// Serializes \p Data into the gmon container format.
std::vector<uint8_t> writeGmon(const ProfileData &Data);

/// How to treat damaged gmon bytes (docs/ROBUSTNESS.md).
struct GmonReadOptions {
  /// Strict mode (the default) rejects any damage.  Tolerant mode
  /// salvages every fully-serialized record from a truncated file — a
  /// crash tore the writer mid-stream, but the prefix is still a valid
  /// (partial) profile — and reports what was dropped.  The fixed header
  /// (magic through the histogram geometry, 53 bytes) is the salvage
  /// floor: a file cut inside it carries no usable records and still
  /// fails.  Corrupt header fields (bad magic, impossible geometry) fail
  /// in both modes; tolerance is for truncation and trailing junk, not
  /// for lying headers.
  bool Tolerant = false;
};

/// What a tolerant read dropped (all zero for an intact file).
struct GmonSalvage {
  bool Damaged = false;        ///< Anything below is nonzero.
  uint64_t SalvagedBuckets = 0; ///< Histogram buckets recovered intact.
  uint64_t DroppedBuckets = 0;  ///< Buckets lost to the cut (read as 0).
  uint64_t SalvagedArcs = 0;    ///< Arc records recovered intact.
  uint64_t DroppedArcs = 0;     ///< Arc records lost to the cut.
  uint64_t SalvagedContexts = 0; ///< Context-tree nodes recovered intact.
  uint64_t DroppedContexts = 0;  ///< Context-tree nodes lost to the cut.
  uint64_t TrailingBytes = 0;   ///< Junk bytes ignored after the data.
  /// Human-readable description of the damage, empty when intact.
  std::string Note;
};

/// Parses a gmon container in strict mode.
Expected<ProfileData> readGmon(const std::vector<uint8_t> &Bytes);

/// Parses a gmon container under \p Opts.  With Opts.Tolerant, a
/// truncated file yields the exact prefix of records serialized before
/// the cut and \p Salvage (when non-null) reports what was dropped.
Expected<ProfileData> readGmon(const std::vector<uint8_t> &Bytes,
                               const GmonReadOptions &Opts,
                               GmonSalvage *Salvage = nullptr);

/// In-place parse over a borrowed byte span — the zero-copy entry point:
/// records are decoded directly out of the caller's bytes (typically a
/// support/MappedFile view) with no intermediate buffer.  All readGmon
/// overloads route here; errors, salvage tallies, and the resulting
/// ProfileData are identical to readGmonReference by contract
/// (docs/READPATH.md), pinned by the differential corpus test.
Expected<ProfileData> readGmon(const uint8_t *Data, size_t Size,
                               const GmonReadOptions &Opts = {},
                               GmonSalvage *Salvage = nullptr);

/// The original BinaryStream-based reader, kept as the reference
/// implementation for differential testing: tests/readpath_test.cpp runs
/// the whole corrupted-gmon corpus through both readers and requires
/// bit-identical results, so salvage semantics can never drift between
/// them.  Production code should call readGmon.
Expected<ProfileData> readGmonReference(const std::vector<uint8_t> &Bytes,
                                        const GmonReadOptions &Opts = {},
                                        GmonSalvage *Salvage = nullptr);

/// Writes \p Data to the file at \p Path via write-then-rename, so a
/// crash mid-write never tears an existing profile.
Error writeGmonFile(const std::string &Path, const ProfileData &Data);

/// Reads the gmon file at \p Path.
Expected<ProfileData> readGmonFile(const std::string &Path);

/// Reads the gmon file at \p Path under \p Opts.
Expected<ProfileData> readGmonFile(const std::string &Path,
                                   const GmonReadOptions &Opts,
                                   GmonSalvage *Salvage = nullptr);

/// One damaged input of a multi-file read, for caller-side reporting.
struct GmonFileSalvage {
  std::string Path;
  GmonSalvage Salvage;
};

/// Reads and sums several gmon files (gprof's "sum the data over several
/// profiled runs").  At least one path is required.  Under tolerant
/// options, damaged inputs contribute their salvaged prefix and are
/// appended to \p Salvages (when non-null).
Expected<ProfileData>
readAndSumGmonFiles(const std::vector<std::string> &Paths,
                    const GmonReadOptions &Opts = {},
                    std::vector<GmonFileSalvage> *Salvages = nullptr);

} // namespace gprof

#endif // GPROF_GMON_GMONFILE_H
