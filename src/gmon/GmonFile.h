//===- gmon/GmonFile.h - Binary profile file format -----------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "gmon.out" equivalent: a versioned binary container for one run's
/// condensed profiling data.  Layout (all little-endian):
///
///   magic   "GMON"            4 bytes
///   version u32               currently 1
///   hz      u64               ticks per second
///   runs    u32               runs summed into this file
///   flags   u8                bit 0: arc table overflowed
///   hist:   lowpc u64, highpc u64, bucketsize u64, nbuckets u64,
///           counts u64[nbuckets]   (nbuckets == 0 encodes "no histogram")
///   arcs:   narcs u64, then {frompc u64, selfpc u64, count u64}[narcs]
///
/// The reader validates the magic, version, and every length field, and
/// rejects trailing garbage, so damaged files are reported rather than
/// silently misparsed.
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_GMON_GMONFILE_H
#define GPROF_GMON_GMONFILE_H

#include "gmon/ProfileData.h"
#include "support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace gprof {

/// Serializes \p Data into the gmon container format.
std::vector<uint8_t> writeGmon(const ProfileData &Data);

/// Parses a gmon container.
Expected<ProfileData> readGmon(const std::vector<uint8_t> &Bytes);

/// Writes \p Data to the file at \p Path.
Error writeGmonFile(const std::string &Path, const ProfileData &Data);

/// Reads the gmon file at \p Path.
Expected<ProfileData> readGmonFile(const std::string &Path);

/// Reads and sums several gmon files (gprof's "sum the data over several
/// profiled runs").  At least one path is required.
Expected<ProfileData> readAndSumGmonFiles(const std::vector<std::string> &Paths);

} // namespace gprof

#endif // GPROF_GMON_GMONFILE_H
