//===- gmon/ProfileData.cpp -----------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "gmon/ProfileData.h"

#include "support/Format.h"

using namespace gprof;

void ProfileData::addArc(Address FromPc, Address SelfPc, uint64_t Count) {
  for (ArcRecord &R : Arcs) {
    if (R.FromPc == FromPc && R.SelfPc == SelfPc) {
      R.Count += Count;
      return;
    }
  }
  Arcs.push_back({FromPc, SelfPc, Count});
}

Error ProfileData::merge(const ProfileData &Other) {
  if (TicksPerSecond != Other.TicksPerSecond)
    return Error::failure(
        format("cannot sum profiles with different sampling rates "
               "(%llu vs %llu ticks/sec)",
               static_cast<unsigned long long>(TicksPerSecond),
               static_cast<unsigned long long>(Other.TicksPerSecond)));
  if (Error E = Hist.merge(Other.Hist))
    return E;
  for (const ArcRecord &R : Other.Arcs)
    addArc(R.FromPc, R.SelfPc, R.Count);
  RunCount += Other.RunCount;
  ArcTableOverflowed = ArcTableOverflowed || Other.ArcTableOverflowed;
  return Error::success();
}

uint64_t ProfileData::callsInto(Address SelfPc) const {
  uint64_t Total = 0;
  for (const ArcRecord &R : Arcs)
    if (R.SelfPc == SelfPc)
      Total += R.Count;
  return Total;
}
