//===- gmon/ProfileData.cpp -----------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "gmon/ProfileData.h"

#include "support/Format.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <map>
#include <utility>

using namespace gprof;

namespace {

/// splitmix64-style mix of the two key halves; also used (with Self == 0)
/// for the callee table.
inline uint64_t mixArcKey(Address FromPc, Address SelfPc) {
  uint64_t H = FromPc * 0x9E3779B97F4A7C15ULL ^ SelfPc;
  H ^= H >> 30;
  H *= 0xBF58476D1CE4E5B9ULL;
  H ^= H >> 27;
  return H;
}

/// Smallest power of two >= max(16, N).
inline size_t tableCapacityFor(size_t N) {
  size_t Cap = 16;
  while (Cap < N)
    Cap <<= 1;
  return Cap;
}

/// Mutable tree form used to coalesce and re-order context nodes.  Child
/// maps are keyed (FromPc, SelfPc), so map iteration order *is* the
/// canonical sibling order and emit() needs no separate sort.
struct CctBuilder {
  struct Node {
    uint64_t Calls = 0;
    uint64_t Ticks = 0;
    std::map<std::pair<Address, Address>, uint32_t> Kids;
  };
  /// Nodes[0] is the virtual root above every depth-1 context.
  std::vector<Node> Nodes = std::vector<Node>(1);

  uint32_t childOf(uint32_t Parent, Address FromPc, Address SelfPc) {
    auto [It, Inserted] =
        Nodes[Parent].Kids.try_emplace({FromPc, SelfPc}, 0);
    if (Inserted) {
      It->second = static_cast<uint32_t>(Nodes.size());
      Nodes.emplace_back();
    }
    return It->second;
  }

  /// Folds a canonical-invariant (Parent < index) node vector in,
  /// summing counters of coinciding paths with saturation.
  void addTree(const std::vector<CctNode> &In) {
    std::vector<uint32_t> Mapped(In.size(), 0);
    for (size_t I = 0; I != In.size(); ++I) {
      const CctNode &N = In[I];
      uint32_t Parent =
          N.Parent == CctRootParent ? 0 : Mapped[N.Parent];
      uint32_t Here = childOf(Parent, N.FromPc, N.SelfPc);
      Mapped[I] = Here;
      Nodes[Here].Calls = saturatingAdd(Nodes[Here].Calls, N.Calls);
      Nodes[Here].Ticks = saturatingAdd(Nodes[Here].Ticks, N.Ticks);
    }
  }

  /// Emits the canonical preorder vector (the virtual root is dropped;
  /// its children come back with Parent == CctRootParent).
  std::vector<CctNode> emit() const {
    std::vector<CctNode> Out;
    Out.reserve(Nodes.size() - 1);
    // Explicit preorder stack of (builder node, emitted parent index).
    struct Visit {
      uint32_t Node;
      uint32_t Parent;
      Address FromPc;
      Address SelfPc;
    };
    std::vector<Visit> Stack;
    auto PushKids = [&](uint32_t Node, uint32_t EmittedParent) {
      const auto &Kids = Nodes[Node].Kids;
      for (auto It = Kids.rbegin(); It != Kids.rend(); ++It)
        Stack.push_back({It->second, EmittedParent, It->first.first,
                         It->first.second});
    };
    PushKids(0, CctRootParent);
    while (!Stack.empty()) {
      Visit V = Stack.back();
      Stack.pop_back();
      uint32_t Here = static_cast<uint32_t>(Out.size());
      Out.push_back({V.Parent, V.FromPc, V.SelfPc, Nodes[V.Node].Calls,
                     Nodes[V.Node].Ticks});
      PushKids(V.Node, Here);
    }
    return Out;
  }
};

} // namespace

size_t ProfileData::arcProbe(Address FromPc, Address SelfPc) const {
  const size_t Mask = ArcSlots.size() - 1;
  size_t I = static_cast<size_t>(mixArcKey(FromPc, SelfPc)) & Mask;
  while (true) {
    const ArcSlot &S = ArcSlots[I];
    if (S.PosPlus1 == 0 || (S.FromPc == FromPc && S.SelfPc == SelfPc))
      return I;
    I = (I + 1) & Mask;
  }
}

size_t ProfileData::calleeProbe(Address SelfPc) const {
  const size_t Mask = CalleeSlots.size() - 1;
  size_t I = static_cast<size_t>(mixArcKey(SelfPc, 0)) & Mask;
  while (true) {
    const CalleeSlot &S = CalleeSlots[I];
    if (!S.Used || S.SelfPc == SelfPc)
      return I;
    I = (I + 1) & Mask;
  }
}

void ProfileData::growArcSlots() const {
  std::vector<ArcSlot> Old = std::move(ArcSlots);
  ArcSlots.assign(Old.size() * 2, ArcSlot{0, 0, 0});
  for (const ArcSlot &S : Old)
    if (S.PosPlus1 != 0)
      ArcSlots[arcProbe(S.FromPc, S.SelfPc)] = S;
}

void ProfileData::growCalleeSlots() const {
  std::vector<CalleeSlot> Old = std::move(CalleeSlots);
  CalleeSlots.assign(Old.size() * 2, CalleeSlot{0, 0, false});
  for (const CalleeSlot &S : Old)
    if (S.Used)
      CalleeSlots[calleeProbe(S.SelfPc)] = S;
}

void ProfileData::calleeAdd(Address SelfPc, uint64_t Delta) const {
  if (CalleeSlotsUsed * 2 >= CalleeSlots.size())
    growCalleeSlots();
  CalleeSlot &S = CalleeSlots[calleeProbe(SelfPc)];
  if (!S.Used) {
    S = {SelfPc, Delta, true};
    ++CalleeSlotsUsed;
    return;
  }
  S.Total = saturatingAdd(S.Total, Delta);
}

void ProfileData::invalidateArcIndex() const {
  ArcSlots.clear();
  CalleeSlots.clear();
  ArcSlotsUsed = 0;
  CalleeSlotsUsed = 0;
  IndexedArcs = 0;
  ArcIndexValid = false;
}

void ProfileData::rebuildArcIndex() const {
  ArcSlots.assign(tableCapacityFor(Arcs.size() * 2), ArcSlot{0, 0, 0});
  CalleeSlots.assign(tableCapacityFor(Arcs.size() * 2),
                     CalleeSlot{0, 0, false});
  ArcSlotsUsed = 0;
  CalleeSlotsUsed = 0;
  for (size_t I = 0; I != Arcs.size(); ++I) {
    const ArcRecord &R = Arcs[I];
    ArcSlot &S = ArcSlots[arcProbe(R.FromPc, R.SelfPc)];
    // Duplicate keys can exist before canonicalization; keep the first
    // position (addArc then accumulates there, matching the historical
    // first-match linear scan).
    if (S.PosPlus1 == 0) {
      S = {R.FromPc, R.SelfPc, I + 1};
      ++ArcSlotsUsed;
    }
    calleeAdd(R.SelfPc, R.Count);
  }
  IndexedArcs = Arcs.size();
  ArcIndexValid = true;
}

void ProfileData::addArc(Address FromPc, Address SelfPc, uint64_t Count) {
  if (!ArcIndexValid || IndexedArcs != Arcs.size())
    rebuildArcIndex();
  size_t Slot = arcProbe(FromPc, SelfPc);
  if (ArcSlots[Slot].PosPlus1 != 0) {
    size_t Pos = ArcSlots[Slot].PosPlus1 - 1;
    if (Arcs[Pos].FromPc != FromPc || Arcs[Pos].SelfPc != SelfPc) {
      // External code reordered Arcs under the index; rebuild and retry.
      rebuildArcIndex();
      Slot = arcProbe(FromPc, SelfPc);
    }
  }
  if (ArcSlots[Slot].PosPlus1 != 0) {
    ArcRecord &R = Arcs[ArcSlots[Slot].PosPlus1 - 1];
    if (Count > UINT64_MAX - R.Count)
      telemetry::counter("gmon.arcs.saturated").add(1);
    uint64_t Sum = saturatingAdd(R.Count, Count);
    calleeAdd(SelfPc, Sum - R.Count);
    R.Count = Sum;
    return;
  }
  Arcs.push_back({FromPc, SelfPc, Count});
  if (ArcSlotsUsed * 2 >= ArcSlots.size()) {
    growArcSlots();
    Slot = arcProbe(FromPc, SelfPc);
  }
  ArcSlots[Slot] = {FromPc, SelfPc, Arcs.size()};
  ++ArcSlotsUsed;
  calleeAdd(SelfPc, Count);
  IndexedArcs = Arcs.size();
}

Error ProfileData::merge(const ProfileData &Other) {
  if (TicksPerSecond != Other.TicksPerSecond)
    return Error::failure(
        format("cannot sum profiles with different sampling rates "
               "(%llu vs %llu ticks/sec)",
               static_cast<unsigned long long>(TicksPerSecond),
               static_cast<unsigned long long>(Other.TicksPerSecond)));
  if (Error E = Hist.merge(Other.Hist))
    return E;
  for (const ArcRecord &R : Other.Arcs)
    addArc(R.FromPc, R.SelfPc, R.Count);
  RunCount += Other.RunCount;
  ArcTableOverflowed = ArcTableOverflowed || Other.ArcTableOverflowed;
  if (!Other.Contexts.empty())
    addContextTree(Other.Contexts);
  ContextTreeOverflowed = ContextTreeOverflowed || Other.ContextTreeOverflowed;
  return Error::success();
}

void ProfileData::addContextTree(const std::vector<CctNode> &Nodes) {
  CctBuilder B;
  B.addTree(Contexts);
  B.addTree(Nodes);
  Contexts = B.emit();
}

void ProfileData::canonicalizeContexts() {
  if (Contexts.empty())
    return;
  CctBuilder B;
  B.addTree(Contexts);
  Contexts = B.emit();
}

void ProfileData::canonicalizeArcs() {
  std::sort(Arcs.begin(), Arcs.end(),
            [](const ArcRecord &A, const ArcRecord &B) {
              return A.FromPc != B.FromPc ? A.FromPc < B.FromPc
                                          : A.SelfPc < B.SelfPc;
            });
  // Coalesce duplicates in place (a profile built by direct Arcs
  // mutation rather than addArc can hold several records per key).
  size_t Out = 0;
  for (size_t I = 0; I != Arcs.size(); ++I) {
    if (Out != 0 && Arcs[Out - 1].FromPc == Arcs[I].FromPc &&
        Arcs[Out - 1].SelfPc == Arcs[I].SelfPc) {
      Arcs[Out - 1].Count = saturatingAdd(Arcs[Out - 1].Count, Arcs[I].Count);
      continue;
    }
    Arcs[Out++] = Arcs[I];
  }
  Arcs.resize(Out);
  invalidateArcIndex();
}

uint64_t ProfileData::callsInto(Address SelfPc) const {
  if (!ArcIndexValid || IndexedArcs != Arcs.size())
    rebuildArcIndex();
  if (CalleeSlots.empty())
    return 0;
  const CalleeSlot &S = CalleeSlots[calleeProbe(SelfPc)];
  return S.Used ? S.Total : 0;
}
