//===- gmon/ProfileData.cpp -----------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "gmon/ProfileData.h"

#include "support/Format.h"
#include "support/Telemetry.h"

#include <algorithm>

using namespace gprof;

namespace {

/// splitmix64-style mix of the two key halves; also used (with Self == 0)
/// for the callee table.
inline uint64_t mixArcKey(Address FromPc, Address SelfPc) {
  uint64_t H = FromPc * 0x9E3779B97F4A7C15ULL ^ SelfPc;
  H ^= H >> 30;
  H *= 0xBF58476D1CE4E5B9ULL;
  H ^= H >> 27;
  return H;
}

/// Smallest power of two >= max(16, N).
inline size_t tableCapacityFor(size_t N) {
  size_t Cap = 16;
  while (Cap < N)
    Cap <<= 1;
  return Cap;
}

} // namespace

size_t ProfileData::arcProbe(Address FromPc, Address SelfPc) const {
  const size_t Mask = ArcSlots.size() - 1;
  size_t I = static_cast<size_t>(mixArcKey(FromPc, SelfPc)) & Mask;
  while (true) {
    const ArcSlot &S = ArcSlots[I];
    if (S.PosPlus1 == 0 || (S.FromPc == FromPc && S.SelfPc == SelfPc))
      return I;
    I = (I + 1) & Mask;
  }
}

size_t ProfileData::calleeProbe(Address SelfPc) const {
  const size_t Mask = CalleeSlots.size() - 1;
  size_t I = static_cast<size_t>(mixArcKey(SelfPc, 0)) & Mask;
  while (true) {
    const CalleeSlot &S = CalleeSlots[I];
    if (!S.Used || S.SelfPc == SelfPc)
      return I;
    I = (I + 1) & Mask;
  }
}

void ProfileData::growArcSlots() const {
  std::vector<ArcSlot> Old = std::move(ArcSlots);
  ArcSlots.assign(Old.size() * 2, ArcSlot{0, 0, 0});
  for (const ArcSlot &S : Old)
    if (S.PosPlus1 != 0)
      ArcSlots[arcProbe(S.FromPc, S.SelfPc)] = S;
}

void ProfileData::growCalleeSlots() const {
  std::vector<CalleeSlot> Old = std::move(CalleeSlots);
  CalleeSlots.assign(Old.size() * 2, CalleeSlot{0, 0, false});
  for (const CalleeSlot &S : Old)
    if (S.Used)
      CalleeSlots[calleeProbe(S.SelfPc)] = S;
}

void ProfileData::calleeAdd(Address SelfPc, uint64_t Delta) const {
  if (CalleeSlotsUsed * 2 >= CalleeSlots.size())
    growCalleeSlots();
  CalleeSlot &S = CalleeSlots[calleeProbe(SelfPc)];
  if (!S.Used) {
    S = {SelfPc, Delta, true};
    ++CalleeSlotsUsed;
    return;
  }
  S.Total = saturatingAdd(S.Total, Delta);
}

void ProfileData::invalidateArcIndex() const {
  ArcSlots.clear();
  CalleeSlots.clear();
  ArcSlotsUsed = 0;
  CalleeSlotsUsed = 0;
  IndexedArcs = 0;
  ArcIndexValid = false;
}

void ProfileData::rebuildArcIndex() const {
  ArcSlots.assign(tableCapacityFor(Arcs.size() * 2), ArcSlot{0, 0, 0});
  CalleeSlots.assign(tableCapacityFor(Arcs.size() * 2),
                     CalleeSlot{0, 0, false});
  ArcSlotsUsed = 0;
  CalleeSlotsUsed = 0;
  for (size_t I = 0; I != Arcs.size(); ++I) {
    const ArcRecord &R = Arcs[I];
    ArcSlot &S = ArcSlots[arcProbe(R.FromPc, R.SelfPc)];
    // Duplicate keys can exist before canonicalization; keep the first
    // position (addArc then accumulates there, matching the historical
    // first-match linear scan).
    if (S.PosPlus1 == 0) {
      S = {R.FromPc, R.SelfPc, I + 1};
      ++ArcSlotsUsed;
    }
    calleeAdd(R.SelfPc, R.Count);
  }
  IndexedArcs = Arcs.size();
  ArcIndexValid = true;
}

void ProfileData::addArc(Address FromPc, Address SelfPc, uint64_t Count) {
  if (!ArcIndexValid || IndexedArcs != Arcs.size())
    rebuildArcIndex();
  size_t Slot = arcProbe(FromPc, SelfPc);
  if (ArcSlots[Slot].PosPlus1 != 0) {
    size_t Pos = ArcSlots[Slot].PosPlus1 - 1;
    if (Arcs[Pos].FromPc != FromPc || Arcs[Pos].SelfPc != SelfPc) {
      // External code reordered Arcs under the index; rebuild and retry.
      rebuildArcIndex();
      Slot = arcProbe(FromPc, SelfPc);
    }
  }
  if (ArcSlots[Slot].PosPlus1 != 0) {
    ArcRecord &R = Arcs[ArcSlots[Slot].PosPlus1 - 1];
    if (Count > UINT64_MAX - R.Count)
      telemetry::counter("gmon.arcs.saturated").add(1);
    uint64_t Sum = saturatingAdd(R.Count, Count);
    calleeAdd(SelfPc, Sum - R.Count);
    R.Count = Sum;
    return;
  }
  Arcs.push_back({FromPc, SelfPc, Count});
  if (ArcSlotsUsed * 2 >= ArcSlots.size()) {
    growArcSlots();
    Slot = arcProbe(FromPc, SelfPc);
  }
  ArcSlots[Slot] = {FromPc, SelfPc, Arcs.size()};
  ++ArcSlotsUsed;
  calleeAdd(SelfPc, Count);
  IndexedArcs = Arcs.size();
}

Error ProfileData::merge(const ProfileData &Other) {
  if (TicksPerSecond != Other.TicksPerSecond)
    return Error::failure(
        format("cannot sum profiles with different sampling rates "
               "(%llu vs %llu ticks/sec)",
               static_cast<unsigned long long>(TicksPerSecond),
               static_cast<unsigned long long>(Other.TicksPerSecond)));
  if (Error E = Hist.merge(Other.Hist))
    return E;
  for (const ArcRecord &R : Other.Arcs)
    addArc(R.FromPc, R.SelfPc, R.Count);
  RunCount += Other.RunCount;
  ArcTableOverflowed = ArcTableOverflowed || Other.ArcTableOverflowed;
  return Error::success();
}

void ProfileData::canonicalizeArcs() {
  std::sort(Arcs.begin(), Arcs.end(),
            [](const ArcRecord &A, const ArcRecord &B) {
              return A.FromPc != B.FromPc ? A.FromPc < B.FromPc
                                          : A.SelfPc < B.SelfPc;
            });
  // Coalesce duplicates in place (a profile built by direct Arcs
  // mutation rather than addArc can hold several records per key).
  size_t Out = 0;
  for (size_t I = 0; I != Arcs.size(); ++I) {
    if (Out != 0 && Arcs[Out - 1].FromPc == Arcs[I].FromPc &&
        Arcs[Out - 1].SelfPc == Arcs[I].SelfPc) {
      Arcs[Out - 1].Count = saturatingAdd(Arcs[Out - 1].Count, Arcs[I].Count);
      continue;
    }
    Arcs[Out++] = Arcs[I];
  }
  Arcs.resize(Out);
  invalidateArcIndex();
}

uint64_t ProfileData::callsInto(Address SelfPc) const {
  if (!ArcIndexValid || IndexedArcs != Arcs.size())
    rebuildArcIndex();
  if (CalleeSlots.empty())
    return 0;
  const CalleeSlot &S = CalleeSlots[calleeProbe(SelfPc)];
  return S.Used ? S.Total : 0;
}
