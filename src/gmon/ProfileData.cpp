//===- gmon/ProfileData.cpp -----------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "gmon/ProfileData.h"

#include "support/Format.h"
#include "support/Telemetry.h"

#include <algorithm>

using namespace gprof;

void ProfileData::invalidateArcIndex() const {
  ArcIndex.clear();
  CalleeTotals.clear();
  IndexedArcs = 0;
  ArcIndexValid = false;
}

void ProfileData::rebuildArcIndex() const {
  ArcIndex.clear();
  CalleeTotals.clear();
  ArcIndex.reserve(Arcs.size());
  for (size_t I = 0; I != Arcs.size(); ++I) {
    const ArcRecord &R = Arcs[I];
    auto [It, Fresh] = ArcIndex.try_emplace({R.FromPc, R.SelfPc}, I);
    // Duplicate keys can exist before canonicalization; keep the first
    // position (addArc then accumulates there, matching the historical
    // first-match linear scan).
    (void)It;
    (void)Fresh;
    CalleeTotals[R.SelfPc] =
        saturatingAdd(CalleeTotals[R.SelfPc], R.Count);
  }
  IndexedArcs = Arcs.size();
  ArcIndexValid = true;
}

void ProfileData::addArc(Address FromPc, Address SelfPc, uint64_t Count) {
  if (!ArcIndexValid || IndexedArcs != Arcs.size())
    rebuildArcIndex();
  auto It = ArcIndex.find({FromPc, SelfPc});
  if (It != ArcIndex.end()) {
    if (Arcs[It->second].FromPc != FromPc ||
        Arcs[It->second].SelfPc != SelfPc) {
      // External code reordered Arcs under the index; rebuild and retry.
      rebuildArcIndex();
      It = ArcIndex.find({FromPc, SelfPc});
    }
  }
  if (It != ArcIndex.end()) {
    ArcRecord &R = Arcs[It->second];
    if (Count > UINT64_MAX - R.Count)
      telemetry::counter("gmon.arcs.saturated").add(1);
    uint64_t Sum = saturatingAdd(R.Count, Count);
    CalleeTotals[SelfPc] =
        saturatingAdd(CalleeTotals[SelfPc], Sum - R.Count);
    R.Count = Sum;
    return;
  }
  Arcs.push_back({FromPc, SelfPc, Count});
  ArcIndex.emplace(std::pair<Address, Address>{FromPc, SelfPc},
                   Arcs.size() - 1);
  CalleeTotals[SelfPc] = saturatingAdd(CalleeTotals[SelfPc], Count);
  IndexedArcs = Arcs.size();
}

Error ProfileData::merge(const ProfileData &Other) {
  if (TicksPerSecond != Other.TicksPerSecond)
    return Error::failure(
        format("cannot sum profiles with different sampling rates "
               "(%llu vs %llu ticks/sec)",
               static_cast<unsigned long long>(TicksPerSecond),
               static_cast<unsigned long long>(Other.TicksPerSecond)));
  if (Error E = Hist.merge(Other.Hist))
    return E;
  for (const ArcRecord &R : Other.Arcs)
    addArc(R.FromPc, R.SelfPc, R.Count);
  RunCount += Other.RunCount;
  ArcTableOverflowed = ArcTableOverflowed || Other.ArcTableOverflowed;
  return Error::success();
}

void ProfileData::canonicalizeArcs() {
  std::sort(Arcs.begin(), Arcs.end(),
            [](const ArcRecord &A, const ArcRecord &B) {
              return A.FromPc != B.FromPc ? A.FromPc < B.FromPc
                                          : A.SelfPc < B.SelfPc;
            });
  // Coalesce duplicates in place (a profile built by direct Arcs
  // mutation rather than addArc can hold several records per key).
  size_t Out = 0;
  for (size_t I = 0; I != Arcs.size(); ++I) {
    if (Out != 0 && Arcs[Out - 1].FromPc == Arcs[I].FromPc &&
        Arcs[Out - 1].SelfPc == Arcs[I].SelfPc) {
      Arcs[Out - 1].Count = saturatingAdd(Arcs[Out - 1].Count, Arcs[I].Count);
      continue;
    }
    Arcs[Out++] = Arcs[I];
  }
  Arcs.resize(Out);
  invalidateArcIndex();
}

uint64_t ProfileData::callsInto(Address SelfPc) const {
  if (!ArcIndexValid || IndexedArcs != Arcs.size())
    rebuildArcIndex();
  auto It = CalleeTotals.find(SelfPc);
  return It == CalleeTotals.end() ? 0 : It->second;
}
