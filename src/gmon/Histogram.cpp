//===- gmon/Histogram.cpp -------------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "gmon/Histogram.h"

#include "support/Format.h"

#include <cassert>

using namespace gprof;

Histogram::Histogram(Address LowPc, Address HighPc, uint64_t BucketSize)
    : LowPc(LowPc), HighPc(HighPc), BucketSize(BucketSize) {
  assert(HighPc > LowPc && "empty address range");
  assert(BucketSize != 0 && "zero bucket size");
  uint64_t Span = HighPc - LowPc;
  Counts.assign(static_cast<size_t>((Span + BucketSize - 1) / BucketSize), 0);
}

void Histogram::recordPc(Address Pc) {
  if (Counts.empty() || Pc < LowPc || Pc >= HighPc) {
    ++OutOfRange;
    return;
  }
  ++Counts[static_cast<size_t>((Pc - LowPc) / BucketSize)];
}

Error Histogram::merge(const Histogram &Other) {
  // An empty side is not incompatible: a run that recorded arcs but no
  // samples (program exited before the first tick) carries no histogram,
  // and must still sum with a sampled sibling.  The empty side simply
  // adopts the other's geometry and counts.
  if (Other.Counts.empty()) {
    OutOfRange += Other.OutOfRange;
    return Error::success();
  }
  if (Counts.empty()) {
    LowPc = Other.LowPc;
    HighPc = Other.HighPc;
    BucketSize = Other.BucketSize;
    Counts = Other.Counts;
    OutOfRange += Other.OutOfRange;
    return Error::success();
  }
  if (LowPc != Other.LowPc || HighPc != Other.HighPc ||
      BucketSize != Other.BucketSize)
    return Error::failure(format(
        "incompatible histograms: [%llu,%llu)/%llu vs [%llu,%llu)/%llu",
        static_cast<unsigned long long>(LowPc),
        static_cast<unsigned long long>(HighPc),
        static_cast<unsigned long long>(BucketSize),
        static_cast<unsigned long long>(Other.LowPc),
        static_cast<unsigned long long>(Other.HighPc),
        static_cast<unsigned long long>(Other.BucketSize)));
  for (size_t I = 0; I != Counts.size(); ++I)
    Counts[I] = saturatingAdd(Counts[I], Other.Counts[I]);
  OutOfRange = saturatingAdd(OutOfRange, Other.OutOfRange);
  return Error::success();
}

uint64_t Histogram::totalSamples() const {
  uint64_t Total = 0;
  for (uint64_t C : Counts)
    Total += C;
  return Total;
}
