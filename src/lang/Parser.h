//===- lang/Parser.h - Recursive-descent parser for TL ---------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#ifndef GPROF_LANG_PARSER_H
#define GPROF_LANG_PARSER_H

#include "lang/AST.h"
#include "lang/Diagnostics.h"
#include "lang/Token.h"

#include <vector>

namespace gprof {

/// Parses a token stream into a Program.  Errors are reported to the
/// DiagnosticEngine; the parser recovers at statement/declaration
/// boundaries so multiple errors surface from one run.  Callers must check
/// DiagnosticEngine::hasErrors() before using the result.
class Parser {
public:
  Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags);

  /// Parses the whole translation unit.
  Program parseProgram();

private:
  const Token &peek(unsigned Ahead = 0) const;
  const Token &current() const { return peek(0); }
  Token consume();
  bool match(TokenKind Kind);
  bool expect(TokenKind Kind, const char *Context);
  void synchronizeToDecl();
  void synchronizeToStmt();

  void parseFunction(Program &P);
  void parseGlobal(Program &P);
  std::unique_ptr<BlockStmt> parseBlock();
  StmtPtr parseStatement();
  StmtPtr parseIf();
  StmtPtr parseWhile();

  ExprPtr parseExpr();
  ExprPtr parseAssignment();
  ExprPtr parseLogicalOr();
  ExprPtr parseLogicalAnd();
  ExprPtr parseComparison();
  ExprPtr parseAdditive();
  ExprPtr parseMultiplicative();
  ExprPtr parseUnary();
  ExprPtr parsePostfix();
  ExprPtr parsePrimary();

  std::vector<Token> Tokens;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
};

/// Convenience: lexes and parses \p Source in one step.
Program parseTL(std::string_view Source, DiagnosticEngine &Diags);

} // namespace gprof

#endif // GPROF_LANG_PARSER_H
