//===- lang/Lexer.cpp ------------------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include "support/Format.h"

#include <cassert>
#include <cctype>

using namespace gprof;

const char *gprof::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::EndOfFile:
    return "end of file";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::Number:
    return "number";
  case TokenKind::KwFn:
    return "'fn'";
  case TokenKind::KwVar:
    return "'var'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwPrint:
    return "'print'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::Bang:
    return "'!'";
  case TokenKind::Amp:
    return "'&'";
  case TokenKind::EqualEqual:
    return "'=='";
  case TokenKind::BangEqual:
    return "'!='";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEqual:
    return "'<='";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::GreaterEqual:
    return "'>='";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::Invalid:
    return "invalid token";
  }
  return "unknown token";
}

Lexer::Lexer(std::string_view Source, DiagnosticEngine &Diags)
    : Source(Source), Diags(Diags) {}

char Lexer::peek(unsigned Ahead) const {
  if (Pos + Ahead >= Source.size())
    return '\0';
  return Source[Pos + Ahead];
}

char Lexer::advance() {
  assert(!atEnd() && "advance past end of input");
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  return C;
}

void Lexer::skipWhitespaceAndComments() {
  while (!atEnd()) {
    char C = peek();
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    return;
  }
}

Token Lexer::makeToken(TokenKind Kind) {
  Token T;
  T.Kind = Kind;
  T.Loc = TokenStart;
  return T;
}

Token Lexer::lexNumber() {
  int64_t Value = 0;
  bool Overflow = false;
  while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek()))) {
    int Digit = advance() - '0';
    if (Value > (INT64_MAX - Digit) / 10)
      Overflow = true;
    else
      Value = Value * 10 + Digit;
  }
  if (Overflow)
    Diags.error(TokenStart, "integer literal too large");
  Token T = makeToken(TokenKind::Number);
  T.Value = Value;
  return T;
}

Token Lexer::lexIdentifierOrKeyword() {
  size_t Start = Pos;
  while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                      peek() == '_'))
    advance();
  std::string_view Text = Source.substr(Start, Pos - Start);

  TokenKind Kind = TokenKind::Identifier;
  if (Text == "fn")
    Kind = TokenKind::KwFn;
  else if (Text == "var")
    Kind = TokenKind::KwVar;
  else if (Text == "if")
    Kind = TokenKind::KwIf;
  else if (Text == "else")
    Kind = TokenKind::KwElse;
  else if (Text == "while")
    Kind = TokenKind::KwWhile;
  else if (Text == "return")
    Kind = TokenKind::KwReturn;
  else if (Text == "print")
    Kind = TokenKind::KwPrint;

  Token T = makeToken(Kind);
  if (Kind == TokenKind::Identifier)
    T.Text = std::string(Text);
  return T;
}

Token Lexer::lexToken() {
  skipWhitespaceAndComments();
  TokenStart = here();
  if (atEnd())
    return makeToken(TokenKind::EndOfFile);

  char C = peek();
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber();
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdentifierOrKeyword();

  advance();
  switch (C) {
  case '(':
    return makeToken(TokenKind::LParen);
  case ')':
    return makeToken(TokenKind::RParen);
  case '{':
    return makeToken(TokenKind::LBrace);
  case '}':
    return makeToken(TokenKind::RBrace);
  case ',':
    return makeToken(TokenKind::Comma);
  case ';':
    return makeToken(TokenKind::Semicolon);
  case '+':
    return makeToken(TokenKind::Plus);
  case '-':
    return makeToken(TokenKind::Minus);
  case '*':
    return makeToken(TokenKind::Star);
  case '/':
    return makeToken(TokenKind::Slash);
  case '%':
    return makeToken(TokenKind::Percent);
  case '=':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::EqualEqual);
    }
    return makeToken(TokenKind::Assign);
  case '!':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::BangEqual);
    }
    return makeToken(TokenKind::Bang);
  case '<':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::LessEqual);
    }
    return makeToken(TokenKind::Less);
  case '>':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::GreaterEqual);
    }
    return makeToken(TokenKind::Greater);
  case '&':
    if (peek() == '&') {
      advance();
      return makeToken(TokenKind::AmpAmp);
    }
    return makeToken(TokenKind::Amp);
  case '|':
    if (peek() == '|') {
      advance();
      return makeToken(TokenKind::PipePipe);
    }
    Diags.error(TokenStart, "expected '||'");
    return makeToken(TokenKind::Invalid);
  default:
    Diags.error(TokenStart, format("unexpected character '%c'", C));
    return makeToken(TokenKind::Invalid);
  }
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  while (true) {
    Token T = lexToken();
    if (T.Kind == TokenKind::Invalid)
      continue; // Already diagnosed; resynchronize on the next character.
    Tokens.push_back(T);
    if (Tokens.back().Kind == TokenKind::EndOfFile)
      return Tokens;
  }
}
