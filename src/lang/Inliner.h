//===- lang/Inliner.h - Inline expansion of simple routines ---------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Paper §6: "The easiest optimization ... If this format routine is
/// expanded inline in the output routine, the overhead of a function call
/// and return can be saved for each datum ... The drawback to inline
/// expansion is that the data abstractions in the program may become less
/// parameterized ... The profiling will also become less useful since the
/// loss of routines will make its output more granular."
///
/// This pass implements that optimization for TL so the trade-off can be
/// measured: calls to a named routine are replaced by its body when the
/// routine is "simple" — a single `return expr;` whose only free names
/// are its parameters (plus calls to other routines).  Parameters are
/// substituted syntactically, with duplication allowed only for
/// side-effect-free arguments.
///
/// The pass runs before semantic analysis and is name-capture-naive for
/// function names, like the macro-style inlining of the era: a caller
/// local shadowing a function name used by the inlined body would be
/// captured.  Sema still checks the result, so such programs fail loudly
/// rather than miscompile silently.
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_LANG_INLINER_H
#define GPROF_LANG_INLINER_H

#include "lang/AST.h"
#include "lang/Diagnostics.h"

#include <string>
#include <vector>

namespace gprof {

/// Deep-copies an expression tree (resolution state is not copied; run
/// Sema afterwards).
ExprPtr cloneExpr(const Expr &E);

/// Returns true if \p F qualifies for inline expansion: body is a single
/// `return expr;` whose name references are all parameters.
bool isInlinableFunction(const FunctionDecl &F);

/// Expands calls to each routine named in \p Names throughout \p P
/// (except within the routine itself).  Unknown or non-inlinable names
/// are diagnosed as errors.  Call sites whose arguments cannot be safely
/// substituted (a side-effecting argument bound to a parameter used more
/// than once) are left alone.  Returns the number of call sites expanded.
unsigned inlineCalls(Program &P, const std::vector<std::string> &Names,
                     DiagnosticEngine &Diags);

} // namespace gprof

#endif // GPROF_LANG_INLINER_H
