//===- lang/Sema.cpp -------------------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "lang/Sema.h"

#include "support/Format.h"

#include <cassert>
#include <map>
#include <string>
#include <vector>

using namespace gprof;

namespace {

/// Per-function resolution state: a stack of lexical scopes mapping names
/// to frame slots.
class FunctionScope {
public:
  void push() { Scopes.emplace_back(); }
  void pop() {
    assert(!Scopes.empty() && "scope underflow");
    Scopes.pop_back();
  }

  /// Declares \p Name in the innermost scope; returns the assigned slot or
  /// ~0u if the name is already declared in this scope.
  uint32_t declare(const std::string &Name) {
    assert(!Scopes.empty() && "no open scope");
    auto &Scope = Scopes.back();
    if (Scope.count(Name))
      return ~0u;
    uint32_t Slot = NextSlot++;
    if (NextSlot > MaxSlots)
      MaxSlots = NextSlot;
    Scope.emplace(Name, Slot);
    return Slot;
  }

  /// Looks \p Name up through enclosing scopes; returns ~0u if unbound.
  uint32_t lookup(const std::string &Name) const {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return Found->second;
    }
    return ~0u;
  }

  /// Records the slot watermark when a scope opens so sibling scopes can
  /// reuse slots.
  uint32_t watermark() const { return NextSlot; }
  void resetTo(uint32_t Mark) { NextSlot = Mark; }

  uint32_t maxSlots() const { return MaxSlots; }

private:
  std::vector<std::map<std::string, uint32_t>> Scopes;
  uint32_t NextSlot = 0;
  uint32_t MaxSlots = 0;
};

/// The analysis walker.
class SemaVisitor {
public:
  SemaVisitor(Program &P, DiagnosticEngine &Diags) : P(P), Diags(Diags) {}

  bool run();

private:
  void analyzeFunction(FunctionDecl &F);
  void analyzeStmt(Stmt &S, FunctionScope &Scope);
  void analyzeExpr(Expr &E, FunctionScope &Scope);

  uint32_t findGlobal(const std::string &Name) const {
    for (uint32_t I = 0; I != P.Globals.size(); ++I)
      if (P.Globals[I].Name == Name)
        return I;
    return ~0u;
  }

  Program &P;
  DiagnosticEngine &Diags;
};

bool SemaVisitor::run() {
  // Duplicate-declaration checks across the whole unit.
  std::map<std::string, SourceLocation> SeenFunctions;
  for (const FunctionDecl &F : P.Functions) {
    auto [It, Inserted] = SeenFunctions.emplace(F.Name, F.Loc);
    if (!Inserted)
      Diags.error(F.Loc,
                  format("redefinition of function '%s'", F.Name.c_str()));
  }
  std::map<std::string, SourceLocation> SeenGlobals;
  for (const GlobalVarDecl &G : P.Globals) {
    auto [It, Inserted] = SeenGlobals.emplace(G.Name, G.Loc);
    if (!Inserted)
      Diags.error(G.Loc, format("redefinition of global variable '%s'",
                                G.Name.c_str()));
    if (SeenFunctions.count(G.Name))
      Diags.error(G.Loc,
                  format("global variable '%s' collides with a function",
                         G.Name.c_str()));
  }

  uint32_t MainIdx = P.findFunction("main");
  if (MainIdx == ~0u)
    Diags.error(SourceLocation(), "program has no 'main' function");
  else if (!P.Functions[MainIdx].Params.empty())
    Diags.error(P.Functions[MainIdx].Loc,
                "'main' must take no parameters");

  for (FunctionDecl &F : P.Functions)
    analyzeFunction(F);
  return !Diags.hasErrors();
}

void SemaVisitor::analyzeFunction(FunctionDecl &F) {
  FunctionScope Scope;
  Scope.push();
  for (const std::string &Param : F.Params)
    if (Scope.declare(Param) == ~0u)
      Diags.error(F.Loc, format("duplicate parameter '%s' in function '%s'",
                                Param.c_str(), F.Name.c_str()));
  if (F.Body)
    analyzeStmt(*F.Body, Scope);
  Scope.pop();
  F.NumSlots = Scope.maxSlots();
}

void SemaVisitor::analyzeStmt(Stmt &S, FunctionScope &Scope) {
  switch (S.kind()) {
  case StmtKind::Block: {
    auto &Block = static_cast<BlockStmt &>(S);
    uint32_t Mark = Scope.watermark();
    Scope.push();
    for (StmtPtr &Child : Block.Body)
      analyzeStmt(*Child, Scope);
    Scope.pop();
    Scope.resetTo(Mark);
    return;
  }
  case StmtKind::VarDecl: {
    auto &Decl = static_cast<VarDeclStmt &>(S);
    if (Decl.Init)
      analyzeExpr(*Decl.Init, Scope);
    uint32_t Slot = Scope.declare(Decl.Name);
    if (Slot == ~0u) {
      Diags.error(S.loc(), format("redeclaration of variable '%s'",
                                  Decl.Name.c_str()));
      Slot = 0;
    }
    Decl.Slot = Slot;
    return;
  }
  case StmtKind::If: {
    auto &If = static_cast<IfStmt &>(S);
    analyzeExpr(*If.Cond, Scope);
    analyzeStmt(*If.Then, Scope);
    if (If.Else)
      analyzeStmt(*If.Else, Scope);
    return;
  }
  case StmtKind::While: {
    auto &While = static_cast<WhileStmt &>(S);
    analyzeExpr(*While.Cond, Scope);
    analyzeStmt(*While.Body, Scope);
    return;
  }
  case StmtKind::Return: {
    auto &Ret = static_cast<ReturnStmt &>(S);
    if (Ret.Value)
      analyzeExpr(*Ret.Value, Scope);
    return;
  }
  case StmtKind::Print: {
    analyzeExpr(*static_cast<PrintStmt &>(S).Value, Scope);
    return;
  }
  case StmtKind::ExprStmt: {
    analyzeExpr(*static_cast<ExprStmt &>(S).E, Scope);
    return;
  }
  }
}

void SemaVisitor::analyzeExpr(Expr &E, FunctionScope &Scope) {
  switch (E.kind()) {
  case ExprKind::IntLiteral:
    return;
  case ExprKind::NameRef: {
    auto &Ref = static_cast<NameRefExpr &>(E);
    if (uint32_t Slot = Scope.lookup(Ref.Name); Slot != ~0u) {
      Ref.Binding = NameBinding::Local;
      Ref.Slot = Slot;
      return;
    }
    if (uint32_t Idx = findGlobal(Ref.Name); Idx != ~0u) {
      Ref.Binding = NameBinding::Global;
      Ref.Slot = Idx;
      return;
    }
    if (uint32_t Idx = P.findFunction(Ref.Name); Idx != ~0u) {
      Ref.Binding = NameBinding::Function;
      Ref.Slot = Idx;
      return;
    }
    if (Ref.Name == "peek" || Ref.Name == "poke") {
      // Handled at the enclosing CallExpr; a bare reference is an error.
      Diags.error(E.loc(),
                  format("built-in '%s' can only be called",
                         Ref.Name.c_str()));
      return;
    }
    Diags.error(E.loc(),
                format("use of undeclared name '%s'", Ref.Name.c_str()));
    return;
  }
  case ExprKind::FuncAddr: {
    auto &Addr = static_cast<FuncAddrExpr &>(E);
    uint32_t Idx = P.findFunction(Addr.Name);
    if (Idx == ~0u) {
      Diags.error(E.loc(),
                  format("'&%s' does not name a function",
                         Addr.Name.c_str()));
      return;
    }
    Addr.FunctionIndex = Idx;
    return;
  }
  case ExprKind::Unary: {
    analyzeExpr(*static_cast<UnaryExpr &>(E).Operand, Scope);
    return;
  }
  case ExprKind::Binary: {
    auto &Bin = static_cast<BinaryExpr &>(E);
    analyzeExpr(*Bin.LHS, Scope);
    analyzeExpr(*Bin.RHS, Scope);
    return;
  }
  case ExprKind::Assign: {
    auto &Assign = static_cast<AssignExpr &>(E);
    analyzeExpr(*Assign.Value, Scope);
    if (uint32_t Slot = Scope.lookup(Assign.Name); Slot != ~0u) {
      Assign.Binding = NameBinding::Local;
      Assign.Slot = Slot;
      return;
    }
    if (uint32_t Idx = findGlobal(Assign.Name); Idx != ~0u) {
      Assign.Binding = NameBinding::Global;
      Assign.Slot = Idx;
      return;
    }
    if (P.findFunction(Assign.Name) != ~0u) {
      Diags.error(E.loc(), format("cannot assign to function '%s'",
                                  Assign.Name.c_str()));
      return;
    }
    Diags.error(E.loc(), format("assignment to undeclared name '%s'",
                                Assign.Name.c_str()));
    return;
  }
  case ExprKind::Call: {
    auto &Call = static_cast<CallExpr &>(E);
    // Built-ins parse as calls; they apply unless a user declaration
    // shadows the name.
    if (Call.Callee->kind() == ExprKind::NameRef) {
      auto &Ref = static_cast<NameRefExpr &>(*Call.Callee);
      bool Shadowed = Scope.lookup(Ref.Name) != ~0u ||
                      findGlobal(Ref.Name) != ~0u ||
                      P.findFunction(Ref.Name) != ~0u;
      if (!Shadowed && (Ref.Name == "peek" || Ref.Name == "poke")) {
        Call.Builtin = Ref.Name == "peek" ? BuiltinKind::Peek
                                          : BuiltinKind::Poke;
        size_t Expected = Call.Builtin == BuiltinKind::Peek ? 1 : 2;
        if (Call.Args.size() != Expected)
          Diags.error(E.loc(),
                      format("'%s' takes %zu argument%s", Ref.Name.c_str(),
                             Expected, Expected == 1 ? "" : "s"));
        for (ExprPtr &Arg : Call.Args)
          analyzeExpr(*Arg, Scope);
        return;
      }
    }
    analyzeExpr(*Call.Callee, Scope);
    for (ExprPtr &Arg : Call.Args)
      analyzeExpr(*Arg, Scope);
    // A call through a bare function name is a direct call.
    if (Call.Callee->kind() == ExprKind::NameRef) {
      auto &Ref = static_cast<NameRefExpr &>(*Call.Callee);
      if (Ref.Binding == NameBinding::Function) {
        Call.IsDirect = true;
        Call.DirectFunctionIndex = Ref.Slot;
        const FunctionDecl &Callee = P.Functions[Ref.Slot];
        if (Callee.Params.size() != Call.Args.size())
          Diags.error(E.loc(),
                      format("call to '%s' with %zu arguments; it takes %zu",
                             Callee.Name.c_str(), Call.Args.size(),
                             Callee.Params.size()));
      }
    }
    return;
  }
  }
}

} // namespace

bool gprof::analyze(Program &P, DiagnosticEngine &Diags) {
  SemaVisitor V(P, Diags);
  return V.run();
}
