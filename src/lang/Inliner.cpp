//===- lang/Inliner.cpp -----------------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "lang/Inliner.h"

#include "support/Format.h"

#include <map>

using namespace gprof;

ExprPtr gprof::cloneExpr(const Expr &E) {
  switch (E.kind()) {
  case ExprKind::IntLiteral: {
    const auto &Lit = static_cast<const IntLiteralExpr &>(E);
    return std::make_unique<IntLiteralExpr>(Lit.Value, Lit.loc());
  }
  case ExprKind::NameRef: {
    const auto &Ref = static_cast<const NameRefExpr &>(E);
    return std::make_unique<NameRefExpr>(Ref.Name, Ref.loc());
  }
  case ExprKind::FuncAddr: {
    const auto &Addr = static_cast<const FuncAddrExpr &>(E);
    return std::make_unique<FuncAddrExpr>(Addr.Name, Addr.loc());
  }
  case ExprKind::Unary: {
    const auto &Un = static_cast<const UnaryExpr &>(E);
    return std::make_unique<UnaryExpr>(Un.Op, cloneExpr(*Un.Operand),
                                       Un.loc());
  }
  case ExprKind::Binary: {
    const auto &Bin = static_cast<const BinaryExpr &>(E);
    return std::make_unique<BinaryExpr>(Bin.Op, cloneExpr(*Bin.LHS),
                                        cloneExpr(*Bin.RHS), Bin.loc());
  }
  case ExprKind::Assign: {
    const auto &Assign = static_cast<const AssignExpr &>(E);
    return std::make_unique<AssignExpr>(
        Assign.Name, cloneExpr(*Assign.Value), Assign.loc());
  }
  case ExprKind::Call: {
    const auto &Call = static_cast<const CallExpr &>(E);
    std::vector<ExprPtr> Args;
    for (const ExprPtr &Arg : Call.Args)
      Args.push_back(cloneExpr(*Arg));
    return std::make_unique<CallExpr>(cloneExpr(*Call.Callee),
                                      std::move(Args), Call.loc());
  }
  }
  return nullptr;
}

namespace {

/// Counts references to each name within an expression; returns false if
/// the expression does something an inlinable body must not (assign, or
/// reference a name that is not in \p AllowedParams).
bool collectNameUses(const Expr &E,
                     const std::vector<std::string> &AllowedParams,
                     std::map<std::string, unsigned> &Uses,
                     const Program &P) {
  switch (E.kind()) {
  case ExprKind::IntLiteral:
    return true;
  case ExprKind::NameRef: {
    const auto &Ref = static_cast<const NameRefExpr &>(E);
    for (const std::string &Param : AllowedParams)
      if (Param == Ref.Name) {
        ++Uses[Ref.Name];
        return true;
      }
    // Function names are fine (they denote globals of the program);
    // anything else would need the caller's scope.
    return P.findFunction(Ref.Name) != ~0u;
  }
  case ExprKind::FuncAddr:
    return true;
  case ExprKind::Unary:
    return collectNameUses(*static_cast<const UnaryExpr &>(E).Operand,
                           AllowedParams, Uses, P);
  case ExprKind::Binary: {
    const auto &Bin = static_cast<const BinaryExpr &>(E);
    return collectNameUses(*Bin.LHS, AllowedParams, Uses, P) &&
           collectNameUses(*Bin.RHS, AllowedParams, Uses, P);
  }
  case ExprKind::Assign:
    return false; // Assignments could mutate the caller's state.
  case ExprKind::Call: {
    const auto &Call = static_cast<const CallExpr &>(E);
    if (!collectNameUses(*Call.Callee, AllowedParams, Uses, P))
      return false;
    for (const ExprPtr &Arg : Call.Args)
      if (!collectNameUses(*Arg, AllowedParams, Uses, P))
        return false;
    return true;
  }
  }
  return false;
}

/// True if evaluating \p E cannot have side effects or traps worth
/// preserving in order/count (literals and bare name reads).
bool isDuplicationSafe(const Expr &E) {
  return E.kind() == ExprKind::IntLiteral || E.kind() == ExprKind::NameRef;
}

/// Clones \p Body substituting parameter references via \p ParamToArg.
ExprPtr substitute(const Expr &Body,
                   const std::map<std::string, const Expr *> &ParamToArg) {
  if (Body.kind() == ExprKind::NameRef) {
    const auto &Ref = static_cast<const NameRefExpr &>(Body);
    auto It = ParamToArg.find(Ref.Name);
    if (It != ParamToArg.end())
      return cloneExpr(*It->second);
    return cloneExpr(Body);
  }
  switch (Body.kind()) {
  case ExprKind::Unary: {
    const auto &Un = static_cast<const UnaryExpr &>(Body);
    return std::make_unique<UnaryExpr>(
        Un.Op, substitute(*Un.Operand, ParamToArg), Un.loc());
  }
  case ExprKind::Binary: {
    const auto &Bin = static_cast<const BinaryExpr &>(Body);
    return std::make_unique<BinaryExpr>(
        Bin.Op, substitute(*Bin.LHS, ParamToArg),
        substitute(*Bin.RHS, ParamToArg), Bin.loc());
  }
  case ExprKind::Call: {
    const auto &Call = static_cast<const CallExpr &>(Body);
    std::vector<ExprPtr> Args;
    for (const ExprPtr &Arg : Call.Args)
      Args.push_back(substitute(*Arg, ParamToArg));
    return std::make_unique<CallExpr>(substitute(*Call.Callee, ParamToArg),
                                      std::move(Args), Call.loc());
  }
  default:
    return cloneExpr(Body);
  }
}

/// The inlining walker: rewrites call expressions in place.
class InlinePass {
public:
  InlinePass(Program &P, const FunctionDecl &Target)
      : P(P), Target(Target),
        BodyExpr(static_cast<const ReturnStmt &>(*Target.Body->Body[0])
                     .Value.get()) {}

  unsigned run() {
    for (FunctionDecl &F : P.Functions) {
      if (F.Name == Target.Name)
        continue; // Never expand a routine into itself.
      walkStmt(*F.Body);
    }
    return Expanded;
  }

private:
  void walkStmt(Stmt &S) {
    switch (S.kind()) {
    case StmtKind::Block:
      for (StmtPtr &Child : static_cast<BlockStmt &>(S).Body)
        walkStmt(*Child);
      return;
    case StmtKind::VarDecl: {
      auto &Decl = static_cast<VarDeclStmt &>(S);
      if (Decl.Init)
        walkExpr(Decl.Init);
      return;
    }
    case StmtKind::If: {
      auto &If = static_cast<IfStmt &>(S);
      walkExpr(If.Cond);
      walkStmt(*If.Then);
      if (If.Else)
        walkStmt(*If.Else);
      return;
    }
    case StmtKind::While: {
      auto &While = static_cast<WhileStmt &>(S);
      walkExpr(While.Cond);
      walkStmt(*While.Body);
      return;
    }
    case StmtKind::Return: {
      auto &Ret = static_cast<ReturnStmt &>(S);
      if (Ret.Value)
        walkExpr(Ret.Value);
      return;
    }
    case StmtKind::Print:
      walkExpr(static_cast<PrintStmt &>(S).Value);
      return;
    case StmtKind::ExprStmt:
      walkExpr(static_cast<ExprStmt &>(S).E);
      return;
    }
  }

  void walkExpr(ExprPtr &E) {
    // Recurse first so nested calls inside arguments get expanded; the
    // substituted body is NOT revisited (no recursive re-expansion).
    switch (E->kind()) {
    case ExprKind::Unary:
      walkExpr(static_cast<UnaryExpr &>(*E).Operand);
      break;
    case ExprKind::Binary: {
      auto &Bin = static_cast<BinaryExpr &>(*E);
      walkExpr(Bin.LHS);
      walkExpr(Bin.RHS);
      break;
    }
    case ExprKind::Assign:
      walkExpr(static_cast<AssignExpr &>(*E).Value);
      break;
    case ExprKind::Call: {
      auto &Call = static_cast<CallExpr &>(*E);
      walkExpr(Call.Callee);
      for (ExprPtr &Arg : Call.Args)
        walkExpr(Arg);
      break;
    }
    default:
      break;
    }

    if (E->kind() != ExprKind::Call)
      return;
    auto &Call = static_cast<CallExpr &>(*E);
    if (Call.Callee->kind() != ExprKind::NameRef)
      return;
    if (static_cast<NameRefExpr &>(*Call.Callee).Name != Target.Name)
      return;
    if (Call.Args.size() != Target.Params.size())
      return; // Sema will diagnose the arity error.

    // Safety: a parameter used more than once may only bind a
    // duplication-safe argument.
    std::map<std::string, unsigned> Uses;
    if (!collectNameUses(*BodyExpr, Target.Params, Uses, P))
      return;
    std::map<std::string, const Expr *> ParamToArg;
    for (size_t I = 0; I != Target.Params.size(); ++I) {
      const std::string &Param = Target.Params[I];
      if (Uses[Param] > 1 && !isDuplicationSafe(*Call.Args[I]))
        return;
      // A parameter used zero times would *drop* the argument's side
      // effects entirely; only allow that for safe arguments too.
      if (Uses[Param] == 0 && !isDuplicationSafe(*Call.Args[I]))
        return;
      ParamToArg[Param] = Call.Args[I].get();
    }

    E = substitute(*BodyExpr, ParamToArg);
    ++Expanded;
  }

  Program &P;
  const FunctionDecl &Target;
  const Expr *BodyExpr;
  unsigned Expanded = 0;
};

} // namespace

bool gprof::isInlinableFunction(const FunctionDecl &F) {
  if (!F.Body || F.Body->Body.size() != 1)
    return false;
  const Stmt &Only = *F.Body->Body[0];
  if (Only.kind() != StmtKind::Return)
    return false;
  const auto &Ret = static_cast<const ReturnStmt &>(Only);
  // The free-name check needs the Program and happens in inlineCalls.
  return Ret.Value != nullptr;
}

unsigned gprof::inlineCalls(Program &P,
                            const std::vector<std::string> &Names,
                            DiagnosticEngine &Diags) {
  unsigned Total = 0;
  for (const std::string &Name : Names) {
    uint32_t Idx = P.findFunction(Name);
    if (Idx == ~0u) {
      Diags.error(SourceLocation(),
                  format("cannot inline unknown routine '%s'",
                         Name.c_str()));
      continue;
    }
    const FunctionDecl &Target = P.Functions[Idx];
    if (!isInlinableFunction(Target)) {
      Diags.error(Target.Loc,
                  format("routine '%s' is not inlinable (body must be a "
                         "single return expression)",
                         Name.c_str()));
      continue;
    }
    // The body must not need the caller's scope.
    std::map<std::string, unsigned> Uses;
    const auto &Ret =
        static_cast<const ReturnStmt &>(*Target.Body->Body[0]);
    if (!collectNameUses(*Ret.Value, Target.Params, Uses, P)) {
      Diags.error(Target.Loc,
                  format("routine '%s' is not inlinable (body uses names "
                         "other than its parameters)",
                         Name.c_str()));
      continue;
    }
    InlinePass Pass(P, Target);
    Total += Pass.run();
  }
  return Total;
}
