//===- lang/Parser.cpp -----------------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"

#include "lang/Lexer.h"
#include "support/Format.h"

#include <cassert>

using namespace gprof;

Parser::Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags)
    : Tokens(std::move(Tokens)), Diags(Diags) {
  assert(!this->Tokens.empty() &&
         this->Tokens.back().is(TokenKind::EndOfFile) &&
         "token stream must end in EOF");
}

const Token &Parser::peek(unsigned Ahead) const {
  size_t I = Pos + Ahead;
  if (I >= Tokens.size())
    I = Tokens.size() - 1; // EOF
  return Tokens[I];
}

Token Parser::consume() {
  Token T = Tokens[Pos];
  if (Pos + 1 < Tokens.size())
    ++Pos;
  return T;
}

bool Parser::match(TokenKind Kind) {
  if (!current().is(Kind))
    return false;
  consume();
  return true;
}

bool Parser::expect(TokenKind Kind, const char *Context) {
  if (match(Kind))
    return true;
  Diags.error(current().Loc,
              format("expected %s %s, found %s", tokenKindName(Kind),
                     Context, tokenKindName(current().Kind)));
  return false;
}

void Parser::synchronizeToDecl() {
  while (!current().is(TokenKind::EndOfFile) &&
         !current().is(TokenKind::KwFn) && !current().is(TokenKind::KwVar))
    consume();
}

void Parser::synchronizeToStmt() {
  while (!current().is(TokenKind::EndOfFile)) {
    if (match(TokenKind::Semicolon))
      return;
    if (current().is(TokenKind::RBrace) || current().is(TokenKind::LBrace))
      return;
    consume();
  }
}

Program Parser::parseProgram() {
  Program P;
  while (!current().is(TokenKind::EndOfFile)) {
    if (current().is(TokenKind::KwFn)) {
      parseFunction(P);
    } else if (current().is(TokenKind::KwVar)) {
      parseGlobal(P);
    } else {
      Diags.error(current().Loc,
                  format("expected 'fn' or 'var' at top level, found %s",
                         tokenKindName(current().Kind)));
      consume();
      synchronizeToDecl();
    }
  }
  return P;
}

void Parser::parseFunction(Program &P) {
  FunctionDecl F;
  F.Loc = current().Loc;
  expect(TokenKind::KwFn, "to begin function");
  if (!current().is(TokenKind::Identifier)) {
    Diags.error(current().Loc, "expected function name after 'fn'");
    synchronizeToDecl();
    return;
  }
  F.Name = consume().Text;
  if (!expect(TokenKind::LParen, "after function name")) {
    synchronizeToDecl();
    return;
  }
  if (!current().is(TokenKind::RParen)) {
    do {
      if (!current().is(TokenKind::Identifier)) {
        Diags.error(current().Loc, "expected parameter name");
        synchronizeToDecl();
        return;
      }
      F.Params.push_back(consume().Text);
    } while (match(TokenKind::Comma));
  }
  if (!expect(TokenKind::RParen, "after parameters")) {
    synchronizeToDecl();
    return;
  }
  if (!current().is(TokenKind::LBrace)) {
    Diags.error(current().Loc, "expected '{' to begin function body");
    synchronizeToDecl();
    return;
  }
  F.Body = parseBlock();
  P.Functions.push_back(std::move(F));
}

void Parser::parseGlobal(Program &P) {
  GlobalVarDecl G;
  G.Loc = current().Loc;
  expect(TokenKind::KwVar, "to begin global variable");
  if (!current().is(TokenKind::Identifier)) {
    Diags.error(current().Loc, "expected variable name after 'var'");
    synchronizeToDecl();
    return;
  }
  G.Name = consume().Text;
  if (match(TokenKind::Assign)) {
    bool Negative = match(TokenKind::Minus);
    if (!current().is(TokenKind::Number)) {
      Diags.error(current().Loc,
                  "global initializer must be an integer constant");
      synchronizeToDecl();
      return;
    }
    G.InitValue = consume().Value;
    if (Negative)
      G.InitValue = -G.InitValue;
  }
  expect(TokenKind::Semicolon, "after global variable");
  P.Globals.push_back(std::move(G));
}

std::unique_ptr<BlockStmt> Parser::parseBlock() {
  SourceLocation Loc = current().Loc;
  expect(TokenKind::LBrace, "to begin block");
  std::vector<StmtPtr> Body;
  while (!current().is(TokenKind::RBrace) &&
         !current().is(TokenKind::EndOfFile)) {
    StmtPtr S = parseStatement();
    if (S)
      Body.push_back(std::move(S));
  }
  expect(TokenKind::RBrace, "to end block");
  return std::make_unique<BlockStmt>(std::move(Body), Loc);
}

StmtPtr Parser::parseStatement() {
  SourceLocation Loc = current().Loc;
  switch (current().Kind) {
  case TokenKind::LBrace:
    return parseBlock();
  case TokenKind::KwVar: {
    consume();
    if (!current().is(TokenKind::Identifier)) {
      Diags.error(current().Loc, "expected variable name after 'var'");
      synchronizeToStmt();
      return nullptr;
    }
    std::string Name = consume().Text;
    ExprPtr Init;
    if (match(TokenKind::Assign))
      Init = parseExpr();
    expect(TokenKind::Semicolon, "after variable declaration");
    return std::make_unique<VarDeclStmt>(std::move(Name), std::move(Init),
                                         Loc);
  }
  case TokenKind::KwIf:
    return parseIf();
  case TokenKind::KwWhile:
    return parseWhile();
  case TokenKind::KwReturn: {
    consume();
    ExprPtr Value;
    if (!current().is(TokenKind::Semicolon))
      Value = parseExpr();
    expect(TokenKind::Semicolon, "after return statement");
    return std::make_unique<ReturnStmt>(std::move(Value), Loc);
  }
  case TokenKind::KwPrint: {
    consume();
    ExprPtr Value = parseExpr();
    expect(TokenKind::Semicolon, "after print statement");
    if (!Value) {
      synchronizeToStmt();
      return nullptr;
    }
    return std::make_unique<PrintStmt>(std::move(Value), Loc);
  }
  default: {
    ExprPtr E = parseExpr();
    if (!E) {
      synchronizeToStmt();
      return nullptr;
    }
    expect(TokenKind::Semicolon, "after expression statement");
    return std::make_unique<ExprStmt>(std::move(E), Loc);
  }
  }
}

StmtPtr Parser::parseIf() {
  SourceLocation Loc = current().Loc;
  expect(TokenKind::KwIf, "to begin if statement");
  expect(TokenKind::LParen, "after 'if'");
  ExprPtr Cond = parseExpr();
  expect(TokenKind::RParen, "after if condition");
  if (!Cond || !current().is(TokenKind::LBrace)) {
    if (Cond)
      Diags.error(current().Loc, "expected '{' after if condition");
    synchronizeToStmt();
    return nullptr;
  }
  StmtPtr Then = parseBlock();
  StmtPtr Else;
  if (match(TokenKind::KwElse)) {
    if (current().is(TokenKind::KwIf)) {
      Else = parseIf();
    } else if (current().is(TokenKind::LBrace)) {
      Else = parseBlock();
    } else {
      Diags.error(current().Loc, "expected '{' or 'if' after 'else'");
      synchronizeToStmt();
    }
  }
  return std::make_unique<IfStmt>(std::move(Cond), std::move(Then),
                                  std::move(Else), Loc);
}

StmtPtr Parser::parseWhile() {
  SourceLocation Loc = current().Loc;
  expect(TokenKind::KwWhile, "to begin while statement");
  expect(TokenKind::LParen, "after 'while'");
  ExprPtr Cond = parseExpr();
  expect(TokenKind::RParen, "after while condition");
  if (!Cond || !current().is(TokenKind::LBrace)) {
    if (Cond)
      Diags.error(current().Loc, "expected '{' after while condition");
    synchronizeToStmt();
    return nullptr;
  }
  StmtPtr Body = parseBlock();
  return std::make_unique<WhileStmt>(std::move(Cond), std::move(Body), Loc);
}

ExprPtr Parser::parseExpr() { return parseAssignment(); }

ExprPtr Parser::parseAssignment() {
  // 'IDENT = ...' is an assignment; anything else falls through to the
  // operator grammar.
  if (current().is(TokenKind::Identifier) &&
      peek(1).is(TokenKind::Assign)) {
    SourceLocation Loc = current().Loc;
    std::string Name = consume().Text;
    consume(); // '='
    ExprPtr Value = parseAssignment();
    if (!Value)
      return nullptr;
    return std::make_unique<AssignExpr>(std::move(Name), std::move(Value),
                                        Loc);
  }
  return parseLogicalOr();
}

ExprPtr Parser::parseLogicalOr() {
  ExprPtr LHS = parseLogicalAnd();
  while (LHS && current().is(TokenKind::PipePipe)) {
    SourceLocation Loc = consume().Loc;
    ExprPtr RHS = parseLogicalAnd();
    if (!RHS)
      return nullptr;
    LHS = std::make_unique<BinaryExpr>(BinaryOp::LogicalOr, std::move(LHS),
                                       std::move(RHS), Loc);
  }
  return LHS;
}

ExprPtr Parser::parseLogicalAnd() {
  ExprPtr LHS = parseComparison();
  while (LHS && current().is(TokenKind::AmpAmp)) {
    SourceLocation Loc = consume().Loc;
    ExprPtr RHS = parseComparison();
    if (!RHS)
      return nullptr;
    LHS = std::make_unique<BinaryExpr>(BinaryOp::LogicalAnd, std::move(LHS),
                                       std::move(RHS), Loc);
  }
  return LHS;
}

ExprPtr Parser::parseComparison() {
  ExprPtr LHS = parseAdditive();
  if (!LHS)
    return nullptr;
  BinaryOp Op;
  switch (current().Kind) {
  case TokenKind::EqualEqual:
    Op = BinaryOp::Eq;
    break;
  case TokenKind::BangEqual:
    Op = BinaryOp::Ne;
    break;
  case TokenKind::Less:
    Op = BinaryOp::Lt;
    break;
  case TokenKind::LessEqual:
    Op = BinaryOp::Le;
    break;
  case TokenKind::Greater:
    Op = BinaryOp::Gt;
    break;
  case TokenKind::GreaterEqual:
    Op = BinaryOp::Ge;
    break;
  default:
    return LHS;
  }
  SourceLocation Loc = consume().Loc;
  ExprPtr RHS = parseAdditive();
  if (!RHS)
    return nullptr;
  return std::make_unique<BinaryExpr>(Op, std::move(LHS), std::move(RHS),
                                      Loc);
}

ExprPtr Parser::parseAdditive() {
  ExprPtr LHS = parseMultiplicative();
  while (LHS && (current().is(TokenKind::Plus) ||
                 current().is(TokenKind::Minus))) {
    BinaryOp Op = current().is(TokenKind::Plus) ? BinaryOp::Add
                                                : BinaryOp::Sub;
    SourceLocation Loc = consume().Loc;
    ExprPtr RHS = parseMultiplicative();
    if (!RHS)
      return nullptr;
    LHS = std::make_unique<BinaryExpr>(Op, std::move(LHS), std::move(RHS),
                                       Loc);
  }
  return LHS;
}

ExprPtr Parser::parseMultiplicative() {
  ExprPtr LHS = parseUnary();
  while (LHS &&
         (current().is(TokenKind::Star) || current().is(TokenKind::Slash) ||
          current().is(TokenKind::Percent))) {
    BinaryOp Op = BinaryOp::Mul;
    if (current().is(TokenKind::Slash))
      Op = BinaryOp::Div;
    else if (current().is(TokenKind::Percent))
      Op = BinaryOp::Mod;
    SourceLocation Loc = consume().Loc;
    ExprPtr RHS = parseUnary();
    if (!RHS)
      return nullptr;
    LHS = std::make_unique<BinaryExpr>(Op, std::move(LHS), std::move(RHS),
                                       Loc);
  }
  return LHS;
}

ExprPtr Parser::parseUnary() {
  if (current().is(TokenKind::Minus)) {
    SourceLocation Loc = consume().Loc;
    ExprPtr Operand = parseUnary();
    if (!Operand)
      return nullptr;
    return std::make_unique<UnaryExpr>(UnaryOp::Neg, std::move(Operand),
                                       Loc);
  }
  if (current().is(TokenKind::Bang)) {
    SourceLocation Loc = consume().Loc;
    ExprPtr Operand = parseUnary();
    if (!Operand)
      return nullptr;
    return std::make_unique<UnaryExpr>(UnaryOp::Not, std::move(Operand),
                                       Loc);
  }
  return parsePostfix();
}

ExprPtr Parser::parsePostfix() {
  ExprPtr E = parsePrimary();
  while (E && current().is(TokenKind::LParen)) {
    SourceLocation Loc = consume().Loc;
    std::vector<ExprPtr> Args;
    if (!current().is(TokenKind::RParen)) {
      do {
        ExprPtr Arg = parseExpr();
        if (!Arg)
          return nullptr;
        Args.push_back(std::move(Arg));
      } while (match(TokenKind::Comma));
    }
    expect(TokenKind::RParen, "after call arguments");
    E = std::make_unique<CallExpr>(std::move(E), std::move(Args), Loc);
  }
  return E;
}

ExprPtr Parser::parsePrimary() {
  SourceLocation Loc = current().Loc;
  switch (current().Kind) {
  case TokenKind::Number: {
    int64_t Value = consume().Value;
    return std::make_unique<IntLiteralExpr>(Value, Loc);
  }
  case TokenKind::Identifier: {
    std::string Name = consume().Text;
    return std::make_unique<NameRefExpr>(std::move(Name), Loc);
  }
  case TokenKind::Amp: {
    consume();
    if (!current().is(TokenKind::Identifier)) {
      Diags.error(current().Loc, "expected function name after '&'");
      return nullptr;
    }
    std::string Name = consume().Text;
    return std::make_unique<FuncAddrExpr>(std::move(Name), Loc);
  }
  case TokenKind::LParen: {
    consume();
    ExprPtr E = parseExpr();
    expect(TokenKind::RParen, "to close parenthesized expression");
    return E;
  }
  default:
    Diags.error(Loc, format("expected expression, found %s",
                            tokenKindName(current().Kind)));
    return nullptr;
  }
}

Program gprof::parseTL(std::string_view Source, DiagnosticEngine &Diags) {
  Lexer L(Source, Diags);
  Parser P(L.lexAll(), Diags);
  return P.parseProgram();
}
