//===- lang/Diagnostics.h - Diagnostic collection for the TL compiler ----===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lexer, parser and semantic analysis report problems through a
/// DiagnosticEngine rather than failing fast, so one compile surfaces as
/// many errors as possible.  Messages follow the LLVM style guide: start
/// lowercase, no trailing period.
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_LANG_DIAGNOSTICS_H
#define GPROF_LANG_DIAGNOSTICS_H

#include "lang/SourceLocation.h"

#include <string>
#include <vector>

namespace gprof {

/// Severity of a diagnostic.
enum class DiagSeverity { Error, Warning, Note };

/// One reported diagnostic.
struct Diagnostic {
  DiagSeverity Severity;
  SourceLocation Loc;
  std::string Message;

  /// Renders "line:col: error: message".
  std::string render(const std::string &FileName) const;
};

/// Accumulates diagnostics for one compilation.
class DiagnosticEngine {
public:
  void error(SourceLocation Loc, std::string Message) {
    Diags.push_back({DiagSeverity::Error, Loc, std::move(Message)});
    ++ErrorCount;
  }

  void warning(SourceLocation Loc, std::string Message) {
    Diags.push_back({DiagSeverity::Warning, Loc, std::move(Message)});
  }

  void note(SourceLocation Loc, std::string Message) {
    Diags.push_back({DiagSeverity::Note, Loc, std::move(Message)});
  }

  bool hasErrors() const { return ErrorCount != 0; }
  unsigned errorCount() const { return ErrorCount; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders every diagnostic, one per line.
  std::string renderAll(const std::string &FileName) const;

private:
  std::vector<Diagnostic> Diags;
  unsigned ErrorCount = 0;
};

} // namespace gprof

#endif // GPROF_LANG_DIAGNOSTICS_H
