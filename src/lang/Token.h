//===- lang/Token.h - Token kinds for the TL language ---------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// TL is the small imperative language this reproduction uses to write the
/// workloads that get profiled.  Its compiler plays the role of the paper's
/// C/Fortran77/Pascal compilers: it "can insert calls to a monitoring
/// routine in the prologue for each routine" (paper §3).
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_LANG_TOKEN_H
#define GPROF_LANG_TOKEN_H

#include "lang/SourceLocation.h"

#include <cstdint>
#include <string>

namespace gprof {

/// Lexical token kinds of TL.
enum class TokenKind : uint8_t {
  EndOfFile,
  Identifier,
  Number,

  // Keywords.
  KwFn,
  KwVar,
  KwIf,
  KwElse,
  KwWhile,
  KwReturn,
  KwPrint,

  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  Comma,
  Semicolon,
  Assign,     // =
  Plus,       // +
  Minus,      // -
  Star,       // *
  Slash,      // /
  Percent,    // %
  Bang,       // !
  Amp,        // & (function reference)
  EqualEqual, // ==
  BangEqual,  // !=
  Less,       // <
  LessEqual,  // <=
  Greater,    // >
  GreaterEqual, // >=
  AmpAmp,     // &&
  PipePipe,   // ||

  Invalid,
};

/// Returns a printable spelling for diagnostics ("'=='", "identifier"...).
const char *tokenKindName(TokenKind Kind);

/// One lexed token.
struct Token {
  TokenKind Kind = TokenKind::Invalid;
  SourceLocation Loc;
  /// Identifier spelling (Identifier tokens only).
  std::string Text;
  /// Numeric value (Number tokens only).
  int64_t Value = 0;

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace gprof

#endif // GPROF_LANG_TOKEN_H
