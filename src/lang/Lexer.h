//===- lang/Lexer.h - Hand-written lexer for TL ----------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#ifndef GPROF_LANG_LEXER_H
#define GPROF_LANG_LEXER_H

#include "lang/Diagnostics.h"
#include "lang/Token.h"

#include <string_view>
#include <vector>

namespace gprof {

/// Converts TL source text to a token stream.  Malformed characters are
/// reported through the DiagnosticEngine and skipped, so the parser always
/// sees a well-formed stream ending in EndOfFile.
class Lexer {
public:
  Lexer(std::string_view Source, DiagnosticEngine &Diags);

  /// Lexes the entire input.  The last token is always EndOfFile.
  std::vector<Token> lexAll();

private:
  Token lexToken();
  void skipWhitespaceAndComments();
  Token lexNumber();
  Token lexIdentifierOrKeyword();
  Token makeToken(TokenKind Kind);

  char peek(unsigned Ahead = 0) const;
  char advance();
  bool atEnd() const { return Pos >= Source.size(); }
  SourceLocation here() const { return {Line, Column}; }

  std::string_view Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Column = 1;
  SourceLocation TokenStart;
};

} // namespace gprof

#endif // GPROF_LANG_LEXER_H
