//===- lang/AST.h - Abstract syntax tree for TL ----------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST node classes for TL.  Nodes carry a Kind discriminator (no RTTI,
/// per the coding standards) and are owned through unique_ptr.  Semantic
/// analysis fills in the resolution fields (local slots, global indices,
/// callee bindings) in place.
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_LANG_AST_H
#define GPROF_LANG_AST_H

#include "lang/SourceLocation.h"
#include "lang/Token.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace gprof {

class Expr;
class Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

/// How a name reference was resolved by Sema.
enum class NameBinding : uint8_t {
  Unresolved,
  Local,    ///< Parameter or local variable; Slot is the frame slot.
  Global,   ///< Global variable; Slot is the global index.
  Function, ///< Function name; Slot is the function index.
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Discriminator for Expr subclasses.
enum class ExprKind : uint8_t {
  IntLiteral,
  NameRef,
  FuncAddr,
  Unary,
  Binary,
  Assign,
  Call,
};

/// Base class of all TL expressions.
class Expr {
public:
  Expr(ExprKind Kind, SourceLocation Loc) : Kind(Kind), Loc(Loc) {}
  virtual ~Expr() = default;

  ExprKind kind() const { return Kind; }
  SourceLocation loc() const { return Loc; }

private:
  ExprKind Kind;
  SourceLocation Loc;
};

/// An integer literal.
class IntLiteralExpr : public Expr {
public:
  IntLiteralExpr(int64_t Value, SourceLocation Loc)
      : Expr(ExprKind::IntLiteral, Loc), Value(Value) {}

  int64_t Value;
};

/// A reference to a variable (or, after resolution, possibly a function
/// used as a value).
class NameRefExpr : public Expr {
public:
  NameRefExpr(std::string Name, SourceLocation Loc)
      : Expr(ExprKind::NameRef, Loc), Name(std::move(Name)) {}

  std::string Name;
  NameBinding Binding = NameBinding::Unresolved;
  uint32_t Slot = 0;
};

/// '&name': takes the address of a function, producing a functional value
/// — the paper's "functional parameters or functional variables" (§2),
/// which create call sites with multiple dynamic callees.
class FuncAddrExpr : public Expr {
public:
  FuncAddrExpr(std::string Name, SourceLocation Loc)
      : Expr(ExprKind::FuncAddr, Loc), Name(std::move(Name)) {}

  std::string Name;
  uint32_t FunctionIndex = 0; ///< Filled by Sema.
};

/// Unary operator kinds.
enum class UnaryOp : uint8_t { Neg, Not };

/// A unary expression.
class UnaryExpr : public Expr {
public:
  UnaryExpr(UnaryOp Op, ExprPtr Operand, SourceLocation Loc)
      : Expr(ExprKind::Unary, Loc), Op(Op), Operand(std::move(Operand)) {}

  UnaryOp Op;
  ExprPtr Operand;
};

/// Binary operator kinds (logical ops short-circuit).
enum class BinaryOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  LogicalAnd,
  LogicalOr,
};

/// A binary expression.
class BinaryExpr : public Expr {
public:
  BinaryExpr(BinaryOp Op, ExprPtr LHS, ExprPtr RHS, SourceLocation Loc)
      : Expr(ExprKind::Binary, Loc), Op(Op), LHS(std::move(LHS)),
        RHS(std::move(RHS)) {}

  BinaryOp Op;
  ExprPtr LHS;
  ExprPtr RHS;
};

/// 'name = value' (assignment is an expression yielding the stored value).
class AssignExpr : public Expr {
public:
  AssignExpr(std::string Name, ExprPtr Value, SourceLocation Loc)
      : Expr(ExprKind::Assign, Loc), Name(std::move(Name)),
        Value(std::move(Value)) {}

  std::string Name;
  ExprPtr Value;
  NameBinding Binding = NameBinding::Unresolved;
  uint32_t Slot = 0;
};

/// Built-in operations that parse as calls.
enum class BuiltinKind : uint8_t {
  None,
  Peek, ///< peek(addr): read a word of VM memory.
  Poke, ///< poke(addr, value): write a word; yields the value.
};

/// A call.  Direct calls name a function; indirect calls go through an
/// arbitrary callee expression holding a function address; peek/poke are
/// built-ins resolved by Sema (unless shadowed by a user function).
class CallExpr : public Expr {
public:
  CallExpr(ExprPtr Callee, std::vector<ExprPtr> Args, SourceLocation Loc)
      : Expr(ExprKind::Call, Loc), Callee(std::move(Callee)),
        Args(std::move(Args)) {}

  ExprPtr Callee;
  std::vector<ExprPtr> Args;
  /// True once Sema determines the callee is a function name (direct call).
  bool IsDirect = false;
  uint32_t DirectFunctionIndex = 0; ///< Valid if IsDirect.
  BuiltinKind Builtin = BuiltinKind::None;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

/// Discriminator for Stmt subclasses.
enum class StmtKind : uint8_t {
  Block,
  VarDecl,
  If,
  While,
  Return,
  Print,
  ExprStmt,
};

/// Base class of all TL statements.
class Stmt {
public:
  Stmt(StmtKind Kind, SourceLocation Loc) : Kind(Kind), Loc(Loc) {}
  virtual ~Stmt() = default;

  StmtKind kind() const { return Kind; }
  SourceLocation loc() const { return Loc; }

private:
  StmtKind Kind;
  SourceLocation Loc;
};

/// '{ ... }'.
class BlockStmt : public Stmt {
public:
  BlockStmt(std::vector<StmtPtr> Body, SourceLocation Loc)
      : Stmt(StmtKind::Block, Loc), Body(std::move(Body)) {}

  std::vector<StmtPtr> Body;
};

/// 'var name = init;' inside a function body.
class VarDeclStmt : public Stmt {
public:
  VarDeclStmt(std::string Name, ExprPtr Init, SourceLocation Loc)
      : Stmt(StmtKind::VarDecl, Loc), Name(std::move(Name)),
        Init(std::move(Init)) {}

  std::string Name;
  ExprPtr Init; ///< May be null (defaults to 0).
  uint32_t Slot = 0; ///< Frame slot assigned by Sema.
};

/// 'if (cond) then else else'.
class IfStmt : public Stmt {
public:
  IfStmt(ExprPtr Cond, StmtPtr Then, StmtPtr Else, SourceLocation Loc)
      : Stmt(StmtKind::If, Loc), Cond(std::move(Cond)),
        Then(std::move(Then)), Else(std::move(Else)) {}

  ExprPtr Cond;
  StmtPtr Then;
  StmtPtr Else; ///< May be null.
};

/// 'while (cond) body'.
class WhileStmt : public Stmt {
public:
  WhileStmt(ExprPtr Cond, StmtPtr Body, SourceLocation Loc)
      : Stmt(StmtKind::While, Loc), Cond(std::move(Cond)),
        Body(std::move(Body)) {}

  ExprPtr Cond;
  StmtPtr Body;
};

/// 'return expr;' (expr optional; defaults to 0).
class ReturnStmt : public Stmt {
public:
  ReturnStmt(ExprPtr Value, SourceLocation Loc)
      : Stmt(StmtKind::Return, Loc), Value(std::move(Value)) {}

  ExprPtr Value; ///< May be null.
};

/// 'print expr;' — appends the value to the program's output.
class PrintStmt : public Stmt {
public:
  PrintStmt(ExprPtr Value, SourceLocation Loc)
      : Stmt(StmtKind::Print, Loc), Value(std::move(Value)) {}

  ExprPtr Value;
};

/// An expression evaluated for its effect.
class ExprStmt : public Stmt {
public:
  ExprStmt(ExprPtr E, SourceLocation Loc)
      : Stmt(StmtKind::ExprStmt, Loc), E(std::move(E)) {}

  ExprPtr E;
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

/// 'fn name(params) { body }'.
struct FunctionDecl {
  std::string Name;
  std::vector<std::string> Params;
  std::unique_ptr<BlockStmt> Body;
  SourceLocation Loc;
  /// Total frame slots (params + locals), assigned by Sema.
  uint32_t NumSlots = 0;
};

/// A global 'var name = constant;'.
struct GlobalVarDecl {
  std::string Name;
  int64_t InitValue = 0;
  SourceLocation Loc;
};

/// One parsed TL translation unit.
struct Program {
  std::vector<FunctionDecl> Functions;
  std::vector<GlobalVarDecl> Globals;

  /// Finds a function by name; returns ~0u if absent.
  uint32_t findFunction(const std::string &Name) const {
    for (uint32_t I = 0; I != Functions.size(); ++I)
      if (Functions[I].Name == Name)
        return I;
    return ~0u;
  }
};

} // namespace gprof

#endif // GPROF_LANG_AST_H
