//===- lang/Diagnostics.cpp -----------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "lang/Diagnostics.h"

#include "support/Format.h"

using namespace gprof;

std::string Diagnostic::render(const std::string &FileName) const {
  const char *Kind = "error";
  if (Severity == DiagSeverity::Warning)
    Kind = "warning";
  else if (Severity == DiagSeverity::Note)
    Kind = "note";
  if (!Loc.isValid())
    return format("%s: %s: %s", FileName.c_str(), Kind, Message.c_str());
  return format("%s:%u:%u: %s: %s", FileName.c_str(), Loc.Line, Loc.Column,
                Kind, Message.c_str());
}

std::string DiagnosticEngine::renderAll(const std::string &FileName) const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.render(FileName);
    Out += '\n';
  }
  return Out;
}
