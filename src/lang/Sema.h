//===- lang/Sema.h - Semantic analysis for TL ------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Name resolution and static checking for TL.  Sema binds every name
/// reference to a parameter/local slot, a global index, or a function;
/// validates call arity for direct calls; assigns frame slots; and requires
/// a zero-parameter 'main' entry point.  Indirect calls through functional
/// variables are checked at run time (their callee set is by nature
/// dynamic — exactly why the paper's call sites can have several callees).
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_LANG_SEMA_H
#define GPROF_LANG_SEMA_H

#include "lang/AST.h"
#include "lang/Diagnostics.h"

namespace gprof {

/// Runs semantic analysis over \p P in place.  Returns true on success;
/// on failure the diagnostics explain every problem found.
bool analyze(Program &P, DiagnosticEngine &Diags);

} // namespace gprof

#endif // GPROF_LANG_SEMA_H
