//===- lang/SourceLocation.h - Source positions for diagnostics ----------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#ifndef GPROF_LANG_SOURCELOCATION_H
#define GPROF_LANG_SOURCELOCATION_H

#include <cstdint>

namespace gprof {

/// A 1-based line/column position in a TL source file.  Line 0 denotes an
/// unknown location.
struct SourceLocation {
  uint32_t Line = 0;
  uint32_t Column = 0;

  bool isValid() const { return Line != 0; }
  bool operator==(const SourceLocation &) const = default;
};

} // namespace gprof

#endif // GPROF_LANG_SOURCELOCATION_H
