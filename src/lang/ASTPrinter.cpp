//===- lang/ASTPrinter.cpp --------------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "lang/ASTPrinter.h"

#include "support/Format.h"

using namespace gprof;

namespace {

const char *binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Mod:
    return "%";
  case BinaryOp::Eq:
    return "==";
  case BinaryOp::Ne:
    return "!=";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Ge:
    return ">=";
  case BinaryOp::LogicalAnd:
    return "&&";
  case BinaryOp::LogicalOr:
    return "||";
  }
  return "?";
}

std::string bindingSuffix(NameBinding Binding, uint32_t Slot) {
  switch (Binding) {
  case NameBinding::Unresolved:
    return "";
  case NameBinding::Local:
    return format(":local%u", Slot);
  case NameBinding::Global:
    return format(":global%u", Slot);
  case NameBinding::Function:
    return format(":fn%u", Slot);
  }
  return "";
}

/// Tree-printing walker.
class Printer {
public:
  std::string run(const Program &P) {
    for (const GlobalVarDecl &G : P.Globals)
      line(format("global %s = %lld", G.Name.c_str(),
                  static_cast<long long>(G.InitValue)));
    for (const FunctionDecl &F : P.Functions) {
      std::string Params;
      for (size_t I = 0; I != F.Params.size(); ++I) {
        if (I)
          Params += ", ";
        Params += F.Params[I];
      }
      line(format("fn %s(%s) [%u slots]", F.Name.c_str(), Params.c_str(),
                  F.NumSlots));
      Indent += 2;
      if (F.Body)
        printStmt(*F.Body);
      Indent -= 2;
    }
    return std::move(Out);
  }

  void printStmt(const Stmt &S) {
    switch (S.kind()) {
    case StmtKind::Block: {
      line("block");
      Indent += 2;
      for (const StmtPtr &Child : static_cast<const BlockStmt &>(S).Body)
        printStmt(*Child);
      Indent -= 2;
      return;
    }
    case StmtKind::VarDecl: {
      const auto &Decl = static_cast<const VarDeclStmt &>(S);
      line(format("var %s:slot%u%s", Decl.Name.c_str(), Decl.Slot,
                  Decl.Init ? " =" : ""));
      if (Decl.Init) {
        Indent += 2;
        line(printExpr(*Decl.Init));
        Indent -= 2;
      }
      return;
    }
    case StmtKind::If: {
      const auto &If = static_cast<const IfStmt &>(S);
      line("if " + printExpr(*If.Cond));
      Indent += 2;
      printStmt(*If.Then);
      Indent -= 2;
      if (If.Else) {
        line("else");
        Indent += 2;
        printStmt(*If.Else);
        Indent -= 2;
      }
      return;
    }
    case StmtKind::While: {
      const auto &While = static_cast<const WhileStmt &>(S);
      line("while " + printExpr(*While.Cond));
      Indent += 2;
      printStmt(*While.Body);
      Indent -= 2;
      return;
    }
    case StmtKind::Return: {
      const auto &Ret = static_cast<const ReturnStmt &>(S);
      line(Ret.Value ? "return " + printExpr(*Ret.Value) : "return");
      return;
    }
    case StmtKind::Print: {
      line("print " + printExpr(*static_cast<const PrintStmt &>(S).Value));
      return;
    }
    case StmtKind::ExprStmt: {
      line("expr " + printExpr(*static_cast<const ExprStmt &>(S).E));
      return;
    }
    }
  }

private:
  void line(const std::string &Text) {
    Out += std::string(Indent, ' ') + Text + "\n";
  }

  std::string Out;
  unsigned Indent = 0;
};

} // namespace

std::string gprof::printExpr(const Expr &E) {
  switch (E.kind()) {
  case ExprKind::IntLiteral:
    return format("(int %lld)",
                  static_cast<long long>(
                      static_cast<const IntLiteralExpr &>(E).Value));
  case ExprKind::NameRef: {
    const auto &Ref = static_cast<const NameRefExpr &>(E);
    return format("(var %s%s)", Ref.Name.c_str(),
                  bindingSuffix(Ref.Binding, Ref.Slot).c_str());
  }
  case ExprKind::FuncAddr: {
    const auto &Addr = static_cast<const FuncAddrExpr &>(E);
    return format("(&%s)", Addr.Name.c_str());
  }
  case ExprKind::Unary: {
    const auto &Un = static_cast<const UnaryExpr &>(E);
    return format("(%s %s)", Un.Op == UnaryOp::Neg ? "neg" : "not",
                  printExpr(*Un.Operand).c_str());
  }
  case ExprKind::Binary: {
    const auto &Bin = static_cast<const BinaryExpr &>(E);
    return format("(%s %s %s)", binaryOpSpelling(Bin.Op),
                  printExpr(*Bin.LHS).c_str(),
                  printExpr(*Bin.RHS).c_str());
  }
  case ExprKind::Assign: {
    const auto &Assign = static_cast<const AssignExpr &>(E);
    return format("(= %s%s %s)", Assign.Name.c_str(),
                  bindingSuffix(Assign.Binding, Assign.Slot).c_str(),
                  printExpr(*Assign.Value).c_str());
  }
  case ExprKind::Call: {
    const auto &Call = static_cast<const CallExpr &>(E);
    if (Call.Builtin != BuiltinKind::None) {
      std::string S =
          Call.Builtin == BuiltinKind::Peek ? "(peek" : "(poke";
      for (const ExprPtr &Arg : Call.Args)
        S += " " + printExpr(*Arg);
      S += ")";
      return S;
    }
    std::string S = Call.IsDirect ? "(call-direct " : "(call-indirect ";
    S += printExpr(*Call.Callee);
    for (const ExprPtr &Arg : Call.Args)
      S += " " + printExpr(*Arg);
    S += ")";
    return S;
  }
  }
  return "(?)";
}

std::string gprof::printAST(const Program &P) {
  Printer Pr;
  return Pr.run(P);
}
