//===- lang/ASTPrinter.h - Human-readable AST dumps ------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a TL Program as an indented tree, with Sema's resolution facts
/// (slot numbers, binding kinds, direct-call targets) when present.  Used
/// by 'tlc --dump-ast' and by tests pinning the parser's shape.
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_LANG_ASTPRINTER_H
#define GPROF_LANG_ASTPRINTER_H

#include "lang/AST.h"

#include <string>

namespace gprof {

/// Renders the whole translation unit.
std::string printAST(const Program &P);

/// Renders one expression subtree (single line, s-expression style),
/// e.g. "(+ (var a) (int 2))".  Convenient for precedence tests.
std::string printExpr(const Expr &E);

} // namespace gprof

#endif // GPROF_LANG_ASTPRINTER_H
