//===- vm/Disassembler.h - Text listing of image code --------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#ifndef GPROF_VM_DISASSEMBLER_H
#define GPROF_VM_DISASSEMBLER_H

#include "vm/Image.h"

#include <string>

namespace gprof {

/// Renders the whole image as an assembly-style listing, with function
/// labels and symbolic call targets.  Used by 'tlc --disasm' and by tests
/// that pin down code layout.
std::string disassemble(const Image &Img);

/// Renders the single instruction at \p Pc.
std::string disassembleInstruction(const Image &Img, Address Pc);

} // namespace gprof

#endif // GPROF_VM_DISASSEMBLER_H
