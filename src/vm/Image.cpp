//===- vm/Image.cpp --------------------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "vm/Image.h"

#include "support/BinaryStream.h"
#include "support/FileUtils.h"
#include "support/Format.h"
#include "support/MappedFile.h"

#include <algorithm>

using namespace gprof;

namespace {

constexpr char Magic[4] = {'T', 'L', 'X', 'I'};
constexpr uint32_t Version = 2;
constexpr uint64_t MaxEntities = 1u << 24;

} // namespace

const FuncInfo *Image::findFunctionAt(Address Pc) const {
  const FuncInfo *F = findFunctionContaining(Pc);
  if (F && F->Addr == Pc)
    return F;
  return nullptr;
}

const FuncInfo *Image::findFunctionContaining(Address Pc) const {
  // Functions are sorted by address; find the last function whose entry is
  // <= Pc and check its extent.
  auto It = std::upper_bound(
      Functions.begin(), Functions.end(), Pc,
      [](Address A, const FuncInfo &F) { return A < F.Addr; });
  if (It == Functions.begin())
    return nullptr;
  --It;
  if (Pc < It->Addr + It->CodeSize)
    return &*It;
  return nullptr;
}

std::vector<uint8_t> Image::serialize() const {
  BinaryWriter W;
  W.writeBytes(reinterpret_cast<const uint8_t *>(Magic), sizeof(Magic));
  W.writeU32(Version);
  W.writeU64(Code.size());
  W.writeBytes(Code.data(), Code.size());

  W.writeU32(static_cast<uint32_t>(Functions.size()));
  for (const FuncInfo &F : Functions) {
    W.writeString(F.Name);
    W.writeU64(F.Addr);
    W.writeU32(F.CodeSize);
    W.writeU16(F.NumParams);
    W.writeU16(F.NumSlots);
    W.writeU8(F.Profiled ? 1 : 0);
  }

  W.writeU32(static_cast<uint32_t>(GlobalNames.size()));
  for (size_t I = 0; I != GlobalNames.size(); ++I) {
    W.writeString(GlobalNames[I]);
    W.writeI64(GlobalInits[I]);
  }

  W.writeU32(EntryFunction);

  W.writeU32(static_cast<uint32_t>(LineTable.size()));
  for (const LineEntry &L : LineTable) {
    W.writeU32(L.CodeOffset);
    W.writeU32(L.Line);
  }
  return W.takeBytes();
}

uint32_t Image::lineForPc(Address Pc) const {
  if (Pc < BaseAddr || Pc >= BaseAddr + Code.size() || LineTable.empty())
    return 0;
  uint32_t Offset = static_cast<uint32_t>(Pc - BaseAddr);
  auto It = std::upper_bound(
      LineTable.begin(), LineTable.end(), Offset,
      [](uint32_t O, const LineEntry &L) { return O < L.CodeOffset; });
  if (It == LineTable.begin())
    return 0;
  return (It - 1)->Line;
}

Expected<Image> Image::deserialize(const std::vector<uint8_t> &Bytes) {
  return deserialize(Bytes.data(), Bytes.size());
}

Expected<Image> Image::deserialize(const uint8_t *Data, size_t Size) {
  BinaryReader R(Data, Size);
  auto MagicBytes = R.readBytes(sizeof(Magic));
  if (!MagicBytes)
    return MagicBytes.takeError();
  if (!std::equal(MagicBytes->begin(), MagicBytes->end(), Magic))
    return Error::failure("not a TLX image: bad magic");
  auto Ver = R.readU32();
  if (!Ver)
    return Ver.takeError();
  if (*Ver != Version)
    return Error::failure(
        format("unsupported TLX version %u (expected %u)", *Ver, Version));

  Image Img;
  auto CodeSize = R.readU64();
  if (!CodeSize)
    return CodeSize.takeError();
  if (*CodeSize > MaxEntities * 16)
    return Error::failure("TLX code segment implausibly large");
  auto Code = R.readBytes(static_cast<size_t>(*CodeSize));
  if (!Code)
    return Code.takeError();
  Img.Code = Code.takeValue();

  auto NumFuncs = R.readU32();
  if (!NumFuncs)
    return NumFuncs.takeError();
  if (*NumFuncs > MaxEntities)
    return Error::failure("TLX function table implausibly large");
  for (uint32_t I = 0; I != *NumFuncs; ++I) {
    FuncInfo F;
    auto Name = R.readString();
    if (!Name)
      return Name.takeError();
    F.Name = Name.takeValue();
    auto Addr = R.readU64();
    if (!Addr)
      return Addr.takeError();
    F.Addr = *Addr;
    auto Size = R.readU32();
    if (!Size)
      return Size.takeError();
    F.CodeSize = *Size;
    auto Params = R.readU16();
    if (!Params)
      return Params.takeError();
    F.NumParams = *Params;
    auto Slots = R.readU16();
    if (!Slots)
      return Slots.takeError();
    F.NumSlots = *Slots;
    auto Prof = R.readU8();
    if (!Prof)
      return Prof.takeError();
    F.Profiled = *Prof != 0;
    if (F.Addr < BaseAddr || F.Addr + F.CodeSize > BaseAddr + Img.Code.size())
      return Error::failure(
          format("function '%s' extends outside the code segment",
                 F.Name.c_str()));
    Img.Functions.push_back(std::move(F));
  }
  if (!std::is_sorted(Img.Functions.begin(), Img.Functions.end(),
                      [](const FuncInfo &A, const FuncInfo &B) {
                        return A.Addr < B.Addr;
                      }))
    return Error::failure("TLX function table is not address-sorted");

  auto NumGlobals = R.readU32();
  if (!NumGlobals)
    return NumGlobals.takeError();
  if (*NumGlobals > MaxEntities)
    return Error::failure("TLX global table implausibly large");
  for (uint32_t I = 0; I != *NumGlobals; ++I) {
    auto Name = R.readString();
    if (!Name)
      return Name.takeError();
    auto Init = R.readI64();
    if (!Init)
      return Init.takeError();
    Img.GlobalNames.push_back(Name.takeValue());
    Img.GlobalInits.push_back(*Init);
  }

  auto Entry = R.readU32();
  if (!Entry)
    return Entry.takeError();
  if (*Entry >= Img.Functions.size())
    return Error::failure("TLX entry function index out of range");
  Img.EntryFunction = *Entry;

  auto NumLines = R.readU32();
  if (!NumLines)
    return NumLines.takeError();
  if (static_cast<uint64_t>(*NumLines) * 8 > R.remaining())
    return Error::failure("TLX line table longer than the file");
  uint32_t PrevOffset = 0;
  for (uint32_t I = 0; I != *NumLines; ++I) {
    auto Offset = R.readU32();
    if (!Offset)
      return Offset.takeError();
    auto Line = R.readU32();
    if (!Line)
      return Line.takeError();
    if (*Offset >= Img.Code.size() || (I != 0 && *Offset < PrevOffset))
      return Error::failure("TLX line table is malformed");
    PrevOffset = *Offset;
    Img.LineTable.push_back({*Offset, *Line});
  }

  if (!R.atEnd())
    return Error::failure(
        format("%zu trailing bytes after TLX data", R.remaining()));
  return Img;
}

Error Image::saveToFile(const std::string &Path) const {
  return writeFileBytes(Path, serialize());
}

Expected<Image> Image::loadFromFile(const std::string &Path) {
  // Deserialize straight out of the mapping; the string/byte fields copy
  // into the Image, so nothing outlives the view.
  auto Map = MappedFile::open(Path);
  if (!Map)
    return Map.takeError();
  auto Img = deserialize(Map->data(), Map->size());
  if (!Img)
    return Error::failure(Path + ": " + Img.message());
  return Img;
}
