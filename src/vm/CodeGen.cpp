//===- vm/CodeGen.cpp ------------------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "vm/CodeGen.h"

#include "lang/Inliner.h"
#include "lang/Parser.h"
#include "lang/Sema.h"
#include "support/Format.h"
#include "vm/Bytecode.h"

#include <algorithm>
#include <cstdio>
#include <set>

using namespace gprof;

namespace {

/// Bytecode emitter with label patching for function targets.
class Emitter {
public:
  explicit Emitter(const Program &P) : P(P) {}

  size_t offset() const { return Code.size(); }

  void emitOp(Opcode Op) { Code.push_back(static_cast<uint8_t>(Op)); }

  void emitU8(uint8_t V) { Code.push_back(V); }

  void emitU16(uint16_t V) {
    Code.push_back(static_cast<uint8_t>(V));
    Code.push_back(static_cast<uint8_t>(V >> 8));
  }

  void emitU64(uint64_t V) {
    for (unsigned I = 0; I != 8; ++I)
      Code.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }

  void emitI64(int64_t V) { emitU64(static_cast<uint64_t>(V)); }

  /// Emits a u64 placeholder to be patched with function \p Index's entry
  /// address.
  void emitFunctionRef(uint32_t Index) {
    FuncFixups.push_back({Code.size(), Index});
    emitU64(0);
  }

  /// Emits a u64 placeholder for a not-yet-bound local label; returns the
  /// fixup id.
  size_t emitLabelRef() {
    LabelFixups.push_back(Code.size());
    emitU64(0);
    return LabelFixups.size() - 1;
  }

  /// Binds the label fixup \p Id to the current offset.
  void bindLabel(size_t Id) {
    patchU64(LabelFixups[Id], Image::BaseAddr + Code.size());
  }

  /// Applies function-address fixups once all entry addresses are known.
  void patchFunctionRefs(const std::vector<Address> &EntryAddrs) {
    for (const auto &[Offset, Index] : FuncFixups)
      patchU64(Offset, EntryAddrs[Index]);
  }

  /// Notes that code emitted from here on derives from source \p Line.
  void markLine(uint32_t Line) {
    if (Line == 0)
      return;
    if (!Lines.empty() && Lines.back().CodeOffset == Code.size()) {
      Lines.back().Line = Line;
      return;
    }
    if (!Lines.empty() && Lines.back().Line == Line)
      return;
    Lines.push_back({static_cast<uint32_t>(Code.size()), Line});
  }

  std::vector<uint8_t> takeCode() { return std::move(Code); }
  std::vector<LineEntry> takeLines() { return std::move(Lines); }

private:
  void patchU64(size_t Offset, uint64_t V) {
    for (unsigned I = 0; I != 8; ++I)
      Code[Offset + I] = static_cast<uint8_t>(V >> (8 * I));
  }

  const Program &P;
  std::vector<uint8_t> Code;
  std::vector<std::pair<size_t, uint32_t>> FuncFixups;
  std::vector<size_t> LabelFixups;
  std::vector<LineEntry> Lines;
};

/// Generates code for one Program.
class CodeGenerator {
public:
  CodeGenerator(const Program &P, const CodeGenOptions &Opts)
      : P(P), Opts(Opts), E(P),
        Unprofiled(Opts.UnprofiledFunctions.begin(),
                   Opts.UnprofiledFunctions.end()) {}

  Expected<Image> run();

private:
  void genFunction(const FunctionDecl &F);
  void genStmt(const Stmt &S);
  void genExpr(const Expr &Ex);

  const Program &P;
  const CodeGenOptions &Opts;
  Emitter E;
  std::set<std::string> Unprofiled;
};

Expected<Image> CodeGenerator::run() {
  if (P.findFunction("main") == ~0u)
    return Error::failure("cannot compile a program without 'main'");

  Image Img;
  std::vector<Address> EntryAddrs(P.Functions.size(), 0);

  for (uint32_t I = 0; I != P.Functions.size(); ++I) {
    const FunctionDecl &F = P.Functions[I];
    size_t Start = E.offset();
    EntryAddrs[I] = Image::BaseAddr + Start;
    genFunction(F);

    FuncInfo Info;
    Info.Name = F.Name;
    Info.Addr = EntryAddrs[I];
    Info.CodeSize = static_cast<uint32_t>(E.offset() - Start);
    Info.NumParams = static_cast<uint16_t>(F.Params.size());
    Info.NumSlots = static_cast<uint16_t>(
        std::max<uint32_t>(F.NumSlots, F.Params.size()));
    Info.Profiled = Opts.EnableProfiling && !Unprofiled.count(F.Name);
    Img.Functions.push_back(std::move(Info));
  }

  E.patchFunctionRefs(EntryAddrs);
  Img.Code = E.takeCode();
  Img.LineTable = E.takeLines();
  Img.GlobalNames.reserve(P.Globals.size());
  for (const GlobalVarDecl &G : P.Globals) {
    Img.GlobalNames.push_back(G.Name);
    Img.GlobalInits.push_back(G.InitValue);
  }
  Img.EntryFunction = P.findFunction("main");
  return Img;
}

void CodeGenerator::genFunction(const FunctionDecl &F) {
  E.markLine(F.Loc.Line);
  if (Opts.EnableProfiling && !Unprofiled.count(F.Name))
    E.emitOp(Opcode::Mcount);
  genStmt(*F.Body);
  // Implicit 'return 0' for bodies that fall off the end.
  E.emitOp(Opcode::Push);
  E.emitI64(0);
  E.emitOp(Opcode::Ret);
}

void CodeGenerator::genStmt(const Stmt &S) {
  if (S.kind() != StmtKind::Block)
    E.markLine(S.loc().Line);
  switch (S.kind()) {
  case StmtKind::Block: {
    const auto &Block = static_cast<const BlockStmt &>(S);
    for (const StmtPtr &Child : Block.Body)
      genStmt(*Child);
    return;
  }
  case StmtKind::VarDecl: {
    const auto &Decl = static_cast<const VarDeclStmt &>(S);
    if (Decl.Init) {
      genExpr(*Decl.Init);
    } else {
      E.emitOp(Opcode::Push);
      E.emitI64(0);
    }
    E.emitOp(Opcode::StoreLocal);
    E.emitU16(static_cast<uint16_t>(Decl.Slot));
    return;
  }
  case StmtKind::If: {
    const auto &If = static_cast<const IfStmt &>(S);
    genExpr(*If.Cond);
    E.emitOp(Opcode::JumpIfZero);
    size_t ElseLabel = E.emitLabelRef();
    genStmt(*If.Then);
    if (If.Else) {
      E.emitOp(Opcode::Jump);
      size_t EndLabel = E.emitLabelRef();
      E.bindLabel(ElseLabel);
      genStmt(*If.Else);
      E.bindLabel(EndLabel);
    } else {
      E.bindLabel(ElseLabel);
    }
    return;
  }
  case StmtKind::While: {
    const auto &While = static_cast<const WhileStmt &>(S);
    Address Top = Image::BaseAddr + E.offset();
    genExpr(*While.Cond);
    E.emitOp(Opcode::JumpIfZero);
    size_t EndLabel = E.emitLabelRef();
    genStmt(*While.Body);
    E.emitOp(Opcode::Jump);
    E.emitU64(Top);
    E.bindLabel(EndLabel);
    return;
  }
  case StmtKind::Return: {
    const auto &Ret = static_cast<const ReturnStmt &>(S);
    if (Ret.Value) {
      genExpr(*Ret.Value);
    } else {
      E.emitOp(Opcode::Push);
      E.emitI64(0);
    }
    E.emitOp(Opcode::Ret);
    return;
  }
  case StmtKind::Print: {
    genExpr(*static_cast<const PrintStmt &>(S).Value);
    E.emitOp(Opcode::Print);
    return;
  }
  case StmtKind::ExprStmt: {
    genExpr(*static_cast<const ExprStmt &>(S).E);
    E.emitOp(Opcode::Pop);
    return;
  }
  }
}

void CodeGenerator::genExpr(const Expr &Ex) {
  switch (Ex.kind()) {
  case ExprKind::IntLiteral: {
    E.emitOp(Opcode::Push);
    E.emitI64(static_cast<const IntLiteralExpr &>(Ex).Value);
    return;
  }
  case ExprKind::NameRef: {
    const auto &Ref = static_cast<const NameRefExpr &>(Ex);
    switch (Ref.Binding) {
    case NameBinding::Local:
      E.emitOp(Opcode::LoadLocal);
      E.emitU16(static_cast<uint16_t>(Ref.Slot));
      return;
    case NameBinding::Global:
      E.emitOp(Opcode::LoadGlobal);
      E.emitU16(static_cast<uint16_t>(Ref.Slot));
      return;
    case NameBinding::Function:
      // A bare function name used as a value is a functional value.
      E.emitOp(Opcode::PushFunc);
      E.emitFunctionRef(Ref.Slot);
      return;
    case NameBinding::Unresolved:
      assert(false && "codegen on unresolved name (Sema not run?)");
      return;
    }
    return;
  }
  case ExprKind::FuncAddr: {
    const auto &Addr = static_cast<const FuncAddrExpr &>(Ex);
    E.emitOp(Opcode::PushFunc);
    E.emitFunctionRef(Addr.FunctionIndex);
    return;
  }
  case ExprKind::Unary: {
    const auto &Un = static_cast<const UnaryExpr &>(Ex);
    genExpr(*Un.Operand);
    E.emitOp(Un.Op == UnaryOp::Neg ? Opcode::Neg : Opcode::Not);
    return;
  }
  case ExprKind::Binary: {
    const auto &Bin = static_cast<const BinaryExpr &>(Ex);
    if (Bin.Op == BinaryOp::LogicalAnd || Bin.Op == BinaryOp::LogicalOr) {
      // Short-circuit to a normalized 0/1 result.
      Opcode ShortJump = Bin.Op == BinaryOp::LogicalAnd
                             ? Opcode::JumpIfZero
                             : Opcode::JumpIfNonZero;
      int64_t ShortValue = Bin.Op == BinaryOp::LogicalAnd ? 0 : 1;
      genExpr(*Bin.LHS);
      E.emitOp(ShortJump);
      size_t ShortLabel = E.emitLabelRef();
      genExpr(*Bin.RHS);
      E.emitOp(ShortJump);
      size_t ShortLabel2 = E.emitLabelRef();
      E.emitOp(Opcode::Push);
      E.emitI64(1 - ShortValue);
      E.emitOp(Opcode::Jump);
      size_t EndLabel = E.emitLabelRef();
      E.bindLabel(ShortLabel);
      E.bindLabel(ShortLabel2);
      E.emitOp(Opcode::Push);
      E.emitI64(ShortValue);
      E.bindLabel(EndLabel);
      return;
    }
    genExpr(*Bin.LHS);
    genExpr(*Bin.RHS);
    switch (Bin.Op) {
    case BinaryOp::Add:
      E.emitOp(Opcode::Add);
      return;
    case BinaryOp::Sub:
      E.emitOp(Opcode::Sub);
      return;
    case BinaryOp::Mul:
      E.emitOp(Opcode::Mul);
      return;
    case BinaryOp::Div:
      E.emitOp(Opcode::Div);
      return;
    case BinaryOp::Mod:
      E.emitOp(Opcode::Mod);
      return;
    case BinaryOp::Eq:
      E.emitOp(Opcode::CmpEq);
      return;
    case BinaryOp::Ne:
      E.emitOp(Opcode::CmpNe);
      return;
    case BinaryOp::Lt:
      E.emitOp(Opcode::CmpLt);
      return;
    case BinaryOp::Le:
      E.emitOp(Opcode::CmpLe);
      return;
    case BinaryOp::Gt:
      E.emitOp(Opcode::CmpGt);
      return;
    case BinaryOp::Ge:
      E.emitOp(Opcode::CmpGe);
      return;
    case BinaryOp::LogicalAnd:
    case BinaryOp::LogicalOr:
      break; // Handled above.
    }
    assert(false && "unhandled binary operator");
    return;
  }
  case ExprKind::Assign: {
    const auto &Assign = static_cast<const AssignExpr &>(Ex);
    genExpr(*Assign.Value);
    E.emitOp(Opcode::Dup); // Assignment yields the stored value.
    if (Assign.Binding == NameBinding::Local) {
      E.emitOp(Opcode::StoreLocal);
      E.emitU16(static_cast<uint16_t>(Assign.Slot));
    } else {
      assert(Assign.Binding == NameBinding::Global &&
             "codegen on unresolved assignment");
      E.emitOp(Opcode::StoreGlobal);
      E.emitU16(static_cast<uint16_t>(Assign.Slot));
    }
    return;
  }
  case ExprKind::Call: {
    const auto &Call = static_cast<const CallExpr &>(Ex);
    for (const ExprPtr &Arg : Call.Args)
      genExpr(*Arg);
    if (Call.Builtin == BuiltinKind::Peek) {
      E.emitOp(Opcode::MemLoad);
      return;
    }
    if (Call.Builtin == BuiltinKind::Poke) {
      E.emitOp(Opcode::MemStore);
      return;
    }
    E.markLine(Call.loc().Line); // Call sites get precise line info.
    if (Call.IsDirect) {
      E.emitOp(Opcode::Call);
      E.emitFunctionRef(Call.DirectFunctionIndex);
      E.emitU8(static_cast<uint8_t>(Call.Args.size()));
      return;
    }
    genExpr(*Call.Callee);
    E.emitOp(Opcode::CallIndirect);
    E.emitU8(static_cast<uint8_t>(Call.Args.size()));
    return;
  }
  }
}

} // namespace

Expected<Image> gprof::compileToImage(const Program &P,
                                      const CodeGenOptions &Opts) {
  CodeGenerator Gen(P, Opts);
  return Gen.run();
}

Expected<Image> gprof::compileTL(std::string_view Source,
                                 const CodeGenOptions &Opts,
                                 DiagnosticEngine &Diags) {
  Program P = parseTL(Source, Diags);
  if (Diags.hasErrors())
    return Error::failure(
        format("compilation failed with %u error(s)", Diags.errorCount()));
  if (!Opts.InlineFunctions.empty()) {
    inlineCalls(P, Opts.InlineFunctions, Diags);
    if (Diags.hasErrors())
      return Error::failure(format("compilation failed with %u error(s)",
                                   Diags.errorCount()));
  }
  if (!analyze(P, Diags))
    return Error::failure(
        format("compilation failed with %u error(s)", Diags.errorCount()));
  return compileToImage(P, Opts);
}

Image gprof::compileTLOrDie(std::string_view Source,
                            const CodeGenOptions &Opts) {
  DiagnosticEngine Diags;
  auto Img = compileTL(Source, Opts, Diags);
  if (!Img) {
    std::fprintf(stderr, "%s", Diags.renderAll("<tl>").c_str());
    reportFatalError(Img.message());
  }
  return Img.takeValue();
}
