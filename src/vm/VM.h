//===- vm/VM.h - The TL bytecode interpreter with a virtual clock --------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes TL images deterministically.  The VM plays two roles from the
/// paper's environment:
///
///  - the *machine*: a flat-addressed code segment, a call stack whose
///    frames hold return addresses (so the monitoring routine can discover
///    the caller's call site, §3.1), and a cycle clock advanced by each
///    instruction's cost;
///  - the *kernel clock*: every CyclesPerTick cycles the VM delivers a
///    clock tick carrying the current PC to the attached hooks — the
///    equivalent of the histogram sampling "at the end of each clock tick
///    (1/60th of a second) in which a program runs" (§3.2), but exactly
///    uniform and reproducible.
///
/// Profiling hooks are "late bound" exactly as the retrospective marvels:
/// swapping in a different ProfileHooks implementation changes the whole
/// profiler without touching the compiler or the program.
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_VM_VM_H
#define GPROF_VM_VM_H

#include "support/Error.h"
#include "vm/Image.h"

#include <cstdint>
#include <string>
#include <vector>

namespace gprof {

/// Receives profiling events from the VM.
class ProfileHooks {
public:
  virtual ~ProfileHooks();

  /// An Mcount prologue executed in the function entered at \p SelfPc; the
  /// caller's call site (the return address in the new frame) is
  /// \p FromPc.  FromPc may lie outside the code segment for spontaneous
  /// activations (e.g. main's synthetic caller).
  virtual void onCall(Address FromPc, Address SelfPc) = 0;

  /// A virtual clock tick elapsed while the instruction at \p Pc was
  /// executing.
  virtual void onTick(Address Pc) = 0;

  /// A profiled function (one whose prologue ran Mcount) returned; \p
  /// SelfPc is its entry address.  Fired *after* any ticks elapsed on the
  /// ret instruction are delivered, so a sample landing on the ret is
  /// attributed to the returning routine by both the histogram and a
  /// context recorder — the ordering the CCT/flat-profile equivalence
  /// invariant depends on (docs/RUNTIME_MT.md).  Default: ignored.
  virtual void onReturn(Address SelfPc);

  /// Opt-in to call-stack snapshots: when this returns true the VM also
  /// calls onTickStack for every tick.  This is the retrospective's
  /// "modern profilers ... periodically gathering not just isolated
  /// program counter samples and isolated call graph arcs, but complete
  /// call stacks"; building the snapshot costs extra work per tick, which
  /// is why such profilers back off their sampling frequency.
  virtual bool wantsStackSamples() const { return false; }

  /// A clock tick with the full call stack: entry addresses of the active
  /// frames, outermost first; \p Pc is the interrupted instruction.
  virtual void onTickStack(const std::vector<Address> &Stack, Address Pc);
};

/// Execution limits and clock configuration.
struct VMOptions {
  /// Virtual cycles per clock tick.  With the default cost table this
  /// stands in for the paper's 60 Hz line clock; lower values sample more
  /// finely (and cost more, see bench E4/E6).
  uint64_t CyclesPerTick = 10000;
  /// Abort with an error if the program runs longer than this many cycles.
  uint64_t MaxCycles = 2'000'000'000'000ULL;
  /// Abort with an error on call chains deeper than this.
  uint32_t MaxCallDepth = 1u << 20;
  /// Words of flat data memory addressable through peek/poke.
  uint32_t MemoryWords = 1u << 16;
};

/// The observable outcome of one execution.
struct RunResult {
  int64_t ExitValue = 0;
  uint64_t Cycles = 0;
  uint64_t Instructions = 0;
  uint64_t Ticks = 0;
  std::vector<int64_t> Printed;
};

/// Interpreter for one loaded Image.  Global variable state persists
/// across call() invocations (and is re-initialized by run()), so a
/// long-lived "kernel" can be driven call by call while profiling is
/// switched on and off around it.
class VM {
public:
  explicit VM(const Image &Img, VMOptions Opts = VMOptions());

  /// Attaches (or detaches, with nullptr) profiling hooks.
  void setHooks(ProfileHooks *H) { Hooks = H; }

  /// Resets globals and runs 'main' to completion.
  Expected<RunResult> run();

  /// Calls function \p Name with \p Args using current global state.
  Expected<RunResult> call(const std::string &Name,
                           const std::vector<int64_t> &Args);

  /// Re-initializes global variables from the image.
  void resetGlobals();

  /// Zeroes the peek/poke data memory (run() also does this).
  void resetMemory();

  /// Total cycles executed since construction (monotonic across calls).
  uint64_t totalCycles() const { return Cycles; }

private:
  struct Frame {
    Address ReturnAddr;
    size_t LocalBase;
    size_t StackBase;
    const FuncInfo *Func;
  };

  Expected<RunResult> execute(const FuncInfo &Entry,
                              const std::vector<int64_t> &Args);
  Error trap(Address Pc, const std::string &Message) const;
  void deliverTick(Address Pc);

  uint16_t readU16(Address Pc) const;
  uint64_t readU64(Address Pc) const;
  int64_t readI64(Address Pc) const;

  const Image &Img;
  VMOptions Opts;
  ProfileHooks *Hooks = nullptr;

  std::vector<int64_t> Globals;
  std::vector<int64_t> Memory;
  std::vector<int64_t> Stack;
  std::vector<int64_t> Locals;
  std::vector<Frame> Frames;
  std::vector<Address> StackScratch;

  uint64_t Cycles = 0;
  uint64_t NextTickAt = 0;
  uint64_t Ticks = 0;
};

} // namespace gprof

#endif // GPROF_VM_VM_H
