//===- vm/VM.cpp -----------------------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "vm/VM.h"

#include "support/Format.h"
#include "vm/Bytecode.h"

using namespace gprof;

ProfileHooks::~ProfileHooks() = default;

void ProfileHooks::onTickStack(const std::vector<Address> &, Address) {}

void ProfileHooks::onReturn(Address) {}

VM::VM(const Image &Img, VMOptions Opts) : Img(Img), Opts(Opts) {
  resetGlobals();
  resetMemory();
  NextTickAt = Opts.CyclesPerTick;
}

void VM::resetGlobals() { Globals = Img.GlobalInits; }

void VM::resetMemory() { Memory.assign(Opts.MemoryWords, 0); }

Error VM::trap(Address Pc, const std::string &Message) const {
  const FuncInfo *F = Img.findFunctionContaining(Pc);
  std::string Where = F ? F->Name : "<outside code segment>";
  return Error::failure(format("runtime error at pc 0x%llx (in %s): %s",
                               static_cast<unsigned long long>(Pc),
                               Where.c_str(), Message.c_str()));
}

uint16_t VM::readU16(Address Pc) const {
  size_t Off = static_cast<size_t>(Pc - Image::BaseAddr);
  return static_cast<uint16_t>(Img.Code[Off]) |
         static_cast<uint16_t>(Img.Code[Off + 1]) << 8;
}

uint64_t VM::readU64(Address Pc) const {
  size_t Off = static_cast<size_t>(Pc - Image::BaseAddr);
  uint64_t V = 0;
  for (unsigned I = 0; I != 8; ++I)
    V |= static_cast<uint64_t>(Img.Code[Off + I]) << (8 * I);
  return V;
}

int64_t VM::readI64(Address Pc) const {
  return static_cast<int64_t>(readU64(Pc));
}

void VM::deliverTick(Address Pc) {
  if (!Hooks)
    return;
  Hooks->onTick(Pc);
  if (!Hooks->wantsStackSamples())
    return;
  StackScratch.clear();
  for (const Frame &F : Frames)
    StackScratch.push_back(F.Func->Addr);
  Hooks->onTickStack(StackScratch, Pc);
}

Expected<RunResult> VM::run() {
  resetGlobals();
  resetMemory();
  assert(Img.EntryFunction < Img.Functions.size() && "bad entry function");
  return execute(Img.Functions[Img.EntryFunction], {});
}

Expected<RunResult> VM::call(const std::string &Name,
                             const std::vector<int64_t> &Args) {
  for (const FuncInfo &F : Img.Functions)
    if (F.Name == Name) {
      if (Args.size() != F.NumParams)
        return Error::failure(
            format("call to '%s' with %zu arguments; it takes %u",
                   Name.c_str(), Args.size(), F.NumParams));
      return execute(F, Args);
    }
  return Error::failure(format("no function named '%s'", Name.c_str()));
}

Expected<RunResult> VM::execute(const FuncInfo &Entry,
                                const std::vector<int64_t> &Args) {
  RunResult Result;
  uint64_t StartCycles = Cycles;
  // Set by Ret for a profiled function; fired after that instruction's
  // ticks are delivered (see the Ret case).
  const FuncInfo *PendingReturn = nullptr;
  uint64_t StartTicks = Ticks;

  Stack.clear();
  Locals.clear();
  Frames.clear();

  // Synthetic outermost frame: the return address 0 lies outside the code
  // segment, so the entry function's incoming arc symbolizes to no caller
  // and is classified spontaneous (paper §3.1).
  // A corrupt image can declare fewer frame slots than parameters; the
  // argument copy below must not write past the frame.
  if (Entry.NumSlots < Args.size())
    return trap(Entry.Addr,
                format("entry '%s' declares %u frame slots for %zu arguments",
                       Entry.Name.c_str(), Entry.NumSlots, Args.size()));
  Frames.push_back({/*ReturnAddr=*/0, /*LocalBase=*/0, /*StackBase=*/0,
                    &Entry});
  Locals.resize(Entry.NumSlots, 0);
  for (size_t I = 0; I != Args.size(); ++I)
    Locals[I] = Args[I];

  Address Pc = Entry.Addr;
  const Address LowPc = Img.lowPc();
  const Address HighPc = Img.highPc();

  while (true) {
    if (Pc < LowPc || Pc >= HighPc)
      return trap(Pc, "program counter left the code segment");

    const Address InsnPc = Pc;
    const Opcode Op = static_cast<Opcode>(Img.byteAt(Pc));
    if (Op >= Opcode::NumOpcodes)
      return trap(Pc, format("illegal opcode %u",
                             static_cast<unsigned>(Img.byteAt(Pc))));

    const unsigned Size = instructionSize(Op);
    if (InsnPc + Size > HighPc)
      return trap(Pc, "truncated instruction at end of code segment");
    Pc += Size;
    ++Result.Instructions;

    switch (Op) {
    case Opcode::Halt:
      return trap(InsnPc, "executed halt sentinel");

    case Opcode::Push:
      Stack.push_back(readI64(InsnPc + 1));
      break;

    case Opcode::PushFunc:
      Stack.push_back(static_cast<int64_t>(readU64(InsnPc + 1)));
      break;

    case Opcode::Pop:
      if (Stack.empty())
        return trap(InsnPc, "operand stack underflow");
      Stack.pop_back();
      break;

    case Opcode::Dup:
      if (Stack.empty())
        return trap(InsnPc, "operand stack underflow");
      Stack.push_back(Stack.back());
      break;

    case Opcode::LoadLocal: {
      uint16_t Slot = readU16(InsnPc + 1);
      if (Frames.back().LocalBase + Slot >= Locals.size())
        return trap(InsnPc, "local slot out of range");
      Stack.push_back(Locals[Frames.back().LocalBase + Slot]);
      break;
    }
    case Opcode::StoreLocal: {
      uint16_t Slot = readU16(InsnPc + 1);
      if (Frames.back().LocalBase + Slot >= Locals.size())
        return trap(InsnPc, "local slot out of range");
      if (Stack.empty())
        return trap(InsnPc, "operand stack underflow");
      Locals[Frames.back().LocalBase + Slot] = Stack.back();
      Stack.pop_back();
      break;
    }
    case Opcode::LoadGlobal: {
      uint16_t Idx = readU16(InsnPc + 1);
      if (Idx >= Globals.size())
        return trap(InsnPc, "global index out of range");
      Stack.push_back(Globals[Idx]);
      break;
    }
    case Opcode::StoreGlobal: {
      uint16_t Idx = readU16(InsnPc + 1);
      if (Idx >= Globals.size())
        return trap(InsnPc, "global index out of range");
      if (Stack.empty())
        return trap(InsnPc, "operand stack underflow");
      Globals[Idx] = Stack.back();
      Stack.pop_back();
      break;
    }

    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Mod:
    case Opcode::CmpEq:
    case Opcode::CmpNe:
    case Opcode::CmpLt:
    case Opcode::CmpLe:
    case Opcode::CmpGt:
    case Opcode::CmpGe: {
      if (Stack.size() < 2)
        return trap(InsnPc, "operand stack underflow");
      int64_t RHS = Stack.back();
      Stack.pop_back();
      int64_t LHS = Stack.back();
      int64_t R = 0;
      switch (Op) {
      case Opcode::Add:
        R = static_cast<int64_t>(static_cast<uint64_t>(LHS) +
                                 static_cast<uint64_t>(RHS));
        break;
      case Opcode::Sub:
        R = static_cast<int64_t>(static_cast<uint64_t>(LHS) -
                                 static_cast<uint64_t>(RHS));
        break;
      case Opcode::Mul:
        R = static_cast<int64_t>(static_cast<uint64_t>(LHS) *
                                 static_cast<uint64_t>(RHS));
        break;
      case Opcode::Div:
        if (RHS == 0)
          return trap(InsnPc, "division by zero");
        if (LHS == INT64_MIN && RHS == -1)
          return trap(InsnPc, "integer overflow in division");
        R = LHS / RHS;
        break;
      case Opcode::Mod:
        if (RHS == 0)
          return trap(InsnPc, "division by zero");
        if (LHS == INT64_MIN && RHS == -1)
          return trap(InsnPc, "integer overflow in remainder");
        R = LHS % RHS;
        break;
      case Opcode::CmpEq:
        R = LHS == RHS;
        break;
      case Opcode::CmpNe:
        R = LHS != RHS;
        break;
      case Opcode::CmpLt:
        R = LHS < RHS;
        break;
      case Opcode::CmpLe:
        R = LHS <= RHS;
        break;
      case Opcode::CmpGt:
        R = LHS > RHS;
        break;
      case Opcode::CmpGe:
        R = LHS >= RHS;
        break;
      default:
        break;
      }
      Stack.back() = R;
      break;
    }

    case Opcode::Neg:
      if (Stack.empty())
        return trap(InsnPc, "operand stack underflow");
      Stack.back() = static_cast<int64_t>(-static_cast<uint64_t>(Stack.back()));
      break;

    case Opcode::Not:
      if (Stack.empty())
        return trap(InsnPc, "operand stack underflow");
      Stack.back() = Stack.back() == 0;
      break;

    case Opcode::Jump:
      Pc = readU64(InsnPc + 1);
      break;

    case Opcode::JumpIfZero: {
      if (Stack.empty())
        return trap(InsnPc, "operand stack underflow");
      int64_t V = Stack.back();
      Stack.pop_back();
      if (V == 0)
        Pc = readU64(InsnPc + 1);
      break;
    }
    case Opcode::JumpIfNonZero: {
      if (Stack.empty())
        return trap(InsnPc, "operand stack underflow");
      int64_t V = Stack.back();
      Stack.pop_back();
      if (V != 0)
        Pc = readU64(InsnPc + 1);
      break;
    }

    case Opcode::Call:
    case Opcode::CallIndirect: {
      Address Target;
      uint8_t Argc;
      if (Op == Opcode::Call) {
        Target = readU64(InsnPc + 1);
        Argc = Img.Code[static_cast<size_t>(InsnPc + 9 - Image::BaseAddr)];
      } else {
        Argc = Img.Code[static_cast<size_t>(InsnPc + 1 - Image::BaseAddr)];
        if (Stack.empty())
          return trap(InsnPc, "operand stack underflow");
        Target = static_cast<Address>(
            static_cast<uint64_t>(Stack.back()));
        Stack.pop_back();
      }

      const FuncInfo *Callee = Img.findFunctionAt(Target);
      if (!Callee)
        return trap(InsnPc,
                    format("call through invalid function value 0x%llx",
                           static_cast<unsigned long long>(Target)));
      if (Callee->NumParams != Argc)
        return trap(InsnPc,
                    format("call to '%s' with %u arguments; it takes %u",
                           Callee->Name.c_str(), Argc, Callee->NumParams));
      if (Callee->NumSlots < Argc)
        return trap(InsnPc,
                    format("call to '%s' whose frame declares %u slots for "
                           "%u parameters",
                           Callee->Name.c_str(), Callee->NumSlots, Argc));
      if (Frames.size() >= Opts.MaxCallDepth)
        return trap(InsnPc, "call stack overflow");

      if (Stack.size() < Argc)
        return trap(InsnPc, "operand stack underflow");
      size_t LocalBase = Locals.size();
      Locals.resize(LocalBase + Callee->NumSlots, 0);
      for (unsigned I = 0; I != Argc; ++I)
        Locals[LocalBase + I] = Stack[Stack.size() - Argc + I];
      Stack.resize(Stack.size() - Argc);

      Frames.push_back({Pc, LocalBase, Stack.size(), Callee});
      Pc = Callee->Addr;
      break;
    }

    case Opcode::Ret: {
      if (Stack.empty())
        return trap(InsnPc, "operand stack underflow");
      int64_t Value = Stack.back();
      Stack.pop_back();
      Frame F = Frames.back();
      Frames.pop_back();
      Locals.resize(F.LocalBase);
      Stack.resize(F.StackBase);
      // Defer the return notification until the ticks elapsed on this ret
      // instruction are delivered (after the switch): a sample landing
      // here belongs to the returning routine, not its caller.
      if (Hooks && F.Func->Profiled)
        PendingReturn = F.Func;
      if (Frames.empty()) {
        // The entry function returned: account this instruction's cycles
        // and finish.
        Cycles += opcodeCycleCost(Op);
        while (Cycles >= NextTickAt) {
          deliverTick(InsnPc);
          NextTickAt += Opts.CyclesPerTick;
          ++Ticks;
        }
        if (PendingReturn)
          Hooks->onReturn(PendingReturn->Addr);
        Result.ExitValue = Value;
        Result.Cycles = Cycles - StartCycles;
        Result.Ticks = Ticks - StartTicks;
        return Result;
      }
      Stack.push_back(Value);
      Pc = F.ReturnAddr;
      break;
    }

    case Opcode::Print: {
      if (Stack.empty())
        return trap(InsnPc, "operand stack underflow");
      Result.Printed.push_back(Stack.back());
      Stack.pop_back();
      break;
    }

    case Opcode::Mcount: {
      // The monitoring call inserted in the prologue: report the arc from
      // the caller's call site to this function's entry (paper §3.1).
      const Frame &F = Frames.back();
      if (Hooks)
        Hooks->onCall(F.ReturnAddr, F.Func->Addr);
      break;
    }

    case Opcode::MemLoad: {
      if (Stack.empty())
        return trap(InsnPc, "operand stack underflow");
      uint64_t Addr = static_cast<uint64_t>(Stack.back());
      if (Addr >= Memory.size())
        return trap(InsnPc,
                    format("memory address %lld out of range [0, %zu)",
                           static_cast<long long>(Stack.back()),
                           Memory.size()));
      Stack.back() = Memory[static_cast<size_t>(Addr)];
      break;
    }

    case Opcode::MemStore: {
      if (Stack.size() < 2)
        return trap(InsnPc, "operand stack underflow");
      int64_t Value = Stack.back();
      Stack.pop_back();
      uint64_t Addr = static_cast<uint64_t>(Stack.back());
      if (Addr >= Memory.size())
        return trap(InsnPc,
                    format("memory address %lld out of range [0, %zu)",
                           static_cast<long long>(Stack.back()),
                           Memory.size()));
      Memory[static_cast<size_t>(Addr)] = Value;
      Stack.back() = Value; // poke yields the stored value.
      break;
    }

    case Opcode::NumOpcodes:
      return trap(InsnPc, "illegal opcode");
    }

    // Advance the virtual clock and deliver any elapsed ticks at this
    // instruction's address.
    Cycles += opcodeCycleCost(Op);
    while (Cycles >= NextTickAt) {
      deliverTick(InsnPc);
      NextTickAt += Opts.CyclesPerTick;
      ++Ticks;
    }
    if (PendingReturn) {
      Hooks->onReturn(PendingReturn->Addr);
      PendingReturn = nullptr;
    }
    if (Cycles - StartCycles > Opts.MaxCycles)
      return trap(InsnPc, "cycle limit exceeded");
  }
}
