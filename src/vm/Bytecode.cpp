//===- vm/Bytecode.cpp -----------------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "vm/Bytecode.h"

#include <cassert>

using namespace gprof;

const char *gprof::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Halt:
    return "halt";
  case Opcode::Push:
    return "push";
  case Opcode::PushFunc:
    return "pushfunc";
  case Opcode::Pop:
    return "pop";
  case Opcode::Dup:
    return "dup";
  case Opcode::LoadLocal:
    return "loadlocal";
  case Opcode::StoreLocal:
    return "storelocal";
  case Opcode::LoadGlobal:
    return "loadglobal";
  case Opcode::StoreGlobal:
    return "storeglobal";
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::Div:
    return "div";
  case Opcode::Mod:
    return "mod";
  case Opcode::Neg:
    return "neg";
  case Opcode::Not:
    return "not";
  case Opcode::CmpEq:
    return "cmpeq";
  case Opcode::CmpNe:
    return "cmpne";
  case Opcode::CmpLt:
    return "cmplt";
  case Opcode::CmpLe:
    return "cmple";
  case Opcode::CmpGt:
    return "cmpgt";
  case Opcode::CmpGe:
    return "cmpge";
  case Opcode::Jump:
    return "jump";
  case Opcode::JumpIfZero:
    return "jz";
  case Opcode::JumpIfNonZero:
    return "jnz";
  case Opcode::Call:
    return "call";
  case Opcode::CallIndirect:
    return "calli";
  case Opcode::Ret:
    return "ret";
  case Opcode::Print:
    return "print";
  case Opcode::Mcount:
    return "mcount";
  case Opcode::MemLoad:
    return "memload";
  case Opcode::MemStore:
    return "memstore";
  case Opcode::NumOpcodes:
    break;
  }
  assert(false && "invalid opcode");
  return "invalid";
}

unsigned gprof::instructionSize(Opcode Op) {
  switch (Op) {
  case Opcode::Push:
    return 1 + 8;
  case Opcode::PushFunc:
    return 1 + 8;
  case Opcode::LoadLocal:
  case Opcode::StoreLocal:
  case Opcode::LoadGlobal:
  case Opcode::StoreGlobal:
    return 1 + 2;
  case Opcode::Jump:
  case Opcode::JumpIfZero:
  case Opcode::JumpIfNonZero:
    return 1 + 8;
  case Opcode::Call:
    return 1 + 8 + 1;
  case Opcode::CallIndirect:
    return 1 + 1;
  default:
    return 1;
  }
}

uint64_t gprof::opcodeCycleCost(Opcode Op) {
  // Loosely modeled on a simple in-order machine: multiplies and divides
  // are expensive, calls cost several cycles, everything else one.
  switch (Op) {
  case Opcode::Mul:
    return 4;
  case Opcode::Div:
  case Opcode::Mod:
    return 12;
  case Opcode::Call:
    return 5;
  case Opcode::CallIndirect:
    return 6;
  case Opcode::Ret:
    return 4;
  case Opcode::Print:
    return 20;
  case Opcode::MemLoad:
  case Opcode::MemStore:
    return 3;
  case Opcode::Mcount:
    // The monitoring routine "has an overhead comparable with a call of a
    // regular routine" (paper §3).
    return 5;
  default:
    return 1;
  }
}
