//===- vm/CodeGen.h - AST to bytecode compilation --------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles a semantically-checked TL Program to an executable Image.
/// When profiling is enabled the compiler inserts an Mcount instruction at
/// the head of each function's code — the paper's "augmented routine
/// prologues" (§3): "our compilers ... can insert calls to a monitoring
/// routine in the prologue for each routine.  Use of the monitoring
/// routine requires no planning on part of a programmer other than to
/// request that augmented routine prologues be produced during
/// compilation."  Individual routines can be left unprofiled ("One need
/// not profile all the routines in a program.  Routines that are not
/// profiled run at full speed.").
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_VM_CODEGEN_H
#define GPROF_VM_CODEGEN_H

#include "lang/AST.h"
#include "lang/Diagnostics.h"
#include "support/Error.h"
#include "vm/Image.h"

#include <string>
#include <string_view>
#include <vector>

namespace gprof {

/// Compilation controls.
struct CodeGenOptions {
  /// Insert Mcount profiling prologues (the -pg equivalent).
  bool EnableProfiling = false;
  /// Functions compiled *without* the profiling prologue even when
  /// EnableProfiling is set.
  std::vector<std::string> UnprofiledFunctions;
  /// Routines to inline-expand at their call sites before code
  /// generation (paper §6's optimization, with its profiling drawback).
  std::vector<std::string> InlineFunctions;
};

/// Compiles \p P (which must have passed Sema) into an Image.
Expected<Image> compileToImage(const Program &P, const CodeGenOptions &Opts);

/// One-stop front end: lex + parse + sema + codegen.  Diagnostics land in
/// \p Diags; the Error return carries a summary on failure.
Expected<Image> compileTL(std::string_view Source, const CodeGenOptions &Opts,
                          DiagnosticEngine &Diags);

/// compileTL variant that aborts with rendered diagnostics on failure —
/// for tests, benches and examples whose sources are known-good.
Image compileTLOrDie(std::string_view Source,
                     const CodeGenOptions &Opts = {});

} // namespace gprof

#endif // GPROF_VM_CODEGEN_H
