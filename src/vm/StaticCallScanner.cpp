//===- vm/StaticCallScanner.cpp --------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "vm/StaticCallScanner.h"

#include "vm/Bytecode.h"

#include <algorithm>

using namespace gprof;

StaticScanResult gprof::scanStaticCalls(const Image &Img) {
  StaticScanResult Result;
  for (const FuncInfo &F : Img.Functions) {
    Address Pc = F.Addr;
    const Address End = F.Addr + F.CodeSize;
    while (Pc < End) {
      Opcode Op = static_cast<Opcode>(Img.byteAt(Pc));
      if (Op >= Opcode::NumOpcodes)
        break; // Corrupt code; symbol boundaries keep the scan sane.
      unsigned Size = instructionSize(Op);
      if (Pc + Size > End)
        break;

      if (Op == Opcode::Call) {
        uint64_t Target = 0;
        for (unsigned I = 0; I != 8; ++I)
          Target |= static_cast<uint64_t>(Img.byteAt(Pc + 1 + I)) << (8 * I);
        Result.DirectCalls.push_back({Pc, Target});
      } else if (Op == Opcode::PushFunc) {
        uint64_t Target = 0;
        for (unsigned I = 0; I != 8; ++I)
          Target |= static_cast<uint64_t>(Img.byteAt(Pc + 1 + I)) << (8 * I);
        Result.AddressTaken.push_back(Target);
      } else if (Op == Opcode::CallIndirect) {
        Result.IndirectCallSites.push_back(Pc);
      }
      Pc += Size;
    }
  }
  // Deduplicate the address-taken set.
  std::sort(Result.AddressTaken.begin(), Result.AddressTaken.end());
  Result.AddressTaken.erase(
      std::unique(Result.AddressTaken.begin(), Result.AddressTaken.end()),
      Result.AddressTaken.end());
  return Result;
}
