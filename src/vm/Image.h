//===- vm/Image.h - Executable image: code + symbol table ----------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The VM's "a.out": a flat code segment starting at a fixed base address,
/// a symbol table of functions (name, entry address, size), and global
/// variable metadata.  This is what the paper means by "the static calling
/// information is also contained in the executable version of the program,
/// which we already have available, and which is in language-independent
/// form" (§4): the post-processor symbolizes PCs against the function
/// table and the static scanner crawls the code segment.
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_VM_IMAGE_H
#define GPROF_VM_IMAGE_H

#include "gmon/Histogram.h" // for Address
#include "support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace gprof {

/// One line-table entry: code at offsets >= CodeOffset (up to the next
/// entry) was generated from source line Line.
struct LineEntry {
  uint32_t CodeOffset = 0;
  uint32_t Line = 0;
};

/// Symbol-table entry for one function in an Image.
struct FuncInfo {
  std::string Name;
  Address Addr = 0;      ///< Entry address (address of the first instruction).
  uint32_t CodeSize = 0; ///< Bytes of code, so the range is [Addr, Addr+Size).
  uint16_t NumParams = 0;
  uint16_t NumSlots = 0; ///< Frame slots (params + locals).
  bool Profiled = false; ///< True if the prologue begins with Mcount.
};

/// An executable TL image.
struct Image {
  /// All code addresses are offset by this base so that address 0 (and the
  /// VM's synthetic return address for main) lies outside the text range —
  /// arcs from such addresses symbolize to no routine and are classified
  /// "spontaneous", as in paper §3.1.
  static constexpr Address BaseAddr = 0x1000;

  std::vector<uint8_t> Code;
  /// Functions sorted by ascending entry address.
  std::vector<FuncInfo> Functions;
  std::vector<std::string> GlobalNames;
  std::vector<int64_t> GlobalInits;
  /// Index into Functions of the entry point ('main').
  uint32_t EntryFunction = 0;
  /// Source line table, sorted by ascending CodeOffset.  Empty for images
  /// built without line information.
  std::vector<LineEntry> LineTable;

  /// Source line that generated the code at \p Pc, or 0 if unknown.
  uint32_t lineForPc(Address Pc) const;

  Address lowPc() const { return BaseAddr; }
  Address highPc() const { return BaseAddr + Code.size(); }

  /// The opcode byte at \p Pc.
  uint8_t byteAt(Address Pc) const {
    assert(Pc >= BaseAddr && Pc - BaseAddr < Code.size() &&
           "address outside code segment");
    return Code[static_cast<size_t>(Pc - BaseAddr)];
  }

  /// Finds the function whose entry address is exactly \p Pc, else null.
  const FuncInfo *findFunctionAt(Address Pc) const;

  /// Finds the function whose code range contains \p Pc, else null.
  const FuncInfo *findFunctionContaining(Address Pc) const;

  /// Serializes to the TLX container format.
  std::vector<uint8_t> serialize() const;

  /// Parses a TLX container, validating structure.  The span form parses
  /// in place (e.g. out of a MappedFile view); every field copies into
  /// the Image, so the bytes only need to outlive the call.
  static Expected<Image> deserialize(const std::vector<uint8_t> &Bytes);
  static Expected<Image> deserialize(const uint8_t *Data, size_t Size);

  /// Convenience file wrappers.
  Error saveToFile(const std::string &Path) const;
  static Expected<Image> loadFromFile(const std::string &Path);
};

} // namespace gprof

#endif // GPROF_VM_IMAGE_H
