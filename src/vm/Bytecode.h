//===- vm/Bytecode.h - The TL virtual machine instruction set ------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bytecode ISA executed by the VM.  Instructions are variable length:
/// a one-byte opcode followed by little-endian operands.  Code lives in a
/// flat address space (see vm/Image.h) so program-counter values behave
/// like the paper's text-segment addresses: the histogram buckets them and
/// the static scanner crawls them.
///
/// Every opcode has a virtual cycle cost; the VM's clock is the sum of the
/// costs of executed instructions, and clock ticks for PC sampling are
/// derived from it.  The Mcount opcode is the compiler-inserted prologue
/// call of paper §3: executing it reports the (call site, callee) arc to
/// the attached monitor, and its cycle cost is charged at the callee's
/// entry address — exactly where real mcount time lands in a PC histogram.
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_VM_BYTECODE_H
#define GPROF_VM_BYTECODE_H

#include <cstdint>

namespace gprof {

/// VM opcodes.
enum class Opcode : uint8_t {
  Halt = 0,     ///< Stop execution (emitted only as a code-end sentinel).
  Push,         ///< i64 imm: push constant.
  PushFunc,     ///< u64 addr: push a function entry address (functional value).
  Pop,          ///< Discard top of stack.
  Dup,          ///< Duplicate top of stack.
  LoadLocal,    ///< u16 slot: push frame slot.
  StoreLocal,   ///< u16 slot: pop into frame slot.
  LoadGlobal,   ///< u16 index: push global.
  StoreGlobal,  ///< u16 index: pop into global.
  Add,
  Sub,
  Mul,
  Div,          ///< Traps on division by zero.
  Mod,          ///< Traps on division by zero.
  Neg,
  Not,          ///< Logical not: 0 -> 1, nonzero -> 0.
  CmpEq,
  CmpNe,
  CmpLt,
  CmpLe,
  CmpGt,
  CmpGe,
  Jump,         ///< u64 target: unconditional branch.
  JumpIfZero,   ///< u64 target: pop; branch if zero.
  JumpIfNonZero,///< u64 target: pop; branch if nonzero.
  Call,         ///< u64 target, u8 argc: direct call.
  CallIndirect, ///< u8 argc: pop function address, then call it.
  Ret,          ///< Pop return value, pop frame, resume caller.
  Print,        ///< Pop and append to program output.
  Mcount,       ///< Profiling prologue: report the incoming arc.
  MemLoad,      ///< Pop address; push Memory[address].  Traps on range.
  MemStore,     ///< Pop value, pop address; store; push the value.

  NumOpcodes,
};

/// Returns the mnemonic for \p Op.
const char *opcodeName(Opcode Op);

/// Returns the total encoded size (opcode byte + operands) of \p Op.
unsigned instructionSize(Opcode Op);

/// Returns the virtual cycle cost of executing \p Op once.
uint64_t opcodeCycleCost(Opcode Op);

} // namespace gprof

#endif // GPROF_VM_BYTECODE_H
