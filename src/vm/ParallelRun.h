//===- vm/ParallelRun.h - Run one image on several interpreter threads ----===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concurrent-workload driver: N interpreter threads, each with its
/// own VM (stack, globals, data memory, virtual clock) over one shared
/// read-only Image, all delivering profiling events to one shared
/// ProfileHooks.  This is the multithreaded target program the paper's
/// single-threaded runtime could not profile; with the thread-aware
/// Monitor each thread's events land in that thread's private tables and
/// the merged snapshot equals a serialized single-thread run of the same
/// work (docs/RUNTIME_MT.md).
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_VM_PARALLELRUN_H
#define GPROF_VM_PARALLELRUN_H

#include "vm/VM.h"

#include <vector>

namespace gprof {

/// Runs \p Img's entry function to completion on \p ThreadCount threads,
/// each on a private VM configured with \p Opts and hooked to \p Hooks
/// (which must be thread-safe or null; Monitor is).  Per-thread results
/// are returned in thread-index order, so the aggregate is deterministic
/// even though the interleaving is not.  If any thread traps, the
/// lowest-indexed failure is returned.
Expected<std::vector<RunResult>> runOnThreads(const Image &Img,
                                              const VMOptions &Opts,
                                              ProfileHooks *Hooks,
                                              unsigned ThreadCount);

} // namespace gprof

#endif // GPROF_VM_PARALLELRUN_H
