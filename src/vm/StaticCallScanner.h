//===- vm/StaticCallScanner.h - Crawl the image for static call arcs ------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements paper §4's static call graph discovery: "One can examine the
/// instructions in the object program, looking for calls to routines, and
/// note which routines can be called."  Direct Call instructions yield
/// (call site, callee) arcs; PushFunc instructions reveal routines whose
/// address is taken (potential targets of functional variables); and
/// CallIndirect instructions are the call sites the static graph cannot
/// resolve — which is exactly why "the dynamic call graph ... may include
/// arcs to functional parameters or variables that the static call graph
/// may omit" (§2).
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_VM_STATICCALLSCANNER_H
#define GPROF_VM_STATICCALLSCANNER_H

#include "vm/Image.h"

#include <vector>

namespace gprof {

/// One statically discovered direct call.
struct StaticArc {
  Address CallSitePc = 0; ///< Address of the Call instruction.
  Address TargetPc = 0;   ///< Callee entry address.
};

/// Everything the scanner can see in an image.
struct StaticScanResult {
  /// Direct call arcs, in code order.
  std::vector<StaticArc> DirectCalls;
  /// Entry addresses of functions whose address is taken by PushFunc.
  std::vector<Address> AddressTaken;
  /// Addresses of CallIndirect instructions (unresolvable statically).
  std::vector<Address> IndirectCallSites;
};

/// Decodes every instruction of \p Img and collects static call facts.
StaticScanResult scanStaticCalls(const Image &Img);

} // namespace gprof

#endif // GPROF_VM_STATICCALLSCANNER_H
