//===- vm/Disassembler.cpp -------------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "vm/Disassembler.h"

#include "support/Format.h"
#include "vm/Bytecode.h"

using namespace gprof;

namespace {

uint16_t decodeU16(const Image &Img, Address Pc) {
  size_t Off = static_cast<size_t>(Pc - Image::BaseAddr);
  return static_cast<uint16_t>(Img.Code[Off]) |
         static_cast<uint16_t>(Img.Code[Off + 1]) << 8;
}

uint64_t decodeU64(const Image &Img, Address Pc) {
  size_t Off = static_cast<size_t>(Pc - Image::BaseAddr);
  uint64_t V = 0;
  for (unsigned I = 0; I != 8; ++I)
    V |= static_cast<uint64_t>(Img.Code[Off + I]) << (8 * I);
  return V;
}

std::string targetName(const Image &Img, Address Target) {
  if (const FuncInfo *F = Img.findFunctionAt(Target))
    return F->Name;
  return format("0x%llx", static_cast<unsigned long long>(Target));
}

} // namespace

std::string gprof::disassembleInstruction(const Image &Img, Address Pc) {
  Opcode Op = static_cast<Opcode>(Img.byteAt(Pc));
  if (Op >= Opcode::NumOpcodes)
    return format("0x%06llx: <illegal opcode %u>",
                  static_cast<unsigned long long>(Pc), Img.byteAt(Pc));

  std::string Line =
      format("0x%06llx: %-10s ", static_cast<unsigned long long>(Pc),
             opcodeName(Op));
  switch (Op) {
  case Opcode::Push:
    Line += format("%lld",
                   static_cast<long long>(decodeU64(Img, Pc + 1)));
    break;
  case Opcode::PushFunc:
    Line += targetName(Img, decodeU64(Img, Pc + 1));
    break;
  case Opcode::LoadLocal:
  case Opcode::StoreLocal:
    Line += format("slot %u", decodeU16(Img, Pc + 1));
    break;
  case Opcode::LoadGlobal:
  case Opcode::StoreGlobal:
    Line += format("global %u", decodeU16(Img, Pc + 1));
    break;
  case Opcode::Jump:
  case Opcode::JumpIfZero:
  case Opcode::JumpIfNonZero:
    Line += format("0x%llx",
                   static_cast<unsigned long long>(decodeU64(Img, Pc + 1)));
    break;
  case Opcode::Call: {
    Address Target = decodeU64(Img, Pc + 1);
    uint8_t Argc = Img.byteAt(Pc + 9);
    Line += format("%s, %u args", targetName(Img, Target).c_str(), Argc);
    break;
  }
  case Opcode::CallIndirect:
    Line += format("%u args", Img.byteAt(Pc + 1));
    break;
  default:
    break;
  }
  return Line;
}

std::string gprof::disassemble(const Image &Img) {
  std::string Out;
  for (const FuncInfo &F : Img.Functions) {
    Out += format("%s:  ; %u params, %u slots%s\n", F.Name.c_str(),
                  F.NumParams, F.NumSlots,
                  F.Profiled ? ", profiled" : "");
    Address Pc = F.Addr;
    Address End = F.Addr + F.CodeSize;
    while (Pc < End) {
      Opcode Op = static_cast<Opcode>(Img.byteAt(Pc));
      Out += "  " + disassembleInstruction(Img, Pc) + "\n";
      if (Op >= Opcode::NumOpcodes)
        break;
      Pc += instructionSize(Op);
    }
  }
  return Out;
}
