//===- vm/ParallelRun.cpp --------------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "vm/ParallelRun.h"

#include <optional>
#include <thread>

using namespace gprof;

Expected<std::vector<RunResult>>
gprof::runOnThreads(const Image &Img, const VMOptions &Opts,
                    ProfileHooks *Hooks, unsigned ThreadCount) {
  if (ThreadCount == 0)
    return Error::failure("runOnThreads: thread count must be nonzero");

  // Thread 0 could run inline, but keeping every worker a real thread
  // makes the 1-thread case exercise the same registration path as N.
  std::vector<std::optional<Expected<RunResult>>> Results(ThreadCount);
  std::vector<std::thread> Workers;
  Workers.reserve(ThreadCount);
  for (unsigned T = 0; T != ThreadCount; ++T)
    Workers.emplace_back([&, T] {
      VM Machine(Img, Opts);
      Machine.setHooks(Hooks);
      Results[T].emplace(Machine.run());
    });
  for (std::thread &W : Workers)
    W.join();

  // Every failure must be consumed (Error asserts on unchecked drops);
  // the lowest-indexed one is the one reported.
  std::optional<Error> FirstErr;
  std::vector<RunResult> Out;
  Out.reserve(ThreadCount);
  for (unsigned T = 0; T != ThreadCount; ++T) {
    Expected<RunResult> &R = *Results[T];
    if (R) {
      Out.push_back(std::move(*R));
      continue;
    }
    Error E = R.takeError();
    if (!FirstErr)
      FirstErr.emplace(std::move(E));
    else
      (void)static_cast<bool>(E);
  }
  if (FirstErr)
    return std::move(*FirstErr);
  return Out;
}
