//===- graph/CycleCollapse.h - Collapse SCCs into cycle nodes ------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Collapses each strongly connected component into a single node, as in
/// paper §4: "Our solution collects all members of a cycle together,
/// summing the time and call counts for all members.  All calls into the
/// cycle are made to share the total time of the cycle, and all descendants
/// of the cycle propagate time into the cycle as a whole.  Calls among the
/// members of the cycle do not propagate any time."  The result (Figure 3)
/// is a DAG whose nodes are either singleton routines or whole cycles.
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_GRAPH_CYCLECOLLAPSE_H
#define GPROF_GRAPH_CYCLECOLLAPSE_H

#include "graph/CallGraph.h"
#include "graph/Tarjan.h"

#include <vector>

namespace gprof {

/// The DAG obtained by collapsing every SCC of a CallGraph.
///
/// Condensed node ids coincide with SCC component indices, so they are in
/// reverse topological order: arcs go from higher condensed ids to lower
/// ones, and a forward sweep over ids visits callees before callers.
struct CondensedGraph {
  /// The condensed DAG.  Node K's name is the original node's name for
  /// singleton components, or "<cycle K>" for collapsed cycles.  Arc counts
  /// are the sums of the inter-component arc counts they replace; arcs
  /// internal to a component are dropped.
  CallGraph Dag;
  /// Members (original node ids) of each condensed node.
  std::vector<std::vector<NodeId>> Members;
  /// Condensed node id of each original node.
  std::vector<NodeId> CondensedOf;

  /// True if condensed node \p C is a collapsed cycle of 2+ routines.
  bool isCycle(NodeId C) const { return Members[C].size() > 1; }
};

/// Collapses the SCCs of \p G (as computed by findSCCs) into a DAG.
CondensedGraph collapseCycles(const CallGraph &G, const SCCResult &SCCs);

} // namespace gprof

#endif // GPROF_GRAPH_CYCLECOLLAPSE_H
