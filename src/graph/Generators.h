//===- graph/Generators.h - Synthetic call-graph workloads ---------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic graph generators used by property tests and by the E7 and
/// E10 benches.  Everything is seeded; no global randomness.
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_GRAPH_GENERATORS_H
#define GPROF_GRAPH_GENERATORS_H

#include "graph/CallGraph.h"

#include <cstdint>

namespace gprof {

/// A random DAG: \p NumNodes nodes, roughly \p NumArcs forward arcs (from
/// lower to higher index, then node ids are shuffled).  Arc counts are
/// uniform in [1, MaxCount].
CallGraph makeRandomDag(uint32_t NumNodes, uint32_t NumArcs,
                        uint64_t MaxCount, uint64_t Seed);

/// A random directed graph that may contain cycles: \p NumArcs arcs drawn
/// uniformly over ordered node pairs (self arcs with probability
/// \p SelfArcProb each draw).
CallGraph makeRandomGraph(uint32_t NumNodes, uint32_t NumArcs,
                          uint64_t MaxCount, double SelfArcProb,
                          uint64_t Seed);

/// The retrospective's "kernel" shape: \p NumSubsystems groups of
/// \p SubsystemSize routines.  Each subsystem is internally layered and
/// acyclic with heavy call counts; a few low-count "back arcs" (exactly
/// \p BackArcs of them, with counts in [1, 5]) close large cycles across
/// subsystem boundaries, mimicking the networking-stack profiles that
/// motivated cycle breaking.
CallGraph makeKernelLikeGraph(uint32_t NumSubsystems, uint32_t SubsystemSize,
                              uint32_t BackArcs, uint64_t Seed);

/// A layered call graph resembling a structured program: \p Layers layers
/// of \p Width routines; every routine calls 1..MaxFanout routines in the
/// next layer.  Always acyclic; a main root calls everything in layer 0.
CallGraph makeLayeredGraph(uint32_t Layers, uint32_t Width,
                           uint32_t MaxFanout, uint64_t Seed);

} // namespace gprof

#endif // GPROF_GRAPH_GENERATORS_H
