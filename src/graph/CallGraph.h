//===- graph/CallGraph.h - Directed call graph with weighted arcs --------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The call-graph representation shared by the analysis pipeline (paper §4)
/// and by the pure graph algorithms (Tarjan SCC, cycle collapse, feedback
/// arc selection).  Nodes are routines; arcs go from caller to callee and
/// carry a traversal count.  Arcs with count zero and the Static flag are
/// the statically-discovered arcs of §4: they shape the graph (and may
/// complete cycles) but never carry propagated time.
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_GRAPH_CALLGRAPH_H
#define GPROF_GRAPH_CALLGRAPH_H

#include <cassert>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gprof {

/// Index of a node within a CallGraph.
using NodeId = uint32_t;
/// Index of an arc within a CallGraph.
using ArcId = uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId InvalidNode = ~static_cast<NodeId>(0);

/// One caller→callee arc.  At most one Arc object exists per (From, To)
/// pair; repeated insertions accumulate into Count.
struct Arc {
  NodeId From = InvalidNode;
  NodeId To = InvalidNode;
  /// Number of traversals recorded for this arc (zero for purely static
  /// arcs).
  uint64_t Count = 0;
  /// True if this arc was only discovered by crawling the executable image.
  bool Static = false;
};

/// A directed graph of named nodes with weighted, deduplicated arcs and
/// adjacency lists in both directions.
class CallGraph {
public:
  /// Adds a node named \p Name and returns its id.  Names need not be
  /// unique (the profiler disambiguates by address); lookup helpers return
  /// the first match.
  NodeId addNode(std::string Name);

  /// Adds \p Count traversals to the (From, To) arc, creating it if needed.
  /// \p IsStatic only marks newly created arcs; adding a dynamic count to a
  /// static arc clears its Static flag.
  ArcId addArc(NodeId From, NodeId To, uint64_t Count, bool IsStatic = false);

  /// Returns the arc id for (From, To) or InvalidNode if absent.
  ArcId findArc(NodeId From, NodeId To) const;

  size_t numNodes() const { return Names.size(); }
  size_t numArcs() const { return Arcs.size(); }

  const std::string &nodeName(NodeId N) const {
    assert(N < Names.size() && "node id out of range");
    return Names[N];
  }

  const Arc &arc(ArcId A) const {
    assert(A < Arcs.size() && "arc id out of range");
    return Arcs[A];
  }
  Arc &arc(ArcId A) {
    assert(A < Arcs.size() && "arc id out of range");
    return Arcs[A];
  }

  /// Ids of arcs leaving \p N (N as caller).
  const std::vector<ArcId> &outArcs(NodeId N) const {
    assert(N < Out.size() && "node id out of range");
    return Out[N];
  }

  /// Ids of arcs entering \p N (N as callee).
  const std::vector<ArcId> &inArcs(NodeId N) const {
    assert(N < In.size() && "node id out of range");
    return In[N];
  }

  /// Finds the first node named \p Name, or InvalidNode.
  NodeId findNode(const std::string &Name) const;

  /// Sum of counts on arcs into \p N, excluding the self arc.  This is the
  /// paper's C_e: "call counts for routines can then be determined by
  /// summing the counts on arcs directed into that routine" (§3.1).
  uint64_t incomingCallCount(NodeId N) const;

  /// True if the graph has no directed cycle (self arcs count as cycles).
  bool isAcyclic() const;

private:
  std::vector<std::string> Names;
  std::vector<Arc> Arcs;
  std::vector<std::vector<ArcId>> Out;
  std::vector<std::vector<ArcId>> In;
  /// (From, To) → ArcId, for deduplication.
  std::map<std::pair<NodeId, NodeId>, ArcId> ArcIndex;
};

} // namespace gprof

#endif // GPROF_GRAPH_CALLGRAPH_H
