//===- graph/Tarjan.h - Strongly connected components & topo numbering ---===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tarjan's strongly-connected-components algorithm [Tarjan72], used as in
/// paper §4: "we discover strongly-connected components in the call graph,
/// treat each such component as a single node, and then sort the resulting
/// graph.  We use a variation of Tarjan's strongly-connected components
/// algorithm that discovers strongly-connected components as it is
/// assigning topological order numbers."
///
/// The implementation is iterative (explicit DFS stack): profiled programs
/// with deep recursion produce long call chains, and the analyzer must not
/// overflow its own stack while analyzing them.
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_GRAPH_TARJAN_H
#define GPROF_GRAPH_TARJAN_H

#include "graph/CallGraph.h"

#include <vector>

namespace gprof {

/// The SCC decomposition of a CallGraph.
///
/// Components are emitted in *reverse topological* order of the condensed
/// graph: if any arc leads from component A to component B (A != B) then B
/// appears before A in Components.  Equivalently, using the component index
/// + 1 as a "topological number" gives the paper's Figure 1 property: every
/// inter-component arc goes from a higher-numbered node to a lower-numbered
/// node, and time can be propagated from callees to callers by a single
/// sweep in index order.
struct SCCResult {
  /// Component index of each node.
  std::vector<uint32_t> ComponentOf;
  /// Member nodes of each component, in discovery order.
  std::vector<std::vector<NodeId>> Components;

  /// Number of components with more than one member (true cycles other
  /// than self-loops).
  size_t numNontrivialComponents() const {
    size_t N = 0;
    for (const auto &C : Components)
      if (C.size() > 1)
        ++N;
    return N;
  }
};

/// Runs Tarjan's algorithm over every node of \p G.
SCCResult findSCCs(const CallGraph &G);

/// Assigns each node the topological number of its component, numbering
/// components 1..K such that every arc between distinct components goes
/// from a higher number to a lower number (Figure 1 / Figure 3 semantics;
/// leaves receive low numbers, roots high numbers).
std::vector<uint32_t> topologicalNumbers(const CallGraph &G,
                                         const SCCResult &SCCs);

/// Verifies the Figure 1 invariant: for every arc between distinct
/// components, Number[From] > Number[To].  Used by tests and benches.
bool checkTopologicalProperty(const CallGraph &G,
                              const std::vector<uint32_t> &Numbers,
                              const SCCResult &SCCs);

} // namespace gprof

#endif // GPROF_GRAPH_TARJAN_H
