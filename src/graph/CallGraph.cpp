//===- graph/CallGraph.cpp ------------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "graph/CallGraph.h"

#include "graph/Tarjan.h"

using namespace gprof;

NodeId CallGraph::addNode(std::string Name) {
  NodeId Id = static_cast<NodeId>(Names.size());
  Names.push_back(std::move(Name));
  Out.emplace_back();
  In.emplace_back();
  return Id;
}

ArcId CallGraph::addArc(NodeId From, NodeId To, uint64_t Count,
                        bool IsStatic) {
  assert(From < Names.size() && To < Names.size() && "node id out of range");
  auto Key = std::make_pair(From, To);
  auto It = ArcIndex.find(Key);
  if (It != ArcIndex.end()) {
    Arc &A = Arcs[It->second];
    A.Count += Count;
    if (!IsStatic)
      A.Static = false;
    return It->second;
  }
  ArcId Id = static_cast<ArcId>(Arcs.size());
  Arcs.push_back({From, To, Count, IsStatic});
  Out[From].push_back(Id);
  In[To].push_back(Id);
  ArcIndex.emplace(Key, Id);
  return Id;
}

ArcId CallGraph::findArc(NodeId From, NodeId To) const {
  auto It = ArcIndex.find(std::make_pair(From, To));
  if (It == ArcIndex.end())
    return InvalidNode;
  return It->second;
}

NodeId CallGraph::findNode(const std::string &Name) const {
  for (NodeId N = 0; N != Names.size(); ++N)
    if (Names[N] == Name)
      return N;
  return InvalidNode;
}

uint64_t CallGraph::incomingCallCount(NodeId N) const {
  uint64_t Total = 0;
  for (ArcId A : inArcs(N))
    if (Arcs[A].From != N)
      Total += Arcs[A].Count;
  return Total;
}

bool CallGraph::isAcyclic() const {
  SCCResult SCCs = findSCCs(*this);
  if (SCCs.Components.size() != numNodes())
    return false;
  // Single-node components may still carry a self arc.
  for (NodeId N = 0; N != numNodes(); ++N)
    if (findArc(N, N) != InvalidNode)
      return false;
  return true;
}
