//===- graph/Tarjan.cpp ---------------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "graph/Tarjan.h"

#include <algorithm>

using namespace gprof;

namespace {

/// Explicit DFS frame for the iterative Tarjan traversal.
struct Frame {
  NodeId Node;
  size_t NextArc; // index into outArcs(Node) to resume from
};

} // namespace

SCCResult gprof::findSCCs(const CallGraph &G) {
  const size_t N = G.numNodes();
  constexpr uint32_t Unvisited = ~static_cast<uint32_t>(0);

  SCCResult Result;
  Result.ComponentOf.assign(N, Unvisited);

  std::vector<uint32_t> Index(N, Unvisited);
  std::vector<uint32_t> LowLink(N, 0);
  std::vector<bool> OnStack(N, false);
  std::vector<NodeId> Stack;
  std::vector<Frame> DFS;
  uint32_t NextIndex = 0;

  for (NodeId Root = 0; Root != N; ++Root) {
    if (Index[Root] != Unvisited)
      continue;

    DFS.push_back({Root, 0});
    Index[Root] = LowLink[Root] = NextIndex++;
    Stack.push_back(Root);
    OnStack[Root] = true;

    while (!DFS.empty()) {
      Frame &F = DFS.back();
      NodeId V = F.Node;
      const std::vector<ArcId> &Arcs = G.outArcs(V);

      if (F.NextArc < Arcs.size()) {
        NodeId W = G.arc(Arcs[F.NextArc++]).To;
        if (Index[W] == Unvisited) {
          Index[W] = LowLink[W] = NextIndex++;
          Stack.push_back(W);
          OnStack[W] = true;
          DFS.push_back({W, 0});
        } else if (OnStack[W]) {
          LowLink[V] = std::min(LowLink[V], Index[W]);
        }
        continue;
      }

      // All successors explored: maybe emit a component, then return to
      // the parent frame.
      if (LowLink[V] == Index[V]) {
        std::vector<NodeId> Component;
        while (true) {
          NodeId W = Stack.back();
          Stack.pop_back();
          OnStack[W] = false;
          Result.ComponentOf[W] =
              static_cast<uint32_t>(Result.Components.size());
          Component.push_back(W);
          if (W == V)
            break;
        }
        std::reverse(Component.begin(), Component.end());
        Result.Components.push_back(std::move(Component));
      }

      DFS.pop_back();
      if (!DFS.empty()) {
        NodeId Parent = DFS.back().Node;
        LowLink[Parent] = std::min(LowLink[Parent], LowLink[V]);
      }
    }
  }
  return Result;
}

std::vector<uint32_t>
gprof::topologicalNumbers(const CallGraph &G, const SCCResult &SCCs) {
  // Tarjan emits components children-first, so component index + 1 already
  // has the property that arcs go from higher numbers to lower numbers.
  std::vector<uint32_t> Numbers(G.numNodes(), 0);
  for (NodeId V = 0; V != G.numNodes(); ++V)
    Numbers[V] = SCCs.ComponentOf[V] + 1;
  return Numbers;
}

bool gprof::checkTopologicalProperty(const CallGraph &G,
                                     const std::vector<uint32_t> &Numbers,
                                     const SCCResult &SCCs) {
  for (ArcId A = 0; A != G.numArcs(); ++A) {
    const Arc &Edge = G.arc(A);
    if (SCCs.ComponentOf[Edge.From] == SCCs.ComponentOf[Edge.To])
      continue;
    if (Numbers[Edge.From] <= Numbers[Edge.To])
      return false;
  }
  return true;
}
