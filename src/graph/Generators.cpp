//===- graph/Generators.cpp -----------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "graph/Generators.h"

#include "support/Format.h"
#include "support/Random.h"

#include <algorithm>
#include <numeric>

using namespace gprof;

CallGraph gprof::makeRandomDag(uint32_t NumNodes, uint32_t NumArcs,
                               uint64_t MaxCount, uint64_t Seed) {
  assert(NumNodes >= 2 && "a DAG with arcs needs at least two nodes");
  SplitMix64 Rng(Seed);

  // Shuffle a topological order so node ids do not encode it.
  std::vector<uint32_t> Order(NumNodes);
  std::iota(Order.begin(), Order.end(), 0);
  for (uint32_t I = NumNodes - 1; I > 0; --I)
    std::swap(Order[I], Order[Rng.nextBelow(I + 1)]);

  CallGraph G;
  for (uint32_t N = 0; N != NumNodes; ++N)
    G.addNode(format("f%u", N));
  for (uint32_t A = 0; A != NumArcs; ++A) {
    uint32_t I = static_cast<uint32_t>(Rng.nextBelow(NumNodes - 1));
    uint32_t J =
        static_cast<uint32_t>(Rng.nextInRange(I + 1, NumNodes - 1));
    G.addArc(Order[I], Order[J], Rng.nextInRange(1, MaxCount));
  }
  return G;
}

CallGraph gprof::makeRandomGraph(uint32_t NumNodes, uint32_t NumArcs,
                                 uint64_t MaxCount, double SelfArcProb,
                                 uint64_t Seed) {
  assert(NumNodes >= 1 && "graph needs nodes");
  SplitMix64 Rng(Seed);
  CallGraph G;
  for (uint32_t N = 0; N != NumNodes; ++N)
    G.addNode(format("f%u", N));
  for (uint32_t A = 0; A != NumArcs; ++A) {
    uint32_t From = static_cast<uint32_t>(Rng.nextBelow(NumNodes));
    uint32_t To = Rng.nextBool(SelfArcProb)
                      ? From
                      : static_cast<uint32_t>(Rng.nextBelow(NumNodes));
    G.addArc(From, To, Rng.nextInRange(1, MaxCount));
  }
  return G;
}

CallGraph gprof::makeKernelLikeGraph(uint32_t NumSubsystems,
                                     uint32_t SubsystemSize,
                                     uint32_t BackArcs, uint64_t Seed) {
  assert(NumSubsystems >= 1 && SubsystemSize >= 2 && "degenerate kernel");
  SplitMix64 Rng(Seed);
  CallGraph G;
  for (uint32_t S = 0; S != NumSubsystems; ++S)
    for (uint32_t R = 0; R != SubsystemSize; ++R)
      G.addNode(format("sub%u_fn%u", S, R));

  auto NodeOf = [&](uint32_t S, uint32_t R) { return S * SubsystemSize + R; };

  // Heavy, layered intra-subsystem traffic (acyclic within a subsystem).
  for (uint32_t S = 0; S != NumSubsystems; ++S)
    for (uint32_t R = 0; R + 1 != SubsystemSize; ++R) {
      uint32_t Fanout = static_cast<uint32_t>(Rng.nextInRange(1, 3));
      for (uint32_t F = 0; F != Fanout; ++F) {
        uint32_t To =
            static_cast<uint32_t>(Rng.nextInRange(R + 1, SubsystemSize - 1));
        G.addArc(NodeOf(S, R), NodeOf(S, To),
                 Rng.nextInRange(1000, 100000));
      }
    }

  // Heavy forward arcs between consecutive subsystems (entry points).
  for (uint32_t S = 0; S + 1 != NumSubsystems; ++S)
    G.addArc(NodeOf(S, SubsystemSize - 1), NodeOf(S + 1, 0),
             Rng.nextInRange(1000, 100000));

  // A few low-count back arcs close one large cycle across subsystems, as
  // in the kernel profiles the retrospective describes.
  for (uint32_t B = 0; B != BackArcs; ++B) {
    uint32_t FromS =
        static_cast<uint32_t>(Rng.nextBelow(NumSubsystems));
    uint32_t ToS = FromS == 0 ? 0 : static_cast<uint32_t>(Rng.nextBelow(FromS + 1));
    uint32_t From = NodeOf(
        FromS, static_cast<uint32_t>(Rng.nextBelow(SubsystemSize)));
    uint32_t To =
        NodeOf(ToS, static_cast<uint32_t>(Rng.nextBelow(SubsystemSize)));
    if (From == To)
      To = NodeOf(ToS, 0) == From ? NodeOf(ToS, 1) : NodeOf(ToS, 0);
    G.addArc(From, To, Rng.nextInRange(1, 5));
  }
  return G;
}

CallGraph gprof::makeLayeredGraph(uint32_t Layers, uint32_t Width,
                                  uint32_t MaxFanout, uint64_t Seed) {
  assert(Layers >= 1 && Width >= 1 && MaxFanout >= 1 && "degenerate layout");
  SplitMix64 Rng(Seed);
  CallGraph G;
  NodeId Main = G.addNode("main");
  std::vector<std::vector<NodeId>> Layer(Layers);
  for (uint32_t L = 0; L != Layers; ++L)
    for (uint32_t W = 0; W != Width; ++W)
      Layer[L].push_back(G.addNode(format("l%u_fn%u", L, W)));

  for (NodeId N : Layer[0])
    G.addArc(Main, N, Rng.nextInRange(1, 100));
  for (uint32_t L = 0; L + 1 != Layers; ++L)
    for (NodeId From : Layer[L]) {
      uint32_t Fanout = static_cast<uint32_t>(Rng.nextInRange(1, MaxFanout));
      for (uint32_t F = 0; F != Fanout; ++F) {
        NodeId To = Layer[L + 1][Rng.nextBelow(Width)];
        G.addArc(From, To, Rng.nextInRange(1, 10000));
      }
    }
  return G;
}
