//===- graph/FeedbackArcs.h - Cycle-breaking arc selection ---------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The retrospective's cycle-breaking facility.  Large programs (the BSD
/// kernel's networking stack, in the authors' telling) produce huge cycles
/// closed by "just a few arcs -- with low traversal counts".  gprof grew an
/// option to delete a user-chosen arc set from the analysis, and "to aid
/// users unable or unwilling to find an arc set for themselves, we added a
/// heuristic to help choose arcs to remove.  The underlying problem is
/// NP-complete, so we added a bound on the number of arcs the tool would
/// attempt to remove."
///
/// This module provides:
///  - a greedy heuristic: repeatedly delete the lowest-traversal-count arc
///    that lies inside a nontrivial SCC, up to a bound;
///  - an exact branch-and-bound minimum feedback arc set for small
///    components, used by tests and by the E7 bench to measure the
///    heuristic's optimality gap.
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_GRAPH_FEEDBACKARCS_H
#define GPROF_GRAPH_FEEDBACKARCS_H

#include "graph/CallGraph.h"

#include <vector>

namespace gprof {

/// Result of a cycle-breaking pass.
struct FeedbackArcResult {
  /// Arc ids (into the input graph) chosen for deletion, in deletion order.
  std::vector<ArcId> RemovedArcs;
  /// True if the graph is fully acyclic (ignoring self arcs) once the
  /// removed arcs are deleted.  False if the bound stopped the search.
  bool Acyclic = false;
  /// Sum of the traversal counts of the removed arcs — the "information
  /// lost by omitting these arcs".
  uint64_t RemovedCount = 0;
};

/// Greedy heuristic: while a nontrivial SCC remains and fewer than
/// \p MaxArcs arcs have been removed, deletes the intra-SCC arc with the
/// smallest traversal count (ties broken toward the arc whose removal is
/// attempted first in arc-id order).  Self arcs never participate: the
/// analysis already treats them as non-propagating (paper §4).
FeedbackArcResult selectFeedbackArcsGreedy(const CallGraph &G,
                                           unsigned MaxArcs);

/// Exact minimum-cardinality feedback arc set over the graph's intra-SCC
/// arcs, by iterative-deepening branch and bound.  Exponential: callers
/// must keep the candidate arc count small (tests use <= ~16 arcs).
/// \p MaxArcs bounds the search depth; if no solution exists within the
/// bound the result has Acyclic == false.
FeedbackArcResult selectFeedbackArcsExact(const CallGraph &G,
                                          unsigned MaxArcs);

/// Copies \p G without the arcs in \p Removed (used to apply a selection).
CallGraph removeArcs(const CallGraph &G, const std::vector<ArcId> &Removed);

} // namespace gprof

#endif // GPROF_GRAPH_FEEDBACKARCS_H
