//===- graph/CycleCollapse.cpp --------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "graph/CycleCollapse.h"

#include "support/Format.h"

using namespace gprof;

CondensedGraph gprof::collapseCycles(const CallGraph &G,
                                     const SCCResult &SCCs) {
  CondensedGraph Result;
  Result.Members = SCCs.Components;
  Result.CondensedOf.resize(G.numNodes());

  for (size_t C = 0; C != SCCs.Components.size(); ++C) {
    const std::vector<NodeId> &Members = SCCs.Components[C];
    std::string Name = Members.size() == 1
                           ? G.nodeName(Members.front())
                           : format("<cycle %zu>", C);
    NodeId Id = Result.Dag.addNode(std::move(Name));
    assert(Id == static_cast<NodeId>(C) &&
           "condensed ids must equal component indices");
    (void)Id;
    for (NodeId M : Members)
      Result.CondensedOf[M] = static_cast<NodeId>(C);
  }

  for (ArcId A = 0; A != G.numArcs(); ++A) {
    const Arc &Edge = G.arc(A);
    NodeId FromC = Result.CondensedOf[Edge.From];
    NodeId ToC = Result.CondensedOf[Edge.To];
    if (FromC == ToC)
      continue; // Calls among cycle members (and self calls) collapse away.
    Result.Dag.addArc(FromC, ToC, Edge.Count, Edge.Static);
  }
  return Result;
}
