//===- graph/FeedbackArcs.cpp ---------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "graph/FeedbackArcs.h"

#include "graph/Tarjan.h"

#include <algorithm>
#include <set>

using namespace gprof;

CallGraph gprof::removeArcs(const CallGraph &G,
                            const std::vector<ArcId> &Removed) {
  std::set<ArcId> Dropped(Removed.begin(), Removed.end());
  CallGraph Out;
  for (NodeId N = 0; N != G.numNodes(); ++N)
    Out.addNode(G.nodeName(N));
  for (ArcId A = 0; A != G.numArcs(); ++A) {
    if (Dropped.count(A))
      continue;
    const Arc &Edge = G.arc(A);
    Out.addArc(Edge.From, Edge.To, Edge.Count, Edge.Static);
  }
  return Out;
}

namespace {

/// True if the graph restricted to arcs not in \p Dropped has no cycle of
/// length >= 2 (self arcs are ignored throughout cycle breaking).
bool isAcyclicIgnoringSelfArcs(const CallGraph &G,
                               const std::set<ArcId> &Dropped) {
  // Kahn's algorithm over the restricted arc set.
  std::vector<uint32_t> InDegree(G.numNodes(), 0);
  for (ArcId A = 0; A != G.numArcs(); ++A) {
    const Arc &Edge = G.arc(A);
    if (Edge.From == Edge.To || Dropped.count(A))
      continue;
    ++InDegree[Edge.To];
  }
  std::vector<NodeId> Ready;
  for (NodeId N = 0; N != G.numNodes(); ++N)
    if (InDegree[N] == 0)
      Ready.push_back(N);
  size_t Seen = 0;
  while (!Ready.empty()) {
    NodeId N = Ready.back();
    Ready.pop_back();
    ++Seen;
    for (ArcId A : G.outArcs(N)) {
      const Arc &Edge = G.arc(A);
      if (Edge.From == Edge.To || Dropped.count(A))
        continue;
      if (--InDegree[Edge.To] == 0)
        Ready.push_back(Edge.To);
    }
  }
  return Seen == G.numNodes();
}

/// Collects arcs inside nontrivial SCCs of the graph restricted to arcs not
/// in \p Dropped.
std::vector<ArcId> intraSCCArcs(const CallGraph &G,
                                const std::set<ArcId> &Dropped) {
  // Build a filtered copy, then map SCCs back through original arc ids.
  CallGraph Filtered;
  for (NodeId N = 0; N != G.numNodes(); ++N)
    Filtered.addNode(G.nodeName(N));
  for (ArcId A = 0; A != G.numArcs(); ++A) {
    if (Dropped.count(A))
      continue;
    const Arc &Edge = G.arc(A);
    Filtered.addArc(Edge.From, Edge.To, Edge.Count, Edge.Static);
  }
  SCCResult SCCs = findSCCs(Filtered);
  std::vector<ArcId> Candidates;
  for (ArcId A = 0; A != G.numArcs(); ++A) {
    if (Dropped.count(A))
      continue;
    const Arc &Edge = G.arc(A);
    if (Edge.From == Edge.To)
      continue;
    if (SCCs.ComponentOf[Edge.From] == SCCs.ComponentOf[Edge.To])
      Candidates.push_back(A);
  }
  return Candidates;
}

/// Depth-limited search for a feedback arc set of size <= Depth.  Appends
/// the chosen arcs to \p Chosen.  Arcs are tried in increasing id order
/// (\p MinArc): every minimal feedback arc set can be discovered in
/// increasing order because each of its arcs lies on a cycle avoiding the
/// rest of the set, so the ordering restriction loses no solutions while
/// avoiding permutations of the same set.
bool searchExact(const CallGraph &G, std::set<ArcId> &Dropped,
                 std::vector<ArcId> &Chosen, unsigned Depth, ArcId MinArc) {
  if (isAcyclicIgnoringSelfArcs(G, Dropped))
    return true;
  if (Depth == 0)
    return false;
  // Only arcs still participating in some cycle are worth trying.
  std::vector<ArcId> Candidates = intraSCCArcs(G, Dropped);
  for (ArcId A : Candidates) {
    if (A < MinArc)
      continue;
    Dropped.insert(A);
    Chosen.push_back(A);
    if (searchExact(G, Dropped, Chosen, Depth - 1, A + 1))
      return true;
    Chosen.pop_back();
    Dropped.erase(A);
  }
  return false;
}

} // namespace

FeedbackArcResult gprof::selectFeedbackArcsGreedy(const CallGraph &G,
                                                  unsigned MaxArcs) {
  FeedbackArcResult Result;
  std::set<ArcId> Dropped;
  while (Result.RemovedArcs.size() < MaxArcs) {
    std::vector<ArcId> Candidates = intraSCCArcs(G, Dropped);
    if (Candidates.empty())
      break;
    // "there were just a few arcs -- with low traversal counts -- that
    // closed the cycles": prefer the cheapest arc to delete.
    ArcId Best = Candidates.front();
    for (ArcId A : Candidates)
      if (G.arc(A).Count < G.arc(Best).Count)
        Best = A;
    Dropped.insert(Best);
    Result.RemovedArcs.push_back(Best);
    Result.RemovedCount += G.arc(Best).Count;
  }
  Result.Acyclic = isAcyclicIgnoringSelfArcs(G, Dropped);
  return Result;
}

FeedbackArcResult gprof::selectFeedbackArcsExact(const CallGraph &G,
                                                 unsigned MaxArcs) {
  FeedbackArcResult Result;
  std::set<ArcId> Dropped;
  if (isAcyclicIgnoringSelfArcs(G, Dropped)) {
    Result.Acyclic = true;
    return Result;
  }
  for (unsigned Depth = 1; Depth <= MaxArcs; ++Depth) {
    std::vector<ArcId> Chosen;
    std::set<ArcId> Work;
    if (searchExact(G, Work, Chosen, Depth, /*MinArc=*/0)) {
      Result.RemovedArcs = Chosen;
      for (ArcId A : Chosen)
        Result.RemovedCount += G.arc(A).Count;
      Result.Acyclic = true;
      return Result;
    }
  }
  return Result;
}
