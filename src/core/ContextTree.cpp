//===- core/ContextTree.cpp ------------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "core/ContextTree.h"

#include "support/Format.h"

#include <algorithm>

using namespace gprof;

Expected<ContextTree> ContextTree::build(const ProfileData &Data,
                                         const SymbolTable &Syms) {
  ContextTree T;
  T.Syms = &Syms;
  T.Hz = Data.TicksPerSecond;
  T.Overflowed = Data.ContextTreeOverflowed;
  T.SelfTicks.assign(Syms.size(), 0);
  T.TotalTicks.assign(Syms.size(), 0);
  T.Entries.reserve(Data.Contexts.size());

  for (size_t I = 0; I != Data.Contexts.size(); ++I) {
    const CctNode &N = Data.Contexts[I];
    if (N.Parent != CctRootParent && N.Parent >= I)
      return Error::failure(
          format("context tree node %zu has invalid parent %u", I, N.Parent));
    ContextEntry E;
    E.Parent = N.Parent;
    E.FromPc = N.FromPc;
    E.SelfPc = N.SelfPc;
    E.Calls = N.Calls;
    E.Ticks = N.Ticks;
    E.InclusiveTicks = N.Ticks;
    E.Routine = Syms.findContaining(N.SelfPc);
    if (E.Parent != CctRootParent) {
      E.Depth = T.Entries[E.Parent].Depth + 1;
      // Maximal = no proper ancestor runs the same routine; walking the
      // parent chain is O(depth), trivial next to symbolization.
      if (E.Routine != NoSymbol) {
        for (uint32_t A = E.Parent; A != CctRootParent;
             A = T.Entries[A].Parent) {
          if (T.Entries[A].Routine == E.Routine) {
            E.Maximal = false;
            break;
          }
        }
      }
    }
    T.Entries.push_back(E);
  }

  // Bottom-up inclusive accumulation: parents precede children, so one
  // reverse sweep settles every subtree.
  for (size_t I = T.Entries.size(); I-- != 0;) {
    const ContextEntry &E = T.Entries[I];
    if (E.Parent != CctRootParent)
      T.Entries[E.Parent].InclusiveTicks =
          saturatingAdd(T.Entries[E.Parent].InclusiveTicks, E.InclusiveTicks);
  }

  // Exact per-routine totals.  Self time sums every context; total time
  // sums only maximal contexts so recursive routines count each tick
  // exactly once.
  for (const ContextEntry &E : T.Entries) {
    if (E.Routine == NoSymbol) {
      T.Unattributed = saturatingAdd(T.Unattributed, E.Ticks);
      continue;
    }
    T.SelfTicks[E.Routine] = saturatingAdd(T.SelfTicks[E.Routine], E.Ticks);
    if (E.Maximal)
      T.TotalTicks[E.Routine] =
          saturatingAdd(T.TotalTicks[E.Routine], E.InclusiveTicks);
  }
  return T;
}

uint64_t ContextTree::exactSelfTicks(uint32_t Routine) const {
  return Routine < SelfTicks.size() ? SelfTicks[Routine] : 0;
}

uint64_t ContextTree::exactTotalTicks(uint32_t Routine) const {
  return Routine < TotalTicks.size() ? TotalTicks[Routine] : 0;
}

std::vector<uint32_t> ContextTree::routines() const {
  std::vector<char> Seen(Syms->size(), 0);
  for (const ContextEntry &E : Entries)
    if (E.Routine != NoSymbol)
      Seen[E.Routine] = 1;
  std::vector<uint32_t> Out;
  for (uint32_t I = 0; I != Seen.size(); ++I)
    if (Seen[I])
      Out.push_back(I);
  return Out;
}

std::vector<uint32_t> ContextTree::contextsOf(uint32_t Routine) const {
  std::vector<uint32_t> Out;
  for (uint32_t I = 0; I != Entries.size(); ++I)
    if (Entries[I].Routine == Routine)
      Out.push_back(I);
  std::stable_sort(Out.begin(), Out.end(), [this](uint32_t A, uint32_t B) {
    return Entries[A].InclusiveTicks > Entries[B].InclusiveTicks;
  });
  return Out;
}

std::string ContextTree::contextName(size_t I) const {
  // Collect the chain root-to-leaf.
  std::vector<uint32_t> Chain;
  for (uint32_t A = static_cast<uint32_t>(I); A != CctRootParent;
       A = Entries[A].Parent)
    Chain.push_back(A);
  std::string Out;
  for (size_t J = Chain.size(); J-- != 0;) {
    const ContextEntry &E = Entries[Chain[J]];
    if (E.Routine != NoSymbol)
      Out += Syms->symbol(E.Routine).Name;
    else
      Out += format("<pc 0x%llx>",
                    static_cast<unsigned long long>(E.SelfPc));
    if (J != 0)
      Out += " > ";
  }
  return Out;
}

std::string gprof::printContexts(const ContextTree &Tree,
                                 const ContextPrintOptions &Opts) {
  std::string Out;
  Out += format("calling-context profile: %zu contexts\n\n", Tree.size());
  if (Tree.empty()) {
    Out += "no contexts recorded (run with --contexts to collect them)\n";
    return Out;
  }
  if (Tree.overflowed())
    Out += "warning: the context tree overflowed during collection; "
           "context counts are lower bounds\n\n";

  // Routines by decreasing exact total time, ties by name — the same
  // deterministic discipline as the main listings.
  std::vector<uint32_t> Routines = Tree.routines();
  if (!Opts.FilterRoutines.empty()) {
    std::vector<uint32_t> Kept;
    for (uint32_t R : Routines) {
      const std::string &Name = Tree.symbols().symbol(R).Name;
      for (const std::string &F : Opts.FilterRoutines)
        if (Name == F) {
          Kept.push_back(R);
          break;
        }
    }
    Routines = std::move(Kept);
  }
  std::stable_sort(Routines.begin(), Routines.end(),
                   [&](uint32_t A, uint32_t B) {
                     uint64_t TA = Tree.exactTotalTicks(A);
                     uint64_t TB = Tree.exactTotalTicks(B);
                     if (TA != TB)
                       return TA > TB;
                     return Tree.symbols().symbol(A).Name <
                            Tree.symbols().symbol(B).Name;
                   });

  for (uint32_t R : Routines) {
    std::vector<uint32_t> Ctxs = Tree.contextsOf(R);
    Out += format("%s: %zu context%s, exact self %.3fs, exact total %.3fs\n",
                  Tree.symbols().symbol(R).Name.c_str(), Ctxs.size(),
                  Ctxs.size() == 1 ? "" : "s",
                  Tree.ticksToSeconds(Tree.exactSelfTicks(R)),
                  Tree.ticksToSeconds(Tree.exactTotalTicks(R)));
    Out += "      calls   self(s)  total(s)  context\n";
    size_t Shown = 0;
    for (uint32_t C : Ctxs) {
      if (Shown == Opts.TopContexts) {
        Out += format("  ... %zu more context%s\n", Ctxs.size() - Shown,
                      Ctxs.size() - Shown == 1 ? "" : "s");
        break;
      }
      const ContextEntry &E = Tree.node(C);
      Out += format("%11llu %9.3f %9.3f  %s\n",
                    static_cast<unsigned long long>(E.Calls),
                    Tree.ticksToSeconds(E.Ticks),
                    Tree.ticksToSeconds(E.InclusiveTicks),
                    Tree.contextName(C).c_str());
      ++Shown;
    }
    Out += "\n";
  }
  if (Tree.unattributedTicks() != 0)
    Out += format("%.3f seconds sampled in contexts outside every known "
                  "routine\n",
                  Tree.ticksToSeconds(Tree.unattributedTicks()));
  return Out;
}

PropagationErrorReport
gprof::propagationError(const ProfileReport &Report, const ContextTree &Tree) {
  PropagationErrorReport R;
  R.TotalSecs = Report.TotalTime;
  std::vector<uint64_t> ContextCount(Tree.symbols().size(), 0);
  for (size_t I = 0; I != Tree.size(); ++I)
    if (Tree.node(I).Routine != NoSymbol)
      ++ContextCount[Tree.node(I).Routine];

  for (const FunctionEntry &F : Report.Functions) {
    uint64_t Exact = Tree.exactTotalTicks(F.SymbolIndex);
    if (F.isUnused() && Exact == 0)
      continue;
    PropagationErrorRow Row;
    Row.Name = F.Name;
    Row.Contexts = F.SymbolIndex < ContextCount.size()
                       ? ContextCount[F.SymbolIndex]
                       : 0;
    Row.PropagatedSecs = F.totalTime();
    Row.ExactSecs = Tree.ticksToSeconds(Exact);
    Row.AbsError = Row.PropagatedSecs > Row.ExactSecs
                       ? Row.PropagatedSecs - Row.ExactSecs
                       : Row.ExactSecs - Row.PropagatedSecs;
    Row.RelError = Row.ExactSecs > 0.0 ? Row.AbsError / Row.ExactSecs : 0.0;
    Row.CycleNumber = F.CycleNumber;
    R.Rows.push_back(std::move(Row));
    if (R.Rows.back().AbsError > R.MaxAbsError)
      R.MaxAbsError = R.Rows.back().AbsError;
    if (R.Rows.back().RelError > R.MaxRelError)
      R.MaxRelError = R.Rows.back().RelError;
  }
  std::stable_sort(R.Rows.begin(), R.Rows.end(),
                   [](const PropagationErrorRow &A,
                      const PropagationErrorRow &B) {
                     if (A.AbsError != B.AbsError)
                       return A.AbsError > B.AbsError;
                     return A.Name < B.Name;
                   });
  return R;
}

std::string gprof::printPropagationError(const PropagationErrorReport &R) {
  std::string Out;
  Out += "propagation error (paper sec. 6: propagated vs exact inclusive "
         "time)\n\n";
  Out += "  propagated     exact   abs.err   rel.err  contexts  routine\n";
  for (const PropagationErrorRow &Row : R.Rows) {
    Out += format("%12.3f %9.3f %9.3f %8.1f%% %9llu  %s%s\n",
                  Row.PropagatedSecs, Row.ExactSecs, Row.AbsError,
                  Row.RelError * 100.0,
                  static_cast<unsigned long long>(Row.Contexts),
                  Row.Name.c_str(),
                  Row.CycleNumber != 0
                      ? format(" (cycle %u)", Row.CycleNumber).c_str()
                      : "");
  }
  Out += format("\nmax abs error %.3fs, max rel error %.1f%%\n",
                R.MaxAbsError, R.MaxRelError * 100.0);
  return Out;
}

std::string gprof::propagationErrorJson(const PropagationErrorReport &R,
                                        const std::string &Program) {
  std::string Out = "{\n";
  Out += format("  \"program\": \"%s\",\n", Program.c_str());
  Out += format("  \"total_sec\": %.6f,\n", R.TotalSecs);
  Out += format("  \"max_abs_error_sec\": %.6f,\n", R.MaxAbsError);
  Out += format("  \"max_rel_error\": %.6f,\n", R.MaxRelError);
  Out += "  \"rows\": [\n";
  for (size_t I = 0; I != R.Rows.size(); ++I) {
    const PropagationErrorRow &Row = R.Rows[I];
    Out += format("    {\"routine\": \"%s\", \"contexts\": %llu, "
                  "\"propagated_sec\": %.6f, \"exact_sec\": %.6f, "
                  "\"abs_error_sec\": %.6f, \"rel_error\": %.6f, "
                  "\"cycle\": %u}%s\n",
                  Row.Name.c_str(),
                  static_cast<unsigned long long>(Row.Contexts),
                  Row.PropagatedSecs, Row.ExactSecs, Row.AbsError,
                  Row.RelError, Row.CycleNumber,
                  I + 1 == R.Rows.size() ? "" : ",");
  }
  Out += "  ]\n}\n";
  return Out;
}

std::vector<ArcRecord>
gprof::collapseContextsToArcs(const std::vector<CctNode> &Nodes) {
  ProfileData Tmp;
  for (const CctNode &N : Nodes)
    if (N.Calls != 0) // zero-call spine nodes (post-reset) imply no arc
      Tmp.addArc(N.FromPc, N.SelfPc, N.Calls);
  Tmp.canonicalizeArcs();
  return std::move(Tmp.Arcs);
}
