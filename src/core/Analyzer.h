//===- core/Analyzer.h - The gprof post-processing pipeline ---------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's primary contribution (§4): combine the arc table and the PC
/// histogram into a call graph profile.  The pipeline:
///
///  1. symbolize arcs (callers that resolve to no routine are
///     "spontaneous");
///  2. apply arc deletions (the retrospective's -k option) and, optionally,
///     the bounded cycle-breaking heuristic;
///  3. add statically discovered arcs with count zero (before cycle
///     discovery, "since they may complete strongly connected
///     components");
///  4. assign histogram samples to routines as self time, prorating
///     buckets that straddle routine boundaries;
///  5. find strongly connected components (Tarjan), collapse them into
///     cycles, and topologically number the condensed graph;
///  6. propagate time from callees to callers in a single sweep:
///     T_r = S_r + sum over r CALLS e of T_e * C^r_e / C_e,
///     with cycles treated as single entities, and self arcs and
///     intra-cycle arcs listed but never propagated;
///  7. produce the report: flat order, graph listing order with
///     cross-reference indices, never-called routines.
///
/// Steps 1, 4 and 6 optionally run on a thread pool (AnalyzerOptions::
/// Threads): arcs symbolize in shards, samples are assigned routine-major
/// with one owner per routine, and propagation proceeds level by level
/// over the condensed DAG.  Every reduction is ordered so the resulting
/// listings are byte-identical at any thread count; docs/ANALYZER.md
/// describes the scheme.
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_CORE_ANALYZER_H
#define GPROF_CORE_ANALYZER_H

#include "core/Report.h"
#include "core/SymbolTable.h"
#include "gmon/ProfileData.h"
#include "support/Error.h"
#include "vm/StaticCallScanner.h"

#include <string>
#include <utility>
#include <vector>

namespace gprof {

/// Analysis controls.
struct AnalyzerOptions {
  /// Incorporate statically discovered arcs (gprof -c): "Statically
  /// discovered arcs that do not exist in the dynamic call graph are added
  /// to the graph with a traversal count of zero" (§4).
  bool UseStaticArcs = false;
  /// (caller name, callee name) arcs to delete from the analysis before
  /// cycle discovery (gprof -k).
  std::vector<std::pair<std::string, std::string>> DeleteArcs;
  /// Routines whose sampled time is removed from the analysis entirely
  /// (gprof -E): they keep their call counts but contribute no self time,
  /// propagate nothing, and are excluded from the total used for
  /// percentages.  Useful for discounting e.g. an idle loop.
  std::vector<std::string> ExcludeTimeOf;
  /// If nonzero, run the retrospective's cycle-breaking heuristic with
  /// this bound on the number of arcs it may remove.
  unsigned AutoBreakCycleBound = 0;
  /// Worker threads for the parallel pipeline stages (arc symbolization,
  /// histogram sample assignment, level-synchronous time propagation):
  /// 1 runs everything inline on the calling thread, 0 uses one worker
  /// per hardware thread.  The listings produced are byte-identical for
  /// every value — parallelism never changes the output, only the wall
  /// time (see docs/ANALYZER.md for the determinism contract).
  unsigned Threads = 1;
};

/// Analyzes profile data against a symbol table.
class Analyzer {
public:
  explicit Analyzer(SymbolTable Syms, AnalyzerOptions Opts = AnalyzerOptions());

  /// Supplies static call arcs (used only when UseStaticArcs is set).
  void setStaticArcs(std::vector<StaticArc> Arcs) {
    StaticArcs = std::move(Arcs);
  }

  /// Runs the full pipeline over \p Data.
  Expected<ProfileReport> analyze(const ProfileData &Data) const;

  const SymbolTable &symbols() const { return Syms; }
  const AnalyzerOptions &options() const { return Opts; }

private:
  SymbolTable Syms;
  AnalyzerOptions Opts;
  std::vector<StaticArc> StaticArcs;
};

/// Convenience wrapper: builds the symbol table and static arcs from a VM
/// image and analyzes \p Data against it.
Expected<ProfileReport> analyzeImageProfile(const Image &Img,
                                            const ProfileData &Data,
                                            AnalyzerOptions Opts = {});

} // namespace gprof

#endif // GPROF_CORE_ANALYZER_H
