//===- core/Report.cpp -----------------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "core/Report.h"

using namespace gprof;

std::vector<const ReportArc *> ProfileReport::arcsInto(uint32_t Fn) const {
  std::vector<const ReportArc *> Result;
  for (const ReportArc &A : Arcs)
    if (A.Child == Fn)
      Result.push_back(&A);
  return Result;
}

std::vector<const ReportArc *> ProfileReport::arcsOutOf(uint32_t Fn) const {
  std::vector<const ReportArc *> Result;
  for (const ReportArc &A : Arcs)
    if (A.Parent == Fn)
      Result.push_back(&A);
  return Result;
}
