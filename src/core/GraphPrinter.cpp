//===- core/GraphPrinter.cpp -----------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "core/GraphPrinter.h"

#include "support/Format.h"

#include <algorithm>
#include <set>

using namespace gprof;

namespace {

constexpr const char *Separator =
    "-----------------------------------------------\n";

/// "name <cycle N> [idx]" reference for a routine.
std::string nameRef(const ProfileReport &Report, uint32_t Fn) {
  const FunctionEntry &F = Report.Functions[Fn];
  std::string S = F.Name;
  if (F.CycleNumber != 0)
    S += format(" <cycle%u>", F.CycleNumber);
  S += format(" [%u]", F.ListingIndex);
  return S;
}

/// The "called" field of a parent/child row: count and the callee's total.
std::string calledFraction(uint64_t Count, uint64_t Total) {
  return format("%llu/%llu", static_cast<unsigned long long>(Count),
                static_cast<unsigned long long>(Total));
}

/// One non-primary row.
std::string arcRow(const std::string &SelfCol, const std::string &DescCol,
                   const std::string &CalledCol, const std::string &Name) {
  return format("%6s %8s %11s %13s     %s\n", "", SelfCol.c_str(),
                DescCol.c_str(), CalledCol.c_str(), Name.c_str());
}

/// The primary row of an entry.
std::string primaryRow(uint32_t ListingIndex, double Percent, double Self,
                       double Desc, const std::string &CalledCol,
                       const std::string &Name) {
  return format("%-6s %8s %11s %13s %s [%u]\n",
                format("[%u]", ListingIndex).c_str(),
                format("%5.1f %8.2f", Percent, Self).c_str(),
                format("%.2f", Desc).c_str(), CalledCol.c_str(),
                Name.c_str(), ListingIndex);
}

/// Denominator for an arc into \p Child: the whole cycle's external calls
/// when the child is in a cycle, else the child's own calls.
uint64_t calleeTotalCalls(const ProfileReport &Report, uint32_t Child) {
  const FunctionEntry &F = Report.Functions[Child];
  if (F.CycleNumber != 0)
    return Report.Cycles[F.CycleNumber - 1].ExternalCalls;
  return F.Calls;
}

void printFunctionEntry(const ProfileReport &Report, uint32_t Fn,
                        std::string &Out) {
  const FunctionEntry &F = Report.Functions[Fn];

  // Parents block, least significant first so the heaviest parent sits
  // next to the primary line.
  std::vector<const ReportArc *> Parents = Report.arcsInto(Fn);
  std::erase_if(Parents, [](const ReportArc *A) { return A->SelfArc; });
  std::sort(Parents.begin(), Parents.end(),
            [](const ReportArc *A, const ReportArc *B) {
              double TA = A->PropSelf + A->PropChild;
              double TB = B->PropSelf + B->PropChild;
              if (TA != TB)
                return TA < TB;
              return A->Count < B->Count;
            });

  if (F.SpontaneousCalls != 0)
    Out += arcRow("", "",
                  calledFraction(F.SpontaneousCalls,
                                 calleeTotalCalls(Report, Fn)),
                  "<spontaneous>");
  else if (Parents.empty() && F.Calls == 0)
    Out += arcRow("", "", "", "<never called>");

  for (const ReportArc *A : Parents) {
    if (A->WithinCycle) {
      // Calls among cycle members are listed but carry no time (§5.2).
      Out += arcRow("", "",
                    format("%llu", static_cast<unsigned long long>(A->Count)),
                    nameRef(Report, A->Parent));
      continue;
    }
    Out += arcRow(format("%.2f", A->PropSelf),
                  format("%.2f", A->PropChild),
                  calledFraction(A->Count, calleeTotalCalls(Report, Fn)),
                  nameRef(Report, A->Parent));
  }

  // Primary line.  Self-recursive calls appear as "+n" and "do not affect
  // the propagation of time".
  std::string Called =
      format("%llu", static_cast<unsigned long long>(F.Calls));
  if (F.SelfCalls != 0)
    Called += format("+%llu", static_cast<unsigned long long>(F.SelfCalls));
  std::string Name = F.Name;
  if (F.CycleNumber != 0)
    Name += format(" <cycle%u>", F.CycleNumber);
  Out += primaryRow(F.ListingIndex,
                    Report.TotalTime > 0.0
                        ? 100.0 * F.totalTime() / Report.TotalTime
                        : 0.0,
                    F.SelfTime, F.ChildTime, Called, Name);

  // Children block, most significant first.
  std::vector<const ReportArc *> Children = Report.arcsOutOf(Fn);
  std::erase_if(Children, [](const ReportArc *A) { return A->SelfArc; });
  std::sort(Children.begin(), Children.end(),
            [](const ReportArc *A, const ReportArc *B) {
              double TA = A->PropSelf + A->PropChild;
              double TB = B->PropSelf + B->PropChild;
              if (TA != TB)
                return TA > TB;
              return A->Count > B->Count;
            });
  for (const ReportArc *A : Children) {
    if (A->WithinCycle) {
      Out += arcRow("", "",
                    format("%llu", static_cast<unsigned long long>(A->Count)),
                    nameRef(Report, A->Child));
      continue;
    }
    Out += arcRow(format("%.2f", A->PropSelf),
                  format("%.2f", A->PropChild),
                  calledFraction(A->Count, calleeTotalCalls(Report, A->Child)),
                  nameRef(Report, A->Child));
  }
  Out += Separator;
}

void printCycleEntry(const ProfileReport &Report, uint32_t CycleIdx,
                     std::string &Out) {
  const CycleEntry &C = Report.Cycles[CycleIdx];
  std::set<uint32_t> MemberSet(C.Members.begin(), C.Members.end());

  // Parents: arcs into any member from outside the cycle.
  std::vector<const ReportArc *> Parents;
  uint64_t SpontaneousIntoCycle = 0;
  for (uint32_t M : C.Members)
    SpontaneousIntoCycle += Report.Functions[M].SpontaneousCalls;
  for (const ReportArc &A : Report.Arcs) {
    if (A.SelfArc || A.WithinCycle)
      continue;
    if (MemberSet.count(A.Child) && !MemberSet.count(A.Parent))
      Parents.push_back(&A);
  }
  std::sort(Parents.begin(), Parents.end(),
            [](const ReportArc *A, const ReportArc *B) {
              double TA = A->PropSelf + A->PropChild;
              double TB = B->PropSelf + B->PropChild;
              if (TA != TB)
                return TA < TB;
              return A->Count < B->Count;
            });

  if (SpontaneousIntoCycle != 0)
    Out += arcRow("", "",
                  calledFraction(SpontaneousIntoCycle, C.ExternalCalls),
                  "<spontaneous>");
  for (const ReportArc *A : Parents)
    Out += arcRow(format("%.2f", A->PropSelf),
                  format("%.2f", A->PropChild),
                  calledFraction(A->Count, C.ExternalCalls),
                  nameRef(Report, A->Parent));

  // Primary line for the cycle as a whole.  Internal calls appear as "+n".
  std::string Called =
      format("%llu", static_cast<unsigned long long>(C.ExternalCalls));
  if (C.InternalCalls != 0)
    Called +=
        format("+%llu", static_cast<unsigned long long>(C.InternalCalls));
  Out += primaryRow(C.ListingIndex,
                    Report.TotalTime > 0.0
                        ? 100.0 * C.totalTime() / Report.TotalTime
                        : 0.0,
                    C.SelfTime, C.ChildTime, Called,
                    format("<cycle %u as a whole>", C.Number));

  // "members of the cycle are listed in place of the children", each with
  // the number of calls it received from within the cycle.
  for (uint32_t M : C.Members) {
    uint64_t CallsFromCycle = 0;
    for (const ReportArc &A : Report.Arcs)
      if (A.WithinCycle && A.Child == M)
        CallsFromCycle += A.Count;
    const FunctionEntry &FM = Report.Functions[M];
    Out += arcRow(format("%.2f", FM.SelfTime),
                  format("%.2f", FM.ChildTime),
                  format("%llu",
                         static_cast<unsigned long long>(CallsFromCycle)),
                  nameRef(Report, M));
  }
  Out += Separator;
}

bool matchesAny(const std::string &Name,
                const std::vector<std::string> &Names) {
  return std::find(Names.begin(), Names.end(), Name) != Names.end();
}

std::string listingHeader(bool Brief) {
  std::string Out;
  if (!Brief)
    Out += "call graph profile:\n"
           "  Each entry shows a routine, its parents (above) and its\n"
           "  children (below).  'self' and 'descendants' on an arc row\n"
           "  are the portions of the child's time propagated along that\n"
           "  arc; 'called/total' is the arc count over the callee's total\n"
           "  calls; '+n' counts self-recursive or intra-cycle calls,\n"
           "  which never propagate time.\n\n";
  Out += "                                    called/total      parents\n";
  Out += "index  %time    self descendants    called+self   name     index\n";
  Out += "                                    called/total      children\n";
  Out += Separator;
  return Out;
}

} // namespace

std::string gprof::printCallGraph(const ProfileReport &Report,
                                  const GraphPrintOptions &Opts) {
  std::string Out;
  // Overflow must be announced here, not only in the flat profile: with
  // --graph-only this is the whole listing, and silently low call counts
  // corrupt every propagated-time fraction below.
  if (Report.ArcTableOverflowed)
    Out += "warning: the arc table overflowed during collection; call "
           "counts are lower bounds\n\n";
  Out += listingHeader(Opts.Brief);

  for (const ListingEntry &E : Report.GraphOrder) {
    if (E.IsCycle) {
      const CycleEntry &C = Report.Cycles[E.Index];
      if (!Opts.OnlyFunctions.empty()) {
        bool AnyMember = false;
        for (uint32_t M : C.Members)
          AnyMember |= matchesAny(Report.Functions[M].Name,
                                  Opts.OnlyFunctions);
        if (!AnyMember)
          continue;
      }
      printCycleEntry(Report, E.Index, Out);
      continue;
    }
    const std::string &Name = Report.Functions[E.Index].Name;
    if (!Opts.OnlyFunctions.empty() &&
        !matchesAny(Name, Opts.OnlyFunctions))
      continue;
    if (matchesAny(Name, Opts.ExcludeFunctions))
      continue;
    printFunctionEntry(Report, E.Index, Out);
  }

  if (Opts.PrintIndex) {
    // Alphabetical cross-reference, "to help us navigate the output".
    Out += "\nindex by function name:\n";
    std::vector<uint32_t> ByName;
    for (uint32_t I = 0; I != Report.Functions.size(); ++I)
      if (Report.Functions[I].ListingIndex != 0)
        ByName.push_back(I);
    std::sort(ByName.begin(), ByName.end(),
              [&](uint32_t A, uint32_t B) {
                return Report.Functions[A].Name < Report.Functions[B].Name;
              });
    for (uint32_t I : ByName)
      Out += format("  [%u] %s\n", Report.Functions[I].ListingIndex,
                    Report.Functions[I].Name.c_str());
  }
  return Out;
}

std::string gprof::printCallGraphEntry(const ProfileReport &Report,
                                       const std::string &Name) {
  uint32_t Fn = Report.findFunction(Name);
  if (Fn == ~0u)
    return std::string();
  std::string Out = listingHeader(/*Brief=*/true);
  printFunctionEntry(Report, Fn, Out);
  return Out;
}
