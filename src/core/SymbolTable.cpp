//===- core/SymbolTable.cpp ------------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "core/SymbolTable.h"

#include "support/Format.h"
#include "support/Telemetry.h"

#include <algorithm>

using namespace gprof;

namespace {

/// A slot denser than this abandons the direct map: the bounded scan
/// after the one-load floor lookup must stay short, or the map is worse
/// than the binary search it replaces.
constexpr uint32_t MaxSlotPopulation = 64;

} // namespace

SymbolTable::SymbolTable(const SymbolTable &Other)
    : Symbols(Other.Symbols), Finalized(Other.Finalized),
      Starts(Other.Starts), Ends(Other.Ends), Direct(Other.Direct),
      DirectShift(Other.DirectShift) {
  // The name index views the arena, so it cannot be copied structurally;
  // re-intern from the (already address-sorted) symbols.
  for (uint32_t I = 0; I != Symbols.size(); ++I) {
    const std::string &Name = Symbols[I].Name;
    NameIndex.try_emplace(
        std::string_view(NameArena.internBytes(Name.data(), Name.size()),
                         Name.size()),
        I);
  }
}

SymbolTable &SymbolTable::operator=(const SymbolTable &Other) {
  if (this != &Other)
    *this = SymbolTable(Other);
  return *this;
}

void SymbolTable::addSymbol(std::string Name, Address Addr, uint64_t Size) {
  assert(!Finalized && "adding symbols after finalize()");
  Symbols.push_back({std::move(Name), Addr, Size});
}

void SymbolTable::buildResolver() {
  const size_t N = Symbols.size();
  Starts.resize(N);
  Ends.resize(N);
  for (size_t I = 0; I != N; ++I) {
    Starts[I] = Symbols[I].Addr;
    Ends[I] = Symbols[I].Addr + Symbols[I].Size;
  }

  NameIndex.clear();
  NameIndex.reserve(N);
  for (uint32_t I = 0; I != N; ++I) {
    const std::string &Name = Symbols[I].Name;
    // try_emplace keeps the first index, preserving the historical
    // "first symbol in address order" answer for duplicate names.
    NameIndex.try_emplace(
        std::string_view(NameArena.internBytes(Name.data(), Name.size()),
                         Name.size()),
        I);
  }

  // Direct map: budget ~4 slots per symbol, shift chosen to fit.  One
  // walk fills every slot with the floor index at its first address; a
  // second tally abandons the map if any slot is too crowded (a sparse
  // table with one far-away outlier would otherwise degrade lookups to a
  // long linear scan).
  Direct.clear();
  DirectShift = 0;
  if (N >= 2) {
    const Address Base = Starts[0];
    const Address Span = Starts[N - 1] - Base;
    const uint64_t Budget = std::max<uint64_t>(1024, 4 * N);
    unsigned Shift = 0;
    while (Shift < 63 && (Span >> Shift) >= Budget)
      ++Shift;
    const size_t Slots = static_cast<size_t>((Span >> Shift) + 1);
    std::vector<uint32_t> Population(Slots, 0);
    bool TooDense = false;
    for (size_t I = 0; I != N && !TooDense; ++I)
      TooDense = ++Population[(Starts[I] - Base) >> Shift] > MaxSlotPopulation;
    if (!TooDense) {
      Direct.resize(Slots);
      DirectShift = Shift;
      uint32_t I = 0;
      for (size_t S = 0; S != Slots; ++S) {
        const Address SlotStart = Base + (static_cast<Address>(S) << Shift);
        while (I + 1 < N && Starts[I + 1] <= SlotStart)
          ++I;
        Direct[S] = I;
      }
    }
  }

  // Data-derived tallies (thread-count invariant by construction).
  telemetry::counter("symtab.finalize.symbols").add(N);
  telemetry::counter("symtab.finalize.direct_slots").add(Direct.size());
  telemetry::counter("symtab.finalize.name_bytes")
      .add(NameArena.bytesAllocated());
}

Error SymbolTable::finalize() {
  std::sort(Symbols.begin(), Symbols.end(),
            [](const Symbol &A, const Symbol &B) { return A.Addr < B.Addr; });
  for (size_t I = 1; I < Symbols.size(); ++I) {
    const Symbol &Prev = Symbols[I - 1];
    const Symbol &Cur = Symbols[I];
    if (Prev.Addr + Prev.Size > Cur.Addr)
      return Error::failure(
          format("symbols '%s' and '%s' overlap", Prev.Name.c_str(),
                 Cur.Name.c_str()));
  }
  buildResolver();
  Finalized = true;
  return Error::success();
}

SymbolTable SymbolTable::fromImage(const Image &Img) {
  SymbolTable Table;
  for (const FuncInfo &F : Img.Functions)
    Table.addSymbol(F.Name, F.Addr, F.CodeSize);
  cantFail(Table.finalize());
  return Table;
}

uint32_t SymbolTable::findAt(Address Pc) const {
  uint32_t I = findContaining(Pc);
  if (I != NoSymbol && Starts[I] == Pc)
    return I;
  return NoSymbol;
}

uint32_t SymbolTable::findFirstAtOrAfter(Address Pc) const {
  assert(Finalized && "lookup before finalize()");
  auto It = std::lower_bound(Starts.begin(), Starts.end(), Pc);
  if (It == Starts.end())
    return NoSymbol;
  return static_cast<uint32_t>(It - Starts.begin());
}

uint32_t SymbolTable::findByName(const std::string &Name) const {
  auto It = NameIndex.find(std::string_view(Name));
  return It == NameIndex.end() ? NoSymbol : It->second;
}

Address SymbolTable::lowPc() const {
  return Symbols.empty() ? 0 : Symbols.front().Addr;
}

Address SymbolTable::highPc() const {
  if (Symbols.empty())
    return 0;
  return Symbols.back().Addr + Symbols.back().Size;
}
