//===- core/SymbolTable.cpp ------------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "core/SymbolTable.h"

#include "support/Format.h"

#include <algorithm>

using namespace gprof;

void SymbolTable::addSymbol(std::string Name, Address Addr, uint64_t Size) {
  assert(!Finalized && "adding symbols after finalize()");
  Symbols.push_back({std::move(Name), Addr, Size});
}

Error SymbolTable::finalize() {
  std::sort(Symbols.begin(), Symbols.end(),
            [](const Symbol &A, const Symbol &B) { return A.Addr < B.Addr; });
  for (size_t I = 1; I < Symbols.size(); ++I) {
    const Symbol &Prev = Symbols[I - 1];
    const Symbol &Cur = Symbols[I];
    if (Prev.Addr + Prev.Size > Cur.Addr)
      return Error::failure(
          format("symbols '%s' and '%s' overlap", Prev.Name.c_str(),
                 Cur.Name.c_str()));
  }
  Finalized = true;
  return Error::success();
}

SymbolTable SymbolTable::fromImage(const Image &Img) {
  SymbolTable Table;
  for (const FuncInfo &F : Img.Functions)
    Table.addSymbol(F.Name, F.Addr, F.CodeSize);
  cantFail(Table.finalize());
  return Table;
}

uint32_t SymbolTable::findContaining(Address Pc) const {
  assert(Finalized && "lookup before finalize()");
  auto It = std::upper_bound(
      Symbols.begin(), Symbols.end(), Pc,
      [](Address A, const Symbol &S) { return A < S.Addr; });
  if (It == Symbols.begin())
    return NoSymbol;
  --It;
  if (Pc < It->Addr + It->Size)
    return static_cast<uint32_t>(It - Symbols.begin());
  return NoSymbol;
}

uint32_t SymbolTable::findAt(Address Pc) const {
  uint32_t I = findContaining(Pc);
  if (I != NoSymbol && Symbols[I].Addr == Pc)
    return I;
  return NoSymbol;
}

uint32_t SymbolTable::findFirstAtOrAfter(Address Pc) const {
  assert(Finalized && "lookup before finalize()");
  auto It = std::lower_bound(
      Symbols.begin(), Symbols.end(), Pc,
      [](const Symbol &S, Address A) { return S.Addr < A; });
  if (It == Symbols.end())
    return NoSymbol;
  return static_cast<uint32_t>(It - Symbols.begin());
}

uint32_t SymbolTable::findByName(const std::string &Name) const {
  for (uint32_t I = 0; I != Symbols.size(); ++I)
    if (Symbols[I].Name == Name)
      return I;
  return NoSymbol;
}

Address SymbolTable::lowPc() const {
  return Symbols.empty() ? 0 : Symbols.front().Addr;
}

Address SymbolTable::highPc() const {
  if (Symbols.empty())
    return 0;
  return Symbols.back().Addr + Symbols.back().Size;
}
