//===- core/ContextTree.h - Exact per-context times from a recorded CCT ---===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analyzer side of the calling-context tree: load the canonical node
/// vector a profile carries (ProfileData::Contexts), symbolize each
/// context, and compute *exact* inclusive times by bottom-up accumulation
/// — no propagation, no approximation.  Collapsing those exact times per
/// routine yields the ground truth the paper's §6 formula
///
///   T_r = S_r + sum over r CALLS e of T_e * C^r_e / C_e
///
/// can be measured against: the formula spreads each callee's time over
/// its call sites in proportion to call counts, which is only right when
/// "all calls to a routine cost the same".  The propagation-error report
/// tabulates |propagated − exact| per routine, a result the 1982 paper
/// could not produce.
///
/// Also renders the `gprof --contexts` listing: the top contexts of each
/// routine as root-to-leaf call chains with exact per-context times.
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_CORE_CONTEXTTREE_H
#define GPROF_CORE_CONTEXTTREE_H

#include "core/Report.h"
#include "core/SymbolTable.h"
#include "gmon/ProfileData.h"
#include "support/Error.h"

#include <string>
#include <vector>

namespace gprof {

/// One analyzed context: a CctNode plus its symbolization and the exact
/// inclusive tick count of its subtree.
struct ContextEntry {
  uint32_t Parent = CctRootParent;
  Address FromPc = 0;
  Address SelfPc = 0;
  uint64_t Calls = 0;
  uint64_t Ticks = 0;          ///< Samples while this context was innermost.
  uint64_t InclusiveTicks = 0; ///< Ticks of this context and all below it.
  uint32_t Routine = NoSymbol; ///< Symbol index of the routine run here.
  uint32_t Depth = 0;          ///< Root contexts have depth 0.
  /// True when no proper ancestor runs the same routine.  Exact
  /// per-routine total time sums InclusiveTicks over maximal contexts
  /// only, so recursion never double-counts a tick.
  bool Maximal = true;
};

/// The analyzed context tree of one profile.  Borrows the symbol table;
/// the caller keeps it alive (as with Analyzer).
class ContextTree {
public:
  /// Builds from \p Data.Contexts against \p Syms (which must be
  /// finalized).  Fails on a structurally invalid vector (a node whose
  /// parent does not precede it).  An empty Contexts yields an empty
  /// tree, distinguishable via empty().
  static Expected<ContextTree> build(const ProfileData &Data,
                                     const SymbolTable &Syms);

  bool empty() const { return Entries.empty(); }
  size_t size() const { return Entries.size(); }
  const ContextEntry &node(size_t I) const { return Entries[I]; }
  const SymbolTable &symbols() const { return *Syms; }
  uint64_t ticksPerSecond() const { return Hz; }
  bool overflowed() const { return Overflowed; }

  /// Exact self / inclusive (recursion-deduplicated) ticks of \p Routine
  /// summed over its contexts; 0 for a routine with none.
  uint64_t exactSelfTicks(uint32_t Routine) const;
  uint64_t exactTotalTicks(uint32_t Routine) const;
  /// Samples attributed to contexts whose SelfPc symbolizes to no routine.
  uint64_t unattributedTicks() const { return Unattributed; }

  /// Symbol indices of every routine with at least one context, in
  /// symbol-table (address) order.
  std::vector<uint32_t> routines() const;
  /// Indices of \p Routine's contexts, by decreasing inclusive ticks
  /// (ties by preorder position — deterministic).
  std::vector<uint32_t> contextsOf(uint32_t Routine) const;

  /// Renders context \p I as a root-to-leaf call chain, e.g.
  /// "main > fast > work".  Unsymbolized frames render as "<pc 0x...>".
  std::string contextName(size_t I) const;

  double ticksToSeconds(uint64_t Ticks) const {
    return Hz == 0 ? 0.0
                   : static_cast<double>(Ticks) / static_cast<double>(Hz);
  }

private:
  std::vector<ContextEntry> Entries;
  const SymbolTable *Syms = nullptr;
  uint64_t Hz = 60;
  bool Overflowed = false;
  /// Exact tick totals indexed by symbol, filled at build time.
  std::vector<uint64_t> SelfTicks;
  std::vector<uint64_t> TotalTicks;
  uint64_t Unattributed = 0;
};

/// `gprof --contexts` rendering controls.
struct ContextPrintOptions {
  /// Contexts listed per routine (the rest are summarized).
  unsigned TopContexts = 5;
  /// When nonempty, list only these routines (--context-filter NAME,
  /// repeatable).
  std::vector<std::string> FilterRoutines;
};

/// Renders the calling-context listing: per routine (by decreasing exact
/// total time, ties by name), its exact self/total seconds and top
/// contexts as call chains with per-context calls and times.
std::string printContexts(const ContextTree &Tree,
                          const ContextPrintOptions &Opts = {});

/// One routine's row of the §6 propagation-error report.
struct PropagationErrorRow {
  std::string Name;
  uint64_t Contexts = 0;      ///< Contexts ending in this routine.
  double PropagatedSecs = 0;  ///< totalTime() from §6 propagation.
  double ExactSecs = 0;       ///< Exact inclusive time from the CCT.
  double AbsError = 0;        ///< |PropagatedSecs - ExactSecs|.
  double RelError = 0;        ///< AbsError / ExactSecs (0 when exact is 0).
  uint32_t CycleNumber = 0;   ///< Nonzero: propagated time is cycle-shared.
};

/// The §6 propagation-error report over one profile.
struct PropagationErrorReport {
  std::vector<PropagationErrorRow> Rows; ///< By decreasing AbsError.
  double MaxAbsError = 0;
  double MaxRelError = 0;
  double TotalSecs = 0; ///< The report's propagated total time.
};

/// Compares the analyzer's propagated per-routine times against the
/// tree's exact inclusive times.  \p Report must come from an Analyzer
/// over the same symbol table \p Tree was built against (FunctionEntry::
/// SymbolIndex and ContextEntry::Routine must agree).
PropagationErrorReport propagationError(const ProfileReport &Report,
                                        const ContextTree &Tree);

/// Renders the report as the EXPERIMENTS.md-style text table.
std::string printPropagationError(const PropagationErrorReport &R);

/// Renders the report as machine-readable JSON; \p Program labels it.
std::string propagationErrorJson(const PropagationErrorReport &R,
                                 const std::string &Program);

/// Collapses a context-node vector per (FromPc, SelfPc): the arc table
/// the tree implies, in canonical arc order.  The CCT metamorphic
/// invariant (tests/metamorphic_test.cpp) requires this to equal the arc
/// table the arc recorders produced, byte-identically.
std::vector<ArcRecord> collapseContextsToArcs(const std::vector<CctNode> &Nodes);

} // namespace gprof

#endif // GPROF_CORE_CONTEXTTREE_H
