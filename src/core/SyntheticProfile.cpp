//===- core/SyntheticProfile.cpp -------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "core/SyntheticProfile.h"

#include <cmath>

using namespace gprof;

SyntheticProfileBuilder::SyntheticProfileBuilder(uint64_t TicksPerSecond,
                                                 Address Base,
                                                 uint64_t FuncSize)
    : TicksPerSecond(TicksPerSecond), Base(Base), FuncSize(FuncSize) {}

uint32_t SyntheticProfileBuilder::addFunction(const std::string &Name) {
  Names.push_back(Name);
  return static_cast<uint32_t>(Names.size() - 1);
}

void SyntheticProfileBuilder::addCall(uint32_t From, uint32_t To,
                                      uint64_t Count, uint32_t Site) {
  Data.addArc(siteOf(From, Site), entryOf(To), Count);
}

void SyntheticProfileBuilder::addSpontaneous(uint32_t Fn, uint64_t Count) {
  Data.addArc(0, entryOf(Fn), Count);
}

void SyntheticProfileBuilder::addStaticArc(uint32_t From, uint32_t To,
                                           uint32_t Site) {
  StaticArcs.push_back({siteOf(From, Site), entryOf(To)});
}

void SyntheticProfileBuilder::setSelfSeconds(uint32_t Fn, double Seconds) {
  SelfSeconds[Fn] = Seconds;
}

SyntheticProfileBuilder::Result SyntheticProfileBuilder::build() const {
  Result R;
  for (uint32_t I = 0; I != Names.size(); ++I)
    R.Syms.addSymbol(Names[I], entryOf(I), FuncSize);
  cantFail(R.Syms.finalize());

  R.Data = Data;
  R.Data.TicksPerSecond = TicksPerSecond;
  Histogram H(Base, Base + Names.size() * FuncSize, 1);
  for (const auto &[Fn, Seconds] : SelfSeconds) {
    auto Samples = static_cast<uint64_t>(
        std::llround(Seconds * static_cast<double>(TicksPerSecond)));
    for (uint64_t S = 0; S != Samples; ++S)
      H.recordPc(entryOf(Fn) + FuncSize / 2);
  }
  R.Data.Hist = std::move(H);
  R.StaticArcs = StaticArcs;
  return R;
}
