//===- core/SyntheticProfile.h - Hand-built profiles for experiments ------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds symbol tables and profile data directly — no VM run — so that
/// benches and tests can pin exact call counts and self times.  This is
/// how the Figure 4 bench reconstructs the paper's EXAMPLE entry with the
/// published numbers.
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_CORE_SYNTHETICPROFILE_H
#define GPROF_CORE_SYNTHETICPROFILE_H

#include "core/SymbolTable.h"
#include "gmon/ProfileData.h"
#include "vm/StaticCallScanner.h"

#include <map>
#include <string>
#include <vector>

namespace gprof {

/// Incrementally describes a profile; build() realizes it.
class SyntheticProfileBuilder {
public:
  /// Routines are laid out \p FuncSize addresses apart starting at
  /// \p Base; self times become histogram samples at \p TicksPerSecond.
  explicit SyntheticProfileBuilder(uint64_t TicksPerSecond = 100,
                                   Address Base = 0x1000,
                                   uint64_t FuncSize = 100);

  /// Adds a routine; returns its index.
  uint32_t addFunction(const std::string &Name);

  /// Entry address of routine \p Fn.
  Address entryOf(uint32_t Fn) const { return Base + Fn * FuncSize; }
  /// A distinct call-site address inside \p Fn.
  Address siteOf(uint32_t Fn, uint32_t Site = 0) const {
    return entryOf(Fn) + 10 + Site;
  }

  /// Records \p Count dynamic calls from a call site in \p From to \p To.
  void addCall(uint32_t From, uint32_t To, uint64_t Count,
               uint32_t Site = 0);

  /// Records \p Count spontaneous activations of \p Fn.
  void addSpontaneous(uint32_t Fn, uint64_t Count = 1);

  /// Declares a statically-visible (count zero) arc From -> To.
  void addStaticArc(uint32_t From, uint32_t To, uint32_t Site = 0);

  /// Gives \p Fn exactly \p Seconds of self time (must quantize to whole
  /// samples at the configured rate).
  void setSelfSeconds(uint32_t Fn, double Seconds);

  /// The realized inputs for an Analyzer.
  struct Result {
    SymbolTable Syms;
    ProfileData Data;
    std::vector<StaticArc> StaticArcs;
  };
  Result build() const;

private:
  uint64_t TicksPerSecond;
  Address Base;
  uint64_t FuncSize;
  std::vector<std::string> Names;
  ProfileData Data;
  std::vector<StaticArc> StaticArcs;
  std::map<uint32_t, double> SelfSeconds;
};

} // namespace gprof

#endif // GPROF_CORE_SYNTHETICPROFILE_H
