//===- core/FlatPrinter.h - The flat profile listing (paper §5.1) ---------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#ifndef GPROF_CORE_FLATPRINTER_H
#define GPROF_CORE_FLATPRINTER_H

#include "core/Report.h"

#include <string>

namespace gprof {

/// Flat profile rendering controls.
struct FlatPrintOptions {
  /// Also list zero-time zero-call routines as rows (gprof -z); otherwise
  /// they are summarized in the never-called list.
  bool ShowZeroUsage = false;
  /// Suppress the explanatory blurb (gprof -b).
  bool Brief = false;
};

/// Renders the flat profile: "a list of all the routines ... with the
/// count of the number of times they are called and the number of seconds
/// of execution time for which they are themselves accountable ... in
/// decreasing order of execution time", followed by the routines never
/// called (paper §5.1).
std::string printFlatProfile(const ProfileReport &Report,
                             const FlatPrintOptions &Opts = {});

} // namespace gprof

#endif // GPROF_CORE_FLATPRINTER_H
