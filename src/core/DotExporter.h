//===- core/DotExporter.h - Graphviz export of the profiled call graph ----===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Paper §5.2: "Ideally, we would like to print the call graph of the
/// program, but we are limited by the two-dimensional nature of our
/// output devices."  Output devices improved; this module renders the
/// analyzed call graph as Graphviz DOT: one node per routine annotated
/// with self/total time and call counts, cycles grouped into clusters,
/// dynamic arcs weighted by traversal count, static arcs dashed, and
/// self-recursion drawn as loops.
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_CORE_DOTEXPORTER_H
#define GPROF_CORE_DOTEXPORTER_H

#include "core/Report.h"

#include <string>

namespace gprof {

/// DOT rendering controls.
struct DotOptions {
  /// Routines whose total time is below this fraction of the program
  /// total are omitted (with their arcs) to keep large graphs readable —
  /// the retrospective's "show only hot functions" filter.  0 keeps
  /// everything.
  double MinTotalFraction = 0.0;
  /// Include never-executed routines reachable only through static arcs.
  bool IncludeStatic = true;
};

/// Renders \p Report as a DOT digraph.
std::string exportDot(const ProfileReport &Report,
                      const DotOptions &Opts = DotOptions());

} // namespace gprof

#endif // GPROF_CORE_DOTEXPORTER_H
