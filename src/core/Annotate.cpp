//===- core/Annotate.cpp ----------------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "core/Annotate.h"

#include "support/Format.h"

using namespace gprof;

std::vector<AnnotatedLine>
gprof::annotateSource(const Image &Img, const std::string &SourceText,
                      const ProfileData &Data) {
  std::vector<AnnotatedLine> Lines;
  {
    std::vector<std::string> Raw = splitString(SourceText, '\n');
    // A trailing newline produces one empty trailing field; drop it.
    if (!Raw.empty() && Raw.back().empty())
      Raw.pop_back();
    Lines.reserve(Raw.size());
    for (uint32_t I = 0; I != Raw.size(); ++I)
      Lines.push_back({I + 1, std::move(Raw[I]), 0.0, 0});
  }

  auto LineSlot = [&Lines](uint32_t Line) -> AnnotatedLine * {
    if (Line == 0 || Line > Lines.size())
      return nullptr;
    return &Lines[Line - 1];
  };

  // Samples -> per-line self time.
  if (!Data.Hist.empty() && Data.TicksPerSecond != 0) {
    const double SecPerSample =
        1.0 / static_cast<double>(Data.TicksPerSecond);
    for (size_t B = 0; B != Data.Hist.numBuckets(); ++B) {
      uint64_t Samples = Data.Hist.bucketCount(B);
      if (Samples == 0)
        continue;
      // Attribute the bucket to the line of its first address; fine-grain
      // histograms (bucket size 1) make this exact.
      if (AnnotatedLine *L = LineSlot(Img.lineForPc(Data.Hist.bucketStart(B))))
        L->SelfTime += static_cast<double>(Samples) * SecPerSample;
    }
  }

  // Arcs -> per-call-site line counts.
  for (const ArcRecord &R : Data.Arcs)
    if (AnnotatedLine *L = LineSlot(Img.lineForPc(R.FromPc)))
      L->Calls += R.Count;

  return Lines;
}

std::string
gprof::printAnnotatedSource(const std::vector<AnnotatedLine> &Lines) {
  std::string Out = "   seconds      calls  line  source\n";
  for (const AnnotatedLine &L : Lines) {
    std::string Time =
        L.SelfTime > 0.0 ? format("%.2f", L.SelfTime) : std::string();
    std::string Calls =
        L.Calls > 0
            ? format("%llu", static_cast<unsigned long long>(L.Calls))
            : std::string();
    Out += format("%10s %10s  %4u  %s\n", Time.c_str(), Calls.c_str(),
                  L.Line, L.Text.c_str());
  }
  return Out;
}
