//===- core/FlatPrinter.cpp ------------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "core/FlatPrinter.h"

#include "support/Format.h"

using namespace gprof;

std::string gprof::printFlatProfile(const ProfileReport &Report,
                                    const FlatPrintOptions &Opts) {
  std::string Out;
  if (!Opts.Brief) {
    Out += "flat profile:\n\n";
    Out += format("Each sample counts for %g seconds; total %.2f seconds "
                  "attributed (%u run%s).\n\n",
                  1.0 / static_cast<double>(Report.TicksPerSecond),
                  Report.TotalTime, Report.RunCount,
                  Report.RunCount == 1 ? "" : "s");
  }
  if (Report.ArcTableOverflowed)
    Out += "warning: the arc table overflowed during collection; call "
           "counts are lower bounds\n\n";

  Out += "  %   cumulative   self              self     total\n";
  Out += " time   seconds   seconds    calls  ms/call  ms/call  name\n";

  double Cumulative = 0.0;
  for (uint32_t I : Report.FlatOrder) {
    const FunctionEntry &F = Report.Functions[I];
    if (F.isUnused() && !Opts.ShowZeroUsage)
      continue;
    Cumulative += F.SelfTime;

    std::string Calls = "";
    std::string SelfPerCall = "";
    std::string TotalPerCall = "";
    if (F.totalCalls() != 0) {
      Calls = format("%llu",
                     static_cast<unsigned long long>(F.totalCalls()));
      double N = static_cast<double>(F.totalCalls());
      SelfPerCall = format("%.2f", F.SelfTime * 1000.0 / N);
      TotalPerCall = format("%.2f", F.totalTime() * 1000.0 / N);
    }

    Out += format("%5s %10.2f %9.2f %8s %8s %8s  %s\n",
                  formatPercent(F.SelfTime, Report.TotalTime).c_str(),
                  Cumulative, F.SelfTime, Calls.c_str(),
                  SelfPerCall.c_str(), TotalPerCall.c_str(),
                  F.Name.c_str());
  }

  if (Report.UnattributedTime > 0.0)
    Out += format("\n%.2f seconds sampled outside every known routine\n",
                  Report.UnattributedTime);
  if (Report.ExcludedTime > 0.0)
    Out += format("\n%.2f seconds excluded from the analysis (-E)\n",
                  Report.ExcludedTime);

  if (!Report.UnusedFunctions.empty() && !Opts.ShowZeroUsage) {
    Out += "\nroutines never called in this execution:\n";
    for (uint32_t I : Report.UnusedFunctions)
      Out += format("    %s\n", Report.Functions[I].Name.c_str());
  }
  return Out;
}
