//===- core/Annotate.h - Profile data beside the source listing ----------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Paper §2: "Counts are typically presented in tabular form, often in
/// parallel with a listing of the source code.  Timing information could
/// be similarly presented."  Using the image's line table, this module
/// presents both: per-source-line sampled self time (from the PC
/// histogram) and per-source-line call counts (arcs whose call site maps
/// to that line).
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_CORE_ANNOTATE_H
#define GPROF_CORE_ANNOTATE_H

#include "gmon/ProfileData.h"
#include "vm/Image.h"

#include <string>
#include <vector>

namespace gprof {

/// One source line with its profile annotations.
struct AnnotatedLine {
  uint32_t Line = 0; ///< 1-based source line number.
  std::string Text;
  /// Seconds of samples whose PC maps to this line.
  double SelfTime = 0.0;
  /// Traversals of arcs whose call site maps to this line.
  uint64_t Calls = 0;
};

/// Joins \p SourceText (the .tl file contents) with \p Data through
/// \p Img's line table.
std::vector<AnnotatedLine> annotateSource(const Image &Img,
                                          const std::string &SourceText,
                                          const ProfileData &Data);

/// Renders the annotated listing: time and call columns beside each line
/// (blank when zero).
std::string printAnnotatedSource(const std::vector<AnnotatedLine> &Lines);

} // namespace gprof

#endif // GPROF_CORE_ANNOTATE_H
