//===- core/DotExporter.cpp ------------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "core/DotExporter.h"

#include "support/Format.h"

#include <cmath>
#include <map>
#include <vector>

using namespace gprof;

namespace {

/// Escapes a string for a DOT double-quoted id.
std::string dotEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  return Out;
}

} // namespace

std::string gprof::exportDot(const ProfileReport &Report,
                             const DotOptions &Opts) {
  std::string Out = "digraph callgraph {\n"
                    "  rankdir=TB;\n"
                    "  node [shape=box, fontname=\"Helvetica\"];\n";

  // Decide which routines appear.
  std::vector<bool> Included(Report.Functions.size(), false);
  for (uint32_t I = 0; I != Report.Functions.size(); ++I) {
    const FunctionEntry &F = Report.Functions[I];
    if (F.ListingIndex == 0)
      continue; // Unused and unreferenced.
    bool StaticOnly = F.totalCalls() == 0 && F.SelfTime == 0.0;
    if (StaticOnly) {
      Included[I] = Opts.IncludeStatic;
      continue;
    }
    // The hot-functions filter.
    if (Report.TotalTime > 0.0 && Opts.MinTotalFraction > 0.0 &&
        F.totalTime() < Opts.MinTotalFraction * Report.TotalTime)
      continue;
    Included[I] = true;
  }

  auto NodeLine = [&](uint32_t I) {
    const FunctionEntry &F = Report.Functions[I];
    double Pct = Report.TotalTime > 0.0
                     ? 100.0 * F.totalTime() / Report.TotalTime
                     : 0.0;
    // Hotter routines get a deeper fill.
    int Shade = 100 - static_cast<int>(Pct * 0.6); // 100 (cold) .. 40 (hot)
    return format("    \"%s\" [label=\"%s\\nself %.2fs  total %.2fs "
                  "(%.1f%%)\\ncalled %llu\", style=filled, "
                  "fillcolor=\"gray%d\"];\n",
                  dotEscape(F.Name).c_str(), dotEscape(F.Name).c_str(),
                  F.SelfTime, F.totalTime(), Pct,
                  static_cast<unsigned long long>(F.totalCalls()), Shade);
  };

  // Cycle members live in clusters ("cycles ... treated as a single
  // entity", rendered as one visual box).
  std::map<uint32_t, std::vector<uint32_t>> CycleMembers;
  for (uint32_t I = 0; I != Report.Functions.size(); ++I)
    if (Included[I] && Report.Functions[I].CycleNumber != 0)
      CycleMembers[Report.Functions[I].CycleNumber].push_back(I);

  for (const auto &[Number, Members] : CycleMembers) {
    Out += format("  subgraph cluster_cycle%u {\n"
                  "    label=\"cycle %u\";\n    color=red;\n",
                  Number, Number);
    for (uint32_t I : Members)
      Out += NodeLine(I);
    Out += "  }\n";
  }
  for (uint32_t I = 0; I != Report.Functions.size(); ++I)
    if (Included[I] && Report.Functions[I].CycleNumber == 0)
      Out += NodeLine(I);

  // Arcs.  Pen width grows with the log of the traversal count; static
  // arcs are dashed with no weight.
  for (const ReportArc &A : Report.Arcs) {
    if (!Included[A.Parent] || !Included[A.Child])
      continue;
    const std::string From = dotEscape(Report.Functions[A.Parent].Name);
    const std::string To = dotEscape(Report.Functions[A.Child].Name);
    if (A.Static) {
      Out += format("  \"%s\" -> \"%s\" [style=dashed, label=\"0\"];\n",
                    From.c_str(), To.c_str());
      continue;
    }
    double Width =
        1.0 + std::log10(static_cast<double>(A.Count) + 1.0);
    std::string Attrs = format("penwidth=%.1f, label=\"%llu\"", Width,
                               static_cast<unsigned long long>(A.Count));
    if (A.SelfArc || A.WithinCycle)
      Attrs += ", color=red";
    Out += format("  \"%s\" -> \"%s\" [%s];\n", From.c_str(), To.c_str(),
                  Attrs.c_str());
  }

  Out += "}\n";
  return Out;
}
