//===- core/GraphPrinter.h - The call graph profile listing (§5.2) --------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders the dense per-routine call graph listing of paper Figure 4:
/// each entry shows the routine's parents above the primary line and its
/// children below it, with the self and descendant time propagated along
/// each arc, call-count fractions, cycle annotations, and cross-reference
/// indices ("notations to help us navigate the output").
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_CORE_GRAPHPRINTER_H
#define GPROF_CORE_GRAPHPRINTER_H

#include "core/Report.h"

#include <string>
#include <vector>

namespace gprof {

/// Call graph listing controls.
struct GraphPrintOptions {
  /// Suppress the field-description blurb (gprof -b).
  bool Brief = false;
  /// If nonempty, print only entries for these routines (and the cycles
  /// containing them) — the retrospective's "show ... only parts of the
  /// graph containing certain methods" filter.
  std::vector<std::string> OnlyFunctions;
  /// Entries for these routines are omitted.
  std::vector<std::string> ExcludeFunctions;
  /// Append the alphabetical index cross-reference table.
  bool PrintIndex = true;
};

/// Renders the call graph profile listing.
std::string printCallGraph(const ProfileReport &Report,
                           const GraphPrintOptions &Opts = {});

/// Renders only the entry for routine \p Name (convenience for tests and
/// the Figure 4 bench).  Returns an empty string if the routine is absent.
std::string printCallGraphEntry(const ProfileReport &Report,
                                const std::string &Name);

} // namespace gprof

#endif // GPROF_CORE_GRAPHPRINTER_H
