//===- core/SymbolTable.h - Address-to-routine symbolization --------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maps program-counter values to routines.  The post-processor uses it in
/// both directions of paper §3.1: the destination of an arc symbolizes to
/// the callee routine, and the source symbolizes to the caller — or to no
/// routine at all, in which case the activation is "spontaneous".
///
/// Symbolization dominates the §4 post-processing wall time (one
/// findContaining per arc endpoint, millions of them for a store
/// aggregate), so finalize() freezes the table into a flat
/// structure-of-arrays resolver: sorted entry/end address arrays walked
/// with a branch-light lower bound, an interned name index for -k/-E
/// lookups, and — when the address space is dense, as the VM's always is —
/// a direct-mapped PC→index cache that answers most lookups with one load
/// and a short bounded scan (docs/READPATH.md).
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_CORE_SYMBOLTABLE_H
#define GPROF_CORE_SYMBOLTABLE_H

#include "gmon/Histogram.h"
#include "support/Arena.h"
#include "support/Error.h"
#include "vm/Image.h"

#include <cassert>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace gprof {

/// One routine in the profiled program's text.
struct Symbol {
  std::string Name;
  Address Addr = 0;  ///< Entry address.
  uint64_t Size = 0; ///< Code bytes; the range is [Addr, Addr + Size).
};

/// Sentinel routine index for "no routine".
inline constexpr uint32_t NoSymbol = ~static_cast<uint32_t>(0);

/// An address-sorted, non-overlapping table of routine symbols.
class SymbolTable {
public:
  SymbolTable() = default;
  /// Copying re-interns the name index into a fresh arena; the flat
  /// address arrays copy as plain vectors.
  SymbolTable(const SymbolTable &Other);
  SymbolTable &operator=(const SymbolTable &Other);
  SymbolTable(SymbolTable &&) = default;
  SymbolTable &operator=(SymbolTable &&) = default;

  /// Adds a symbol; call finalize() after the last one.
  void addSymbol(std::string Name, Address Addr, uint64_t Size);

  /// Sorts by address, validates that no two symbols overlap, and builds
  /// the flat resolver (SoA address arrays, name index, direct map).
  Error finalize();

  /// Builds the table from a VM image's function table.
  static SymbolTable fromImage(const Image &Img);

  size_t size() const { return Symbols.size(); }
  /// Unchecked in release builds: indices come from this table's own
  /// find* results or a loop bounded by size(), both in range by
  /// construction — a bounds throw here only ever hid a caller bug while
  /// taxing the hot paths that sit on top of this accessor.
  const Symbol &symbol(uint32_t I) const {
    assert(I < Symbols.size() && "symbol index out of range");
    return Symbols[I];
  }

  /// Index of the symbol whose range contains \p Pc, or NoSymbol.
  uint32_t findContaining(Address Pc) const {
    assert(Finalized && "lookup before finalize()");
    const size_t N = Starts.size();
    if (N == 0 || Pc < Starts[0])
      return NoSymbol;
    size_t I;
    if (!Direct.empty()) {
      // Dense path: one load gives the floor index at the slot start;
      // the scan past it is bounded by the slot's population (≤
      // MaxSlotPopulation, enforced at build time).
      size_t Slot = (Pc - Starts[0]) >> DirectShift;
      I = Slot < Direct.size() ? Direct[Slot] : N - 1;
      while (I + 1 < N && Starts[I + 1] <= Pc)
        ++I;
    } else {
      // Branch-light lower bound: greatest I with Starts[I] <= Pc.  The
      // loop body is a compare plus two conditional updates — no
      // unpredictable branch per probe.
      const Address *Base = Starts.data();
      size_t Len = N;
      while (Len > 1) {
        const size_t Half = Len >> 1;
        const bool Right = Base[Half] <= Pc;
        Base = Right ? Base + Half : Base;
        Len = Right ? Len - Half : Half;
      }
      I = static_cast<size_t>(Base - Starts.data());
    }
    return Pc < Ends[I] ? static_cast<uint32_t>(I) : NoSymbol;
  }

  /// Index of the symbol whose entry address is exactly \p Pc, or
  /// NoSymbol.
  uint32_t findAt(Address Pc) const;

  /// Index of the first symbol whose entry address is >= \p Pc, or
  /// NoSymbol when every symbol starts below \p Pc.  With findContaining,
  /// this locates the first symbol overlapping an address range without a
  /// linear scan.
  uint32_t findFirstAtOrAfter(Address Pc) const;

  /// Index of the first symbol (in address order) named \p Name, or
  /// NoSymbol.  Served by the interned name index built at finalize().
  uint32_t findByName(const std::string &Name) const;

  /// Lowest symbol start / highest symbol end (0/0 when empty).
  Address lowPc() const;
  Address highPc() const;

  /// The flat resolver arrays (valid after finalize()): entry address and
  /// one-past-end address of symbol I.  Hot loops — histogram sample
  /// assignment — iterate these directly instead of going through the
  /// Symbol objects.
  const std::vector<Address> &starts() const { return Starts; }
  const std::vector<Address> &ends() const { return Ends; }

private:
  void buildResolver();

  std::vector<Symbol> Symbols;
  bool Finalized = false;

  /// SoA mirror of (Symbols[I].Addr, Symbols[I].Addr + Size): two dense
  /// Address arrays keep a binary-search probe to one cache line instead
  /// of striding over 40-byte Symbol objects.
  std::vector<Address> Starts;
  std::vector<Address> Ends;

  /// Direct-mapped PC→index cache: Direct[(Pc - Starts[0]) >> DirectShift]
  /// is the greatest index whose entry address is <= the slot's first
  /// address.  Built only when no slot holds more than MaxSlotPopulation
  /// symbol starts (always true for the VM's dense text); empty otherwise.
  std::vector<uint32_t> Direct;
  unsigned DirectShift = 0;

  /// Interned name→index map: keys view into NameArena (one allocation
  /// pool, no per-key string), value is the first index in address order.
  Arena NameArena;
  std::unordered_map<std::string_view, uint32_t> NameIndex;
};

} // namespace gprof

#endif // GPROF_CORE_SYMBOLTABLE_H
