//===- core/SymbolTable.h - Address-to-routine symbolization --------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maps program-counter values to routines.  The post-processor uses it in
/// both directions of paper §3.1: the destination of an arc symbolizes to
/// the callee routine, and the source symbolizes to the caller — or to no
/// routine at all, in which case the activation is "spontaneous".
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_CORE_SYMBOLTABLE_H
#define GPROF_CORE_SYMBOLTABLE_H

#include "gmon/Histogram.h"
#include "support/Error.h"
#include "vm/Image.h"

#include <string>
#include <vector>

namespace gprof {

/// One routine in the profiled program's text.
struct Symbol {
  std::string Name;
  Address Addr = 0;  ///< Entry address.
  uint64_t Size = 0; ///< Code bytes; the range is [Addr, Addr + Size).
};

/// Sentinel routine index for "no routine".
inline constexpr uint32_t NoSymbol = ~static_cast<uint32_t>(0);

/// An address-sorted, non-overlapping table of routine symbols.
class SymbolTable {
public:
  /// Adds a symbol; call finalize() after the last one.
  void addSymbol(std::string Name, Address Addr, uint64_t Size);

  /// Sorts by address and validates that no two symbols overlap.
  Error finalize();

  /// Builds the table from a VM image's function table.
  static SymbolTable fromImage(const Image &Img);

  size_t size() const { return Symbols.size(); }
  const Symbol &symbol(uint32_t I) const { return Symbols.at(I); }

  /// Index of the symbol whose range contains \p Pc, or NoSymbol.
  uint32_t findContaining(Address Pc) const;

  /// Index of the symbol whose entry address is exactly \p Pc, or
  /// NoSymbol.
  uint32_t findAt(Address Pc) const;

  /// Index of the first symbol whose entry address is >= \p Pc, or
  /// NoSymbol when every symbol starts below \p Pc.  With findContaining,
  /// this locates the first symbol overlapping an address range without a
  /// linear scan.
  uint32_t findFirstAtOrAfter(Address Pc) const;

  /// Index of the first symbol named \p Name, or NoSymbol.
  uint32_t findByName(const std::string &Name) const;

  /// Lowest symbol start / highest symbol end (0/0 when empty).
  Address lowPc() const;
  Address highPc() const;

private:
  std::vector<Symbol> Symbols;
  bool Finalized = false;
};

} // namespace gprof

#endif // GPROF_CORE_SYMBOLTABLE_H
