//===- core/Analyzer.cpp ---------------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"

#include "graph/CallGraph.h"
#include "graph/CycleCollapse.h"
#include "graph/FeedbackArcs.h"
#include "graph/Tarjan.h"
#include "support/Arena.h"
#include "support/Format.h"
#include "support/Parallel.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <memory>

using namespace gprof;

Analyzer::Analyzer(SymbolTable Syms, AnalyzerOptions Opts)
    : Syms(std::move(Syms)), Opts(std::move(Opts)) {}

namespace {

/// A symbolized function-level arc.  The analyzer keeps these in a flat
/// vector sorted by (From, To) — the same iteration order the historical
/// std::map gave, without a heap node and three pointer chases per arc.
struct FnArc {
  uint32_t From;
  uint32_t To;
  uint64_t Count;
  bool Static;
};

bool fnArcKeyLess(const FnArc &A, std::pair<uint32_t, uint32_t> K) {
  return A.From != K.first ? A.From < K.first : A.To < K.second;
}

/// Shard-local arc accumulator for parallel symbolization: an
/// open-addressing table over the packed key (Caller << 32) | Callee,
/// with slab storage from an Arena.  One table carries all three arc
/// categories — Caller == NoSymbol packs spontaneous activations,
/// Caller == Callee packs self calls — so the per-record hot path is one
/// probe and one add, with no per-arc heap allocation (the historical
/// std::map shards paid a node allocation per distinct key plus a
/// red-black rebalance per insert).  Growth re-probes into a fresh,
/// larger slab from the same arena; everything is released at once when
/// the shard dies.
class PackedArcAccum {
public:
  static uint64_t packKey(uint32_t Caller, uint32_t Callee) {
    return (static_cast<uint64_t>(Caller) << 32) | Callee;
  }

  void add(uint32_t Caller, uint32_t Callee, uint64_t Count) {
    if (Used * 2 >= Cap)
      grow();
    const uint64_t Key = packKey(Caller, Callee);
    Slot &S = Slots[probe(Key)];
    if (S.Key == EmptyKey) {
      S.Key = Key;
      S.Count = Count;
      ++Used;
      return;
    }
    S.Count += Count;
  }

  size_t size() const { return Used; }

  template <typename Fn> void forEach(Fn &&F) const {
    for (size_t I = 0; I != Cap; ++I)
      if (Slots[I].Key != EmptyKey)
        F(Slots[I].Key, Slots[I].Count);
  }

private:
  struct Slot {
    uint64_t Key;
    uint64_t Count;
  };
  /// Caller and Callee are both NoSymbol only for an arc into unknown
  /// code, which is dropped before accumulation — so all-ones is free to
  /// mark an empty slot.
  static constexpr uint64_t EmptyKey = ~0ull;

  size_t probe(uint64_t Key) const {
    // splitmix64-style finalizer spreads the packed halves.
    uint64_t H = Key * 0x9E3779B97F4A7C15ULL;
    H ^= H >> 30;
    H *= 0xBF58476D1CE4E5B9ULL;
    H ^= H >> 27;
    size_t I = static_cast<size_t>(H) & (Cap - 1);
    while (Slots[I].Key != EmptyKey && Slots[I].Key != Key)
      I = (I + 1) & (Cap - 1);
    return I;
  }

  void grow() {
    const size_t NewCap = Cap == 0 ? 1024 : Cap * 2;
    Slot *OldSlots = Slots;
    const size_t OldCap = Cap;
    Slots = Mem.allocateArray<Slot>(NewCap);
    Cap = NewCap;
    for (size_t I = 0; I != NewCap; ++I)
      Slots[I].Key = EmptyKey;
    for (size_t I = 0; I != OldCap; ++I)
      if (OldSlots[I].Key != EmptyKey)
        Slots[probe(OldSlots[I].Key)] = OldSlots[I];
  }

  Arena Mem;
  Slot *Slots = nullptr;
  size_t Cap = 0;
  size_t Used = 0;
};

/// Chunk-local accumulators for parallel arc symbolization.  Every count
/// is an integer, so the sorted reduction below yields totals independent
/// of the chunk decomposition (and therefore of the thread count).
struct SymbolizeShard {
  PackedArcAccum Accum;
  uint64_t UnknownCallee = 0; ///< Arcs into unknown code, dropped.
};

/// Step 1: symbolizes raw arc records into function-level arcs, self
/// calls and spontaneous activations.  Raw records shard across workers;
/// each worker resolves call sites against the flat resolver and
/// accumulates shard-locally.  The reduction gathers every shard's
/// (packed key, count) pairs, sorts them, and coalesces equal keys —
/// unsigned sums are order-independent, so the result matches the
/// sequential accumulation at every thread count, and walking the sorted
/// keys emits FnArcs in exactly the (From, To) order the historical
/// std::map iterated in.
void symbolizeArcs(const std::vector<ArcRecord> &Raw, const SymbolTable &Syms,
                   ThreadPool *Pool, std::vector<FnArc> &FnArcs,
                   std::vector<uint64_t> &SelfCalls,
                   std::vector<uint64_t> &Spontaneous) {
  telemetry::Span Phase("analyzer.symbolize");
  telemetry::ScopedDuration Timer(
      telemetry::histogram("analyzer.phase.latency.symbolize"));
  std::vector<IndexChunk> Chunks = planChunks(Pool, Raw.size(), 1024);
  std::vector<SymbolizeShard> Shards(Chunks.size());
  runChunks(Pool, Chunks, [&](size_t Begin, size_t End, size_t Chunk) {
    telemetry::Span ChunkSpan("analyzer.symbolize.chunk");
    SymbolizeShard &Shard = Shards[Chunk];
    for (size_t I = Begin; I != End; ++I) {
      const ArcRecord &R = Raw[I];
      uint32_t Callee = Syms.findContaining(R.SelfPc);
      if (Callee == NoSymbol) {
        ++Shard.UnknownCallee;
        continue; // Arc into unknown code; nothing to attach it to.
      }
      // "the apparent source of the arc is not a call site at all.  Such
      // anomalous invocations are declared 'spontaneous'" (§3.1) —
      // Caller == NoSymbol packs them into the same table.
      uint32_t Caller = Syms.findContaining(R.FromPc);
      Shard.Accum.add(Caller, Callee, R.Count);
    }
  });
  // Counters: all data-derived sums, so the sorted reduction yields the
  // same values at every thread count.
  uint64_t Unknown = 0;
  size_t TotalSlots = 0;
  for (const SymbolizeShard &Shard : Shards) {
    Unknown += Shard.UnknownCallee;
    TotalSlots += Shard.Accum.size();
  }
  std::vector<std::pair<uint64_t, uint64_t>> Pairs;
  Pairs.reserve(TotalSlots);
  for (const SymbolizeShard &Shard : Shards)
    Shard.Accum.forEach([&](uint64_t Key, uint64_t Count) {
      Pairs.emplace_back(Key, Count);
    });
  std::sort(Pairs.begin(), Pairs.end());
  for (size_t I = 0; I != Pairs.size();) {
    const uint64_t Key = Pairs[I].first;
    uint64_t Sum = 0;
    for (; I != Pairs.size() && Pairs[I].first == Key; ++I)
      Sum += Pairs[I].second;
    const uint32_t Caller = static_cast<uint32_t>(Key >> 32);
    const uint32_t Callee = static_cast<uint32_t>(Key);
    if (Caller == NoSymbol)
      Spontaneous[Callee] += Sum;
    else if (Caller == Callee)
      SelfCalls[Callee] += Sum;
    else
      FnArcs.push_back({Caller, Callee, Sum, /*Static=*/false});
  }
  telemetry::counter("analyzer.symbolize.raw_records").add(Raw.size());
  telemetry::counter("analyzer.symbolize.unknown_callee").add(Unknown);
  telemetry::counter("analyzer.symbolize.fn_arcs").add(FnArcs.size());
}

/// Step 4: distributes histogram samples over symbols as self time,
/// prorating buckets that straddle symbol boundaries (the gprof rule).
/// Routine-major: each routine's self time is summed over its overlapping
/// buckets in ascending bucket order by exactly one worker, which
/// reproduces the sequential bucket-major accumulation bit for bit —
/// routines partition the output, so no sum ever crosses a chunk
/// boundary.  Returns the seconds that fell outside every symbol, reduced
/// over per-bucket residuals in bucket order.
double assignSelfTimes(const Histogram &Hist, uint64_t TicksPerSecond,
                       const SymbolTable &Syms,
                       std::vector<FunctionEntry> &Entries,
                       ThreadPool *Pool) {
  if (Hist.empty() || TicksPerSecond == 0)
    return 0.0;
  telemetry::Span Phase("analyzer.assign");
  telemetry::ScopedDuration Timer(
      telemetry::histogram("analyzer.phase.latency.assign"));
  telemetry::counter("analyzer.assign.hist_samples").add(Hist.totalSamples());
  telemetry::counter("analyzer.assign.hist_buckets").add(Hist.numBuckets());
  const double SecPerSample = 1.0 / static_cast<double>(TicksPerSecond);

  // Batched routine-major sweep over flat arrays: symbol bounds come from
  // the resolver's SoA vectors and bucket counts from the histogram's
  // contiguous array, so the inner loop touches three dense arrays
  // instead of striding over Symbol objects through checked accessors.
  // The floating-point accumulation expression and order are exactly the
  // historical ones — only the loads got cheaper — which is what keeps
  // the listings byte-identical (docs/ANALYZER.md).
  const std::vector<Address> &SymStarts = Syms.starts();
  const std::vector<Address> &SymEnds = Syms.ends();
  const std::vector<uint64_t> &Counts = Hist.counts();
  const Address HistLo = Hist.lowPc();
  const Address HistHi = Hist.highPc();
  const uint64_t BSize = Hist.bucketSize();
  const size_t NBuckets = Hist.numBuckets();

  parallelChunks(
      Pool, Syms.size(), 64, [&](size_t FnBegin, size_t FnEnd, size_t) {
        telemetry::Span ChunkSpan("analyzer.assign.chunk");
        for (size_t I = FnBegin; I != FnEnd; ++I) {
          const Address SymLo = SymStarts[I];
          const Address SymHi = SymEnds[I];
          if (SymHi <= SymLo || SymHi <= HistLo || SymLo >= HistHi)
            continue;
          size_t B = SymLo > HistLo
                         ? static_cast<size_t>((SymLo - HistLo) / BSize)
                         : 0;
          double Self = Entries[I].SelfTime;
          for (; B < NBuckets; ++B) {
            const Address Start = HistLo + static_cast<Address>(B) * BSize;
            if (Start >= SymHi)
              break;
            const uint64_t Samples = Counts[B];
            if (Samples == 0)
              continue;
            Address End = Start + BSize;
            End = End < HistHi ? End : HistHi;
            Address OverlapLo = std::max(SymLo, Start);
            Address OverlapHi = std::min(SymHi, End);
            if (OverlapHi <= OverlapLo)
              continue;
            const double BucketSeconds =
                static_cast<double>(Samples) * SecPerSample;
            const double BucketLen = static_cast<double>(End - Start);
            Self += BucketSeconds *
                    static_cast<double>(OverlapHi - OverlapLo) / BucketLen;
          }
          Entries[I].SelfTime = Self;
        }
      });

  // The unattributed remainder of each bucket.  Workers fill disjoint
  // slots of Residual; the final sum runs on one thread in bucket order,
  // skipping unsampled buckets exactly as the bucket-major walk did.
  std::vector<double> Residual(NBuckets, 0.0);
  parallelChunks(
      Pool, NBuckets, 256, [&](size_t BBegin, size_t BEnd, size_t) {
        telemetry::Span ChunkSpan("analyzer.assign.residual");
        for (size_t B = BBegin; B != BEnd; ++B) {
          const uint64_t Samples = Counts[B];
          if (Samples == 0)
            continue;
          const Address Start = HistLo + static_cast<Address>(B) * BSize;
          Address End = Start + BSize;
          End = End < HistHi ? End : HistHi;
          const double BucketSeconds =
              static_cast<double>(Samples) * SecPerSample;
          const double BucketLen = static_cast<double>(End - Start);
          double Attributed = 0.0;
          uint32_t S = Syms.findContaining(Start);
          if (S == NoSymbol)
            S = Syms.findFirstAtOrAfter(Start);
          for (uint32_t I = S; I != NoSymbol && I < Syms.size(); ++I) {
            if (SymStarts[I] >= End)
              break;
            Address OverlapLo = std::max(SymStarts[I], Start);
            Address OverlapHi = std::min(SymEnds[I], End);
            if (OverlapHi <= OverlapLo)
              continue;
            Attributed += BucketSeconds *
                          static_cast<double>(OverlapHi - OverlapLo) /
                          BucketLen;
          }
          Residual[B] = BucketSeconds - Attributed;
        }
      });
  double Unattributed = 0.0;
  for (size_t B = 0; B != Hist.numBuckets(); ++B)
    if (Hist.bucketCount(B) != 0)
      Unattributed += Residual[B];
  return Unattributed;
}

} // namespace

Expected<ProfileReport> Analyzer::analyze(const ProfileData &Data) const {
  telemetry::Span Whole("analyzer.analyze");
  telemetry::counter("analyzer.runs").add(1);
  // Threads == 1 runs every stage inline; otherwise the stages below
  // dispatch chunks to this pool.  Either way the output is the same,
  // byte for byte.
  std::unique_ptr<ThreadPool> OwnedPool;
  ThreadPool *Pool = nullptr;
  if (Opts.Threads != 1) {
    OwnedPool = std::make_unique<ThreadPool>(Opts.Threads);
    Pool = OwnedPool.get();
  }

  ProfileReport Report;
  Report.RunCount = Data.RunCount;
  Report.TicksPerSecond = Data.TicksPerSecond;
  Report.ArcTableOverflowed = Data.ArcTableOverflowed;

  const uint32_t NumFns = static_cast<uint32_t>(Syms.size());
  Report.Functions.resize(NumFns);
  for (uint32_t I = 0; I != NumFns; ++I) {
    Report.Functions[I].Name = Syms.symbol(I).Name;
    Report.Functions[I].SymbolIndex = I;
  }

  //--- Step 1: symbolize raw arcs into function-level arcs. --------------
  std::vector<FnArc> FnArcs; // Sorted by (From, To) throughout.
  std::vector<uint64_t> SelfCalls(NumFns, 0);
  std::vector<uint64_t> Spontaneous(NumFns, 0);
  symbolizeArcs(Data.Arcs, Syms, Pool, FnArcs, SelfCalls, Spontaneous);

  // Binary-search lookup into the sorted arc vector; erases are O(n) but
  // only run for the handful of -k / cycle-break arcs.
  auto FindFnArc = [&FnArcs](uint32_t From, uint32_t To) {
    auto It = std::lower_bound(FnArcs.begin(), FnArcs.end(),
                               std::pair<uint32_t, uint32_t>{From, To},
                               fnArcKeyLess);
    if (It != FnArcs.end() && It->From == From && It->To == To)
      return It;
    return FnArcs.end();
  };

  //--- Step 2a: delete the arcs named by -k options. ----------------------
  for (const auto &[FromName, ToName] : Opts.DeleteArcs) {
    uint32_t From = Syms.findByName(FromName);
    uint32_t To = Syms.findByName(ToName);
    if (From == NoSymbol || To == NoSymbol)
      return Error::failure(
          format("cannot delete arc %s -> %s: unknown routine",
                 FromName.c_str(), ToName.c_str()));
    if (From == To) {
      SelfCalls[From] = 0;
      continue;
    }
    auto It = FindFnArc(From, To);
    if (It != FnArcs.end())
      FnArcs.erase(It);
    Report.RemovedArcs.push_back({From, To});
  }

  //--- Step 3: add static arcs with count zero (-c). ----------------------
  if (Opts.UseStaticArcs) {
    // Batch insert: collect the statically discovered pairs absent from
    // the dynamic table, sort and de-duplicate them, then merge the two
    // sorted runs — the vector stays sorted without per-arc shifting.
    std::vector<FnArc> Extra;
    for (const StaticArc &SA : StaticArcs) {
      uint32_t Caller = Syms.findContaining(SA.CallSitePc);
      uint32_t Callee = Syms.findContaining(SA.TargetPc);
      if (Caller == NoSymbol || Callee == NoSymbol || Caller == Callee)
        continue;
      if (FindFnArc(Caller, Callee) == FnArcs.end())
        Extra.push_back({Caller, Callee, 0, /*Static=*/true});
    }
    std::sort(Extra.begin(), Extra.end(), [](const FnArc &A, const FnArc &B) {
      return A.From != B.From ? A.From < B.From : A.To < B.To;
    });
    Extra.erase(std::unique(Extra.begin(), Extra.end(),
                            [](const FnArc &A, const FnArc &B) {
                              return A.From == B.From && A.To == B.To;
                            }),
                Extra.end());
    const size_t Mid = FnArcs.size();
    FnArcs.insert(FnArcs.end(), Extra.begin(), Extra.end());
    std::inplace_merge(FnArcs.begin(), FnArcs.begin() + Mid, FnArcs.end(),
                       [](const FnArc &A, const FnArc &B) {
                         return A.From != B.From ? A.From < B.From
                                                 : A.To < B.To;
                       });
  }

  //--- Build the function-level graph. ------------------------------------
  CallGraph G;
  for (uint32_t I = 0; I != NumFns; ++I)
    G.addNode(Syms.symbol(I).Name);
  for (const FnArc &A : FnArcs)
    G.addArc(A.From, A.To, A.Count, A.Static);

  //--- Step 2b: the cycle-breaking heuristic (bounded). -------------------
  if (Opts.AutoBreakCycleBound != 0) {
    FeedbackArcResult FAS =
        selectFeedbackArcsGreedy(G, Opts.AutoBreakCycleBound);
    if (!FAS.RemovedArcs.empty()) {
      for (ArcId A : FAS.RemovedArcs) {
        const Arc &Edge = G.arc(A);
        Report.RemovedArcs.push_back({Edge.From, Edge.To});
        auto It = FindFnArc(Edge.From, Edge.To);
        if (It != FnArcs.end())
          FnArcs.erase(It);
      }
      G = removeArcs(G, FAS.RemovedArcs);
    }
  }

  //--- Call counts (C_e): incoming dynamic arcs + spontaneous. ------------
  for (uint32_t I = 0; I != NumFns; ++I) {
    FunctionEntry &E = Report.Functions[I];
    E.Calls = G.incomingCallCount(I) + Spontaneous[I];
    E.SelfCalls = SelfCalls[I];
    E.SpontaneousCalls = Spontaneous[I];
  }

  //--- Step 4: self times from the histogram. -----------------------------
  Report.UnattributedTime = assignSelfTimes(
      Data.Hist, Data.TicksPerSecond, Syms, Report.Functions, Pool);
  // The unattributed gap in integer microseconds.  The double it comes
  // from is thread-count-invariant (bucket-order reduction above), so the
  // truncation is too.
  telemetry::counter("analyzer.assign.unattributed_us")
      .add(static_cast<uint64_t>(Report.UnattributedTime * 1e6));
  // -E exclusions: drop the named routines' time before totals and
  // propagation so it appears nowhere.
  for (const std::string &Name : Opts.ExcludeTimeOf) {
    uint32_t Fn = Syms.findByName(Name);
    if (Fn == NoSymbol)
      return Error::failure(
          format("cannot exclude time of unknown routine '%s'",
                 Name.c_str()));
    Report.ExcludedTime += Report.Functions[Fn].SelfTime;
    Report.Functions[Fn].SelfTime = 0.0;
  }
  for (const FunctionEntry &E : Report.Functions)
    Report.TotalTime += E.SelfTime;

  //--- Step 5: cycles and topological numbering. --------------------------
  SCCResult SCCs = findSCCs(G);
  std::vector<uint32_t> TopoNums = topologicalNumbers(G, SCCs);
  CondensedGraph Cond = collapseCycles(G, SCCs);

  // Number the nontrivial components as cycles, in condensed-id order.
  std::vector<uint32_t> CycleOf(NumFns, 0); // 1-based; 0 = none
  for (NodeId C = 0; C != Cond.Dag.numNodes(); ++C) {
    if (!Cond.isCycle(C))
      continue;
    CycleEntry Cycle;
    Cycle.Number = static_cast<uint32_t>(Report.Cycles.size() + 1);
    for (NodeId M : Cond.Members[C]) {
      Cycle.Members.push_back(M);
      CycleOf[M] = Cycle.Number;
    }
    std::sort(Cycle.Members.begin(), Cycle.Members.end(),
              [&](uint32_t A, uint32_t B) {
                return Report.Functions[A].Name < Report.Functions[B].Name;
              });
    Report.Cycles.push_back(std::move(Cycle));
  }
  for (uint32_t I = 0; I != NumFns; ++I) {
    Report.Functions[I].TopoNumber = TopoNums[I];
    Report.Functions[I].CycleNumber = CycleOf[I];
  }

  // Per-cycle aggregates: self time, external/internal calls.
  std::vector<uint32_t> CycleIndexOfCond(Cond.Dag.numNodes(), ~0u);
  {
    uint32_t Next = 0;
    for (NodeId C = 0; C != Cond.Dag.numNodes(); ++C)
      if (Cond.isCycle(C))
        CycleIndexOfCond[C] = Next++;
  }
  for (CycleEntry &Cycle : Report.Cycles) {
    for (uint32_t M : Cycle.Members) {
      Cycle.SelfTime += Report.Functions[M].SelfTime;
      Cycle.ExternalCalls += Spontaneous[M];
      Cycle.InternalCalls += SelfCalls[M];
    }
  }
  for (ArcId A = 0; A != G.numArcs(); ++A) {
    const Arc &Edge = G.arc(A);
    uint32_t FromCycle = CycleOf[Edge.From];
    uint32_t ToCycle = CycleOf[Edge.To];
    if (ToCycle == 0)
      continue;
    if (FromCycle == ToCycle)
      Report.Cycles[ToCycle - 1].InternalCalls += Edge.Count;
    else
      Report.Cycles[ToCycle - 1].ExternalCalls += Edge.Count;
  }

  //--- Step 6: time propagation over the condensed DAG. -------------------
  // Calls into each condensed node from outside it (the C_e denominator).
  const size_t NumCond = Cond.Dag.numNodes();
  std::vector<uint64_t> CallsOfCond(NumCond, 0);
  for (NodeId C = 0; C != NumCond; ++C) {
    uint64_t Calls = Cond.Dag.incomingCallCount(C);
    for (NodeId M : Cond.Members[C])
      Calls += Spontaneous[M];
    CallsOfCond[C] = Calls;
  }

  std::vector<double> PropSelfOf(G.numArcs(), 0.0);
  std::vector<double> PropChildOf(G.numArcs(), 0.0);
  std::vector<double> CycleChild(Report.Cycles.size(), 0.0);

  // Condensed ids are in reverse topological order, so a forward sweep
  // sees every callee before its callers: "execution time can be
  // propagated from descendants to ancestors after a single traversal of
  // each arc in the call graph" (§4).  One condensed node — with every
  // member of its cycle — is always processed by a single worker in the
  // sequential member/arc order, so each += chain (ChildTime, CycleChild)
  // is the sequential one regardless of scheduling.
  auto PropagateCondNode = [&](NodeId C) {
    for (NodeId M : Cond.Members[C]) {
      for (ArcId A : G.outArcs(M)) {
        const Arc &Edge = G.arc(A);
        NodeId D = Cond.CondensedOf[Edge.To];
        if (D == C)
          continue; // Intra-cycle arcs do not propagate.
        if (Edge.Count == 0 || CallsOfCond[D] == 0)
          continue; // Static arcs "are never responsible for any time
                    // propagation" (§4).
        double Fraction = static_cast<double>(Edge.Count) /
                          static_cast<double>(CallsOfCond[D]);
        double ChildSelf, ChildDesc;
        if (Cond.isCycle(D)) {
          // "When a child is a member of a cycle, the time shown is the
          // appropriate fraction of the time for the whole cycle" (§5.2).
          uint32_t CycIdx = CycleIndexOfCond[D];
          ChildSelf = Report.Cycles[CycIdx].SelfTime;
          ChildDesc = CycleChild[CycIdx];
        } else {
          const FunctionEntry &ChildFn = Report.Functions[Edge.To];
          ChildSelf = ChildFn.SelfTime;
          ChildDesc = ChildFn.ChildTime;
        }
        PropSelfOf[A] = Fraction * ChildSelf;
        PropChildOf[A] = Fraction * ChildDesc;
        double Inherited = PropSelfOf[A] + PropChildOf[A];
        Report.Functions[M].ChildTime += Inherited;
        if (Cond.isCycle(C))
          CycleChild[CycleIndexOfCond[C]] += Inherited;
      }
    }
  };

  // A node's level is the longest chain of inter-component arcs below
  // it, so every callee of a level-L node sits strictly below level L.
  // Inter-component arcs go from higher condensed ids to lower ones, so
  // a forward id sweep computes levels in one pass.  Both execution paths
  // compute the levels — the parallel path needs them for its schedule,
  // and the telemetry DAG-depth counter must be thread-count-invariant.
  std::vector<uint32_t> Level(NumCond, 0);
  uint32_t MaxLevel = 0;
  for (NodeId C = 0; C != NumCond; ++C) {
    uint32_t L = 0;
    for (ArcId A : Cond.Dag.outArcs(C)) {
      NodeId D = Cond.Dag.arc(A).To;
      if (D != C)
        L = std::max(L, Level[D] + 1);
    }
    Level[C] = L;
    MaxLevel = std::max(MaxLevel, L);
  }
  telemetry::counter("analyzer.propagate.dag_levels")
      .add(NumCond == 0 ? 0 : MaxLevel + 1);
  telemetry::counter("analyzer.propagate.cond_nodes").add(NumCond);
  telemetry::counter("analyzer.propagate.cycles").add(Report.Cycles.size());
  telemetry::counter("analyzer.propagate.graph_arcs").add(G.numArcs());

  {
    telemetry::Span Phase("analyzer.propagate");
    telemetry::ScopedDuration Timer(
        telemetry::histogram("analyzer.phase.latency.propagate"));
    if (!Pool) {
      for (NodeId C = 0; C != NumCond; ++C)
        PropagateCondNode(C);
    } else {
      // Level-synchronous schedule: nodes of one level propagate
      // concurrently; a barrier separates levels.
      std::vector<std::vector<NodeId>> Levels(MaxLevel + 1);
      for (NodeId C = 0; C != NumCond; ++C)
        Levels[Level[C]].push_back(C);
      for (const std::vector<NodeId> &Nodes : Levels)
        parallelChunks(Pool, Nodes.size(), 8,
                       [&](size_t Begin, size_t End, size_t) {
                         telemetry::Span ChunkSpan("analyzer.propagate.level");
                         for (size_t I = Begin; I != End; ++I)
                           PropagateCondNode(Nodes[I]);
                       });
    }
  }
  for (size_t I = 0; I != Report.Cycles.size(); ++I)
    Report.Cycles[I].ChildTime = CycleChild[I];

  //--- Step 7: report arcs and listing orders. -----------------------------
  for (ArcId A = 0; A != G.numArcs(); ++A) {
    const Arc &Edge = G.arc(A);
    ReportArc RA;
    RA.Parent = Edge.From;
    RA.Child = Edge.To;
    RA.Count = Edge.Count;
    RA.PropSelf = PropSelfOf[A];
    RA.PropChild = PropChildOf[A];
    RA.Static = Edge.Static;
    RA.WithinCycle = CycleOf[Edge.From] != 0 &&
                     CycleOf[Edge.From] == CycleOf[Edge.To];
    Report.Arcs.push_back(RA);
  }
  for (uint32_t I = 0; I != NumFns; ++I) {
    if (SelfCalls[I] == 0)
      continue;
    ReportArc RA;
    RA.Parent = I;
    RA.Child = I;
    RA.Count = SelfCalls[I];
    RA.SelfArc = true;
    Report.Arcs.push_back(RA);
  }

  // Flat order: decreasing self time, then decreasing calls, then name.
  Report.FlatOrder.resize(NumFns);
  for (uint32_t I = 0; I != NumFns; ++I)
    Report.FlatOrder[I] = I;
  std::sort(Report.FlatOrder.begin(), Report.FlatOrder.end(),
            [&](uint32_t A, uint32_t B) {
              const FunctionEntry &FA = Report.Functions[A];
              const FunctionEntry &FB = Report.Functions[B];
              if (FA.SelfTime != FB.SelfTime)
                return FA.SelfTime > FB.SelfTime;
              if (FA.totalCalls() != FB.totalCalls())
                return FA.totalCalls() > FB.totalCalls();
              return FA.Name < FB.Name;
            });

  for (uint32_t I : Report.FlatOrder)
    if (Report.Functions[I].isUnused())
      Report.UnusedFunctions.push_back(I);
  std::sort(Report.UnusedFunctions.begin(), Report.UnusedFunctions.end(),
            [&](uint32_t A, uint32_t B) {
              return Report.Functions[A].Name < Report.Functions[B].Name;
            });

  // Graph listing order: decreasing self+descendant time; cycles are
  // entries of their own.  Unused routines are left out of the graph
  // listing (they appear in the unused list instead) unless a static arc
  // mentions them — static structure is worth showing (§4).
  std::vector<bool> InAnyArc(NumFns, false);
  for (const ReportArc &RA : Report.Arcs) {
    InAnyArc[RA.Parent] = true;
    InAnyArc[RA.Child] = true;
  }
  std::vector<ListingEntry> Order;
  for (uint32_t I = 0; I != NumFns; ++I)
    if (!Report.Functions[I].isUnused() || InAnyArc[I])
      Order.push_back({/*IsCycle=*/false, I});
  for (uint32_t I = 0; I != Report.Cycles.size(); ++I)
    Order.push_back({/*IsCycle=*/true, I});

  auto TotalOf = [&](const ListingEntry &E) {
    return E.IsCycle ? Report.Cycles[E.Index].totalTime()
                     : Report.Functions[E.Index].totalTime();
  };
  auto NameOf = [&](const ListingEntry &E) -> std::string {
    return E.IsCycle ? format("<cycle %u>", Report.Cycles[E.Index].Number)
                     : Report.Functions[E.Index].Name;
  };
  std::sort(Order.begin(), Order.end(),
            [&](const ListingEntry &A, const ListingEntry &B) {
              double TA = TotalOf(A), TB = TotalOf(B);
              if (TA != TB)
                return TA > TB;
              return NameOf(A) < NameOf(B);
            });
  for (uint32_t Pos = 0; Pos != Order.size(); ++Pos) {
    const ListingEntry &E = Order[Pos];
    if (E.IsCycle)
      Report.Cycles[E.Index].ListingIndex = Pos + 1;
    else
      Report.Functions[E.Index].ListingIndex = Pos + 1;
  }
  Report.GraphOrder = std::move(Order);

  return Report;
}

Expected<ProfileReport> gprof::analyzeImageProfile(const Image &Img,
                                                   const ProfileData &Data,
                                                   AnalyzerOptions Opts) {
  Analyzer A(SymbolTable::fromImage(Img), std::move(Opts));
  StaticScanResult Scan = scanStaticCalls(Img);
  A.setStaticArcs(std::move(Scan.DirectCalls));
  return A.analyze(Data);
}
