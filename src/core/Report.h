//===- core/Report.h - The analyzed profile data model --------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The result of running the gprof analysis: per-routine times and counts
/// after time propagation, cycle membership, per-arc propagated times for
/// the parents/children rows of the call graph listing, and the listing
/// orders.  Printers (FlatPrinter, GraphPrinter) render this model; tools
/// and tests consume it directly.
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_CORE_REPORT_H
#define GPROF_CORE_REPORT_H

#include <cstdint>
#include <string>
#include <vector>

namespace gprof {

/// Analysis results for one routine.
struct FunctionEntry {
  std::string Name;
  /// Index into the analyzer's SymbolTable.
  uint32_t SymbolIndex = 0;

  /// S_e: seconds attributed to the routine itself from PC samples.
  double SelfTime = 0.0;
  /// Seconds inherited from descendants via time propagation.
  double ChildTime = 0.0;

  /// C_e: calls from *other* routines (including spontaneous activations;
  /// excluding self-recursive calls).
  uint64_t Calls = 0;
  /// Self-recursive calls (displayed as "+n"; never propagate time).
  uint64_t SelfCalls = 0;
  /// Calls whose call site symbolized to no routine (paper §3.1:
  /// "anomalous invocations are declared 'spontaneous'").
  uint64_t SpontaneousCalls = 0;

  /// 1-based cycle number, or 0 when the routine is not in a cycle.
  uint32_t CycleNumber = 0;
  /// Topological number of the routine's component (Figure 1 semantics).
  uint32_t TopoNumber = 0;
  /// Cross-reference index in the call graph listing ([n]); 0 until
  /// assigned.
  uint32_t ListingIndex = 0;

  double totalTime() const { return SelfTime + ChildTime; }
  uint64_t totalCalls() const { return Calls + SelfCalls; }
  /// True if the routine was never activated and never sampled.
  bool isUnused() const {
    return Calls == 0 && SelfCalls == 0 && SelfTime == 0.0;
  }
};

/// Analysis results for one collapsed cycle.
struct CycleEntry {
  /// 1-based cycle number.
  uint32_t Number = 0;
  /// Function-entry indices of the members.
  std::vector<uint32_t> Members;

  /// Summed member self time.
  double SelfTime = 0.0;
  /// Time propagated into the cycle from non-member descendants.
  double ChildTime = 0.0;

  /// Calls into the cycle from non-members (plus spontaneous), the
  /// paper's "called a total of forty times (not counting calls among the
  /// members of the cycle)".
  uint64_t ExternalCalls = 0;
  /// Calls among members (listed, but they "do not affect time
  /// propagation").
  uint64_t InternalCalls = 0;

  /// Cross-reference index in the call graph listing.
  uint32_t ListingIndex = 0;

  double totalTime() const { return SelfTime + ChildTime; }
};

/// One caller→callee arc after analysis.
struct ReportArc {
  /// Function-entry indices.
  uint32_t Parent = 0;
  uint32_t Child = 0;
  /// C^r_e: traversals of this arc.
  uint64_t Count = 0;
  /// Portion of the child's self time propagated along this arc.
  double PropSelf = 0.0;
  /// Portion of the child's descendant time propagated along this arc.
  double PropChild = 0.0;
  /// Discovered only statically (count 0; never propagates).
  bool Static = false;
  /// Both ends are in the same cycle (listed, but never propagates).
  bool WithinCycle = false;
  /// Parent == Child (self-recursion).
  bool SelfArc = false;
};

/// One entry of the call graph listing, in listing order.
struct ListingEntry {
  /// True for a collapsed-cycle entry, false for a routine entry.
  bool IsCycle = false;
  /// Index into ProfileReport::Functions or ProfileReport::Cycles.
  uint32_t Index = 0;
};

/// The complete analysis result.
struct ProfileReport {
  std::vector<FunctionEntry> Functions;
  std::vector<CycleEntry> Cycles;
  std::vector<ReportArc> Arcs;

  /// Seconds attributed to routines (the flat profile sums to this).
  double TotalTime = 0.0;
  /// Seconds sampled outside every known routine.
  double UnattributedTime = 0.0;
  /// Seconds discarded by -E time exclusions.
  double ExcludedTime = 0.0;
  /// Total runs summed into the profile.
  uint32_t RunCount = 1;
  /// Sampling rate the times were derived from.
  uint64_t TicksPerSecond = 60;
  /// True if the runtime's arc table overflowed (counts are lower bounds).
  bool ArcTableOverflowed = false;

  /// Function-entry indices sorted for the flat profile (decreasing self
  /// time, ties by name).
  std::vector<uint32_t> FlatOrder;
  /// Call-graph listing order (decreasing self+descendant time), with
  /// cycles interleaved; ListingIndex fields agree with positions here.
  std::vector<ListingEntry> GraphOrder;
  /// Function-entry indices of routines never called and never sampled —
  /// "a list of the routines that are never called during execution ...
  /// to verify that nothing important is omitted" (§5.1).
  std::vector<uint32_t> UnusedFunctions;
  /// (parent, child) function-entry pairs deleted from the analysis by
  /// -k options or by the cycle-breaking heuristic, in deletion order.
  std::vector<std::pair<uint32_t, uint32_t>> RemovedArcs;

  /// Finds a function entry by name; returns ~0u when absent.
  uint32_t findFunction(const std::string &Name) const {
    for (uint32_t I = 0; I != Functions.size(); ++I)
      if (Functions[I].Name == Name)
        return I;
    return ~0u;
  }

  /// All arcs with Child == \p Fn (the parents block of Fn's entry).
  std::vector<const ReportArc *> arcsInto(uint32_t Fn) const;
  /// All arcs with Parent == \p Fn (the children block of Fn's entry).
  std::vector<const ReportArc *> arcsOutOf(uint32_t Fn) const;
};

} // namespace gprof

#endif // GPROF_CORE_REPORT_H
