//===- runtime/CctRecorder.cpp --------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "runtime/CctRecorder.h"

#include <algorithm>

using namespace gprof;

CctRecorder::CctRecorder(uint32_t NodeLimit) : NodeLimit(NodeLimit) {
  Nodes.push_back({0, 0, 0, 0, 0, 0, 0}); // the virtual root
}

uint32_t CctRecorder::findChild(uint32_t Parent, Address FromPc,
                                Address SelfPc) {
  const uint32_t Head = Nodes[Parent].FirstChild;
  uint32_t Prev = 0;
  for (uint32_t I = Head; I != 0; I = Nodes[I].NextSibling) {
    ++Counters.ChainProbes;
    if (Nodes[I].FromPc == FromPc && Nodes[I].SelfPc == SelfPc) {
      if (Prev != 0) {
        // BSD mcount's move-to-front: the context just entered is the one
        // most likely entered next from this parent.
        Nodes[Prev].NextSibling = Nodes[I].NextSibling;
        Nodes[I].NextSibling = Head;
        Nodes[Parent].FirstChild = I;
        ++Counters.MoveToFront;
      }
      return I;
    }
    Prev = I;
  }
  if (Nodes.size() - 1 >= NodeLimit) {
    Overflow = true;
    ++Counters.Dropped;
    return 0;
  }
  uint32_t I = static_cast<uint32_t>(Nodes.size());
  Nodes.push_back({FromPc, SelfPc, 0, 0, Parent, 0, Head});
  Nodes[Parent].FirstChild = I;
  ++Counters.NewNodes;
  return I;
}

void CctRecorder::enter(Address FromPc, Address SelfPc, bool Record) {
  ++Counters.Enters;
  const uint32_t Cur = current();
  if (!Record) {
    // moncontrol(0): keep the shadow stack balanced but record nothing;
    // events below a suppressed frame attribute to the nearest recorded
    // ancestor, matching what the arc tables and histogram see (nothing).
    Stack.push_back({FromPc, SelfPc, Cur, false});
  } else if (uint32_t N = findChild(Cur, FromPc, SelfPc)) {
    Nodes[N].Calls = saturatingAdd(Nodes[N].Calls, 1);
    Stack.push_back({FromPc, SelfPc, N, true});
  } else {
    // Node cap reached: this path is dropped (overflowed() reports it)
    // and its events roll up to the nearest recorded ancestor.
    Stack.push_back({FromPc, SelfPc, Cur, false});
  }
  if (Stack.size() > Counters.MaxDepth)
    Counters.MaxDepth = Stack.size();
}

void CctRecorder::leave(Address SelfPc) {
  if (Stack.empty() || Stack.back().SelfPc != SelfPc) {
    // A return with no matching frame: the recorder was attached (or
    // reset) mid-run.  Ignore rather than corrupt the stack.
    ++Counters.UnmatchedReturns;
    return;
  }
  Stack.pop_back();
  ++Counters.Returns;
}

void CctRecorder::tick() {
  ++Counters.Ticks;
  const uint32_t Cur = current();
  if (Cur == 0) {
    // No profiled frame is active (e.g. before the entry prologue runs):
    // the sample has no context and is dropped from the tree, tallied
    // here so the loss is visible.
    ++Counters.RootTicks;
    return;
  }
  Nodes[Cur].Ticks = saturatingAdd(Nodes[Cur].Ticks, 1);
}

std::vector<CctNode> CctRecorder::snapshot() const {
  std::vector<CctNode> Out;
  if (Nodes.size() == 1)
    return Out;
  Out.reserve(Nodes.size() - 1);
  // Canonical preorder: children of each node sorted by (FromPc, SelfPc),
  // independent of sibling-chain order (which move-to-front scrambles).
  struct Visit {
    uint32_t Node;
    uint32_t Parent; ///< Emitted index of the parent.
  };
  std::vector<Visit> Stk;
  std::vector<uint32_t> Kids;
  auto PushKids = [&](uint32_t N, uint32_t EmittedParent) {
    Kids.clear();
    for (uint32_t I = Nodes[N].FirstChild; I != 0; I = Nodes[I].NextSibling)
      Kids.push_back(I);
    std::sort(Kids.begin(), Kids.end(), [&](uint32_t A, uint32_t B) {
      return Nodes[A].FromPc != Nodes[B].FromPc
                 ? Nodes[A].FromPc < Nodes[B].FromPc
                 : Nodes[A].SelfPc < Nodes[B].SelfPc;
    });
    for (auto It = Kids.rbegin(); It != Kids.rend(); ++It)
      Stk.push_back({*It, EmittedParent});
  };
  PushKids(0, CctRootParent);
  while (!Stk.empty()) {
    Visit V = Stk.back();
    Stk.pop_back();
    const Node &N = Nodes[V.Node];
    uint32_t Here = static_cast<uint32_t>(Out.size());
    Out.push_back({V.Parent, N.FromPc, N.SelfPc, N.Calls, N.Ticks});
    PushKids(V.Node, Here);
  }
  // Prune subtrees that recorded nothing — possible only for spine nodes
  // rebuilt by reset() that saw no event afterwards — so a reset recorder
  // that stays idle snapshots identically to a fresh one.
  std::vector<char> Keep(Out.size(), 0);
  for (size_t I = Out.size(); I-- != 0;) {
    if (Out[I].Calls != 0 || Out[I].Ticks != 0)
      Keep[I] = 1;
    if (Keep[I] && Out[I].Parent != CctRootParent)
      Keep[Out[I].Parent] = 1;
  }
  std::vector<uint32_t> Remap(Out.size(), CctRootParent);
  size_t W = 0;
  for (size_t I = 0; I != Out.size(); ++I) {
    if (!Keep[I])
      continue;
    Remap[I] = static_cast<uint32_t>(W);
    Out[W] = Out[I];
    if (Out[W].Parent != CctRootParent)
      Out[W].Parent = Remap[Out[W].Parent];
    ++W;
  }
  Out.resize(W);
  return Out;
}

void CctRecorder::reset() {
  Nodes.assign(1, Node{0, 0, 0, 0, 0, 0, 0});
  Overflow = false;
  Counters = CctStats{};
  // Rebuild the spine of still-active frames with zero counts: the calls
  // happened before the cut, but ticks after it must keep attributing to
  // the live context each frame actually runs in.
  uint32_t Cur = 0;
  for (FrameEntry &F : Stack) {
    uint32_t N = findChild(Cur, F.FromPc, F.SelfPc);
    if (N == 0) { // NodeLimit smaller than the live depth
      F.Node = Cur;
      F.Counted = false;
      continue;
    }
    F.Node = N;
    F.Counted = true;
    Cur = N;
  }
  Counters.MaxDepth = Stack.size();
}

CctStats CctRecorder::stats() const {
  CctStats S = Counters;
  S.Nodes = Nodes.size() - 1;
  return S;
}
