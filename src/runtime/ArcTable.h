//===- runtime/ArcTable.h - The mcount arc-recording data structures -----===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The monitoring routine's table of call-graph arcs (paper §3.1): "the
/// monitoring routine maintains a table of all the arcs discovered, with
/// counts of the numbers of times each is traversed ... Access to it must
/// be as fast as possible so as not to overwhelm the time required to
/// execute the program."
///
/// Three implementations share the ArcRecorder interface (swapped through
/// a single "late bound" call, as the retrospective puts it):
///
///  - BsdArcTable: the paper's design.  A froms[] array directly indexed
///    by scaled call-site address ("our hash function is trivial to
///    calculate") heads short chains of (callee, count) records in tos[].
///    "Collisions occur only for call sites that call multiple
///    destinations (e.g. functional parameters and functional variables)."
///    A chain hit is moved to the front of its chain, as BSD mcount did,
///    so repeated (site, callee) hits resolve in one compare even after
///    the site changes callees.  With FromsDensity > 1 several call sites
///    share a slot, reproducing the space/precision trade of a sub-unit
///    hash fraction.
///  - OpenAddressingArcTable: a modern (from, to)-keyed open-addressing
///    hash table, the "one level hash function using both call site and
///    callee" the paper rejects as needing "an unreasonably large hash
///    table" — benchmarked against BSD in E5.
///  - StdMapArcTable: std::unordered_map reference implementation used as
///    a correctness oracle and microbenchmark baseline.
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_RUNTIME_ARCTABLE_H
#define GPROF_RUNTIME_ARCTABLE_H

#include "gmon/ProfileData.h"

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

namespace gprof {

/// Access-pattern and occupancy statistics of an arc table.  The counting
/// members are plain (non-atomic) integers bumped on the record() hot
/// path — strictly cheaper than the relaxed atomics the telemetry layer
/// uses elsewhere.  That stays safe in a multithreaded target because
/// each recorder (and so each stats block) is owned by exactly one
/// thread: Monitor's registry hands every profiled thread its own
/// ArcRecorder, and Monitor::publishTelemetry() sums the per-thread
/// blocks field-wise at snapshot time (a commutative fold, so the totals
/// are deterministic whatever order threads registered in; see
/// docs/RUNTIME_MT.md).  All values are exact and deterministic for a
/// given per-thread call sequence.
struct ArcTableStats {
  uint64_t Records = 0;      ///< record() invocations.
  uint64_t ChainProbes = 0;  ///< Key comparisons / slot inspections.
  uint64_t Collisions = 0;   ///< Records resolved only after >1 probe.
  uint64_t MoveToFront = 0;  ///< BSD chain promotions (hit behind head).
  uint64_t NewArcs = 0;      ///< Distinct arcs created.
  uint64_t OutsideRange = 0; ///< Call sites outside [LowPc, HighPc).
  uint64_t Dropped = 0;      ///< Records discarded after overflow.
  // Occupancy, filled by stats() at snapshot time:
  uint64_t Entries = 0;      ///< Live distinct arcs.
  uint64_t SlotsUsed = 0;    ///< Occupied primary slots.
  uint64_t SlotCapacity = 0; ///< Total primary slots.
};

/// Interface of an arc-recording table.
class ArcRecorder {
public:
  virtual ~ArcRecorder();

  /// Records one traversal of the arc from call site \p FromPc to the
  /// routine entered at \p SelfPc.  Called once per profiled call — the
  /// hot path.
  virtual void record(Address FromPc, Address SelfPc) = 0;

  /// Condenses the table to arc records (order unspecified).
  virtual std::vector<ArcRecord> snapshot() const = 0;

  /// Clears all recorded arcs.
  virtual void reset() = 0;

  /// True if capacity was exhausted and some traversals were dropped
  /// (mcount's "tos overflow" condition).
  virtual bool overflowed() const { return false; }

  /// Access-pattern counters plus current occupancy.  The base returns an
  /// all-zero struct so alternative recorders need not instrument.
  virtual ArcTableStats stats() const { return ArcTableStats(); }
};

/// The BSD mcount design: froms[] directly indexed by scaled call-site
/// address; tos[] chains of per-callee counters.
class BsdArcTable : public ArcRecorder {
public:
  /// Covers call sites in [LowPc, HighPc).  \p FromsDensity is the number
  /// of code addresses sharing one froms[] slot (1 = the one-to-one
  /// mapping the retrospective celebrates).  \p TosLimit bounds the number
  /// of distinct arcs; beyond it recording stops and overflowed() becomes
  /// true.  Call sites outside the range (spontaneous activations) are
  /// kept exactly in a side map so the entry function's incoming arc
  /// survives condensation.
  BsdArcTable(Address LowPc, Address HighPc, uint32_t FromsDensity = 1,
              uint32_t TosLimit = 1u << 20);

  void record(Address FromPc, Address SelfPc) override;
  std::vector<ArcRecord> snapshot() const override;
  void reset() override;
  bool overflowed() const override { return Overflow; }
  ArcTableStats stats() const override;

  /// Bytes of memory held by froms[] + tos[] (for the E5 space column).
  size_t memoryBytes() const;

private:
  struct TosEntry {
    Address SelfPc;
    uint64_t Count;
    uint32_t Link; ///< Next entry in this froms chain; 0 terminates.
  };

  Address LowPc;
  Address HighPc;
  uint32_t FromsDensity;
  uint32_t TosLimit;
  /// Indexed by (FromPc - LowPc) / FromsDensity; value is a tos[] index
  /// (0 = empty chain; tos[0] is a reserved sentinel).
  std::vector<uint32_t> Froms;
  std::vector<TosEntry> Tos;
  /// Arcs whose call site lies outside [LowPc, HighPc).
  std::map<std::pair<Address, Address>, uint64_t> Outside;
  bool Overflow = false;
  ArcTableStats Counters;
};

/// Open-addressing table keyed on the (FromPc, SelfPc) pair.
class OpenAddressingArcTable : public ArcRecorder {
public:
  explicit OpenAddressingArcTable(size_t InitialCapacity = 1024);

  void record(Address FromPc, Address SelfPc) override;
  std::vector<ArcRecord> snapshot() const override;
  void reset() override;
  ArcTableStats stats() const override;

  size_t memoryBytes() const;

private:
  struct Slot {
    Address FromPc = 0;
    Address SelfPc = 0;
    uint64_t Count = 0; ///< 0 means the slot is empty.
  };

  void grow();
  static uint64_t hashPair(Address FromPc, Address SelfPc);

  std::vector<Slot> Slots;
  size_t Used = 0;
  ArcTableStats Counters;
};

/// std::map-based oracle (ordered, so snapshots are deterministic).
class StdMapArcTable : public ArcRecorder {
public:
  void record(Address FromPc, Address SelfPc) override;
  std::vector<ArcRecord> snapshot() const override;
  void reset() override;
  ArcTableStats stats() const override;

private:
  std::map<std::pair<Address, Address>, uint64_t> Counts;
  ArcTableStats Counters;
};

} // namespace gprof

#endif // GPROF_RUNTIME_ARCTABLE_H
