//===- runtime/Monitor.cpp -------------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "runtime/Monitor.h"

#include "support/Telemetry.h"

using namespace gprof;

namespace {
/// Source of never-reused Monitor identities for the thread-local caches.
std::atomic<uint64_t> NextMonitorId{1};
} // namespace

thread_local uint64_t Monitor::CachedMonitorId = 0;
thread_local Monitor::ThreadState *Monitor::CachedState = nullptr;

Monitor::Monitor(Address LowPc, Address HighPc, MonitorOptions Opts)
    : LowPc(LowPc), HighPc(HighPc), Opts(Opts),
      MonitorId(NextMonitorId.fetch_add(1, std::memory_order_relaxed)) {}

Monitor::~Monitor() {
  // Invalidate this thread's cache if it points into us.  Other threads'
  // caches go stale harmlessly: MonitorIds are never reused, so a stale
  // entry can never match a live Monitor.
  if (CachedMonitorId == MonitorId) {
    CachedMonitorId = 0;
    CachedState = nullptr;
  }
}

std::unique_ptr<ArcRecorder> Monitor::makeTable() const {
  switch (Opts.TableKind) {
  case ArcTableKind::Bsd:
    return std::make_unique<BsdArcTable>(LowPc, HighPc, Opts.FromsDensity,
                                         Opts.TosLimit);
  case ArcTableKind::OpenAddressing:
    return std::make_unique<OpenAddressingArcTable>();
  case ArcTableKind::StdMap:
    return std::make_unique<StdMapArcTable>();
  }
  return nullptr;
}

Monitor::ThreadState &Monitor::self() {
  // One comparison against a thread-local on the hot path; everything
  // past it is this thread's private state.
  if (CachedMonitorId == MonitorId)
    return *CachedState;
  return registerThisThread();
}

Monitor::ThreadState &Monitor::registerThisThread() {
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  ThreadState *&Slot = ByThread[std::this_thread::get_id()];
  if (!Slot) {
    auto State = std::make_unique<ThreadState>();
    State->Arcs = makeTable();
    State->Hist = Histogram(LowPc, HighPc, Opts.HistBucketSize);
    if (Opts.RecordContexts)
      State->Cct = std::make_unique<CctRecorder>(Opts.CctNodeLimit);
    Slot = State.get();
    Threads.push_back(std::move(State));
  }
  CachedMonitorId = MonitorId;
  CachedState = Slot;
  return *Slot;
}

void Monitor::onCall(Address FromPc, Address SelfPc) {
  const bool Run = Running.load(std::memory_order_relaxed);
  if (Opts.RecordContexts) {
    // The CCT sees every call even while profiling is suspended — a
    // suppressed frame records nothing but keeps the shadow stack
    // balanced for the returns that will follow.
    ThreadState &S = self();
    S.Cct->enter(FromPc, SelfPc, Run);
    if (Run && Opts.RecordArcs)
      S.Arcs->record(FromPc, SelfPc);
    return;
  }
  if (!Run || !Opts.RecordArcs)
    return;
  self().Arcs->record(FromPc, SelfPc);
}

void Monitor::onReturn(Address SelfPc) {
  if (!Opts.RecordContexts)
    return;
  self().Cct->leave(SelfPc);
}

void Monitor::onTick(Address Pc) {
  if (!Running.load(std::memory_order_relaxed))
    return;
  if (Opts.SampleHistogram) {
    ThreadState &S = self();
    ++S.HistTicks;
    S.Hist.recordPc(Pc);
    if (Opts.RecordContexts)
      S.Cct->tick();
    return;
  }
  if (Opts.RecordContexts)
    self().Cct->tick();
}

void Monitor::reset() {
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  for (const auto &T : Threads) {
    T->Arcs->reset();
    T->Hist = Histogram(LowPc, HighPc, Opts.HistBucketSize);
    T->HistTicks = 0;
    if (T->Cct)
      T->Cct->reset();
  }
}

bool Monitor::arcTableOverflowed() const {
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  for (const auto &T : Threads)
    if (T->Arcs->overflowed())
      return true;
  return false;
}

bool Monitor::contextTreeOverflowed() const {
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  for (const auto &T : Threads)
    if (T->Cct && T->Cct->overflowed())
      return true;
  return false;
}

CctStats Monitor::cctStats() const {
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  CctStats Sum;
  for (const auto &T : Threads) {
    if (!T->Cct)
      continue;
    CctStats S = T->Cct->stats();
    Sum.Enters += S.Enters;
    Sum.Returns += S.Returns;
    Sum.UnmatchedReturns += S.UnmatchedReturns;
    Sum.Ticks += S.Ticks;
    Sum.RootTicks += S.RootTicks;
    Sum.ChainProbes += S.ChainProbes;
    Sum.MoveToFront += S.MoveToFront;
    Sum.NewNodes += S.NewNodes;
    Sum.Dropped += S.Dropped;
    Sum.Nodes += S.Nodes;
    if (S.MaxDepth > Sum.MaxDepth)
      Sum.MaxDepth = S.MaxDepth;
  }
  return Sum;
}

ArcTableStats Monitor::arcTableStats() const {
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  ArcTableStats Sum;
  for (const auto &T : Threads) {
    ArcTableStats S = T->Arcs->stats();
    Sum.Records += S.Records;
    Sum.ChainProbes += S.ChainProbes;
    Sum.Collisions += S.Collisions;
    Sum.MoveToFront += S.MoveToFront;
    Sum.NewArcs += S.NewArcs;
    Sum.OutsideRange += S.OutsideRange;
    Sum.Dropped += S.Dropped;
    Sum.Entries += S.Entries;
    Sum.SlotsUsed += S.SlotsUsed;
    Sum.SlotCapacity += S.SlotCapacity;
  }
  return Sum;
}

std::vector<ArcTableStats> Monitor::perThreadArcStats() const {
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  std::vector<ArcTableStats> Out;
  Out.reserve(Threads.size());
  for (const auto &T : Threads)
    Out.push_back(T->Arcs->stats());
  return Out;
}

size_t Monitor::registeredThreads() const {
  std::lock_guard<std::mutex> Lock(RegistryMutex);
  return Threads.size();
}

void Monitor::publishTelemetry() const {
  using telemetry::counter;
  ArcTableStats S = arcTableStats();
  uint64_t Ticks = 0, OutOfRange = 0;
  size_t NumThreads;
  {
    std::lock_guard<std::mutex> Lock(RegistryMutex);
    NumThreads = Threads.size();
    for (const auto &T : Threads) {
      Ticks += T->HistTicks;
      OutOfRange += T->Hist.outOfRangeSamples();
    }
  }
  counter("runtime.mcount.records").set(S.Records);
  counter("runtime.mcount.chain_probes").set(S.ChainProbes);
  counter("runtime.mcount.collisions").set(S.Collisions);
  counter("runtime.mcount.mtf_hits").set(S.MoveToFront);
  counter("runtime.mcount.new_arcs").set(S.NewArcs);
  counter("runtime.mcount.outside_range").set(S.OutsideRange);
  counter("runtime.mcount.dropped").set(S.Dropped);
  counter("runtime.arcs.entries").set(S.Entries);
  counter("runtime.arcs.slots_used").set(S.SlotsUsed);
  counter("runtime.arcs.slot_capacity").set(S.SlotCapacity);
  counter("runtime.arcs.overflowed").set(arcTableOverflowed() ? 1 : 0);
  counter("runtime.hist.ticks").set(Ticks);
  counter("runtime.hist.out_of_range").set(OutOfRange);
  counter("runtime.hist.buckets")
      .set(Histogram(LowPc, HighPc, Opts.HistBucketSize).numBuckets());
  counter("runtime.threads.registered").set(NumThreads);
  if (Opts.RecordContexts) {
    CctStats C = cctStats();
    counter("runtime.cct.enters").set(C.Enters);
    counter("runtime.cct.returns").set(C.Returns);
    counter("runtime.cct.unmatched_returns").set(C.UnmatchedReturns);
    counter("runtime.cct.ticks").set(C.Ticks);
    counter("runtime.cct.root_ticks").set(C.RootTicks);
    counter("runtime.cct.chain_probes").set(C.ChainProbes);
    counter("runtime.cct.mtf_hits").set(C.MoveToFront);
    counter("runtime.cct.new_nodes").set(C.NewNodes);
    counter("runtime.cct.dropped").set(C.Dropped);
    counter("runtime.cct.nodes").set(C.Nodes);
    counter("runtime.cct.max_depth").set(C.MaxDepth);
    counter("runtime.cct.overflowed").set(contextTreeOverflowed() ? 1 : 0);
  }
}

ProfileData Monitor::extract() const {
  ProfileData Data;
  Data.Hist = Histogram(LowPc, HighPc, Opts.HistBucketSize);
  Data.TicksPerSecond = Opts.TicksPerSecond;
  Data.RunCount = 1;
  bool Overflow = false;
  bool CctOverflow = false;
  {
    std::lock_guard<std::mutex> Lock(RegistryMutex);
    for (const auto &T : Threads) {
      for (const ArcRecord &R : T->Arcs->snapshot())
        Data.addArc(R.FromPc, R.SelfPc, R.Count);
      // Geometries are identical by construction, so the merge cannot
      // fail.
      cantFail(Data.Hist.merge(T->Hist));
      Overflow = Overflow || T->Arcs->overflowed();
      if (T->Cct) {
        Data.addContextTree(T->Cct->snapshot());
        CctOverflow = CctOverflow || T->Cct->overflowed();
      }
    }
  }
  Data.ArcTableOverflowed = Overflow;
  Data.ContextTreeOverflowed = CctOverflow;
  // Canonical arc order: the serialized snapshot depends only on the
  // logical arc multiset, not on which thread discovered which arc first
  // or on any recorder's internal layout (the determinism contract,
  // docs/RUNTIME_MT.md).  addContextTree re-canonicalizes the tree on
  // every fold, so Contexts is already canonical here.
  Data.canonicalizeArcs();
  return Data;
}
