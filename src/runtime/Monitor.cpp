//===- runtime/Monitor.cpp -------------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "runtime/Monitor.h"

using namespace gprof;

Monitor::Monitor(Address LowPc, Address HighPc, MonitorOptions Opts)
    : LowPc(LowPc), HighPc(HighPc), Opts(Opts),
      Hist(LowPc, HighPc, Opts.HistBucketSize) {
  Arcs = makeTable();
}

std::unique_ptr<ArcRecorder> Monitor::makeTable() const {
  switch (Opts.TableKind) {
  case ArcTableKind::Bsd:
    return std::make_unique<BsdArcTable>(LowPc, HighPc, Opts.FromsDensity,
                                         Opts.TosLimit);
  case ArcTableKind::OpenAddressing:
    return std::make_unique<OpenAddressingArcTable>();
  case ArcTableKind::StdMap:
    return std::make_unique<StdMapArcTable>();
  }
  return nullptr;
}

void Monitor::onCall(Address FromPc, Address SelfPc) {
  if (!Running || !Opts.RecordArcs)
    return;
  Arcs->record(FromPc, SelfPc);
}

void Monitor::onTick(Address Pc) {
  if (!Running || !Opts.SampleHistogram)
    return;
  Hist.recordPc(Pc);
}

void Monitor::reset() {
  Arcs->reset();
  Hist = Histogram(LowPc, HighPc, Opts.HistBucketSize);
}

ProfileData Monitor::extract() const {
  ProfileData Data;
  Data.Hist = Hist;
  Data.Arcs = Arcs->snapshot();
  Data.TicksPerSecond = Opts.TicksPerSecond;
  Data.RunCount = 1;
  Data.ArcTableOverflowed = Arcs->overflowed();
  return Data;
}
