//===- runtime/Monitor.cpp -------------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "runtime/Monitor.h"

#include "support/Telemetry.h"

using namespace gprof;

Monitor::Monitor(Address LowPc, Address HighPc, MonitorOptions Opts)
    : LowPc(LowPc), HighPc(HighPc), Opts(Opts),
      Hist(LowPc, HighPc, Opts.HistBucketSize) {
  Arcs = makeTable();
}

std::unique_ptr<ArcRecorder> Monitor::makeTable() const {
  switch (Opts.TableKind) {
  case ArcTableKind::Bsd:
    return std::make_unique<BsdArcTable>(LowPc, HighPc, Opts.FromsDensity,
                                         Opts.TosLimit);
  case ArcTableKind::OpenAddressing:
    return std::make_unique<OpenAddressingArcTable>();
  case ArcTableKind::StdMap:
    return std::make_unique<StdMapArcTable>();
  }
  return nullptr;
}

void Monitor::onCall(Address FromPc, Address SelfPc) {
  if (!Running || !Opts.RecordArcs)
    return;
  Arcs->record(FromPc, SelfPc);
}

void Monitor::onTick(Address Pc) {
  if (!Running || !Opts.SampleHistogram)
    return;
  ++HistTicks;
  Hist.recordPc(Pc);
}

void Monitor::reset() {
  Arcs->reset();
  Hist = Histogram(LowPc, HighPc, Opts.HistBucketSize);
  HistTicks = 0;
}

void Monitor::publishTelemetry() const {
  using telemetry::counter;
  using telemetry::gauge;
  ArcTableStats S = arcTableStats();
  counter("runtime.mcount.records").set(S.Records);
  counter("runtime.mcount.chain_probes").set(S.ChainProbes);
  counter("runtime.mcount.collisions").set(S.Collisions);
  counter("runtime.mcount.mtf_hits").set(S.MoveToFront);
  counter("runtime.mcount.new_arcs").set(S.NewArcs);
  counter("runtime.mcount.outside_range").set(S.OutsideRange);
  counter("runtime.mcount.dropped").set(S.Dropped);
  counter("runtime.arcs.entries").set(S.Entries);
  counter("runtime.arcs.slots_used").set(S.SlotsUsed);
  counter("runtime.arcs.slot_capacity").set(S.SlotCapacity);
  counter("runtime.arcs.overflowed").set(arcTableOverflowed() ? 1 : 0);
  counter("runtime.hist.ticks").set(HistTicks);
  counter("runtime.hist.out_of_range").set(Hist.outOfRangeSamples());
  counter("runtime.hist.buckets").set(Hist.numBuckets());
}

ProfileData Monitor::extract() const {
  ProfileData Data;
  Data.Hist = Hist;
  Data.Arcs = Arcs->snapshot();
  Data.TicksPerSecond = Opts.TicksPerSecond;
  Data.RunCount = 1;
  Data.ArcTableOverflowed = Arcs->overflowed();
  return Data;
}
