//===- runtime/CctRecorder.h - Per-thread calling-context-tree recorder --===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fourth recorder: where the arc tables aggregate every traversal of
/// a (call site, callee) pair, the CctRecorder keeps one node per *path*
/// from the program entry — the Plan 9 prof shape, a first-child /
/// next-sibling pc tree with a call count and a sampled-tick count per
/// node.  That tree is exact ground truth for the quantity the paper's §6
/// propagation only approximates ("all calls to a routine cost the same"):
/// collapsing it per (site, callee) reproduces the arc table, and its
/// per-context tick sums expose how wrong the equal-cost assumption is
/// for any routine whose cost depends on its caller.
///
/// Threading follows the arc tables exactly (docs/RUNTIME_MT.md): one
/// recorder per thread, owned exclusively by that thread, plain
/// non-atomic counters, no locks anywhere on the enter/leave/tick hot
/// path.  Monitor folds per-thread snapshots into one canonical tree at
/// extract() time.
///
/// Child lookup walks the sibling chain with BSD mcount's move-to-front
/// promotion, so a site that keeps entering the same context resolves in
/// one compare.
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_RUNTIME_CCTRECORDER_H
#define GPROF_RUNTIME_CCTRECORDER_H

#include "gmon/ProfileData.h"

#include <cstdint>
#include <vector>

namespace gprof {

/// Access-pattern statistics of a context-tree recorder.  Plain integers
/// on the hot path, safe for the same reason ArcTableStats is: each
/// recorder belongs to exactly one thread, and Monitor sums the blocks
/// field-wise at snapshot time (a commutative, deterministic fold).
struct CctStats {
  uint64_t Enters = 0;           ///< enter() invocations.
  uint64_t Returns = 0;          ///< leave() invocations that popped.
  uint64_t UnmatchedReturns = 0; ///< leave() with no matching frame.
  uint64_t Ticks = 0;            ///< tick() invocations.
  uint64_t RootTicks = 0;        ///< Ticks with no context on the stack.
  uint64_t ChainProbes = 0;      ///< Sibling-chain key comparisons.
  uint64_t MoveToFront = 0;      ///< Chain promotions (hit behind head).
  uint64_t NewNodes = 0;         ///< Distinct contexts created.
  uint64_t Dropped = 0;          ///< Contexts not created after overflow.
  // Occupancy, filled by stats() at snapshot time:
  uint64_t Nodes = 0;            ///< Live context nodes.
  uint64_t MaxDepth = 0;         ///< Deepest shadow stack seen.
};

/// One thread's calling-context tree plus the shadow call stack locating
/// the current context.  enter/leave/tick mirror the VM's
/// onCall/onReturn/onTick events.
class CctRecorder {
public:
  /// \p NodeLimit bounds the tree (the per-thread budget, like the arc
  /// tables' TosLimit).  Once exceeded, new paths stop creating nodes and
  /// their events attribute to the nearest recorded ancestor context;
  /// overflowed() reports the loss.
  explicit CctRecorder(uint32_t NodeLimit = 1u << 20);

  /// A profiled function was entered at \p SelfPc from call site
  /// \p FromPc.  \p Record is the moncontrol gate: when false (profiling
  /// suspended) the frame is still tracked so the shadow stack stays
  /// balanced, but no node is created and no call is counted.
  void enter(Address FromPc, Address SelfPc, bool Record);

  /// The profiled function entered at \p SelfPc returned.  Pops the
  /// matching frame; tolerates imbalance (e.g. a recorder attached
  /// mid-run) by ignoring returns that match no tracked frame.
  void leave(Address SelfPc);

  /// One clock tick elapsed in the current context.
  void tick();

  /// The tree in canonical preorder (ProfileData::Contexts form):
  /// Parent < index, siblings merged and ordered by (FromPc, SelfPc).
  /// Nodes never entered with Record (zero calls, zero ticks) are
  /// impossible by construction, but suppressed or overflowed paths may
  /// have attributed ticks to an ancestor that is present.
  std::vector<CctNode> snapshot() const;

  /// Zeroes all counts and discards all recorded contexts, then rebuilds
  /// the spine of currently active frames (with zero counts) so a
  /// recorder reset mid-run keeps attributing correctly.
  void reset();

  /// True once the node cap dropped at least one new context.
  bool overflowed() const { return Overflow; }

  CctStats stats() const;

private:
  struct Node {
    Address FromPc;
    Address SelfPc;
    uint64_t Calls;
    uint64_t Ticks;
    uint32_t Parent;      ///< Index of the parent (0 is the virtual root).
    uint32_t FirstChild;  ///< Head of the child list (0 = none).
    uint32_t NextSibling; ///< Next child of Parent (0 = end).
  };
  /// One tracked frame: the event key plus the node events in this frame
  /// attribute to (the frame's own node, or — for suppressed/overflowed
  /// frames — the nearest recorded ancestor's).
  struct FrameEntry {
    Address FromPc;
    Address SelfPc;
    uint32_t Node;
    bool Counted; ///< True if this frame created/bumped its own node.
  };

  /// Finds or creates the child of \p Parent keyed (FromPc, SelfPc);
  /// returns 0 when the cap blocks creation.
  uint32_t findChild(uint32_t Parent, Address FromPc, Address SelfPc);

  /// Index of the node current events attribute to.
  uint32_t current() const {
    return Stack.empty() ? 0 : Stack.back().Node;
  }

  std::vector<Node> Nodes; ///< Nodes[0] is the virtual root.
  std::vector<FrameEntry> Stack;
  uint32_t NodeLimit;
  bool Overflow = false;
  mutable CctStats Counters;
};

} // namespace gprof

#endif // GPROF_RUNTIME_CCTRECORDER_H
