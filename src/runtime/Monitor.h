//===- runtime/Monitor.h - The profiling monitor and its control API ------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime half of the profiler (paper §3): "The first part allocates
/// and initializes the runtime monitoring data structures before the
/// program begins execution [monstartup].  The second part is the
/// monitoring routine invoked from the prologue of each profiled routine
/// [record]. The third part condenses the data structures and writes them
/// to a file as the program terminates [finish]."
///
/// Monitor also exposes the retrospective's kernel-profiling control
/// interface: "The programmer's interface allowed us to turn the profiler
/// on and off, extract the profiling data, and reset the data" — so a
/// long-running process can be profiled in slices without going down.
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_RUNTIME_MONITOR_H
#define GPROF_RUNTIME_MONITOR_H

#include "gmon/ProfileData.h"
#include "runtime/ArcTable.h"
#include "vm/VM.h"

#include <memory>

namespace gprof {

/// Which arc table implementation the monitor uses.
enum class ArcTableKind { Bsd, OpenAddressing, StdMap };

/// Monitor configuration.
struct MonitorOptions {
  /// Histogram bucket granularity in code addresses.  1 gives the
  /// retrospective's one-to-one PC↔bucket mapping; larger values give "a
  /// finer or coarser histogram" trading space for precision.
  uint64_t HistBucketSize = 1;
  /// Clock ticks per second of program time; pairs with the VM's
  /// CyclesPerTick to convert samples to seconds.
  uint64_t TicksPerSecond = 60;
  /// Arc table selection and sizing.
  ArcTableKind TableKind = ArcTableKind::Bsd;
  uint32_t FromsDensity = 1;
  uint32_t TosLimit = 1u << 20;
  /// Individual halves of the profiler can be disabled (bench E4 measures
  /// histogram-only vs full profiling overhead).
  bool RecordArcs = true;
  bool SampleHistogram = true;
};

/// The profiling monitor.  Attach to a VM with VM::setHooks(&Monitor).
class Monitor : public ProfileHooks {
public:
  /// monstartup: sizes the data structures for text range
  /// [LowPc, HighPc).
  Monitor(Address LowPc, Address HighPc,
          MonitorOptions Opts = MonitorOptions());

  // ProfileHooks implementation (the monitoring routine proper).
  void onCall(Address FromPc, Address SelfPc) override;
  void onTick(Address Pc) override;

  /// moncontrol: starts or stops data gathering.  While stopped, profiled
  /// routines still execute their prologue call but nothing is recorded
  /// (matching moncontrol(0) semantics: profiling off, program running).
  void control(bool Run) { Running = Run; }
  bool isRunning() const { return Running; }

  /// Zeroes the arc table and histogram (kernel interface "reset").
  void reset();

  /// Snapshots the current data without disturbing collection (kernel
  /// interface "extract").
  ProfileData extract() const;

  /// Condenses the final data, as done "as the profiled program exits".
  /// The monitor keeps collecting if execution continues afterwards.
  ProfileData finish() const { return extract(); }

  /// True if the arc table overflowed and dropped arcs.
  bool arcTableOverflowed() const { return Arcs && Arcs->overflowed(); }

  /// The arc table's access-pattern and occupancy statistics.
  ArcTableStats arcTableStats() const {
    return Arcs ? Arcs->stats() : ArcTableStats();
  }

  /// Publishes the runtime's counters — mcount probes/collisions/
  /// move-to-front hits, arc-table occupancy, histogram ticks — to the
  /// process-wide telemetry registry under "runtime.*" (the
  /// GPROF_TELEMETRY surface; see docs/TELEMETRY.md).
  void publishTelemetry() const;

  const MonitorOptions &options() const { return Opts; }

private:
  std::unique_ptr<ArcRecorder> makeTable() const;

  Address LowPc;
  Address HighPc;
  MonitorOptions Opts;
  std::unique_ptr<ArcRecorder> Arcs;
  Histogram Hist;
  uint64_t HistTicks = 0; ///< onTick deliveries recorded (exact).
  bool Running = true;
};

} // namespace gprof

#endif // GPROF_RUNTIME_MONITOR_H
