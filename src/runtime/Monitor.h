//===- runtime/Monitor.h - The profiling monitor and its control API ------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime half of the profiler (paper §3): "The first part allocates
/// and initializes the runtime monitoring data structures before the
/// program begins execution [monstartup].  The second part is the
/// monitoring routine invoked from the prologue of each profiled routine
/// [record]. The third part condenses the data structures and writes them
/// to a file as the program terminates [finish]."
///
/// Monitor also exposes the retrospective's kernel-profiling control
/// interface: "The programmer's interface allowed us to turn the profiler
/// on and off, extract the profiling data, and reset the data" — so a
/// long-running process can be profiled in slices without going down.
///
/// Thread model (docs/RUNTIME_MT.md): one Monitor may be shared by any
/// number of profiled threads.  Each thread owns a private ThreadState —
/// its own ArcRecorder and Histogram with plain non-atomic counters —
/// created lazily on the thread's first event and found again through a
/// thread-local cache, so the record() hot path stays exactly as cheap as
/// the paper demands ("access to it must be as fast as possible") with no
/// locks and no atomic read-modify-writes.  Only registration (once per
/// thread) and the snapshot/reset/telemetry paths take the registry
/// mutex.  extract() folds every per-thread table through
/// ProfileData::addArc and canonicalizes the result, so the merged
/// snapshot is byte-identical to a single-thread run of the same logical
/// call sequence.
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_RUNTIME_MONITOR_H
#define GPROF_RUNTIME_MONITOR_H

#include "gmon/ProfileData.h"
#include "runtime/ArcTable.h"
#include "runtime/CctRecorder.h"
#include "vm/VM.h"

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gprof {

/// Which arc table implementation the monitor uses.
enum class ArcTableKind { Bsd, OpenAddressing, StdMap };

/// Monitor configuration.
struct MonitorOptions {
  /// Histogram bucket granularity in code addresses.  1 gives the
  /// retrospective's one-to-one PC↔bucket mapping; larger values give "a
  /// finer or coarser histogram" trading space for precision.
  uint64_t HistBucketSize = 1;
  /// Clock ticks per second of program time; pairs with the VM's
  /// CyclesPerTick to convert samples to seconds.
  uint64_t TicksPerSecond = 60;
  /// Arc table selection and sizing.  TosLimit bounds each *thread's*
  /// table: a per-thread budget, matching the per-thread ownership of the
  /// recorders themselves.
  ArcTableKind TableKind = ArcTableKind::Bsd;
  uint32_t FromsDensity = 1;
  uint32_t TosLimit = 1u << 20;
  /// Individual halves of the profiler can be disabled (bench E4 measures
  /// histogram-only vs full profiling overhead).
  bool RecordArcs = true;
  bool SampleHistogram = true;
  /// Opt-in calling-context-tree recording (tlrun --contexts): each
  /// thread additionally grows a CctRecorder fed by onCall/onReturn/
  /// onTick, and extract() carries the merged tree in
  /// ProfileData::Contexts.  Off by default — the CCT costs a shadow
  /// stack push/pop per call, which bench_tab_mcount_cost prices.
  bool RecordContexts = false;
  /// Per-thread context-node budget, like TosLimit for the arc tables.
  uint32_t CctNodeLimit = 1u << 20;
};

/// The profiling monitor.  Attach to a VM with VM::setHooks(&Monitor);
/// attach to several VMs on several threads to profile a concurrent
/// program — each thread's events land in that thread's private tables.
class Monitor : public ProfileHooks {
public:
  /// monstartup: sizes the data structures for text range
  /// [LowPc, HighPc).
  Monitor(Address LowPc, Address HighPc,
          MonitorOptions Opts = MonitorOptions());
  ~Monitor() override;

  // ProfileHooks implementation (the monitoring routine proper).  Safe to
  // call concurrently from any number of threads.
  void onCall(Address FromPc, Address SelfPc) override;
  void onTick(Address Pc) override;
  void onReturn(Address SelfPc) override;

  /// moncontrol: starts or stops data gathering on every registered (and
  /// future) thread.  While stopped, profiled routines still execute
  /// their prologue call but nothing is recorded (matching moncontrol(0)
  /// semantics: profiling off, program running).  The flag is a single
  /// atomic consulted by each thread on each event: a toggle made by a
  /// profiled thread takes effect on that thread immediately; a toggle
  /// made from outside reaches other threads at their next event (with
  /// external synchronization — e.g. the join before a snapshot —
  /// providing exactness when it matters).
  void control(bool Run) { Running.store(Run, std::memory_order_seq_cst); }
  bool isRunning() const {
    return Running.load(std::memory_order_relaxed);
  }

  /// Zeroes every registered thread's arc table and histogram (kernel
  /// interface "reset").  Threads stay registered and their recorders
  /// stay valid, so concurrent thread-local caches never dangle.  Call
  /// with profiled threads quiescent (joined, or paused with a
  /// happens-before edge) for an exact cut.
  void reset();

  /// Snapshots the current data without disturbing collection (kernel
  /// interface "extract"): folds every per-thread table through
  /// ProfileData::addArc, sums the per-thread histograms, and
  /// canonicalizes arc order.  No stop-the-world: threads keep recording
  /// into their own tables and new threads may register while the fold
  /// runs.  For an exact (and race-free) snapshot the profiled threads
  /// must be quiescent, as with reset().
  ProfileData extract() const;

  /// Condenses the final data, as done "as the profiled program exits".
  /// The monitor keeps collecting if execution continues afterwards.
  ProfileData finish() const { return extract(); }

  /// True if any thread's arc table overflowed and dropped arcs.
  bool arcTableOverflowed() const;

  /// True if any thread's context tree hit its node cap and dropped
  /// contexts (always false when RecordContexts is off).
  bool contextTreeOverflowed() const;

  /// Field-wise sum of every registered thread's context-tree statistics
  /// (all zero when RecordContexts is off).
  CctStats cctStats() const;

  /// Field-wise sum of every registered thread's arc-table statistics.
  /// Summing uint64 counters is commutative, so the result is
  /// deterministic whatever order threads registered in.
  ArcTableStats arcTableStats() const;

  /// Per-thread arc-table statistics in registration order (diagnostic;
  /// registration order depends on the thread schedule).
  std::vector<ArcTableStats> perThreadArcStats() const;

  /// Number of threads that have recorded at least one event.
  size_t registeredThreads() const;

  /// Publishes the runtime's counters — mcount probes/collisions/
  /// move-to-front hits, arc-table occupancy, histogram ticks, all summed
  /// across registered threads — to the process-wide telemetry registry
  /// under "runtime.*", plus "runtime.threads.registered" (the
  /// GPROF_TELEMETRY surface; see docs/TELEMETRY.md).
  void publishTelemetry() const;

  const MonitorOptions &options() const { return Opts; }

private:
  /// One thread's private slice of the data-gathering state.  Everything
  /// inside is owned exclusively by its thread between registration and
  /// the quiescent point before a snapshot; no member is atomic.
  struct ThreadState {
    std::unique_ptr<ArcRecorder> Arcs;
    Histogram Hist;
    uint64_t HistTicks = 0; ///< onTick deliveries recorded (exact).
    /// Calling-context tree, present only when Opts.RecordContexts.
    std::unique_ptr<CctRecorder> Cct;
  };

  std::unique_ptr<ArcRecorder> makeTable() const;

  /// Fast path: the calling thread's state via the thread-local cache.
  ThreadState &self();
  /// Slow path: registry lookup / creation under the mutex.
  ThreadState &registerThisThread();

  Address LowPc;
  Address HighPc;
  MonitorOptions Opts;
  /// Identifies this Monitor in the thread-local caches.  Allocated from
  /// a process-wide counter and never reused, so a cache entry from a
  /// destroyed Monitor can never alias a live one.
  const uint64_t MonitorId;
  std::atomic<bool> Running{true};

  /// Registry of per-thread states.  The mutex guards the containers
  /// only; the states' contents belong to their threads.
  mutable std::mutex RegistryMutex;
  std::vector<std::unique_ptr<ThreadState>> Threads;
  std::map<std::thread::id, ThreadState *> ByThread;

  static thread_local uint64_t CachedMonitorId;
  static thread_local ThreadState *CachedState;
};

} // namespace gprof

#endif // GPROF_RUNTIME_MONITOR_H
