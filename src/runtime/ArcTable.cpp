//===- runtime/ArcTable.cpp ------------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "runtime/ArcTable.h"

#include <cassert>

using namespace gprof;

ArcRecorder::~ArcRecorder() = default;

//===----------------------------------------------------------------------===//
// BsdArcTable
//===----------------------------------------------------------------------===//

BsdArcTable::BsdArcTable(Address LowPc, Address HighPc,
                         uint32_t FromsDensity, uint32_t TosLimit)
    : LowPc(LowPc), HighPc(HighPc), FromsDensity(FromsDensity),
      TosLimit(TosLimit) {
  assert(HighPc > LowPc && "empty text range");
  assert(FromsDensity != 0 && "zero froms density");
  size_t NumSlots =
      static_cast<size_t>((HighPc - LowPc + FromsDensity - 1) /
                          FromsDensity);
  Froms.assign(NumSlots, 0);
  Tos.reserve(256);
  Tos.push_back({0, 0, 0}); // Index 0 is the chain terminator.
}

void BsdArcTable::record(Address FromPc, Address SelfPc) {
  // The stats counters are plain members: this table is owned by a single
  // thread (Monitor registers one recorder per profiled thread), so each
  // bump is one non-atomic add, well under the relaxed-atomic budget the
  // telemetry layer allows (docs/TELEMETRY.md, docs/RUNTIME_MT.md).
  ++Counters.Records;
  if (Overflow) {
    ++Counters.Dropped;
    return; // "halt further profiling" once tos is exhausted.
  }

  if (FromPc < LowPc || FromPc >= HighPc) {
    // Spontaneous/external call site: keep it exactly.
    ++Counters.OutsideRange;
    ++Outside[{FromPc, SelfPc}];
    return;
  }

  size_t SlotIdx = static_cast<size_t>((FromPc - LowPc) / FromsDensity);
  uint32_t Head = Froms[SlotIdx];

  // "Since each call site typically calls only one callee, we can reduce
  // (usually to one) the number of minor lookups based on the callee."
  // A hit behind the head is moved to the front of its chain (the BSD
  // mcount trick), so a site that switches callees — a functional
  // parameter settling on one target — pays the chain walk once and then
  // resolves in a single compare again.
  uint32_t Prev = 0;
  for (uint32_t I = Head; I != 0; I = Tos[I].Link) {
    ++Counters.ChainProbes;
    if (Tos[I].SelfPc == SelfPc) {
      ++Tos[I].Count;
      if (Prev != 0) {
        ++Counters.Collisions;
        ++Counters.MoveToFront;
        Tos[Prev].Link = Tos[I].Link;
        Tos[I].Link = Head;
        Froms[SlotIdx] = I;
      }
      return;
    }
    Prev = I;
  }

  if (Tos.size() > TosLimit) {
    Overflow = true;
    ++Counters.Dropped;
    return;
  }
  if (Head != 0)
    ++Counters.Collisions;
  ++Counters.NewArcs;
  uint32_t NewIdx = static_cast<uint32_t>(Tos.size());
  Tos.push_back({SelfPc, 1, Head});
  Froms[SlotIdx] = NewIdx;
}

std::vector<ArcRecord> BsdArcTable::snapshot() const {
  std::vector<ArcRecord> Arcs;
  Arcs.reserve(Tos.size() - 1 + Outside.size());
  for (size_t SlotIdx = 0; SlotIdx != Froms.size(); ++SlotIdx) {
    // The reconstructed call site is the slot's base address; with
    // FromsDensity > 1 this merges neighbouring call sites, exactly as a
    // sub-unit hash fraction did in the original.
    Address FromPc = LowPc + static_cast<Address>(SlotIdx) * FromsDensity;
    for (uint32_t I = Froms[SlotIdx]; I != 0; I = Tos[I].Link)
      Arcs.push_back({FromPc, Tos[I].SelfPc, Tos[I].Count});
  }
  for (const auto &[Key, Count] : Outside)
    Arcs.push_back({Key.first, Key.second, Count});
  return Arcs;
}

void BsdArcTable::reset() {
  std::fill(Froms.begin(), Froms.end(), 0);
  Tos.clear();
  Tos.push_back({0, 0, 0});
  Outside.clear();
  Overflow = false;
  Counters = ArcTableStats();
}

ArcTableStats BsdArcTable::stats() const {
  ArcTableStats S = Counters;
  S.Entries = Tos.size() - 1 + Outside.size();
  S.SlotCapacity = Froms.size();
  for (uint32_t Head : Froms)
    if (Head != 0)
      ++S.SlotsUsed;
  return S;
}

size_t BsdArcTable::memoryBytes() const {
  return Froms.capacity() * sizeof(uint32_t) +
         Tos.capacity() * sizeof(TosEntry);
}

//===----------------------------------------------------------------------===//
// OpenAddressingArcTable
//===----------------------------------------------------------------------===//

OpenAddressingArcTable::OpenAddressingArcTable(size_t InitialCapacity) {
  size_t Cap = 16;
  while (Cap < InitialCapacity)
    Cap <<= 1;
  Slots.assign(Cap, Slot());
}

uint64_t OpenAddressingArcTable::hashPair(Address FromPc, Address SelfPc) {
  // SplitMix64-style finalizer over the combined pair.
  uint64_t H = FromPc * 0x9e3779b97f4a7c15ULL ^ SelfPc;
  H = (H ^ (H >> 30)) * 0xbf58476d1ce4e5b9ULL;
  H = (H ^ (H >> 27)) * 0x94d049bb133111ebULL;
  return H ^ (H >> 31);
}

void OpenAddressingArcTable::record(Address FromPc, Address SelfPc) {
  ++Counters.Records;
  size_t Mask = Slots.size() - 1;
  size_t Idx = static_cast<size_t>(hashPair(FromPc, SelfPc)) & Mask;
  bool First = true;
  while (true) {
    Slot &S = Slots[Idx];
    ++Counters.ChainProbes;
    if (S.Count == 0) {
      if (!First)
        ++Counters.Collisions;
      ++Counters.NewArcs;
      S.FromPc = FromPc;
      S.SelfPc = SelfPc;
      S.Count = 1;
      if (++Used * 4 > Slots.size() * 3)
        grow();
      return;
    }
    if (S.FromPc == FromPc && S.SelfPc == SelfPc) {
      if (!First)
        ++Counters.Collisions;
      ++S.Count;
      return;
    }
    First = false;
    Idx = (Idx + 1) & Mask;
  }
}

void OpenAddressingArcTable::grow() {
  std::vector<Slot> Old = std::move(Slots);
  Slots.assign(Old.size() * 2, Slot());
  Used = 0;
  size_t Mask = Slots.size() - 1;
  for (const Slot &S : Old) {
    if (S.Count == 0)
      continue;
    size_t Idx = static_cast<size_t>(hashPair(S.FromPc, S.SelfPc)) & Mask;
    while (Slots[Idx].Count != 0)
      Idx = (Idx + 1) & Mask;
    Slots[Idx] = S;
    ++Used;
  }
}

std::vector<ArcRecord> OpenAddressingArcTable::snapshot() const {
  std::vector<ArcRecord> Arcs;
  Arcs.reserve(Used);
  for (const Slot &S : Slots)
    if (S.Count != 0)
      Arcs.push_back({S.FromPc, S.SelfPc, S.Count});
  return Arcs;
}

void OpenAddressingArcTable::reset() {
  std::fill(Slots.begin(), Slots.end(), Slot());
  Used = 0;
  Counters = ArcTableStats();
}

ArcTableStats OpenAddressingArcTable::stats() const {
  ArcTableStats S = Counters;
  S.Entries = Used;
  S.SlotsUsed = Used;
  S.SlotCapacity = Slots.size();
  return S;
}

size_t OpenAddressingArcTable::memoryBytes() const {
  return Slots.capacity() * sizeof(Slot);
}

//===----------------------------------------------------------------------===//
// StdMapArcTable
//===----------------------------------------------------------------------===//

void StdMapArcTable::record(Address FromPc, Address SelfPc) {
  ++Counters.Records;
  auto [It, Inserted] = Counts.try_emplace({FromPc, SelfPc}, 0);
  if (Inserted)
    ++Counters.NewArcs;
  ++It->second;
}

std::vector<ArcRecord> StdMapArcTable::snapshot() const {
  std::vector<ArcRecord> Arcs;
  Arcs.reserve(Counts.size());
  for (const auto &[Key, Count] : Counts)
    Arcs.push_back({Key.first, Key.second, Count});
  return Arcs;
}

void StdMapArcTable::reset() {
  Counts.clear();
  Counters = ArcTableStats();
}

ArcTableStats StdMapArcTable::stats() const {
  ArcTableStats S = Counters;
  S.Entries = Counts.size();
  return S;
}
