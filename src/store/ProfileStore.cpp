//===- store/ProfileStore.cpp ---------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "store/ProfileStore.h"

#include "gmon/GmonFile.h"
#include "store/MergeEngine.h"
#include "support/BinaryStream.h"
#include "support/EventLog.h"
#include "support/FaultInjection.h"
#include "support/FileUtils.h"
#include "support/Format.h"
#include "support/MappedFile.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <chrono>
#include <thread>

using namespace gprof;

namespace {

constexpr char IndexMagic[4] = {'G', 'P', 'S', 'I'};
constexpr uint32_t IndexVersion = 1;

/// Cap on index record counts accepted from disk, guarding allocation
/// against a corrupted length field.
constexpr uint64_t MaxIndexRecords = 1ULL << 24;

bool isZeroDigest(const Sha256Digest &D) {
  return std::all_of(D.begin(), D.end(), [](uint8_t B) { return B == 0; });
}

bool digestLess(const ShardInfo &A, const ShardInfo &B) {
  return A.Digest < B.Digest;
}

} // namespace

Expected<ProfileStore> ProfileStore::open(const std::string &RootDir) {
  return open(RootDir, StoreOptions{});
}

Expected<ProfileStore> ProfileStore::open(const std::string &RootDir,
                                          const StoreOptions &Options) {
  ProfileStore Store;
  Store.Options = Options;
  Store.Root = RootDir;
  while (Store.Root.size() > 1 && Store.Root.back() == '/')
    Store.Root.pop_back();
  if (Store.Root.empty())
    return Error::failure("empty store path");
  for (const char *Sub : {"", "/objects", "/cache"})
    if (Error E = createDirectories(Store.Root + Sub))
      return E;
  if (Error E = Store.loadIndex())
    return E;
  return Store;
}

std::string ProfileStore::objectPath(const Sha256Digest &Digest) const {
  std::string Hex = digestToHex(Digest);
  return Root + "/objects/" + Hex.substr(0, 2) + "/" + Hex + ".gmon";
}

std::string ProfileStore::cachePath(const Sha256Digest &AggDigest) const {
  return Root + "/cache/" + digestToHex(AggDigest) + ".gmon";
}

const ShardInfo *ProfileStore::findShard(const Sha256Digest &Digest) const {
  auto It = std::lower_bound(Shards.begin(), Shards.end(),
                             ShardInfo{.Digest = Digest}, digestLess);
  if (It != Shards.end() && It->Digest == Digest)
    return &*It;
  return nullptr;
}

Error ProfileStore::loadIndex() {
  std::string Path = Root + "/index.bin";
  if (!fileExists(Path))
    return Error::success(); // Fresh store.
  // Parse straight out of the mapping; every record copies into Shards,
  // so the view only needs to live for the duration of this call.
  auto Map = MappedFile::open(Path);
  if (!Map)
    return Map.takeError();
  BinaryReader R(Map->data(), Map->size());

  auto Magic = R.readBytes(sizeof(IndexMagic));
  if (!Magic)
    return Magic.takeError();
  if (!std::equal(Magic->begin(), Magic->end(), IndexMagic))
    return Error::failure(Path + ": not a profile store index (bad magic)");
  auto Ver = R.readU32();
  if (!Ver)
    return Ver.takeError();
  if (*Ver != IndexVersion)
    return Error::failure(format("%s: unsupported index version %u "
                                 "(expected %u)",
                                 Path.c_str(), *Ver, IndexVersion));
  auto Count = R.readU64();
  if (!Count)
    return Count.takeError();
  if (*Count > MaxIndexRecords)
    return Error::failure(Path + ": index record count implausibly large");

  Shards.clear();
  Shards.reserve(static_cast<size_t>(*Count));
  for (uint64_t I = 0; I != *Count; ++I) {
    ShardInfo Info;
    auto Digest = R.readBytes(32);
    if (!Digest)
      return Digest.takeError();
    std::copy(Digest->begin(), Digest->end(), Info.Digest.begin());
    auto ImageId = R.readBytes(32);
    if (!ImageId)
      return ImageId.takeError();
    std::copy(ImageId->begin(), ImageId->end(), Info.ImageId.begin());
    auto ReadField = [&R](uint64_t &Out) -> Error {
      auto V = R.readU64();
      if (!V)
        return V.takeError();
      Out = *V;
      return Error::success();
    };
    for (uint64_t *Field : {&Info.Hz, &Info.LowPc, &Info.HighPc,
                            &Info.BucketSize, &Info.NumBuckets, &Info.NumArcs,
                            &Info.TotalSamples})
      if (Error E = ReadField(*Field))
        return E;
    auto Runs = R.readU32();
    if (!Runs)
      return Runs.takeError();
    Info.Runs = *Runs;
    Shards.push_back(Info);
  }
  if (!R.atEnd())
    return Error::failure(format("%s: %zu trailing bytes after index data",
                                 Path.c_str(), R.remaining()));
  std::sort(Shards.begin(), Shards.end(), digestLess);
  return Error::success();
}

Error ProfileStore::saveIndex() const {
  BinaryWriter W;
  W.writeBytes(reinterpret_cast<const uint8_t *>(IndexMagic),
               sizeof(IndexMagic));
  W.writeU32(IndexVersion);
  W.writeU64(Shards.size());
  for (const ShardInfo &Info : Shards) {
    W.writeBytes(Info.Digest.data(), Info.Digest.size());
    W.writeBytes(Info.ImageId.data(), Info.ImageId.size());
    for (uint64_t Field : {Info.Hz, Info.LowPc, Info.HighPc, Info.BucketSize,
                           Info.NumBuckets, Info.NumArcs, Info.TotalSamples})
      W.writeU64(Field);
    W.writeU32(Info.Runs);
  }
  // Write-then-rename so a crash mid-save never leaves a torn index.
  return retryIo(
      [&] { return writeFileBytesAtomic(Root + "/index.bin", W.bytes()); });
}

Error ProfileStore::retryIo(const std::function<Error()> &Op) const {
  unsigned BackoffMs = Options.RetryBackoffMs;
  for (unsigned Attempt = 0;; ++Attempt) {
    Error E = Op();
    if (!E || Attempt == Options.IoRetries)
      return E;
    // A gauge, not a counter: how often transient faults strike depends on
    // the environment, never on the data.
    telemetry::gauge("store.io.retries").add(1);
    if (BackoffMs != 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(BackoffMs));
    BackoffMs *= 2;
  }
}

Error ProfileStore::checkCompatibleWithStore(const ProfileData &Data,
                                             const Sha256Digest &ImageId,
                                             const std::string &Label) const {
  if (Shards.empty())
    return Error::success();
  if (Data.TicksPerSecond != Shards.front().Hz)
    return Error::failure(format(
        "cannot ingest '%s' into store '%s': sampling rates differ "
        "(%llu vs %llu ticks/sec)",
        Label.c_str(), Root.c_str(),
        static_cast<unsigned long long>(Data.TicksPerSecond),
        static_cast<unsigned long long>(Shards.front().Hz)));
  // Geometry is checked against the first shard that has a histogram: an
  // empty histogram (a run with arcs but no samples) is compatible with
  // anything, so an unsampled shard must not serve as the reference.
  const ShardInfo *Key = nullptr;
  for (const ShardInfo &S : Shards)
    if (S.NumBuckets != 0) {
      Key = &S;
      break;
    }
  if (Key && !Data.Hist.empty() &&
      (Data.Hist.lowPc() != Key->LowPc || Data.Hist.highPc() != Key->HighPc ||
       Data.Hist.bucketSize() != Key->BucketSize))
    return Error::failure(format(
        "cannot ingest '%s' into store '%s': histogram ranges differ "
        "([%llu,%llu)/%llu vs [%llu,%llu)/%llu)",
        Label.c_str(), Root.c_str(),
        static_cast<unsigned long long>(Data.Hist.lowPc()),
        static_cast<unsigned long long>(Data.Hist.highPc()),
        static_cast<unsigned long long>(Data.Hist.bucketSize()),
        static_cast<unsigned long long>(Key->LowPc),
        static_cast<unsigned long long>(Key->HighPc),
        static_cast<unsigned long long>(Key->BucketSize)));
  if (!isZeroDigest(ImageId)) {
    // Any shard that recorded an image identity pins the store to it.
    for (const ShardInfo &S : Shards)
      if (!isZeroDigest(S.ImageId) && S.ImageId != ImageId)
        return Error::failure(format(
            "cannot ingest '%s' into store '%s': profiled image %s does not "
            "match the store's image %s",
            Label.c_str(), Root.c_str(),
            digestToHex(ImageId).substr(0, 12).c_str(),
            digestToHex(S.ImageId).substr(0, 12).c_str()));
  }
  return Error::success();
}

Expected<Sha256Digest> ProfileStore::put(ProfileData Data,
                                         const Sha256Digest &ImageId,
                                         const std::string &Label) {
  static telemetry::DurationHistogram &Latency =
      telemetry::histogram("store.put.latency");
  telemetry::ScopedDuration Timer(Latency);
  if (Error E = fault::check("store.put", Label))
    return E;
  canonicalizeProfile(Data);
  // Single-writer section: compatibility check, dedup lookup, object
  // write, index insert, and the index.bin write-then-rename must not
  // interleave with another thread's put — two racing rewrites would each
  // persist an index missing the other's shard.
  std::lock_guard<std::mutex> Lock(*IngestMutex);
  if (Error E = checkCompatibleWithStore(Data, ImageId, Label))
    return E;

  std::vector<uint8_t> Bytes = writeGmon(Data);
  Sha256Digest Digest = Sha256::hash(Bytes);
  if (const ShardInfo *Existing = findShard(Digest)) {
    telemetry::counter("store.put.dedup_hits").add(1);
    return Existing->Digest; // Content-addressed: already ingested.
  }

  std::string Path = objectPath(Digest);
  if (Error E = createDirectories(Path.substr(0, Path.rfind('/'))))
    return E;
  // Atomic: a crash (or injected fault) mid-ingest must never leave a torn
  // object under a content-addressed name.
  if (Error E = retryIo([&] { return writeFileBytesAtomic(Path, Bytes); }))
    return E;
  telemetry::counter("store.put.ingested").add(1);
  telemetry::counter("store.put.bytes_written").add(Bytes.size());

  ShardInfo Info;
  Info.Digest = Digest;
  Info.ImageId = ImageId;
  Info.Hz = Data.TicksPerSecond;
  Info.LowPc = Data.Hist.lowPc();
  Info.HighPc = Data.Hist.highPc();
  Info.BucketSize = Data.Hist.bucketSize();
  Info.NumBuckets = Data.Hist.numBuckets();
  Info.NumArcs = Data.Arcs.size();
  Info.TotalSamples = Data.Hist.totalSamples();
  Info.Runs = Data.RunCount;
  Shards.insert(
      std::upper_bound(Shards.begin(), Shards.end(), Info, digestLess), Info);
  if (Error E = saveIndex())
    return E;
  return Digest;
}

Expected<Sha256Digest> ProfileStore::putFile(const std::string &GmonPath,
                                             const Sha256Digest &ImageId) {
  GmonReadOptions ReadOpts;
  ReadOpts.Tolerant = Options.TolerantReads;
  auto Data = readGmonFile(GmonPath, ReadOpts);
  if (!Data)
    return Data.takeError();
  return put(Data.takeValue(), ImageId, GmonPath);
}

std::vector<ShardInfo> ProfileStore::shardsSnapshot() const {
  std::lock_guard<std::mutex> Lock(*IngestMutex);
  return Shards;
}

Expected<ShardInfo> ProfileStore::resolve(const std::string &HexPrefix) const {
  if (HexPrefix.empty())
    return Error::failure("empty shard digest");
  std::lock_guard<std::mutex> Lock(*IngestMutex);
  const ShardInfo *Match = nullptr;
  for (const ShardInfo &S : Shards) {
    std::string Hex = digestToHex(S.Digest);
    if (Hex.compare(0, HexPrefix.size(), HexPrefix) == 0) {
      if (Match)
        return Error::failure(format("shard digest '%s' is ambiguous",
                                     HexPrefix.c_str()));
      Match = &S;
    }
  }
  if (!Match)
    return Error::failure(format("no shard matches digest '%s'",
                                 HexPrefix.c_str()));
  return *Match;
}

Expected<ProfileData>
ProfileStore::loadShard(const Sha256Digest &Digest) const {
  std::string Path = objectPath(Digest);
  // Hash and parse the object in place out of one mapping: the digest
  // check and the gmon decode both read the same view, no copy between.
  auto Map = MappedFile::open(Path);
  if (!Map)
    return Map.takeError();
  // The slot name promises the content; verify before trusting it.
  if (Sha256::hash(Map->data(), Map->size()) != Digest)
    return Error::failure(Path + ": object bytes do not match their digest");
  auto Data = readGmon(Map->data(), Map->size());
  if (!Data)
    return Error::failure(Path + ": " + Data.message());
  return Data;
}

Sha256Digest ProfileStore::aggregateDigest(std::vector<Sha256Digest> Members) {
  std::sort(Members.begin(), Members.end());
  Members.erase(std::unique(Members.begin(), Members.end()), Members.end());
  Sha256 H;
  // Domain-separate aggregate keys from shard content digests.
  const char Tag[4] = {'G', 'A', 'G', 'G'};
  H.update(reinterpret_cast<const uint8_t *>(Tag), sizeof(Tag));
  for (const Sha256Digest &D : Members)
    H.update(D.data(), D.size());
  return H.finish();
}

Expected<ProfileStore::MergeResult>
ProfileStore::merge(std::vector<Sha256Digest> Members, ThreadPool *Pool) {
  static telemetry::DurationHistogram &Latency =
      telemetry::histogram("store.merge.latency");
  telemetry::ScopedDuration Timer(Latency);
  if (Error E = fault::check("store.merge", Root))
    return E;
  {
    // Index reads race with concurrent put() in the daemon; the heavy
    // merge below runs outside the lock over immutable object files.
    std::lock_guard<std::mutex> Lock(*IngestMutex);
    if (Members.empty())
      for (const ShardInfo &S : Shards)
        Members.push_back(S.Digest);
    if (Members.empty())
      return Error::failure(format("store '%s' is empty", Root.c_str()));
    std::sort(Members.begin(), Members.end());
    Members.erase(std::unique(Members.begin(), Members.end()), Members.end());
    for (const Sha256Digest &D : Members)
      if (!findShard(D))
        return Error::failure(format("no shard %s in store '%s'",
                                     digestToHex(D).substr(0, 12).c_str(),
                                     Root.c_str()));
  }

  MergeResult Result;
  Result.Digest = aggregateDigest(Members);
  Result.MemberCount = Members.size();

  // Cache traffic depends on what previous commands left on disk, so the
  // hit/miss tallies are gauges (docs/TELEMETRY.md); the CLI reports them
  // per command via MergeResult::CacheHit.  Register both up front so a
  // --stats dump always shows the pair, zero or not.
  telemetry::Metric &CacheHits = telemetry::gauge("store.merge.cache_hits");
  telemetry::Metric &CacheMisses =
      telemetry::gauge("store.merge.cache_misses");
  std::string Cached = cachePath(Result.Digest);
  if (fileExists(Cached)) {
    auto Data = readGmonFile(Cached);
    if (Data) {
      CacheHits.add(1);
      Result.Data = Data.takeValue();
      Result.CacheHit = true;
      return Result;
    }
    // A damaged cache entry is not an error — recompute below.
    (void)Data.takeError();
  }
  CacheMisses.add(1);

  std::vector<ProfileData> Inputs;
  Inputs.reserve(Members.size());
  for (const Sha256Digest &D : Members) {
    auto Data = loadShard(D);
    if (!Data)
      return Data.takeError();
    Inputs.push_back(Data.takeValue());
  }
  telemetry::counter("store.merge.shards_loaded").add(Inputs.size());
  auto Merged = mergeProfiles(Inputs, Pool);
  if (!Merged)
    return Merged.takeError();
  Result.Data = Merged.takeValue();
  std::vector<uint8_t> CacheBytes = writeGmon(Result.Data);
  // Atomic: readers race with cache population, and a torn cache entry
  // under the aggregate key would be served as a (corrupt) hit.
  if (Error E =
          retryIo([&] { return writeFileBytesAtomic(Cached, CacheBytes); }))
    return E;
  telemetry::counter("store.merge.bytes_written").add(CacheBytes.size());
  return Result;
}

namespace {

bool hasTmpSuffix(const std::string &Name) {
  return Name.size() > 4 && Name.compare(Name.size() - 4, 4, ".tmp") == 0;
}

} // namespace

Expected<GcStats> ProfileStore::gc() {
  if (Error E = fault::check("store.gc", Root))
    return E;
  // Sweeps consult the index (findShard) and delete files concurrent
  // put() may be about to name; hold the ingest lock for the whole sweep.
  std::lock_guard<std::mutex> Lock(*IngestMutex);
  GcStats Stats;
  // Stale .tmp files are the residue of writes interrupted before their
  // rename; atomic writers leave them only on a crash or injected fault.
  if (fileExists(Root + "/index.bin.tmp")) {
    if (Error E = removeFile(Root + "/index.bin.tmp"))
      return E;
    ++Stats.TempFiles;
  }
  auto CacheEntries = listDirectory(Root + "/cache");
  if (!CacheEntries)
    return CacheEntries.takeError();
  for (const std::string &Name : *CacheEntries) {
    if (Error E = removeFile(Root + "/cache/" + Name))
      return E;
    if (hasTmpSuffix(Name))
      ++Stats.TempFiles;
    else
      ++Stats.CachedAggregates;
  }

  auto Fans = listDirectory(Root + "/objects");
  if (!Fans)
    return Fans.takeError();
  for (const std::string &Fan : *Fans) {
    std::string FanDir = Root + "/objects/" + Fan;
    auto Objects = listDirectory(FanDir);
    if (!Objects)
      return Objects.takeError();
    for (const std::string &Name : *Objects) {
      std::string Stem = Name;
      if (Stem.size() > 5 && Stem.compare(Stem.size() - 5, 5, ".gmon") == 0)
        Stem.resize(Stem.size() - 5);
      auto Digest = digestFromHex(Stem);
      if (Digest && findShard(*Digest))
        continue;
      if (Error E = removeFile(FanDir + "/" + Name))
        return E;
      if (hasTmpSuffix(Name))
        ++Stats.TempFiles;
      else
        ++Stats.OrphanObjects;
    }
  }
  telemetry::counter("store.gc.cache_files").add(Stats.CachedAggregates);
  telemetry::counter("store.gc.orphan_objects").add(Stats.OrphanObjects);
  telemetry::counter("store.gc.temp_files").add(Stats.TempFiles);
  EventLog::instance().emit(
      "gc.sweep", jsonIntField("cached", Stats.CachedAggregates) + ", " +
                      jsonIntField("orphans", Stats.OrphanObjects) + ", " +
                      jsonIntField("temp", Stats.TempFiles));
  return Stats;
}
