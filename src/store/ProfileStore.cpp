//===- store/ProfileStore.cpp ---------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "store/ProfileStore.h"

#include "gmon/GmonFile.h"
#include "store/MergeEngine.h"
#include "support/BinaryStream.h"
#include "support/EventLog.h"
#include "support/FaultInjection.h"
#include "support/FileUtils.h"
#include "support/Format.h"
#include "support/MappedFile.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <chrono>
#include <thread>

using namespace gprof;

namespace {

constexpr char IndexMagic[4] = {'G', 'P', 'S', 'I'};
/// v1: flat shard records.  v2 appends a capture timestamp per shard and
/// the compacted-run manifests (docs/FORMATS.md); v1 indexes still load,
/// reading back zero capture times and no runs.
constexpr uint32_t IndexVersion = 2;
constexpr uint32_t IndexVersionV1 = 1;

/// Cap on index record counts accepted from disk, guarding allocation
/// against a corrupted length field.
constexpr uint64_t MaxIndexRecords = 1ULL << 24;

bool isZeroDigest(const Sha256Digest &D) {
  return std::all_of(D.begin(), D.end(), [](uint8_t B) { return B == 0; });
}

bool digestLess(const ShardInfo &A, const ShardInfo &B) {
  return A.Digest < B.Digest;
}

bool runDigestLess(const RunInfo &A, const RunInfo &B) {
  return A.Digest < B.Digest;
}

/// Wall-clock now in nanoseconds since the epoch — capture times order
/// shards across processes and machines, so steady_clock is no use here.
uint64_t wallClockNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

void discardError(Error E) {
  if (E)
    (void)E.message();
}

} // namespace

Expected<ProfileStore> ProfileStore::open(const std::string &RootDir) {
  return open(RootDir, StoreOptions{});
}

Expected<ProfileStore> ProfileStore::open(const std::string &RootDir,
                                          const StoreOptions &Options) {
  ProfileStore Store;
  Store.Options = Options;
  Store.Root = RootDir;
  while (Store.Root.size() > 1 && Store.Root.back() == '/')
    Store.Root.pop_back();
  if (Store.Root.empty())
    return Error::failure("empty store path");
  for (const char *Sub : {"", "/objects", "/cache", "/runs"})
    if (Error E = createDirectories(Store.Root + Sub))
      return E;
  if (Error E = Store.loadIndex())
    return E;
  return Store;
}

std::string ProfileStore::objectPath(const Sha256Digest &Digest) const {
  std::string Hex = digestToHex(Digest);
  return Root + "/objects/" + Hex.substr(0, 2) + "/" + Hex + ".gmon";
}

std::string ProfileStore::runPath(const Sha256Digest &Digest) const {
  return Root + "/runs/" + digestToHex(Digest) + ".gmon";
}

std::string ProfileStore::cachePath(const Sha256Digest &AggDigest) const {
  return Root + "/cache/" + digestToHex(AggDigest) + ".gmon";
}

const ShardInfo *ProfileStore::findShard(const Sha256Digest &Digest) const {
  auto It = std::lower_bound(Shards.begin(), Shards.end(),
                             ShardInfo{.Digest = Digest}, digestLess);
  if (It != Shards.end() && It->Digest == Digest)
    return &*It;
  return nullptr;
}

const RunInfo *ProfileStore::findRun(const Sha256Digest &Digest) const {
  auto It = std::lower_bound(Runs.begin(), Runs.end(),
                             RunInfo{.Digest = Digest}, runDigestLess);
  if (It != Runs.end() && It->Digest == Digest)
    return &*It;
  return nullptr;
}

Error ProfileStore::loadIndex() {
  std::string Path = Root + "/index.bin";
  if (!fileExists(Path))
    return Error::success(); // Fresh store.
  // Parse straight out of the mapping; every record copies into Shards,
  // so the view only needs to live for the duration of this call.
  auto Map = MappedFile::open(Path);
  if (!Map)
    return Map.takeError();
  BinaryReader R(Map->data(), Map->size());

  auto Magic = R.readBytes(sizeof(IndexMagic));
  if (!Magic)
    return Magic.takeError();
  if (!std::equal(Magic->begin(), Magic->end(), IndexMagic))
    return Error::failure(Path + ": not a profile store index (bad magic)");
  auto Ver = R.readU32();
  if (!Ver)
    return Ver.takeError();
  if (*Ver != IndexVersion && *Ver != IndexVersionV1)
    return Error::failure(format("%s: unsupported index version %u "
                                 "(expected %u)",
                                 Path.c_str(), *Ver, IndexVersion));
  auto Count = R.readU64();
  if (!Count)
    return Count.takeError();
  if (*Count > MaxIndexRecords)
    return Error::failure(Path + ": index record count implausibly large");

  auto ReadDigest = [&R](Sha256Digest &Out) -> Error {
    auto Bytes = R.readBytes(32);
    if (!Bytes)
      return Bytes.takeError();
    std::copy(Bytes->begin(), Bytes->end(), Out.begin());
    return Error::success();
  };

  Shards.clear();
  Shards.reserve(static_cast<size_t>(*Count));
  for (uint64_t I = 0; I != *Count; ++I) {
    ShardInfo Info;
    if (Error E = ReadDigest(Info.Digest))
      return E;
    if (Error E = ReadDigest(Info.ImageId))
      return E;
    auto ReadField = [&R](uint64_t &Out) -> Error {
      auto V = R.readU64();
      if (!V)
        return V.takeError();
      Out = *V;
      return Error::success();
    };
    for (uint64_t *Field : {&Info.Hz, &Info.LowPc, &Info.HighPc,
                            &Info.BucketSize, &Info.NumBuckets, &Info.NumArcs,
                            &Info.TotalSamples})
      if (Error E = ReadField(*Field))
        return E;
    auto Runs32 = R.readU32();
    if (!Runs32)
      return Runs32.takeError();
    Info.Runs = *Runs32;
    if (*Ver >= 2) {
      if (Error E = ReadField(Info.CaptureTimeNs))
        return E;
    }
    Shards.push_back(Info);
  }
  std::sort(Shards.begin(), Shards.end(), digestLess);

  Runs.clear();
  if (*Ver >= 2) {
    auto RunCount = R.readU64();
    if (!RunCount)
      return RunCount.takeError();
    if (*RunCount > MaxIndexRecords)
      return Error::failure(Path + ": run manifest count implausibly large");
    Runs.reserve(static_cast<size_t>(*RunCount));
    for (uint64_t I = 0; I != *RunCount; ++I) {
      RunInfo Run;
      if (Error E = ReadDigest(Run.Digest))
        return E;
      auto Level = R.readU32();
      if (!Level)
        return Level.takeError();
      Run.Level = *Level;
      auto ReadU64 = [&R](uint64_t &Out) -> Error {
        auto V = R.readU64();
        if (!V)
          return V.takeError();
        Out = *V;
        return Error::success();
      };
      if (Error E = ReadU64(Run.MinTimeNs))
        return E;
      if (Error E = ReadU64(Run.MaxTimeNs))
        return E;
      auto Members = R.readU64();
      if (!Members)
        return Members.takeError();
      if (*Members > MaxIndexRecords)
        return Error::failure(Path + ": run member count implausibly large");
      Run.Members.reserve(static_cast<size_t>(*Members));
      for (uint64_t M = 0; M != *Members; ++M) {
        Sha256Digest D;
        if (Error E = ReadDigest(D))
          return E;
        Run.Members.push_back(D);
      }
      std::sort(Run.Members.begin(), Run.Members.end());
      // The index is written as a whole, atomically, so a manifest naming
      // a shard the same index dropped is corruption, not a torn write.
      for (const Sha256Digest &D : Run.Members)
        if (!findShard(D))
          return Error::failure(
              format("%s: run %s names shard %s not in the index",
                     Path.c_str(),
                     digestToHex(Run.Digest).substr(0, 12).c_str(),
                     digestToHex(D).substr(0, 12).c_str()));
      Runs.push_back(std::move(Run));
    }
    std::sort(Runs.begin(), Runs.end(), runDigestLess);
  }
  if (!R.atEnd())
    return Error::failure(format("%s: %zu trailing bytes after index data",
                                 Path.c_str(), R.remaining()));
  return Error::success();
}

Error ProfileStore::saveIndex() const {
  BinaryWriter W;
  W.writeBytes(reinterpret_cast<const uint8_t *>(IndexMagic),
               sizeof(IndexMagic));
  W.writeU32(IndexVersion);
  W.writeU64(Shards.size());
  for (const ShardInfo &Info : Shards) {
    W.writeBytes(Info.Digest.data(), Info.Digest.size());
    W.writeBytes(Info.ImageId.data(), Info.ImageId.size());
    for (uint64_t Field : {Info.Hz, Info.LowPc, Info.HighPc, Info.BucketSize,
                           Info.NumBuckets, Info.NumArcs, Info.TotalSamples})
      W.writeU64(Field);
    W.writeU32(Info.Runs);
    W.writeU64(Info.CaptureTimeNs);
  }
  W.writeU64(Runs.size());
  for (const RunInfo &Run : Runs) {
    W.writeBytes(Run.Digest.data(), Run.Digest.size());
    W.writeU32(Run.Level);
    W.writeU64(Run.MinTimeNs);
    W.writeU64(Run.MaxTimeNs);
    W.writeU64(Run.Members.size());
    for (const Sha256Digest &D : Run.Members)
      W.writeBytes(D.data(), D.size());
  }
  // Write-then-rename so a crash mid-save never leaves a torn index.
  return retryIo(
      [&] { return writeFileBytesAtomic(Root + "/index.bin", W.bytes()); });
}

Error ProfileStore::retryIo(const std::function<Error()> &Op) const {
  unsigned BackoffMs = Options.RetryBackoffMs;
  for (unsigned Attempt = 0;; ++Attempt) {
    Error E = Op();
    if (!E || Attempt == Options.IoRetries)
      return E;
    // A gauge, not a counter: how often transient faults strike depends on
    // the environment, never on the data.
    telemetry::gauge("store.io.retries").add(1);
    if (BackoffMs != 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(BackoffMs));
    BackoffMs *= 2;
  }
}

Error ProfileStore::checkCompatibleWithStore(const ProfileData &Data,
                                             const Sha256Digest &ImageId,
                                             const std::string &Label) const {
  if (Shards.empty())
    return Error::success();
  if (Data.TicksPerSecond != Shards.front().Hz)
    return Error::failure(format(
        "cannot ingest '%s' into store '%s': sampling rates differ "
        "(%llu vs %llu ticks/sec)",
        Label.c_str(), Root.c_str(),
        static_cast<unsigned long long>(Data.TicksPerSecond),
        static_cast<unsigned long long>(Shards.front().Hz)));
  // Geometry is checked against the first shard that has a histogram: an
  // empty histogram (a run with arcs but no samples) is compatible with
  // anything, so an unsampled shard must not serve as the reference.
  const ShardInfo *Key = nullptr;
  for (const ShardInfo &S : Shards)
    if (S.NumBuckets != 0) {
      Key = &S;
      break;
    }
  if (Key && !Data.Hist.empty() &&
      (Data.Hist.lowPc() != Key->LowPc || Data.Hist.highPc() != Key->HighPc ||
       Data.Hist.bucketSize() != Key->BucketSize))
    return Error::failure(format(
        "cannot ingest '%s' into store '%s': histogram ranges differ "
        "([%llu,%llu)/%llu vs [%llu,%llu)/%llu)",
        Label.c_str(), Root.c_str(),
        static_cast<unsigned long long>(Data.Hist.lowPc()),
        static_cast<unsigned long long>(Data.Hist.highPc()),
        static_cast<unsigned long long>(Data.Hist.bucketSize()),
        static_cast<unsigned long long>(Key->LowPc),
        static_cast<unsigned long long>(Key->HighPc),
        static_cast<unsigned long long>(Key->BucketSize)));
  if (!isZeroDigest(ImageId)) {
    // Any shard that recorded an image identity pins the store to it.
    for (const ShardInfo &S : Shards)
      if (!isZeroDigest(S.ImageId) && S.ImageId != ImageId)
        return Error::failure(format(
            "cannot ingest '%s' into store '%s': profiled image %s does not "
            "match the store's image %s",
            Label.c_str(), Root.c_str(),
            digestToHex(ImageId).substr(0, 12).c_str(),
            digestToHex(S.ImageId).substr(0, 12).c_str()));
  }
  return Error::success();
}

Expected<Sha256Digest> ProfileStore::put(ProfileData Data,
                                         const Sha256Digest &ImageId,
                                         const std::string &Label,
                                         uint64_t CaptureTimeNs) {
  static telemetry::DurationHistogram &Latency =
      telemetry::histogram("store.put.latency");
  telemetry::ScopedDuration Timer(Latency);
  if (Error E = fault::check("store.put", Label))
    return E;
  canonicalizeProfile(Data);
  // Single-writer section: compatibility check, dedup lookup, object
  // write, index insert, and the index.bin write-then-rename must not
  // interleave with another thread's put — two racing rewrites would each
  // persist an index missing the other's shard.
  std::lock_guard<std::mutex> Lock(*IngestMutex);
  if (Error E = checkCompatibleWithStore(Data, ImageId, Label))
    return E;

  std::vector<uint8_t> Bytes = writeGmon(Data);
  Sha256Digest Digest = Sha256::hash(Bytes);
  if (const ShardInfo *Existing = findShard(Digest)) {
    telemetry::counter("store.put.dedup_hits").add(1);
    return Existing->Digest; // Content-addressed: already ingested.
  }

  std::string Path = objectPath(Digest);
  if (Error E = createDirectories(Path.substr(0, Path.rfind('/'))))
    return E;
  // Atomic: a crash (or injected fault) mid-ingest must never leave a torn
  // object under a content-addressed name.
  if (Error E = retryIo([&] { return writeFileBytesAtomic(Path, Bytes); }))
    return E;
  telemetry::counter("store.put.ingested").add(1);
  telemetry::counter("store.put.bytes_written").add(Bytes.size());

  ShardInfo Info;
  Info.Digest = Digest;
  Info.ImageId = ImageId;
  Info.Hz = Data.TicksPerSecond;
  Info.LowPc = Data.Hist.lowPc();
  Info.HighPc = Data.Hist.highPc();
  Info.BucketSize = Data.Hist.bucketSize();
  Info.NumBuckets = Data.Hist.numBuckets();
  Info.NumArcs = Data.Arcs.size();
  Info.TotalSamples = Data.Hist.totalSamples();
  Info.Runs = Data.RunCount;
  Info.CaptureTimeNs = CaptureTimeNs != 0 ? CaptureTimeNs : wallClockNs();
  Shards.insert(
      std::upper_bound(Shards.begin(), Shards.end(), Info, digestLess), Info);
  if (Error E = saveIndex())
    return E;
  return Digest;
}

Expected<Sha256Digest> ProfileStore::putFile(const std::string &GmonPath,
                                             const Sha256Digest &ImageId,
                                             uint64_t CaptureTimeNs) {
  GmonReadOptions ReadOpts;
  ReadOpts.Tolerant = Options.TolerantReads;
  auto Data = readGmonFile(GmonPath, ReadOpts);
  if (!Data)
    return Data.takeError();
  return put(Data.takeValue(), ImageId, GmonPath, CaptureTimeNs);
}

std::vector<ShardInfo> ProfileStore::shardsSnapshot() const {
  std::lock_guard<std::mutex> Lock(*IngestMutex);
  return Shards;
}

std::vector<RunInfo> ProfileStore::runsSnapshot() const {
  std::lock_guard<std::mutex> Lock(*IngestMutex);
  return Runs;
}

Expected<ShardInfo> ProfileStore::resolve(const std::string &HexPrefix) const {
  if (HexPrefix.empty())
    return Error::failure("empty shard digest");
  std::lock_guard<std::mutex> Lock(*IngestMutex);
  const ShardInfo *Match = nullptr;
  for (const ShardInfo &S : Shards) {
    std::string Hex = digestToHex(S.Digest);
    if (Hex.compare(0, HexPrefix.size(), HexPrefix) == 0) {
      if (Match)
        return Error::failure(format("shard digest '%s' is ambiguous",
                                     HexPrefix.c_str()));
      Match = &S;
    }
  }
  if (!Match)
    return Error::failure(format("no shard matches digest '%s'",
                                 HexPrefix.c_str()));
  return *Match;
}

Expected<ProfileData>
ProfileStore::loadShard(const Sha256Digest &Digest) const {
  std::string Path = objectPath(Digest);
  // Hash and parse the object in place out of one mapping: the digest
  // check and the gmon decode both read the same view, no copy between.
  auto Map = MappedFile::open(Path);
  if (!Map)
    return Map.takeError();
  // The slot name promises the content; verify before trusting it.
  if (Sha256::hash(Map->data(), Map->size()) != Digest)
    return Error::failure(Path + ": object bytes do not match their digest");
  auto Data = readGmon(Map->data(), Map->size());
  if (!Data)
    return Error::failure(Path + ": " + Data.message());
  return Data;
}

Expected<ProfileData> ProfileStore::loadRun(const Sha256Digest &Digest) const {
  // Runs are keyed by member set (like cache entries), not by content, so
  // the gmon parse is the integrity check here; a damaged run fails it
  // and merge() falls back to the member objects.
  std::string Path = runPath(Digest);
  auto Map = MappedFile::open(Path);
  if (!Map)
    return Map.takeError();
  auto Data = readGmon(Map->data(), Map->size());
  if (!Data)
    return Error::failure(Path + ": " + Data.message());
  return Data;
}

Sha256Digest
ProfileStore::aggregateDigest(const std::vector<Sha256Digest> &Members) {
  // Hot path of every cache probe: sort a local index over the caller's
  // vector instead of copying 32 bytes per member.
  std::vector<const Sha256Digest *> Order;
  Order.reserve(Members.size());
  for (const Sha256Digest &D : Members)
    Order.push_back(&D);
  std::sort(Order.begin(), Order.end(),
            [](const Sha256Digest *A, const Sha256Digest *B) {
              return *A < *B;
            });
  Order.erase(std::unique(Order.begin(), Order.end(),
                          [](const Sha256Digest *A, const Sha256Digest *B) {
                            return *A == *B;
                          }),
              Order.end());
  Sha256 H;
  // Domain-separate aggregate keys from shard content digests.
  const char Tag[4] = {'G', 'A', 'G', 'G'};
  H.update(reinterpret_cast<const uint8_t *>(Tag), sizeof(Tag));
  for (const Sha256Digest *D : Order)
    H.update(D->data(), D->size());
  return H.finish();
}

std::vector<Sha256Digest>
ProfileStore::membersInWindow(uint64_t SinceNs, uint64_t UntilNs) const {
  std::lock_guard<std::mutex> Lock(*IngestMutex);
  std::vector<Sha256Digest> Out;
  for (const ShardInfo &S : Shards)
    if (S.CaptureTimeNs >= SinceNs &&
        (UntilNs == 0 || S.CaptureTimeNs <= UntilNs))
      Out.push_back(S.Digest);
  return Out;
}

Expected<ProfileStore::MergeResult>
ProfileStore::merge(std::vector<Sha256Digest> Members, ThreadPool *Pool) {
  static telemetry::DurationHistogram &Latency =
      telemetry::histogram("store.merge.latency");
  telemetry::ScopedDuration Timer(Latency);
  if (Error E = fault::check("store.merge", Root))
    return E;

  /// A run selected to substitute for its members; the member list rides
  /// along so a damaged run file can fall back to the raw objects.
  struct RunSel {
    Sha256Digest Digest;
    std::vector<Sha256Digest> Members;
  };
  std::vector<RunSel> SelectedRuns;
  std::vector<Sha256Digest> Loose;
  {
    // Index reads race with concurrent put() in the daemon; the heavy
    // merge below runs outside the lock over immutable object files.
    std::lock_guard<std::mutex> Lock(*IngestMutex);
    if (Members.empty())
      for (const ShardInfo &S : Shards)
        Members.push_back(S.Digest);
    if (Members.empty())
      return Error::failure(format("store '%s' is empty", Root.c_str()));
    std::sort(Members.begin(), Members.end());
    Members.erase(std::unique(Members.begin(), Members.end()), Members.end());
    for (const Sha256Digest &D : Members)
      if (!findShard(D))
        return Error::failure(format("no shard %s in store '%s'",
                                     digestToHex(D).substr(0, 12).c_str(),
                                     Root.c_str()));

    // Tiered lookup: substitute every run whose member set the request
    // covers, preferring high levels (one level-L run replaces Fanout^L
    // members).  Live runs have disjoint member sets, but the Covered
    // mask keeps the substitution sound even if that invariant were ever
    // violated on disk.
    std::vector<const RunInfo *> Candidates;
    Candidates.reserve(Runs.size());
    for (const RunInfo &R : Runs)
      Candidates.push_back(&R);
    std::sort(Candidates.begin(), Candidates.end(),
              [](const RunInfo *A, const RunInfo *B) {
                if (A->Level != B->Level)
                  return A->Level > B->Level;
                return A->Digest < B->Digest;
              });
    std::vector<uint8_t> Covered(Members.size(), 0);
    for (const RunInfo *R : Candidates) {
      if (R->Members.size() > Members.size())
        continue;
      bool Usable = true;
      std::vector<size_t> Hits;
      Hits.reserve(R->Members.size());
      for (const Sha256Digest &D : R->Members) {
        auto It = std::lower_bound(Members.begin(), Members.end(), D);
        if (It == Members.end() || *It != D ||
            Covered[static_cast<size_t>(It - Members.begin())]) {
          Usable = false;
          break;
        }
        Hits.push_back(static_cast<size_t>(It - Members.begin()));
      }
      if (!Usable)
        continue;
      for (size_t I : Hits)
        Covered[I] = 1;
      SelectedRuns.push_back({R->Digest, R->Members});
    }
    for (size_t I = 0; I != Members.size(); ++I)
      if (!Covered[I])
        Loose.push_back(Members[I]);
  }

  MergeResult Result;
  Result.Digest = aggregateDigest(Members);
  Result.MemberCount = Members.size();

  // Cache traffic depends on what previous commands left on disk, so the
  // hit/miss tallies are gauges (docs/TELEMETRY.md); the CLI reports them
  // per command via MergeResult::CacheHit.  Register both up front so a
  // --stats dump always shows the pair, zero or not.
  telemetry::Metric &CacheHits = telemetry::gauge("store.merge.cache_hits");
  telemetry::Metric &CacheMisses =
      telemetry::gauge("store.merge.cache_misses");
  std::string Cached = cachePath(Result.Digest);
  if (fileExists(Cached)) {
    auto Data = readGmonFile(Cached);
    if (Data) {
      CacheHits.add(1);
      Result.Data = Data.takeValue();
      Result.CacheHit = true;
      return Result;
    }
    // A damaged cache entry is recomputed below — but evict it *now*: if
    // the recompute errors out before its atomic rename replaces the
    // file, a lingering torn entry would fail every subsequent query.
    (void)Data.takeError();
    telemetry::counter("store.merge.cache_evictions").add(1);
    if (Error E = removeFile(Cached))
      return E;
  }
  CacheMisses.add(1);

  // Load the selected runs first, then the loose members they left over.
  // A run that fails to load costs speed, not correctness: its members
  // rejoin the loose list and merge from the raw objects.
  std::vector<ProfileData> Inputs;
  Inputs.reserve(SelectedRuns.size() + Loose.size());
  size_t RunsUsed = 0;
  for (const RunSel &R : SelectedRuns) {
    auto Data = loadRun(R.Digest);
    if (!Data) {
      (void)Data.takeError();
      telemetry::gauge("store.merge.run_fallbacks").add(1);
      Loose.insert(Loose.end(), R.Members.begin(), R.Members.end());
      continue;
    }
    Inputs.push_back(Data.takeValue());
    ++RunsUsed;
  }
  std::sort(Loose.begin(), Loose.end());
  for (const Sha256Digest &D : Loose) {
    auto Data = loadShard(D);
    if (!Data)
      return Data.takeError();
    Inputs.push_back(Data.takeValue());
  }
  Result.InputsMerged = Inputs.size();
  Result.RunsUsed = RunsUsed;
  // Gauges: how much of the request compaction had pre-folded depends on
  // when the background pass last ran, not on the data alone.
  telemetry::gauge("store.merge.runs_used").add(RunsUsed);
  telemetry::gauge("store.merge.loose_shards").add(Loose.size());
  telemetry::counter("store.merge.shards_loaded").add(Inputs.size());
  auto Merged = mergeProfiles(Inputs, Pool);
  if (!Merged)
    return Merged.takeError();
  Result.Data = Merged.takeValue();
  std::vector<uint8_t> CacheBytes = writeGmon(Result.Data);
  // Atomic: readers race with cache population, and a torn cache entry
  // under the aggregate key would be served as a (corrupt) hit.
  if (Error E =
          retryIo([&] { return writeFileBytesAtomic(Cached, CacheBytes); }))
    return E;
  telemetry::counter("store.merge.bytes_written").add(CacheBytes.size());
  return Result;
}

bool ProfileStore::planCompaction(CompactionPlan &Plan) const {
  const unsigned Fanout = std::max(2u, Options.CompactionFanout);

  // Level 0: shards no live run covers yet.  Oldest first, so runs cover
  // contiguous capture windows and retention can retire whole runs.
  std::vector<Sha256Digest> CoveredDigests;
  for (const RunInfo &R : Runs)
    CoveredDigests.insert(CoveredDigests.end(), R.Members.begin(),
                          R.Members.end());
  std::sort(CoveredDigests.begin(), CoveredDigests.end());
  std::vector<const ShardInfo *> Uncovered;
  for (const ShardInfo &S : Shards)
    if (!std::binary_search(CoveredDigests.begin(), CoveredDigests.end(),
                            S.Digest))
      Uncovered.push_back(&S);
  if (Uncovered.size() >= Fanout) {
    std::sort(Uncovered.begin(), Uncovered.end(),
              [](const ShardInfo *A, const ShardInfo *B) {
                if (A->CaptureTimeNs != B->CaptureTimeNs)
                  return A->CaptureTimeNs < B->CaptureTimeNs;
                return A->Digest < B->Digest;
              });
    Plan = CompactionPlan();
    Plan.OutLevel = 1;
    Plan.MinTimeNs = UINT64_MAX;
    for (unsigned I = 0; I != Fanout; ++I) {
      const ShardInfo *S = Uncovered[I];
      Plan.SourceShards.push_back(S->Digest);
      Plan.Members.push_back(S->Digest);
      Plan.MinTimeNs = std::min(Plan.MinTimeNs, S->CaptureTimeNs);
      Plan.MaxTimeNs = std::max(Plan.MaxTimeNs, S->CaptureTimeNs);
    }
    std::sort(Plan.Members.begin(), Plan.Members.end());
    return true;
  }

  // Higher tiers: Fanout runs of one level fold into the level above,
  // lowest level first so the tree fills bottom-up.
  uint32_t MaxLevel = 0;
  for (const RunInfo &R : Runs)
    MaxLevel = std::max(MaxLevel, R.Level);
  for (uint32_t L = 1; L <= MaxLevel; ++L) {
    std::vector<const RunInfo *> AtLevel;
    for (const RunInfo &R : Runs)
      if (R.Level == L)
        AtLevel.push_back(&R);
    if (AtLevel.size() < Fanout)
      continue;
    std::sort(AtLevel.begin(), AtLevel.end(),
              [](const RunInfo *A, const RunInfo *B) {
                if (A->MinTimeNs != B->MinTimeNs)
                  return A->MinTimeNs < B->MinTimeNs;
                return A->Digest < B->Digest;
              });
    Plan = CompactionPlan();
    Plan.OutLevel = L + 1;
    Plan.MinTimeNs = UINT64_MAX;
    for (unsigned I = 0; I != Fanout; ++I) {
      const RunInfo *R = AtLevel[I];
      Plan.SourceRuns.push_back(R->Digest);
      Plan.Members.insert(Plan.Members.end(), R->Members.begin(),
                          R->Members.end());
      Plan.MinTimeNs = std::min(Plan.MinTimeNs, R->MinTimeNs);
      Plan.MaxTimeNs = std::max(Plan.MaxTimeNs, R->MaxTimeNs);
    }
    std::sort(Plan.Members.begin(), Plan.Members.end());
    return true;
  }
  return false;
}

bool ProfileStore::compactionPending() const {
  std::lock_guard<std::mutex> Lock(*IngestMutex);
  CompactionPlan Plan;
  return planCompaction(Plan);
}

Expected<bool> ProfileStore::compactStep(ThreadPool *Pool,
                                         CompactionStats *Stats) {
  static telemetry::DurationHistogram &Latency =
      telemetry::histogram("store.compact.latency");
  telemetry::ScopedDuration Timer(Latency);
  if (Error E = fault::check("store.compact", Root))
    return E;

  CompactionPlan Plan;
  {
    std::lock_guard<std::mutex> Lock(*IngestMutex);
    if (!planCompaction(Plan))
      return false;
  }

  // Heavy phase outside the lock: the sources are immutable files, and a
  // concurrent put() must not stall behind a fold.
  std::vector<ProfileData> Inputs;
  Inputs.reserve(Plan.SourceRuns.size() + Plan.SourceShards.size());
  for (const Sha256Digest &D : Plan.SourceRuns) {
    auto Data = loadRun(D);
    if (!Data)
      return Data.takeError();
    Inputs.push_back(Data.takeValue());
  }
  for (const Sha256Digest &D : Plan.SourceShards) {
    auto Data = loadShard(D);
    if (!Data)
      return Data.takeError();
    Inputs.push_back(Data.takeValue());
  }
  auto Merged = mergeProfiles(Inputs, Pool);
  if (!Merged)
    return Merged.takeError();
  std::vector<uint8_t> Bytes = writeGmon(*Merged);

  RunInfo NewRun;
  NewRun.Digest = aggregateDigest(Plan.Members);
  NewRun.Level = Plan.OutLevel;
  NewRun.MinTimeNs = Plan.MinTimeNs;
  NewRun.MaxTimeNs = Plan.MaxTimeNs;
  NewRun.Members = Plan.Members;

  std::lock_guard<std::mutex> Lock(*IngestMutex);
  // Re-validate under the lock: gc expiry may have retired a source while
  // the fold ran.  A stale plan is dropped — returning true sends the
  // caller's loop back to planning against the new state.
  auto Contains = [](const std::vector<Sha256Digest> &Haystack,
                     const Sha256Digest &Needle) {
    return std::find(Haystack.begin(), Haystack.end(), Needle) !=
           Haystack.end();
  };
  for (const Sha256Digest &D : Plan.SourceRuns)
    if (!findRun(D))
      return true;
  for (const Sha256Digest &D : Plan.SourceShards)
    if (!findShard(D))
      return true;
  if (!Plan.SourceShards.empty())
    for (const RunInfo &R : Runs)
      for (const Sha256Digest &D : R.Members)
        if (Contains(Plan.SourceShards, D))
          return true;
  if (findRun(NewRun.Digest))
    return true; // Identical fold already committed.

  // Commit order: run file first (atomic), then the index rewrite.  A
  // failure between the two strands an orphan run file gc() sweeps —
  // never an index naming a missing run.
  if (Error E = retryIo([&] {
        return writeFileBytesAtomic(runPath(NewRun.Digest), Bytes);
      }))
    return E;
  std::vector<RunInfo> PriorRuns = Runs;
  Runs.erase(std::remove_if(Runs.begin(), Runs.end(),
                            [&](const RunInfo &R) {
                              return Contains(Plan.SourceRuns, R.Digest);
                            }),
             Runs.end());
  Runs.insert(
      std::upper_bound(Runs.begin(), Runs.end(), NewRun, runDigestLess),
      NewRun);
  if (Error E = saveIndex()) {
    // Disk kept the old index; restore the in-memory view to match.  The
    // already-committed run file is unreferenced residue for gc().
    Runs = std::move(PriorRuns);
    return E;
  }
  // The retired sources are unreferenced now; best-effort removal, gc
  // sweeps whatever a failure here leaves behind.
  for (const Sha256Digest &D : Plan.SourceRuns)
    discardError(removeFile(runPath(D)));

  if (Stats) {
    ++Stats->Steps;
    Stats->RunsRetired += Plan.SourceRuns.size();
    Stats->ShardsFolded += Plan.SourceShards.size();
  }
  // Gauges: how many folds run, and when, depends on scheduling (daemon
  // idle time, CLI invocations), not on the profile data.
  telemetry::gauge("store.compact.steps").add(1);
  telemetry::gauge("store.compact.runs_retired").add(Plan.SourceRuns.size());
  telemetry::gauge("store.compact.shards_folded")
      .add(Plan.SourceShards.size());
  EventLog::instance().emit(
      "compaction.step",
      jsonIntField("level", NewRun.Level) + ", " +
          jsonIntField("inputs", Inputs.size()) + ", " +
          jsonIntField("members", NewRun.Members.size()) + ", " +
          jsonStringField("run",
                          digestToHex(NewRun.Digest).substr(0, 12)));
  return true;
}

Expected<CompactionStats> ProfileStore::compact(ThreadPool *Pool) {
  CompactionStats Stats;
  for (;;) {
    auto Worked = compactStep(Pool, &Stats);
    if (!Worked)
      return Worked.takeError();
    if (!*Worked)
      return Stats;
  }
}

namespace {

bool hasTmpSuffix(const std::string &Name) {
  return Name.size() > 4 && Name.compare(Name.size() - 4, 4, ".tmp") == 0;
}

/// Strips a trailing ".gmon" so slot names parse back to digests.
std::string stripGmonSuffix(std::string Name) {
  if (Name.size() > 5 && Name.compare(Name.size() - 5, 5, ".gmon") == 0)
    Name.resize(Name.size() - 5);
  return Name;
}

} // namespace

Expected<GcStats> ProfileStore::gc() { return gc(GcOptions{}); }

Expected<GcStats> ProfileStore::gc(const GcOptions &GcOpts) {
  if (Error E = fault::check("store.gc", Root))
    return E;
  // Sweeps consult the index (findShard) and delete files concurrent
  // put() may be about to name; hold the ingest lock for the whole sweep.
  std::lock_guard<std::mutex> Lock(*IngestMutex);
  GcStats Stats;

  // Retention expiry first: shrink the index, commit it, then let the
  // sweeps below collect the files it no longer names.  Index-then-files
  // order means a crash mid-gc can only strand orphans, never leave the
  // index naming deleted objects.
  if (GcOpts.ExpireBeforeNs != 0) {
    std::vector<Sha256Digest> Expired;
    for (const ShardInfo &S : Shards)
      if (S.CaptureTimeNs < GcOpts.ExpireBeforeNs)
        Expired.push_back(S.Digest);
    if (!Expired.empty()) {
      std::sort(Expired.begin(), Expired.end());
      size_t RunsBefore = Runs.size();
      // A run overlapping any expired member is retired whole: its
      // aggregate would keep counting samples the retention policy says
      // are gone.
      Runs.erase(std::remove_if(Runs.begin(), Runs.end(),
                                [&](const RunInfo &R) {
                                  for (const Sha256Digest &D : R.Members)
                                    if (std::binary_search(Expired.begin(),
                                                           Expired.end(), D))
                                      return true;
                                  return false;
                                }),
                 Runs.end());
      Stats.RetiredRuns = static_cast<unsigned>(RunsBefore - Runs.size());
      Shards.erase(std::remove_if(Shards.begin(), Shards.end(),
                                  [&](const ShardInfo &S) {
                                    return std::binary_search(Expired.begin(),
                                                              Expired.end(),
                                                              S.Digest);
                                  }),
                   Shards.end());
      Stats.ExpiredShards = static_cast<unsigned>(Expired.size());
      if (Error E = saveIndex())
        return E;
    }
  }

  // Stale .tmp files are the residue of writes interrupted before their
  // rename; atomic writers leave them only on a crash or injected fault.
  if (fileExists(Root + "/index.bin.tmp")) {
    if (Error E = removeFile(Root + "/index.bin.tmp"))
      return E;
    ++Stats.TempFiles;
  }

  // The cache sweep keeps the entry for the current full member set —
  // the key the very next default report asks for, still valid because
  // the member set it memoizes is exactly what is live.  Subset keys are
  // one-way hashes of unknown member lists, so they cannot be proven
  // valid and are dropped.
  std::string LiveAggName;
  if (!Shards.empty()) {
    std::vector<Sha256Digest> All;
    All.reserve(Shards.size());
    for (const ShardInfo &S : Shards)
      All.push_back(S.Digest);
    LiveAggName = digestToHex(aggregateDigest(All)) + ".gmon";
  }
  auto CacheEntries = listDirectory(Root + "/cache");
  if (!CacheEntries)
    return CacheEntries.takeError();
  for (const std::string &Name : *CacheEntries) {
    if (!hasTmpSuffix(Name) && Name == LiveAggName) {
      ++Stats.RetainedAggregates;
      continue;
    }
    if (Error E = removeFile(Root + "/cache/" + Name))
      return E;
    if (hasTmpSuffix(Name))
      ++Stats.TempFiles;
    else
      ++Stats.CachedAggregates;
  }

  auto Fans = listDirectory(Root + "/objects");
  if (!Fans)
    return Fans.takeError();
  for (const std::string &Fan : *Fans) {
    std::string FanDir = Root + "/objects/" + Fan;
    auto Objects = listDirectory(FanDir);
    if (!Objects)
      return Objects.takeError();
    for (const std::string &Name : *Objects) {
      auto Digest = digestFromHex(stripGmonSuffix(Name));
      if (Digest && findShard(*Digest))
        continue;
      if (Error E = removeFile(FanDir + "/" + Name))
        return E;
      if (hasTmpSuffix(Name))
        ++Stats.TempFiles;
      else
        ++Stats.OrphanObjects;
    }
  }

  // Run files without a live manifest: compaction residue from a fold
  // that committed its file but not its index, or sources a fold retired
  // without managing to unlink.
  auto RunEntries = listDirectory(Root + "/runs");
  if (!RunEntries)
    return RunEntries.takeError();
  for (const std::string &Name : *RunEntries) {
    auto Digest = digestFromHex(stripGmonSuffix(Name));
    if (Digest && findRun(*Digest))
      continue;
    if (Error E = removeFile(Root + "/runs/" + Name))
      return E;
    if (hasTmpSuffix(Name))
      ++Stats.TempFiles;
    else
      ++Stats.OrphanRuns;
  }

  telemetry::counter("store.gc.cache_files").add(Stats.CachedAggregates);
  telemetry::counter("store.gc.retained_aggregates")
      .add(Stats.RetainedAggregates);
  telemetry::counter("store.gc.orphan_objects").add(Stats.OrphanObjects);
  telemetry::counter("store.gc.orphan_runs").add(Stats.OrphanRuns);
  telemetry::counter("store.gc.temp_files").add(Stats.TempFiles);
  telemetry::counter("store.gc.expired_shards").add(Stats.ExpiredShards);
  telemetry::counter("store.gc.retired_runs").add(Stats.RetiredRuns);
  EventLog::instance().emit(
      "gc.sweep", jsonIntField("cached", Stats.CachedAggregates) + ", " +
                      jsonIntField("retained", Stats.RetainedAggregates) +
                      ", " + jsonIntField("orphans", Stats.OrphanObjects) +
                      ", " + jsonIntField("orphan_runs", Stats.OrphanRuns) +
                      ", " + jsonIntField("temp", Stats.TempFiles) + ", " +
                      jsonIntField("expired", Stats.ExpiredShards) + ", " +
                      jsonIntField("retired_runs", Stats.RetiredRuns));
  return Stats;
}
