//===- store/MergeEngine.h - Deterministic parallel profile merging ------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The aggregation engine behind the profile store: merges any number of
/// gmon shards with a k-way merge tree that parallelizes across a
/// ThreadPool.  The paper's multi-run summing ("the profile data for
/// several executions ... can be combined") was a linear fold over a
/// handful of files; at thousands of shards that fold is quadratic in the
/// arc table (ProfileData::addArc scans linearly) and serial.  Here every
/// shard's arc table is first put in canonical (FromPc, SelfPc) order, so
/// M shards merge in O(total·log M) with a heap, and contiguous chunks of
/// shards merge on separate workers.
///
/// Determinism is a hard requirement: the merged bytes must be identical
/// for any thread count and any shard order, so cached aggregates keyed by
/// the shard-digest set stay valid no matter how they were produced.  That
/// holds because every combining operation is exact integer arithmetic
/// (saturating bucket and arc-count adds, run-count adds, flag OR — all
/// commutative and associative: a saturating sum is min(true sum, max) for
/// any grouping) and the output arc table is emitted in canonical order.
/// No floating-point reduction ever runs here.
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_STORE_MERGEENGINE_H
#define GPROF_STORE_MERGEENGINE_H

#include "gmon/ProfileData.h"
#include "support/Error.h"
#include "support/ThreadPool.h"

#include <vector>

namespace gprof {

/// Puts \p Data in canonical form: arcs sorted by (FromPc, SelfPc) with
/// duplicate keys coalesced.  Canonical form is what the store serializes,
/// digests, and feeds to the k-way merge.
void canonicalizeProfile(ProfileData &Data);

/// True if \p Data's arc table is in canonical form.
bool isCanonicalProfile(const ProfileData &Data);

/// Checks that \p A and \p B may be summed (same sampling rate, same
/// histogram geometry; an empty histogram is compatible with any geometry).
/// \p NameA / \p NameB label the two sides in the error message (file
/// paths, digests, ...).
Error checkMergeCompatible(const ProfileData &A, const ProfileData &B,
                           const std::string &NameA, const std::string &NameB);

/// Merges \p Shards — all canonical and mutually compatible — into one
/// canonical profile.  With a \p Pool the shard list is cut into one
/// contiguous chunk per worker, each chunk is k-way merged concurrently,
/// and the partial results are k-way merged on the calling thread; without
/// one (or with a single worker) the whole list merges in one pass.  The
/// result is byte-identical either way.
Expected<ProfileData> mergeProfiles(const std::vector<ProfileData> &Shards,
                                    ThreadPool *Pool = nullptr);

/// The core entry point: same contract over borrowed profiles, so callers
/// holding shards in non-contiguous storage (the tiered store mixes
/// compacted runs and loose shards) merge without gathering values into
/// one vector.  No pointer may be null.
Expected<ProfileData>
mergeProfiles(const std::vector<const ProfileData *> &Shards,
              ThreadPool *Pool = nullptr);

} // namespace gprof

#endif // GPROF_STORE_MERGEENGINE_H
