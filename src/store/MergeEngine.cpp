//===- store/MergeEngine.cpp ----------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "store/MergeEngine.h"

#include "support/Format.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <queue>

using namespace gprof;

void gprof::canonicalizeProfile(ProfileData &Data) {
  std::sort(Data.Arcs.begin(), Data.Arcs.end(),
            [](const ArcRecord &A, const ArcRecord &B) {
              if (A.FromPc != B.FromPc)
                return A.FromPc < B.FromPc;
              return A.SelfPc < B.SelfPc;
            });
  // Coalesce duplicate (FromPc, SelfPc) keys in place.
  size_t Out = 0;
  for (size_t I = 0; I != Data.Arcs.size(); ++I) {
    if (Out != 0 && Data.Arcs[Out - 1].FromPc == Data.Arcs[I].FromPc &&
        Data.Arcs[Out - 1].SelfPc == Data.Arcs[I].SelfPc) {
      Data.Arcs[Out - 1].Count =
          saturatingAdd(Data.Arcs[Out - 1].Count, Data.Arcs[I].Count);
    } else {
      Data.Arcs[Out] = Data.Arcs[I];
      ++Out;
    }
  }
  Data.Arcs.resize(Out);
  Data.invalidateArcIndex();
}

bool gprof::isCanonicalProfile(const ProfileData &Data) {
  for (size_t I = 1; I < Data.Arcs.size(); ++I) {
    const ArcRecord &P = Data.Arcs[I - 1], &C = Data.Arcs[I];
    if (P.FromPc > C.FromPc ||
        (P.FromPc == C.FromPc && P.SelfPc >= C.SelfPc))
      return false;
  }
  return true;
}

Error gprof::checkMergeCompatible(const ProfileData &A, const ProfileData &B,
                                  const std::string &NameA,
                                  const std::string &NameB) {
  if (A.TicksPerSecond != B.TicksPerSecond)
    return Error::failure(format(
        "cannot sum '%s' with '%s': sampling rates differ "
        "(%llu vs %llu ticks/sec)",
        NameB.c_str(), NameA.c_str(),
        static_cast<unsigned long long>(B.TicksPerSecond),
        static_cast<unsigned long long>(A.TicksPerSecond)));
  // An empty histogram (a run that recorded arcs but exited before the
  // first sample tick) is compatible with anything; merging adopts the
  // non-empty side's geometry.
  if (A.Hist.empty() || B.Hist.empty())
    return Error::success();
  if (A.Hist.lowPc() != B.Hist.lowPc() ||
      A.Hist.highPc() != B.Hist.highPc() ||
      A.Hist.bucketSize() != B.Hist.bucketSize())
    return Error::failure(format(
        "cannot sum '%s' with '%s': histogram ranges differ "
        "([%llu,%llu)/%llu vs [%llu,%llu)/%llu)",
        NameB.c_str(), NameA.c_str(),
        static_cast<unsigned long long>(B.Hist.lowPc()),
        static_cast<unsigned long long>(B.Hist.highPc()),
        static_cast<unsigned long long>(B.Hist.bucketSize()),
        static_cast<unsigned long long>(A.Hist.lowPc()),
        static_cast<unsigned long long>(A.Hist.highPc()),
        static_cast<unsigned long long>(A.Hist.bucketSize())));
  return Error::success();
}

namespace {

/// Heap cursor into one shard's canonical arc table.
struct ArcCursor {
  Address FromPc;
  Address SelfPc;
  size_t Shard;
  size_t Pos;
};

struct CursorGreater {
  bool operator()(const ArcCursor &A, const ArcCursor &B) const {
    if (A.FromPc != B.FromPc)
      return A.FromPc > B.FromPc;
    if (A.SelfPc != B.SelfPc)
      return A.SelfPc > B.SelfPc;
    // Tie-break on shard index so heap order is fully determined.
    return A.Shard > B.Shard;
  }
};

/// Merges canonical, mutually compatible shards in one k-way pass.
ProfileData kWayMerge(const std::vector<const ProfileData *> &Shards) {
  assert(!Shards.empty() && "k-way merge of nothing");
  telemetry::Span MergeSpan("store.merge.kway");
  ProfileData Out;
  Out.TicksPerSecond = Shards.front()->TicksPerSecond;
  Out.RunCount = 0;
  Out.ArcTableOverflowed = false;

  size_t TotalArcs = 0;
  for (const ProfileData *S : Shards) {
    assert(isCanonicalProfile(*S) && "k-way merge needs canonical shards");
    Out.RunCount += S->RunCount;
    Out.ArcTableOverflowed = Out.ArcTableOverflowed || S->ArcTableOverflowed;
    TotalArcs += S->Arcs.size();
    if (!S->Hist.empty()) {
      if (Out.Hist.empty())
        Out.Hist = Histogram(S->Hist.lowPc(), S->Hist.highPc(),
                             S->Hist.bucketSize());
      for (size_t I = 0; I != S->Hist.numBuckets(); ++I)
        Out.Hist.setBucketCount(I, saturatingAdd(Out.Hist.bucketCount(I),
                                                 S->Hist.bucketCount(I)));
    }
  }

  std::priority_queue<ArcCursor, std::vector<ArcCursor>, CursorGreater> Heap;
  for (size_t S = 0; S != Shards.size(); ++S)
    if (!Shards[S]->Arcs.empty()) {
      const ArcRecord &R = Shards[S]->Arcs.front();
      Heap.push({R.FromPc, R.SelfPc, S, 0});
    }

  Out.Arcs.reserve(TotalArcs);
  uint64_t HeapPops = 0;
  uint64_t ArcSaturations = 0;
  while (!Heap.empty()) {
    ArcCursor Top = Heap.top();
    Heap.pop();
    ++HeapPops;
    const ArcRecord &R = Shards[Top.Shard]->Arcs[Top.Pos];
    if (!Out.Arcs.empty() && Out.Arcs.back().FromPc == R.FromPc &&
        Out.Arcs.back().SelfPc == R.SelfPc) {
      if (R.Count > UINT64_MAX - Out.Arcs.back().Count)
        ++ArcSaturations;
      Out.Arcs.back().Count = saturatingAdd(Out.Arcs.back().Count, R.Count);
    } else {
      Out.Arcs.push_back(R);
    }
    if (Top.Pos + 1 != Shards[Top.Shard]->Arcs.size()) {
      const ArcRecord &Next = Shards[Top.Shard]->Arcs[Top.Pos + 1];
      Heap.push({Next.FromPc, Next.SelfPc, Top.Shard, Top.Pos + 1});
    }
  }
  // Gauges, not counters: the tree's leaf decomposition (and therefore
  // how many pops and partial-aggregate saturations the intermediate
  // passes add) depends on pool width.
  telemetry::gauge("store.merge.heap_pops").add(HeapPops);
  if (ArcSaturations != 0)
    telemetry::gauge("store.merge.arc_saturations").add(ArcSaturations);
  return Out;
}

} // namespace

Expected<ProfileData>
gprof::mergeProfiles(const std::vector<ProfileData> &Shards,
                     ThreadPool *Pool) {
  std::vector<const ProfileData *> Ptrs;
  Ptrs.reserve(Shards.size());
  for (const ProfileData &S : Shards)
    Ptrs.push_back(&S);
  return mergeProfiles(Ptrs, Pool);
}

Expected<ProfileData>
gprof::mergeProfiles(const std::vector<const ProfileData *> &Ptrs,
                     ThreadPool *Pool) {
  if (Ptrs.empty())
    return Error::failure("no profiles to merge");
  telemetry::Span Phase("store.merge");
  {
    uint64_t InputArcs = 0;
    for (const ProfileData *S : Ptrs)
      InputArcs += S->Arcs.size();
    telemetry::counter("store.merge.shards").add(Ptrs.size());
    telemetry::counter("store.merge.input_arcs").add(InputArcs);
  }
  // Validate geometry against the first shard that actually has a
  // histogram; empty-histogram shards are compatible with anything, so
  // blindly comparing to shard 0 would let two incompatible sampled
  // shards slip past an unsampled shard 0.
  size_t Ref = 0;
  while (Ref != Ptrs.size() && Ptrs[Ref]->Hist.empty())
    ++Ref;
  if (Ref == Ptrs.size())
    Ref = 0;
  for (size_t I = 0; I != Ptrs.size(); ++I)
    if (I != Ref)
      if (Error E = checkMergeCompatible(*Ptrs[Ref], *Ptrs[I],
                                         format("shard %zu", Ref),
                                         format("shard %zu", I)))
        return E;

  size_t Chunks = Pool ? std::min<size_t>(Pool->size(), Ptrs.size()) : 1;
  if (Chunks <= 1 || Ptrs.size() < 4)
    return kWayMerge(Ptrs);

  // Leaf level of the merge tree: one contiguous chunk per worker.  The
  // chunking never changes the result — every combining operation is
  // commutative and associative and the output order is canonical — so any
  // worker count yields byte-identical data.
  std::vector<std::future<ProfileData>> Futures;
  Futures.reserve(Chunks);
  size_t Begin = 0;
  for (size_t C = 0; C != Chunks; ++C) {
    size_t End = Begin + (Ptrs.size() - Begin) / (Chunks - C);
    std::vector<const ProfileData *> Chunk(Ptrs.begin() + Begin,
                                           Ptrs.begin() + End);
    Futures.push_back(
        Pool->async([Chunk = std::move(Chunk)] { return kWayMerge(Chunk); }));
    Begin = End;
  }

  // Root of the tree: fold the partial aggregates on this thread.
  std::vector<ProfileData> Partials;
  Partials.reserve(Chunks);
  for (std::future<ProfileData> &F : Futures)
    Partials.push_back(F.get());
  std::vector<const ProfileData *> PartialPtrs;
  PartialPtrs.reserve(Partials.size());
  for (const ProfileData &P : Partials)
    PartialPtrs.push_back(&P);
  return kWayMerge(PartialPtrs);
}
