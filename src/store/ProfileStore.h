//===- store/ProfileStore.h - On-disk repository of gmon shards ----------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A persistent repository for profile shards, built for the retrospective
/// observation that "summing the data over several profiled runs" is what
/// makes rarely-hit routines visible — at fleet scale that means keeping
/// thousands of gmon files around and aggregating subsets of them on
/// demand.  Layout under the store root:
///
///   index.bin                    versioned binary index of every shard
///   objects/<hh>/<digest>.gmon   canonical shard bytes, content-addressed
///   cache/<digest>.gmon          merged aggregates, keyed by member set
///
/// Shards are canonicalized (arc table sorted, duplicates coalesced) before
/// digesting, so the same logical profile always lands in the same slot no
/// matter how its arcs were ordered on disk.  Ingest validates
/// compatibility — sampling rate, histogram geometry, and (when known) the
/// identity of the profiled VM image — so a store never accumulates shards
/// that cannot be summed.  Aggregation runs on the parallel k-way merge
/// tree (store/MergeEngine.h) and is deterministic, which is what makes
/// the aggregate cache sound: the cache key depends only on the member
/// digest set, never on thread count or ingest order.
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_STORE_PROFILESTORE_H
#define GPROF_STORE_PROFILESTORE_H

#include "gmon/ProfileData.h"
#include "support/Error.h"
#include "support/Sha256.h"
#include "support/ThreadPool.h"

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gprof {

/// Index record for one ingested shard: its content digest plus the
/// summary fields `gprof-store list` shows without touching the object.
struct ShardInfo {
  Sha256Digest Digest{};  ///< SHA-256 of the canonical gmon bytes.
  Sha256Digest ImageId{}; ///< SHA-256 of the profiled image; zero = unknown.
  uint64_t Hz = 0;        ///< Sampling ticks per second.
  Address LowPc = 0;      ///< Histogram range (zeros when no histogram).
  Address HighPc = 0;
  uint64_t BucketSize = 0;
  uint64_t NumBuckets = 0;
  uint64_t NumArcs = 0;
  uint64_t TotalSamples = 0;
  uint32_t Runs = 0;
};

/// What gc() swept.
struct GcStats {
  unsigned CachedAggregates = 0; ///< Cache entries removed.
  unsigned OrphanObjects = 0;    ///< Object files not named by the index.
  unsigned TempFiles = 0;        ///< Stale .tmp files from interrupted writes.
};

/// Behavioral knobs for an open store.
struct StoreOptions {
  /// Salvage truncated gmon inputs on putFile() instead of rejecting them
  /// (gmon/GmonFile.h tolerant mode).  Damaged-input details land on the
  /// gmon.read.* telemetry counters.
  bool TolerantReads = false;
  /// Extra attempts after a failed store I/O operation (0 = fail fast).
  /// Retries target transient faults — NFS hiccups, AV interference — and
  /// each attempt doubles the backoff below.
  unsigned IoRetries = 2;
  /// Sleep before the first retry, in milliseconds; doubles per attempt.
  unsigned RetryBackoffMs = 1;
};

/// An open profile repository rooted at one directory.
class ProfileStore {
public:
  /// Creates an inert store; open() is the real entry point.
  ProfileStore() = default;

  /// Opens (creating if needed) the store rooted at \p RootDir.
  static Expected<ProfileStore> open(const std::string &RootDir);
  /// Same, with explicit behavior knobs.
  static Expected<ProfileStore> open(const std::string &RootDir,
                                     const StoreOptions &Options);

  const StoreOptions &options() const { return Options; }

  const std::string &rootDir() const { return Root; }

  /// Every ingested shard, sorted by ascending digest.  Borrowing view
  /// for single-threaded callers; concurrent readers (daemon workers
  /// racing with put) must use shardsSnapshot().
  const std::vector<ShardInfo> &shards() const { return Shards; }

  /// A copy of the index taken under the ingest lock — safe against
  /// concurrent put() from other threads sharing this store.
  std::vector<ShardInfo> shardsSnapshot() const;

  /// Ingests one profile: canonicalizes, validates compatibility against
  /// the shards already present, writes the object, and updates the index.
  /// Idempotent — re-ingesting identical data returns the same digest
  /// without rewriting anything.  \p Label names the source in errors.
  Expected<Sha256Digest> put(ProfileData Data,
                             const Sha256Digest &ImageId = Sha256Digest{},
                             const std::string &Label = "profile");

  /// Reads the gmon file at \p GmonPath and ingests it.
  Expected<Sha256Digest>
  putFile(const std::string &GmonPath,
          const Sha256Digest &ImageId = Sha256Digest{});

  /// Resolves a (unique) hex digest prefix to a shard record.
  Expected<ShardInfo> resolve(const std::string &HexPrefix) const;

  /// Loads one shard's profile data from its object slot.
  Expected<ProfileData> loadShard(const Sha256Digest &Digest) const;

  /// The digest that keys an aggregate over \p Members (order-insensitive:
  /// members are deduplicated and sorted before hashing).
  static Sha256Digest aggregateDigest(std::vector<Sha256Digest> Members);

  struct MergeResult {
    ProfileData Data;
    Sha256Digest Digest; ///< Aggregate digest (the cache key).
    bool CacheHit = false;
    size_t MemberCount = 0;
  };

  /// Merges the shards named by \p Members (every shard when empty) and
  /// caches the aggregate; subsequent identical queries are served from
  /// the cache without re-merging.  \p Pool may be null for a sequential
  /// merge — the bytes are identical either way.
  Expected<MergeResult> merge(std::vector<Sha256Digest> Members,
                              ThreadPool *Pool = nullptr);

  /// Drops every cached aggregate and deletes object files the index does
  /// not reference.
  Expected<GcStats> gc();

  /// Filesystem slot of a shard object / cached aggregate.
  std::string objectPath(const Sha256Digest &Digest) const;
  std::string cachePath(const Sha256Digest &AggregateDigest) const;

private:
  Error loadIndex();
  Error saveIndex() const;
  const ShardInfo *findShard(const Sha256Digest &Digest) const;
  Error checkCompatibleWithStore(const ProfileData &Data,
                                 const Sha256Digest &ImageId,
                                 const std::string &Label) const;
  /// Runs \p Op, retrying per Options on failure (bounded attempts,
  /// doubling backoff).  Returns the last attempt's error.
  Error retryIo(const std::function<Error()> &Op) const;

  std::string Root;
  StoreOptions Options;
  std::vector<ShardInfo> Shards; ///< Sorted by digest.
  /// Single-writer lock over Shards and the index.bin write-then-rename:
  /// simultaneous put() calls from daemon worker threads must not
  /// interleave the rewrite and drop each other's entries.  Held by put,
  /// gc, and every index read that can race with them.  shared_ptr keeps
  /// the store movable (ProfileStore travels through Expected by value);
  /// cross-process writers still need external coordination — the serve
  /// daemon is the single writer for its root.
  std::shared_ptr<std::mutex> IngestMutex = std::make_shared<std::mutex>();
};

} // namespace gprof

#endif // GPROF_STORE_PROFILESTORE_H
