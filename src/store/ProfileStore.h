//===- store/ProfileStore.h - On-disk repository of gmon shards ----------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A persistent repository for profile shards, built for the retrospective
/// observation that "summing the data over several profiled runs" is what
/// makes rarely-hit routines visible — at fleet scale that means keeping
/// thousands of gmon files around and aggregating subsets of them on
/// demand.  Layout under the store root:
///
///   index.bin                    versioned binary index of shards and runs
///   objects/<hh>/<digest>.gmon   canonical shard bytes, content-addressed
///   runs/<digest>.gmon           compacted partial merges (tiered runs)
///   cache/<digest>.gmon          merged aggregates, keyed by member set
///
/// Shards are canonicalized (arc table sorted, duplicates coalesced) before
/// digesting, so the same logical profile always lands in the same slot no
/// matter how its arcs were ordered on disk.  Ingest validates
/// compatibility — sampling rate, histogram geometry, and (when known) the
/// identity of the profiled VM image — so a store never accumulates shards
/// that cannot be summed.  Aggregation runs on the parallel k-way merge
/// tree (store/MergeEngine.h) and is deterministic, which is what makes
/// the aggregate cache sound: the cache key depends only on the member
/// digest set, never on thread count or ingest order.
///
/// Aggregation is *tiered* (log-structured merge): freshly ingested shards
/// sit at level 0, and compaction folds the oldest Fanout of them into a
/// level-1 *run* — a memoized partial merge over a fixed member set — then
/// Fanout level-1 runs into a level-2 run, and so on.  merge() substitutes
/// each run whose member set is covered by the request for its members, so
/// a report over N shards reads O(log_Fanout N) runs plus the uncompacted
/// tail instead of N objects.  Runs are an acceleration structure only:
/// shards are never deleted by compaction, subset queries that slice
/// through a run simply fall back to the member objects, and losing a run
/// file loses speed, never data.  Because the merge engine is associative
/// and deterministic, a tiered merge is byte-identical to the flat merge
/// of the same members at every compaction state.
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_STORE_PROFILESTORE_H
#define GPROF_STORE_PROFILESTORE_H

#include "gmon/ProfileData.h"
#include "support/Error.h"
#include "support/Sha256.h"
#include "support/ThreadPool.h"

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gprof {

/// Index record for one ingested shard: its content digest plus the
/// summary fields `gprof-store list` shows without touching the object.
struct ShardInfo {
  Sha256Digest Digest{};  ///< SHA-256 of the canonical gmon bytes.
  Sha256Digest ImageId{}; ///< SHA-256 of the profiled image; zero = unknown.
  uint64_t Hz = 0;        ///< Sampling ticks per second.
  Address LowPc = 0;      ///< Histogram range (zeros when no histogram).
  Address HighPc = 0;
  uint64_t BucketSize = 0;
  uint64_t NumBuckets = 0;
  uint64_t NumArcs = 0;
  uint64_t TotalSamples = 0;
  uint32_t Runs = 0;
  /// Wall-clock capture time, nanoseconds since the epoch — stamped at
  /// ingest (index format v2).  Drives windowed reports (--since/--until)
  /// and retention expiry; shards from a v1 index read back as 0.
  uint64_t CaptureTimeNs = 0;
};

/// One compacted run: a memoized partial merge over a fixed, disjoint set
/// of shards.  Runs tier upward — a level-L run folds Fanout level-(L-1)
/// runs (level 1 folds raw shards) — and every live run's member set is
/// disjoint from every other's, so merge() can substitute runs for their
/// members without double counting.
struct RunInfo {
  /// Aggregate digest of the member set (aggregateDigest), which names
  /// runs/<digest>.gmon.  Keyed like cache entries: by *what was merged*,
  /// sound because the merge engine is deterministic.
  Sha256Digest Digest{};
  uint32_t Level = 1; ///< Tier height; folding Fanout of these makes L+1.
  /// Capture-time window covered: [min, max] over the member shards.
  uint64_t MinTimeNs = 0;
  uint64_t MaxTimeNs = 0;
  std::vector<Sha256Digest> Members; ///< Shard digests folded in, sorted.
};

/// Retention knobs for gc().
struct GcOptions {
  /// Drop every shard captured strictly before this timestamp (ns since
  /// epoch); runs overlapping an expired shard are retired with it.
  /// 0 = no expiry, sweep only.
  uint64_t ExpireBeforeNs = 0;
};

/// What gc() swept (and deliberately kept).
struct GcStats {
  unsigned CachedAggregates = 0;  ///< Cache entries removed.
  unsigned RetainedAggregates = 0; ///< Still-valid cache entries kept.
  unsigned OrphanObjects = 0;     ///< Object files not named by the index.
  unsigned OrphanRuns = 0;        ///< Run files without a live manifest.
  unsigned TempFiles = 0;         ///< Stale .tmp files from torn writes.
  unsigned ExpiredShards = 0;     ///< Shards dropped by ExpireBeforeNs.
  unsigned RetiredRuns = 0;       ///< Runs retired because a member expired.
};

/// What a compaction pass accomplished.
struct CompactionStats {
  unsigned Steps = 0;         ///< Folds committed (one new run each).
  unsigned RunsRetired = 0;   ///< Lower-level runs folded away.
  uint64_t ShardsFolded = 0;  ///< Level-0 shards newly covered by a run.
};

/// Behavioral knobs for an open store.
struct StoreOptions {
  /// Salvage truncated gmon inputs on putFile() instead of rejecting them
  /// (gmon/GmonFile.h tolerant mode).  Damaged-input details land on the
  /// gmon.read.* telemetry counters.
  bool TolerantReads = false;
  /// Extra attempts after a failed store I/O operation (0 = fail fast).
  /// Retries target transient faults — NFS hiccups, AV interference — and
  /// each attempt doubles the backoff below.
  unsigned IoRetries = 2;
  /// Sleep before the first retry, in milliseconds; doubles per attempt.
  unsigned RetryBackoffMs = 1;
  /// Inputs folded per compaction step: Fanout uncovered shards become a
  /// level-1 run, Fanout level-L runs become a level-(L+1) run.  A store
  /// of N shards compacts to at most Fanout tiers per level plus a
  /// sub-Fanout tail, so report() merges O(Fanout·log_Fanout N) inputs.
  /// Clamped to >= 2.
  unsigned CompactionFanout = 8;
};

/// An open profile repository rooted at one directory.
class ProfileStore {
public:
  /// Creates an inert store; open() is the real entry point.
  ProfileStore() = default;

  /// Opens (creating if needed) the store rooted at \p RootDir.
  static Expected<ProfileStore> open(const std::string &RootDir);
  /// Same, with explicit behavior knobs.
  static Expected<ProfileStore> open(const std::string &RootDir,
                                     const StoreOptions &Options);

  const StoreOptions &options() const { return Options; }

  const std::string &rootDir() const { return Root; }

  /// Every ingested shard, sorted by ascending digest.  Borrowing view
  /// for single-threaded callers; concurrent readers (daemon workers
  /// racing with put) must use shardsSnapshot().
  const std::vector<ShardInfo> &shards() const { return Shards; }

  /// A copy of the index taken under the ingest lock — safe against
  /// concurrent put() from other threads sharing this store.
  std::vector<ShardInfo> shardsSnapshot() const;

  /// Every live compacted run, sorted by ascending digest.  Borrowing
  /// view; concurrent readers must use runsSnapshot().
  const std::vector<RunInfo> &runs() const { return Runs; }

  /// A copy of the run manifests taken under the ingest lock.
  std::vector<RunInfo> runsSnapshot() const;

  /// Ingests one profile: canonicalizes, validates compatibility against
  /// the shards already present, writes the object, and updates the index.
  /// Idempotent — re-ingesting identical data returns the same digest
  /// without rewriting anything.  \p Label names the source in errors.
  /// \p CaptureTimeNs stamps the shard's capture time (ns since epoch);
  /// 0 means "now".  Explicit stamps exist for backfill and for
  /// deterministic tests of windowed selection.
  Expected<Sha256Digest> put(ProfileData Data,
                             const Sha256Digest &ImageId = Sha256Digest{},
                             const std::string &Label = "profile",
                             uint64_t CaptureTimeNs = 0);

  /// Reads the gmon file at \p GmonPath and ingests it.
  Expected<Sha256Digest>
  putFile(const std::string &GmonPath,
          const Sha256Digest &ImageId = Sha256Digest{},
          uint64_t CaptureTimeNs = 0);

  /// Resolves a (unique) hex digest prefix to a shard record.
  Expected<ShardInfo> resolve(const std::string &HexPrefix) const;

  /// Loads one shard's profile data from its object slot.
  Expected<ProfileData> loadShard(const Sha256Digest &Digest) const;

  /// Loads one compacted run's aggregate from its run slot.
  Expected<ProfileData> loadRun(const Sha256Digest &Digest) const;

  /// The digest that keys an aggregate over \p Members (order-insensitive:
  /// members are deduplicated and sorted before hashing; the argument is
  /// never copied — this runs on every cache probe).
  static Sha256Digest aggregateDigest(const std::vector<Sha256Digest> &Members);

  struct MergeResult {
    ProfileData Data;
    Sha256Digest Digest; ///< Aggregate digest (the cache key).
    bool CacheHit = false;
    size_t MemberCount = 0;
    /// Profiles actually folded on a cache miss: substituted runs plus
    /// loose shards.  After compaction this is O(log N), not N — the
    /// whole point of the tiered store.  0 on a cache hit.
    size_t InputsMerged = 0;
    /// How many of InputsMerged were compacted runs.
    size_t RunsUsed = 0;
  };

  /// Merges the shards named by \p Members (every shard when empty) and
  /// caches the aggregate; subsequent identical queries are served from
  /// the cache without re-merging.  Compacted runs fully covered by the
  /// member set substitute for their members, so a compacted store merges
  /// a handful of runs instead of every shard; the bytes are identical to
  /// a flat merge either way.  \p Pool may be null for a sequential
  /// merge — the bytes are identical either way.
  Expected<MergeResult> merge(std::vector<Sha256Digest> Members,
                              ThreadPool *Pool = nullptr);

  /// Shards captured inside [SinceNs, UntilNs] (ns since epoch, inclusive;
  /// UntilNs = 0 means unbounded above), sorted by digest.  Feed the
  /// result to merge() for a windowed report — but mind that an empty
  /// window yields an empty vector, which merge() reads as "all shards".
  std::vector<Sha256Digest> membersInWindow(uint64_t SinceNs,
                                            uint64_t UntilNs) const;

  /// Performs at most one compaction fold: the oldest Fanout uncovered
  /// shards into a level-1 run, or the oldest Fanout level-L runs into a
  /// level-(L+1) run.  Returns true if a fold was committed (or the store
  /// changed underfoot and planning should rerun), false when the store
  /// is fully compacted.  Crash-safe: the run file commits by atomic
  /// write-then-rename before the index is rewritten, and a failure at
  /// any point leaves every committed artifact intact — at worst an
  /// orphan run file that gc() sweeps.  \p Stats, when given, accumulates
  /// what the fold accomplished.
  Expected<bool> compactStep(ThreadPool *Pool = nullptr,
                             CompactionStats *Stats = nullptr);

  /// Runs compactStep until no fold remains.
  Expected<CompactionStats> compact(ThreadPool *Pool = nullptr);

  /// True if compactStep would have work to do — a cheap planning pass
  /// under the ingest lock, used by the daemon to decide whether to
  /// schedule a background pass.
  bool compactionPending() const;

  /// Sweeps unreferenced files: cache entries other than the live
  /// full-member-set aggregate (subset keys are one-way hashes, so only
  /// the entry the next default report will ask for is identifiable as
  /// still-valid), object files the index does not name, run files
  /// without a live manifest, and stale .tmp residue.  With
  /// GcOptions::ExpireBeforeNs, first drops shards older than the cutoff
  /// and retires runs that overlap them.
  Expected<GcStats> gc();
  Expected<GcStats> gc(const GcOptions &GcOpts);

  /// Filesystem slot of a shard object / compacted run / cached aggregate.
  std::string objectPath(const Sha256Digest &Digest) const;
  std::string runPath(const Sha256Digest &Digest) const;
  std::string cachePath(const Sha256Digest &AggregateDigest) const;

private:
  /// One planned fold, selected under the ingest lock.
  struct CompactionPlan {
    uint32_t OutLevel = 1;
    std::vector<Sha256Digest> SourceRuns;   ///< Runs folded (level >= 2).
    std::vector<Sha256Digest> SourceShards; ///< Shards folded (level 1).
    std::vector<Sha256Digest> Members;      ///< Union member set, sorted.
    uint64_t MinTimeNs = 0;
    uint64_t MaxTimeNs = 0;
  };

  Error loadIndex();
  Error saveIndex() const;
  const ShardInfo *findShard(const Sha256Digest &Digest) const;
  const RunInfo *findRun(const Sha256Digest &Digest) const;
  /// Picks the next fold (lowest level first, oldest inputs first).
  /// Caller holds the ingest lock.  False when fully compacted.
  bool planCompaction(CompactionPlan &Plan) const;
  Error checkCompatibleWithStore(const ProfileData &Data,
                                 const Sha256Digest &ImageId,
                                 const std::string &Label) const;
  /// Runs \p Op, retrying per Options on failure (bounded attempts,
  /// doubling backoff).  Returns the last attempt's error.
  Error retryIo(const std::function<Error()> &Op) const;

  std::string Root;
  StoreOptions Options;
  std::vector<ShardInfo> Shards; ///< Sorted by digest.
  std::vector<RunInfo> Runs;     ///< Sorted by digest; disjoint members.
  /// Single-writer lock over Shards, Runs, and the index.bin
  /// write-then-rename: simultaneous put() calls from daemon worker
  /// threads must not interleave the rewrite and drop each other's
  /// entries.  Held by put, gc, compaction's plan/commit phases, and
  /// every index read that can race with them.  shared_ptr keeps the
  /// store movable (ProfileStore travels through Expected by value);
  /// cross-process writers still need external coordination — the serve
  /// daemon is the single writer for its root.
  std::shared_ptr<std::mutex> IngestMutex = std::make_shared<std::mutex>();
};

} // namespace gprof

#endif // GPROF_STORE_PROFILESTORE_H
