//===- stackprof/StackProfiler.h - Call-stack sampling (the successor) ----===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The retrospective's closing observation, implemented: "Modern profilers
/// solve both these problems by periodically gathering not just isolated
/// program counter samples and isolated call graph arcs, but complete call
/// stacks."  The "both problems" are gprof's two statistical pitfalls:
///
///  1. average time per call "need not reflect reality, e.g., if some
///     calls take longer than others", so propagating a callee's time to
///     callers "in proportion to how many times they called" can
///     misattribute it; and
///  2. cycles, where arc-local information cannot say which member is
///     responsible.
///
/// A stack sample attributes the tick to the innermost frame (self time)
/// and to every distinct function on the stack (inclusive time), and to
/// each caller→callee adjacency actually active at sample time — exact
/// attribution, no per-call averaging.  The E11 ablation bench compares
/// this against gprof's propagation on a workload engineered to break the
/// averaging assumption.
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_STACKPROF_STACKPROFILER_H
#define GPROF_STACKPROF_STACKPROFILER_H

#include "core/SymbolTable.h"
#include "gmon/ProfileData.h"
#include "vm/VM.h"

#include <map>
#include <string>
#include <vector>

namespace gprof {

/// Aggregated results of a stack-sampling session, in seconds.
struct StackProfile {
  struct FunctionTimes {
    std::string Name;
    Address Addr = 0;
    /// Ticks with this function innermost.
    double SelfTime = 0.0;
    /// Ticks with this function anywhere on the stack (counted once even
    /// under recursion — the classic double-counting fix).
    double InclusiveTime = 0.0;
  };

  struct ArcTimes {
    Address CallerAddr = 0;
    Address CalleeAddr = 0;
    /// Ticks during which this caller→callee adjacency was on the stack.
    double Time = 0.0;
  };

  std::vector<FunctionTimes> Functions;
  std::vector<ArcTimes> Arcs;
  double TotalTime = 0.0;

  /// Finds a function's times by name; null when absent.
  const FunctionTimes *find(const std::string &Name) const;
  /// Time attributed to the (caller, callee) adjacency, by names.
  double arcTime(const std::string &Caller, const std::string &Callee) const;
};

/// ProfileHooks implementation that gathers complete call stacks on every
/// tick.  Attach with VM::setHooks; extract with buildProfile().
class StackSampleProfiler : public ProfileHooks {
public:
  /// \p TicksPerSecond converts tick counts to seconds, as in the
  /// monitor.
  explicit StackSampleProfiler(uint64_t TicksPerSecond = 60);

  void onCall(Address FromPc, Address SelfPc) override;
  void onTick(Address Pc) override;
  bool wantsStackSamples() const override { return true; }
  void onTickStack(const std::vector<Address> &Stack, Address Pc) override;

  /// Clears all samples.
  void reset();

  /// Total ticks observed.
  uint64_t sampleCount() const { return Samples; }

  /// Resolves the aggregates against \p Syms.
  StackProfile buildProfile(const SymbolTable &Syms) const;

private:
  uint64_t TicksPerSecond;
  uint64_t Samples = 0;
  /// Entry address -> tick counts.
  std::map<Address, uint64_t> SelfTicks;
  std::map<Address, uint64_t> InclusiveTicks;
  /// (caller entry, callee entry) -> ticks that adjacency was active.
  std::map<std::pair<Address, Address>, uint64_t> ArcTicks;
  /// Scratch for per-tick deduplication.
  mutable std::vector<Address> Dedup;
};

} // namespace gprof

#endif // GPROF_STACKPROF_STACKPROFILER_H
