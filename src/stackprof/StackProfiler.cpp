//===- stackprof/StackProfiler.cpp -----------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "stackprof/StackProfiler.h"

#include <algorithm>

using namespace gprof;

const StackProfile::FunctionTimes *
StackProfile::find(const std::string &Name) const {
  for (const FunctionTimes &F : Functions)
    if (F.Name == Name)
      return &F;
  return nullptr;
}

double StackProfile::arcTime(const std::string &Caller,
                             const std::string &Callee) const {
  const FunctionTimes *From = find(Caller);
  const FunctionTimes *To = find(Callee);
  if (!From || !To)
    return 0.0;
  for (const ArcTimes &A : Arcs)
    if (A.CallerAddr == From->Addr && A.CalleeAddr == To->Addr)
      return A.Time;
  return 0.0;
}

StackSampleProfiler::StackSampleProfiler(uint64_t TicksPerSecond)
    : TicksPerSecond(TicksPerSecond) {}

void StackSampleProfiler::onCall(Address, Address) {
  // Stack sampling needs no per-call bookkeeping: that is its whole
  // point (the overhead moved from every call to every sample).
}

void StackSampleProfiler::onTick(Address) {
  // Work happens in onTickStack, which the VM calls for the same tick.
}

void StackSampleProfiler::onTickStack(const std::vector<Address> &Stack,
                                      Address) {
  ++Samples;
  if (Stack.empty())
    return;

  // Self time: the innermost frame.
  ++SelfTicks[Stack.back()];

  // Inclusive time: each distinct function once, even if it appears in
  // several (recursive) frames.
  Dedup.assign(Stack.begin(), Stack.end());
  std::sort(Dedup.begin(), Dedup.end());
  Dedup.erase(std::unique(Dedup.begin(), Dedup.end()), Dedup.end());
  for (Address Fn : Dedup)
    ++InclusiveTicks[Fn];

  // Arc time: each distinct caller->callee adjacency once per tick.
  std::vector<std::pair<Address, Address>> Pairs;
  for (size_t I = 0; I + 1 < Stack.size(); ++I)
    Pairs.emplace_back(Stack[I], Stack[I + 1]);
  std::sort(Pairs.begin(), Pairs.end());
  Pairs.erase(std::unique(Pairs.begin(), Pairs.end()), Pairs.end());
  for (const auto &P : Pairs)
    ++ArcTicks[P];
}

void StackSampleProfiler::reset() {
  Samples = 0;
  SelfTicks.clear();
  InclusiveTicks.clear();
  ArcTicks.clear();
}

StackProfile StackSampleProfiler::buildProfile(const SymbolTable &Syms) const {
  StackProfile Profile;
  const double SecPerTick =
      TicksPerSecond == 0 ? 0.0 : 1.0 / static_cast<double>(TicksPerSecond);
  Profile.TotalTime = static_cast<double>(Samples) * SecPerTick;

  auto NameOf = [&Syms](Address A) -> std::string {
    uint32_t I = Syms.findContaining(A);
    return I == NoSymbol ? std::string("<unknown>") : Syms.symbol(I).Name;
  };

  for (const auto &[Addr, Ticks] : InclusiveTicks) {
    StackProfile::FunctionTimes F;
    F.Name = NameOf(Addr);
    F.Addr = Addr;
    F.InclusiveTime = static_cast<double>(Ticks) * SecPerTick;
    auto SelfIt = SelfTicks.find(Addr);
    if (SelfIt != SelfTicks.end())
      F.SelfTime = static_cast<double>(SelfIt->second) * SecPerTick;
    Profile.Functions.push_back(std::move(F));
  }
  std::sort(Profile.Functions.begin(), Profile.Functions.end(),
            [](const auto &A, const auto &B) {
              return A.InclusiveTime > B.InclusiveTime;
            });

  for (const auto &[Pair, Ticks] : ArcTicks)
    Profile.Arcs.push_back(
        {Pair.first, Pair.second,
         static_cast<double>(Ticks) * SecPerTick});
  return Profile;
}
