//===- prof/ProfBaseline.h - The prof(1) flat-only baseline ---------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The predecessor tool gprof was built to improve on [Unix]: "a table of
/// each function listing the number of times it was called, the time spent
/// in it, and the average time per call" — with no call-graph attribution
/// at all.  It consumes the same gmon data (prof's per-function counters
/// are recovered by summing incoming arc counts) and serves as the
/// baseline comparator in the benches: it demonstrates the paper's
/// motivating complaint that once "the time for an operation spread across
/// the several functions", a flat profile stops telling you which
/// abstraction is expensive.
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_PROF_PROFBASELINE_H
#define GPROF_PROF_PROFBASELINE_H

#include "core/SymbolTable.h"
#include "gmon/ProfileData.h"

#include <string>
#include <vector>

namespace gprof {

/// One row of the prof listing.
struct ProfEntry {
  std::string Name;
  double SelfTime = 0.0;
  uint64_t Calls = 0;

  double msPerCall() const {
    return Calls == 0 ? 0.0
                      : SelfTime * 1000.0 / static_cast<double>(Calls);
  }
};

/// The prof analysis result.
struct ProfReport {
  /// Rows in decreasing self-time order.
  std::vector<ProfEntry> Entries;
  double TotalTime = 0.0;
};

/// Runs the flat-only analysis (counts + self time; no propagation).
ProfReport analyzeProf(const SymbolTable &Syms, const ProfileData &Data);

/// Renders the classic prof table: %time, cumulative seconds, self
/// seconds, calls, ms/call, name.
std::string printProf(const ProfReport &Report);

} // namespace gprof

#endif // GPROF_PROF_PROFBASELINE_H
