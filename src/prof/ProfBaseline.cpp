//===- prof/ProfBaseline.cpp -----------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "prof/ProfBaseline.h"

#include "support/Format.h"

#include <algorithm>

using namespace gprof;

ProfReport gprof::analyzeProf(const SymbolTable &Syms,
                              const ProfileData &Data) {
  ProfReport Report;
  Report.Entries.resize(Syms.size());
  for (uint32_t I = 0; I != Syms.size(); ++I)
    Report.Entries[I].Name = Syms.symbol(I).Name;

  // Self time from the histogram, prorated across bucket overlap — the
  // same rule gprof uses; prof's output differs by what it *doesn't* do
  // with the result, not by the sampling arithmetic.
  if (!Data.Hist.empty() && Data.TicksPerSecond != 0) {
    const double SecPerSample = 1.0 / static_cast<double>(Data.TicksPerSecond);
    for (size_t B = 0; B != Data.Hist.numBuckets(); ++B) {
      uint64_t Samples = Data.Hist.bucketCount(B);
      if (Samples == 0)
        continue;
      Address Start = Data.Hist.bucketStart(B);
      Address End = Data.Hist.bucketEnd(B);
      double BucketSeconds = static_cast<double>(Samples) * SecPerSample;
      double BucketLen = static_cast<double>(End - Start);
      // Walk only the symbols overlapping this bucket.
      uint32_t First = Syms.findContaining(Start);
      if (First == NoSymbol) {
        for (uint32_t I = 0; I != Syms.size(); ++I) {
          if (Syms.symbol(I).Addr >= End)
            break;
          if (Syms.symbol(I).Addr >= Start) {
            First = I;
            break;
          }
        }
      }
      for (uint32_t I = First; I != NoSymbol && I < Syms.size(); ++I) {
        const Symbol &S = Syms.symbol(I);
        if (S.Addr >= End)
          break;
        Address Lo = std::max(S.Addr, Start);
        Address Hi = std::min(S.Addr + S.Size, End);
        if (Hi <= Lo)
          continue;
        Report.Entries[I].SelfTime +=
            BucketSeconds * static_cast<double>(Hi - Lo) / BucketLen;
      }
    }
  }

  // prof's per-function call counters, recovered by summing the counts of
  // arcs into each routine (including recursive calls: prof counted every
  // activation).
  for (const ArcRecord &R : Data.Arcs) {
    uint32_t Callee = Syms.findContaining(R.SelfPc);
    if (Callee != NoSymbol)
      Report.Entries[Callee].Calls += R.Count;
  }

  for (const ProfEntry &E : Report.Entries)
    Report.TotalTime += E.SelfTime;
  std::sort(Report.Entries.begin(), Report.Entries.end(),
            [](const ProfEntry &A, const ProfEntry &B) {
              if (A.SelfTime != B.SelfTime)
                return A.SelfTime > B.SelfTime;
              if (A.Calls != B.Calls)
                return A.Calls > B.Calls;
              return A.Name < B.Name;
            });
  return Report;
}

std::string gprof::printProf(const ProfReport &Report) {
  std::string Out;
  Out += " %time  cumsecs  seconds    #call  ms/call  name\n";
  double Cumulative = 0.0;
  for (const ProfEntry &E : Report.Entries) {
    if (E.SelfTime == 0.0 && E.Calls == 0)
      continue;
    Cumulative += E.SelfTime;
    std::string Calls =
        E.Calls == 0 ? ""
                     : format("%llu", static_cast<unsigned long long>(E.Calls));
    std::string PerCall = E.Calls == 0 ? "" : format("%.2f", E.msPerCall());
    Out += format("%6s %8.2f %8.2f %8s %8s  %s\n",
                  formatPercent(E.SelfTime, Report.TotalTime).c_str(),
                  Cumulative, E.SelfTime, Calls.c_str(), PerCall.c_str(),
                  E.Name.c_str());
  }
  return Out;
}
