//===- hostprof/HostProfiler.h - Native profiling via real compiler hooks -===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reproduction's "real hardware" variant: the same two collection
/// mechanisms as the paper, on the host, using actual compiler
/// instrumentation.
///
///  - GCC's -finstrument-functions emits calls to
///    __cyg_profile_func_enter(callee, call_site) in every prologue —
///    precisely the (arc destination, arc source) pair mcount derives from
///    return addresses in §3.1.  The hook records arcs in the same
///    ArcRecorder structures the VM runtime uses.
///  - An ITIMER_PROF interval timer delivers SIGPROF in program time; the
///    (async-signal-safe) handler increments a preallocated histogram
///    bucket for the interrupted PC, exactly like the kernel's clock-tick
///    histogram in §3.2.
///
/// Symbolization happens at dump time via dladdr (link with -rdynamic so
/// local symbols resolve).  Everything degrades gracefully: unresolvable
/// addresses print as hex, and if /proc/self/maps cannot be parsed the
/// histogram is simply absent.
///
/// Only executables compiled with -finstrument-functions produce arcs;
/// this library itself is exempted via no_instrument_function attributes.
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_HOSTPROF_HOSTPROFILER_H
#define GPROF_HOSTPROF_HOSTPROFILER_H

#include "core/SymbolTable.h"
#include "gmon/ProfileData.h"
#include "support/Error.h"

#include <string>

namespace gprof {
namespace host {

/// Host profiler configuration.
struct HostProfilerOptions {
  /// SIGPROF period in microseconds of program (user+system) time.
  uint64_t SampleMicros = 1000;
  /// Histogram bucket granularity in bytes of text.
  uint64_t BucketBytes = 16;
  /// Enable the PC-sampling histogram (arcs are always collected while
  /// the profiler is running).
  bool SampleHistogram = true;
};

/// Starts collecting.  Idempotent; returns an error if the text range for
/// the histogram cannot be determined (arcs still work in that case only
/// if \p Opts.SampleHistogram was false).
Error start(const HostProfilerOptions &Opts = HostProfilerOptions());

/// Stops collecting (cancels the timer; enter hooks become no-ops).
void stop();

/// True while collecting.
bool isRunning();

/// Zeroes collected arcs and samples.
void reset();

/// Snapshots the collected data.  TicksPerSecond is derived from the
/// sampling period.
ProfileData extract();

/// Builds a symbol table for the addresses appearing in \p Data using
/// dladdr.  Sizes are estimated as the gap to the next known symbol.
SymbolTable symbolize(const ProfileData &Data);

/// Convenience: stop, extract, and write a gmon file to \p Path.
Error stopAndDump(const std::string &Path);

} // namespace host
} // namespace gprof

#endif // GPROF_HOSTPROF_HOSTPROFILER_H
