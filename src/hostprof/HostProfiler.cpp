//===- hostprof/HostProfiler.cpp -------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "hostprof/HostProfiler.h"

#include "gmon/GmonFile.h"
#include "runtime/ArcTable.h"
#include "support/Format.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <map>
#include <vector>

#include <cxxabi.h>
#include <dlfcn.h>
#include <signal.h>
#include <sys/time.h>
#include <unistd.h>

#define NO_INSTRUMENT __attribute__((no_instrument_function))

using namespace gprof;

namespace {

/// Global collector state.  The SIGPROF handler touches only Hist*,
/// HistLow, HistBucket and HistSlots, all fixed after start() — making the
/// handler async-signal-safe.
struct CollectorState {
  std::atomic<bool> Running{false};
  bool ArcsEnabled = false;
  host::HostProfilerOptions Opts;

  OpenAddressingArcTable Arcs{1 << 14};
  /// Reentrancy guard for the enter hook.
  bool InHook = false;

  /// Preallocated histogram over the main executable's text segment.
  std::vector<uint64_t> HistCounts;
  Address HistLow = 0;
  Address HistHigh = 0;
  std::atomic<uint64_t> OutOfRangeSamples{0};
};

NO_INSTRUMENT CollectorState &state() {
  static CollectorState S;
  return S;
}

/// Finds the main executable's executable-mapped range via
/// /proc/self/maps.
NO_INSTRUMENT bool findTextRange(Address &Low, Address &High) {
  std::FILE *F = std::fopen("/proc/self/maps", "r");
  if (!F)
    return false;
  char ExePath[4096] = {0};
  ssize_t N = ::readlink("/proc/self/exe", ExePath, sizeof(ExePath) - 1);
  if (N <= 0) {
    std::fclose(F);
    return false;
  }
  ExePath[N] = '\0';

  bool Found = false;
  char Line[4352];
  while (std::fgets(Line, sizeof(Line), F)) {
    unsigned long long Lo, Hi;
    char Perms[8] = {0};
    char Path[4096] = {0};
    int Fields = std::sscanf(Line, "%llx-%llx %7s %*s %*s %*s %4095s", &Lo,
                             &Hi, Perms, Path);
    if (Fields < 4)
      continue;
    if (std::strcmp(Path, ExePath) != 0)
      continue;
    if (std::strchr(Perms, 'x') == nullptr)
      continue;
    if (!Found) {
      Low = Lo;
      High = Hi;
      Found = true;
    } else {
      Low = std::min<Address>(Low, Lo);
      High = std::max<Address>(High, Hi);
    }
  }
  std::fclose(F);
  return Found;
}

NO_INSTRUMENT void sigprofHandler(int /*Sig*/, siginfo_t * /*Info*/,
                                  void *Ctx) {
  CollectorState &S = state();
  if (!S.Running.load(std::memory_order_relaxed))
    return;
  auto *UC = static_cast<ucontext_t *>(Ctx);
#if defined(__x86_64__)
  Address Pc = static_cast<Address>(UC->uc_mcontext.gregs[REG_RIP]);
#elif defined(__aarch64__)
  Address Pc = static_cast<Address>(UC->uc_mcontext.pc);
#else
  Address Pc = 0;
  (void)UC;
#endif
  if (Pc >= S.HistLow && Pc < S.HistHigh && !S.HistCounts.empty()) {
    size_t Idx =
        static_cast<size_t>((Pc - S.HistLow) / S.Opts.BucketBytes);
    if (Idx < S.HistCounts.size())
      ++S.HistCounts[Idx];
  } else {
    S.OutOfRangeSamples.fetch_add(1, std::memory_order_relaxed);
  }
}

NO_INSTRUMENT std::string demangle(const char *Name) {
  int Status = 0;
  char *Demangled = abi::__cxa_demangle(Name, nullptr, nullptr, &Status);
  if (Status == 0 && Demangled) {
    std::string Out(Demangled);
    std::free(Demangled);
    return Out;
  }
  std::free(Demangled);
  return Name;
}

} // namespace

//===----------------------------------------------------------------------===//
// The instrumentation hooks (C linkage, required names).
//===----------------------------------------------------------------------===//

extern "C" {

NO_INSTRUMENT void __cyg_profile_func_enter(void *Fn, void *CallSite) {
  CollectorState &S = state();
  if (!S.ArcsEnabled || S.InHook)
    return;
  S.InHook = true;
  S.Arcs.record(reinterpret_cast<Address>(CallSite),
                reinterpret_cast<Address>(Fn));
  S.InHook = false;
}

NO_INSTRUMENT void __cyg_profile_func_exit(void * /*Fn*/,
                                           void * /*CallSite*/) {
  // gprof's scheme needs only the entry event; exits are ignored.
}

} // extern "C"

//===----------------------------------------------------------------------===//
// Control interface
//===----------------------------------------------------------------------===//

Error host::start(const HostProfilerOptions &Opts) {
  CollectorState &S = state();
  if (S.Running.load())
    return Error::success();
  S.Opts = Opts;

  if (Opts.SampleHistogram) {
    if (!findTextRange(S.HistLow, S.HistHigh))
      return Error::failure(
          "cannot determine the executable's text range from "
          "/proc/self/maps");
    size_t Buckets = static_cast<size_t>(
        (S.HistHigh - S.HistLow + Opts.BucketBytes - 1) / Opts.BucketBytes);
    S.HistCounts.assign(Buckets, 0);

    struct sigaction SA;
    std::memset(&SA, 0, sizeof(SA));
    SA.sa_sigaction = sigprofHandler;
    SA.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&SA.sa_mask);
    if (sigaction(SIGPROF, &SA, nullptr) != 0)
      return Error::failure("sigaction(SIGPROF) failed");

    itimerval Timer;
    Timer.it_interval.tv_sec =
        static_cast<time_t>(Opts.SampleMicros / 1000000);
    Timer.it_interval.tv_usec =
        static_cast<suseconds_t>(Opts.SampleMicros % 1000000);
    Timer.it_value = Timer.it_interval;
    if (setitimer(ITIMER_PROF, &Timer, nullptr) != 0)
      return Error::failure("setitimer(ITIMER_PROF) failed");
  }

  S.ArcsEnabled = true;
  S.Running.store(true);
  return Error::success();
}

void host::stop() {
  CollectorState &S = state();
  if (!S.Running.load())
    return;
  S.Running.store(false);
  S.ArcsEnabled = false;
  itimerval Timer;
  std::memset(&Timer, 0, sizeof(Timer));
  setitimer(ITIMER_PROF, &Timer, nullptr);
}

bool host::isRunning() { return state().Running.load(); }

void host::reset() {
  CollectorState &S = state();
  S.Arcs.reset();
  std::fill(S.HistCounts.begin(), S.HistCounts.end(), 0);
  S.OutOfRangeSamples.store(0);
}

ProfileData host::extract() {
  CollectorState &S = state();
  ProfileData Data;
  Data.TicksPerSecond =
      S.Opts.SampleMicros == 0 ? 1 : 1000000 / S.Opts.SampleMicros;
  Data.Arcs = S.Arcs.snapshot();
  if (!S.HistCounts.empty()) {
    Histogram H(S.HistLow, S.HistHigh, S.Opts.BucketBytes);
    for (size_t I = 0; I != S.HistCounts.size() && I != H.numBuckets(); ++I)
      H.setBucketCount(I, S.HistCounts[I]);
    Data.Hist = std::move(H);
  }
  return Data;
}

SymbolTable host::symbolize(const ProfileData &Data) {
  // Collect candidate function entry addresses: arc destinations resolve
  // through dladdr to symbol base addresses.
  std::map<Address, std::string> Entries;
  auto AddAddr = [&Entries](Address A) {
    if (A == 0 || Entries.count(A))
      return;
    Dl_info Info;
    // Accept a resolved symbol only if its base is plausibly the entry of
    // the function containing A; dladdr can otherwise report a distant
    // preceding exported symbol, which would mislabel everything after it.
    if (dladdr(reinterpret_cast<void *>(A), &Info) != 0 &&
        Info.dli_saddr &&
        A - reinterpret_cast<Address>(Info.dli_saddr) < (1u << 20)) {
      Address Base = reinterpret_cast<Address>(Info.dli_saddr);
      std::string Name = Info.dli_sname
                             ? demangle(Info.dli_sname)
                             : format("0x%llx",
                                      static_cast<unsigned long long>(Base));
      Entries.emplace(Base, std::move(Name));
    } else {
      Entries.emplace(
          A, format("0x%llx", static_cast<unsigned long long>(A)));
    }
  };
  for (const ArcRecord &R : Data.Arcs) {
    AddAddr(R.SelfPc);
    AddAddr(R.FromPc);
  }

  SymbolTable Table;
  Address NextStart = 0;
  // Walk backwards so each symbol's size is bounded by its successor.
  for (auto It = Entries.rbegin(); It != Entries.rend(); ++It) {
    uint64_t Size =
        NextStart > It->first ? NextStart - It->first : 4096;
    Size = std::min<uint64_t>(Size, 1 << 20);
    Table.addSymbol(It->second, It->first, Size);
    NextStart = It->first;
  }
  cantFail(Table.finalize());
  return Table;
}

Error host::stopAndDump(const std::string &Path) {
  stop();
  ProfileData Data = extract();
  return writeGmonFile(Path, Data);
}
