//===- tools/tlrun.cpp - Run a TLX image, emitting profile data -----------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes an image on the VM.  If the image was compiled with profiling
/// (or --force-monitor is given), a Monitor gathers arcs and PC samples
/// during execution and condenses them to a gmon file at exit — the
/// paper's "gather profiling data in memory during program execution and
/// ... condense it to a file as the profiled program exits".  With
/// --threads N the image runs on N interpreter threads sharing that one
/// monitor, and the written profile is the canonical merge of every
/// thread's tables (docs/RUNTIME_MT.md).  With --push SOCKET the same
/// condensed profile is also uploaded to a `gprof-store serve` daemon,
/// turning every run into a continuous-profiling sample (docs/SERVE.md).
///
//===----------------------------------------------------------------------===//

#include "core/SymbolTable.h"
#include "gmon/GmonFile.h"
#include "runtime/Monitor.h"
#include "serve/Client.h"
#include "stackprof/StackProfiler.h"
#include "support/CommandLine.h"
#include "support/FileUtils.h"
#include "support/Format.h"
#include "support/MappedFile.h"
#include "support/Sha256.h"
#include "support/Telemetry.h"
#include "support/TraceWriter.h"
#include "vm/ParallelRun.h"
#include "vm/VM.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace gprof;

int main(int Argc, char **Argv) {
  OptionParser Opts("tlrun", "execute a TLX image on the virtual machine");
  Opts.setPositionalHelp("image.tlx");
  Opts.addOption("gmon", 'g', "FILE",
                 "profile output path (default gmon.out)");
  Opts.addOption("hz", 0, "N", "sampling ticks per second (default 60)");
  Opts.addOption("cycles-per-tick", 0, "N",
                 "virtual cycles per clock tick (default 10000)");
  Opts.addOption("bucket-size", 0, "N",
                 "histogram bucket granularity in addresses (default 1)");
  Opts.addOption("table", 't', "KIND",
                 "arc table: bsd, open, or map (default bsd)");
  Opts.addOption("threads", 'T', "N",
                 "run N interpreter threads over the image, sharing one "
                 "monitor (default 1)");
  Opts.addFlag("no-sample", 0, "disable the PC sample histogram");
  Opts.addFlag("no-arcs", 0, "disable call graph arc recording");
  Opts.addFlag("contexts", 'c',
               "also record the calling-context tree (exact per-context "
               "times; read back with gprof --contexts / --prop-error)");
  Opts.addOption("cct-node-limit", 0, "N",
                 "per-thread context-tree node budget (default 1048576)");
  Opts.addFlag("force-monitor", 0,
               "attach the monitor even if nothing was compiled with --pg");
  Opts.addFlag("stack", 's',
               "use complete-call-stack sampling instead of the gprof "
               "monitor and print exact self/inclusive times");
  Opts.addOption("push", 'p', "SOCKET",
                 "also upload the profile to the gprof-store serve daemon "
                 "listening on SOCKET");
  Opts.addOption("trace-out", 0, "FILE",
                 "write run/push spans as Chrome trace-event JSON to FILE; "
                 "push spans carry the daemon's request id");
  Opts.addFlag("quiet", 'q', "suppress printed program output");

  if (Error E = Opts.parse(Argc, Argv)) {
    std::fprintf(stderr, "tlrun: %s\n", E.message().c_str());
    return 1;
  }
  if (Opts.hasFlag("help")) {
    std::printf("%s", Opts.helpText().c_str());
    return 0;
  }
  if (Opts.positional().size() != 1) {
    std::fprintf(stderr, "tlrun: expected exactly one image\n");
    return 1;
  }

  auto Img = Image::loadFromFile(Opts.positional().front());
  if (!Img) {
    std::fprintf(stderr, "tlrun: %s\n", Img.message().c_str());
    return 1;
  }

  std::optional<std::string> TracePath = Opts.getValue("trace-out");
  if (TracePath) {
    telemetry::Registry::instance().enableSpans(true);
    telemetry::Registry::instance().setCurrentThreadName("main");
  }

  auto ParseU64 = [&](const char *Name, uint64_t Default) -> uint64_t {
    auto V = Opts.getValue(Name);
    if (!V)
      return Default;
    unsigned long long Parsed;
    if (!parseUInt64(*V, Parsed) || Parsed == 0) {
      std::fprintf(stderr, "tlrun: invalid --%s value '%s'\n", Name,
                   V->c_str());
      std::exit(1);
    }
    return Parsed;
  };

  VMOptions VO;
  VO.CyclesPerTick = ParseU64("cycles-per-tick", 10000);
  VM Machine(*Img, VO);

  bool AnyProfiled = false;
  for (const FuncInfo &F : Img->Functions)
    AnyProfiled |= F.Profiled;

  MonitorOptions MO;
  MO.HistBucketSize = ParseU64("bucket-size", 1);
  MO.TicksPerSecond = ParseU64("hz", 60);
  MO.SampleHistogram = !Opts.hasFlag("no-sample");
  MO.RecordArcs = !Opts.hasFlag("no-arcs");
  MO.RecordContexts = Opts.hasFlag("contexts");
  MO.CctNodeLimit =
      static_cast<uint32_t>(ParseU64("cct-node-limit", 1u << 20));
  if (auto Table = Opts.getValue("table")) {
    if (*Table == "bsd") {
      MO.TableKind = ArcTableKind::Bsd;
    } else if (*Table == "open") {
      MO.TableKind = ArcTableKind::OpenAddressing;
    } else if (*Table == "map") {
      MO.TableKind = ArcTableKind::StdMap;
    } else {
      std::fprintf(stderr, "tlrun: unknown arc table kind '%s'\n",
                   Table->c_str());
      return 1;
    }
  }

  uint64_t ThreadCount = ParseU64("threads", 1);
  if (ThreadCount > 1 && Opts.hasFlag("stack")) {
    std::fprintf(stderr, "tlrun: --stack is single-threaded; it cannot be "
                         "combined with --threads\n");
    return 1;
  }

  std::unique_ptr<Monitor> Mon;
  std::unique_ptr<StackSampleProfiler> StackProf;
  if (Opts.hasFlag("stack")) {
    StackProf = std::make_unique<StackSampleProfiler>(MO.TicksPerSecond);
    Machine.setHooks(StackProf.get());
  } else if (AnyProfiled || Opts.hasFlag("force-monitor")) {
    Mon = std::make_unique<Monitor>(Img->lowPc(), Img->highPc(), MO);
    Machine.setHooks(Mon.get());
  }

  if (ThreadCount > 1) {
    // The concurrent workload: every thread runs the image's entry
    // function on its own VM, all feeding the one shared Monitor.
    auto Results =
        runOnThreads(*Img, VO, Mon.get(),
                     static_cast<unsigned>(ThreadCount));
    if (!Results) {
      std::fprintf(stderr, "tlrun: %s\n", Results.message().c_str());
      return 1;
    }
    uint64_t Instructions = 0, Cycles = 0, Ticks = 0;
    for (size_t T = 0; T != Results->size(); ++T) {
      const RunResult &R = (*Results)[T];
      if (!Opts.hasFlag("quiet"))
        for (int64_t V : R.Printed)
          std::printf("[thread %zu] %lld\n", T, static_cast<long long>(V));
      Instructions += R.Instructions;
      Cycles += R.Cycles;
      Ticks += R.Ticks;
    }
    std::fprintf(stderr,
                 "tlrun: %llu threads, exit value %lld, %llu instructions, "
                 "%llu cycles, %llu ticks\n",
                 static_cast<unsigned long long>(ThreadCount),
                 static_cast<long long>(Results->front().ExitValue),
                 static_cast<unsigned long long>(Instructions),
                 static_cast<unsigned long long>(Cycles),
                 static_cast<unsigned long long>(Ticks));
  } else {
    auto Result = Machine.run();
    if (!Result) {
      std::fprintf(stderr, "tlrun: %s\n", Result.message().c_str());
      return 1;
    }

    if (!Opts.hasFlag("quiet"))
      for (int64_t V : Result->Printed)
        std::printf("%lld\n", static_cast<long long>(V));
    std::fprintf(stderr,
                 "tlrun: exit value %lld, %llu instructions, %llu cycles, "
                 "%llu ticks\n",
                 static_cast<long long>(Result->ExitValue),
                 static_cast<unsigned long long>(Result->Instructions),
                 static_cast<unsigned long long>(Result->Cycles),
                 static_cast<unsigned long long>(Result->Ticks));
  }

  if (Mon) {
    ProfileData Prof = Mon->finish();
    std::string GmonPath = Opts.getValue("gmon").value_or("gmon.out");
    if (Error E = writeGmonFile(GmonPath, Prof)) {
      std::fprintf(stderr, "tlrun: %s\n", E.message().c_str());
      return 1;
    }
    std::fprintf(stderr, "tlrun: profile written to %s\n", GmonPath.c_str());

    // Continuous profiling: push the same condensed profile to the serve
    // daemon.  Transient failures (daemon at capacity, socket hiccups)
    // are retried with bounded backoff inside the client; a daemon that
    // stays unreachable is a clean nonzero exit, never a crash — the
    // on-disk gmon file above is already safe either way.
    if (auto Endpoint = Opts.getValue("push")) {
      // Identity hash straight out of the mapping, no image-sized copy.
      auto ImageMap = MappedFile::open(Opts.positional().front());
      if (!ImageMap) {
        std::fprintf(stderr, "tlrun: %s\n", ImageMap.message().c_str());
        return 1;
      }
      serve::ServeClient Client(*Endpoint);
      auto Digest = Client.putProfile(
          Prof, Sha256::hash(ImageMap->data(), ImageMap->size()));
      if (!Digest) {
        std::fprintf(stderr, "tlrun: push to '%s' failed: %s\n",
                     Endpoint->c_str(), Digest.message().c_str());
        return 1;
      }
      std::fprintf(stderr, "tlrun: profile pushed as %s\n",
                   digestToHex(*Digest).substr(0, 12).c_str());
    }
  }

  if (StackProf) {
    StackProfile P =
        StackProf->buildProfile(SymbolTable::fromImage(*Img));
    std::printf("\nstack-sample profile (%llu samples):\n",
                static_cast<unsigned long long>(StackProf->sampleCount()));
    std::printf("   self secs   incl secs  name\n");
    for (const auto &F : P.Functions)
      std::printf("%12.2f %11.2f  %s\n", F.SelfTime, F.InclusiveTime,
                  F.Name.c_str());
  }

  // GPROF_TELEMETRY=-|stderr dumps the runtime counters (mcount probe
  // behaviour, arc-table occupancy, histogram ticks) as flat stats JSON
  // to stderr; any other value names a file to write instead.  The knob
  // is an env variable, not a flag, so profiled programs need no argv
  // changes to be inspected.
  if (TracePath) {
    TraceWriter W = TraceWriter::fromTelemetry("tlrun");
    if (Error E = W.writeFile(*TracePath)) {
      std::fprintf(stderr, "tlrun: %s\n", E.message().c_str());
      return 1;
    }
    std::fprintf(stderr, "tlrun: wrote %zu trace event(s) to %s\n",
                 W.numEvents(), TracePath->c_str());
  }

  if (const char *Dest = std::getenv("GPROF_TELEMETRY")) {
    if (Mon)
      Mon->publishTelemetry();
    std::string Json =
        telemetry::Registry::instance().renderStatsJson("tlrun_stats");
    if (std::strcmp(Dest, "-") == 0 || std::strcmp(Dest, "stderr") == 0) {
      std::fprintf(stderr, "%s", Json.c_str());
    } else if (Error E = writeFileText(Dest, Json)) {
      std::fprintf(stderr, "tlrun: %s\n", E.message().c_str());
      return 1;
    }
  }
  return 0;
}
