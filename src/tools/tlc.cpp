//===- tools/tlc.cpp - The TL compiler driver ------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles TL source to an executable image.  The --pg flag requests
/// profiling prologues, exactly as the paper's compilers did on request.
///
//===----------------------------------------------------------------------===//

#include "lang/ASTPrinter.h"
#include "lang/Diagnostics.h"
#include "lang/Parser.h"
#include "lang/Sema.h"
#include "support/CommandLine.h"
#include "support/FileUtils.h"
#include "vm/CodeGen.h"
#include "vm/Disassembler.h"

#include <cstdio>

using namespace gprof;

int main(int Argc, char **Argv) {
  OptionParser Opts("tlc", "compile TL source to a TLX executable image");
  Opts.setPositionalHelp("input.tl");
  Opts.addOption("output", 'o', "FILE", "output image path (default a.tlx)");
  Opts.addFlag("pg", 'p', "insert profiling prologues (mcount calls)");
  Opts.addOption("no-profile", 'n', "NAME",
                 "compile NAME without a profiling prologue (repeatable)");
  Opts.addOption("inline", 'i', "NAME",
                 "inline-expand calls to NAME (repeatable)");
  Opts.addFlag("disasm", 'd', "print a disassembly of the image");
  Opts.addFlag("dump-ast", 'a', "print the resolved AST and exit");

  if (Error E = Opts.parse(Argc, Argv)) {
    std::fprintf(stderr, "tlc: %s\n", E.message().c_str());
    return 1;
  }
  if (Opts.hasFlag("help")) {
    std::printf("%s", Opts.helpText().c_str());
    return 0;
  }
  if (Opts.positional().size() != 1) {
    std::fprintf(stderr, "tlc: expected exactly one input file\n");
    return 1;
  }

  const std::string &InputPath = Opts.positional().front();
  auto Source = readFileText(InputPath);
  if (!Source) {
    std::fprintf(stderr, "tlc: %s\n", Source.message().c_str());
    return 1;
  }

  CodeGenOptions CG;
  CG.EnableProfiling = Opts.hasFlag("pg");
  CG.UnprofiledFunctions = Opts.getValues("no-profile");
  CG.InlineFunctions = Opts.getValues("inline");

  if (Opts.hasFlag("dump-ast")) {
    DiagnosticEngine Diags;
    Program P = parseTL(*Source, Diags);
    if (!Diags.hasErrors())
      analyze(P, Diags);
    std::fprintf(stderr, "%s", Diags.renderAll(InputPath).c_str());
    if (Diags.hasErrors())
      return 1;
    std::printf("%s", printAST(P).c_str());
    return 0;
  }

  DiagnosticEngine Diags;
  auto Img = compileTL(*Source, CG, Diags);
  std::fprintf(stderr, "%s", Diags.renderAll(InputPath).c_str());
  if (!Img)
    return 1;

  if (Opts.hasFlag("disasm"))
    std::printf("%s", disassemble(*Img).c_str());

  std::string OutputPath = Opts.getValue("output").value_or("a.tlx");
  if (Error E = Img->saveToFile(OutputPath)) {
    std::fprintf(stderr, "tlc: %s\n", E.message().c_str());
    return 1;
  }
  return 0;
}
