//===- tools/gprof_store_tool.cpp - The profile repository CLI ------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line face of the profile store: `gprof-store put` ingests gmon
/// shards into a content-addressed repository, `list` shows the index,
/// `merge` aggregates any subset through the parallel k-way merge tree
/// (caching the result by the member digest set), `report` feeds a merged
/// aggregate straight into the gprof analyzer and printers, `compact`
/// folds shards into tiered runs so reports over thousands of shards
/// merge a handful of partial aggregates (store/ProfileStore.h), and `gc`
/// sweeps stale cache entries, orphaned objects and runs — optionally
/// expiring shards by capture time (`--expire-before`).  This is the
/// fleet-scale version of "summing the data over several profiled runs":
/// shards accumulate across runs and machines, and any subset — including
/// a capture-time window (`report --since/--until`) — can be turned into
/// a profile listing on demand.
///
/// The continuous-profiling commands move shards over a local socket
/// instead of a shared filesystem: `serve` runs the long-lived ingestion
/// daemon (src/serve/Server.h), and `push`/`query` are its CLI clients —
/// the same protocol `tlrun --push` speaks at profile-write time
/// (docs/SERVE.md).
///
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"
#include "core/FlatPrinter.h"
#include "core/GraphPrinter.h"
#include "gmon/GmonFile.h"
#include "serve/Client.h"
#include "serve/Server.h"
#include "store/ProfileStore.h"
#include "support/CommandLine.h"
#include "support/EventLog.h"
#include "support/FileUtils.h"
#include "support/Format.h"
#include "support/MappedFile.h"
#include "support/Telemetry.h"
#include "support/TraceWriter.h"
#include "vm/Image.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <thread>

using namespace gprof;

namespace {

int fail(const std::string &Message) {
  std::fprintf(stderr, "gprof-store: %s\n", Message.c_str());
  return 1;
}

/// Declares the shared --stats[=FILE] option (support/Telemetry.h) on a
/// subcommand parser.
void addStatsFlag(OptionParser &Opts) { telemetry::addStatsOption(Opts); }

/// Honors --stats[=FILE]: bare dumps to stderr, =FILE writes the file.
void maybeDumpStats(const OptionParser &Opts) {
  if (Error E = telemetry::emitStatsIfRequested(Opts, "gprof_store_stats"))
    std::fprintf(stderr, "gprof-store: %s\n", E.message().c_str());
}

/// Hashes the image file at \p Path into a store image identity.
Expected<Sha256Digest> imageIdForFile(const std::string &Path) {
  // Hash straight out of the mapping; no copy of the image bytes.
  auto Map = MappedFile::open(Path);
  if (!Map)
    return Map.takeError();
  return Sha256::hash(Map->data(), Map->size());
}

/// Parses --jobs into a worker count (0 = hardware threads).
bool parseJobs(OptionParser &Opts, unsigned &Jobs) {
  Jobs = 0;
  if (auto V = Opts.getValue("jobs")) {
    unsigned long long N;
    if (!parseUInt64(*V, N) || N > 1024)
      return false;
    Jobs = static_cast<unsigned>(N);
  }
  return true;
}

/// Parses an optional u64 value (capture-time nanoseconds); false on
/// malformed input.  \p Present reports whether the option was given.
bool parseU64Option(const OptionParser &Opts, const char *Name, uint64_t &Out,
                    bool &Present) {
  Present = false;
  Out = 0;
  auto V = Opts.getValue(Name);
  if (!V)
    return true;
  unsigned long long N;
  if (!parseUInt64(*V, N))
    return false;
  Out = N;
  Present = true;
  return true;
}

/// Resolves positional digest-prefix arguments (after the leading \p Skip
/// positionals) into full member digests; empty result means "all shards".
Expected<std::vector<Sha256Digest>> resolveMembers(const ProfileStore &Store,
                                                   const OptionParser &Opts,
                                                   size_t Skip) {
  std::vector<Sha256Digest> Members;
  for (size_t I = Skip; I < Opts.positional().size(); ++I) {
    auto Info = Store.resolve(Opts.positional()[I]);
    if (!Info)
      return Info.takeError();
    Members.push_back(Info->Digest);
  }
  return Members;
}

int cmdPut(int Argc, const char *const *Argv) {
  OptionParser Opts("gprof-store put",
                    "ingest gmon shards into a profile store");
  Opts.setPositionalHelp("STORE gmon.out ...");
  Opts.addOption("image", 'i', "FILE",
                 "TLX image the shards were profiled against; pins the "
                 "store to its identity");
  Opts.addFlag("tolerant", 0,
               "salvage whole records from truncated gmon files instead of "
               "rejecting them");
  Opts.addOption("capture-time", 0, "NS",
                 "stamp the shards with this capture time (nanoseconds "
                 "since the epoch) instead of now — for backfilling "
                 "historical profiles");
  addStatsFlag(Opts);
  if (Error E = Opts.parse(Argc, Argv))
    return fail(E.message());
  if (Opts.hasFlag("help")) {
    std::printf("%s", Opts.helpText().c_str());
    return 0;
  }
  if (Opts.positional().size() < 2)
    return fail("expected a store path and at least one gmon file");
  uint64_t CaptureTimeNs;
  bool HaveCaptureTime;
  if (!parseU64Option(Opts, "capture-time", CaptureTimeNs, HaveCaptureTime))
    return fail("invalid --capture-time value");
  (void)HaveCaptureTime; // 0 (and absent) both mean "stamp with now".

  Sha256Digest ImageId{};
  if (auto ImagePath = Opts.getValue("image")) {
    auto Id = imageIdForFile(*ImagePath);
    if (!Id)
      return fail(Id.message());
    ImageId = *Id;
  }

  StoreOptions StoreOpts;
  StoreOpts.TolerantReads = Opts.hasFlag("tolerant");
  auto Store = ProfileStore::open(Opts.positional().front(), StoreOpts);
  if (!Store)
    return fail(Store.message());
  for (size_t I = 1; I < Opts.positional().size(); ++I) {
    const std::string &Path = Opts.positional()[I];
    auto Digest = Store->putFile(Path, ImageId, CaptureTimeNs);
    if (!Digest)
      return fail(Digest.message());
    std::printf("%s %s\n", digestToHex(*Digest).c_str(), Path.c_str());
  }
  maybeDumpStats(Opts);
  return 0;
}

int cmdList(int Argc, const char *const *Argv) {
  OptionParser Opts("gprof-store list", "list the shards in a profile store");
  Opts.setPositionalHelp("STORE");
  if (Error E = Opts.parse(Argc, Argv))
    return fail(E.message());
  if (Opts.hasFlag("help")) {
    std::printf("%s", Opts.helpText().c_str());
    return 0;
  }
  if (Opts.positional().size() != 1)
    return fail("expected exactly one store path");

  auto Store = ProfileStore::open(Opts.positional().front());
  if (!Store)
    return fail(Store.message());
  std::printf("%-12s %6s %10s %10s %8s %s\n", "digest", "runs", "samples",
              "arcs", "hz", "image");
  for (const ShardInfo &S : Store->shards())
    std::printf("%-12s %6u %10llu %10llu %8llu %s\n",
                digestToHex(S.Digest).substr(0, 12).c_str(), S.Runs,
                static_cast<unsigned long long>(S.TotalSamples),
                static_cast<unsigned long long>(S.NumArcs),
                static_cast<unsigned long long>(S.Hz),
                S.ImageId == Sha256Digest{}
                    ? "-"
                    : digestToHex(S.ImageId).substr(0, 12).c_str());
  std::printf("%zu shard(s)\n", Store->shards().size());
  return 0;
}

int cmdMerge(int Argc, const char *const *Argv) {
  OptionParser Opts("gprof-store merge",
                    "aggregate shards with the parallel k-way merge tree");
  Opts.setPositionalHelp("STORE [DIGEST-PREFIX ...]");
  Opts.addOption("jobs", 'j', "N",
                 "worker threads for the merge tree (0 = one per core)");
  Opts.addOption("output", 'o', "FILE",
                 "also write the merged gmon data to FILE");
  addStatsFlag(Opts);
  if (Error E = Opts.parse(Argc, Argv))
    return fail(E.message());
  if (Opts.hasFlag("help")) {
    std::printf("%s", Opts.helpText().c_str());
    return 0;
  }
  if (Opts.positional().empty())
    return fail("expected a store path");
  unsigned Jobs;
  if (!parseJobs(Opts, Jobs))
    return fail("invalid --jobs value");

  auto Store = ProfileStore::open(Opts.positional().front());
  if (!Store)
    return fail(Store.message());
  auto Members = resolveMembers(*Store, Opts, 1);
  if (!Members)
    return fail(Members.message());

  ThreadPool Pool(Jobs);
  auto Result = Store->merge(Members.takeValue(), &Pool);
  if (!Result)
    return fail(Result.message());
  if (auto OutPath = Opts.getValue("output"))
    if (Error E = writeGmonFile(*OutPath, Result->Data))
      return fail(E.message());
  std::printf("aggregate %s over %zu shard(s): %u run(s), %llu sample(s), "
              "%zu arc(s)%s\n",
              digestToHex(Result->Digest).substr(0, 12).c_str(),
              Result->MemberCount, Result->Data.RunCount,
              static_cast<unsigned long long>(
                  Result->Data.Hist.totalSamples()),
              Result->Data.Arcs.size(),
              Result->CacheHit ? " [cached]" : "");
  maybeDumpStats(Opts);
  return 0;
}

int cmdReport(int Argc, const char *const *Argv) {
  OptionParser Opts("gprof-store report",
                    "print gprof listings for a merged aggregate");
  Opts.setPositionalHelp("STORE image.tlx [DIGEST-PREFIX ...]");
  Opts.addOption("jobs", 'j', "N",
                 "worker threads for the merge tree and the analysis "
                 "pipeline (0 = one per core)");
  Opts.addFlag("brief", 'b', "suppress field descriptions");
  Opts.addFlag("zero", 'z', "show zero-time zero-call routines as rows");
  Opts.addFlag("flat-only", 0, "print only the flat profile");
  Opts.addFlag("graph-only", 0, "print only the call graph profile");
  Opts.addFlag("no-index", 0, "omit the index-by-name table");
  Opts.addOption("since", 0, "NS",
                 "only shards captured at or after this time (nanoseconds "
                 "since the epoch)");
  Opts.addOption("until", 0, "NS",
                 "only shards captured at or before this time (nanoseconds "
                 "since the epoch)");
  addStatsFlag(Opts);
  if (Error E = Opts.parse(Argc, Argv))
    return fail(E.message());
  if (Opts.hasFlag("help")) {
    std::printf("%s", Opts.helpText().c_str());
    return 0;
  }
  if (Opts.positional().size() < 2)
    return fail("expected a store path and an image path");
  unsigned Jobs;
  if (!parseJobs(Opts, Jobs))
    return fail("invalid --jobs value");
  uint64_t SinceNs, UntilNs;
  bool HaveSince, HaveUntil;
  if (!parseU64Option(Opts, "since", SinceNs, HaveSince))
    return fail("invalid --since value");
  if (!parseU64Option(Opts, "until", UntilNs, HaveUntil))
    return fail("invalid --until value");

  auto Img = Image::loadFromFile(Opts.positional()[1]);
  if (!Img)
    return fail(Img.message());
  auto Store = ProfileStore::open(Opts.positional().front());
  if (!Store)
    return fail(Store.message());
  auto Members = resolveMembers(*Store, Opts, 2);
  if (!Members)
    return fail(Members.message());
  if (HaveSince || HaveUntil) {
    // Window the member set by capture time; explicit digests intersect
    // with the window.  Guard the empty result — merge() reads an empty
    // member list as "all shards".
    std::vector<Sha256Digest> Window =
        Store->membersInWindow(SinceNs, HaveUntil ? UntilNs : 0);
    std::sort(Window.begin(), Window.end());
    if (Members->empty()) {
      *Members = std::move(Window);
    } else {
      Members->erase(std::remove_if(Members->begin(), Members->end(),
                                    [&](const Sha256Digest &D) {
                                      return !std::binary_search(
                                          Window.begin(), Window.end(), D);
                                    }),
                     Members->end());
    }
    if (Members->empty())
      return fail("no shards captured in the requested time window");
  }

  ThreadPool Pool(Jobs);
  auto Result = Store->merge(Members.takeValue(), &Pool);
  if (!Result)
    return fail(Result.message());
  // Cache feedback goes to stderr so the listings on stdout stay
  // byte-comparable against golden output.
  if (Result->CacheHit)
    std::fprintf(stderr,
                 "gprof-store: aggregate %s over %zu shard(s) [cache hit]\n",
                 digestToHex(Result->Digest).substr(0, 12).c_str(),
                 Result->MemberCount);
  else
    std::fprintf(stderr,
                 "gprof-store: aggregate %s over %zu shard(s) [cache miss, "
                 "merged %zu input(s): %zu run(s) + %zu shard(s)]\n",
                 digestToHex(Result->Digest).substr(0, 12).c_str(),
                 Result->MemberCount, Result->InputsMerged, Result->RunsUsed,
                 Result->InputsMerged - Result->RunsUsed);

  AnalyzerOptions AO;
  AO.Threads = Jobs; // Byte-identical listings at any width (0 = cores).
  auto Report = analyzeImageProfile(*Img, Result->Data, AO);
  if (!Report)
    return fail(Report.message());

  FlatPrintOptions FP;
  FP.ShowZeroUsage = Opts.hasFlag("zero");
  FP.Brief = Opts.hasFlag("brief");
  GraphPrintOptions GP;
  GP.Brief = Opts.hasFlag("brief");
  GP.PrintIndex = !Opts.hasFlag("no-index");

  if (!Opts.hasFlag("graph-only"))
    std::printf("%s", printFlatProfile(*Report, FP).c_str());
  if (!Opts.hasFlag("flat-only") && !Opts.hasFlag("graph-only"))
    std::printf("\n");
  if (!Opts.hasFlag("flat-only"))
    std::printf("%s", printCallGraph(*Report, GP).c_str());
  maybeDumpStats(Opts);
  return 0;
}

//===----------------------------------------------------------------------===//
// Continuous-profiling commands (docs/SERVE.md)
//===----------------------------------------------------------------------===//

/// SIGINT/SIGTERM land here; the serve loop polls it.
volatile std::sig_atomic_t ServeInterrupted = 0;

void handleServeSignal(int) { ServeInterrupted = 1; }

/// Parses a small numeric option with a default; false on malformed input.
bool parseUnsigned(const OptionParser &Opts, const char *Name,
                   unsigned Default, unsigned Max, unsigned &Out) {
  Out = Default;
  auto V = Opts.getValue(Name);
  if (!V)
    return true;
  unsigned long long N;
  if (!parseUInt64(*V, N) || N > Max)
    return false;
  Out = static_cast<unsigned>(N);
  return true;
}

int cmdServe(int Argc, const char *const *Argv) {
  OptionParser Opts("gprof-store serve",
                    "run the continuous-profiling ingestion daemon");
  Opts.setPositionalHelp("STORE");
  Opts.addOption("socket", 's', "PATH",
                 "UNIX socket path to listen on (required)");
  Opts.addOption("jobs", 'j', "N",
                 "worker threads = connections served concurrently "
                 "(default 8)");
  Opts.addOption("queue", 0, "N",
                 "admitted connections allowed to wait beyond the busy "
                 "workers before RETRY (default 8)");
  Opts.addOption("idle-timeout", 0, "MS",
                 "drop a connection idle for MS milliseconds "
                 "(default 30000)");
  Opts.addFlag("tolerant", 0,
               "salvage whole records from truncated uploads instead of "
               "rejecting them");
  Opts.addFlag("no-compaction", 0,
               "do not fold pushed shards into tiered runs in the "
               "background (pin the store layout for offline compaction)");
  Opts.addOption("slow-ms", 0, "MS",
                 "log requests slower than MS milliseconds to the event "
                 "log (default 1000)");
  Opts.addOption("log-file", 0, "FILE",
                 "append structured JSONL events (connections, retries, "
                 "slow requests, gc sweeps) to FILE");
  Opts.addOption("trace-out", 0, "FILE",
                 "write a Chrome trace of the daemon's spans to FILE at "
                 "shutdown, one track per request; enables span recording");
  addStatsFlag(Opts);
  if (Error E = Opts.parse(Argc, Argv))
    return fail(E.message());
  if (Opts.hasFlag("help")) {
    std::printf("%s", Opts.helpText().c_str());
    return 0;
  }
  if (Opts.positional().size() != 1)
    return fail("expected exactly one store path");
  auto SocketPath = Opts.getValue("socket");
  if (!SocketPath)
    return fail("serve requires --socket PATH");

  serve::ServeOptions SO;
  unsigned IdleMs, SlowMs;
  if (!parseUnsigned(Opts, "jobs", 8, 1024, SO.Workers) ||
      SO.Workers == 0)
    return fail("invalid --jobs value");
  if (!parseUnsigned(Opts, "queue", 8, 4096, SO.MaxQueuedConnections))
    return fail("invalid --queue value");
  if (!parseUnsigned(Opts, "idle-timeout", 30000, 3600000, IdleMs))
    return fail("invalid --idle-timeout value");
  SO.IdleTimeoutMs = static_cast<int>(IdleMs);
  if (!parseUnsigned(Opts, "slow-ms", 1000, 3600000, SlowMs))
    return fail("invalid --slow-ms value");
  SO.SlowRequestMs = static_cast<int>(SlowMs);
  SO.Store.TolerantReads = Opts.hasFlag("tolerant");
  SO.BackgroundCompaction = !Opts.hasFlag("no-compaction");

  if (auto LogPath = Opts.getValue("log-file"))
    if (Error E = EventLog::instance().setSinkFile(*LogPath))
      return fail(E.message());
  auto TracePath = Opts.getValue("trace-out");
  if (TracePath) {
    telemetry::Registry::instance().enableSpans(true);
    telemetry::Registry::instance().setCurrentThreadName("main");
  }

  auto Server = serve::ServeServer::create(Opts.positional().front(),
                                           *SocketPath, SO);
  if (!Server)
    return fail(Server.message());
  if (Error E = (*Server)->start())
    return fail(E.message());
  std::fprintf(stderr,
               "gprof-store: serving store '%s' on '%s' "
               "(%u workers, queue %u)\n",
               Opts.positional().front().c_str(), SocketPath->c_str(),
               SO.Workers, SO.MaxQueuedConnections);

  std::signal(SIGINT, handleServeSignal);
  std::signal(SIGTERM, handleServeSignal);
  while (!ServeInterrupted)
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::fprintf(stderr, "gprof-store: shutting down\n");
  (*Server)->stop();
  std::fprintf(stderr, "gprof-store: %zu shard(s) in store\n",
               (*Server)->store().shards().size());
  if (TracePath) {
    TraceWriter W = TraceWriter::fromTelemetry("gprof-store-serve");
    if (Error E = W.writeFile(*TracePath))
      std::fprintf(stderr, "gprof-store: %s\n", E.message().c_str());
    else
      std::fprintf(stderr, "gprof-store: wrote %zu trace event(s) to %s\n",
                   W.numEvents(), TracePath->c_str());
  }
  EventLog::instance().closeSink();
  maybeDumpStats(Opts);
  return 0;
}

int cmdStats(int Argc, const char *const *Argv) {
  OptionParser Opts("gprof-store stats",
                    "fetch live telemetry and the event tail from a serve "
                    "daemon");
  Opts.setPositionalHelp("SOCKET");
  Opts.addOption("watch", 'w', "SECS",
                 "poll every SECS seconds until interrupted; each round "
                 "tails only events newer than the last");
  Opts.addOption("filter", 'f', "PREFIX",
                 "restrict metric and histogram rows to names starting "
                 "with PREFIX");
  Opts.addOption("retries", 0, "N",
                 "extra attempts after a transient failure (default 2)");
  if (Error E = Opts.parse(Argc, Argv))
    return fail(E.message());
  if (Opts.hasFlag("help")) {
    std::printf("%s", Opts.helpText().c_str());
    return 0;
  }
  if (Opts.positional().size() != 1)
    return fail("expected exactly one socket path");
  serve::ClientOptions CO;
  if (!parseUnsigned(Opts, "retries", 2, 1000, CO.Retries))
    return fail("invalid --retries value");
  unsigned WatchSecs;
  if (!parseUnsigned(Opts, "watch", 0, 86400, WatchSecs))
    return fail("invalid --watch value");

  serve::ServeClient Client(Opts.positional().front(), CO);
  serve::QueryStatsRequest Req;
  if (auto Prefix = Opts.getValue("filter"))
    Req.Filter = *Prefix;

  std::signal(SIGINT, handleServeSignal);
  std::signal(SIGTERM, handleServeSignal);
  for (;;) {
    auto Resp = Client.queryStats(Req);
    if (!Resp)
      return fail(Resp.message());
    std::fputs(Resp->StatsJson.c_str(), stdout);
    std::fflush(stdout);
    if (WatchSecs == 0)
      return 0;
    // Tail incrementally: the next round only reports events the daemon
    // logged after the ones this round already printed.
    Req.SinceSeq = Resp->LastSeq;
    for (unsigned I = 0; I < WatchSecs * 10 && !ServeInterrupted; ++I)
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (ServeInterrupted)
      return 0;
  }
}

int cmdPush(int Argc, const char *const *Argv) {
  OptionParser Opts("gprof-store push",
                    "upload gmon shards to a serve daemon");
  Opts.setPositionalHelp("SOCKET gmon.out ...");
  Opts.addOption("image", 'i', "FILE",
                 "TLX image the shards were profiled against; pins the "
                 "store to its identity");
  Opts.addOption("retries", 0, "N",
                 "extra attempts after a transient failure (default 2)");
  addStatsFlag(Opts);
  if (Error E = Opts.parse(Argc, Argv))
    return fail(E.message());
  if (Opts.hasFlag("help")) {
    std::printf("%s", Opts.helpText().c_str());
    return 0;
  }
  if (Opts.positional().size() < 2)
    return fail("expected a socket path and at least one gmon file");

  Sha256Digest ImageId{};
  if (auto ImagePath = Opts.getValue("image")) {
    auto Id = imageIdForFile(*ImagePath);
    if (!Id)
      return fail(Id.message());
    ImageId = *Id;
  }
  serve::ClientOptions CO;
  if (!parseUnsigned(Opts, "retries", 2, 1000, CO.Retries))
    return fail("invalid --retries value");

  serve::ServeClient Client(Opts.positional().front(), CO);
  for (size_t I = 1; I < Opts.positional().size(); ++I) {
    const std::string &Path = Opts.positional()[I];
    auto Bytes = readFileBytes(Path);
    if (!Bytes)
      return fail(Bytes.message());
    auto Digest = Client.putShard(*Bytes, ImageId);
    if (!Digest)
      return fail(Digest.message());
    std::printf("%s %s\n", digestToHex(*Digest).c_str(), Path.c_str());
  }
  maybeDumpStats(Opts);
  return 0;
}

int cmdQuery(int Argc, const char *const *Argv) {
  OptionParser Opts("gprof-store query",
                    "fetch gprof listings from a serve daemon");
  Opts.setPositionalHelp("SOCKET image.tlx [DIGEST-PREFIX ...]");
  Opts.addFlag("brief", 'b', "suppress field descriptions");
  Opts.addFlag("zero", 'z', "show zero-time zero-call routines as rows");
  Opts.addFlag("flat-only", 0, "print only the flat profile");
  Opts.addFlag("graph-only", 0, "print only the call graph profile");
  Opts.addFlag("no-index", 0, "omit the index-by-name table");
  Opts.addFlag("list", 'l', "list the daemon's shards instead of reporting");
  Opts.addOption("retries", 0, "N",
                 "extra attempts after a transient failure (default 2)");
  addStatsFlag(Opts);
  if (Error E = Opts.parse(Argc, Argv))
    return fail(E.message());
  if (Opts.hasFlag("help")) {
    std::printf("%s", Opts.helpText().c_str());
    return 0;
  }
  serve::ClientOptions CO;
  if (!parseUnsigned(Opts, "retries", 2, 1000, CO.Retries))
    return fail("invalid --retries value");
  if (Opts.positional().empty())
    return fail("expected a socket path");
  serve::ServeClient Client(Opts.positional().front(), CO);

  if (Opts.hasFlag("list")) {
    auto Shards = Client.list();
    if (!Shards)
      return fail(Shards.message());
    std::printf("%-12s %6s %10s %10s %8s %s\n", "digest", "runs", "samples",
                "arcs", "hz", "image");
    for (const ShardInfo &S : *Shards)
      std::printf("%-12s %6u %10llu %10llu %8llu %s\n",
                  digestToHex(S.Digest).substr(0, 12).c_str(), S.Runs,
                  static_cast<unsigned long long>(S.TotalSamples),
                  static_cast<unsigned long long>(S.NumArcs),
                  static_cast<unsigned long long>(S.Hz),
                  S.ImageId == Sha256Digest{}
                      ? "-"
                      : digestToHex(S.ImageId).substr(0, 12).c_str());
    std::printf("%zu shard(s)\n", Shards->size());
    maybeDumpStats(Opts);
    return 0;
  }

  if (Opts.positional().size() < 2)
    return fail("expected a socket path and an image path");
  serve::QueryReportRequest Req;
  Req.ImagePath = Opts.positional()[1];
  Req.Flags.FlatOnly = Opts.hasFlag("flat-only");
  Req.Flags.GraphOnly = Opts.hasFlag("graph-only");
  Req.Flags.Brief = Opts.hasFlag("brief");
  Req.Flags.NoIndex = Opts.hasFlag("no-index");
  Req.Flags.ShowZero = Opts.hasFlag("zero");

  // Digest prefixes resolve client-side against the daemon's index, with
  // the same uniqueness rules as ProfileStore::resolve.
  if (Opts.positional().size() > 2) {
    auto Shards = Client.list();
    if (!Shards)
      return fail(Shards.message());
    for (size_t I = 2; I < Opts.positional().size(); ++I) {
      const std::string &Prefix = Opts.positional()[I];
      const ShardInfo *Match = nullptr;
      for (const ShardInfo &S : *Shards) {
        if (digestToHex(S.Digest).compare(0, Prefix.size(), Prefix) != 0)
          continue;
        if (Match)
          return fail(format("shard digest '%s' is ambiguous",
                             Prefix.c_str()));
        Match = &S;
      }
      if (!Match)
        return fail(format("no shard matches digest '%s'", Prefix.c_str()));
      Req.Members.push_back(Match->Digest);
    }
  }

  auto Text = Client.queryReport(Req);
  if (!Text)
    return fail(Text.message());
  std::fputs(Text->c_str(), stdout);
  maybeDumpStats(Opts);
  return 0;
}

int cmdGc(int Argc, const char *const *Argv) {
  OptionParser Opts("gprof-store gc",
                    "drop stale cached aggregates and orphaned objects");
  Opts.setPositionalHelp("STORE");
  Opts.addOption("expire-before", 0, "NS",
                 "retire shards (and the runs covering them) captured "
                 "before this time (nanoseconds since the epoch)");
  addStatsFlag(Opts);
  if (Error E = Opts.parse(Argc, Argv))
    return fail(E.message());
  if (Opts.hasFlag("help")) {
    std::printf("%s", Opts.helpText().c_str());
    return 0;
  }
  if (Opts.positional().size() != 1)
    return fail("expected exactly one store path");
  GcOptions GO;
  bool HaveExpire;
  if (!parseU64Option(Opts, "expire-before", GO.ExpireBeforeNs, HaveExpire))
    return fail("invalid --expire-before value");
  (void)HaveExpire; // 0 (and absent) both mean "no retention expiry".

  auto Store = ProfileStore::open(Opts.positional().front());
  if (!Store)
    return fail(Store.message());
  auto Stats = Store->gc(GO);
  if (!Stats)
    return fail(Stats.message());
  std::printf("removed %u stale cached aggregate(s) (%u retained), "
              "%u orphan object(s), %u orphan run(s), "
              "%u stale temp file(s)\n",
              Stats->CachedAggregates, Stats->RetainedAggregates,
              Stats->OrphanObjects, Stats->OrphanRuns, Stats->TempFiles);
  if (Stats->ExpiredShards != 0 || Stats->RetiredRuns != 0)
    std::printf("expired %u shard(s), retired %u run(s)\n",
                Stats->ExpiredShards, Stats->RetiredRuns);
  maybeDumpStats(Opts);
  return 0;
}

int cmdCompact(int Argc, const char *const *Argv) {
  OptionParser Opts("gprof-store compact",
                    "fold loose shards and low-level runs into tiered "
                    "merge runs so reports touch O(log N) inputs");
  Opts.setPositionalHelp("STORE");
  Opts.addOption("jobs", 'j', "N",
                 "merge worker threads (default: hardware concurrency)");
  Opts.addOption("fanout", 0, "N",
                 "inputs folded per compaction step (default 8, min 2)");
  addStatsFlag(Opts);
  if (Error E = Opts.parse(Argc, Argv))
    return fail(E.message());
  if (Opts.hasFlag("help")) {
    std::printf("%s", Opts.helpText().c_str());
    return 0;
  }
  if (Opts.positional().size() != 1)
    return fail("expected exactly one store path");
  unsigned Jobs;
  if (!parseJobs(Opts, Jobs))
    return fail("invalid --jobs value");
  StoreOptions SO;
  if (!parseUnsigned(Opts, "fanout", 8, 1u << 20, SO.CompactionFanout) ||
      SO.CompactionFanout < 2)
    return fail("invalid --fanout value (need at least 2)");

  auto Store = ProfileStore::open(Opts.positional().front(), SO);
  if (!Store)
    return fail(Store.message());
  ThreadPool Pool(Jobs);
  auto Stats = Store->compact(&Pool);
  if (!Stats)
    return fail(Stats.message());
  std::printf("compaction: %u step(s), folded %llu input(s), retired "
              "%u run(s)\n",
              Stats->Steps,
              static_cast<unsigned long long>(Stats->ShardsFolded),
              Stats->RunsRetired);
  std::printf("store now holds %zu shard(s) in %zu run(s) + loose\n",
              Store->shards().size(), Store->runs().size());
  maybeDumpStats(Opts);
  return 0;
}

void printUsage() {
  std::printf(
      "USAGE: gprof-store <command> [options]\n\n"
      "Commands:\n"
      "  put STORE gmon.out ...        ingest shards (content-addressed)\n"
      "  list STORE                    show the shard index\n"
      "  merge STORE [DIGEST ...]      aggregate shards (all by default)\n"
      "  report STORE IMG [DIGEST ...] gprof listings for an aggregate\n"
      "  gc STORE                      sweep caches and orphaned objects\n"
      "  compact STORE                 fold shards into tiered merge runs\n"
      "  serve STORE --socket PATH     run the ingestion daemon\n"
      "  push SOCKET gmon.out ...      upload shards to a daemon\n"
      "  query SOCKET IMG [DIGEST ...] fetch listings from a daemon\n"
      "  stats SOCKET [--watch SECS]   live daemon telemetry + event tail\n\n"
      "Run 'gprof-store <command> --help' for per-command options.\n");
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2) {
    printUsage();
    return 1;
  }
  std::string Command = Argv[1];
  if (Command == "--help" || Command == "-h" || Command == "help") {
    printUsage();
    return 0;
  }
  // Each subcommand parses the arguments after its own name.
  int SubArgc = Argc - 1;
  const char *const *SubArgv = Argv + 1;
  if (Command == "put")
    return cmdPut(SubArgc, SubArgv);
  if (Command == "list")
    return cmdList(SubArgc, SubArgv);
  if (Command == "merge")
    return cmdMerge(SubArgc, SubArgv);
  if (Command == "report")
    return cmdReport(SubArgc, SubArgv);
  if (Command == "gc")
    return cmdGc(SubArgc, SubArgv);
  if (Command == "compact")
    return cmdCompact(SubArgc, SubArgv);
  if (Command == "serve")
    return cmdServe(SubArgc, SubArgv);
  if (Command == "push")
    return cmdPush(SubArgc, SubArgv);
  if (Command == "query")
    return cmdQuery(SubArgc, SubArgv);
  if (Command == "stats")
    return cmdStats(SubArgc, SubArgv);
  std::fprintf(stderr, "gprof-store: unknown command '%s'\n",
               Command.c_str());
  printUsage();
  return 1;
}
