//===- tools/gprof_store_tool.cpp - The profile repository CLI ------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line face of the profile store: `gprof-store put` ingests gmon
/// shards into a content-addressed repository, `list` shows the index,
/// `merge` aggregates any subset through the parallel k-way merge tree
/// (caching the result by the member digest set), `report` feeds a merged
/// aggregate straight into the gprof analyzer and printers, and `gc`
/// sweeps cached aggregates and orphaned objects.  This is the fleet-scale
/// version of "summing the data over several profiled runs": shards
/// accumulate across runs and machines, and any subset can be turned into
/// a profile listing on demand.
///
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"
#include "core/FlatPrinter.h"
#include "core/GraphPrinter.h"
#include "gmon/GmonFile.h"
#include "store/ProfileStore.h"
#include "support/CommandLine.h"
#include "support/FileUtils.h"
#include "support/Format.h"
#include "support/Telemetry.h"
#include "vm/Image.h"

#include <cstdio>

using namespace gprof;

namespace {

int fail(const std::string &Message) {
  std::fprintf(stderr, "gprof-store: %s\n", Message.c_str());
  return 1;
}

/// Declares the shared --stats flag on a subcommand parser.
void addStatsFlag(OptionParser &Opts) {
  Opts.addFlag("stats", 0,
               "dump store telemetry (flat stats JSON) to stderr on exit");
}

/// Honors --stats: dumps the telemetry registry to stderr.
void maybeDumpStats(const OptionParser &Opts) {
  if (Opts.hasFlag("stats"))
    std::fprintf(stderr, "%s",
                 telemetry::Registry::instance()
                     .renderStatsJson("gprof_store_stats")
                     .c_str());
}

/// Hashes the image file at \p Path into a store image identity.
Expected<Sha256Digest> imageIdForFile(const std::string &Path) {
  auto Bytes = readFileBytes(Path);
  if (!Bytes)
    return Bytes.takeError();
  return Sha256::hash(*Bytes);
}

/// Parses --jobs into a worker count (0 = hardware threads).
bool parseJobs(OptionParser &Opts, unsigned &Jobs) {
  Jobs = 0;
  if (auto V = Opts.getValue("jobs")) {
    unsigned long long N;
    if (!parseUInt64(*V, N) || N > 1024)
      return false;
    Jobs = static_cast<unsigned>(N);
  }
  return true;
}

/// Resolves positional digest-prefix arguments (after the leading \p Skip
/// positionals) into full member digests; empty result means "all shards".
Expected<std::vector<Sha256Digest>> resolveMembers(const ProfileStore &Store,
                                                   const OptionParser &Opts,
                                                   size_t Skip) {
  std::vector<Sha256Digest> Members;
  for (size_t I = Skip; I < Opts.positional().size(); ++I) {
    auto Info = Store.resolve(Opts.positional()[I]);
    if (!Info)
      return Info.takeError();
    Members.push_back(Info->Digest);
  }
  return Members;
}

int cmdPut(int Argc, const char *const *Argv) {
  OptionParser Opts("gprof-store put",
                    "ingest gmon shards into a profile store");
  Opts.setPositionalHelp("STORE gmon.out ...");
  Opts.addOption("image", 'i', "FILE",
                 "TLX image the shards were profiled against; pins the "
                 "store to its identity");
  Opts.addFlag("tolerant", 0,
               "salvage whole records from truncated gmon files instead of "
               "rejecting them");
  addStatsFlag(Opts);
  if (Error E = Opts.parse(Argc, Argv))
    return fail(E.message());
  if (Opts.hasFlag("help")) {
    std::printf("%s", Opts.helpText().c_str());
    return 0;
  }
  if (Opts.positional().size() < 2)
    return fail("expected a store path and at least one gmon file");

  Sha256Digest ImageId{};
  if (auto ImagePath = Opts.getValue("image")) {
    auto Id = imageIdForFile(*ImagePath);
    if (!Id)
      return fail(Id.message());
    ImageId = *Id;
  }

  StoreOptions StoreOpts;
  StoreOpts.TolerantReads = Opts.hasFlag("tolerant");
  auto Store = ProfileStore::open(Opts.positional().front(), StoreOpts);
  if (!Store)
    return fail(Store.message());
  for (size_t I = 1; I < Opts.positional().size(); ++I) {
    const std::string &Path = Opts.positional()[I];
    auto Digest = Store->putFile(Path, ImageId);
    if (!Digest)
      return fail(Digest.message());
    std::printf("%s %s\n", digestToHex(*Digest).c_str(), Path.c_str());
  }
  maybeDumpStats(Opts);
  return 0;
}

int cmdList(int Argc, const char *const *Argv) {
  OptionParser Opts("gprof-store list", "list the shards in a profile store");
  Opts.setPositionalHelp("STORE");
  if (Error E = Opts.parse(Argc, Argv))
    return fail(E.message());
  if (Opts.hasFlag("help")) {
    std::printf("%s", Opts.helpText().c_str());
    return 0;
  }
  if (Opts.positional().size() != 1)
    return fail("expected exactly one store path");

  auto Store = ProfileStore::open(Opts.positional().front());
  if (!Store)
    return fail(Store.message());
  std::printf("%-12s %6s %10s %10s %8s %s\n", "digest", "runs", "samples",
              "arcs", "hz", "image");
  for (const ShardInfo &S : Store->shards())
    std::printf("%-12s %6u %10llu %10llu %8llu %s\n",
                digestToHex(S.Digest).substr(0, 12).c_str(), S.Runs,
                static_cast<unsigned long long>(S.TotalSamples),
                static_cast<unsigned long long>(S.NumArcs),
                static_cast<unsigned long long>(S.Hz),
                S.ImageId == Sha256Digest{}
                    ? "-"
                    : digestToHex(S.ImageId).substr(0, 12).c_str());
  std::printf("%zu shard(s)\n", Store->shards().size());
  return 0;
}

int cmdMerge(int Argc, const char *const *Argv) {
  OptionParser Opts("gprof-store merge",
                    "aggregate shards with the parallel k-way merge tree");
  Opts.setPositionalHelp("STORE [DIGEST-PREFIX ...]");
  Opts.addOption("jobs", 'j', "N",
                 "worker threads for the merge tree (0 = one per core)");
  Opts.addOption("output", 'o', "FILE",
                 "also write the merged gmon data to FILE");
  addStatsFlag(Opts);
  if (Error E = Opts.parse(Argc, Argv))
    return fail(E.message());
  if (Opts.hasFlag("help")) {
    std::printf("%s", Opts.helpText().c_str());
    return 0;
  }
  if (Opts.positional().empty())
    return fail("expected a store path");
  unsigned Jobs;
  if (!parseJobs(Opts, Jobs))
    return fail("invalid --jobs value");

  auto Store = ProfileStore::open(Opts.positional().front());
  if (!Store)
    return fail(Store.message());
  auto Members = resolveMembers(*Store, Opts, 1);
  if (!Members)
    return fail(Members.message());

  ThreadPool Pool(Jobs);
  auto Result = Store->merge(Members.takeValue(), &Pool);
  if (!Result)
    return fail(Result.message());
  if (auto OutPath = Opts.getValue("output"))
    if (Error E = writeGmonFile(*OutPath, Result->Data))
      return fail(E.message());
  std::printf("aggregate %s over %zu shard(s): %u run(s), %llu sample(s), "
              "%zu arc(s)%s\n",
              digestToHex(Result->Digest).substr(0, 12).c_str(),
              Result->MemberCount, Result->Data.RunCount,
              static_cast<unsigned long long>(
                  Result->Data.Hist.totalSamples()),
              Result->Data.Arcs.size(),
              Result->CacheHit ? " [cached]" : "");
  maybeDumpStats(Opts);
  return 0;
}

int cmdReport(int Argc, const char *const *Argv) {
  OptionParser Opts("gprof-store report",
                    "print gprof listings for a merged aggregate");
  Opts.setPositionalHelp("STORE image.tlx [DIGEST-PREFIX ...]");
  Opts.addOption("jobs", 'j', "N",
                 "worker threads for the merge tree and the analysis "
                 "pipeline (0 = one per core)");
  Opts.addFlag("brief", 'b', "suppress field descriptions");
  Opts.addFlag("zero", 'z', "show zero-time zero-call routines as rows");
  Opts.addFlag("flat-only", 0, "print only the flat profile");
  Opts.addFlag("graph-only", 0, "print only the call graph profile");
  Opts.addFlag("no-index", 0, "omit the index-by-name table");
  addStatsFlag(Opts);
  if (Error E = Opts.parse(Argc, Argv))
    return fail(E.message());
  if (Opts.hasFlag("help")) {
    std::printf("%s", Opts.helpText().c_str());
    return 0;
  }
  if (Opts.positional().size() < 2)
    return fail("expected a store path and an image path");
  unsigned Jobs;
  if (!parseJobs(Opts, Jobs))
    return fail("invalid --jobs value");

  auto Img = Image::loadFromFile(Opts.positional()[1]);
  if (!Img)
    return fail(Img.message());
  auto Store = ProfileStore::open(Opts.positional().front());
  if (!Store)
    return fail(Store.message());
  auto Members = resolveMembers(*Store, Opts, 2);
  if (!Members)
    return fail(Members.message());

  ThreadPool Pool(Jobs);
  auto Result = Store->merge(Members.takeValue(), &Pool);
  if (!Result)
    return fail(Result.message());
  // Cache feedback goes to stderr so the listings on stdout stay
  // byte-comparable against golden output.
  std::fprintf(stderr, "gprof-store: aggregate %s over %zu shard(s) [%s]\n",
               digestToHex(Result->Digest).substr(0, 12).c_str(),
               Result->MemberCount,
               Result->CacheHit ? "cache hit" : "cache miss, merged");

  AnalyzerOptions AO;
  AO.Threads = Jobs; // Byte-identical listings at any width (0 = cores).
  auto Report = analyzeImageProfile(*Img, Result->Data, AO);
  if (!Report)
    return fail(Report.message());

  FlatPrintOptions FP;
  FP.ShowZeroUsage = Opts.hasFlag("zero");
  FP.Brief = Opts.hasFlag("brief");
  GraphPrintOptions GP;
  GP.Brief = Opts.hasFlag("brief");
  GP.PrintIndex = !Opts.hasFlag("no-index");

  if (!Opts.hasFlag("graph-only"))
    std::printf("%s", printFlatProfile(*Report, FP).c_str());
  if (!Opts.hasFlag("flat-only") && !Opts.hasFlag("graph-only"))
    std::printf("\n");
  if (!Opts.hasFlag("flat-only"))
    std::printf("%s", printCallGraph(*Report, GP).c_str());
  maybeDumpStats(Opts);
  return 0;
}

int cmdGc(int Argc, const char *const *Argv) {
  OptionParser Opts("gprof-store gc",
                    "drop cached aggregates and orphaned objects");
  Opts.setPositionalHelp("STORE");
  addStatsFlag(Opts);
  if (Error E = Opts.parse(Argc, Argv))
    return fail(E.message());
  if (Opts.hasFlag("help")) {
    std::printf("%s", Opts.helpText().c_str());
    return 0;
  }
  if (Opts.positional().size() != 1)
    return fail("expected exactly one store path");

  auto Store = ProfileStore::open(Opts.positional().front());
  if (!Store)
    return fail(Store.message());
  auto Stats = Store->gc();
  if (!Stats)
    return fail(Stats.message());
  std::printf("removed %u cached aggregate(s), %u orphan object(s), "
              "%u stale temp file(s)\n",
              Stats->CachedAggregates, Stats->OrphanObjects,
              Stats->TempFiles);
  maybeDumpStats(Opts);
  return 0;
}

void printUsage() {
  std::printf(
      "USAGE: gprof-store <command> [options]\n\n"
      "Commands:\n"
      "  put STORE gmon.out ...        ingest shards (content-addressed)\n"
      "  list STORE                    show the shard index\n"
      "  merge STORE [DIGEST ...]      aggregate shards (all by default)\n"
      "  report STORE IMG [DIGEST ...] gprof listings for an aggregate\n"
      "  gc STORE                      sweep caches and orphaned objects\n\n"
      "Run 'gprof-store <command> --help' for per-command options.\n");
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2) {
    printUsage();
    return 1;
  }
  std::string Command = Argv[1];
  if (Command == "--help" || Command == "-h" || Command == "help") {
    printUsage();
    return 0;
  }
  // Each subcommand parses the arguments after its own name.
  int SubArgc = Argc - 1;
  const char *const *SubArgv = Argv + 1;
  if (Command == "put")
    return cmdPut(SubArgc, SubArgv);
  if (Command == "list")
    return cmdList(SubArgc, SubArgv);
  if (Command == "merge")
    return cmdMerge(SubArgc, SubArgv);
  if (Command == "report")
    return cmdReport(SubArgc, SubArgv);
  if (Command == "gc")
    return cmdGc(SubArgc, SubArgv);
  std::fprintf(stderr, "gprof-store: unknown command '%s'\n",
               Command.c_str());
  printUsage();
  return 1;
}
