//===- tools/gprof_tool.cpp - The gprof post-processor CLI ----------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The command-line face of the post-processor: reads an image and one or
/// more gmon files (several are summed, reproducing multi-run profiles),
/// runs the analysis, and prints the flat profile and the call graph
/// profile.  Options mirror the historical tool: -b brief, -c static
/// arcs, -z zero-usage rows, -k arc deletion, -f/-e listing filters, -s
/// write the summed data back out.
///
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"
#include "core/Annotate.h"
#include "core/ContextTree.h"
#include "core/DotExporter.h"
#include "core/FlatPrinter.h"
#include "core/GraphPrinter.h"
#include "gmon/GmonFile.h"
#include "support/CommandLine.h"
#include "support/FileUtils.h"
#include "support/Format.h"
#include "support/Telemetry.h"
#include "support/TraceWriter.h"

#include <cstdio>

using namespace gprof;

int main(int Argc, char **Argv) {
  OptionParser Opts("gprof",
                    "display call graph profile data for a TLX image");
  Opts.setPositionalHelp("image.tlx [gmon.out ...]");
  Opts.addFlag("brief", 'b', "suppress field descriptions");
  Opts.addFlag("static-arcs", 'c',
               "add statically discovered arcs with count zero");
  Opts.addFlag("zero", 'z', "show zero-time zero-call routines as rows");
  Opts.addOption("delete-arc", 'k', "FROM/TO",
                 "delete the arc FROM -> TO from the analysis (repeatable)");
  Opts.addOption("only", 'f', "NAME",
                 "print graph entries only for NAME (repeatable)");
  Opts.addOption("exclude", 'e', "NAME",
                 "omit NAME's graph entry (repeatable)");
  Opts.addOption("exclude-time", 'E', "NAME",
                 "drop NAME's sampled time from the whole analysis "
                 "(implies -e; repeatable)");
  Opts.addOption("dot", 0, "FILE",
                 "write the analyzed call graph as Graphviz DOT to FILE");
  Opts.addOption("annotate", 'A', "SOURCE",
                 "print SOURCE annotated with per-line time and calls");
  Opts.addOption("break-cycles", 0, "N",
                 "heuristically delete up to N cycle-closing arcs");
  Opts.addOption("sum", 's', "FILE", "write the summed profile data to FILE");
  Opts.addFlag("tolerant", 0,
               "salvage whole records from truncated gmon files instead of "
               "rejecting them (damage summary goes to stderr)");
  Opts.addOption("threads", 'j', "N",
                 "worker threads for the analysis pipeline (1 = "
                 "sequential, 0 = one per core); output is identical "
                 "for every N");
  Opts.addFlag("flat-only", 0, "print only the flat profile");
  Opts.addFlag("graph-only", 0, "print only the call graph profile");
  Opts.addFlag("no-index", 0, "omit the index-by-name table");
  Opts.addFlag("contexts", 0,
               "print the calling-context profile (the gmon file must come "
               "from a tlrun --contexts run)");
  Opts.addOption("context-filter", 0, "NAME",
                 "list only NAME's contexts (repeatable; implies --contexts)");
  Opts.addOption("context-top", 0, "N",
                 "contexts listed per routine in --contexts (default 5)");
  Opts.addOptionalValueOption(
      "prop-error", "FILE",
      "report per-routine propagation error (propagated vs exact inclusive "
      "time from the context tree); with FILE, also write it as JSON");
  telemetry::addStatsOption(Opts);
  Opts.addOption("trace-out", 0, "FILE",
                 "write phase spans as Chrome trace-event JSON to FILE "
                 "(load in chrome://tracing or Perfetto)");

  if (Error E = Opts.parse(Argc, Argv)) {
    std::fprintf(stderr, "gprof: %s\n", E.message().c_str());
    return 1;
  }
  if (Opts.hasFlag("help")) {
    std::printf("%s", Opts.helpText().c_str());
    return 0;
  }
  if (Opts.positional().empty()) {
    std::fprintf(stderr, "gprof: expected an image path\n");
    return 1;
  }

  auto Img = Image::loadFromFile(Opts.positional().front());
  if (!Img) {
    std::fprintf(stderr, "gprof: %s\n", Img.message().c_str());
    return 1;
  }

  std::vector<std::string> GmonPaths(Opts.positional().begin() + 1,
                                     Opts.positional().end());
  if (GmonPaths.empty())
    GmonPaths.push_back("gmon.out");
  GmonReadOptions ReadOpts;
  ReadOpts.Tolerant = Opts.hasFlag("tolerant");
  std::vector<GmonFileSalvage> Salvages;
  auto Data = readAndSumGmonFiles(GmonPaths, ReadOpts,
                                  ReadOpts.Tolerant ? &Salvages : nullptr);
  if (!Data) {
    std::fprintf(stderr, "gprof: %s\n", Data.message().c_str());
    return 1;
  }
  for (const GmonFileSalvage &S : Salvages)
    std::fprintf(stderr,
                 "gprof: %s: damaged (%s); salvaged %llu bucket(s) and "
                 "%llu arc(s), dropped %llu bucket(s) and %llu arc(s)\n",
                 S.Path.c_str(), S.Salvage.Note.c_str(),
                 static_cast<unsigned long long>(S.Salvage.SalvagedBuckets),
                 static_cast<unsigned long long>(S.Salvage.SalvagedArcs),
                 static_cast<unsigned long long>(S.Salvage.DroppedBuckets),
                 static_cast<unsigned long long>(S.Salvage.DroppedArcs));

  if (auto SumPath = Opts.getValue("sum")) {
    if (Error E = writeGmonFile(*SumPath, *Data)) {
      std::fprintf(stderr, "gprof: %s\n", E.message().c_str());
      return 1;
    }
  }

  AnalyzerOptions AO;
  AO.UseStaticArcs = Opts.hasFlag("static-arcs");
  for (const std::string &Spec : Opts.getValues("delete-arc")) {
    std::vector<std::string> Parts = splitString(Spec, '/');
    if (Parts.size() != 2 || Parts[0].empty() || Parts[1].empty()) {
      std::fprintf(stderr,
                   "gprof: -k expects FROM/TO, got '%s'\n", Spec.c_str());
      return 1;
    }
    AO.DeleteArcs.emplace_back(Parts[0], Parts[1]);
  }
  AO.ExcludeTimeOf = Opts.getValues("exclude-time");
  if (auto Bound = Opts.getValue("break-cycles")) {
    unsigned long long N;
    if (!parseUInt64(*Bound, N)) {
      std::fprintf(stderr, "gprof: invalid --break-cycles value '%s'\n",
                   Bound->c_str());
      return 1;
    }
    AO.AutoBreakCycleBound = static_cast<unsigned>(N);
  }
  if (auto Threads = Opts.getValue("threads")) {
    unsigned long long N;
    if (!parseUInt64(*Threads, N)) {
      std::fprintf(stderr, "gprof: invalid --threads value '%s'\n",
                   Threads->c_str());
      return 1;
    }
    AO.Threads = static_cast<unsigned>(N);
  }

  std::optional<std::string> TracePath = Opts.getValue("trace-out");
  if (TracePath)
    telemetry::Registry::instance().enableSpans(true);
  telemetry::Registry::instance().setCurrentThreadName("main");

  // Emits the telemetry surfaces once the pipeline has run.  Returns
  // false on I/O failure.
  auto EmitTelemetry = [&]() -> bool {
    if (TracePath) {
      TraceWriter W = TraceWriter::fromTelemetry("gprof");
      if (Error E = W.writeFile(*TracePath)) {
        std::fprintf(stderr, "gprof: %s\n", E.message().c_str());
        return false;
      }
    }
    if (Error E = telemetry::emitStatsIfRequested(Opts, "gprof_stats")) {
      std::fprintf(stderr, "gprof: %s\n", E.message().c_str());
      return false;
    }
    return true;
  };

  auto Report = analyzeImageProfile(*Img, *Data, AO);
  if (!Report) {
    std::fprintf(stderr, "gprof: %s\n", Report.message().c_str());
    return 1;
  }

  FlatPrintOptions FP;
  FP.ShowZeroUsage = Opts.hasFlag("zero");
  FP.Brief = Opts.hasFlag("brief");

  GraphPrintOptions GP;
  GP.Brief = Opts.hasFlag("brief");
  GP.OnlyFunctions = Opts.getValues("only");
  GP.ExcludeFunctions = Opts.getValues("exclude");
  for (const std::string &Name : Opts.getValues("exclude-time"))
    GP.ExcludeFunctions.push_back(Name); // -E implies -e.
  GP.PrintIndex = !Opts.hasFlag("no-index");

  if (auto DotPath = Opts.getValue("dot")) {
    if (Error E = writeFileText(*DotPath, exportDot(*Report))) {
      std::fprintf(stderr, "gprof: %s\n", E.message().c_str());
      return 1;
    }
  }

  if (auto SourcePath = Opts.getValue("annotate")) {
    auto SourceText = readFileText(*SourcePath);
    if (!SourceText) {
      std::fprintf(stderr, "gprof: %s\n", SourceText.message().c_str());
      return 1;
    }
    auto Annotated = annotateSource(*Img, *SourceText, *Data);
    std::printf("%s", printAnnotatedSource(Annotated).c_str());
    return EmitTelemetry() ? 0 : 1;
  }

  // The context-tree surfaces.  --contexts replaces the flat/graph
  // listings (like --flat-only, it selects what to print); --prop-error
  // appends its report to whatever else was printed.
  ContextPrintOptions CPO;
  CPO.FilterRoutines = Opts.getValues("context-filter");
  const bool WantContexts =
      Opts.hasFlag("contexts") || !CPO.FilterRoutines.empty();
  std::optional<std::string> PropErrorDest = Opts.getValue("prop-error");
  SymbolTable CtxSyms;
  std::optional<ContextTree> Tree;
  if (WantContexts || PropErrorDest) {
    if (auto Top = Opts.getValue("context-top")) {
      unsigned long long N;
      if (!parseUInt64(*Top, N) || N == 0) {
        std::fprintf(stderr, "gprof: invalid --context-top value '%s'\n",
                     Top->c_str());
        return 1;
      }
      CPO.TopContexts = static_cast<unsigned>(N);
    }
    CtxSyms = SymbolTable::fromImage(*Img);
    auto Built = ContextTree::build(*Data, CtxSyms);
    if (!Built) {
      std::fprintf(stderr, "gprof: %s\n", Built.message().c_str());
      return 1;
    }
    Tree.emplace(std::move(*Built));
  }

  if (WantContexts) {
    std::printf("%s", printContexts(*Tree, CPO).c_str());
  } else {
    if (!Opts.hasFlag("graph-only")) {
      std::printf("%s", printFlatProfile(*Report, FP).c_str());
      std::printf("\n");
    }
    if (!Opts.hasFlag("flat-only"))
      std::printf("%s", printCallGraph(*Report, GP).c_str());
  }

  if (PropErrorDest) {
    PropagationErrorReport PE = propagationError(*Report, *Tree);
    if (WantContexts)
      std::printf("\n");
    std::printf("%s", printPropagationError(PE).c_str());
    if (!PropErrorDest->empty() && *PropErrorDest != "-") {
      std::string Program = Opts.positional().front();
      if (Error E = writeFileText(
              *PropErrorDest, propagationErrorJson(PE, Program))) {
        std::fprintf(stderr, "gprof: %s\n", E.message().c_str());
        return 1;
      }
    }
  }

  if (!Report->RemovedArcs.empty()) {
    std::printf("\narcs deleted from the analysis:\n");
    for (auto [From, To] : Report->RemovedArcs)
      std::printf("  %s -> %s\n",
                  Report->Functions[From].Name.c_str(),
                  Report->Functions[To].Name.c_str());
  }
  return EmitTelemetry() ? 0 : 1;
}
