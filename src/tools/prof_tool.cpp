//===- tools/prof_tool.cpp - The prof(1) baseline CLI ----------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "gmon/GmonFile.h"
#include "prof/ProfBaseline.h"
#include "support/CommandLine.h"

#include <cstdio>

using namespace gprof;

int main(int Argc, char **Argv) {
  OptionParser Opts("prof",
                    "display a flat execution profile (the pre-gprof tool)");
  Opts.setPositionalHelp("image.tlx [gmon.out ...]");

  if (Error E = Opts.parse(Argc, Argv)) {
    std::fprintf(stderr, "prof: %s\n", E.message().c_str());
    return 1;
  }
  if (Opts.hasFlag("help")) {
    std::printf("%s", Opts.helpText().c_str());
    return 0;
  }
  if (Opts.positional().empty()) {
    std::fprintf(stderr, "prof: expected an image path\n");
    return 1;
  }

  auto Img = Image::loadFromFile(Opts.positional().front());
  if (!Img) {
    std::fprintf(stderr, "prof: %s\n", Img.message().c_str());
    return 1;
  }
  std::vector<std::string> GmonPaths(Opts.positional().begin() + 1,
                                     Opts.positional().end());
  if (GmonPaths.empty())
    GmonPaths.push_back("gmon.out");
  auto Data = readAndSumGmonFiles(GmonPaths);
  if (!Data) {
    std::fprintf(stderr, "prof: %s\n", Data.message().c_str());
    return 1;
  }

  ProfReport Report = analyzeProf(SymbolTable::fromImage(*Img), *Data);
  std::printf("%s", printProf(Report).c_str());
  return 0;
}
