//===- serve/Client.h - Client side of the ingestion daemon ---------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fleet-side half of continuous profiling: a small client that pushes
/// gmon shards to a `gprof-store serve` daemon and runs report/list/ping
/// queries against it.  `tlrun --push` uses it at exit so every profiled
/// run becomes an ingestion client, and `gprof-store push/query` exposes
/// the same calls from the CLI.
///
/// Transient failures — connection refused, the daemon's RETRY
/// backpressure answer, a dropped connection — are retried with the same
/// bounded doubling backoff as StoreOptions::IoRetries; an ERROR response
/// from the daemon is a definitive answer and is returned immediately.
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_SERVE_CLIENT_H
#define GPROF_SERVE_CLIENT_H

#include "gmon/ProfileData.h"
#include "serve/Connection.h"
#include "serve/Protocol.h"
#include "store/ProfileStore.h"
#include "support/Error.h"

#include <optional>
#include <string>
#include <vector>

namespace gprof {
namespace serve {

/// Client behavior knobs, mirroring the store's I/O retry shape.
struct ClientOptions {
  /// Extra attempts after a transient failure (0 = fail fast).
  unsigned Retries = 2;
  /// Sleep before the first retry, in milliseconds; doubles per attempt.
  unsigned RetryBackoffMs = 1;
  /// How long to wait for the daemon's response to one request.
  int ResponseTimeoutMs = 30000;
};

/// A connection-caching client for one daemon endpoint.  Not thread-safe;
/// concurrent pushers each use their own client (one connection maps to
/// one daemon worker).
class ServeClient {
public:
  explicit ServeClient(std::string SocketPath, ClientOptions Opts = {})
      : Path(std::move(SocketPath)), Opts(Opts) {}

  /// Liveness probe.
  Error ping();

  /// Uploads one gmon container; returns the store's content digest.
  Expected<Sha256Digest> putShard(const std::vector<uint8_t> &GmonBytes,
                                  const Sha256Digest &ImageId = {});

  /// Serializes and uploads in-memory profile data.
  Expected<Sha256Digest> putProfile(const ProfileData &Data,
                                    const Sha256Digest &ImageId = {});

  /// Fetches the daemon's shard index.
  Expected<std::vector<ShardInfo>> list();

  /// Runs a report query; returns the listing text, byte-identical to
  /// `gprof-store report` with the same flags over the same shards.
  Expected<std::string> queryReport(const QueryReportRequest &Req);

  /// Fetches the daemon's live stats JSON and event tail (QUERY_STATS).
  /// Pass the previous response's LastSeq as Req.SinceSeq to tail
  /// incrementally.
  Expected<StatsResponse> queryStats(const QueryStatsRequest &Req);

  /// Drops the cached connection (the next request reconnects).
  void disconnect();

private:
  /// One request/response exchange with transient-failure retry.
  Expected<Frame> roundTrip(MsgType Type,
                            const std::vector<uint8_t> &Payload);
  /// A single attempt over the cached (or a fresh) connection.
  Expected<Frame> attempt(MsgType Type, const std::vector<uint8_t> &Payload);

  std::string Path;
  ClientOptions Opts;
  std::optional<Connection> Conn;
};

} // namespace serve
} // namespace gprof

#endif // GPROF_SERVE_CLIENT_H
