//===- serve/Server.cpp ---------------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "core/Analyzer.h"
#include "core/FlatPrinter.h"
#include "core/GraphPrinter.h"
#include "gmon/GmonFile.h"
#include "support/EventLog.h"
#include "support/Format.h"
#include "support/Telemetry.h"
#include "vm/Image.h"

#include <algorithm>
#include <memory>
#include <unistd.h>

using namespace gprof;
using namespace gprof::serve;

ServeServer::ServeServer(ProfileStore Store, UnixListener Listener,
                         ServeOptions Opts)
    : Store(std::move(Store)), Listener(std::move(Listener)), Opts(Opts),
      Pool(Opts.Workers ? Opts.Workers : 1),
      StartNs(telemetry::Registry::instance().nowNs()) {}

Expected<std::unique_ptr<ServeServer>>
ServeServer::create(const std::string &StoreRoot,
                    const std::string &SocketPath, const ServeOptions &Opts) {
  auto Store = ProfileStore::open(StoreRoot, Opts.Store);
  if (!Store)
    return Store.takeError();
  auto Listener = UnixListener::listenOn(SocketPath);
  if (!Listener)
    return Listener.takeError();
  return std::unique_ptr<ServeServer>(new ServeServer(
      Store.takeValue(), std::move(*Listener), Opts));
}

Error ServeServer::start() {
  if (Started.exchange(true))
    return Error::success();
  EventLog::instance().emit(
      "serve.start", jsonStringField("socket", Listener.path()) + ", " +
                         jsonIntField("workers", Opts.Workers) + ", " +
                         jsonIntField("queue", Opts.MaxQueuedConnections));
  AcceptThread = std::thread([this] { acceptLoop(); });
  // A store grown offline (or left half-compacted by a previous daemon)
  // may have folds pending before the first push arrives.
  maybeScheduleCompaction();
  return Error::success();
}

void ServeServer::maybeScheduleCompaction() {
  if (!Opts.BackgroundCompaction || Stop.load(std::memory_order_relaxed))
    return;
  if (!Store.compactionPending())
    return;
  // One drain at a time: a second pass would only queue behind the first
  // on the ingest lock.  exchange() makes the busy check race-free.
  if (CompactionBusy.exchange(true, std::memory_order_acq_rel))
    return;
  telemetry::gauge("compaction.passes").add(1);
  Pool.async([this] {
    telemetry::Span PassSpan("serve.compaction");
    CompactionStats Stats;
    bool Failed = false;
    while (!Stop.load(std::memory_order_relaxed)) {
      // Sequential folds: a pool worker must not fan subtasks back onto
      // the pool it runs on (they could deadlock behind connection-
      // lifetime jobs), and the run bytes are identical either way.
      auto Worked = Store.compactStep(/*Pool=*/nullptr, &Stats);
      if (!Worked) {
        telemetry::gauge("compaction.errors").add(1);
        EventLog::instance().emit(
            "compaction.error", jsonStringField("error", Worked.message()));
        Failed = true;
        break;
      }
      if (!*Worked)
        break;
    }
    if (Stats.Steps != 0) {
      telemetry::gauge("compaction.steps").add(Stats.Steps);
      EventLog::instance().emit(
          "compaction.pass",
          jsonIntField("steps", Stats.Steps) + ", " +
              jsonIntField("runs_retired", Stats.RunsRetired) + ", " +
              jsonIntField("shards_folded", Stats.ShardsFolded));
    }
    CompactionBusy.store(false, std::memory_order_release);
    // Pushes that landed during the drain saw the busy flag and skipped
    // scheduling; pick their work up now.  After an error, wait for the
    // next push instead of hot-looping on a failing store.
    if (!Failed)
      maybeScheduleCompaction();
  });
}

void ServeServer::stop() {
  if (!Started.load())
    return;
  if (Stop.exchange(true))
    return;
  if (AcceptThread.joinable())
    AcceptThread.join();
  // In-flight connections observe the stop flag within one poll interval
  // and unwind; wait for every admitted one to finish.
  Pool.wait();
  Listener.close();
  EventLog::instance().emit(
      "serve.stop",
      jsonIntField("requests", NextRequestId.load(std::memory_order_relaxed)));
}

void ServeServer::acceptLoop() {
  telemetry::Registry::instance().setCurrentThreadName("serve-accept");
  // Request counts are workload-derived, but how connections and
  // rejections interleave depends on client scheduling — gauges, like the
  // thread pool's own job metrics (docs/TELEMETRY.md).
  telemetry::Metric &Accepted = telemetry::gauge("serve.connections.accepted");
  telemetry::Metric &Rejected = telemetry::gauge("serve.connections.rejected");
  telemetry::Metric &Depth = telemetry::gauge("serve.queue.depth");
  telemetry::Metric &DepthPeak = telemetry::gauge("serve.queue.peak");

  const unsigned Capacity =
      (Opts.Workers ? Opts.Workers : 1) + Opts.MaxQueuedConnections;
  while (!Stop.load(std::memory_order_relaxed)) {
    auto Ready = Listener.waitReadable(Opts.AcceptPollMs);
    if (!Ready) {
      (void)Ready.takeError(); // Listener gone; nothing left to accept.
      break;
    }
    if (!*Ready)
      continue;
    auto Sock = Listener.accept();
    if (!Sock) {
      (void)Sock.takeError(); // Transient accept failure; keep serving.
      continue;
    }

    ConnectionOptions CO;
    CO.IdleTimeoutMs = Opts.IdleTimeoutMs;
    CO.StopFlag = &Stop;
    // shared_ptr because ThreadPool jobs are std::function (copyable).
    auto Conn =
        std::make_shared<Connection>(std::move(*Sock), CO);

    unsigned Admitted = Active.load(std::memory_order_relaxed);
    if (Admitted >= Capacity) {
      // Bounded queue, explicit backpressure: tell the client to back off
      // rather than buffering unboundedly or hanging it.
      Rejected.add(1);
      EventLog::instance().emit("connection.rejected",
                                jsonIntField("capacity", Capacity));
      (void)Conn->writeRetry(format(
          "server at capacity (%u connections); retry with backoff",
          Capacity));
      EventLog::instance().emit("retry.issued",
                                jsonIntField("capacity", Capacity));
      continue; // Conn closes as the shared_ptr drops.
    }
    Active.fetch_add(1, std::memory_order_relaxed);
    Accepted.add(1);
    EventLog::instance().emit("connection.accepted",
                              jsonIntField("active", Admitted + 1));
    Depth.set(Active.load(std::memory_order_relaxed));
    DepthPeak.max(Active.load(std::memory_order_relaxed));
    // Metric references stay valid for the process lifetime, so the
    // pointer may outlive this loop (jobs drain after it exits).
    Pool.async([this, Conn, DepthMetric = &Depth] {
      serveConnection(*Conn);
      Conn->close();
      Active.fetch_sub(1, std::memory_order_relaxed);
      DepthMetric->set(Active.load(std::memory_order_relaxed));
    });
  }
}

void ServeServer::serveConnection(Connection &Conn) {
  telemetry::Span ConnSpan("serve.connection");
  while (!Stop.load(std::memory_order_relaxed)) {
    auto Request = Conn.readFrame();
    if (!Request) {
      // Damaged stream or dead peer: the conversation is over, the daemon
      // is not.  A mid-upload disconnect lands here.
      telemetry::gauge("serve.connections.aborted").add(1);
      (void)Request.takeError();
      return;
    }
    if (!*Request)
      return; // Clean end of conversation.
    if (!dispatch(Conn, **Request))
      return;
  }
}

bool ServeServer::dispatch(Connection &Conn, const Frame &Request) {
  telemetry::Registry &R = telemetry::Registry::instance();
  // One monotonic id per dispatched request.  The scope tags every span
  // the handler records on this thread (store.merge, analyzer.* — the
  // handlers run their work sequentially on the serving worker, so the
  // thread-local id reaches all of it), and the connection echoes the id
  // in every response header for client-side correlation.
  const uint64_t ReqId = NextRequestId.fetch_add(1, std::memory_order_relaxed)
                         + 1;
  telemetry::RequestIdScope IdScope(ReqId);
  Conn.setOutgoingRequestId(ReqId);
  const std::string Name = msgTypeName(Request.Type);
  const uint64_t BeginNs = R.nowNs();

  Error E = Error::success();
  bool Desynchronized = false;
  {
    telemetry::Span RequestSpan("serve.request");
    telemetry::counter("serve.request." + Name).add(1);
    switch (Request.Type) {
    case MsgType::Ping:
      E = Conn.writeFrame(MsgType::Ok, {});
      break;
    case MsgType::PutShard:
      E = handlePut(Conn, Request);
      break;
    case MsgType::List:
      E = handleList(Conn);
      break;
    case MsgType::QueryReport:
      E = handleQuery(Conn, Request);
      break;
    case MsgType::QueryStats:
      E = handleStats(Conn, Request);
      break;
    default:
      // A response type in the request position: the peer is
      // desynchronized; answer once and abandon the stream.
      (void)Conn.writeError(format("unexpected %s frame in request position",
                                   Name.c_str()));
      Desynchronized = true;
    }
  }

  const uint64_t DurNs = R.nowNs() - BeginNs;
  R.histogram("serve.request.latency." + Name).record(DurNs);
  if (Opts.SlowRequestMs >= 0 &&
      DurNs >= uint64_t(Opts.SlowRequestMs) * 1000000u)
    EventLog::instance().emit(
        "request.slow", jsonStringField("type", Name) + ", " +
                            jsonIntField("ms", DurNs / 1000000u) + ", " +
                            jsonIntField("request", ReqId));

  if (Desynchronized)
    return false;
  if (E) {
    // The response could not be written (peer vanished mid-reply).
    telemetry::gauge("serve.response.write_failures").add(1);
    (void)E.message();
    return false;
  }
  return true;
}

Error ServeServer::handleStats(Connection &Conn, const Frame &Request) {
  auto Req = decodeQueryStats(Request.Payload);
  if (!Req)
    return Conn.writeError(Req.message());

  telemetry::Registry &R = telemetry::Registry::instance();
  EventLog &Log = EventLog::instance();
  std::vector<LogEvent> Events = Log.since(Req->SinceSeq);

  telemetry::Registry::StatsRenderOptions RO;
  RO.MetricPrefix = Req->Filter;
  RO.ExtraFields.emplace_back(
      "uptime_ns", format("%llu", static_cast<unsigned long long>(
                                      R.nowNs() - StartNs)));
  RO.ExtraFields.emplace_back("pid", format("%ld", long(getpid())));
  std::string Build;
  telemetry::appendJsonString(Build, "gprof-store serve (GSRV rev 2, "
                                     "built " __DATE__ ")");
  RO.ExtraFields.emplace_back("build", Build);
  RO.ExtraFields.emplace_back("events", EventLog::renderArray(Events));

  StatsResponse Resp;
  Resp.StatsJson = R.renderStatsJson("gprof_store_serve", RO);
  // Resume the tail after the newest event we returned; when nothing new
  // arrived, hold the cursor so dropped-from-ring history is not re-sent.
  Resp.LastSeq =
      Events.empty() ? std::max(Req->SinceSeq, Log.lastSeq())
                     : Events.back().Seq;
  return Conn.writeFrame(MsgType::Ok, encodeStatsResponse(Resp));
}

Error ServeServer::handlePut(Connection &Conn, const Frame &Request) {
  auto Req = decodePutShard(Request.Payload);
  if (!Req)
    return Conn.writeError(Req.message());
  telemetry::counter("serve.put.bytes_received").add(Req->GmonBytes.size());

  GmonReadOptions ReadOpts;
  ReadOpts.Tolerant = Store.options().TolerantReads;
  auto Data = readGmon(Req->GmonBytes, ReadOpts);
  if (!Data)
    return Conn.writeError("uploaded shard rejected: " + Data.message());
  auto Digest = Store.put(Data.takeValue(), Req->ImageId, "pushed shard");
  if (!Digest) {
    telemetry::gauge("serve.put.failures").add(1);
    return Conn.writeError(Digest.message());
  }
  // Answer the client before folding: compaction is background work and
  // must not sit on the push latency path.
  Error E = Conn.writeFrame(MsgType::Ok, encodeDigest(*Digest));
  maybeScheduleCompaction();
  return E;
}

Error ServeServer::handleList(Connection &Conn) {
  return Conn.writeFrame(MsgType::Ok,
                         encodeShardList(Store.shardsSnapshot()));
}

Error ServeServer::handleQuery(Connection &Conn, const Frame &Request) {
  auto Req = decodeQueryReport(Request.Payload);
  if (!Req)
    return Conn.writeError(Req.message());

  auto Img = Image::loadFromFile(Req->ImagePath);
  if (!Img)
    return Conn.writeError(Img.message());
  // Sequential merge: a worker thread must not fan subtasks back onto the
  // pool it runs on (the subtasks could deadlock behind other
  // connection-lifetime jobs), and the merged bytes are identical either
  // way.
  auto Merged = Store.merge(Req->Members, /*Pool=*/nullptr);
  if (!Merged)
    return Conn.writeError(Merged.message());

  AnalyzerOptions AO;
  AO.Threads = 1;
  auto Report = analyzeImageProfile(*Img, Merged->Data, AO);
  if (!Report)
    return Conn.writeError(Report.message());

  // Assemble exactly what `gprof-store report` prints on stdout, so a
  // daemon-side report is byte-identical to the offline one.
  FlatPrintOptions FP;
  FP.ShowZeroUsage = Req->Flags.ShowZero;
  FP.Brief = Req->Flags.Brief;
  GraphPrintOptions GP;
  GP.Brief = Req->Flags.Brief;
  GP.PrintIndex = !Req->Flags.NoIndex;

  std::string Text;
  if (!Req->Flags.GraphOnly)
    Text += printFlatProfile(*Report, FP);
  if (!Req->Flags.FlatOnly && !Req->Flags.GraphOnly)
    Text += "\n";
  if (!Req->Flags.FlatOnly)
    Text += printCallGraph(*Report, GP);
  telemetry::counter("serve.query.bytes_sent").add(Text.size());
  return Conn.writeFrame(MsgType::Ok, encodeText(Text));
}
