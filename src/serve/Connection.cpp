//===- serve/Connection.cpp -----------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "serve/Connection.h"

#include "support/Format.h"

using namespace gprof;
using namespace gprof::serve;

Error Connection::recvExact(uint8_t *Data, size_t Size, bool EofLegal,
                            bool &SawEof) {
  SawEof = false;
  size_t Got = 0;
  int IdleMs = 0;
  while (Got < Size) {
    auto Ready = Sock.waitReadable(Opts.PollIntervalMs);
    if (!Ready)
      return Ready.takeError();
    if (Opts.StopFlag &&
        Opts.StopFlag->load(std::memory_order_relaxed))
      return Error::failure("connection aborted: server shutting down");
    if (!*Ready) {
      if (Opts.IdleTimeoutMs >= 0 &&
          (IdleMs += Opts.PollIntervalMs) >= Opts.IdleTimeoutMs)
        return Error::failure(format("connection idle for %d ms, giving up",
                                     Opts.IdleTimeoutMs));
      continue;
    }
    auto N = Sock.recvSome(Data + Got, Size - Got);
    if (!N)
      return N.takeError();
    if (*N == 0) {
      // Orderly close.  Legal only before the first byte of a frame.
      if (EofLegal && Got == 0) {
        SawEof = true;
        return Error::success();
      }
      return Error::failure(format("peer closed the connection %zu bytes "
                                   "into a %zu-byte read",
                                   Got, Size));
    }
    Got += *N;
    IdleMs = 0; // Progress resets the idle clock.
  }
  return Error::success();
}

Expected<std::optional<Frame>> Connection::readFrame() {
  uint8_t Header[FrameHeaderSize];
  bool SawEof = false;
  if (Error E = recvExact(Header, sizeof(Header), /*EofLegal=*/true, SawEof))
    return E;
  if (SawEof)
    return std::optional<Frame>{};

  Frame F;
  auto Length = decodeFrameHeader(Header, F.Type, F.ReqId);
  if (!Length)
    return Length.takeError();
  F.Payload.resize(static_cast<size_t>(*Length));
  if (*Length != 0)
    if (Error E = recvExact(F.Payload.data(), F.Payload.size(),
                            /*EofLegal=*/false, SawEof))
      return E;
  return std::optional<Frame>(std::move(F));
}

Error Connection::writeFrame(MsgType Type,
                             const std::vector<uint8_t> &Payload) {
  if (Payload.size() > MaxFramePayload)
    return Error::failure(format("refusing to send a %zu-byte frame payload "
                                 "(limit %llu)",
                                 Payload.size(),
                                 static_cast<unsigned long long>(
                                     MaxFramePayload)));
  std::vector<uint8_t> Header =
      encodeFrameHeader(Type, Payload.size(), OutgoingReqId);
  if (Error E = Sock.sendAll(Header.data(), Header.size()))
    return E;
  if (!Payload.empty())
    if (Error E = Sock.sendAll(Payload.data(), Payload.size()))
      return E;
  return Error::success();
}
