//===- serve/Connection.h - Framed I/O over one socket --------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One end of a protocol conversation: reads and writes whole frames
/// (serve/Protocol.h) over a UnixSocket.  Reads are poll-driven so a
/// connection can observe a shutdown flag while idle and enforce an idle
/// timeout against dead peers; both ends of the daemon share this class.
/// A peer that closes cleanly *between* frames is a normal end of
/// conversation; one that vanishes *inside* a frame is an error the
/// caller reports (and, on the server, survives).
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_SERVE_CONNECTION_H
#define GPROF_SERVE_CONNECTION_H

#include "serve/Protocol.h"
#include "support/Error.h"
#include "support/Socket.h"

#include <atomic>
#include <optional>

namespace gprof {
namespace serve {

/// Read-side behavior knobs for one connection.
struct ConnectionOptions {
  /// Abandon a read after this long with no bytes from the peer
  /// (negative = wait forever).  Protects daemon workers from dead
  /// clients that never close.
  int IdleTimeoutMs = 30000;
  /// Granularity at which idle waits re-check StopFlag.
  int PollIntervalMs = 100;
  /// When set, reads abort promptly once the flag is true — the server's
  /// shutdown path.  Not owned; must outlive the connection.
  const std::atomic<bool> *StopFlag = nullptr;
};

/// A connected protocol endpoint.
class Connection {
public:
  Connection(UnixSocket Sock, ConnectionOptions Opts = {})
      : Sock(std::move(Sock)), Opts(Opts) {}

  /// Reads one whole frame.  Returns std::nullopt on a clean end-of-stream
  /// at a frame boundary; any mid-frame truncation, bad magic, unknown
  /// type, oversized payload, timeout, or shutdown is an Error.
  Expected<std::optional<Frame>> readFrame();

  /// Writes one whole frame (header + payload), stamped with the current
  /// outgoing request id (see setOutgoingRequestId).
  Error writeFrame(MsgType Type, const std::vector<uint8_t> &Payload);

  /// Sets the request id written into subsequent outgoing frame headers.
  /// The daemon sets this to the dispatched request's id before handling
  /// it, so every response (OK, ERROR, even a partial-failure path)
  /// echoes the id; clients leave it 0.
  void setOutgoingRequestId(uint64_t Id) { OutgoingReqId = Id; }

  /// Convenience responses.
  Error writeError(const std::string &Message) {
    return writeFrame(MsgType::Err, encodeText(Message));
  }
  Error writeRetry(const std::string &Hint) {
    return writeFrame(MsgType::Retry, encodeText(Hint));
  }

  bool isOpen() const { return Sock.isOpen(); }
  void close() { Sock.close(); }

private:
  /// Reads exactly \p Size bytes.  When \p EofLegal, a clean close before
  /// the first byte sets \p SawEof instead of failing.
  Error recvExact(uint8_t *Data, size_t Size, bool EofLegal, bool &SawEof);

  UnixSocket Sock;
  ConnectionOptions Opts;
  uint64_t OutgoingReqId = 0;
};

} // namespace serve
} // namespace gprof

#endif // GPROF_SERVE_CONNECTION_H
