//===- serve/Protocol.h - Wire protocol of the ingestion daemon ----------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The framed request/response protocol spoken between `gprof-store serve`
/// and its clients (`tlrun --push`, `gprof-store push/query`).  Everything
/// is length-prefixed and little-endian, encoded with support/BinaryStream,
/// so frames survive any interleaving of concurrent uploads and a damaged
/// stream is always a recoverable error (docs/SERVE.md).
///
/// One frame on the wire:
///
///   magic   "GSRV"       4 bytes
///   type    u8           MsgType below
///   id      u64          request id (0 in requests; the daemon assigns
///                        one per dispatched request and echoes it in the
///                        response, for cross-process trace correlation)
///   length  u64          payload bytes following (<= MaxFramePayload)
///   payload bytes[length]
///
/// Requests: PING (empty), PUT_SHARD (image id + gmon container bytes),
/// LIST (empty), QUERY_REPORT (image path + listing flags + member
/// digests), QUERY_STATS (event-tail cursor + metric filter).  Responses:
/// OK (payload per request), ERROR (diagnostic string), RETRY
/// (backpressure — the server is at capacity; the payload is a
/// human-readable hint and the client should back off and retry).
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_SERVE_PROTOCOL_H
#define GPROF_SERVE_PROTOCOL_H

#include "store/ProfileStore.h"
#include "support/Error.h"
#include "support/Sha256.h"

#include <cstdint>
#include <string>
#include <vector>

namespace gprof {
namespace serve {

/// Frame header magic; a stream that does not start every frame with it is
/// abandoned rather than resynchronized.
constexpr char FrameMagic[4] = {'G', 'S', 'R', 'V'};

/// Bytes of header preceding every payload: magic + type + id + length.
constexpr size_t FrameHeaderSize = sizeof(FrameMagic) + 1 + 8 + 8;

/// Hard cap on one frame's payload, guarding server allocation against a
/// corrupt or hostile length field.  Large enough for any realistic gmon
/// shard or report listing.
constexpr uint64_t MaxFramePayload = 64ull << 20;

/// Cap on digest-list lengths inside payloads (same spirit as the store
/// index's MaxIndexRecords).
constexpr uint64_t MaxListedShards = 1ull << 24;

/// Message kinds.  Requests and responses share the frame format; the
/// ranges are disjoint so a desynchronized peer is detected immediately.
enum class MsgType : uint8_t {
  Ping = 1,        ///< Liveness probe; OK response with empty payload.
  PutShard = 2,    ///< Upload one gmon shard; OK payload is its digest.
  List = 3,        ///< Fetch the shard index; OK payload is ShardInfo rows.
  QueryReport = 4, ///< Merge + analyze + print; OK payload is the listing.
  QueryStats = 5,  ///< Live telemetry + event tail; no store lock taken.
  Ok = 16,         ///< Success response.
  Err = 17,        ///< Failure response; payload is the diagnostic.
  Retry = 18,      ///< Backpressure response; payload is a retry hint.
};

/// True for the request range of MsgType.
bool isRequestType(uint8_t Type);
/// True for the response range of MsgType.
bool isResponseType(uint8_t Type);
/// Stable lowercase name ("put_shard", "ok", ...) for telemetry and
/// logs; out-of-range values render as "unknown(N)".
std::string msgTypeName(MsgType Type);

/// One decoded frame.
struct Frame {
  MsgType Type = MsgType::Ping;
  uint64_t ReqId = 0; ///< 0 in requests; daemon-assigned in responses.
  std::vector<uint8_t> Payload;
};

/// Renders the header for a frame of \p PayloadSize bytes.
std::vector<uint8_t> encodeFrameHeader(MsgType Type, uint64_t PayloadSize,
                                       uint64_t ReqId = 0);

/// Parses and validates a frame header; returns the payload length.
Expected<uint64_t> decodeFrameHeader(const uint8_t *Header, MsgType &Type,
                                     uint64_t &ReqId);

//===----------------------------------------------------------------------===//
// Payload codecs
//===----------------------------------------------------------------------===//

/// PUT_SHARD request: the profiled image's identity (zero = unknown)
/// followed by the raw gmon container bytes, exactly as written by
/// writeGmon.  The server re-parses and canonicalizes, so the digest it
/// returns is the store's content address, not a hash of the upload.
struct PutShardRequest {
  Sha256Digest ImageId{};
  std::vector<uint8_t> GmonBytes;
};

std::vector<uint8_t> encodePutShard(const PutShardRequest &Req);
Expected<PutShardRequest> decodePutShard(const std::vector<uint8_t> &Payload);

/// Listing shape of a QUERY_REPORT, mirroring `gprof-store report` flags
/// bit for bit so a daemon-side report can be byte-identical to an
/// offline one.
struct ReportFlags {
  bool FlatOnly = false;
  bool GraphOnly = false;
  bool Brief = false;
  bool NoIndex = false;
  bool ShowZero = false;
};

/// QUERY_REPORT request.  \p Members empty means "every shard".  The
/// image is named by path — the daemon serves a local socket, so client
/// and server share a filesystem.
struct QueryReportRequest {
  std::string ImagePath;
  ReportFlags Flags;
  std::vector<Sha256Digest> Members;
};

std::vector<uint8_t> encodeQueryReport(const QueryReportRequest &Req);
Expected<QueryReportRequest>
decodeQueryReport(const std::vector<uint8_t> &Payload);

/// QUERY_STATS request.  \p SinceSeq is an event-tail cursor: only events
/// with a larger sequence number are returned, so `stats --watch` passes
/// the previous response's LastSeq back and gets an incremental tail.
/// \p Filter keeps only metrics whose name starts with the prefix (empty
/// keeps everything; events are never filtered).
struct QueryStatsRequest {
  uint64_t SinceSeq = 0;
  std::string Filter;
};

std::vector<uint8_t> encodeQueryStats(const QueryStatsRequest &Req);
Expected<QueryStatsRequest>
decodeQueryStats(const std::vector<uint8_t> &Payload);

/// QUERY_STATS OK payload: the daemon's live stats JSON (renderStatsJson
/// shape plus uptime/build/pid scalars and an "events" array) and the
/// sequence number to resume the event tail from.
struct StatsResponse {
  std::string StatsJson;
  uint64_t LastSeq = 0;
};

std::vector<uint8_t> encodeStatsResponse(const StatsResponse &Resp);
Expected<StatsResponse>
decodeStatsResponse(const std::vector<uint8_t> &Payload);

/// LIST OK payload: the server's ShardInfo rows, in index (digest) order.
std::vector<uint8_t> encodeShardList(const std::vector<ShardInfo> &Shards);
Expected<std::vector<ShardInfo>>
decodeShardList(const std::vector<uint8_t> &Payload);

/// Digest payloads (PUT_SHARD OK response).
std::vector<uint8_t> encodeDigest(const Sha256Digest &Digest);
Expected<Sha256Digest> decodeDigest(const std::vector<uint8_t> &Payload);

/// Text payloads (ERROR / RETRY / QUERY_REPORT OK).
std::vector<uint8_t> encodeText(const std::string &Text);
Expected<std::string> decodeText(const std::vector<uint8_t> &Payload);

} // namespace serve
} // namespace gprof

#endif // GPROF_SERVE_PROTOCOL_H
