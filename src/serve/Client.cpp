//===- serve/Client.cpp ---------------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"

#include "gmon/GmonFile.h"
#include "support/Format.h"
#include "support/Telemetry.h"

#include <chrono>
#include <thread>

using namespace gprof;
using namespace gprof::serve;

Expected<Frame> ServeClient::attempt(MsgType Type,
                                     const std::vector<uint8_t> &Payload) {
  if (!Conn || !Conn->isOpen()) {
    auto Sock = UnixSocket::connectTo(Path);
    if (!Sock)
      return Sock.takeError();
    ConnectionOptions CO;
    CO.IdleTimeoutMs = Opts.ResponseTimeoutMs;
    Conn.emplace(std::move(*Sock), CO);
  }
  // When tracing, time the whole exchange and stamp the span with the
  // request id the daemon echoes back, so a client-side track lines up
  // with the daemon's per-request track in a merged view.
  telemetry::Registry &R = telemetry::Registry::instance();
  const bool Tracing = R.spansEnabled();
  const uint64_t BeginNs = Tracing ? R.nowNs() : 0;
  if (Error E = Conn->writeFrame(Type, Payload))
    return E;
  auto Response = Conn->readFrame();
  if (!Response)
    return Response.takeError();
  if (!*Response)
    return Error::failure(format("daemon at '%s' closed the connection "
                                 "without answering",
                                 Path.c_str()));
  if (Tracing)
    R.recordSpan(("serve.client." + msgTypeName(Type)).c_str(), BeginNs,
                 R.nowNs(), (**Response).ReqId);
  return std::move(**Response);
}

Expected<Frame> ServeClient::roundTrip(MsgType Type,
                                       const std::vector<uint8_t> &Payload) {
  unsigned BackoffMs = Opts.RetryBackoffMs;
  for (unsigned Attempt = 0;; ++Attempt) {
    auto Response = attempt(Type, Payload);
    if (Response) {
      if (Response->Type == MsgType::Ok)
        return Response;
      if (Response->Type == MsgType::Err) {
        // A definitive answer; the daemon processed the request and said
        // no.  The connection stays usable.
        auto Message = decodeText(Response->Payload);
        return Error::failure(format("daemon at '%s': %s", Path.c_str(),
                                     Message ? Message->c_str()
                                             : "unreadable error payload"));
      }
      // RETRY (backpressure) — the daemon closed us; fall through to the
      // transient path.  Any other type is a desynchronized stream.
      if (Response->Type != MsgType::Retry) {
        disconnect();
        return Error::failure(format("daemon at '%s' answered with an "
                                     "unexpected %s frame",
                                     Path.c_str(),
                                     msgTypeName(Response->Type).c_str()));
      }
    }
    // Transient failure: connect/send/recv error or RETRY backpressure.
    Error Transient = Response ? Error::failure("daemon busy")
                               : Response.takeError();
    disconnect();
    if (Attempt == Opts.Retries) {
      if (Response) {
        (void)static_cast<bool>(Transient);
        return Error::failure(format(
            "daemon at '%s' is at capacity (gave up after %u attempts)",
            Path.c_str(), Attempt + 1));
      }
      return Transient;
    }
    (void)static_cast<bool>(Transient);
    // Like ProfileStore::retryIo, retries are environment events: gauge.
    telemetry::gauge("serve.client.retries").add(1);
    if (BackoffMs != 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(BackoffMs));
    BackoffMs *= 2;
  }
}

Error ServeClient::ping() {
  auto Response = roundTrip(MsgType::Ping, {});
  if (!Response)
    return Response.takeError();
  return Error::success();
}

Expected<Sha256Digest>
ServeClient::putShard(const std::vector<uint8_t> &GmonBytes,
                      const Sha256Digest &ImageId) {
  PutShardRequest Req;
  Req.ImageId = ImageId;
  Req.GmonBytes = GmonBytes;
  auto Response = roundTrip(MsgType::PutShard, encodePutShard(Req));
  if (!Response)
    return Response.takeError();
  return decodeDigest(Response->Payload);
}

Expected<Sha256Digest> ServeClient::putProfile(const ProfileData &Data,
                                               const Sha256Digest &ImageId) {
  return putShard(writeGmon(Data), ImageId);
}

Expected<std::vector<ShardInfo>> ServeClient::list() {
  auto Response = roundTrip(MsgType::List, {});
  if (!Response)
    return Response.takeError();
  return decodeShardList(Response->Payload);
}

Expected<std::string> ServeClient::queryReport(const QueryReportRequest &Req) {
  auto Response = roundTrip(MsgType::QueryReport, encodeQueryReport(Req));
  if (!Response)
    return Response.takeError();
  return decodeText(Response->Payload);
}

Expected<StatsResponse> ServeClient::queryStats(const QueryStatsRequest &Req) {
  auto Response = roundTrip(MsgType::QueryStats, encodeQueryStats(Req));
  if (!Response)
    return Response.takeError();
  return decodeStatsResponse(Response->Payload);
}

void ServeClient::disconnect() {
  if (Conn) {
    Conn->close();
    Conn.reset();
  }
}
