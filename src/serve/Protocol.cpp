//===- serve/Protocol.cpp -------------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"

#include "support/BinaryStream.h"
#include "support/Format.h"

#include <algorithm>

using namespace gprof;
using namespace gprof::serve;

bool serve::isRequestType(uint8_t Type) {
  return Type >= static_cast<uint8_t>(MsgType::Ping) &&
         Type <= static_cast<uint8_t>(MsgType::QueryStats);
}

bool serve::isResponseType(uint8_t Type) {
  return Type >= static_cast<uint8_t>(MsgType::Ok) &&
         Type <= static_cast<uint8_t>(MsgType::Retry);
}

std::string serve::msgTypeName(MsgType Type) {
  switch (Type) {
  case MsgType::Ping:
    return "ping";
  case MsgType::PutShard:
    return "put_shard";
  case MsgType::List:
    return "list";
  case MsgType::QueryReport:
    return "query_report";
  case MsgType::QueryStats:
    return "query_stats";
  case MsgType::Ok:
    return "ok";
  case MsgType::Err:
    return "error";
  case MsgType::Retry:
    return "retry";
  }
  return format("unknown(%u)", static_cast<unsigned>(Type));
}

std::vector<uint8_t> serve::encodeFrameHeader(MsgType Type,
                                              uint64_t PayloadSize,
                                              uint64_t ReqId) {
  BinaryWriter W;
  W.writeBytes(reinterpret_cast<const uint8_t *>(FrameMagic),
               sizeof(FrameMagic));
  W.writeU8(static_cast<uint8_t>(Type));
  W.writeU64(ReqId);
  W.writeU64(PayloadSize);
  return W.takeBytes();
}

Expected<uint64_t> serve::decodeFrameHeader(const uint8_t *Header,
                                            MsgType &Type, uint64_t &ReqId) {
  BinaryReader R(Header, FrameHeaderSize);
  auto Magic = R.readBytes(sizeof(FrameMagic));
  if (!Magic)
    return Magic.takeError();
  if (!std::equal(Magic->begin(), Magic->end(), FrameMagic))
    return Error::failure("bad frame magic (peer is not speaking the "
                          "gprof-serve protocol)");
  auto RawType = R.readU8();
  if (!RawType)
    return RawType.takeError();
  if (!isRequestType(*RawType) && !isResponseType(*RawType))
    return Error::failure(format("unknown frame type %u", *RawType));
  auto Id = R.readU64();
  if (!Id)
    return Id.takeError();
  auto Length = R.readU64();
  if (!Length)
    return Length.takeError();
  if (*Length > MaxFramePayload)
    return Error::failure(format("frame payload of %llu bytes exceeds the "
                                 "%llu-byte limit",
                                 static_cast<unsigned long long>(*Length),
                                 static_cast<unsigned long long>(
                                     MaxFramePayload)));
  Type = static_cast<MsgType>(*RawType);
  ReqId = *Id;
  return *Length;
}

//===----------------------------------------------------------------------===//
// PUT_SHARD
//===----------------------------------------------------------------------===//

std::vector<uint8_t> serve::encodePutShard(const PutShardRequest &Req) {
  BinaryWriter W;
  W.writeBytes(Req.ImageId.data(), Req.ImageId.size());
  W.writeBytes(Req.GmonBytes.data(), Req.GmonBytes.size());
  return W.takeBytes();
}

Expected<PutShardRequest>
serve::decodePutShard(const std::vector<uint8_t> &Payload) {
  BinaryReader R(Payload);
  PutShardRequest Req;
  auto ImageId = R.readBytes(Req.ImageId.size());
  if (!ImageId)
    return Error::failure("put_shard payload truncated inside the image id");
  std::copy(ImageId->begin(), ImageId->end(), Req.ImageId.begin());
  auto Gmon = R.readBytes(R.remaining());
  if (!Gmon)
    return Gmon.takeError();
  if (Gmon->empty())
    return Error::failure("put_shard payload carries no gmon bytes");
  Req.GmonBytes = std::move(*Gmon);
  return Req;
}

//===----------------------------------------------------------------------===//
// QUERY_REPORT
//===----------------------------------------------------------------------===//

namespace {

constexpr uint8_t FlagFlatOnly = 1u << 0;
constexpr uint8_t FlagGraphOnly = 1u << 1;
constexpr uint8_t FlagBrief = 1u << 2;
constexpr uint8_t FlagNoIndex = 1u << 3;
constexpr uint8_t FlagShowZero = 1u << 4;

} // namespace

std::vector<uint8_t> serve::encodeQueryReport(const QueryReportRequest &Req) {
  BinaryWriter W;
  W.writeString(Req.ImagePath);
  uint8_t Flags = 0;
  if (Req.Flags.FlatOnly)
    Flags |= FlagFlatOnly;
  if (Req.Flags.GraphOnly)
    Flags |= FlagGraphOnly;
  if (Req.Flags.Brief)
    Flags |= FlagBrief;
  if (Req.Flags.NoIndex)
    Flags |= FlagNoIndex;
  if (Req.Flags.ShowZero)
    Flags |= FlagShowZero;
  W.writeU8(Flags);
  W.writeU64(Req.Members.size());
  for (const Sha256Digest &D : Req.Members)
    W.writeBytes(D.data(), D.size());
  return W.takeBytes();
}

Expected<QueryReportRequest>
serve::decodeQueryReport(const std::vector<uint8_t> &Payload) {
  BinaryReader R(Payload);
  QueryReportRequest Req;
  auto Path = R.readString();
  if (!Path)
    return Error::failure("query_report payload truncated inside the image "
                          "path");
  Req.ImagePath = std::move(*Path);
  auto Flags = R.readU8();
  if (!Flags)
    return Flags.takeError();
  Req.Flags.FlatOnly = *Flags & FlagFlatOnly;
  Req.Flags.GraphOnly = *Flags & FlagGraphOnly;
  Req.Flags.Brief = *Flags & FlagBrief;
  Req.Flags.NoIndex = *Flags & FlagNoIndex;
  Req.Flags.ShowZero = *Flags & FlagShowZero;
  auto Count = R.readU64();
  if (!Count)
    return Count.takeError();
  if (*Count > MaxListedShards)
    return Error::failure("query_report member count implausibly large");
  Req.Members.reserve(static_cast<size_t>(*Count));
  for (uint64_t I = 0; I != *Count; ++I) {
    auto Bytes = R.readBytes(32);
    if (!Bytes)
      return Error::failure("query_report payload truncated inside the "
                            "member digests");
    Sha256Digest D;
    std::copy(Bytes->begin(), Bytes->end(), D.begin());
    Req.Members.push_back(D);
  }
  if (!R.atEnd())
    return Error::failure(format("%zu trailing bytes after query_report "
                                 "payload",
                                 R.remaining()));
  return Req;
}

//===----------------------------------------------------------------------===//
// QUERY_STATS
//===----------------------------------------------------------------------===//

std::vector<uint8_t> serve::encodeQueryStats(const QueryStatsRequest &Req) {
  BinaryWriter W;
  W.writeU64(Req.SinceSeq);
  W.writeString(Req.Filter);
  return W.takeBytes();
}

Expected<QueryStatsRequest>
serve::decodeQueryStats(const std::vector<uint8_t> &Payload) {
  BinaryReader R(Payload);
  QueryStatsRequest Req;
  auto Since = R.readU64();
  if (!Since)
    return Since.takeError();
  Req.SinceSeq = *Since;
  auto Filter = R.readString();
  if (!Filter)
    return Error::failure("query_stats payload truncated inside the metric "
                          "filter");
  Req.Filter = std::move(*Filter);
  if (!R.atEnd())
    return Error::failure(format("%zu trailing bytes after query_stats "
                                 "payload",
                                 R.remaining()));
  return Req;
}

std::vector<uint8_t> serve::encodeStatsResponse(const StatsResponse &Resp) {
  BinaryWriter W;
  W.writeU64(Resp.LastSeq);
  W.writeString(Resp.StatsJson);
  return W.takeBytes();
}

Expected<StatsResponse>
serve::decodeStatsResponse(const std::vector<uint8_t> &Payload) {
  BinaryReader R(Payload);
  StatsResponse Resp;
  auto LastSeq = R.readU64();
  if (!LastSeq)
    return LastSeq.takeError();
  Resp.LastSeq = *LastSeq;
  auto Json = R.readString();
  if (!Json)
    return Error::failure("stats response truncated inside the stats JSON");
  Resp.StatsJson = std::move(*Json);
  if (!R.atEnd())
    return Error::failure(format("%zu trailing bytes after stats response",
                                 R.remaining()));
  return Resp;
}

//===----------------------------------------------------------------------===//
// LIST
//===----------------------------------------------------------------------===//

std::vector<uint8_t>
serve::encodeShardList(const std::vector<ShardInfo> &Shards) {
  BinaryWriter W;
  W.writeU64(Shards.size());
  for (const ShardInfo &S : Shards) {
    W.writeBytes(S.Digest.data(), S.Digest.size());
    W.writeBytes(S.ImageId.data(), S.ImageId.size());
    for (uint64_t Field : {S.Hz, S.LowPc, S.HighPc, S.BucketSize,
                           S.NumBuckets, S.NumArcs, S.TotalSamples})
      W.writeU64(Field);
    W.writeU32(S.Runs);
  }
  return W.takeBytes();
}

Expected<std::vector<ShardInfo>>
serve::decodeShardList(const std::vector<uint8_t> &Payload) {
  BinaryReader R(Payload);
  auto Count = R.readU64();
  if (!Count)
    return Count.takeError();
  if (*Count > MaxListedShards)
    return Error::failure("shard list count implausibly large");
  std::vector<ShardInfo> Shards;
  Shards.reserve(static_cast<size_t>(*Count));
  for (uint64_t I = 0; I != *Count; ++I) {
    ShardInfo Info;
    auto Digest = R.readBytes(32);
    if (!Digest)
      return Error::failure("shard list truncated inside a digest");
    std::copy(Digest->begin(), Digest->end(), Info.Digest.begin());
    auto ImageId = R.readBytes(32);
    if (!ImageId)
      return Error::failure("shard list truncated inside an image id");
    std::copy(ImageId->begin(), ImageId->end(), Info.ImageId.begin());
    for (uint64_t *Field : {&Info.Hz, &Info.LowPc, &Info.HighPc,
                            &Info.BucketSize, &Info.NumBuckets, &Info.NumArcs,
                            &Info.TotalSamples}) {
      auto V = R.readU64();
      if (!V)
        return V.takeError();
      *Field = *V;
    }
    auto Runs = R.readU32();
    if (!Runs)
      return Runs.takeError();
    Info.Runs = *Runs;
    Shards.push_back(Info);
  }
  if (!R.atEnd())
    return Error::failure(format("%zu trailing bytes after shard list",
                                 R.remaining()));
  return Shards;
}

//===----------------------------------------------------------------------===//
// Scalars
//===----------------------------------------------------------------------===//

std::vector<uint8_t> serve::encodeDigest(const Sha256Digest &Digest) {
  return std::vector<uint8_t>(Digest.begin(), Digest.end());
}

Expected<Sha256Digest>
serve::decodeDigest(const std::vector<uint8_t> &Payload) {
  Sha256Digest D;
  if (Payload.size() != D.size())
    return Error::failure(format("expected a %zu-byte digest payload, got "
                                 "%zu bytes",
                                 D.size(), Payload.size()));
  std::copy(Payload.begin(), Payload.end(), D.begin());
  return D;
}

std::vector<uint8_t> serve::encodeText(const std::string &Text) {
  return std::vector<uint8_t>(Text.begin(), Text.end());
}

Expected<std::string> serve::decodeText(const std::vector<uint8_t> &Payload) {
  return std::string(Payload.begin(), Payload.end());
}
