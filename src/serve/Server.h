//===- serve/Server.h - The continuous-profiling ingestion daemon ---------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-lived half of fleet collection: a daemon that owns one
/// ProfileStore and serves PUT_SHARD / QUERY_REPORT / LIST / PING requests
/// from many concurrent clients over a local UNIX socket.  This is the
/// "millions of users" step past single-process gprof — every profiled run
/// pushes its shard here instead of leaving gmon files strewn across the
/// fleet, and any client can turn the accumulated shards into the same
/// byte-exact listings `gprof-store report` produces offline.
///
/// Concurrency model (docs/SERVE.md): a dedicated accept thread admits
/// connections onto a fixed support/ThreadPool; one pool job serves one
/// connection for its whole lifetime, so at most `Workers` connections
/// are in service and at most `MaxQueuedConnections` more may sit queued.
/// Beyond that the daemon answers RETRY-with-hint and closes — bounded
/// queueing with explicit backpressure instead of unbounded buffering.
/// Store index safety under concurrent PUTs is ProfileStore's own
/// single-writer lock; socket reads/writes carry the PR 4 fault points so
/// crash-safety of concurrent ingest is tested, not assumed.
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_SERVE_SERVER_H
#define GPROF_SERVE_SERVER_H

#include "serve/Connection.h"
#include "serve/Protocol.h"
#include "store/ProfileStore.h"
#include "support/Error.h"
#include "support/Socket.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <memory>
#include <string>
#include <thread>

namespace gprof {
namespace serve {

/// Daemon behavior knobs.
struct ServeOptions {
  /// Worker threads — the number of connections in service at once.
  unsigned Workers = 8;
  /// Admitted connections allowed to wait for a free worker beyond the
  /// ones in service; arrivals past Workers + MaxQueuedConnections get a
  /// RETRY response and are closed.
  unsigned MaxQueuedConnections = 8;
  /// Accept-loop poll granularity (also bounds stop() latency).
  int AcceptPollMs = 100;
  /// Per-connection idle timeout (serve/Connection.h).
  int IdleTimeoutMs = 30000;
  /// Requests slower than this are reported to the event log
  /// ("request.slow"); negative disables the check.
  int SlowRequestMs = 1000;
  /// Fold freshly pushed shards into tiered runs on the daemon's own pool
  /// between requests (store/ProfileStore.h), keeping report queries
  /// O(log N) as shards stream in.  Disable to pin the store's layout
  /// (e.g. when an offline `gprof-store compact` owns compaction).
  bool BackgroundCompaction = true;
  /// Store behavior (tolerant reads, I/O retry budget, compaction fanout).
  StoreOptions Store;
};

/// One running daemon instance.  Create, start(), and eventually stop();
/// the destructor stops implicitly.  Heap-only (returned by unique_ptr)
/// because worker lambdas capture `this`.
class ServeServer {
public:
  /// Opens (creating if needed) the store at \p StoreRoot and binds the
  /// listener at \p SocketPath.  The daemon is not serving until start().
  static Expected<std::unique_ptr<ServeServer>>
  create(const std::string &StoreRoot, const std::string &SocketPath,
         const ServeOptions &Opts = {});

  ~ServeServer() { stop(); }

  /// Spawns the accept loop.  Idempotent once started.
  Error start();

  /// Stops accepting, wakes idle connections (they observe the stop flag
  /// within one poll interval), drains in-flight requests, and joins.
  /// Idempotent.
  void stop();

  const std::string &socketPath() const { return Listener.path(); }
  const ServeOptions &options() const { return Opts; }

  /// The daemon's store.  Safe to inspect after stop(); during service,
  /// use the store's own thread-safe entry points.
  ProfileStore &store() { return Store; }

private:
  ServeServer(ProfileStore Store, UnixListener Listener, ServeOptions Opts);

  void acceptLoop();
  void serveConnection(Connection &Conn);
  /// Dispatches one request; returns false when the connection must close
  /// (protocol violation or unwritable peer).
  bool dispatch(Connection &Conn, const Frame &Request);

  /// Enqueues one background compaction drain onto the pool when folds
  /// are pending and none is already running — called after every
  /// successful PUT_SHARD and once at start() to fold a store that grew
  /// offline.  The drain runs compactStep (sequentially: a pool worker
  /// must not fan subtasks back onto its own pool) until done, then
  /// re-checks for pushes that arrived meanwhile.
  void maybeScheduleCompaction();

  Error handlePut(Connection &Conn, const Frame &Request);
  Error handleList(Connection &Conn);
  Error handleQuery(Connection &Conn, const Frame &Request);
  /// Answers QUERY_STATS from the telemetry registry and event log only —
  /// never takes the store's ingest lock, so stats stay responsive while
  /// a heavy merge holds it.
  Error handleStats(Connection &Conn, const Frame &Request);

  ProfileStore Store;
  UnixListener Listener;
  ServeOptions Opts;
  ThreadPool Pool;
  std::thread AcceptThread;
  std::atomic<bool> Stop{false};
  std::atomic<bool> Started{false};
  /// True while a compaction drain occupies a pool worker; at most one
  /// runs at a time so folds never contend on the ingest lock with each
  /// other.
  std::atomic<bool> CompactionBusy{false};
  /// Connections admitted (queued + in service).
  std::atomic<unsigned> Active{0};
  /// Monotonic request-id source; ids are per-process, never reused.
  std::atomic<uint64_t> NextRequestId{0};
  /// Registry timestamp at construction, for QUERY_STATS uptime.
  uint64_t StartNs = 0;
};

} // namespace serve
} // namespace gprof

#endif // GPROF_SERVE_SERVER_H
