//===- support/Random.h - Deterministic pseudo-random numbers ------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A SplitMix64 generator.  Tests, property sweeps and workload generators
/// all derive their randomness from explicit seeds through this class so
/// every experiment in EXPERIMENTS.md is exactly reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_SUPPORT_RANDOM_H
#define GPROF_SUPPORT_RANDOM_H

#include <cassert>
#include <cstdint>

namespace gprof {

/// SplitMix64: tiny, fast, and statistically adequate for workload shaping.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform in [0, Bound).  \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "nextBelow(0)");
    // Rejection sampling to avoid modulo bias.
    uint64_t Threshold = -Bound % Bound;
    while (true) {
      uint64_t R = next();
      if (R >= Threshold)
        return R % Bound;
    }
  }

  /// Uniform in [Lo, Hi] inclusive.
  uint64_t nextInRange(uint64_t Lo, uint64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + nextBelow(Hi - Lo + 1);
  }

  /// Uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability \p P.
  bool nextBool(double P) { return nextDouble() < P; }

private:
  uint64_t State;
};

} // namespace gprof

#endif // GPROF_SUPPORT_RANDOM_H
