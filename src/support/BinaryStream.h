//===- support/BinaryStream.h - Little-endian binary (de)serialization ---===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Byte-oriented writer/reader used by the gmon profile file format and the
/// VM executable image.  All multi-byte quantities are little-endian and
/// written byte-by-byte so the format is independent of host endianness.
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_SUPPORT_BINARYSTREAM_H
#define GPROF_SUPPORT_BINARYSTREAM_H

#include "support/Error.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gprof {

/// Appends little-endian encoded values to a growable byte buffer.
class BinaryWriter {
public:
  void writeU8(uint8_t V) { Bytes.push_back(V); }

  void writeU16(uint16_t V) {
    writeU8(static_cast<uint8_t>(V));
    writeU8(static_cast<uint8_t>(V >> 8));
  }

  void writeU32(uint32_t V) {
    writeU16(static_cast<uint16_t>(V));
    writeU16(static_cast<uint16_t>(V >> 16));
  }

  void writeU64(uint64_t V) {
    writeU32(static_cast<uint32_t>(V));
    writeU32(static_cast<uint32_t>(V >> 32));
  }

  void writeI64(int64_t V) { writeU64(static_cast<uint64_t>(V)); }

  void writeF64(double V);

  /// Writes a length-prefixed UTF-8 string (u32 length + bytes).
  void writeString(std::string_view S);

  /// Appends raw bytes.
  void writeBytes(const uint8_t *Data, size_t Size) {
    Bytes.insert(Bytes.end(), Data, Data + Size);
  }

  const std::vector<uint8_t> &bytes() const { return Bytes; }
  std::vector<uint8_t> takeBytes() { return std::move(Bytes); }
  size_t size() const { return Bytes.size(); }

private:
  std::vector<uint8_t> Bytes;
};

/// Reads little-endian encoded values from a byte buffer.  All read methods
/// fail (rather than assert) on truncated input so corrupted profile files
/// are reported as recoverable errors.
class BinaryReader {
public:
  BinaryReader(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}
  explicit BinaryReader(const std::vector<uint8_t> &Bytes)
      : Data(Bytes.data()), Size(Bytes.size()) {}

  Expected<uint8_t> readU8();
  Expected<uint16_t> readU16();
  Expected<uint32_t> readU32();
  Expected<uint64_t> readU64();
  Expected<int64_t> readI64();
  Expected<double> readF64();
  Expected<std::string> readString();

  /// Reads exactly \p N raw bytes.
  Expected<std::vector<uint8_t>> readBytes(size_t N);

  size_t position() const { return Pos; }
  size_t remaining() const { return Size - Pos; }
  bool atEnd() const { return Pos == Size; }

private:
  Error checkAvailable(size_t N);

  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
};

} // namespace gprof

#endif // GPROF_SUPPORT_BINARYSTREAM_H
