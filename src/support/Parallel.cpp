//===- support/Parallel.cpp -----------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "support/Parallel.h"

#include <algorithm>

using namespace gprof;

std::vector<IndexChunk> gprof::planChunks(const ThreadPool *Pool, size_t N,
                                          size_t MinPerChunk) {
  std::vector<IndexChunk> Chunks;
  if (N == 0)
    return Chunks;
  if (MinPerChunk == 0)
    MinPerChunk = 1;

  size_t NumChunks = 1;
  if (Pool) {
    // A few chunks per worker so an unlucky heavy chunk cannot serialize
    // the whole stage.
    NumChunks = static_cast<size_t>(Pool->size()) * 4;
    NumChunks = std::min(NumChunks, (N + MinPerChunk - 1) / MinPerChunk);
    NumChunks = std::max<size_t>(NumChunks, 1);
  }

  size_t ChunkSize = (N + NumChunks - 1) / NumChunks;
  for (size_t Begin = 0; Begin < N; Begin += ChunkSize)
    Chunks.emplace_back(Begin, std::min(Begin + ChunkSize, N));
  return Chunks;
}

void gprof::runChunks(ThreadPool *Pool, const std::vector<IndexChunk> &Chunks,
                      const std::function<void(size_t, size_t, size_t)> &Body) {
  if (Chunks.empty())
    return;
  if (!Pool || Chunks.size() == 1) {
    for (size_t C = 0; C != Chunks.size(); ++C)
      Body(Chunks[C].first, Chunks[C].second, C);
    return;
  }
  std::vector<std::future<void>> Futures;
  Futures.reserve(Chunks.size());
  for (size_t C = 0; C != Chunks.size(); ++C)
    Futures.push_back(Pool->async(
        [&Body, Begin = Chunks[C].first, End = Chunks[C].second, C] {
          Body(Begin, End, C);
        }));
  for (std::future<void> &F : Futures)
    F.get();
}

void gprof::parallelChunks(ThreadPool *Pool, size_t N, size_t MinPerChunk,
                           const std::function<void(size_t, size_t, size_t)>
                               &Body) {
  runChunks(Pool, planChunks(Pool, N, MinPerChunk), Body);
}
