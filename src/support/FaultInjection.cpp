//===- support/FaultInjection.cpp -----------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"

#include "support/EventLog.h"
#include "support/Format.h"
#include "support/Telemetry.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <vector>

using namespace gprof;

namespace {

struct PointState {
  uint64_t Nth = 0;   ///< 1-based first failing call; 0 = disarmed.
  uint64_t Count = 0; ///< Consecutive failures; 0 = all calls from Nth.
  uint64_t Calls = 0; ///< Calls observed since arming.
  uint64_t Fired = 0; ///< Failures injected since arming.
};

struct Registry {
  std::mutex Mutex;
  std::map<std::string, PointState> Points;
};

Registry &registry() {
  // Leaked like the telemetry registry so checks during shutdown stay safe.
  static Registry *R = new Registry;
  return *R;
}

/// Count of armed points; lets an unarmed check() skip the lock.
std::atomic<uint64_t> ArmedPoints{0};

/// Splits "point:nth[:count]" into its fields.  Returns false on any
/// malformed piece.
bool parseEntry(const std::string &Entry, std::string &Point, uint64_t &Nth,
                uint64_t &Count) {
  size_t C1 = Entry.find(':');
  if (C1 == std::string::npos || C1 == 0)
    return false;
  Point = Entry.substr(0, C1);
  size_t C2 = Entry.find(':', C1 + 1);
  std::string NthStr = Entry.substr(
      C1 + 1, C2 == std::string::npos ? std::string::npos : C2 - C1 - 1);
  unsigned long long V;
  if (!parseUInt64(NthStr, V) || V == 0)
    return false;
  Nth = V;
  Count = 1;
  if (C2 != std::string::npos) {
    if (!parseUInt64(Entry.substr(C2 + 1), V))
      return false;
    Count = V;
  }
  return true;
}

void loadEnvOnce() {
  static std::once_flag Once;
  std::call_once(Once, [] {
    const char *Spec = std::getenv("GPROF_FAULT");
    if (!Spec || !*Spec)
      return;
    if (Error E = fault::armFromSpec(Spec)) {
      std::fprintf(stderr, "warning: ignoring GPROF_FAULT: %s\n",
                   E.message().c_str());
    }
  });
}

} // namespace

void fault::arm(const std::string &Point, uint64_t Nth, uint64_t Count) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  PointState &S = R.Points[Point];
  if (S.Nth == 0 && Nth != 0)
    ArmedPoints.fetch_add(1, std::memory_order_relaxed);
  S = PointState{Nth, Count, 0, 0};
}

void fault::disarmAll() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  R.Points.clear();
  ArmedPoints.store(0, std::memory_order_relaxed);
}

Error fault::armFromSpec(const std::string &Spec) {
  // Validate every entry before arming any, so a bad spec arms nothing.
  struct Parsed {
    std::string Point;
    uint64_t Nth, Count;
  };
  std::vector<Parsed> Entries;
  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    std::string Entry = Spec.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    if (!Entry.empty()) {
      Parsed P;
      if (!parseEntry(Entry, P.Point, P.Nth, P.Count))
        return Error::failure(format(
            "bad fault spec '%s' (expected point:nth[:count], nth >= 1)",
            Entry.c_str()));
      Entries.push_back(std::move(P));
    }
    if (Comma == std::string::npos)
      break;
    Pos = Comma + 1;
  }
  for (const Parsed &P : Entries)
    arm(P.Point, P.Nth, P.Count);
  return Error::success();
}

Error fault::check(const char *Point, const std::string &Detail) {
  loadEnvOnce();
  if (ArmedPoints.load(std::memory_order_relaxed) == 0)
    return Error::success();
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  auto It = R.Points.find(Point);
  if (It == R.Points.end() || It->second.Nth == 0)
    return Error::success();
  PointState &S = It->second;
  ++S.Calls;
  if (S.Calls < S.Nth || (S.Count != 0 && S.Calls >= S.Nth + S.Count))
    return Error::success();
  ++S.Fired;
  telemetry::counter("fault.injected").add(1);
  EventLog::instance().emit("fault.fired",
                            jsonStringField("point", Point) + ", " +
                                jsonIntField("call", S.Calls));
  return Error::failure(format("injected fault at %s on call %llu (%s)",
                               Point,
                               static_cast<unsigned long long>(S.Calls),
                               Detail.c_str()));
}

uint64_t fault::callCount(const std::string &Point) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  auto It = R.Points.find(Point);
  return It == R.Points.end() ? 0 : It->second.Calls;
}

uint64_t fault::firedCount(const std::string &Point) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  auto It = R.Points.find(Point);
  return It == R.Points.end() ? 0 : It->second.Fired;
}

bool fault::anyArmed() {
  return ArmedPoints.load(std::memory_order_relaxed) != 0;
}
