//===- support/Error.cpp --------------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "support/Error.h"

#include <cstdio>

using namespace gprof;

void gprof::reportFatalError(const std::string &Message) {
  std::fprintf(stderr, "fatal error: %s\n", Message.c_str());
  std::abort();
}
