//===- support/MappedFile.cpp ---------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "support/MappedFile.h"

#include "support/FaultInjection.h"
#include "support/Format.h"
#include "support/Telemetry.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

using namespace gprof;

namespace {

/// RAII file descriptor for the open/fstat/mmap sequence.
struct FdHandle {
  explicit FdHandle(int Fd) : Fd(Fd) {}
  ~FdHandle() {
    if (Fd >= 0)
      ::close(Fd);
  }
  FdHandle(const FdHandle &) = delete;
  FdHandle &operator=(const FdHandle &) = delete;
  int Fd;
};

/// Reads the remainder of \p Fd into \p Out (the mmap fallback).  The
/// descriptor is at offset zero and \p Hint sizes the reserve.
Error readAll(int Fd, const std::string &Path, size_t Hint,
              std::vector<uint8_t> &Out) {
  Out.clear();
  Out.reserve(Hint);
  uint8_t Buf[64 * 1024];
  while (true) {
    ssize_t N = ::read(Fd, Buf, sizeof(Buf));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return Error::failure(format("read error on '%s'", Path.c_str()));
    }
    if (N == 0)
      return Error::success();
    Out.insert(Out.end(), Buf, Buf + N);
  }
}

} // namespace

void MappedFile::reset() {
  if (Mapping)
    ::munmap(Mapping, MapLength);
  Mapping = nullptr;
  MapLength = 0;
  Data = nullptr;
  Size = 0;
  Fallback.clear();
}

MappedFile::~MappedFile() { reset(); }

Expected<MappedFile> MappedFile::open(const std::string &Path,
                                      bool ForceReadFallback) {
  // Shared gate with readFileBytes: arming file.read keeps failing every
  // profile read even after callers moved to the zero-copy path.
  if (Error E = fault::check("file.read", Path))
    return E;
  FdHandle FH(::open(Path.c_str(), O_RDONLY | O_CLOEXEC));
  if (FH.Fd < 0)
    return Error::failure(format("cannot open '%s' for reading",
                                 Path.c_str()));
  struct stat St;
  if (::fstat(FH.Fd, &St) != 0)
    return Error::failure(format("cannot stat '%s'", Path.c_str()));

  // A map-layer fault surfaces as a clean error, not a fallback: a real
  // SIGBUS-prone mapping would fail mid-parse, so tests that arm this
  // point pin the whole-open error path instead.
  if (Error E = fault::check("file.mmap", Path))
    return E;

  MappedFile MF;
  const size_t FileSize = static_cast<size_t>(St.st_size);
  if (!ForceReadFallback && S_ISREG(St.st_mode) && FileSize != 0) {
    void *Base = ::mmap(nullptr, FileSize, PROT_READ, MAP_PRIVATE, FH.Fd, 0);
    if (Base != MAP_FAILED) {
      MF.Mapping = Base;
      MF.MapLength = FileSize;
      MF.Data = static_cast<const uint8_t *>(Base);
      MF.Size = FileSize;
      return MF;
    }
    // mmap declined (unusual filesystem); fall through to read().
  }
  // How often the mapper degrades to copying depends on the platform and
  // filesystem, never on the profile data — a gauge, not a counter
  // (docs/TELEMETRY.md).
  telemetry::gauge("file.mmap.fallback_reads").add(1);
  if (Error E = readAll(FH.Fd, Path, FileSize, MF.Fallback))
    return E;
  MF.Data = MF.Fallback.data();
  MF.Size = MF.Fallback.size();
  return MF;
}
