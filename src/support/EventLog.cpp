//===- support/EventLog.cpp - Structured service event log -----------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "support/EventLog.h"

#include "support/Format.h"
#include "support/Telemetry.h"

namespace gprof {

std::string LogEvent::toJson() const {
  std::string Out = format("{\"seq\": %llu, \"t_ns\": %llu, \"event\": ",
                           static_cast<unsigned long long>(Seq),
                           static_cast<unsigned long long>(TimeNs));
  telemetry::appendJsonString(Out, Type);
  if (!Fields.empty()) {
    Out += ", ";
    Out += Fields;
  }
  Out += '}';
  return Out;
}

EventLog &EventLog::instance() {
  static EventLog *L = new EventLog();
  return *L;
}

void EventLog::emit(const std::string &Type, const std::string &Fields) {
  LogEvent E;
  E.TimeNs = telemetry::Registry::instance().nowNs();
  E.Type = Type;
  E.Fields = Fields;
  std::lock_guard<std::mutex> Lock(Mutex);
  E.Seq = NextSeq++;
  if (Sink) {
    // One fputs per line keeps concurrent emitters' lines whole; flush
    // so a tail -f (or a crash) sees every event that was emitted.
    std::string Line = E.toJson() + "\n";
    std::fputs(Line.c_str(), Sink);
    std::fflush(Sink);
  }
  Ring.push_back(std::move(E));
  while (Ring.size() > Capacity)
    Ring.pop_front();
}

std::vector<LogEvent> EventLog::since(uint64_t AfterSeq) const {
  std::vector<LogEvent> Out;
  std::lock_guard<std::mutex> Lock(Mutex);
  for (const LogEvent &E : Ring)
    if (E.Seq > AfterSeq)
      Out.push_back(E);
  return Out;
}

uint64_t EventLog::lastSeq() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return NextSeq - 1;
}

size_t EventLog::capacity() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Capacity;
}

void EventLog::setCapacity(size_t Events) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Capacity = Events ? Events : 1;
  while (Ring.size() > Capacity)
    Ring.pop_front();
}

Error EventLog::setSinkFile(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "a");
  if (!F)
    return Error::failure(
        format("cannot open event log file '%s' for append", Path.c_str()));
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Sink)
    std::fclose(Sink);
  Sink = F;
  return Error::success();
}

void EventLog::closeSink() {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Sink) {
    std::fclose(Sink);
    Sink = nullptr;
  }
}

void EventLog::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Ring.clear();
}

std::string EventLog::renderArray(const std::vector<LogEvent> &Events) {
  std::string Out = "[";
  bool First = true;
  for (const LogEvent &E : Events) {
    if (!First)
      Out += ", ";
    First = false;
    Out += E.toJson();
  }
  Out += ']';
  return Out;
}

std::string jsonStringField(const std::string &Key, const std::string &Value) {
  std::string Out;
  telemetry::appendJsonString(Out, Key);
  Out += ": ";
  telemetry::appendJsonString(Out, Value);
  return Out;
}

std::string jsonIntField(const std::string &Key, uint64_t Value) {
  std::string Out;
  telemetry::appendJsonString(Out, Key);
  Out += format(": %llu", static_cast<unsigned long long>(Value));
  return Out;
}

} // namespace gprof
