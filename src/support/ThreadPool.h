//===- support/ThreadPool.h - Reusable fixed-size worker pool ------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size thread pool in the LLVM ThreadPool mold: jobs are
/// queued, workers drain the queue, and async() hands back a std::future.
/// The profile store's parallel merge tree runs on it; consumers that need
/// deterministic output must make their reduction order-independent (exact
/// integer arithmetic + canonical final ordering) rather than rely on any
/// scheduling property of the pool — workers pick jobs strictly FIFO but
/// finish them in any order.
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_SUPPORT_THREADPOOL_H
#define GPROF_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace gprof {

/// Fixed-size worker pool.  Destruction waits for every queued job.
class ThreadPool {
public:
  /// Spawns \p NumThreads workers; 0 means one per hardware thread
  /// (at least one).
  explicit ThreadPool(unsigned NumThreads = 0);

  /// Drains the queue, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Number of worker threads.
  unsigned size() const { return static_cast<unsigned>(Workers.size()); }

  /// Queues \p Fn and returns a future for its result.
  template <typename Fn>
  std::future<std::invoke_result_t<Fn>> async(Fn &&F) {
    using Result = std::invoke_result_t<Fn>;
    auto Task = std::make_shared<std::packaged_task<Result()>>(
        std::forward<Fn>(F));
    std::future<Result> Future = Task->get_future();
    enqueue([Task] { (*Task)(); });
    return Future;
  }

  /// Blocks until every job queued so far has finished.
  void wait();

private:
  void enqueue(std::function<void()> Job);
  void workerLoop(unsigned WorkerIndex);

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  std::mutex Mutex;
  std::condition_variable WorkAvailable;
  std::condition_variable AllIdle;
  unsigned ActiveJobs = 0;
  bool ShuttingDown = false;
};

} // namespace gprof

#endif // GPROF_SUPPORT_THREADPOOL_H
