//===- support/MappedFile.h - Zero-copy whole-file views -----------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A read-only view of an entire file, mmap'd when the platform allows it
/// and read into an owned buffer otherwise (empty files, filesystems
/// without mmap, injected map faults in tests).  Either way the caller
/// sees one stable (data, size) span for the lifetime of the object, so
/// parsers can view records directly out of the file instead of copying
/// it through readFileBytes first — the gmon read path and the store's
/// index/object loads parse in place on top of this (docs/READPATH.md).
///
/// Fault points (docs/ROBUSTNESS.md):
///   file.read   fired on open, shared with readFileBytes, so
///               GPROF_FAULT=file.read keeps covering every read path
///               after the zero-copy switch;
///   file.mmap   fired between open and map, modelling a map-layer
///               failure (ENOMEM, SIGBUS-prone media) that must surface
///               as a clean error, never a crash.
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_SUPPORT_MAPPEDFILE_H
#define GPROF_SUPPORT_MAPPEDFILE_H

#include "support/Error.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace gprof {

/// An immutable byte span over one file's entire contents.
class MappedFile {
public:
  /// An empty, unmapped view (so Expected<MappedFile> can default-build).
  MappedFile() = default;
  ~MappedFile();

  MappedFile(MappedFile &&Other) noexcept { moveFrom(std::move(Other)); }
  MappedFile &operator=(MappedFile &&Other) noexcept {
    if (this != &Other) {
      reset();
      moveFrom(std::move(Other));
    }
    return *this;
  }
  MappedFile(const MappedFile &) = delete;
  MappedFile &operator=(const MappedFile &) = delete;

  /// Opens and maps the file at \p Path.  Falls back to an owned read()
  /// buffer when mmap is unavailable for the file (e.g. it is empty);
  /// \p ForceReadFallback takes the fallback unconditionally, so tests
  /// can pin both paths to identical semantics.
  static Expected<MappedFile> open(const std::string &Path,
                                   bool ForceReadFallback = false);

  const uint8_t *data() const { return Data; }
  size_t size() const { return Size; }

  /// True when the view is an actual mapping (false: owned buffer).
  bool isMapped() const { return Mapping != nullptr; }

private:
  void reset();
  void moveFrom(MappedFile &&Other) {
    Data = Other.Data;
    Size = Other.Size;
    Mapping = Other.Mapping;
    MapLength = Other.MapLength;
    Fallback = std::move(Other.Fallback);
    Other.Data = nullptr;
    Other.Size = 0;
    Other.Mapping = nullptr;
    Other.MapLength = 0;
  }

  const uint8_t *Data = nullptr;
  size_t Size = 0;
  void *Mapping = nullptr; ///< mmap base, null for the fallback buffer.
  size_t MapLength = 0;    ///< mmap'd length (munmap needs it).
  std::vector<uint8_t> Fallback;
};

} // namespace gprof

#endif // GPROF_SUPPORT_MAPPEDFILE_H
