//===- support/FaultInjection.h - Deterministic fault points -------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Named fault points for crash-safety testing (docs/ROBUSTNESS.md).  Code
/// on a fallible path calls fault::check("file.write", Path); when the
/// point is armed for that call number the check returns a failure Error,
/// exercising the same error path a real I/O fault would.  Arming is
/// deterministic — "fail the Nth call, for Count calls" — so a test can
/// place a fault at any depth of a multi-step operation and replay it
/// exactly.
///
/// Points are armed programmatically (arm / armFromSpec) or from the
/// environment: GPROF_FAULT="point:nth[:count][,point:nth[:count]...]"
/// is read once, on the first check() in the process, so any CLI can be
/// fault-tested without argv changes.  Count 0 means "every call from the
/// Nth on".  When nothing is armed a check is one relaxed atomic load.
///
/// Fault points wired in today:
///   file.read    FileUtils readFileBytes and MappedFile::open (and
///                everything above them — the gate is shared so one arm
///                covers both the copying and the zero-copy read paths)
///   file.mmap    MappedFile::open, between open and map: a map-layer
///                failure surfaces as a clean error, never a crash
///   file.write   FileUtils writeFileBytes / writeFileBytesAtomic
///   file.rename  FileUtils renameFile (atomic-write commit step)
///   store.put    ProfileStore::put entry
///   store.merge  ProfileStore::merge entry
///   store.gc     ProfileStore::gc entry
///   store.compact ProfileStore::compactStep entry (tiered run folding)
///   sock.connect Socket UnixSocket::connectTo
///   sock.accept  Socket UnixListener::accept
///   sock.read    Socket UnixSocket::recvSome (daemon + client frame reads)
///   sock.write   Socket UnixSocket::sendAll (daemon + client frame writes)
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_SUPPORT_FAULTINJECTION_H
#define GPROF_SUPPORT_FAULTINJECTION_H

#include "support/Error.h"

#include <cstdint>
#include <string>

namespace gprof {
namespace fault {

/// Arms \p Point to fail calls [Nth, Nth + Count) (1-based).  Count 0
/// fails every call from the Nth on.  Re-arming a point replaces its
/// previous schedule and zeroes its call counter.
void arm(const std::string &Point, uint64_t Nth, uint64_t Count = 1);

/// Disarms every point and zeroes all counters.
void disarmAll();

/// Arms from a spec string: "point:nth[:count]" entries separated by
/// commas.  Returns a failure naming the malformed entry, arming nothing.
Error armFromSpec(const std::string &Spec);

/// The fallible-path hook: counts one call of \p Point and returns a
/// failure Error if the call is scheduled to fail.  \p Detail names the
/// operation's target (a file path, a store root) in the message.  The
/// GPROF_FAULT environment spec is loaded on the first call.
Error check(const char *Point, const std::string &Detail);

/// Calls observed at \p Point since it was last (re-)armed.
uint64_t callCount(const std::string &Point);

/// Failures injected at \p Point since it was last (re-)armed.
uint64_t firedCount(const std::string &Point);

/// True if any point is currently armed.
bool anyArmed();

} // namespace fault
} // namespace gprof

#endif // GPROF_SUPPORT_FAULTINJECTION_H
