//===- support/EventLog.h - Structured service event log -------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded in-memory ring of timestamped structured events, the
/// narrative companion to the telemetry registry's numbers: counters say
/// *how many* connections were rejected, the event log says *when* and
/// *why*.  The serve daemon emits admission decisions, RETRY
/// backpressure, fired fault points, slow requests and gc sweeps into it;
/// QUERY_STATS drains the ring incrementally (by sequence number) so
/// `gprof-store stats --watch` doubles as a live tail.
///
/// Events render as JSONL: one `{"seq": N, "t_ns": N, "event": "...",
/// ...fields}` object per line.  An optional file sink (`--log-file`)
/// appends each line as a single write under the log's mutex, so lines
/// from concurrent emitters never interleave.
///
/// Like the telemetry registry, the log is a leaked process-wide
/// singleton: worker threads may emit during shutdown.
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_SUPPORT_EVENTLOG_H
#define GPROF_SUPPORT_EVENTLOG_H

#include "support/Error.h"

#include <cstdint>
#include <cstdio>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace gprof {

/// One logged event.  Fields is raw JSON members text ("\"k\": v, ...",
/// possibly empty), pre-rendered by the emitter with the jsonField
/// helpers below.
struct LogEvent {
  uint64_t Seq = 0;    ///< 1-based, strictly increasing per process.
  uint64_t TimeNs = 0; ///< telemetry::Registry::nowNs() at emit time.
  std::string Type;    ///< "connection.accepted", "gc.sweep", ...
  std::string Fields;

  /// Renders the event as one JSON object.
  std::string toJson() const;
};

class EventLog {
public:
  /// The singleton (leaked, like telemetry::Registry::instance()).
  static EventLog &instance();

  /// Appends one event to the ring (dropping the oldest event when the
  /// ring is full) and to the file sink when one is open.
  void emit(const std::string &Type, const std::string &Fields = "");

  /// Every retained event with Seq > AfterSeq, oldest first.
  std::vector<LogEvent> since(uint64_t AfterSeq) const;

  /// Sequence number of the most recent event ever emitted (0 when none
  /// has been) — counts events the ring has already dropped.
  uint64_t lastSeq() const;

  size_t capacity() const;
  void setCapacity(size_t Events);

  /// Opens \p Path in append mode and mirrors every subsequent event
  /// into it, one JSON line per event.
  Error setSinkFile(const std::string &Path);
  void closeSink();

  /// Drops all retained events (sequence numbering continues; the sink
  /// stays open).  For tests.
  void clear();

  /// Renders events as a JSON array (no trailing newline).
  static std::string renderArray(const std::vector<LogEvent> &Events);

private:
  EventLog() = default;
  EventLog(const EventLog &) = delete;

  mutable std::mutex Mutex;
  std::deque<LogEvent> Ring; ///< Guarded by Mutex, oldest at front.
  size_t Capacity = 256;     ///< Guarded by Mutex.
  uint64_t NextSeq = 1;      ///< Guarded by Mutex.
  std::FILE *Sink = nullptr; ///< Guarded by Mutex.
};

/// Helpers for building LogEvent::Fields: one JSON member, escaped.
std::string jsonStringField(const std::string &Key, const std::string &Value);
std::string jsonIntField(const std::string &Key, uint64_t Value);

} // namespace gprof

#endif // GPROF_SUPPORT_EVENTLOG_H
