//===- support/Arena.h - Bump-pointer slab allocator ---------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bump-pointer arena for the analyzer's read-and-attribute hot path
/// (docs/READPATH.md).  Allocation is a pointer increment into the current
/// slab; exhausted slabs are chained and everything is released at once
/// when the arena dies.  There is no per-object free — the intended
/// lifetime is "one analysis phase": the symbolization shards bump their
/// accumulator tables out of a chunk-local arena and drop the whole arena
/// after the reduction, and the symbol table interns every routine name
/// into one arena that lives exactly as long as the table.
///
/// Not thread-safe: each worker owns its own arena (the determinism
/// contract in support/Parallel.h already forbids shared mutable state
/// inside a chunk).
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_SUPPORT_ARENA_H
#define GPROF_SUPPORT_ARENA_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace gprof {

/// Bump allocator over geometrically growing slabs.
class Arena {
public:
  /// \p FirstSlabBytes sizes the initial slab; later slabs double up to
  /// MaxSlabBytes.  Nothing is allocated until the first allocate().
  explicit Arena(size_t FirstSlabBytes = 4096)
      : NextSlabBytes(FirstSlabBytes < MinSlabBytes ? MinSlabBytes
                                                    : FirstSlabBytes) {}

  Arena(Arena &&) = default;
  Arena &operator=(Arena &&) = default;
  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  /// Returns \p Bytes of storage aligned to \p Align.  Never fails short
  /// of operator new failing; never reuses or frees until the arena dies.
  void *allocate(size_t Bytes, size_t Align = alignof(std::max_align_t)) {
    assert(Align != 0 && (Align & (Align - 1)) == 0 && "bad alignment");
    uintptr_t P = (Cur + Align - 1) & ~(uintptr_t(Align) - 1);
    if (P + Bytes > End) {
      newSlab(Bytes + Align);
      P = (Cur + Align - 1) & ~(uintptr_t(Align) - 1);
    }
    Cur = P + Bytes;
    Allocated += Bytes;
    return reinterpret_cast<void *>(P);
  }

  /// Typed array allocation (uninitialized for trivial T).
  template <typename T> T *allocateArray(size_t N) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena never runs destructors");
    return static_cast<T *>(allocate(N * sizeof(T), alignof(T)));
  }

  /// Copies \p Size bytes into the arena and returns the stable copy.
  /// The interning primitive behind the symbol-name arena.
  const char *internBytes(const char *Data, size_t Size) {
    char *P = allocateArray<char>(Size);
    std::memcpy(P, Data, Size);
    return P;
  }

  /// Total bytes handed out (telemetry; excludes slab slack).
  size_t bytesAllocated() const { return Allocated; }

private:
  static constexpr size_t MinSlabBytes = 256;
  static constexpr size_t MaxSlabBytes = 1u << 20;

  void newSlab(size_t AtLeast) {
    size_t Bytes = NextSlabBytes;
    if (Bytes < AtLeast)
      Bytes = AtLeast;
    Slabs.push_back(std::make_unique<uint8_t[]>(Bytes));
    Cur = reinterpret_cast<uintptr_t>(Slabs.back().get());
    End = Cur + Bytes;
    if (NextSlabBytes < MaxSlabBytes)
      NextSlabBytes *= 2;
  }

  std::vector<std::unique_ptr<uint8_t[]>> Slabs;
  uintptr_t Cur = 0;
  uintptr_t End = 0;
  size_t NextSlabBytes;
  size_t Allocated = 0;
};

} // namespace gprof

#endif // GPROF_SUPPORT_ARENA_H
