//===- support/Format.h - String formatting helpers ----------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// printf-style formatting into std::string plus the small set of numeric
/// and alignment helpers the profile listings need.  The gprof output format
/// is fixed-width character tables (paper §5), so precise padding matters.
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_SUPPORT_FORMAT_H
#define GPROF_SUPPORT_FORMAT_H

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace gprof {

/// printf-style formatting into a std::string.
std::string format(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// vprintf-style formatting into a std::string.
std::string formatV(const char *Fmt, va_list Args);

/// Right-aligns \p S in a field of \p Width characters (never truncates).
std::string padLeft(std::string_view S, unsigned Width);

/// Left-aligns \p S in a field of \p Width characters (never truncates).
std::string padRight(std::string_view S, unsigned Width);

/// Formats \p Value with \p Decimals digits after the point.
std::string formatFixed(double Value, unsigned Decimals);

/// Formats \p Numerator/\p Denominator as a percentage with one decimal,
/// e.g. "41.5".  Returns "0.0" when the denominator is zero.
std::string formatPercent(double Numerator, double Denominator);

/// Splits \p S on \p Sep, keeping empty fields.
std::vector<std::string> splitString(std::string_view S, char Sep);

/// Removes leading and trailing whitespace.
std::string_view trim(std::string_view S);

/// Parses a signed 64-bit decimal integer; returns false on any malformed
/// or out-of-range input.
bool parseInt64(std::string_view S, long long &Out);

/// Parses an unsigned 64-bit decimal integer.
bool parseUInt64(std::string_view S, unsigned long long &Out);

} // namespace gprof

#endif // GPROF_SUPPORT_FORMAT_H
