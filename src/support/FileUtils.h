//===- support/FileUtils.h - Whole-file read/write helpers ---------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#ifndef GPROF_SUPPORT_FILEUTILS_H
#define GPROF_SUPPORT_FILEUTILS_H

#include "support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace gprof {

/// Reads the entire file at \p Path as bytes.
Expected<std::vector<uint8_t>> readFileBytes(const std::string &Path);

/// Reads the entire file at \p Path as text.
Expected<std::string> readFileText(const std::string &Path);

/// Writes \p Bytes to \p Path, replacing any existing file.
Error writeFileBytes(const std::string &Path,
                     const std::vector<uint8_t> &Bytes);

/// Writes \p Text to \p Path, replacing any existing file.
Error writeFileText(const std::string &Path, const std::string &Text);

} // namespace gprof

#endif // GPROF_SUPPORT_FILEUTILS_H
