//===- support/FileUtils.h - Whole-file read/write helpers ---------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#ifndef GPROF_SUPPORT_FILEUTILS_H
#define GPROF_SUPPORT_FILEUTILS_H

#include "support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace gprof {

/// Reads the entire file at \p Path as bytes.
Expected<std::vector<uint8_t>> readFileBytes(const std::string &Path);

/// Reads the entire file at \p Path as text.
Expected<std::string> readFileText(const std::string &Path);

/// Writes \p Bytes to \p Path, replacing any existing file.  A failure
/// mid-write can leave a torn file at \p Path; profile artifacts should
/// use writeFileBytesAtomic instead.
Error writeFileBytes(const std::string &Path,
                     const std::vector<uint8_t> &Bytes);

/// Writes \p Text to \p Path, replacing any existing file.
Error writeFileText(const std::string &Path, const std::string &Text);

/// Crash-safe replacement write: writes \p Bytes to "<Path>.tmp", then
/// renames over \p Path.  On any failure the temporary is removed and the
/// previous contents of \p Path survive byte-identical — a reader never
/// observes a torn file (docs/ROBUSTNESS.md).
Error writeFileBytesAtomic(const std::string &Path,
                           const std::vector<uint8_t> &Bytes);

/// True if a regular file exists at \p Path.
bool fileExists(const std::string &Path);

/// Creates \p Path and any missing parents (a no-op if it already exists).
Error createDirectories(const std::string &Path);

/// Entry names (not full paths) in the directory at \p Path, sorted.
/// "." and ".." are omitted.
Expected<std::vector<std::string>> listDirectory(const std::string &Path);

/// Deletes the file at \p Path (a no-op if it does not exist).
Error removeFile(const std::string &Path);

/// Atomically replaces \p To with \p From (same filesystem).
Error renameFile(const std::string &From, const std::string &To);

} // namespace gprof

#endif // GPROF_SUPPORT_FILEUTILS_H
