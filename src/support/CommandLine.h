//===- support/CommandLine.h - Small declarative option parser -----------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line parsing for the tlc/tlrun/gprof/prof tools.  Options are
/// declared up front; parsing reports unknown or malformed options as
/// recoverable errors and collects positional arguments in order.  Both
/// "--name value", "--name=value" and short "-n value" spellings are
/// accepted, and value options may repeat (gprof's -k and -f/-e do).
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_SUPPORT_COMMANDLINE_H
#define GPROF_SUPPORT_COMMANDLINE_H

#include "support/Error.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace gprof {

/// Declares and parses the options of one tool invocation.
class OptionParser {
public:
  /// Creates a parser for a tool named \p ToolName with a one-line
  /// \p Overview used in help text.
  OptionParser(std::string ToolName, std::string Overview);

  /// Declares a boolean flag, e.g. addFlag("brief", 'b', "...").  Pass 0 for
  /// \p Short if there is no short spelling.
  void addFlag(const std::string &Name, char Short, const std::string &Help);

  /// Declares an option taking a value; \p Meta names the value in help
  /// text (e.g. "FILE").  Value options may be given multiple times.
  void addOption(const std::string &Name, char Short, const std::string &Meta,
                 const std::string &Help);

  /// Declares an option whose value is optional: "--name" records an empty
  /// value, "--name=V" records V.  Unlike addOption, a bare spelling never
  /// consumes the next argument (gprof's --stats[=FILE]).  No short
  /// spelling — "-s V" would be ambiguous.
  void addOptionalValueOption(const std::string &Name, const std::string &Meta,
                              const std::string &Help);

  /// Describes the positional arguments in help text, e.g. "image gmon...".
  void setPositionalHelp(const std::string &Help) { PositionalHelp = Help; }

  /// Parses argv[1..argc).  On failure nothing should be queried.
  Error parse(int Argc, const char *const *Argv);

  /// Returns true if the flag \p Name was given.
  bool hasFlag(const std::string &Name) const;

  /// Returns the last value given for \p Name, if any.
  std::optional<std::string> getValue(const std::string &Name) const;

  /// Returns every value given for \p Name, in order.
  std::vector<std::string> getValues(const std::string &Name) const;

  /// Positional (non-option) arguments, in order.
  const std::vector<std::string> &positional() const { return Positional; }

  /// Renders the --help text.
  std::string helpText() const;

private:
  struct OptionSpec {
    std::string Name;
    char Short;
    bool TakesValue;
    std::string Meta;
    std::string Help;
    bool ValueOptional = false; ///< --name alone is legal (empty value).
  };

  const OptionSpec *findLong(const std::string &Name) const;
  const OptionSpec *findShort(char C) const;

  std::string ToolName;
  std::string Overview;
  std::string PositionalHelp;
  std::vector<OptionSpec> Specs;
  std::map<std::string, std::vector<std::string>> Values;
  std::map<std::string, unsigned> FlagCounts;
  std::vector<std::string> Positional;
};

} // namespace gprof

#endif // GPROF_SUPPORT_COMMANDLINE_H
