//===- support/ThreadPool.cpp ---------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include "support/Format.h"
#include "support/Telemetry.h"

using namespace gprof;

ThreadPool::ThreadPool(unsigned NumThreads) {
  if (NumThreads == 0) {
    NumThreads = std::thread::hardware_concurrency();
    if (NumThreads == 0)
      NumThreads = 1;
  }
  telemetry::gauge("threadpool.workers_spawned").add(NumThreads);
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::enqueue(std::function<void()> Job) {
  // Jobs queued and the queue's high-water mark are scheduling facts
  // (they depend on pool width), so they are telemetry *gauges* — see
  // docs/TELEMETRY.md for the counter/gauge split.
  static telemetry::Metric &JobsQueued =
      telemetry::gauge("threadpool.jobs.queued");
  static telemetry::Metric &MaxDepth =
      telemetry::gauge("threadpool.queue.max_depth");
  size_t Depth;
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    Queue.push_back(std::move(Job));
    Depth = Queue.size();
  }
  JobsQueued.add(1);
  MaxDepth.max(Depth);
  WorkAvailable.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  AllIdle.wait(Lock, [this] { return Queue.empty() && ActiveJobs == 0; });
}

void ThreadPool::workerLoop(unsigned WorkerIndex) {
  telemetry::Registry &Reg = telemetry::Registry::instance();
  Reg.setCurrentThreadName(format("worker-%u", WorkerIndex));
  static telemetry::Metric &JobsExecuted =
      telemetry::gauge("threadpool.jobs.executed");
  static telemetry::Metric &BusyNs = telemetry::gauge("threadpool.busy_ns");
  while (true) {
    std::function<void()> Job;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkAvailable.wait(Lock,
                         [this] { return ShuttingDown || !Queue.empty(); });
      // Drain the queue even when shutting down so queued futures always
      // complete.
      if (Queue.empty())
        return;
      Job = std::move(Queue.front());
      Queue.pop_front();
      ++ActiveJobs;
    }
    // When spans are on, each job gets a "pool.job" span on this worker's
    // track and its wall time feeds the busy-time gauge; when off, the
    // cost is one relaxed load plus one relaxed add per job.
    if (Reg.spansEnabled()) {
      uint64_t Begin = Reg.nowNs();
      Job();
      uint64_t End = Reg.nowNs();
      Reg.recordSpan("pool.job", Begin, End);
      BusyNs.add(End - Begin);
    } else {
      Job();
    }
    JobsExecuted.add(1);
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      --ActiveJobs;
      if (Queue.empty() && ActiveJobs == 0)
        AllIdle.notify_all();
    }
  }
}
