//===- support/ThreadPool.cpp ---------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

using namespace gprof;

ThreadPool::ThreadPool(unsigned NumThreads) {
  if (NumThreads == 0) {
    NumThreads = std::thread::hardware_concurrency();
    if (NumThreads == 0)
      NumThreads = 1;
  }
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::enqueue(std::function<void()> Job) {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    Queue.push_back(std::move(Job));
  }
  WorkAvailable.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  AllIdle.wait(Lock, [this] { return Queue.empty() && ActiveJobs == 0; });
}

void ThreadPool::workerLoop() {
  while (true) {
    std::function<void()> Job;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkAvailable.wait(Lock,
                         [this] { return ShuttingDown || !Queue.empty(); });
      // Drain the queue even when shutting down so queued futures always
      // complete.
      if (Queue.empty())
        return;
      Job = std::move(Queue.front());
      Queue.pop_front();
      ++ActiveJobs;
    }
    Job();
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      --ActiveJobs;
      if (Queue.empty() && ActiveJobs == 0)
        AllIdle.notify_all();
    }
  }
}
