//===- support/Telemetry.cpp - Profile the profiler ------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "support/Telemetry.h"

#include "support/Format.h"

#include <algorithm>
#include <chrono>

namespace gprof {
namespace telemetry {

Registry::Registry() {
  EpochNs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Registry &Registry::instance() {
  // Leaked singleton: worker threads (e.g. a ThreadPool being destroyed
  // during static teardown) may still record into it, so it must outlive
  // every static destructor.
  static Registry *R = new Registry();
  return *R;
}

Metric &Registry::metric(const std::string &Name, Kind K) {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (auto &M : Metrics)
    if (M->Name == Name)
      return *M;
  Metrics.emplace_back(new Metric(Name, K));
  return *Metrics.back();
}

std::vector<const Metric *> Registry::metrics() const {
  std::vector<const Metric *> Out;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Out.reserve(Metrics.size());
    for (const auto &M : Metrics)
      Out.push_back(M.get());
  }
  std::sort(Out.begin(), Out.end(), [](const Metric *A, const Metric *B) {
    return A->name() < B->name();
  });
  return Out;
}

void Registry::resetValues() {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (auto &M : Metrics)
    M->Value.store(0, std::memory_order_relaxed);
  for (auto &T : Threads) {
    std::lock_guard<std::mutex> TLock(T->Mutex);
    T->Spans.clear();
  }
}

uint64_t Registry::nowNs() const {
  uint64_t Now = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return Now - EpochNs;
}

Registry::ThreadBuffer &Registry::threadBuffer() {
  // One buffer per OS thread, created on first use and owned by the
  // registry (it must outlive the thread: spans recorded by a pool worker
  // are collected by the main thread after the pool is joined).
  thread_local ThreadBuffer *Buf = nullptr;
  if (!Buf) {
    std::lock_guard<std::mutex> Lock(Mutex);
    Threads.emplace_back(new ThreadBuffer());
    Buf = Threads.back().get();
    Buf->Tid = static_cast<uint32_t>(Threads.size() - 1);
  }
  return *Buf;
}

void Registry::recordSpan(const char *Name, uint64_t BeginNs,
                          uint64_t EndNs) {
  ThreadBuffer &Buf = threadBuffer();
  std::lock_guard<std::mutex> Lock(Buf.Mutex);
  Buf.Spans.push_back(SpanRecord{Name, Buf.Tid, BeginNs, EndNs});
}

uint32_t Registry::currentThreadId() { return threadBuffer().Tid; }

void Registry::setCurrentThreadName(const std::string &Name) {
  ThreadBuffer &Buf = threadBuffer();
  std::lock_guard<std::mutex> Lock(Buf.Mutex);
  Buf.Name = Name;
}

std::vector<SpanRecord> Registry::collectSpans() const {
  std::vector<SpanRecord> Out;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (const auto &T : Threads) {
      std::lock_guard<std::mutex> TLock(T->Mutex);
      Out.insert(Out.end(), T->Spans.begin(), T->Spans.end());
    }
  }
  std::sort(Out.begin(), Out.end(),
            [](const SpanRecord &A, const SpanRecord &B) {
              if (A.Tid != B.Tid)
                return A.Tid < B.Tid;
              if (A.BeginNs != B.BeginNs)
                return A.BeginNs < B.BeginNs;
              return A.Name < B.Name;
            });
  return Out;
}

std::vector<std::pair<uint32_t, std::string>> Registry::threadNames() const {
  std::vector<std::pair<uint32_t, std::string>> Out;
  std::lock_guard<std::mutex> Lock(Mutex);
  for (const auto &T : Threads) {
    std::lock_guard<std::mutex> TLock(T->Mutex);
    Out.emplace_back(T->Tid, T->Name.empty()
                                 ? format("thread-%u", T->Tid)
                                 : T->Name);
  }
  return Out;
}

static void appendJsonString(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += format("\\u%04x", static_cast<unsigned>(C));
      else
        Out += C;
    }
  }
  Out += '"';
}

std::string Registry::renderStatsJson(const std::string &Name) const {
  std::vector<const Metric *> Sorted = metrics();
  size_t NumSpans = collectSpans().size();

  std::string Out = "{\n  \"bench\": ";
  appendJsonString(Out, Name);
  Out += format(",\n  \"metrics\": %zu,\n  \"spans\": %zu,\n  \"results\": [",
                Sorted.size(), NumSpans);
  bool First = true;
  for (const Metric *M : Sorted) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    {\"metric\": ";
    appendJsonString(Out, M->name());
    Out += format(", \"kind\": \"%s\", \"value\": %llu}",
                  M->kind() == Kind::Counter ? "counter" : "gauge",
                  static_cast<unsigned long long>(M->value()));
  }
  Out += "\n  ]\n}\n";
  return Out;
}

} // namespace telemetry
} // namespace gprof
