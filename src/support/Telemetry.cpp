//===- support/Telemetry.cpp - Profile the profiler ------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "support/Telemetry.h"

#include "support/CommandLine.h"
#include "support/FileUtils.h"
#include "support/Format.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

namespace gprof {
namespace telemetry {

Registry::Registry() {
  EpochNs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Registry &Registry::instance() {
  // Leaked singleton: worker threads (e.g. a ThreadPool being destroyed
  // during static teardown) may still record into it, so it must outlive
  // every static destructor.
  static Registry *R = new Registry();
  return *R;
}

Metric &Registry::metric(const std::string &Name, Kind K) {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (auto &M : Metrics)
    if (M->Name == Name)
      return *M;
  Metrics.emplace_back(new Metric(Name, K));
  return *Metrics.back();
}

uint64_t HistogramSnapshot::percentile(double Q) const {
  uint64_t Total = count();
  if (Total == 0)
    return 0;
  // The rank is 1-based: p50 of 4 samples is the 2nd in sorted order.
  uint64_t Rank = static_cast<uint64_t>(std::ceil(Q * double(Total)));
  if (Rank < 1)
    Rank = 1;
  if (Rank > Total)
    Rank = Total;
  uint64_t Cumulative = 0;
  for (size_t B = 0; B < HistogramBucketCount; ++B) {
    Cumulative += Counts[B];
    if (Cumulative >= Rank)
      return DurationHistogram::bucketUpperBound(B);
  }
  return DurationHistogram::bucketUpperBound(HistogramBucketCount - 1);
}

DurationHistogram &Registry::histogram(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (auto &H : Histograms)
    if (H->Name == Name)
      return *H;
  Histograms.emplace_back(new DurationHistogram(Name));
  return *Histograms.back();
}

std::vector<const DurationHistogram *> Registry::histograms() const {
  std::vector<const DurationHistogram *> Out;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Out.reserve(Histograms.size());
    for (const auto &H : Histograms)
      Out.push_back(H.get());
  }
  std::sort(Out.begin(), Out.end(),
            [](const DurationHistogram *A, const DurationHistogram *B) {
              return A->name() < B->name();
            });
  return Out;
}

std::vector<const Metric *> Registry::metrics() const {
  std::vector<const Metric *> Out;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Out.reserve(Metrics.size());
    for (const auto &M : Metrics)
      Out.push_back(M.get());
  }
  std::sort(Out.begin(), Out.end(), [](const Metric *A, const Metric *B) {
    return A->name() < B->name();
  });
  return Out;
}

void Registry::resetValues() {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (auto &M : Metrics)
    M->Value.store(0, std::memory_order_relaxed);
  for (auto &H : Histograms) {
    for (auto &B : H->Buckets)
      B.store(0, std::memory_order_relaxed);
    H->Sum.store(0, std::memory_order_relaxed);
  }
  for (auto &T : Threads) {
    std::lock_guard<std::mutex> TLock(T->Mutex);
    T->Spans.clear();
  }
}

uint64_t Registry::nowNs() const {
  uint64_t Now = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return Now - EpochNs;
}

Registry::ThreadBuffer &Registry::threadBuffer() {
  // One buffer per OS thread, created on first use and owned by the
  // registry (it must outlive the thread: spans recorded by a pool worker
  // are collected by the main thread after the pool is joined).
  thread_local ThreadBuffer *Buf = nullptr;
  if (!Buf) {
    std::lock_guard<std::mutex> Lock(Mutex);
    Threads.emplace_back(new ThreadBuffer());
    Buf = Threads.back().get();
    Buf->Tid = static_cast<uint32_t>(Threads.size() - 1);
  }
  return *Buf;
}

// The request id the serving thread is currently working under.  Plain
// thread-local (not in the registry) so reading it is a single TLS load.
static thread_local uint64_t CurrentReqId = 0;

uint64_t Registry::currentRequestId() { return CurrentReqId; }

void Registry::setCurrentRequestId(uint64_t Id) { CurrentReqId = Id; }

void Registry::recordSpan(const char *Name, uint64_t BeginNs,
                          uint64_t EndNs) {
  recordSpan(Name, BeginNs, EndNs, CurrentReqId);
}

void Registry::recordSpan(const char *Name, uint64_t BeginNs, uint64_t EndNs,
                          uint64_t ReqId) {
  ThreadBuffer &Buf = threadBuffer();
  std::lock_guard<std::mutex> Lock(Buf.Mutex);
  Buf.Spans.push_back(SpanRecord{Name, Buf.Tid, BeginNs, EndNs, ReqId});
}

uint32_t Registry::currentThreadId() { return threadBuffer().Tid; }

void Registry::setCurrentThreadName(const std::string &Name) {
  ThreadBuffer &Buf = threadBuffer();
  std::lock_guard<std::mutex> Lock(Buf.Mutex);
  Buf.Name = Name;
}

std::vector<SpanRecord> Registry::collectSpans() const {
  std::vector<SpanRecord> Out;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (const auto &T : Threads) {
      std::lock_guard<std::mutex> TLock(T->Mutex);
      Out.insert(Out.end(), T->Spans.begin(), T->Spans.end());
    }
  }
  std::sort(Out.begin(), Out.end(),
            [](const SpanRecord &A, const SpanRecord &B) {
              if (A.Tid != B.Tid)
                return A.Tid < B.Tid;
              if (A.BeginNs != B.BeginNs)
                return A.BeginNs < B.BeginNs;
              return A.Name < B.Name;
            });
  return Out;
}

std::vector<std::pair<uint32_t, std::string>> Registry::threadNames() const {
  std::vector<std::pair<uint32_t, std::string>> Out;
  std::lock_guard<std::mutex> Lock(Mutex);
  for (const auto &T : Threads) {
    std::lock_guard<std::mutex> TLock(T->Mutex);
    Out.emplace_back(T->Tid, T->Name.empty()
                                 ? format("thread-%u", T->Tid)
                                 : T->Name);
  }
  return Out;
}

void appendJsonString(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += format("\\u%04x", static_cast<unsigned>(C));
      else
        Out += C;
    }
  }
  Out += '"';
}

static bool hasPrefix(const std::string &Name, const std::string &Prefix) {
  return Prefix.empty() || Name.rfind(Prefix, 0) == 0;
}

std::string Registry::renderStatsJson(const std::string &Name,
                                      const StatsRenderOptions &Opts) const {
  std::vector<const Metric *> Sorted = metrics();
  std::vector<const DurationHistogram *> Histos = histograms();
  size_t NumSpans = collectSpans().size();
  if (!Opts.MetricPrefix.empty()) {
    std::erase_if(Sorted, [&](const Metric *M) {
      return !hasPrefix(M->name(), Opts.MetricPrefix);
    });
    std::erase_if(Histos, [&](const DurationHistogram *H) {
      return !hasPrefix(H->name(), Opts.MetricPrefix);
    });
  }

  std::string Out = "{\n  \"bench\": ";
  appendJsonString(Out, Name);
  Out += format(",\n  \"metrics\": %zu,\n  \"spans\": %zu,\n"
                "  \"histograms\": %zu,",
                Sorted.size(), NumSpans, Histos.size());
  for (const auto &[Key, RawValue] : Opts.ExtraFields) {
    Out += "\n  ";
    appendJsonString(Out, Key);
    Out += ": " + RawValue + ",";
  }
  Out += "\n  \"results\": [";
  bool First = true;
  for (const Metric *M : Sorted) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += "    {\"metric\": ";
    appendJsonString(Out, M->name());
    Out += format(", \"kind\": \"%s\", \"value\": %llu}",
                  M->kind() == Kind::Counter ? "counter" : "gauge",
                  static_cast<unsigned long long>(M->value()));
  }
  for (const DurationHistogram *H : Histos) {
    Out += First ? "\n" : ",\n";
    First = false;
    HistogramSnapshot S = H->snapshot();
    Out += "    {\"metric\": ";
    appendJsonString(Out, H->name());
    Out += format(", \"kind\": \"histogram\", \"count\": %llu, "
                  "\"sum\": %llu, \"p50\": %llu, \"p95\": %llu, "
                  "\"p99\": %llu}",
                  static_cast<unsigned long long>(S.count()),
                  static_cast<unsigned long long>(S.Sum),
                  static_cast<unsigned long long>(S.percentile(0.50)),
                  static_cast<unsigned long long>(S.percentile(0.95)),
                  static_cast<unsigned long long>(S.percentile(0.99)));
  }
  Out += "\n  ]\n}\n";
  return Out;
}

void addStatsOption(OptionParser &Opts) {
  Opts.addOptionalValueOption(
      "stats", "FILE",
      "write telemetry (flat stats JSON) to FILE, or to stderr when no "
      "FILE is given");
}

Error emitStatsIfRequested(const OptionParser &Opts,
                           const std::string &BenchName) {
  std::optional<std::string> Dest = Opts.getValue("stats");
  if (!Dest)
    return Error::success();
  std::string Json = Registry::instance().renderStatsJson(BenchName);
  if (Dest->empty() || *Dest == "-") {
    std::fputs(Json.c_str(), stderr);
    return Error::success();
  }
  return writeFileText(*Dest, Json);
}

} // namespace telemetry
} // namespace gprof
