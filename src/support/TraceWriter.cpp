//===- support/TraceWriter.cpp - Chrome trace-event JSON export ------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "support/TraceWriter.h"

#include "support/FileUtils.h"
#include "support/Format.h"
#include "support/Telemetry.h"

namespace gprof {

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

static std::string jsonQuote(const std::string &S) {
  std::string Out = "\"";
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += format("\\u%04x", static_cast<unsigned>(C));
      else
        Out += C;
    }
  }
  return Out + "\"";
}

/// Nanoseconds -> the format's microseconds, keeping ns precision.
static std::string microseconds(uint64_t Ns) {
  return format("%llu.%03u", static_cast<unsigned long long>(Ns / 1000),
                static_cast<unsigned>(Ns % 1000));
}

void TraceWriter::addThreadName(uint32_t Tid, const std::string &Name) {
  Events.push_back(
      {format("{\"ph\":\"M\",\"pid\":1,\"tid\":%u,\"name\":\"thread_name\","
              "\"args\":{\"name\":%s}}",
              Tid, jsonQuote(Name).c_str())});
}

void TraceWriter::addCompleteEvent(const std::string &Name,
                                   const std::string &Category, uint32_t Tid,
                                   uint64_t BeginNs, uint64_t DurNs) {
  Events.push_back(
      {format("{\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"name\":%s,\"cat\":%s,"
              "\"ts\":%s,\"dur\":%s}",
              Tid, jsonQuote(Name).c_str(), jsonQuote(Category).c_str(),
              microseconds(BeginNs).c_str(), microseconds(DurNs).c_str())});
}

std::string TraceWriter::render() const {
  std::string Out = "{\"traceEvents\":[";
  bool First = true;
  if (!ProcessName.empty()) {
    Out += format("\n{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":"
                  "\"process_name\",\"args\":{\"name\":%s}}",
                  jsonQuote(ProcessName).c_str());
    First = false;
  }
  for (const Event &E : Events) {
    Out += First ? "\n" : ",\n";
    First = false;
    Out += E.Json;
  }
  Out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return Out;
}

Error TraceWriter::writeFile(const std::string &Path) const {
  return writeFileText(Path, render());
}

TraceWriter TraceWriter::fromTelemetry(const std::string &ProcessName) {
  using telemetry::Registry;
  TraceWriter W;
  W.setProcessName(ProcessName);
  Registry &R = Registry::instance();
  std::vector<telemetry::SpanRecord> Spans = R.collectSpans();
  for (const auto &[Tid, Name] : R.threadNames())
    W.addThreadName(Tid, Name);
  // Spans tagged with a daemon request id land on a synthetic per-request
  // track instead of their OS thread's, so one request's client span,
  // serve.request span and everything the handler did line up on a single
  // named row regardless of which worker served it.
  std::set<uint64_t> ReqIds;
  for (const telemetry::SpanRecord &S : Spans)
    if (S.ReqId != 0)
      ReqIds.insert(S.ReqId);
  for (uint64_t Id : ReqIds)
    W.addThreadName(requestTrackTid(Id),
                    format("request-%llu",
                           static_cast<unsigned long long>(Id)));
  for (const telemetry::SpanRecord &S : Spans) {
    size_t Dot = S.Name.find('.');
    std::string Cat = Dot == std::string::npos ? S.Name : S.Name.substr(0, Dot);
    uint32_t Tid = S.ReqId != 0 ? requestTrackTid(S.ReqId) : S.Tid;
    W.addCompleteEvent(S.Name, Cat, Tid, S.BeginNs,
                       S.EndNs >= S.BeginNs ? S.EndNs - S.BeginNs : 0);
  }
  return W;
}

//===----------------------------------------------------------------------===//
// Validator
//===----------------------------------------------------------------------===//

namespace {

/// Minimal recursive-descent JSON parser.  It does not build a document
/// tree; it validates syntax and invokes a couple of shape callbacks the
/// trace checker needs.  Nesting depth is bounded to keep the recursion
/// safe on hostile input.
class JsonParser {
public:
  explicit JsonParser(const std::string &Text) : Text(Text) {}

  /// Parses one complete document; fails on trailing garbage.
  Error parseDocument() {
    skipWs();
    if (Error E = parseValue(0))
      return E;
    skipWs();
    if (Pos != Text.size())
      return fail("trailing garbage after JSON value");
    return Error::success();
  }

  size_t consumed() const { return Pos; }

private:
  Error fail(const std::string &Why) const {
    return Error::failure(
        format("invalid JSON at byte %zu: %s", Pos, Why.c_str()));
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool eat(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  Error parseValue(unsigned Depth) {
    if (Depth > 64)
      return fail("nesting too deep");
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    if (C == '{')
      return parseObject(Depth);
    if (C == '[')
      return parseArray(Depth);
    if (C == '"') {
      std::string Ignored;
      return parseString(Ignored);
    }
    if (C == '-' || (C >= '0' && C <= '9'))
      return parseNumber();
    if (Text.compare(Pos, 4, "true") == 0) {
      Pos += 4;
      return Error::success();
    }
    if (Text.compare(Pos, 5, "false") == 0) {
      Pos += 5;
      return Error::success();
    }
    if (Text.compare(Pos, 4, "null") == 0) {
      Pos += 4;
      return Error::success();
    }
    return fail(format("unexpected character '%c'", C));
  }

  Error parseObject(unsigned Depth) {
    eat('{');
    skipWs();
    if (eat('}'))
      return Error::success();
    while (true) {
      skipWs();
      std::string Key;
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("expected object key string");
      if (Error E = parseString(Key))
        return E;
      skipWs();
      if (!eat(':'))
        return fail("expected ':' after object key");
      skipWs();
      if (Error E = parseValue(Depth + 1))
        return E;
      skipWs();
      if (eat('}'))
        return Error::success();
      if (!eat(','))
        return fail("expected ',' or '}' in object");
    }
  }

  Error parseArray(unsigned Depth) {
    eat('[');
    skipWs();
    if (eat(']'))
      return Error::success();
    while (true) {
      skipWs();
      if (Error E = parseValue(Depth + 1))
        return E;
      skipWs();
      if (eat(']'))
        return Error::success();
      if (!eat(','))
        return fail("expected ',' or ']' in array");
    }
  }

  Error parseString(std::string &Out) {
    eat('"');
    while (true) {
      if (Pos >= Text.size())
        return fail("unterminated string");
      char C = Text[Pos++];
      if (C == '"')
        return Error::success();
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("raw control character in string");
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        return fail("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned V = 0;
        for (int I = 0; I != 4; ++I) {
          char H = Text[Pos++];
          V <<= 4;
          if (H >= '0' && H <= '9')
            V |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            V |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            V |= static_cast<unsigned>(H - 'A' + 10);
          else
            return fail("bad hex digit in \\u escape");
        }
        // The validator only needs well-formedness; fold non-ASCII code
        // points to '?' rather than implementing UTF-8 encoding.
        Out += V < 0x80 ? static_cast<char>(V) : '?';
        break;
      }
      default:
        return fail(format("bad escape '\\%c'", E));
      }
    }
  }

  Error parseNumber() {
    size_t Start = Pos;
    eat('-');
    if (Pos >= Text.size() || Text[Pos] < '0' || Text[Pos] > '9')
      return fail("malformed number");
    if (Text[Pos] == '0')
      ++Pos;
    else
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    if (Pos < Text.size() && Text[Pos] == '.') {
      ++Pos;
      if (Pos >= Text.size() || Text[Pos] < '0' || Text[Pos] > '9')
        return fail("malformed number fraction");
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (Pos >= Text.size() || Text[Pos] < '0' || Text[Pos] > '9')
        return fail("malformed number exponent");
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    (void)Start;
    return Error::success();
  }

  const std::string &Text;
  size_t Pos = 0;
};

} // namespace

Expected<size_t> validateJson(const std::string &Json) {
  JsonParser P(Json);
  if (Error E = P.parseDocument())
    return E;
  return P.consumed();
}

Expected<TraceStats> validateTraceJson(const std::string &Json) {
  if (Expected<size_t> Ok = validateJson(Json); !Ok)
    return Ok.takeError();

  // The document is syntactically valid; a focused second scan locates
  // "traceEvents" and splits its elements.  The syntax pass above
  // guarantees these steps cannot run off the rails.
  size_t Key = Json.find("\"traceEvents\"");
  if (Key == std::string::npos)
    return Error::failure("trace JSON has no \"traceEvents\" member");
  size_t Open = Json.find('[', Key);
  if (Open == std::string::npos)
    return Error::failure("\"traceEvents\" is not an array");

  TraceStats Stats;
  size_t Pos = Open + 1;
  while (true) {
    while (Pos < Json.size() &&
           (Json[Pos] == ' ' || Json[Pos] == '\t' || Json[Pos] == '\n' ||
            Json[Pos] == '\r' || Json[Pos] == ','))
      ++Pos;
    if (Pos >= Json.size())
      return Error::failure("unterminated \"traceEvents\" array");
    if (Json[Pos] == ']')
      break;
    if (Json[Pos] != '{')
      return Error::failure("\"traceEvents\" element is not an object");

    // Scan one balanced object, tracking strings so braces inside string
    // values do not miscount.
    size_t Start = Pos;
    int Depth = 0;
    bool InString = false;
    for (; Pos < Json.size(); ++Pos) {
      char C = Json[Pos];
      if (InString) {
        if (C == '\\')
          ++Pos;
        else if (C == '"')
          InString = false;
        continue;
      }
      if (C == '"')
        InString = true;
      else if (C == '{')
        ++Depth;
      else if (C == '}' && --Depth == 0) {
        ++Pos;
        break;
      }
    }
    std::string Obj = Json.substr(Start, Pos - Start);

    auto stringMember = [&Obj](const char *Name) -> std::string {
      std::string Needle = std::string("\"") + Name + "\"";
      size_t K = Obj.find(Needle);
      if (K == std::string::npos)
        return std::string();
      size_t Colon = Obj.find(':', K + Needle.size());
      if (Colon == std::string::npos)
        return std::string();
      size_t Q = Obj.find('"', Colon);
      if (Q == std::string::npos)
        return std::string();
      size_t End = Q + 1;
      while (End < Obj.size() && Obj[End] != '"') {
        if (Obj[End] == '\\')
          ++End;
        ++End;
      }
      return Obj.substr(Q + 1, End - Q - 1);
    };

    std::string Ph = stringMember("ph");
    std::string Name = stringMember("name");
    if (Ph.empty())
      return Error::failure("trace event missing string \"ph\"");
    if (Name.empty())
      return Error::failure("trace event missing string \"name\"");
    ++Stats.Events;
    if (Ph == "X")
      ++Stats.CompleteEvents;
    else if (Ph == "M")
      ++Stats.MetaEvents;
    ++Stats.NameCounts[Name];

    size_t TidKey = Obj.find("\"tid\"");
    if (TidKey != std::string::npos) {
      size_t Colon = Obj.find(':', TidKey);
      if (Colon != std::string::npos) {
        uint64_t Tid = 0;
        size_t D = Colon + 1;
        while (D < Obj.size() && (Obj[D] == ' '))
          ++D;
        bool Any = false;
        while (D < Obj.size() && Obj[D] >= '0' && Obj[D] <= '9') {
          Tid = Tid * 10 + static_cast<uint64_t>(Obj[D] - '0');
          ++D;
          Any = true;
        }
        if (Any)
          Stats.Tids.insert(Tid);
      }
    }
  }
  return Stats;
}

} // namespace gprof
