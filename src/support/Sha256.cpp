//===- support/Sha256.cpp -------------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "support/Sha256.h"

#include <cstring>

using namespace gprof;

namespace {

constexpr std::array<uint32_t, 64> K = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline uint32_t rotr(uint32_t X, unsigned N) {
  return (X >> N) | (X << (32 - N));
}

} // namespace

Sha256::Sha256()
    : State{0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f,
            0x9b05688c, 0x1f83d9ab, 0x5be0cd19} {}

void Sha256::compress(const uint8_t *Block) {
  uint32_t W[64];
  for (unsigned I = 0; I != 16; ++I)
    W[I] = static_cast<uint32_t>(Block[4 * I]) << 24 |
           static_cast<uint32_t>(Block[4 * I + 1]) << 16 |
           static_cast<uint32_t>(Block[4 * I + 2]) << 8 |
           static_cast<uint32_t>(Block[4 * I + 3]);
  for (unsigned I = 16; I != 64; ++I) {
    uint32_t S0 = rotr(W[I - 15], 7) ^ rotr(W[I - 15], 18) ^ (W[I - 15] >> 3);
    uint32_t S1 = rotr(W[I - 2], 17) ^ rotr(W[I - 2], 19) ^ (W[I - 2] >> 10);
    W[I] = W[I - 16] + S0 + W[I - 7] + S1;
  }

  uint32_t A = State[0], B = State[1], C = State[2], D = State[3];
  uint32_t E = State[4], F = State[5], G = State[6], H = State[7];
  for (unsigned I = 0; I != 64; ++I) {
    uint32_t S1 = rotr(E, 6) ^ rotr(E, 11) ^ rotr(E, 25);
    uint32_t Ch = (E & F) ^ (~E & G);
    uint32_t T1 = H + S1 + Ch + K[I] + W[I];
    uint32_t S0 = rotr(A, 2) ^ rotr(A, 13) ^ rotr(A, 22);
    uint32_t Maj = (A & B) ^ (A & C) ^ (B & C);
    uint32_t T2 = S0 + Maj;
    H = G;
    G = F;
    F = E;
    E = D + T1;
    D = C;
    C = B;
    B = A;
    A = T1 + T2;
  }
  State[0] += A;
  State[1] += B;
  State[2] += C;
  State[3] += D;
  State[4] += E;
  State[5] += F;
  State[6] += G;
  State[7] += H;
}

void Sha256::update(const uint8_t *Data, size_t Size) {
  TotalBytes += Size;
  // Top up a partially filled block first.
  if (BufferLen != 0) {
    size_t Take = std::min(Size, Buffer.size() - BufferLen);
    std::memcpy(Buffer.data() + BufferLen, Data, Take);
    BufferLen += Take;
    Data += Take;
    Size -= Take;
    if (BufferLen == Buffer.size()) {
      compress(Buffer.data());
      BufferLen = 0;
    }
  }
  while (Size >= Buffer.size()) {
    compress(Data);
    Data += Buffer.size();
    Size -= Buffer.size();
  }
  if (Size != 0) {
    std::memcpy(Buffer.data(), Data, Size);
    BufferLen = Size;
  }
}

Sha256Digest Sha256::finish() {
  uint64_t BitLen = TotalBytes * 8;
  uint8_t Pad = 0x80;
  update(&Pad, 1);
  uint8_t Zero = 0;
  while (BufferLen != 56)
    update(&Zero, 1);
  uint8_t Len[8];
  for (unsigned I = 0; I != 8; ++I)
    Len[I] = static_cast<uint8_t>(BitLen >> (56 - 8 * I));
  // The length bytes complete the final block; TotalBytes is now stale but
  // never read again.
  update(Len, 8);

  Sha256Digest D;
  for (unsigned I = 0; I != 8; ++I) {
    D[4 * I] = static_cast<uint8_t>(State[I] >> 24);
    D[4 * I + 1] = static_cast<uint8_t>(State[I] >> 16);
    D[4 * I + 2] = static_cast<uint8_t>(State[I] >> 8);
    D[4 * I + 3] = static_cast<uint8_t>(State[I]);
  }
  return D;
}

Sha256Digest Sha256::hash(const uint8_t *Data, size_t Size) {
  Sha256 H;
  H.update(Data, Size);
  return H.finish();
}

std::string gprof::digestToHex(const Sha256Digest &D) {
  static const char Hex[] = "0123456789abcdef";
  std::string S;
  S.reserve(64);
  for (uint8_t B : D) {
    S.push_back(Hex[B >> 4]);
    S.push_back(Hex[B & 0xF]);
  }
  return S;
}

std::optional<Sha256Digest> gprof::digestFromHex(std::string_view Hex) {
  if (Hex.size() != 64)
    return std::nullopt;
  Sha256Digest D;
  for (size_t I = 0; I != 32; ++I) {
    unsigned V = 0;
    for (size_t J = 0; J != 2; ++J) {
      char C = Hex[2 * I + J];
      V <<= 4;
      if (C >= '0' && C <= '9')
        V |= static_cast<unsigned>(C - '0');
      else if (C >= 'a' && C <= 'f')
        V |= static_cast<unsigned>(C - 'a' + 10);
      else if (C >= 'A' && C <= 'F')
        V |= static_cast<unsigned>(C - 'A' + 10);
      else
        return std::nullopt;
    }
    D[I] = static_cast<uint8_t>(V);
  }
  return D;
}
