//===- support/Telemetry.h - Profile the profiler --------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability substrate for the profiler's own pipeline: a
/// process-wide registry of named monotonic counters and gauges, plus RAII
/// phase spans recorded on per-thread buffers.  The paper's §3 obsesses
/// over what the monitor costs the monitored program; this layer turns the
/// same lens on the profiler itself — mcount hash behaviour, analyzer
/// phase times, thread-pool utilization, store cache traffic — without
/// ad-hoc printf.
///
/// Two metric kinds with different guarantees (docs/TELEMETRY.md):
///
///  - **Counters** are exact and data-derived: for a given input their
///    values are identical at any thread count, because every increment is
///    computed from the data (arc counts, histogram ticks, cycle counts),
///    never from scheduling.  The determinism tests pin this.
///  - **Gauges** record scheduling and environment facts — jobs queued,
///    queue depths, worker busy time, cache hits against mutable on-disk
///    state — and carry no cross-thread-count guarantee.
///
/// The hottest instrumented path — mcount's per-record stats — does not
/// even pay the relaxed atomics: each profiled thread bumps plain
/// counters in its own ArcTableStats block (one recorder per thread,
/// docs/RUNTIME_MT.md), and Monitor::publishTelemetry() folds the
/// per-thread blocks field-wise into the registry's `runtime.*` counters
/// at snapshot time.  The fold is a commutative sum, so the published
/// totals keep the counter determinism guarantee at every thread count.
///
/// Spans carry wall-clock timestamps and are likewise excluded from
/// determinism guarantees.  They are gated by a runtime flag checked once
/// per scope, so a disabled span costs one relaxed atomic load; metric
/// updates are relaxed atomics.  Enable spans, run the workload, then
/// serialize with TraceWriter (Chrome trace JSON) or renderStatsJson (the
/// flat BenchJson shape the perf tooling scrapes).
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_SUPPORT_TELEMETRY_H
#define GPROF_SUPPORT_TELEMETRY_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gprof {
namespace telemetry {

/// What a metric's value means across runs (see file comment).
enum class Kind { Counter, Gauge };

/// One named process-wide metric.  Metrics are created by the Registry,
/// never destroyed, and updated with relaxed atomics — a reference
/// obtained once (e.g. a function-local static) stays valid for the
/// process lifetime, including across Registry::resetValues().
class Metric {
public:
  void add(uint64_t Delta) {
    Value.fetch_add(Delta, std::memory_order_relaxed);
  }
  void set(uint64_t V) { Value.store(V, std::memory_order_relaxed); }
  /// Raises the value to \p V if it is larger (queue high-water marks).
  void max(uint64_t V) {
    uint64_t Cur = Value.load(std::memory_order_relaxed);
    while (Cur < V &&
           !Value.compare_exchange_weak(Cur, V, std::memory_order_relaxed))
      ;
  }
  uint64_t value() const { return Value.load(std::memory_order_relaxed); }
  const std::string &name() const { return Name; }
  Kind kind() const { return MetricKind; }

private:
  friend class Registry;
  Metric(std::string Name, Kind K) : Name(std::move(Name)), MetricKind(K) {}
  Metric(const Metric &) = delete;

  std::string Name;
  Kind MetricKind;
  std::atomic<uint64_t> Value{0};
};

/// One recorded phase span, as returned by Registry::collectSpans().
struct SpanRecord {
  std::string Name;
  uint32_t Tid = 0;     ///< Telemetry thread id (see threadNames()).
  uint64_t BeginNs = 0; ///< Monotonic ns since registry creation.
  uint64_t EndNs = 0;
};

/// The process-wide telemetry registry.
class Registry {
public:
  /// The singleton.  Never destroyed, so worker threads may record
  /// during shutdown.
  static Registry &instance();

  /// Finds or creates the counter / gauge named \p Name.  A name keeps
  /// the kind it was first registered with.
  Metric &counter(const std::string &Name) {
    return metric(Name, Kind::Counter);
  }
  Metric &gauge(const std::string &Name) { return metric(Name, Kind::Gauge); }

  /// Every registered metric, sorted by name (deterministic output
  /// order).  Pointers stay valid forever.
  std::vector<const Metric *> metrics() const;

  /// Zeroes every metric value and drops every recorded span.  Metric
  /// and thread registrations (and outstanding references) survive.
  void resetValues();

  //--- Phase spans --------------------------------------------------------

  /// Turns span recording on or off.  Spans check this once per scope.
  void enableSpans(bool On) {
    SpansOn.store(On, std::memory_order_relaxed);
  }
  bool spansEnabled() const {
    return SpansOn.load(std::memory_order_relaxed);
  }

  /// Monotonic nanoseconds since the registry was created.
  uint64_t nowNs() const;

  /// Appends one finished span to the calling thread's buffer.
  void recordSpan(const char *Name, uint64_t BeginNs, uint64_t EndNs);

  /// The calling thread's telemetry id (assigned on first use).
  uint32_t currentThreadId();

  /// Names the calling thread in trace output ("main", "worker-3", ...).
  void setCurrentThreadName(const std::string &Name);

  /// Snapshot of every span recorded so far, sorted by (tid, begin).
  std::vector<SpanRecord> collectSpans() const;

  /// (tid, name) for every registered thread, in tid order.  Threads
  /// that never set a name appear as "thread-<tid>".
  std::vector<std::pair<uint32_t, std::string>> threadNames() const;

  //--- Serialization ------------------------------------------------------

  /// Flat stats JSON in the BenchJson shape (bench/BenchUtil.h): a
  /// top-level "bench" name, scalar fields, and one "results" array with
  /// a row per metric: {"metric": ..., "kind": "counter"|"gauge",
  /// "value": N}.  Rows are sorted by metric name.
  std::string renderStatsJson(const std::string &Name) const;

private:
  struct ThreadBuffer {
    uint32_t Tid = 0;
    std::string Name;
    mutable std::mutex Mutex;
    std::vector<SpanRecord> Spans;
  };

  Registry();
  Metric &metric(const std::string &Name, Kind K);
  ThreadBuffer &threadBuffer();

  mutable std::mutex Mutex;
  std::vector<std::unique_ptr<Metric>> Metrics;   ///< Guarded by Mutex.
  std::vector<std::unique_ptr<ThreadBuffer>> Threads; ///< Guarded by Mutex.
  std::atomic<bool> SpansOn{false};
  uint64_t EpochNs = 0;
};

/// RAII phase span: records [construction, destruction) on the calling
/// thread's buffer when spans are enabled.  The enabled flag is checked
/// once, at construction; a disabled span is one relaxed load.
class Span {
public:
  explicit Span(const char *Name) {
    Registry &R = Registry::instance();
    if (R.spansEnabled()) {
      this->Name = Name;
      BeginNs = R.nowNs();
    }
  }
  ~Span() {
    if (Name) {
      Registry &R = Registry::instance();
      R.recordSpan(Name, BeginNs, R.nowNs());
    }
  }
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

private:
  const char *Name = nullptr;
  uint64_t BeginNs = 0;
};

/// Shorthands for the common "look the metric up once" pattern.
inline Metric &counter(const std::string &Name) {
  return Registry::instance().counter(Name);
}
inline Metric &gauge(const std::string &Name) {
  return Registry::instance().gauge(Name);
}

} // namespace telemetry
} // namespace gprof

#endif // GPROF_SUPPORT_TELEMETRY_H
