//===- support/Telemetry.h - Profile the profiler --------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability substrate for the profiler's own pipeline: a
/// process-wide registry of named monotonic counters and gauges, plus RAII
/// phase spans recorded on per-thread buffers.  The paper's §3 obsesses
/// over what the monitor costs the monitored program; this layer turns the
/// same lens on the profiler itself — mcount hash behaviour, analyzer
/// phase times, thread-pool utilization, store cache traffic — without
/// ad-hoc printf.
///
/// Three metric kinds with different guarantees (docs/TELEMETRY.md):
///
///  - **Counters** are exact and data-derived: for a given input their
///    values are identical at any thread count, because every increment is
///    computed from the data (arc counts, histogram ticks, cycle counts),
///    never from scheduling.  The determinism tests pin this.
///  - **Gauges** record scheduling and environment facts — jobs queued,
///    queue depths, worker busy time, cache hits against mutable on-disk
///    state — and carry no cross-thread-count guarantee.
///  - **Histograms** (DurationHistogram) are distributions of measured
///    durations: fixed log-scale buckets, lock-free relaxed recording,
///    deterministic snapshot/merge and exact bucket-boundary percentiles.
///    The *values* are wall-clock facts, so histograms sit on the gauge
///    side of the determinism contract — only their bucket layout and
///    snapshot arithmetic are deterministic, never the recorded times.
///
/// The hottest instrumented path — mcount's per-record stats — does not
/// even pay the relaxed atomics: each profiled thread bumps plain
/// counters in its own ArcTableStats block (one recorder per thread,
/// docs/RUNTIME_MT.md), and Monitor::publishTelemetry() folds the
/// per-thread blocks field-wise into the registry's `runtime.*` counters
/// at snapshot time.  The fold is a commutative sum, so the published
/// totals keep the counter determinism guarantee at every thread count.
///
/// Spans carry wall-clock timestamps and are likewise excluded from
/// determinism guarantees.  They are gated by a runtime flag checked once
/// per scope, so a disabled span costs one relaxed atomic load; metric
/// updates are relaxed atomics.  Enable spans, run the workload, then
/// serialize with TraceWriter (Chrome trace JSON) or renderStatsJson (the
/// flat BenchJson shape the perf tooling scrapes).
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_SUPPORT_TELEMETRY_H
#define GPROF_SUPPORT_TELEMETRY_H

#include "support/Error.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace gprof {

class OptionParser;

namespace telemetry {

/// What a metric's value means across runs (see file comment).
enum class Kind { Counter, Gauge, Histogram };

/// One named process-wide metric.  Metrics are created by the Registry,
/// never destroyed, and updated with relaxed atomics — a reference
/// obtained once (e.g. a function-local static) stays valid for the
/// process lifetime, including across Registry::resetValues().
class Metric {
public:
  void add(uint64_t Delta) {
    Value.fetch_add(Delta, std::memory_order_relaxed);
  }
  void set(uint64_t V) { Value.store(V, std::memory_order_relaxed); }
  /// Raises the value to \p V if it is larger (queue high-water marks).
  void max(uint64_t V) {
    uint64_t Cur = Value.load(std::memory_order_relaxed);
    while (Cur < V &&
           !Value.compare_exchange_weak(Cur, V, std::memory_order_relaxed))
      ;
  }
  uint64_t value() const { return Value.load(std::memory_order_relaxed); }
  const std::string &name() const { return Name; }
  Kind kind() const { return MetricKind; }

private:
  friend class Registry;
  Metric(std::string Name, Kind K) : Name(std::move(Name)), MetricKind(K) {}
  Metric(const Metric &) = delete;

  std::string Name;
  Kind MetricKind;
  std::atomic<uint64_t> Value{0};
};

/// Number of log-scale histogram buckets.  Bucket 0 holds the value 0;
/// bucket B (1 <= B < 63) holds values whose bit width is B, i.e. the
/// range [2^(B-1), 2^B - 1]; the last bucket absorbs everything wider.
constexpr size_t HistogramBucketCount = 64;

/// A deterministic, mergeable copy of a histogram's state.  Merging is a
/// field-wise sum — commutative and associative, so folding per-thread
/// snapshots in any order yields identical results.  Percentiles are
/// exact functions of the bucket counts: the reported value is the upper
/// bound of the bucket containing the requested rank.
struct HistogramSnapshot {
  std::array<uint64_t, HistogramBucketCount> Counts{};
  uint64_t Sum = 0;

  uint64_t count() const {
    uint64_t Total = 0;
    for (uint64_t C : Counts)
      Total += C;
    return Total;
  }
  /// Upper bound of the bucket holding the rank ceil(Q * count()),
  /// Q in (0, 1].  Returns 0 on an empty histogram.
  uint64_t percentile(double Q) const;
  void merge(const HistogramSnapshot &Other) {
    for (size_t B = 0; B < HistogramBucketCount; ++B)
      Counts[B] += Other.Counts[B];
    Sum += Other.Sum;
  }
};

/// A fixed-bucket log-scale duration histogram: the registry's third
/// metric kind.  record() is lock-free (two relaxed fetch_adds), so it is
/// safe on request-handling paths; it is still deliberately kept off the
/// mcount hot path, which stays on plain per-thread counters.  Like
/// Metric, histograms are created by the Registry and never destroyed.
class DurationHistogram {
public:
  void record(uint64_t Value) {
    Buckets[bucketIndex(Value)].fetch_add(1, std::memory_order_relaxed);
    Sum.fetch_add(Value, std::memory_order_relaxed);
  }
  HistogramSnapshot snapshot() const {
    HistogramSnapshot S;
    for (size_t B = 0; B < HistogramBucketCount; ++B)
      S.Counts[B] = Buckets[B].load(std::memory_order_relaxed);
    S.Sum = Sum.load(std::memory_order_relaxed);
    return S;
  }
  const std::string &name() const { return Name; }

  static size_t bucketIndex(uint64_t Value) {
    size_t Width = 0;
    while (Value) {
      ++Width;
      Value >>= 1;
    }
    return Width < HistogramBucketCount ? Width : HistogramBucketCount - 1;
  }
  /// The largest value bucket \p B can hold (the value percentile()
  /// reports when the rank lands in it).
  static uint64_t bucketUpperBound(size_t B) {
    if (B == 0)
      return 0;
    if (B >= HistogramBucketCount - 1)
      return UINT64_MAX;
    return (uint64_t(1) << B) - 1;
  }

private:
  friend class Registry;
  explicit DurationHistogram(std::string Name) : Name(std::move(Name)) {}
  DurationHistogram(const DurationHistogram &) = delete;

  std::string Name;
  std::array<std::atomic<uint64_t>, HistogramBucketCount> Buckets{};
  std::atomic<uint64_t> Sum{0};
};

/// One recorded phase span, as returned by Registry::collectSpans().
struct SpanRecord {
  std::string Name;
  uint32_t Tid = 0;     ///< Telemetry thread id (see threadNames()).
  uint64_t BeginNs = 0; ///< Monotonic ns since registry creation.
  uint64_t EndNs = 0;
  uint64_t ReqId = 0;   ///< Daemon request id, 0 when outside a request.
};

/// The process-wide telemetry registry.
class Registry {
public:
  /// The singleton.  Never destroyed, so worker threads may record
  /// during shutdown.
  static Registry &instance();

  /// Finds or creates the counter / gauge named \p Name.  A name keeps
  /// the kind it was first registered with.
  Metric &counter(const std::string &Name) {
    return metric(Name, Kind::Counter);
  }
  Metric &gauge(const std::string &Name) { return metric(Name, Kind::Gauge); }

  /// Finds or creates the duration histogram named \p Name.  Histograms
  /// live in their own namespace next to counters/gauges; references
  /// stay valid for the process lifetime like Metric references.
  DurationHistogram &histogram(const std::string &Name);

  /// Every registered metric, sorted by name (deterministic output
  /// order).  Pointers stay valid forever.
  std::vector<const Metric *> metrics() const;

  /// Every registered histogram, sorted by name.
  std::vector<const DurationHistogram *> histograms() const;

  /// Zeroes every metric value and histogram bucket and drops every
  /// recorded span.  Metric, histogram and thread registrations (and
  /// outstanding references) survive.
  void resetValues();

  //--- Phase spans --------------------------------------------------------

  /// Turns span recording on or off.  Spans check this once per scope.
  void enableSpans(bool On) {
    SpansOn.store(On, std::memory_order_relaxed);
  }
  bool spansEnabled() const {
    return SpansOn.load(std::memory_order_relaxed);
  }

  /// Monotonic nanoseconds since the registry was created.
  uint64_t nowNs() const;

  /// Appends one finished span to the calling thread's buffer, tagged
  /// with the thread's current request id.
  void recordSpan(const char *Name, uint64_t BeginNs, uint64_t EndNs);

  /// Same, with an explicit request id (client-side spans stamp the id
  /// the daemon echoed back instead of a thread-local one).
  void recordSpan(const char *Name, uint64_t BeginNs, uint64_t EndNs,
                  uint64_t ReqId);

  //--- Request tracing ----------------------------------------------------

  /// The daemon request id spans on this thread are tagged with (0 when
  /// no request is being served).  Thread-local; see RequestIdScope.
  static uint64_t currentRequestId();
  static void setCurrentRequestId(uint64_t Id);

  /// The calling thread's telemetry id (assigned on first use).
  uint32_t currentThreadId();

  /// Names the calling thread in trace output ("main", "worker-3", ...).
  void setCurrentThreadName(const std::string &Name);

  /// Snapshot of every span recorded so far, sorted by (tid, begin).
  std::vector<SpanRecord> collectSpans() const;

  /// (tid, name) for every registered thread, in tid order.  Threads
  /// that never set a name appear as "thread-<tid>".
  std::vector<std::pair<uint32_t, std::string>> threadNames() const;

  //--- Serialization ------------------------------------------------------

  /// Knobs for renderStatsJson.  Defaults reproduce the classic output.
  struct StatsRenderOptions {
    /// Keep only metrics/histograms whose name starts with this prefix
    /// (empty keeps everything).
    std::string MetricPrefix;
    /// Extra top-level members emitted before "results".  The value is
    /// raw JSON text (already quoted/escaped by the caller).
    std::vector<std::pair<std::string, std::string>> ExtraFields;
  };

  /// Flat stats JSON in the BenchJson shape (bench/BenchUtil.h): a
  /// top-level "bench" name, scalar fields, and one "results" array with
  /// a row per metric: {"metric": ..., "kind": "counter"|"gauge",
  /// "value": N}.  Histogram rows follow the metric rows as
  /// {"metric": ..., "kind": "histogram", "count": N, "sum": N,
  /// "p50": N, "p95": N, "p99": N} (values in the recorded unit,
  /// nanoseconds for every built-in latency histogram).  Each group is
  /// sorted by metric name.
  std::string renderStatsJson(const std::string &Name,
                              const StatsRenderOptions &Opts) const;
  std::string renderStatsJson(const std::string &Name) const {
    return renderStatsJson(Name, StatsRenderOptions());
  }

private:
  struct ThreadBuffer {
    uint32_t Tid = 0;
    std::string Name;
    mutable std::mutex Mutex;
    std::vector<SpanRecord> Spans;
  };

  Registry();
  Metric &metric(const std::string &Name, Kind K);
  ThreadBuffer &threadBuffer();

  mutable std::mutex Mutex;
  std::vector<std::unique_ptr<Metric>> Metrics;   ///< Guarded by Mutex.
  std::vector<std::unique_ptr<DurationHistogram>> Histograms; ///< Guarded.
  std::vector<std::unique_ptr<ThreadBuffer>> Threads; ///< Guarded by Mutex.
  std::atomic<bool> SpansOn{false};
  uint64_t EpochNs = 0;
};

/// RAII phase span: records [construction, destruction) on the calling
/// thread's buffer when spans are enabled.  The enabled flag is checked
/// once, at construction; a disabled span is one relaxed load.
class Span {
public:
  explicit Span(const char *Name) {
    Registry &R = Registry::instance();
    if (R.spansEnabled()) {
      this->Name = Name;
      BeginNs = R.nowNs();
    }
  }
  ~Span() {
    if (Name) {
      Registry &R = Registry::instance();
      R.recordSpan(Name, BeginNs, R.nowNs());
    }
  }
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

private:
  const char *Name = nullptr;
  uint64_t BeginNs = 0;
};

/// RAII duration timer: records [construction, destruction) into a
/// histogram.  Always on (unlike spans) — two monotonic clock reads per
/// scope, cheap enough for request/merge granularity but deliberately
/// not used on the mcount hot path.
class ScopedDuration {
public:
  explicit ScopedDuration(DurationHistogram &H)
      : H(H), BeginNs(Registry::instance().nowNs()) {}
  ~ScopedDuration() { H.record(Registry::instance().nowNs() - BeginNs); }
  ScopedDuration(const ScopedDuration &) = delete;
  ScopedDuration &operator=(const ScopedDuration &) = delete;

private:
  DurationHistogram &H;
  uint64_t BeginNs;
};

/// RAII request-id scope: spans recorded on this thread inside the scope
/// are tagged with \p Id (restores the previous id on exit, so nested
/// scopes compose).
class RequestIdScope {
public:
  explicit RequestIdScope(uint64_t Id) : Prev(Registry::currentRequestId()) {
    Registry::setCurrentRequestId(Id);
  }
  ~RequestIdScope() { Registry::setCurrentRequestId(Prev); }
  RequestIdScope(const RequestIdScope &) = delete;
  RequestIdScope &operator=(const RequestIdScope &) = delete;

private:
  uint64_t Prev;
};

/// Shorthands for the common "look the metric up once" pattern.
inline Metric &counter(const std::string &Name) {
  return Registry::instance().counter(Name);
}
inline Metric &gauge(const std::string &Name) {
  return Registry::instance().gauge(Name);
}
inline DurationHistogram &histogram(const std::string &Name) {
  return Registry::instance().histogram(Name);
}

/// Appends \p S to \p Out as a JSON string literal with the escapes the
/// stats/trace writers use (shared with EventLog).
void appendJsonString(std::string &Out, const std::string &S);

/// Declares the shared `--stats[=FILE]` option on \p Opts: a bare
/// `--stats` (or `=-`) dumps to stderr, `--stats=FILE` writes FILE.
/// Every stats-capable CLI (gprof, gprof-store, tlrun) goes through this
/// pair so the flag behaves identically everywhere.
void addStatsOption(OptionParser &Opts);

/// Honors the option declared by addStatsOption: renders the registry as
/// flat stats JSON under \p BenchName and writes it to the requested
/// destination.  No-op when --stats was not given.
Error emitStatsIfRequested(const OptionParser &Opts,
                           const std::string &BenchName);

} // namespace telemetry
} // namespace gprof

#endif // GPROF_SUPPORT_TELEMETRY_H
