//===- support/Socket.cpp -------------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "support/Socket.h"

#include "support/FaultInjection.h"
#include "support/Format.h"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace gprof;

namespace {

Error errnoFailure(const char *Op, const std::string &Detail) {
  return Error::failure(format("%s failed on '%s': %s", Op, Detail.c_str(),
                               std::strerror(errno)));
}

/// Fills \p Addr for \p Path; sun_path is a fixed ~108-byte array, so long
/// paths are a hard error rather than silent truncation.
Error makeAddress(const std::string &Path, sockaddr_un &Addr) {
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.empty())
    return Error::failure("empty socket path");
  if (Path.size() >= sizeof(Addr.sun_path))
    return Error::failure(format("socket path '%s' exceeds the %zu-byte "
                                 "AF_UNIX limit",
                                 Path.c_str(), sizeof(Addr.sun_path) - 1));
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return Error::success();
}

Expected<bool> pollReadable(int Fd, int TimeoutMs, const char *What) {
  if (Fd < 0)
    return Error::failure(format("%s: socket is closed", What));
  pollfd P{};
  P.fd = Fd;
  P.events = POLLIN;
  while (true) {
    int N = ::poll(&P, 1, TimeoutMs);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return errnoFailure("poll", What);
    }
    return N > 0;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// UnixSocket
//===----------------------------------------------------------------------===//

Expected<UnixSocket> UnixSocket::connectTo(const std::string &Path) {
  if (Error E = fault::check("sock.connect", Path))
    return E;
  sockaddr_un Addr;
  if (Error E = makeAddress(Path, Addr))
    return E;
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return errnoFailure("socket", Path);
  UnixSocket Sock(Fd);
  while (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                   sizeof(Addr)) != 0) {
    if (errno == EINTR)
      continue;
    return errnoFailure("connect", Path);
  }
  return Sock;
}

void UnixSocket::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

Error UnixSocket::sendAll(const uint8_t *Data, size_t Size) {
  if (Error E = fault::check("sock.write", format("fd %d", Fd)))
    return E;
  if (Fd < 0)
    return Error::failure("send on a closed socket");
  size_t Sent = 0;
  while (Sent < Size) {
    // MSG_NOSIGNAL: a peer that closed mid-transfer must surface as an
    // error on this connection, not kill the whole daemon with SIGPIPE.
    ssize_t N = ::send(Fd, Data + Sent, Size - Sent, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return errnoFailure("send", format("fd %d", Fd));
    }
    Sent += static_cast<size_t>(N);
  }
  return Error::success();
}

Expected<bool> UnixSocket::waitReadable(int TimeoutMs) const {
  return pollReadable(Fd, TimeoutMs, "socket wait");
}

Expected<size_t> UnixSocket::recvSome(uint8_t *Data, size_t Size) {
  if (Error E = fault::check("sock.read", format("fd %d", Fd)))
    return E;
  if (Fd < 0)
    return Error::failure("recv on a closed socket");
  while (true) {
    ssize_t N = ::recv(Fd, Data, Size, 0);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return errnoFailure("recv", format("fd %d", Fd));
    }
    return static_cast<size_t>(N);
  }
}

//===----------------------------------------------------------------------===//
// UnixListener
//===----------------------------------------------------------------------===//

Expected<UnixListener> UnixListener::listenOn(const std::string &Path,
                                              int Backlog) {
  sockaddr_un Addr;
  if (Error E = makeAddress(Path, Addr))
    return E;

  // A socket file left behind by a crashed daemon would make bind() fail
  // with EADDRINUSE forever.  Probe it: if something accepts, the address
  // is genuinely busy; if nothing does, the file is stale residue and is
  // replaced.
  if (::access(Path.c_str(), F_OK) == 0) {
    auto Probe = UnixSocket::connectTo(Path);
    if (Probe)
      return Error::failure(format("socket '%s' is already in use",
                                   Path.c_str()));
    (void)Probe.takeError();
    ::unlink(Path.c_str());
  }

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return errnoFailure("socket", Path);
  UnixListener Listener;
  Listener.Fd = Fd;
  Listener.Path = Path;
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0)
    return errnoFailure("bind", Path);
  if (::listen(Fd, Backlog) != 0)
    return errnoFailure("listen", Path);
  return Listener;
}

Expected<bool> UnixListener::waitReadable(int TimeoutMs) const {
  return pollReadable(Fd, TimeoutMs, Path.c_str());
}

Expected<UnixSocket> UnixListener::accept() {
  if (Error E = fault::check("sock.accept", Path))
    return E;
  if (Fd < 0)
    return Error::failure("accept on a closed listener");
  while (true) {
    int Client = ::accept(Fd, nullptr, nullptr);
    if (Client < 0) {
      if (errno == EINTR)
        continue;
      return errnoFailure("accept", Path);
    }
    return UnixSocket(Client);
  }
}

void UnixListener::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  if (!Path.empty()) {
    ::unlink(Path.c_str());
    Path.clear();
  }
}
