//===- support/Socket.h - RAII UNIX-domain stream sockets ----------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal RAII wrappers over AF_UNIX stream sockets, in the FileUtils
/// mold: every operation returns Error/Expected instead of errno, EINTR is
/// retried internally, and sends use MSG_NOSIGNAL so a peer that vanishes
/// mid-write surfaces as a recoverable error rather than SIGPIPE.  The
/// continuous-profiling daemon (src/serve/) frames its protocol over these.
///
/// Fault points (docs/ROBUSTNESS.md): `sock.connect`, `sock.accept`,
/// `sock.read`, and `sock.write` fire on the corresponding operations, so
/// the crash-safety of concurrent ingest over sockets is provable with the
/// same deterministic fail-the-Nth-call machinery as the file layer.
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_SUPPORT_SOCKET_H
#define GPROF_SUPPORT_SOCKET_H

#include "support/Error.h"

#include <cstdint>
#include <string>

namespace gprof {

/// One connected (or connectable) UNIX-domain stream socket endpoint.
/// Move-only; the descriptor closes on destruction.
class UnixSocket {
public:
  /// An inert endpoint; isOpen() is false.
  UnixSocket() = default;
  /// Adopts an already-open descriptor.
  explicit UnixSocket(int Fd) : Fd(Fd) {}
  ~UnixSocket() { close(); }

  UnixSocket(UnixSocket &&Other) noexcept : Fd(Other.Fd) { Other.Fd = -1; }
  UnixSocket &operator=(UnixSocket &&Other) noexcept {
    if (this != &Other) {
      close();
      Fd = Other.Fd;
      Other.Fd = -1;
    }
    return *this;
  }
  UnixSocket(const UnixSocket &) = delete;
  UnixSocket &operator=(const UnixSocket &) = delete;

  /// Connects to the listener at \p Path (fault point `sock.connect`).
  static Expected<UnixSocket> connectTo(const std::string &Path);

  bool isOpen() const { return Fd >= 0; }
  int fd() const { return Fd; }

  /// Closes the descriptor now (idempotent).
  void close();

  /// Writes all \p Size bytes, retrying short writes (fault point
  /// `sock.write`).  A disappeared peer is an error, never a signal.
  Error sendAll(const uint8_t *Data, size_t Size);

  /// Waits up to \p TimeoutMs for readability (negative blocks forever).
  /// Returns true when a read would not block, false on timeout.
  Expected<bool> waitReadable(int TimeoutMs) const;

  /// Reads up to \p Size bytes; returns 0 at orderly end-of-stream
  /// (fault point `sock.read`).
  Expected<size_t> recvSome(uint8_t *Data, size_t Size);

private:
  int Fd = -1;
};

/// A bound, listening UNIX-domain socket.  The socket file is created at
/// construction and unlinked on destruction.  Move-only.
class UnixListener {
public:
  UnixListener() = default;
  ~UnixListener() { close(); }

  UnixListener(UnixListener &&Other) noexcept
      : Fd(Other.Fd), Path(std::move(Other.Path)) {
    Other.Fd = -1;
    Other.Path.clear();
  }
  UnixListener &operator=(UnixListener &&Other) noexcept {
    if (this != &Other) {
      close();
      Fd = Other.Fd;
      Path = std::move(Other.Path);
      Other.Fd = -1;
      Other.Path.clear();
    }
    return *this;
  }
  UnixListener(const UnixListener &) = delete;
  UnixListener &operator=(const UnixListener &) = delete;

  /// Binds and listens at \p Path.  A stale socket file left by a crashed
  /// daemon (nothing accepting on it) is replaced; a live one is reported
  /// as "already in use".
  static Expected<UnixListener> listenOn(const std::string &Path,
                                         int Backlog = 64);

  bool isOpen() const { return Fd >= 0; }
  const std::string &path() const { return Path; }

  /// Waits up to \p TimeoutMs for a pending connection (negative blocks
  /// forever).  Returns true when accept() would not block.
  Expected<bool> waitReadable(int TimeoutMs) const;

  /// Accepts one pending connection (fault point `sock.accept`).
  Expected<UnixSocket> accept();

  /// Closes the descriptor and unlinks the socket file (idempotent).
  void close();

private:
  int Fd = -1;
  std::string Path;
};

} // namespace gprof

#endif // GPROF_SUPPORT_SOCKET_H
