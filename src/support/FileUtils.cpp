//===- support/FileUtils.cpp ----------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "support/FileUtils.h"

#include "support/Format.h"

#include <cstdio>

using namespace gprof;

namespace {

/// RAII wrapper over std::FILE.
struct FileHandle {
  explicit FileHandle(std::FILE *F) : F(F) {}
  ~FileHandle() {
    if (F)
      std::fclose(F);
  }
  FileHandle(const FileHandle &) = delete;
  FileHandle &operator=(const FileHandle &) = delete;
  std::FILE *F;
};

} // namespace

Expected<std::vector<uint8_t>> gprof::readFileBytes(const std::string &Path) {
  FileHandle FH(std::fopen(Path.c_str(), "rb"));
  if (!FH.F)
    return Error::failure(format("cannot open '%s' for reading",
                                 Path.c_str()));
  std::vector<uint8_t> Bytes;
  uint8_t Buf[64 * 1024];
  while (true) {
    size_t N = std::fread(Buf, 1, sizeof(Buf), FH.F);
    Bytes.insert(Bytes.end(), Buf, Buf + N);
    if (N < sizeof(Buf)) {
      if (std::ferror(FH.F))
        return Error::failure(format("read error on '%s'", Path.c_str()));
      break;
    }
  }
  return Bytes;
}

Expected<std::string> gprof::readFileText(const std::string &Path) {
  auto Bytes = readFileBytes(Path);
  if (!Bytes)
    return Bytes.takeError();
  return std::string(Bytes->begin(), Bytes->end());
}

Error gprof::writeFileBytes(const std::string &Path,
                            const std::vector<uint8_t> &Bytes) {
  FileHandle FH(std::fopen(Path.c_str(), "wb"));
  if (!FH.F)
    return Error::failure(format("cannot open '%s' for writing",
                                 Path.c_str()));
  if (!Bytes.empty() &&
      std::fwrite(Bytes.data(), 1, Bytes.size(), FH.F) != Bytes.size())
    return Error::failure(format("write error on '%s'", Path.c_str()));
  return Error::success();
}

Error gprof::writeFileText(const std::string &Path, const std::string &Text) {
  std::vector<uint8_t> Bytes(Text.begin(), Text.end());
  return writeFileBytes(Path, Bytes);
}
