//===- support/FileUtils.cpp ----------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "support/FileUtils.h"

#include "support/FaultInjection.h"
#include "support/Format.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <system_error>

using namespace gprof;

namespace {

/// RAII wrapper over std::FILE.
struct FileHandle {
  explicit FileHandle(std::FILE *F) : F(F) {}
  ~FileHandle() {
    if (F)
      std::fclose(F);
  }
  /// Closes eagerly, reporting the flush-on-close result (a buffered
  /// write error surfaces here, not at fwrite).
  bool close() {
    std::FILE *Old = F;
    F = nullptr;
    return Old == nullptr || std::fclose(Old) == 0;
  }
  FileHandle(const FileHandle &) = delete;
  FileHandle &operator=(const FileHandle &) = delete;
  std::FILE *F;
};

/// Best-effort deletion that never reports (failure-path cleanup).
void removeQuietly(const std::string &Path) {
  std::error_code EC;
  std::filesystem::remove(Path, EC);
}

} // namespace

Expected<std::vector<uint8_t>> gprof::readFileBytes(const std::string &Path) {
  if (Error E = fault::check("file.read", Path))
    return E;
  FileHandle FH(std::fopen(Path.c_str(), "rb"));
  if (!FH.F)
    return Error::failure(format("cannot open '%s' for reading",
                                 Path.c_str()));
  std::vector<uint8_t> Bytes;
  uint8_t Buf[64 * 1024];
  while (true) {
    size_t N = std::fread(Buf, 1, sizeof(Buf), FH.F);
    Bytes.insert(Bytes.end(), Buf, Buf + N);
    if (N < sizeof(Buf)) {
      if (std::ferror(FH.F))
        return Error::failure(format("read error on '%s'", Path.c_str()));
      break;
    }
  }
  return Bytes;
}

Expected<std::string> gprof::readFileText(const std::string &Path) {
  auto Bytes = readFileBytes(Path);
  if (!Bytes)
    return Bytes.takeError();
  return std::string(Bytes->begin(), Bytes->end());
}

Error gprof::writeFileBytes(const std::string &Path,
                            const std::vector<uint8_t> &Bytes) {
  if (Error E = fault::check("file.write", Path))
    return E;
  FileHandle FH(std::fopen(Path.c_str(), "wb"));
  if (!FH.F)
    return Error::failure(format("cannot open '%s' for writing",
                                 Path.c_str()));
  if (!Bytes.empty() &&
      std::fwrite(Bytes.data(), 1, Bytes.size(), FH.F) != Bytes.size())
    return Error::failure(format("write error on '%s'", Path.c_str()));
  if (!FH.close())
    return Error::failure(format("write error on '%s'", Path.c_str()));
  return Error::success();
}

Error gprof::writeFileText(const std::string &Path, const std::string &Text) {
  std::vector<uint8_t> Bytes(Text.begin(), Text.end());
  return writeFileBytes(Path, Bytes);
}

Error gprof::writeFileBytesAtomic(const std::string &Path,
                                  const std::vector<uint8_t> &Bytes) {
  std::string Tmp = Path + ".tmp";
  if (Error E = writeFileBytes(Tmp, Bytes)) {
    removeQuietly(Tmp);
    return E;
  }
  if (Error E = renameFile(Tmp, Path)) {
    removeQuietly(Tmp);
    return E;
  }
  return Error::success();
}

bool gprof::fileExists(const std::string &Path) {
  std::error_code EC;
  return std::filesystem::is_regular_file(Path, EC);
}

Error gprof::createDirectories(const std::string &Path) {
  std::error_code EC;
  std::filesystem::create_directories(Path, EC);
  if (EC)
    return Error::failure(format("cannot create directory '%s': %s",
                                 Path.c_str(), EC.message().c_str()));
  return Error::success();
}

Expected<std::vector<std::string>> gprof::listDirectory(
    const std::string &Path) {
  std::error_code EC;
  std::filesystem::directory_iterator It(Path, EC);
  if (EC)
    return Error::failure(format("cannot list directory '%s': %s",
                                 Path.c_str(), EC.message().c_str()));
  std::vector<std::string> Names;
  for (const auto &Entry : It)
    Names.push_back(Entry.path().filename().string());
  std::sort(Names.begin(), Names.end());
  return Names;
}

Error gprof::removeFile(const std::string &Path) {
  std::error_code EC;
  std::filesystem::remove(Path, EC);
  if (EC)
    return Error::failure(format("cannot remove '%s': %s", Path.c_str(),
                                 EC.message().c_str()));
  return Error::success();
}

Error gprof::renameFile(const std::string &From, const std::string &To) {
  if (Error E = fault::check("file.rename", From + " -> " + To))
    return E;
  std::error_code EC;
  std::filesystem::rename(From, To, EC);
  if (EC)
    return Error::failure(format("cannot rename '%s' to '%s': %s",
                                 From.c_str(), To.c_str(),
                                 EC.message().c_str()));
  return Error::success();
}
