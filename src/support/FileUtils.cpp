//===- support/FileUtils.cpp ----------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "support/FileUtils.h"

#include "support/Format.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <system_error>

using namespace gprof;

namespace {

/// RAII wrapper over std::FILE.
struct FileHandle {
  explicit FileHandle(std::FILE *F) : F(F) {}
  ~FileHandle() {
    if (F)
      std::fclose(F);
  }
  FileHandle(const FileHandle &) = delete;
  FileHandle &operator=(const FileHandle &) = delete;
  std::FILE *F;
};

} // namespace

Expected<std::vector<uint8_t>> gprof::readFileBytes(const std::string &Path) {
  FileHandle FH(std::fopen(Path.c_str(), "rb"));
  if (!FH.F)
    return Error::failure(format("cannot open '%s' for reading",
                                 Path.c_str()));
  std::vector<uint8_t> Bytes;
  uint8_t Buf[64 * 1024];
  while (true) {
    size_t N = std::fread(Buf, 1, sizeof(Buf), FH.F);
    Bytes.insert(Bytes.end(), Buf, Buf + N);
    if (N < sizeof(Buf)) {
      if (std::ferror(FH.F))
        return Error::failure(format("read error on '%s'", Path.c_str()));
      break;
    }
  }
  return Bytes;
}

Expected<std::string> gprof::readFileText(const std::string &Path) {
  auto Bytes = readFileBytes(Path);
  if (!Bytes)
    return Bytes.takeError();
  return std::string(Bytes->begin(), Bytes->end());
}

Error gprof::writeFileBytes(const std::string &Path,
                            const std::vector<uint8_t> &Bytes) {
  FileHandle FH(std::fopen(Path.c_str(), "wb"));
  if (!FH.F)
    return Error::failure(format("cannot open '%s' for writing",
                                 Path.c_str()));
  if (!Bytes.empty() &&
      std::fwrite(Bytes.data(), 1, Bytes.size(), FH.F) != Bytes.size())
    return Error::failure(format("write error on '%s'", Path.c_str()));
  return Error::success();
}

Error gprof::writeFileText(const std::string &Path, const std::string &Text) {
  std::vector<uint8_t> Bytes(Text.begin(), Text.end());
  return writeFileBytes(Path, Bytes);
}

bool gprof::fileExists(const std::string &Path) {
  std::error_code EC;
  return std::filesystem::is_regular_file(Path, EC);
}

Error gprof::createDirectories(const std::string &Path) {
  std::error_code EC;
  std::filesystem::create_directories(Path, EC);
  if (EC)
    return Error::failure(format("cannot create directory '%s': %s",
                                 Path.c_str(), EC.message().c_str()));
  return Error::success();
}

Expected<std::vector<std::string>> gprof::listDirectory(
    const std::string &Path) {
  std::error_code EC;
  std::filesystem::directory_iterator It(Path, EC);
  if (EC)
    return Error::failure(format("cannot list directory '%s': %s",
                                 Path.c_str(), EC.message().c_str()));
  std::vector<std::string> Names;
  for (const auto &Entry : It)
    Names.push_back(Entry.path().filename().string());
  std::sort(Names.begin(), Names.end());
  return Names;
}

Error gprof::removeFile(const std::string &Path) {
  std::error_code EC;
  std::filesystem::remove(Path, EC);
  if (EC)
    return Error::failure(format("cannot remove '%s': %s", Path.c_str(),
                                 EC.message().c_str()));
  return Error::success();
}

Error gprof::renameFile(const std::string &From, const std::string &To) {
  std::error_code EC;
  std::filesystem::rename(From, To, EC);
  if (EC)
    return Error::failure(format("cannot rename '%s' to '%s': %s",
                                 From.c_str(), To.c_str(),
                                 EC.message().c_str()));
  return Error::success();
}
