//===- support/BinaryStream.cpp -------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "support/BinaryStream.h"

#include "support/Format.h"

#include <cstring>

using namespace gprof;

void BinaryWriter::writeF64(double V) {
  static_assert(sizeof(double) == sizeof(uint64_t),
                "IEEE-754 binary64 expected");
  uint64_t Bits;
  std::memcpy(&Bits, &V, sizeof(Bits));
  writeU64(Bits);
}

void BinaryWriter::writeString(std::string_view S) {
  writeU32(static_cast<uint32_t>(S.size()));
  writeBytes(reinterpret_cast<const uint8_t *>(S.data()), S.size());
}

Error BinaryReader::checkAvailable(size_t N) {
  if (Size - Pos < N)
    return Error::failure(format(
        "truncated input: need %zu bytes at offset %zu, have %zu", N, Pos,
        Size - Pos));
  return Error::success();
}

Expected<uint8_t> BinaryReader::readU8() {
  if (Error E = checkAvailable(1))
    return E;
  return Data[Pos++];
}

Expected<uint16_t> BinaryReader::readU16() {
  if (Error E = checkAvailable(2))
    return E;
  uint16_t V = static_cast<uint16_t>(Data[Pos]) |
               static_cast<uint16_t>(Data[Pos + 1]) << 8;
  Pos += 2;
  return V;
}

Expected<uint32_t> BinaryReader::readU32() {
  if (Error E = checkAvailable(4))
    return E;
  uint32_t V = 0;
  for (unsigned I = 0; I != 4; ++I)
    V |= static_cast<uint32_t>(Data[Pos + I]) << (8 * I);
  Pos += 4;
  return V;
}

Expected<uint64_t> BinaryReader::readU64() {
  if (Error E = checkAvailable(8))
    return E;
  uint64_t V = 0;
  for (unsigned I = 0; I != 8; ++I)
    V |= static_cast<uint64_t>(Data[Pos + I]) << (8 * I);
  Pos += 8;
  return V;
}

Expected<int64_t> BinaryReader::readI64() {
  auto V = readU64();
  if (!V)
    return V.takeError();
  return static_cast<int64_t>(*V);
}

Expected<double> BinaryReader::readF64() {
  auto Bits = readU64();
  if (!Bits)
    return Bits.takeError();
  double V;
  std::memcpy(&V, &*Bits, sizeof(V));
  return V;
}

Expected<std::string> BinaryReader::readString() {
  auto Len = readU32();
  if (!Len)
    return Len.takeError();
  if (Error E = checkAvailable(*Len))
    return E;
  std::string S(reinterpret_cast<const char *>(Data + Pos), *Len);
  Pos += *Len;
  return S;
}

Expected<std::vector<uint8_t>> BinaryReader::readBytes(size_t N) {
  if (Error E = checkAvailable(N))
    return E;
  std::vector<uint8_t> Out(Data + Pos, Data + Pos + N);
  Pos += N;
  return Out;
}
