//===- support/Format.cpp -------------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "support/Format.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

using namespace gprof;

std::string gprof::formatV(const char *Fmt, va_list Args) {
  va_list Copy;
  va_copy(Copy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  if (Needed < 0)
    return std::string();
  std::string Result(static_cast<size_t>(Needed), '\0');
  std::vsnprintf(Result.data(), Result.size() + 1, Fmt, Args);
  return Result;
}

std::string gprof::format(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  std::string Result = formatV(Fmt, Args);
  va_end(Args);
  return Result;
}

std::string gprof::padLeft(std::string_view S, unsigned Width) {
  if (S.size() >= Width)
    return std::string(S);
  return std::string(Width - S.size(), ' ') + std::string(S);
}

std::string gprof::padRight(std::string_view S, unsigned Width) {
  if (S.size() >= Width)
    return std::string(S);
  return std::string(S) + std::string(Width - S.size(), ' ');
}

std::string gprof::formatFixed(double Value, unsigned Decimals) {
  return format("%.*f", static_cast<int>(Decimals), Value);
}

std::string gprof::formatPercent(double Numerator, double Denominator) {
  if (Denominator == 0.0)
    return "0.0";
  return formatFixed(100.0 * Numerator / Denominator, 1);
}

std::vector<std::string> gprof::splitString(std::string_view S, char Sep) {
  std::vector<std::string> Parts;
  size_t Start = 0;
  while (true) {
    size_t Pos = S.find(Sep, Start);
    if (Pos == std::string_view::npos) {
      Parts.emplace_back(S.substr(Start));
      return Parts;
    }
    Parts.emplace_back(S.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

std::string_view gprof::trim(std::string_view S) {
  size_t Begin = 0;
  while (Begin < S.size() && std::isspace(static_cast<unsigned char>(S[Begin])))
    ++Begin;
  size_t End = S.size();
  while (End > Begin && std::isspace(static_cast<unsigned char>(S[End - 1])))
    --End;
  return S.substr(Begin, End - Begin);
}

bool gprof::parseInt64(std::string_view S, long long &Out) {
  std::string Buf(trim(S));
  if (Buf.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  long long Value = std::strtoll(Buf.c_str(), &End, 10);
  if (errno != 0 || End != Buf.c_str() + Buf.size())
    return false;
  Out = Value;
  return true;
}

bool gprof::parseUInt64(std::string_view S, unsigned long long &Out) {
  std::string Buf(trim(S));
  if (Buf.empty() || Buf[0] == '-')
    return false;
  errno = 0;
  char *End = nullptr;
  unsigned long long Value = std::strtoull(Buf.c_str(), &End, 10);
  if (errno != 0 || End != Buf.c_str() + Buf.size())
    return false;
  Out = Value;
  return true;
}
