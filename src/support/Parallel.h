//===- support/Parallel.h - Deterministic chunked parallel loops ---------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Chunked parallel-for over an index range, built on ThreadPool.  The
/// analyzer's parallel pipeline stages run through these helpers under a
/// strict determinism contract: a caller's output must be bitwise
/// independent of how the range is chunked and of the order in which
/// chunks execute.  The two sanctioned ways to meet the contract are
///
///  - partition the *output*: each index owns disjoint result slots, so
///    chunk boundaries never split an accumulation (the analyzer's
///    routine-major sample assignment and per-node propagation), or
///  - accumulate into chunk-local state and reduce over chunks in chunk
///    index order after runChunks returns (the analyzer's sharded arc
///    symbolization and the residual-time reduction).
///
/// Relying on chunk sizes, worker identity, or completion order is a bug:
/// planChunks sizes chunks from the pool width, which varies by machine
/// and by the AnalyzerOptions::Threads knob.
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_SUPPORT_PARALLEL_H
#define GPROF_SUPPORT_PARALLEL_H

#include "support/ThreadPool.h"

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace gprof {

/// A contiguous [Begin, End) slice of the iteration range.
using IndexChunk = std::pair<size_t, size_t>;

/// Splits [0, N) into contiguous chunks sized for \p Pool: enough chunks
/// to load-balance across the workers, but never smaller than
/// \p MinPerChunk indices (so tiny ranges do not drown in dispatch
/// overhead).  A null \p Pool yields at most one chunk.
std::vector<IndexChunk> planChunks(const ThreadPool *Pool, size_t N,
                                   size_t MinPerChunk = 1);

/// Runs Body(Begin, End, ChunkIndex) for every chunk of \p Chunks,
/// blocking until all complete.  Runs inline (on the calling thread) when
/// \p Pool is null or there is at most one chunk; otherwise every chunk
/// is dispatched to the pool.  Chunk index is the position in \p Chunks,
/// so chunk-local accumulators can be reduced deterministically in index
/// order afterwards.
void runChunks(ThreadPool *Pool, const std::vector<IndexChunk> &Chunks,
               const std::function<void(size_t Begin, size_t End,
                                        size_t Chunk)> &Body);

/// planChunks + runChunks in one call, for stages with no chunk-local
/// state to pre-allocate.
void parallelChunks(ThreadPool *Pool, size_t N, size_t MinPerChunk,
                    const std::function<void(size_t Begin, size_t End,
                                             size_t Chunk)> &Body);

} // namespace gprof

#endif // GPROF_SUPPORT_PARALLEL_H
