//===- support/Error.h - Lightweight recoverable error handling ----------===//
//
// Part of the gprof-repro project: a reproduction of "gprof: a Call Graph
// Execution Profiler" (Graham, Kessler, McKusick; PLDI 1982).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small exception-free error-handling scheme in the style of LLVM's
/// Error/Expected.  Fallible operations return Error (void result) or
/// Expected<T>.  In builds with assertions enabled, destroying an Error or a
/// failed Expected without inspecting it aborts, which catches dropped
/// errors early.
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_SUPPORT_ERROR_H
#define GPROF_SUPPORT_ERROR_H

#include <cassert>
#include <cstdlib>
#include <string>
#include <utility>

namespace gprof {

/// A recoverable error carrying a human-readable message.
///
/// A default-constructed Error is a success value.  Error is move-only; it
/// must be checked (converted to bool, or its message taken) before it is
/// destroyed.
class Error {
public:
  /// Creates a success value.
  Error() = default;

  /// Creates a failure value carrying \p Message.
  static Error failure(std::string Message) {
    Error E;
    E.Msg = std::move(Message);
    E.Failed = true;
    return E;
  }

  /// Creates a success value (for symmetry with failure()).
  static Error success() { return Error(); }

  Error(const Error &) = delete;
  Error &operator=(const Error &) = delete;

  Error(Error &&Other) noexcept { moveFrom(std::move(Other)); }

  Error &operator=(Error &&Other) noexcept {
    if (this != &Other) {
      assertChecked();
      moveFrom(std::move(Other));
    }
    return *this;
  }

  ~Error() { assertChecked(); }

  /// Tests for failure; marks the error as checked.
  explicit operator bool() {
    Checked = true;
    return Failed;
  }

  /// Returns the failure message.  Only valid on failure values.
  const std::string &message() const {
    assert(Failed && "message() on a success value");
    return Msg;
  }

  /// Returns true if this is a failure value without marking it checked.
  /// Intended for tests and diagnostics only.
  bool isFailure() const { return Failed; }

private:
  void moveFrom(Error &&Other) {
    Msg = std::move(Other.Msg);
    Failed = Other.Failed;
    Checked = Other.Checked;
    Other.Failed = false;
    Other.Checked = true;
  }

  void assertChecked() const {
    assert((Checked || !Failed) && "dropped an unchecked gprof::Error");
  }

  std::string Msg;
  bool Failed = false;
  bool Checked = true;
};

/// Either a value of type \p T or an Error.
///
/// Converts to true on success.  On success the value is reached through
/// operator* / operator->; on failure takeError() extracts the Error.
template <typename T> class Expected {
public:
  /// Constructs a success value.
  Expected(T Value) : Val(std::move(Value)), HasValue(true) {}

  /// Constructs a failure value from \p E (which must be a failure).
  Expected(Error E) : Err(std::move(E)), HasValue(false) {
    assert(Err.isFailure() && "Expected constructed from success Error");
  }

  Expected(const Expected &) = delete;
  Expected &operator=(const Expected &) = delete;
  Expected(Expected &&) = default;
  Expected &operator=(Expected &&) = default;

  /// Tests for success; marks a contained error as checked.
  explicit operator bool() {
    if (!HasValue)
      (void)static_cast<bool>(Err);
    return HasValue;
  }

  /// Returns the contained value.  Only valid on success.
  T &operator*() {
    assert(HasValue && "dereferencing a failed Expected");
    return Val;
  }
  const T &operator*() const {
    assert(HasValue && "dereferencing a failed Expected");
    return Val;
  }
  T *operator->() { return &operator*(); }
  const T *operator->() const { return &operator*(); }

  /// Moves the contained value out.  Only valid on success.
  T takeValue() {
    assert(HasValue && "takeValue() on a failed Expected");
    return std::move(Val);
  }

  /// Extracts the error (success Error if this holds a value).
  Error takeError() {
    if (HasValue)
      return Error::success();
    return std::move(Err);
  }

  /// Returns the failure message.  Only valid on failure values.
  const std::string &message() const { return Err.message(); }

  /// Returns true if this holds a value, without marking errors checked.
  bool hasValue() const { return HasValue; }

private:
  T Val{};
  Error Err;
  bool HasValue;
};

/// Aborts the process after printing \p Message.  For invariant violations
/// that must be diagnosed even in release builds.
[[noreturn]] void reportFatalError(const std::string &Message);

/// Asserts that \p E is a success value and consumes it.  Use only at call
/// sites that are known to be infallible for their inputs.
inline void cantFail(Error E) {
  if (E)
    reportFatalError("cantFail called on failure: " + E.message());
}

/// Asserts that \p E holds a value and unwraps it.
template <typename T> T cantFail(Expected<T> E) {
  if (!E)
    reportFatalError("cantFail called on failure: " + E.message());
  return E.takeValue();
}

} // namespace gprof

#endif // GPROF_SUPPORT_ERROR_H
