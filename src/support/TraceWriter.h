//===- support/TraceWriter.h - Chrome trace-event JSON export --------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes telemetry phase spans to the Chrome trace-event JSON format,
/// loadable in `chrome://tracing` and https://ui.perfetto.dev.  The writer
/// emits complete events (`"ph":"X"`, microsecond `ts`/`dur`) plus
/// `thread_name` metadata so each profiler thread — "main" and every
/// "worker-N" — gets its own track.  A minimal recursive-descent JSON
/// validator rides along so tests and the ctest smoke target can accept or
/// reject a trace without an external JSON library.
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_SUPPORT_TRACEWRITER_H
#define GPROF_SUPPORT_TRACEWRITER_H

#include "support/Error.h"

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace gprof {

/// Accumulates trace events and renders the `{"traceEvents": [...]}`
/// container.
class TraceWriter {
public:
  /// Names the (single) process in the trace UI.
  void setProcessName(std::string Name) { ProcessName = std::move(Name); }

  /// Names a thread track (`"ph":"M"` thread_name metadata).
  void addThreadName(uint32_t Tid, const std::string &Name);

  /// One complete event (`"ph":"X"`).  Times are nanoseconds; the JSON
  /// carries microseconds (the format's unit) with ns precision retained
  /// as fractional digits.
  void addCompleteEvent(const std::string &Name, const std::string &Category,
                        uint32_t Tid, uint64_t BeginNs, uint64_t DurNs);

  size_t numEvents() const { return Events.size(); }

  /// The full trace document.
  std::string render() const;

  /// Renders and writes to \p Path.
  Error writeFile(const std::string &Path) const;

  /// Builds a trace from everything the telemetry registry has collected:
  /// one thread_name metadata event per registered thread and one complete
  /// event per span.  Span names of the form "layer.rest" use "layer" as
  /// the event category.  Spans tagged with a daemon request id are moved
  /// onto a synthetic "request-N" track (see requestTrackTid) so each
  /// request reads as one row end to end.
  static TraceWriter fromTelemetry(const std::string &ProcessName);

  /// The synthetic track id spans of request \p ReqId are drawn on —
  /// far above real telemetry thread ids.
  static uint32_t requestTrackTid(uint64_t ReqId) {
    return 1000000u + static_cast<uint32_t>(ReqId % 1000000u);
  }

private:
  struct Event {
    std::string Json; ///< Pre-rendered object, no trailing comma.
  };
  std::string ProcessName;
  std::vector<Event> Events;
};

/// Summary of a validated trace document.
struct TraceStats {
  size_t Events = 0;         ///< Elements of "traceEvents".
  size_t CompleteEvents = 0; ///< `"ph":"X"`.
  size_t MetaEvents = 0;     ///< `"ph":"M"`.
  std::map<std::string, size_t> NameCounts; ///< Event name -> occurrences.
  std::set<uint64_t> Tids;   ///< Distinct "tid" values seen.
};

/// Strict whole-document JSON syntax check (objects, arrays, strings with
/// escapes, numbers, literals; rejects trailing garbage).  Returns the
/// number of bytes consumed on success.
Expected<size_t> validateJson(const std::string &Json);

/// validateJson plus trace-shape checks: the document must be an object
/// whose "traceEvents" member is an array of objects each carrying a
/// string "ph" and "name".  Returns per-event tallies.
Expected<TraceStats> validateTraceJson(const std::string &Json);

} // namespace gprof

#endif // GPROF_SUPPORT_TRACEWRITER_H
