//===- support/Sha256.h - SHA-256 content digests ------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dependency-free SHA-256 (FIPS 180-4) implementation.  The profile
/// store addresses gmon shards by the digest of their canonical bytes, and
/// keys cached aggregates by the digest of the member digest set, so the
/// hash must be stable across platforms and collision-resistant enough
/// that distinct profiles never alias a slot.
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_SUPPORT_SHA256_H
#define GPROF_SUPPORT_SHA256_H

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace gprof {

/// A raw 256-bit digest.
using Sha256Digest = std::array<uint8_t, 32>;

/// Incremental SHA-256 hasher.
class Sha256 {
public:
  Sha256();

  /// Absorbs \p Size bytes at \p Data.
  void update(const uint8_t *Data, size_t Size);
  void update(const std::vector<uint8_t> &Bytes) {
    update(Bytes.data(), Bytes.size());
  }

  /// Pads, finalizes, and returns the digest.  The hasher must not be
  /// updated afterwards.
  Sha256Digest finish();

  /// One-shot convenience.
  static Sha256Digest hash(const uint8_t *Data, size_t Size);
  static Sha256Digest hash(const std::vector<uint8_t> &Bytes) {
    return hash(Bytes.data(), Bytes.size());
  }

private:
  void compress(const uint8_t *Block);

  std::array<uint32_t, 8> State;
  std::array<uint8_t, 64> Buffer;
  size_t BufferLen = 0;
  uint64_t TotalBytes = 0;
};

/// Renders a digest as 64 lowercase hex characters.
std::string digestToHex(const Sha256Digest &D);

/// Parses 64 hex characters back into a digest; nullopt on malformed input.
std::optional<Sha256Digest> digestFromHex(std::string_view Hex);

} // namespace gprof

#endif // GPROF_SUPPORT_SHA256_H
