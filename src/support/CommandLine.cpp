//===- support/CommandLine.cpp --------------------------------------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "support/CommandLine.h"

#include "support/Format.h"

#include <cassert>

using namespace gprof;

OptionParser::OptionParser(std::string ToolName, std::string Overview)
    : ToolName(std::move(ToolName)), Overview(std::move(Overview)) {
  addFlag("help", 'h', "print this help text and exit");
}

void OptionParser::addFlag(const std::string &Name, char Short,
                           const std::string &Help) {
  assert(!findLong(Name) && "duplicate option name");
  Specs.push_back({Name, Short, /*TakesValue=*/false, "", Help});
}

void OptionParser::addOption(const std::string &Name, char Short,
                             const std::string &Meta,
                             const std::string &Help) {
  assert(!findLong(Name) && "duplicate option name");
  Specs.push_back({Name, Short, /*TakesValue=*/true, Meta, Help});
}

void OptionParser::addOptionalValueOption(const std::string &Name,
                                          const std::string &Meta,
                                          const std::string &Help) {
  assert(!findLong(Name) && "duplicate option name");
  Specs.push_back({Name, /*Short=*/0, /*TakesValue=*/true, Meta, Help,
                   /*ValueOptional=*/true});
}

const OptionParser::OptionSpec *
OptionParser::findLong(const std::string &Name) const {
  for (const OptionSpec &S : Specs)
    if (S.Name == Name)
      return &S;
  return nullptr;
}

const OptionParser::OptionSpec *OptionParser::findShort(char C) const {
  for (const OptionSpec &S : Specs)
    if (S.Short == C && C != 0)
      return &S;
  return nullptr;
}

Error OptionParser::parse(int Argc, const char *const *Argv) {
  bool OnlyPositional = false;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (OnlyPositional || Arg == "-" || Arg.empty() || Arg[0] != '-') {
      Positional.push_back(Arg);
      continue;
    }
    if (Arg == "--") {
      OnlyPositional = true;
      continue;
    }

    const OptionSpec *Spec = nullptr;
    std::optional<std::string> Inline;
    if (Arg.size() >= 2 && Arg[1] == '-') {
      // Long option, possibly --name=value.
      std::string Body = Arg.substr(2);
      size_t Eq = Body.find('=');
      if (Eq != std::string::npos) {
        Inline = Body.substr(Eq + 1);
        Body = Body.substr(0, Eq);
      }
      Spec = findLong(Body);
      if (!Spec)
        return Error::failure(format("unknown option '--%s'", Body.c_str()));
    } else {
      // Short option; support "-xvalue" for value options.
      Spec = findShort(Arg[1]);
      if (!Spec)
        return Error::failure(format("unknown option '-%c'", Arg[1]));
      if (Arg.size() > 2) {
        if (!Spec->TakesValue)
          return Error::failure(
              format("flag '-%c' does not take a value", Arg[1]));
        Inline = Arg.substr(2);
      }
    }

    if (!Spec->TakesValue) {
      if (Inline)
        return Error::failure(
            format("flag '--%s' does not take a value", Spec->Name.c_str()));
      ++FlagCounts[Spec->Name];
      continue;
    }

    std::string Value;
    if (Inline) {
      Value = *Inline;
    } else if (Spec->ValueOptional) {
      // A bare optional-value option records an empty value and leaves
      // the next argument alone.
    } else {
      if (I + 1 >= Argc)
        return Error::failure(
            format("option '--%s' requires a value", Spec->Name.c_str()));
      Value = Argv[++I];
    }
    Values[Spec->Name].push_back(Value);
  }
  return Error::success();
}

bool OptionParser::hasFlag(const std::string &Name) const {
  assert(findLong(Name) && "querying undeclared flag");
  auto It = FlagCounts.find(Name);
  return It != FlagCounts.end() && It->second > 0;
}

std::optional<std::string>
OptionParser::getValue(const std::string &Name) const {
  assert(findLong(Name) && "querying undeclared option");
  auto It = Values.find(Name);
  if (It == Values.end() || It->second.empty())
    return std::nullopt;
  return It->second.back();
}

std::vector<std::string>
OptionParser::getValues(const std::string &Name) const {
  assert(findLong(Name) && "querying undeclared option");
  auto It = Values.find(Name);
  if (It == Values.end())
    return {};
  return It->second;
}

std::string OptionParser::helpText() const {
  std::string Out = format("OVERVIEW: %s\n\nUSAGE: %s [options] %s\n\n"
                           "OPTIONS:\n",
                           Overview.c_str(), ToolName.c_str(),
                           PositionalHelp.c_str());
  for (const OptionSpec &S : Specs) {
    std::string Left = "  ";
    if (S.Short != 0)
      Left += format("-%c, ", S.Short);
    else
      Left += "    ";
    Left += "--" + S.Name;
    if (S.TakesValue)
      Left += S.ValueOptional ? "[=" + S.Meta + "]" : " <" + S.Meta + ">";
    Out += padRight(Left, 34) + S.Help + "\n";
  }
  return Out;
}
