//===- bench/bench_fig1_topo.cpp - E1: regenerate paper Figure 1 ----------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 1 of the paper shows a 10-routine call graph topologically
/// numbered so that "all edges in the graph go from higher numbered nodes
/// to lower numbered nodes", the order in which a single propagation sweep
/// can move time from callees to callers.  This bench rebuilds that exact
/// graph (with scrambled node creation order, so nothing is accidental),
/// runs the Tarjan-based numbering, prints the assignment, and verifies
/// the figure's defining properties.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "graph/CallGraph.h"
#include "graph/Tarjan.h"

#include <cstdio>

using namespace gprof;
using namespace gprof::bench;

namespace {

/// The Figure 1 graph; PaperNumber[i] is the node the figure labels i.
CallGraph makeFigure1(std::vector<NodeId> &PaperNumber) {
  CallGraph G;
  PaperNumber.assign(11, InvalidNode);
  for (uint32_t N : {4u, 2u, 9u, 1u, 10u, 3u, 6u, 8u, 5u, 7u})
    PaperNumber[N] = G.addNode("node" + std::to_string(N));
  auto Arc = [&](uint32_t F, uint32_t T) {
    G.addArc(PaperNumber[F], PaperNumber[T], 1);
  };
  Arc(10, 9);
  Arc(10, 8);
  Arc(9, 7);
  Arc(9, 6);
  Arc(8, 6);
  Arc(8, 5);
  Arc(7, 4);
  Arc(7, 3);
  Arc(6, 3);
  Arc(5, 3);
  Arc(5, 2);
  Arc(3, 1);
  Arc(4, 1);
  Arc(2, 1);
  return G;
}

} // namespace

int main() {
  banner("E1 (Figure 1)", "topological numbering of the example call graph");

  std::vector<NodeId> PaperNumber;
  CallGraph G = makeFigure1(PaperNumber);
  SCCResult SCCs = findSCCs(G);
  std::vector<uint32_t> Ours = topologicalNumbers(G, SCCs);

  std::printf("\n  figure's label   our topological number\n");
  for (uint32_t N = 1; N <= 10; ++N)
    std::printf("        %2u                %2u\n", N,
                Ours[PaperNumber[N]]);

  std::printf("\nchecks against the paper:\n");
  bool AllOk = true;
  AllOk &= check(checkTopologicalProperty(G, Ours, SCCs),
                 "every arc goes from a higher number to a lower number");
  AllOk &= check(SCCs.numNontrivialComponents() == 0,
                 "the Figure 1 graph is acyclic (no nontrivial SCCs)");
  AllOk &= check(Ours[PaperNumber[1]] == 1,
                 "the shared leaf receives number 1, as in the figure");
  AllOk &= check(Ours[PaperNumber[10]] == 10,
                 "the root receives number 10, as in the figure");

  // The numbering must let one forward sweep (1..10) see every callee
  // before its caller.
  bool SweepOk = true;
  for (ArcId A = 0; A != G.numArcs(); ++A)
    SweepOk &= Ours[G.arc(A).To] < Ours[G.arc(A).From];
  AllOk &= check(SweepOk,
                 "a single sweep in number order visits callees first "
                 "(one traversal per arc, paper section 4)");

  return AllOk ? 0 : 1;
}
