//===- bench/bench_tab_merge_runs.cpp - E8: summing several runs ----------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Retrospective: "We also added the ability to sum the data over several
/// profiled runs, to accumulate enough time in short-running methods to
/// get an idea of their performance."  Paper §3: "the profile data for
/// several executions of a program can be combined by the post-processing
/// to provide a profile of many executions."
///
/// This bench runs a short workload K times with varying inputs, sums the
/// per-run gmon data through the real file format, and reports how many
/// routines have measurable (nonzero) time as K grows — short-running
/// routines only become visible in the accumulated profile.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "core/Analyzer.h"
#include "gmon/GmonFile.h"
#include "runtime/Monitor.h"
#include "vm/CodeGen.h"
#include "vm/VM.h"

#include <cstdio>

using namespace gprof;
using namespace gprof::bench;

namespace {

/// Eight small routines with very different (and input-dependent) weights:
/// a single short run samples only the heavy ones.
const char *WorkloadSource = R"(
  fn tiny1(x) { return x + 1; }
  fn tiny2(x) { return x * 2; }
  fn tiny3(x) { return x - 3; }
  fn small(n) {
    var acc = 0;
    var i = 0;
    while (i < n * 4) { acc = acc + tiny1(i) + tiny2(i) + tiny3(i); i = i + 1; }
    return acc;
  }
  fn medium(n) {
    var acc = 0;
    var i = 0;
    while (i < n * 30) { acc = acc + i * i; i = i + 1; }
    return acc;
  }
  fn heavy(n) {
    var acc = 0;
    var i = 0;
    while (i < n * 40) { acc = acc + i * 3 / 7; i = i + 1; }
    return acc;
  }
  fn work(n) { return small(n) + medium(n) + heavy(n); }
  fn main() { return work(10); }
)";

/// One short profiled run of work(Input); returns its condensed data
/// after a gmon round trip (exercising the real file path).  The tick
/// interval is perturbed per run: on the paper's hardware the line clock
/// was uncorrelated with program phase, and varying the (virtual) phase
/// across runs models that.
ProfileData oneRun(const Image &Img, int64_t Input, unsigned Run) {
  Monitor Mon(Img.lowPc(), Img.highPc());
  VMOptions VO;
  VO.CyclesPerTick = 1499 + 307 * (Run % 13);
  VM Machine(Img, VO);
  Machine.setHooks(&Mon);
  cantFail(Machine.call("work", {Input}));
  return cantFail(readGmon(writeGmon(Mon.finish())));
}

} // namespace

int main() {
  banner("E8 (retrospective)",
         "summing runs accumulates time in short-running routines");

  CodeGenOptions CG;
  CG.EnableProfiling = true;
  Image Img = compileTLOrDie(WorkloadSource, CG);

  std::printf("\n");
  row({"runs summed", "samples", "routines timed", "calls of tiny1"}, 16);

  size_t TimedAt1 = 0, TimedAtMax = 0;
  uint64_t CallsAt1 = 0, CallsAtMax = 0;
  uint64_t SamplesAtMax = 0;

  for (unsigned K : {1u, 2u, 4u, 8u, 16u, 32u}) {
    ProfileData Sum;
    bool First = true;
    for (unsigned Run = 0; Run != K; ++Run) {
      ProfileData D = oneRun(Img, 3 + static_cast<int64_t>(Run % 5), Run);
      if (First) {
        Sum = std::move(D);
        First = false;
      } else {
        cantFail(Sum.merge(D));
      }
    }

    ProfileReport R = cantFail(analyzeImageProfile(Img, Sum));
    size_t Timed = 0;
    for (const FunctionEntry &F : R.Functions)
      if (F.SelfTime > 0.0)
        ++Timed;
    uint64_t Tiny1Calls =
        R.Functions[R.findFunction("tiny1")].totalCalls();

    if (K == 1) {
      TimedAt1 = Timed;
      CallsAt1 = Tiny1Calls;
    }
    TimedAtMax = Timed;
    CallsAtMax = Tiny1Calls;
    SamplesAtMax = Sum.Hist.totalSamples();

    row({format("%u", K),
         format("%llu", (unsigned long long)Sum.Hist.totalSamples()),
         format("%zu/%zu", Timed, R.Functions.size()),
         format("%llu", (unsigned long long)Tiny1Calls)},
        16);
  }

  std::printf("\nchecks against the paper:\n");
  bool Ok = true;
  Ok &= check(TimedAtMax > TimedAt1,
              "summed profiles surface routines a single short run "
              "cannot time");
  Ok &= check(CallsAtMax > CallsAt1,
              "call counts accumulate exactly across runs");
  Ok &= check(SamplesAtMax > 0, "sample histograms sum bucket-by-bucket");
  return Ok ? 0 : 1;
}
