//===- bench/bench_tab_store_merge.cpp - Store merge throughput -----------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the profile store's aggregation engine over a fleet-sized shard
/// set, in two sections.  Engine: 256 synthetic gmon shards merged by (a)
/// the historical sequential fold (ProfileData::merge, linear-scan addArc)
/// and (b) the parallel k-way merge tree at 1/2/4/8 workers, checking that
/// every configuration produces byte-identical output.  Compaction: a real
/// on-disk store at 256 and 1024 shards, comparing the cold flat-merge
/// report (every object read and merged) against the report after LSM
/// compaction (a handful of tiered runs), asserting that the compacted
/// report merges at most 16 inputs and that its bytes match the flat merge
/// exactly.  Emits BENCH_store_merge.json for the perf-tracking tooling;
/// --smoke shrinks the sizes for the ctest hook that keeps the bench and
/// its JSON emission from rotting.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "gmon/GmonFile.h"
#include "store/MergeEngine.h"
#include "store/ProfileStore.h"
#include "support/Random.h"
#include "support/ThreadPool.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <unistd.h>

using namespace gprof;
using namespace gprof::bench;

namespace {

/// One synthetic shard: common geometry, seed-dependent samples and arcs.
/// Arc keys are drawn from a pool large enough that shards overlap only
/// partially, like profiles of different request mixes.
ProfileData makeShard(uint64_t Seed) {
  SplitMix64 Rng(Seed);
  ProfileData D;
  D.TicksPerSecond = 60;
  D.Hist = Histogram(0x1000, 0x11000, 4);
  for (int I = 0; I != 512; ++I)
    D.Hist.recordPc(0x1000 + Rng.nextBelow(0x10000));
  for (int I = 0; I != 400; ++I)
    D.addArc(0x1000 + Rng.nextBelow(2048) * 16,
             0x1000 + Rng.nextBelow(256) * 256, 1 + Rng.nextBelow(50));
  canonicalizeProfile(D);
  return D;
}

/// What one compaction round measured at a given store size.
struct CompactionRound {
  size_t Shards = 0;
  double FlatMs = 0.0;        ///< Cold flat-merge report, uncompacted.
  double CompactMs = 0.0;     ///< One full compaction pass.
  double ReportMs = 0.0;      ///< Cold report after compaction.
  size_t InputsFlat = 0;      ///< Profiles the flat merge folded (== N).
  size_t InputsCompacted = 0; ///< Profiles the compacted merge folded.
  size_t RunsUsed = 0;
  unsigned Folds = 0;         ///< Compaction steps committed.
  bool Identical = false;     ///< Compacted report bytes == flat bytes.
};

CompactionRound runCompactionRound(size_t NumShards) {
  CompactionRound R;
  R.Shards = NumShards;
  std::string Root = std::filesystem::temp_directory_path().string() +
                     "/gprof_bench_compact_" +
                     format("%d_%zu", getpid(), NumShards);
  std::filesystem::remove_all(Root);

  StoreOptions SO;
  SO.CompactionFanout = 8;
  auto Store = cantFail(ProfileStore::open(Root, SO));
  for (size_t I = 0; I != NumShards; ++I)
    cantFail(Store.put(makeShard(0xC0DE + I), Sha256Digest{}, "profile",
                       /*CaptureTimeNs=*/I + 1)
                 .takeError());

  ThreadPool Pool(8);
  ProfileStore::MergeResult Flat;
  R.FlatMs = timeMs([&] { Flat = cantFail(Store.merge({}, &Pool)); });
  R.InputsFlat = Flat.InputsMerged;
  std::vector<uint8_t> FlatBytes = writeGmon(Flat.Data);

  R.CompactMs = timeMs([&] {
    CompactionStats Stats = cantFail(Store.compact(&Pool));
    R.Folds = Stats.Steps;
  });

  // Cold again: drop the cached aggregate so the report actually merges.
  cantFail(removeFile(Store.cachePath(Flat.Digest)));
  ProfileStore::MergeResult Tiered;
  R.ReportMs = timeMs([&] { Tiered = cantFail(Store.merge({}, &Pool)); });
  R.InputsCompacted = Tiered.InputsMerged;
  R.RunsUsed = Tiered.RunsUsed;
  R.Identical = writeGmon(Tiered.Data) == FlatBytes;

  std::filesystem::remove_all(Root);
  return R;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Smoke = Argc > 1 && std::strcmp(Argv[1], "--smoke") == 0;
  const size_t EngineShards = Smoke ? 64 : 256;
  std::vector<size_t> StoreSizes = Smoke ? std::vector<size_t>{32}
                                         : std::vector<size_t>{256, 1024};

  banner("T-store (new)",
         "parallel k-way merge and LSM compaction over a profile "
         "repository");

  std::vector<ProfileData> Shards;
  Shards.reserve(EngineShards);
  for (size_t I = 0; I != EngineShards; ++I)
    Shards.push_back(makeShard(0xACE0 + I));
  size_t TotalArcs = 0;
  for (const ProfileData &S : Shards)
    TotalArcs += S.Arcs.size();
  std::printf("\nengine: %zu shards, %zu arc records total\n\n",
              Shards.size(), TotalArcs);

  row({"engine", "threads", "ms", "speedup vs fold"}, 16);

  BenchJson Json("store_merge");
  Json.set("engine_shards", uint64_t(EngineShards));
  Json.set("smoke", Smoke);

  // Baseline: the pre-store sequential fold (what readAndSumGmonFiles
  // does), quadratic in the merged arc table.
  ProfileData Fold;
  double FoldMs = timeMs([&] {
    Fold = Shards.front();
    for (size_t I = 1; I != Shards.size(); ++I)
      cantFail(Fold.merge(Shards[I]));
  });
  canonicalizeProfile(Fold);
  std::vector<uint8_t> Reference = writeGmon(Fold);
  row({"sequential fold", "1", format("%.2f", FoldMs), "1.00x"}, 16);
  Json.set("fold_ms", FoldMs);

  bool Identical = true;
  double KWay1Ms = 0.0, BestParallelMs = 1e300;
  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    ThreadPool Pool(Threads);
    ProfileData Merged;
    double Ms = timeMs([&] {
      Merged = cantFail(mergeProfiles(Shards, &Pool));
    });
    Identical = Identical && writeGmon(Merged) == Reference;
    if (Threads == 1)
      KWay1Ms = Ms;
    else if (Ms < BestParallelMs)
      BestParallelMs = Ms;
    row({"k-way tree", format("%u", Threads), format("%.2f", Ms),
         format("%.2fx", FoldMs / Ms)},
        16);
    Json.beginRow();
    Json.setRow("section", std::string("engine"));
    Json.setRow("threads", uint64_t(Threads));
    Json.setRow("ms", Ms);
  }

  std::printf("\ncompaction: fanout 8, cold report before vs after\n\n");
  row({"shards", "flat ms", "compact ms", "report ms", "inputs", "runs"},
      12);
  bool CompactIdentical = true, CompactBounded = true;
  for (size_t N : StoreSizes) {
    CompactionRound R = runCompactionRound(N);
    CompactIdentical = CompactIdentical && R.Identical;
    CompactBounded = CompactBounded && R.InputsCompacted <= 16;
    row({format("%zu", R.Shards), format("%.2f", R.FlatMs),
         format("%.2f", R.CompactMs), format("%.2f", R.ReportMs),
         format("%zu -> %zu", R.InputsFlat, R.InputsCompacted),
         format("%zu", R.RunsUsed)},
        12);
    Json.beginRow();
    Json.setRow("section", std::string("compaction"));
    Json.setRow("shards", uint64_t(R.Shards));
    Json.setRow("flat_report_ms", R.FlatMs);
    Json.setRow("compact_ms", R.CompactMs);
    Json.setRow("compacted_report_ms", R.ReportMs);
    Json.setRow("inputs_flat", uint64_t(R.InputsFlat));
    Json.setRow("inputs_compacted", uint64_t(R.InputsCompacted));
    Json.setRow("runs_used", uint64_t(R.RunsUsed));
    Json.setRow("folds", uint64_t(R.Folds));
  }

  std::printf("\nchecks:\n");
  bool Ok = true;
  Ok &= check(Identical,
              "every engine and thread count produces byte-identical gmon "
              "output");
  if (!Smoke) {
    Ok &= check(KWay1Ms < FoldMs,
                "the k-way merge beats the quadratic sequential fold");
    Ok &= check(BestParallelMs <= KWay1Ms * 1.10,
                "parallel workers do not lose to single-threaded k-way "
                "(within 10% even on one core)");
  }
  Ok &= check(CompactIdentical,
              "the compacted report is byte-identical to the flat merge at "
              "every store size");
  Ok &= check(CompactBounded,
              "after compaction a full report merges at most 16 inputs");
  Json.set("kway1_ms", KWay1Ms);
  Json.set("best_parallel_ms", BestParallelMs);
  Json.write();
  return Ok ? 0 : 1;
}
