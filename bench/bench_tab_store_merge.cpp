//===- bench/bench_tab_store_merge.cpp - Store merge throughput -----------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the profile store's aggregation engine over a fleet-sized shard
/// set: 256 synthetic gmon shards merged by (a) the historical sequential
/// fold (ProfileData::merge, linear-scan addArc), and (b) the parallel
/// k-way merge tree at 1/2/4/8 workers.  Checks that every configuration
/// produces byte-identical output — the determinism contract that makes
/// the store's aggregate cache sound — and that the k-way engine beats the
/// quadratic fold.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "gmon/GmonFile.h"
#include "store/MergeEngine.h"
#include "support/Random.h"
#include "support/ThreadPool.h"

#include <cstdio>

using namespace gprof;
using namespace gprof::bench;

namespace {

constexpr size_t NumShards = 256;

/// One synthetic shard: common geometry, seed-dependent samples and arcs.
/// Arc keys are drawn from a pool large enough that shards overlap only
/// partially, like profiles of different request mixes.
ProfileData makeShard(uint64_t Seed) {
  SplitMix64 Rng(Seed);
  ProfileData D;
  D.TicksPerSecond = 60;
  D.Hist = Histogram(0x1000, 0x11000, 4);
  for (int I = 0; I != 512; ++I)
    D.Hist.recordPc(0x1000 + Rng.nextBelow(0x10000));
  for (int I = 0; I != 400; ++I)
    D.addArc(0x1000 + Rng.nextBelow(2048) * 16,
             0x1000 + Rng.nextBelow(256) * 256, 1 + Rng.nextBelow(50));
  canonicalizeProfile(D);
  return D;
}

} // namespace

int main() {
  banner("T-store (new)",
         "parallel k-way merge over a 256-shard profile repository");

  std::vector<ProfileData> Shards;
  Shards.reserve(NumShards);
  for (size_t I = 0; I != NumShards; ++I)
    Shards.push_back(makeShard(0xACE0 + I));
  size_t TotalArcs = 0;
  for (const ProfileData &S : Shards)
    TotalArcs += S.Arcs.size();
  std::printf("\n%zu shards, %zu arc records total\n\n", Shards.size(),
              TotalArcs);

  row({"engine", "threads", "ms", "speedup vs fold"}, 16);

  // Baseline: the pre-store sequential fold (what readAndSumGmonFiles
  // does), quadratic in the merged arc table.
  ProfileData Fold;
  double FoldMs = timeMs([&] {
    Fold = Shards.front();
    for (size_t I = 1; I != Shards.size(); ++I)
      cantFail(Fold.merge(Shards[I]));
  });
  canonicalizeProfile(Fold);
  std::vector<uint8_t> Reference = writeGmon(Fold);
  row({"sequential fold", "1", format("%.2f", FoldMs), "1.00x"}, 16);

  bool Identical = true;
  double KWay1Ms = 0.0, BestParallelMs = 1e300;
  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    ThreadPool Pool(Threads);
    ProfileData Merged;
    double Ms = timeMs([&] {
      Merged = cantFail(mergeProfiles(Shards, &Pool));
    });
    Identical = Identical && writeGmon(Merged) == Reference;
    if (Threads == 1)
      KWay1Ms = Ms;
    else if (Ms < BestParallelMs)
      BestParallelMs = Ms;
    row({"k-way tree", format("%u", Threads), format("%.2f", Ms),
         format("%.2fx", FoldMs / Ms)},
        16);
  }

  std::printf("\nchecks:\n");
  bool Ok = true;
  Ok &= check(Identical,
              "every engine and thread count produces byte-identical gmon "
              "output");
  Ok &= check(KWay1Ms < FoldMs,
              "the k-way merge beats the quadratic sequential fold");
  Ok &= check(BestParallelMs <= KWay1Ms * 1.10,
              "parallel workers do not lose to single-threaded k-way "
              "(within 10% even on one core)");
  return Ok ? 0 : 1;
}
