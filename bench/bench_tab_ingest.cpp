//===- bench/bench_tab_ingest.cpp - Daemon ingest throughput --------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the continuous-profiling daemon's ingest path end to end:
/// clients connect to a live `gprof-store serve` instance over its UNIX
/// socket and push distinct gmon shards, at 1, 4, and 16 concurrent
/// clients.  Reports sustained shards/sec and the p50/p95 per-push
/// latency, and checks the correctness contract that throughput must not
/// bend: every pushed shard lands in the store exactly once regardless of
/// client count (docs/SERVE.md).
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "gmon/GmonFile.h"
#include "serve/Client.h"
#include "serve/Server.h"
#include "store/ProfileStore.h"
#include "support/Random.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace gprof;
using namespace gprof::bench;

namespace {

/// One synthetic shard: common geometry, seed-dependent samples and arcs,
/// serialized to the gmon container bytes a pusher would upload.
std::vector<uint8_t> makeShardBytes(uint64_t Seed) {
  SplitMix64 Rng(Seed);
  ProfileData D;
  D.TicksPerSecond = 60;
  D.Hist = Histogram(0x1000, 0x11000, 4);
  for (int I = 0; I != 512; ++I)
    D.Hist.recordPc(0x1000 + Rng.nextBelow(0x10000));
  for (int I = 0; I != 400; ++I)
    D.addArc(0x1000 + Rng.nextBelow(2048) * 16,
             0x1000 + Rng.nextBelow(256) * 256, 1 + Rng.nextBelow(50));
  return writeGmon(D);
}

/// Nearest-rank (ceiling) percentile — the same order statistic
/// HistogramSnapshot::percentile selects, so the daemon/client agreement
/// check compares like with like: per request the daemon's handling
/// interval is a subset of the client's round trip, and pairwise
/// dominance carries over to matched order statistics.
double percentile(std::vector<double> Sorted, double Q) {
  if (Sorted.empty())
    return 0.0;
  size_t Rank = static_cast<size_t>(std::ceil(Q * double(Sorted.size())));
  Rank = std::max<size_t>(Rank, 1);
  return Sorted[std::min(Rank - 1, Sorted.size() - 1)];
}

struct RoundResult {
  double ShardsPerSec = 0.0;
  double P50Ms = 0.0;
  double P95Ms = 0.0;
  /// Daemon-side request handling latency, from the
  /// serve.request.latency.put_shard histogram (bucket upper bounds, so
  /// quantized up by at most 2x).
  double DaemonP50Ms = 0.0;
  double DaemonP95Ms = 0.0;
  uint64_t DaemonCount = 0;
  size_t StoredShards = 0;
  bool AllSucceeded = false;
};

/// One measured round: \p Clients concurrent pushers splitting \p Pushes
/// distinct shards over a fresh daemon + store.
RoundResult runRound(unsigned Clients, size_t Pushes,
                     const std::vector<std::vector<uint8_t>> &Shards) {
  std::string Tag = format("ingest_%d_c%u", getpid(), Clients);
  std::string StoreRoot = std::filesystem::temp_directory_path().string() +
                          "/gprof_bench_" + Tag;
  std::string SocketPath = StoreRoot + ".sock";
  std::filesystem::remove_all(StoreRoot);

  // The daemon is in-process, so the telemetry registry is shared with
  // previous rounds; zero it so the latency histogram covers only this
  // round's pushes.
  telemetry::Registry::instance().resetValues();

  serve::ServeOptions SO;
  SO.Workers = 8;
  SO.MaxQueuedConnections = 16;
  auto Server = serve::ServeServer::create(StoreRoot, SocketPath, SO);
  if (!Server) {
    std::printf("  (daemon failed to start: %s)\n",
                Server.message().c_str());
    return {};
  }
  cantFail((*Server)->start());

  std::mutex LatencyMutex;
  std::vector<double> Latencies;
  std::atomic<unsigned> Failures{0};
  auto WallStart = std::chrono::steady_clock::now();
  std::vector<std::thread> Threads;
  for (unsigned C = 0; C != Clients; ++C)
    Threads.emplace_back([&, C] {
      serve::ServeClient Client(SocketPath);
      std::vector<double> Mine;
      for (size_t I = C; I < Pushes; I += Clients) {
        auto Start = std::chrono::steady_clock::now();
        auto Digest = Client.putShard(Shards[I]);
        auto End = std::chrono::steady_clock::now();
        if (!Digest) {
          (void)Digest.takeError();
          Failures.fetch_add(1);
          continue;
        }
        Mine.push_back(
            std::chrono::duration<double, std::milli>(End - Start).count());
      }
      std::lock_guard<std::mutex> Lock(LatencyMutex);
      Latencies.insert(Latencies.end(), Mine.begin(), Mine.end());
    });
  for (std::thread &T : Threads)
    T.join();
  double WallMs = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - WallStart)
                      .count();
  (*Server)->stop();

  RoundResult R;
  R.AllSucceeded = Failures.load() == 0;
  R.StoredShards = (*Server)->store().shards().size();
  R.ShardsPerSec = WallMs > 0 ? double(Latencies.size()) * 1000.0 / WallMs
                              : 0.0;
  std::sort(Latencies.begin(), Latencies.end());
  R.P50Ms = percentile(Latencies, 0.50);
  R.P95Ms = percentile(Latencies, 0.95);

  // The daemon's own view of the same requests, minus socket transport
  // and client-side framing.
  telemetry::HistogramSnapshot Daemon =
      telemetry::histogram("serve.request.latency.put_shard").snapshot();
  R.DaemonCount = Daemon.count();
  R.DaemonP50Ms = double(Daemon.percentile(0.50)) / 1e6;
  R.DaemonP95Ms = double(Daemon.percentile(0.95)) / 1e6;

  std::filesystem::remove_all(StoreRoot);
  return R;
}

} // namespace

int main(int Argc, char **Argv) {
  // --smoke: one small round per client count, for the ctest hook that
  // keeps this bench and its JSON emission from rotting.
  bool Smoke = Argc > 1 && std::strcmp(Argv[1], "--smoke") == 0;
  const size_t Pushes = Smoke ? 12 : 96;

  banner("T-ingest (new)",
         "continuous-profiling daemon ingest: concurrent clients pushing "
         "shards over the serve socket");

  std::vector<std::vector<uint8_t>> Shards;
  Shards.reserve(Pushes);
  size_t TotalBytes = 0;
  for (size_t I = 0; I != Pushes; ++I) {
    Shards.push_back(makeShardBytes(0xFEED + I));
    TotalBytes += Shards.back().size();
  }
  std::printf("\n%zu distinct shards, %zu bytes total, daemon at 8 "
              "workers\n\n",
              Shards.size(), TotalBytes);

  row({"clients", "shards/sec", "p50 ms", "p95 ms", "daemon p50", "daemon p95",
       "stored"},
      12);

  BenchJson Json("ingest");
  Json.set("shards", uint64_t(Pushes));
  Json.set("workers", uint64_t(8));
  Json.set("smoke", Smoke);

  bool AllStored = true, AllSucceeded = true;
  bool DaemonCounted = true, DaemonAgrees = true;
  double SoloRate = 0.0, BestRate = 0.0;
  for (unsigned Clients : {1u, 4u, 16u}) {
    RoundResult R = runRound(Clients, Pushes, Shards);
    AllStored = AllStored && R.StoredShards == Pushes;
    AllSucceeded = AllSucceeded && R.AllSucceeded;
    if (Clients == 1)
      SoloRate = R.ShardsPerSec;
    BestRate = std::max(BestRate, R.ShardsPerSec);
    // One-sided agreement: daemon handling is a strict subset of the
    // client round-trip, and log-2 bucket upper bounds inflate the
    // daemon's quantiles by at most 2x, so daemon <= 2x client (+eps
    // for sub-bucket jitter) must hold; the other direction need not.
    DaemonCounted = DaemonCounted && R.DaemonCount == Pushes;
    DaemonAgrees = DaemonAgrees && R.DaemonP50Ms <= 2.0 * R.P50Ms + 0.5 &&
                   R.DaemonP95Ms <= 2.0 * R.P95Ms + 0.5;
    row({format("%u", Clients), format("%.0f", R.ShardsPerSec),
         format("%.2f", R.P50Ms), format("%.2f", R.P95Ms),
         format("%.2f", R.DaemonP50Ms), format("%.2f", R.DaemonP95Ms),
         format("%zu", R.StoredShards)},
        12);
    Json.beginRow();
    Json.setRow("clients", uint64_t(Clients));
    Json.setRow("shards_per_sec", R.ShardsPerSec);
    Json.setRow("p50_ms", R.P50Ms);
    Json.setRow("p95_ms", R.P95Ms);
    Json.setRow("daemon_p50_ms", R.DaemonP50Ms);
    Json.setRow("daemon_p95_ms", R.DaemonP95Ms);
    Json.setRow("daemon_count", R.DaemonCount);
    Json.setRow("stored_shards", uint64_t(R.StoredShards));
  }

  std::printf("\nchecks:\n");
  bool Ok = true;
  Ok &= check(AllSucceeded, "every push was acknowledged with a digest");
  Ok &= check(AllStored,
              "every distinct shard landed in the store exactly once at "
              "every client count");
  Ok &= check(SoloRate > 0.0 && BestRate > 0.0,
              "the daemon sustained nonzero ingest throughput");
  Ok &= check(DaemonCounted,
              "the daemon-side latency histogram counted every push");
  Ok &= check(DaemonAgrees,
              "daemon-side p50/p95 agree with the client view (within the "
              "2x histogram bucket bound)");
  Json.set("solo_shards_per_sec", SoloRate);
  Json.set("best_shards_per_sec", BestRate);
  Json.write();
  return Ok ? 0 : 1;
}
