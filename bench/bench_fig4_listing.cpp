//===- bench/bench_fig4_listing.cpp - E3: regenerate paper Figure 4 -------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 4 is the paper's worked call-graph-profile entry for the routine
/// EXAMPLE: two callers (4/10 and 6/10 of its calls), four self-recursive
/// calls, a child inside cycle 1 receiving 20 of the cycle's 40 external
/// calls, a child SUB2 called once out of 5, and a never-traversed static
/// arc to SUB3.  This bench constructs a profile realizing exactly those
/// counts and times, runs the full analysis pipeline, prints the entry our
/// printer produces, and checks every number the paper publishes:
///
///        self  descendants  called/total   name
///        0.20       1.20        4/10       CALLER1
///        0.30       1.80        6/10       CALLER2
///  41.5  0.50       3.00       10+4        EXAMPLE
///        1.50       1.00       20/40       SUB1 <cycle1>
///        0.00       0.50        1/5        SUB2
///        0.00       0.00        0/5        SUB3
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "core/Analyzer.h"
#include "core/GraphPrinter.h"
#include "core/SyntheticProfile.h"

#include <cmath>
#include <cstdio>

using namespace gprof;
using namespace gprof::bench;

namespace {

bool near(double A, double B) { return std::fabs(A - B) < 5e-3; }

const ReportArc *arcOf(const ProfileReport &R, const std::string &P,
                       const std::string &C) {
  uint32_t PI = R.findFunction(P);
  uint32_t CI = R.findFunction(C);
  for (const ReportArc &A : R.Arcs)
    if (A.Parent == PI && A.Child == CI)
      return &A;
  return nullptr;
}

} // namespace

int main() {
  banner("E3 (Figure 4)", "the call graph profile entry for EXAMPLE");

  SyntheticProfileBuilder B(/*TicksPerSecond=*/100);
  uint32_t Caller1 = B.addFunction("CALLER1");
  uint32_t Caller2 = B.addFunction("CALLER2");
  uint32_t Example = B.addFunction("EXAMPLE");
  uint32_t Sub1 = B.addFunction("SUB1");
  uint32_t CycMate = B.addFunction("CYCMATE");
  uint32_t Sub2 = B.addFunction("SUB2");
  uint32_t Sub3 = B.addFunction("SUB3");
  uint32_t Other = B.addFunction("OTHER");
  uint32_t LeafC = B.addFunction("CYCLE_LEAF");
  uint32_t Leaf2 = B.addFunction("SUB2_LEAF");

  // Activations from outside the measured program.
  B.addSpontaneous(Caller1);
  B.addSpontaneous(Caller2);
  B.addSpontaneous(Other);

  // "EXAMPLE is called ten times, four times by CALLER1, and six times by
  // CALLER2 ... EXAMPLE calls itself recursively four times."
  B.addCall(Caller1, Example, 4);
  B.addCall(Caller2, Example, 6);
  B.addCall(Example, Example, 4);

  // "EXAMPLE calls routine SUB1 twenty times"; cycle 1 = {SUB1, CYCMATE}
  // "is called a total of forty times (not counting calls among the
  // members of the cycle)" — the other twenty arrive via OTHER.
  B.addCall(Example, Sub1, 20);
  B.addCall(Other, CycMate, 20);
  B.addCall(Sub1, CycMate, 9); // Intra-cycle traffic, listed only.
  B.addCall(CycMate, Sub1, 8);
  B.addCall(Sub1, LeafC, 10); // The cycle's external descendant.

  // "SUB2 [is called] once ... Since SUB2 is called a total of five
  // times, 20% of its self and descendant time is propagated."
  B.addCall(Example, Sub2, 1);
  B.addCall(Other, Sub2, 4);
  B.addCall(Sub2, Leaf2, 5);

  // "... and never calls SUB3" — the arc is statically apparent only;
  // SUB3's five calls come from elsewhere.
  B.addStaticArc(Example, Sub3);
  B.addCall(Other, Sub3, 5);

  // Self times chosen to reproduce the figure: EXAMPLE 0.50s; cycle self
  // 3.00s; cycle descendants 2.00s; SUB2 self 0, descendants 2.50s; OTHER
  // absorbs 0.43s so that EXAMPLE's share of total time prints as 41.5%.
  B.setSelfSeconds(Example, 0.50);
  B.setSelfSeconds(Sub1, 2.00);
  B.setSelfSeconds(CycMate, 1.00);
  B.setSelfSeconds(LeafC, 2.00);
  B.setSelfSeconds(Leaf2, 2.50);
  B.setSelfSeconds(Other, 0.43);

  auto In = B.build();
  AnalyzerOptions Opts;
  Opts.UseStaticArcs = true;
  Analyzer An(std::move(In.Syms), Opts);
  An.setStaticArcs(In.StaticArcs);
  ProfileReport R = cantFail(An.analyze(In.Data));

  std::printf("\nour generated entry for EXAMPLE:\n\n%s\n",
              printCallGraphEntry(R, "EXAMPLE").c_str());

  const FunctionEntry &E = R.Functions[R.findFunction("EXAMPLE")];
  const ReportArc *C1 = arcOf(R, "CALLER1", "EXAMPLE");
  const ReportArc *C2 = arcOf(R, "CALLER2", "EXAMPLE");
  const ReportArc *S1 = arcOf(R, "EXAMPLE", "SUB1");
  const ReportArc *S2 = arcOf(R, "EXAMPLE", "SUB2");
  const ReportArc *S3 = arcOf(R, "EXAMPLE", "SUB3");

  std::printf("paper Figure 4 vs generated values:\n");
  row({"field", "paper", "ours"});
  double Pct = 100.0 * E.totalTime() / R.TotalTime;
  row({"%time", "41.5", formatFixed(Pct, 1)});
  row({"self", "0.50", formatFixed(E.SelfTime, 2)});
  row({"descendants", "3.00", formatFixed(E.ChildTime, 2)});
  row({"called+self", "10+4",
       format("%llu+%llu", (unsigned long long)E.Calls,
              (unsigned long long)E.SelfCalls)});
  row({"CALLER1 row", "0.20 1.20 4/10",
       format("%.2f %.2f %llu/10", C1->PropSelf, C1->PropChild,
              (unsigned long long)C1->Count)});
  row({"CALLER2 row", "0.30 1.80 6/10",
       format("%.2f %.2f %llu/10", C2->PropSelf, C2->PropChild,
              (unsigned long long)C2->Count)});
  row({"SUB1 row", "1.50 1.00 20/40",
       format("%.2f %.2f %llu/40", S1->PropSelf, S1->PropChild,
              (unsigned long long)S1->Count)});
  row({"SUB2 row", "0.00 0.50 1/5",
       format("%.2f %.2f %llu/5", S2->PropSelf, S2->PropChild,
              (unsigned long long)S2->Count)});
  row({"SUB3 row", "0.00 0.00 0/5",
       format("%.2f %.2f %llu/5", S3->PropSelf, S3->PropChild,
              (unsigned long long)S3->Count)});

  std::printf("\nchecks against the paper:\n");
  bool Ok = true;
  Ok &= check(formatFixed(Pct, 1) == "41.5", "%time prints as 41.5");
  Ok &= check(near(E.SelfTime, 0.50) && near(E.ChildTime, 3.00),
              "EXAMPLE: self 0.50, descendants 3.00");
  Ok &= check(E.Calls == 10 && E.SelfCalls == 4, "called+self is 10+4");
  Ok &= check(C1 && near(C1->PropSelf, 0.20) && near(C1->PropChild, 1.20) &&
                  C1->Count == 4,
              "CALLER1 receives 0.20/1.20 via 4/10 calls (40%)");
  Ok &= check(C2 && near(C2->PropSelf, 0.30) && near(C2->PropChild, 1.80) &&
                  C2->Count == 6,
              "CALLER2 receives 0.30/1.80 via 6/10 calls (60%)");
  Ok &= check(S1 && near(S1->PropSelf, 1.50) && near(S1->PropChild, 1.00) &&
                  S1->Count == 20,
              "SUB1 <cycle1> contributes 1.50/1.00 via 20/40 calls "
              "(50% of the whole cycle's time)");
  Ok &= check(R.Cycles.size() == 1 && R.Cycles[0].ExternalCalls == 40,
              "cycle 1 is called a total of forty times");
  Ok &= check(S2 && near(S2->PropSelf, 0.00) && near(S2->PropChild, 0.50),
              "SUB2 contributes 0.00/0.50 via 1/5 calls (20%)");
  Ok &= check(S3 && S3->Static && S3->Count == 0 && S3->PropSelf == 0.0 &&
                  S3->PropChild == 0.0,
              "SUB3's arc is static with count 0/5 and no propagation");
  return Ok ? 0 : 1;
}
