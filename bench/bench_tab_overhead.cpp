//===- bench/bench_tab_overhead.cpp - E4: the 5-30% overhead claim --------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Paper §7: profiling "adds only five to thirty percent execution
/// overhead to the program being profiled".  This bench runs a workload
/// suite three ways — uninstrumented, histogram sampling only, and full
/// profiling (mcount arcs + histogram) — and reports the overhead in two
/// currencies:
///
///  - virtual cycles (deterministic; the Mcount prologue costs cycles just
///    as the real monitoring routine cost VAX instructions), and
///  - host wall-clock time of the interpreter (the monitoring routine and
///    tick handling do real hash-table and histogram work).
///
/// The claims checked: call-dominated code sits near the top of the band,
/// loop-dominated code near the bottom, and sampling alone is nearly free
/// ("incrementing the appropriate bucket ... had an almost negligible
/// overhead", retrospective).
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "runtime/Monitor.h"
#include "vm/CodeGen.h"
#include "vm/VM.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

using namespace gprof;
using namespace gprof::bench;

namespace {

struct Workload {
  const char *Name;
  const char *Source;
};

const Workload Workloads[] = {
    {"fib (call-heavy)", R"(
      fn fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
      fn main() { return fib(21); }
    )"},
    {"loop (compute)", R"(
      fn main() {
        var acc = 0;
        var i = 0;
        while (i < 300000) { acc = acc + i * 3 - (i / 7); i = i + 1; }
        return acc;
      }
    )"},
    {"calls (tiny leaf)", R"(
      fn leaf(x) { return x + 1; }
      fn main() {
        var acc = 0;
        var i = 0;
        while (i < 100000) { acc = leaf(acc); i = i + 1; }
        return acc;
      }
    )"},
    {"layers (abstraction)", R"(
      fn level3(x) { return x * 2 + 1; }
      fn level2(x) { return level3(x) + level3(x + 1); }
      fn level1(x) { return level2(x) + level2(x + 2); }
      fn main() {
        var acc = 0;
        var i = 0;
        while (i < 20000) { acc = acc + level1(i); i = i + 1; }
        return acc;
      }
    )"},
    {"divides (slow ops)", R"(
      fn ratio(a, b) { return (a * 1000) / (b + 1); }
      fn main() {
        var acc = 0;
        var i = 1;
        while (i < 50000) { acc = acc + ratio(acc % 97, i); i = i + 1; }
        return acc;
      }
    )"},
};

struct Measurement {
  uint64_t Cycles = 0;
  double WallMs = 0.0;
  int64_t ExitValue = 0;
};

/// Runs \p Img with optional monitoring and measures it.
Measurement measure(const Image &Img, bool WithMonitor, bool Arcs,
                    bool Hist) {
  Measurement M;
  auto Once = [&]() {
    VM Machine(Img);
    std::unique_ptr<Monitor> Mon;
    if (WithMonitor) {
      MonitorOptions MO;
      MO.RecordArcs = Arcs;
      MO.SampleHistogram = Hist;
      Mon = std::make_unique<Monitor>(Img.lowPc(), Img.highPc(), MO);
      Machine.setHooks(Mon.get());
    }
    RunResult R = cantFail(Machine.run());
    M.Cycles = R.Cycles;
    M.ExitValue = R.ExitValue;
  };
  M.WallMs = timeMs(Once, /*Reps=*/3);
  return M;
}

std::string pct(double Base, double Measured) {
  return formatFixed(100.0 * (Measured - Base) / Base, 1) + "%";
}

} // namespace

int main() {
  banner("E4 (section 7 claim)",
         "\"adds only five to thirty percent execution overhead\"");

  std::printf("\n");
  row({"workload", "base cyc", "hist cyc ovh", "full cyc ovh", "base ms",
       "hist ms ovh", "full ms ovh"},
      14);

  double MaxFullCycleOvh = 0.0;
  double MinFullCycleOvhCallHeavy = 1e9;
  bool ResultsMatch = true;
  double LoopFullCycleOvh = 0.0;

  for (const Workload &W : Workloads) {
    Image Plain = compileTLOrDie(W.Source);
    CodeGenOptions CG;
    CG.EnableProfiling = true;
    Image Profiled = compileTLOrDie(W.Source, CG);

    Measurement Base = measure(Plain, false, false, false);
    Measurement Hist = measure(Profiled, true, /*Arcs=*/false,
                               /*Hist=*/true);
    Measurement Full = measure(Profiled, true, /*Arcs=*/true,
                               /*Hist=*/true);

    ResultsMatch &= Base.ExitValue == Hist.ExitValue &&
                    Base.ExitValue == Full.ExitValue;

    double FullCycleOvh =
        100.0 * (static_cast<double>(Full.Cycles) - Base.Cycles) /
        Base.Cycles;
    MaxFullCycleOvh = std::max(MaxFullCycleOvh, FullCycleOvh);
    if (std::string(W.Name).find("call") != std::string::npos)
      MinFullCycleOvhCallHeavy =
          std::min(MinFullCycleOvhCallHeavy, FullCycleOvh);
    if (std::string(W.Name).find("loop") != std::string::npos)
      LoopFullCycleOvh = FullCycleOvh;

    row({W.Name, format("%llu", (unsigned long long)Base.Cycles),
         pct(Base.Cycles, Hist.Cycles), pct(Base.Cycles, Full.Cycles),
         formatFixed(Base.WallMs, 2), pct(Base.WallMs, Hist.WallMs),
         pct(Base.WallMs, Full.WallMs)},
        14);
  }

  std::printf("\nchecks against the paper:\n");
  bool Ok = true;
  Ok &= check(ResultsMatch,
              "profiling never changes program results");
  Ok &= check(MaxFullCycleOvh <= 35.0,
              "full profiling overhead stays within ~the 5-30%% band "
              "(<=35%% even for the call-heaviest microworkload)");
  Ok &= check(MinFullCycleOvhCallHeavy >= 5.0,
              "call-heavy code pays at least the bottom of the band (>=5%%)");
  Ok &= check(LoopFullCycleOvh < 5.0,
              "loop-dominated code pays almost nothing (routines not "
              "entered are not charged)");
  return Ok ? 0 : 1;
}
