//===- bench/bench_tab_postprocess_scale.cpp - E10: analysis scalability --===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Paper §4: after topological numbering, "execution time can be
/// propagated from descendants to ancestors after a single traversal of
/// each arc in the call graph".  This bench measures the full analysis
/// pipeline (symbolize, Tarjan, collapse, propagate, order) across graph
/// sizes and compares it against:
///
///  - a naive fixpoint baseline that repeatedly sweeps all arcs until the
///    time assignment converges (what you get without the topological
///    ordering insight), and
///  - the prof(1) flat-only baseline (no propagation at all), which
///    bounds the cost gprof adds over its predecessor.
///
/// A second section measures the parallel pipeline: wall time of the
/// same analysis at 1/2/4/8 worker threads over a cycle-rich synthetic
/// profile, asserting the listings stay byte-identical at every thread
/// count, and emits BENCH_postprocess_scale.json (threads → ms, speedup)
/// for the perf-tracking tooling.  Run with --smoke for a single
/// quick iteration (the ctest smoke target).
///
/// A third section guards the read-path overhaul (docs/READPATH.md): it
/// times the flat-resolver symbolize phase against a bench-local replica
/// of the pre-overhaul path (AoS upper_bound per endpoint, std::map
/// accumulation per arc) over a 100k-routine corpus, emits
/// symbolize_ns_per_record for both into the same JSON, and FAILs if the
/// speedup regresses below its floor — the same shape as the mcount-cost
/// guard, and run from ctest via the smoke target so it cannot rot.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "core/Analyzer.h"
#include "core/FlatPrinter.h"
#include "core/GraphPrinter.h"
#include "gmon/GmonFile.h"
#include "graph/Generators.h"
#include "prof/ProfBaseline.h"
#include "support/Random.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <thread>
#include <utility>
#include <vector>

using namespace gprof;
using namespace gprof::bench;

namespace {

constexpr Address Base = 0x10000;
constexpr uint64_t FuncSize = 64;

/// Realizes a random DAG as analyzer inputs without quadratic arc
/// deduplication (arcs from the generator are already unique).
void realize(const CallGraph &G, uint64_t Seed, SymbolTable &Syms,
             ProfileData &Data) {
  SplitMix64 Rng(Seed);
  for (NodeId N = 0; N != G.numNodes(); ++N)
    Syms.addSymbol(G.nodeName(N), Base + N * FuncSize, FuncSize);
  cantFail(Syms.finalize());

  Data.TicksPerSecond = 60;
  for (ArcId A = 0; A != G.numArcs(); ++A) {
    const Arc &E = G.arc(A);
    Data.Arcs.push_back({Base + E.From * FuncSize + 10,
                         Base + E.To * FuncSize, E.Count});
  }
  for (NodeId N = 0; N != G.numNodes(); ++N)
    if (G.inArcs(N).empty())
      Data.Arcs.push_back({0, Base + N * FuncSize, 1});

  Histogram H(Base, Base + G.numNodes() * FuncSize, FuncSize);
  for (NodeId N = 0; N != G.numNodes(); ++N) {
    uint64_t Samples = Rng.nextBelow(20);
    for (uint64_t S = 0; S != Samples; ++S)
      H.recordPc(Base + N * FuncSize + 1);
  }
  Data.Hist = std::move(H);
}

/// The strawman: iterate T = S + sum(frac * T_child) until convergence.
/// Returns the number of full arc sweeps needed.
unsigned naiveFixpoint(const CallGraph &G, const ProfileReport &Seeded,
                       std::vector<double> &TotalOut) {
  size_t N = G.numNodes();
  std::vector<double> Self(N), Total(N);
  std::vector<uint64_t> Calls(N);
  for (size_t I = 0; I != N; ++I) {
    Self[I] = Seeded.Functions[I].SelfTime;
    Total[I] = Self[I];
    Calls[I] = Seeded.Functions[I].Calls;
  }
  unsigned Sweeps = 0;
  while (true) {
    ++Sweeps;
    double MaxDelta = 0.0;
    std::vector<double> Next = Self;
    for (ArcId A = 0; A != G.numArcs(); ++A) {
      const Arc &E = G.arc(A);
      if (Calls[E.To] == 0)
        continue;
      Next[E.From] += Total[E.To] * static_cast<double>(E.Count) /
                      static_cast<double>(Calls[E.To]);
    }
    for (size_t I = 0; I != N; ++I)
      MaxDelta = std::max(MaxDelta, std::fabs(Next[I] - Total[I]));
    Total.swap(Next);
    if (MaxDelta < 1e-9 || Sweeps > 10000)
      break;
  }
  TotalOut = Total;
  return Sweeps;
}

/// Builds the thread-scaling workload: a random DAG of \p N routines
/// plus rings of back arcs so the condensed graph has real multi-member
/// cycles to collapse and propagate through.
void makeScalingProfile(uint32_t N, SymbolTable &Syms, ProfileData &Data) {
  CallGraph G = makeRandomDag(N, N * 4, 50, /*Seed=*/N);
  realize(G, N + 1, Syms, Data);
  // Close a cycle over every 50th run of 2..18 consecutive routines.
  SplitMix64 Rng(N * 31 + 7);
  for (uint32_t Lo = 0; Lo + 20 < N; Lo += 50) {
    uint32_t Len = 2 + static_cast<uint32_t>(Rng.nextBelow(17));
    for (uint32_t I = 0; I != Len; ++I) {
      uint32_t From = Lo + I, To = Lo + (I + 1) % Len;
      Data.Arcs.push_back({Base + From * FuncSize + 11,
                           Base + To * FuncSize, 1 + Rng.nextBelow(9)});
    }
  }
}

/// The full listings a user would see; byte-compared across thread
/// counts.
std::string renderListings(const ProfileReport &R) {
  return printFlatProfile(R) + "\n" + printCallGraph(R);
}

/// Milliseconds spent in every span named \p Name.
double spanTotalMs(const std::vector<telemetry::SpanRecord> &Spans,
                   const char *Name) {
  uint64_t Ns = 0;
  for (const telemetry::SpanRecord &S : Spans)
    if (S.Name == Name)
      Ns += S.EndNs - S.BeginNs;
  return static_cast<double>(Ns) / 1e6;
}

/// Builds the symbolize-throughput corpus: \p N routines and \p Records
/// raw arc records landing on random call sites, with a few percent of
/// spontaneous callers and unknown callees mixed in so every branch of
/// the symbolize loop pays its real cost.
void makeSymbolizeCorpus(uint32_t N, size_t Records, SymbolTable &Syms,
                         ProfileData &Data) {
  for (uint32_t I = 0; I != N; ++I)
    Syms.addSymbol(format("fn%06u", I), Base + I * FuncSize, FuncSize);
  cantFail(Syms.finalize());

  const Address Hi = Base + static_cast<Address>(N) * FuncSize;
  SplitMix64 Rng(0x5EEDC0DE);
  Data.TicksPerSecond = 60;
  Data.Arcs.reserve(Records);
  for (size_t R = 0; R != Records; ++R) {
    const uint64_t Roll = Rng.nextBelow(100);
    const Address FromPc =
        Roll < 3 ? 0 // spontaneous: no routine contains PC 0
                 : Base + Rng.nextBelow(N) * FuncSize + 1 +
                       Rng.nextBelow(FuncSize - 1);
    const Address SelfPc = Roll >= 97
                               ? Hi + 0x100 + Rng.nextBelow(64) // unknown
                               : Base + Rng.nextBelow(N) * FuncSize;
    Data.Arcs.push_back({FromPc, SelfPc, 1 + Rng.nextBelow(8)});
  }
  Histogram H(Base, Hi, FuncSize);
  for (uint32_t I = 0; I < N; I += 3)
    H.recordPc(Base + I * FuncSize + 1);
  Data.Hist = std::move(H);
}

/// What both symbolize paths must agree on.
struct LegacySymbolizeResult {
  uint64_t FnArcs = 0;
  uint64_t UnknownCallee = 0;
};

/// Bench-local replica of the pre-overhaul symbolize path: an AoS
/// upper_bound over 40-byte Symbol objects for every arc endpoint and
/// node-based std::map accumulation per distinct arc — exactly the
/// per-probe cache misses and per-arc heap nodes the flat resolver and
/// the packed-key arena accumulator were built to remove
/// (docs/READPATH.md).  Kept here, not in the library, so the bench
/// always compares against the historical cost model even as the real
/// code moves on.
LegacySymbolizeResult legacySymbolize(const std::vector<Symbol> &AoS,
                                      const std::vector<ArcRecord> &Raw) {
  auto Find = [&](Address Pc) -> uint32_t {
    auto It = std::upper_bound(
        AoS.begin(), AoS.end(), Pc,
        [](Address P, const Symbol &S) { return P < S.Addr; });
    if (It == AoS.begin())
      return NoSymbol;
    const size_t I = static_cast<size_t>(It - AoS.begin()) - 1;
    return Pc < AoS[I].Addr + AoS[I].Size ? static_cast<uint32_t>(I)
                                          : NoSymbol;
  };
  std::map<std::pair<uint32_t, uint32_t>, uint64_t> Arcs;
  std::map<uint32_t, uint64_t> SelfCalls, Spontaneous;
  LegacySymbolizeResult Out;
  for (const ArcRecord &R : Raw) {
    const uint32_t Callee = Find(R.SelfPc);
    if (Callee == NoSymbol) {
      ++Out.UnknownCallee;
      continue;
    }
    const uint32_t Caller = Find(R.FromPc);
    if (Caller == NoSymbol)
      Spontaneous[Callee] += R.Count;
    else if (Caller == Callee)
      SelfCalls[Callee] += R.Count;
    else
      Arcs[{Caller, Callee}] += R.Count;
  }
  Out.FnArcs = Arcs.size();
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  const bool Smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const int Reps = Smoke ? 1 : 3;

  banner("E10 (section 4)",
         "single-traversal propagation vs naive fixpoint vs prof");

  std::printf("\n(gprof ms is the FULL pipeline: symbolize + Tarjan + "
              "collapse + propagate + sort;\n fixpoint ms is the "
              "propagation step alone, repeated until convergence — it "
              "traverses\n every arc 'sweeps' times where the topological "
              "method traverses each arc once)\n\n");
  row({"routines", "arcs", "gprof ms", "fixpoint ms", "sweeps", "prof ms",
       "agree"},
      12);

  bool Ok = true;
  double LastGprofMs = 0.0;

  std::vector<uint32_t> Sizes = {200u, 1000u, 5000u, 20000u, 50000u};
  if (Smoke)
    Sizes = {200u, 1000u};
  for (uint32_t N : Sizes) {
    CallGraph G = makeRandomDag(N, N * 4, 50, /*Seed=*/N);
    SymbolTable Syms;
    ProfileData Data;
    realize(G, N + 1, Syms, Data);

    Analyzer An(std::move(Syms));
    ProfileReport Report;
    double GprofMs =
        timeMs([&] { Report = cantFail(An.analyze(Data)); }, Reps);
    LastGprofMs = GprofMs;

    std::vector<double> NaiveTotal;
    unsigned Sweeps = 0;
    double NaiveMs =
        timeMs([&] { Sweeps = naiveFixpoint(G, Report, NaiveTotal); }, Reps);

    // prof flat-only baseline over the same inputs.
    SymbolTable ProfSyms;
    ProfileData ProfData;
    realize(G, N + 1, ProfSyms, ProfData);
    double ProfMs =
        timeMs([&] { (void)analyzeProf(ProfSyms, ProfData); }, Reps);

    // Cross-check: both propagation schemes compute the same totals.
    bool Agree = true;
    for (NodeId I = 0; I != G.numNodes(); ++I)
      Agree &= std::fabs(Report.Functions[I].totalTime() - NaiveTotal[I]) <
               1e-6 * (1.0 + NaiveTotal[I]);
    Ok &= Agree;

    row({format("%u", N), format("%zu", G.numArcs()),
         formatFixed(GprofMs, 1), formatFixed(NaiveMs, 1),
         format("%u", Sweeps), formatFixed(ProfMs, 1),
         Agree ? "yes" : "NO"},
        12);
  }

  //--- Parallel pipeline scaling (AnalyzerOptions::Threads). --------------
  const uint32_t ScaleN = 5000;
  SymbolTable ScaleSyms;
  ProfileData ScaleData;
  makeScalingProfile(ScaleN, ScaleSyms, ScaleData);
  const unsigned Cores = std::max(1u, std::thread::hardware_concurrency());

  std::printf("\nparallel pipeline over %u routines (%zu raw arcs, "
              "%u hardware threads):\n\n",
              ScaleN, ScaleData.Arcs.size(), Cores);
  row({"threads", "ms", "speedup", "symbolize", "assign", "propagate",
       "identical"},
      12);

  BenchJson Json("postprocess_scale");
  Json.set("routines", static_cast<uint64_t>(ScaleN));
  Json.set("raw_arcs", static_cast<uint64_t>(ScaleData.Arcs.size()));
  Json.set("hardware_concurrency", static_cast<uint64_t>(Cores));

  std::string Reference;
  double BaseMs = 0.0, Ms4 = 0.0;
  bool AllIdentical = true;
  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    AnalyzerOptions AO;
    AO.Threads = Threads;
    Analyzer An(ScaleSyms, AO);
    ProfileReport R;
    double Ms = timeMs([&] { R = cantFail(An.analyze(ScaleData)); }, Reps);
    std::string Listings = renderListings(R);
    if (Threads == 1) {
      Reference = std::move(Listings);
      BaseMs = Ms;
    } else {
      AllIdentical &= Listings == Reference;
    }
    if (Threads == 4)
      Ms4 = Ms;
    double Speedup = Ms > 0.0 ? BaseMs / Ms : 0.0;

    // One extra instrumented run per thread count: spans are enabled only
    // here, so the timed loop above measured the uninstrumented pipeline.
    telemetry::Registry &Reg = telemetry::Registry::instance();
    Reg.resetValues();
    Reg.enableSpans(true);
    (void)cantFail(An.analyze(ScaleData));
    Reg.enableSpans(false);
    std::vector<telemetry::SpanRecord> Spans = Reg.collectSpans();
    double SymbolizeMs = spanTotalMs(Spans, "analyzer.symbolize");
    double AssignMs = spanTotalMs(Spans, "analyzer.assign");
    double PropagateMs = spanTotalMs(Spans, "analyzer.propagate");

    row({format("%u", Threads), formatFixed(Ms, 1), formatFixed(Speedup, 2),
         formatFixed(SymbolizeMs, 1), formatFixed(AssignMs, 1),
         formatFixed(PropagateMs, 1),
         Threads == 1 ? "-" : (AllIdentical ? "yes" : "NO")},
        12);
    Json.beginRow();
    Json.setRow("threads", static_cast<uint64_t>(Threads));
    Json.setRow("ms", Ms);
    Json.setRow("speedup", Speedup);
    Json.setRow("symbolize_ms", SymbolizeMs);
    Json.setRow("assign_ms", AssignMs);
    Json.setRow("propagate_ms", PropagateMs);
  }
  Json.set("identical_listings", AllIdentical);

  //--- Symbolize throughput: flat resolver vs the pre-overhaul path. ------
  const uint32_t SymN = Smoke ? 20000u : 100000u;
  const size_t SymRecords = Smoke ? 200000u : 2000000u;
  SymbolTable SymSyms;
  ProfileData SymData;
  makeSymbolizeCorpus(SymN, SymRecords, SymSyms, SymData);

  std::printf("\nsymbolize throughput over %u routines, %zu raw records\n"
              "(legacy = AoS upper_bound + std::map accumulation, the "
              "pre-overhaul path):\n\n",
              SymN, SymData.Arcs.size());
  row({"path", "ms", "ns/record", "fn arcs"}, 14);

  std::vector<Symbol> AoS;
  AoS.reserve(SymSyms.size());
  for (uint32_t I = 0; I != SymSyms.size(); ++I)
    AoS.push_back(SymSyms.symbol(I));
  LegacySymbolizeResult Legacy;
  double LegacyMs =
      timeMs([&] { Legacy = legacySymbolize(AoS, SymData.Arcs); }, Reps);

  // The real path, read off the analyzer.symbolize span of a sequential
  // instrumented run (best of Reps, mirroring timeMs).
  telemetry::Registry &Reg = telemetry::Registry::instance();
  double FlatMs = 1e300;
  uint64_t FlatFnArcs = 0, FlatUnknown = 0;
  {
    AnalyzerOptions AO;
    AO.Threads = 1;
    Analyzer An(SymSyms, AO);
    for (int R = 0; R != Reps; ++R) {
      Reg.resetValues();
      Reg.enableSpans(true);
      (void)cantFail(An.analyze(SymData));
      Reg.enableSpans(false);
      FlatMs = std::min(FlatMs,
                        spanTotalMs(Reg.collectSpans(), "analyzer.symbolize"));
      FlatFnArcs = telemetry::counter("analyzer.symbolize.fn_arcs").value();
      FlatUnknown =
          telemetry::counter("analyzer.symbolize.unknown_callee").value();
    }
  }

  const double RecordCount = static_cast<double>(SymData.Arcs.size());
  const double LegacyNs = LegacyMs * 1e6 / RecordCount;
  const double FlatNs = FlatMs * 1e6 / RecordCount;
  const double SymSpeedup = FlatMs > 0.0 ? LegacyMs / FlatMs : 0.0;
  const bool SymAgree =
      Legacy.FnArcs == FlatFnArcs && Legacy.UnknownCallee == FlatUnknown;

  row({"legacy", formatFixed(LegacyMs, 1), formatFixed(LegacyNs, 1),
       format("%llu", static_cast<unsigned long long>(Legacy.FnArcs))},
      14);
  row({"flat", formatFixed(FlatMs, 1), formatFixed(FlatNs, 1),
       format("%llu", static_cast<unsigned long long>(FlatFnArcs))},
      14);
  std::printf("\n  symbolize speedup: %.1fx\n", SymSpeedup);

  Json.set("symbolize_routines", static_cast<uint64_t>(SymN));
  Json.set("symbolize_records",
           static_cast<uint64_t>(SymData.Arcs.size()));
  Json.set("symbolize_speedup", SymSpeedup);
  Json.beginRow();
  Json.setRow("mode", std::string("symbolize_legacy"));
  Json.setRow("symbolize_ns_per_record", LegacyNs);
  Json.beginRow();
  Json.setRow("mode", std::string("symbolize_flat"));
  Json.setRow("symbolize_ns_per_record", FlatNs);

  //--- Read path: zero-copy mmap parse vs the stream-copy reference. ------
  const std::string GmonPath = "bench_readpath_corpus.gmon";
  bool ReadersAgree = false;
  double MmapMs = 0.0, StreamMs = 0.0;
  if (Error E = writeGmonFile(GmonPath, SymData)) {
    std::printf("  (read-path section skipped: %s)\n", E.message().c_str());
  } else {
    ProfileData MmapRead, StreamRead;
    MmapMs = timeMs([&] { MmapRead = cantFail(readGmonFile(GmonPath)); },
                    Reps);
    StreamMs = timeMs(
        [&] {
          std::vector<uint8_t> Bytes = cantFail(readFileBytes(GmonPath));
          StreamRead = cantFail(readGmonReference(Bytes));
        },
        Reps);
    ReadersAgree = writeGmon(MmapRead) == writeGmon(StreamRead);
    std::remove(GmonPath.c_str());
    std::printf("\nread path over the same corpus on disk: mmap %.1f ms, "
                "stream+copy %.1f ms (%.2fx)\n",
                MmapMs, StreamMs, MmapMs > 0.0 ? StreamMs / MmapMs : 0.0);
    Json.set("read_mmap_ms", MmapMs);
    Json.set("read_stream_ms", StreamMs);
  }

  Json.write();

  std::printf("\nchecks against the paper:\n");
  Ok &= check(Ok, "single-pass totals equal the fixpoint totals");
  Ok &= check(LastGprofMs < 30000.0,
              "post-processing stays a fast separate pass even at 50k "
              "routines");
  Ok &= check(AllIdentical,
              "listings are byte-identical at 1/2/4/8 analysis threads");
  Ok &= check(SymAgree,
              "flat symbolize agrees with the legacy replica (fn arcs and "
              "unknown callees)");
  Ok &= check(ReadersAgree,
              "mmap read path reproduces the stream reference "
              "byte-for-byte");
  // The read-path overhaul's no-regression gate (same shape as the
  // mcount-cost guard): smoke runs get a relaxed floor because the corpus
  // is 10x smaller and ctest hosts are noisy; full runs must hold the
  // docs/READPATH.md claim.
  const double SymGate = Smoke ? 2.0 : 5.0;
  Ok &= check(SymSpeedup >= SymGate,
              format("flat symbolize is >= %.1fx the legacy path at %u "
                     "routines (measured %.1fx)",
                     SymGate, SymN, SymSpeedup));
  if (Cores >= 4 && !Smoke)
    Ok &= check(Ms4 * 2.0 <= BaseMs,
                "4-thread pipeline is at least 2x the sequential speed");
  else
    std::printf("  [SKIP] 4-thread speedup gate (needs >= 4 cores and a "
                "full run; this host has %u)\n",
                Cores);
  return Ok ? 0 : 1;
}
