//===- bench/bench_tab_postprocess_scale.cpp - E10: analysis scalability --===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Paper §4: after topological numbering, "execution time can be
/// propagated from descendants to ancestors after a single traversal of
/// each arc in the call graph".  This bench measures the full analysis
/// pipeline (symbolize, Tarjan, collapse, propagate, order) across graph
/// sizes and compares it against:
///
///  - a naive fixpoint baseline that repeatedly sweeps all arcs until the
///    time assignment converges (what you get without the topological
///    ordering insight), and
///  - the prof(1) flat-only baseline (no propagation at all), which
///    bounds the cost gprof adds over its predecessor.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "core/Analyzer.h"
#include "graph/Generators.h"
#include "prof/ProfBaseline.h"
#include "support/Random.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

using namespace gprof;
using namespace gprof::bench;

namespace {

constexpr Address Base = 0x10000;
constexpr uint64_t FuncSize = 64;

/// Realizes a random DAG as analyzer inputs without quadratic arc
/// deduplication (arcs from the generator are already unique).
void realize(const CallGraph &G, uint64_t Seed, SymbolTable &Syms,
             ProfileData &Data) {
  SplitMix64 Rng(Seed);
  for (NodeId N = 0; N != G.numNodes(); ++N)
    Syms.addSymbol(G.nodeName(N), Base + N * FuncSize, FuncSize);
  cantFail(Syms.finalize());

  Data.TicksPerSecond = 60;
  for (ArcId A = 0; A != G.numArcs(); ++A) {
    const Arc &E = G.arc(A);
    Data.Arcs.push_back({Base + E.From * FuncSize + 10,
                         Base + E.To * FuncSize, E.Count});
  }
  for (NodeId N = 0; N != G.numNodes(); ++N)
    if (G.inArcs(N).empty())
      Data.Arcs.push_back({0, Base + N * FuncSize, 1});

  Histogram H(Base, Base + G.numNodes() * FuncSize, FuncSize);
  for (NodeId N = 0; N != G.numNodes(); ++N) {
    uint64_t Samples = Rng.nextBelow(20);
    for (uint64_t S = 0; S != Samples; ++S)
      H.recordPc(Base + N * FuncSize + 1);
  }
  Data.Hist = std::move(H);
}

/// The strawman: iterate T = S + sum(frac * T_child) until convergence.
/// Returns the number of full arc sweeps needed.
unsigned naiveFixpoint(const CallGraph &G, const ProfileReport &Seeded,
                       std::vector<double> &TotalOut) {
  size_t N = G.numNodes();
  std::vector<double> Self(N), Total(N);
  std::vector<uint64_t> Calls(N);
  for (size_t I = 0; I != N; ++I) {
    Self[I] = Seeded.Functions[I].SelfTime;
    Total[I] = Self[I];
    Calls[I] = Seeded.Functions[I].Calls;
  }
  unsigned Sweeps = 0;
  while (true) {
    ++Sweeps;
    double MaxDelta = 0.0;
    std::vector<double> Next = Self;
    for (ArcId A = 0; A != G.numArcs(); ++A) {
      const Arc &E = G.arc(A);
      if (Calls[E.To] == 0)
        continue;
      Next[E.From] += Total[E.To] * static_cast<double>(E.Count) /
                      static_cast<double>(Calls[E.To]);
    }
    for (size_t I = 0; I != N; ++I)
      MaxDelta = std::max(MaxDelta, std::fabs(Next[I] - Total[I]));
    Total.swap(Next);
    if (MaxDelta < 1e-9 || Sweeps > 10000)
      break;
  }
  TotalOut = Total;
  return Sweeps;
}

} // namespace

int main() {
  banner("E10 (section 4)",
         "single-traversal propagation vs naive fixpoint vs prof");

  std::printf("\n(gprof ms is the FULL pipeline: symbolize + Tarjan + "
              "collapse + propagate + sort;\n fixpoint ms is the "
              "propagation step alone, repeated until convergence — it "
              "traverses\n every arc 'sweeps' times where the topological "
              "method traverses each arc once)\n\n");
  row({"routines", "arcs", "gprof ms", "fixpoint ms", "sweeps", "prof ms",
       "agree"},
      12);

  bool Ok = true;
  double LastGprofMs = 0.0;

  for (uint32_t N : {200u, 1000u, 5000u, 20000u, 50000u}) {
    CallGraph G = makeRandomDag(N, N * 4, 50, /*Seed=*/N);
    SymbolTable Syms;
    ProfileData Data;
    realize(G, N + 1, Syms, Data);

    Analyzer An(std::move(Syms));
    ProfileReport Report;
    double GprofMs = timeMs([&] { Report = cantFail(An.analyze(Data)); });
    LastGprofMs = GprofMs;

    std::vector<double> NaiveTotal;
    unsigned Sweeps = 0;
    double NaiveMs =
        timeMs([&] { Sweeps = naiveFixpoint(G, Report, NaiveTotal); });

    // prof flat-only baseline over the same inputs.
    SymbolTable ProfSyms;
    ProfileData ProfData;
    realize(G, N + 1, ProfSyms, ProfData);
    double ProfMs =
        timeMs([&] { (void)analyzeProf(ProfSyms, ProfData); });

    // Cross-check: both propagation schemes compute the same totals.
    bool Agree = true;
    for (NodeId I = 0; I != G.numNodes(); ++I)
      Agree &= std::fabs(Report.Functions[I].totalTime() - NaiveTotal[I]) <
               1e-6 * (1.0 + NaiveTotal[I]);
    Ok &= Agree;

    row({format("%u", N), format("%zu", G.numArcs()),
         formatFixed(GprofMs, 1), formatFixed(NaiveMs, 1),
         format("%u", Sweeps), formatFixed(ProfMs, 1),
         Agree ? "yes" : "NO"},
        12);
  }

  std::printf("\nchecks against the paper:\n");
  Ok &= check(Ok, "single-pass totals equal the fixpoint totals");
  Ok &= check(LastGprofMs < 30000.0,
              "post-processing stays a fast separate pass even at 50k "
              "routines");
  return Ok ? 0 : 1;
}
