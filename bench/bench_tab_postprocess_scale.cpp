//===- bench/bench_tab_postprocess_scale.cpp - E10: analysis scalability --===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Paper §4: after topological numbering, "execution time can be
/// propagated from descendants to ancestors after a single traversal of
/// each arc in the call graph".  This bench measures the full analysis
/// pipeline (symbolize, Tarjan, collapse, propagate, order) across graph
/// sizes and compares it against:
///
///  - a naive fixpoint baseline that repeatedly sweeps all arcs until the
///    time assignment converges (what you get without the topological
///    ordering insight), and
///  - the prof(1) flat-only baseline (no propagation at all), which
///    bounds the cost gprof adds over its predecessor.
///
/// A second section measures the parallel pipeline: wall time of the
/// same analysis at 1/2/4/8 worker threads over a cycle-rich synthetic
/// profile, asserting the listings stay byte-identical at every thread
/// count, and emits BENCH_postprocess_scale.json (threads → ms, speedup)
/// for the perf-tracking tooling.  Run with --smoke for a single
/// quick iteration (the ctest smoke target).
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "core/Analyzer.h"
#include "core/FlatPrinter.h"
#include "core/GraphPrinter.h"
#include "graph/Generators.h"
#include "prof/ProfBaseline.h"
#include "support/Random.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

using namespace gprof;
using namespace gprof::bench;

namespace {

constexpr Address Base = 0x10000;
constexpr uint64_t FuncSize = 64;

/// Realizes a random DAG as analyzer inputs without quadratic arc
/// deduplication (arcs from the generator are already unique).
void realize(const CallGraph &G, uint64_t Seed, SymbolTable &Syms,
             ProfileData &Data) {
  SplitMix64 Rng(Seed);
  for (NodeId N = 0; N != G.numNodes(); ++N)
    Syms.addSymbol(G.nodeName(N), Base + N * FuncSize, FuncSize);
  cantFail(Syms.finalize());

  Data.TicksPerSecond = 60;
  for (ArcId A = 0; A != G.numArcs(); ++A) {
    const Arc &E = G.arc(A);
    Data.Arcs.push_back({Base + E.From * FuncSize + 10,
                         Base + E.To * FuncSize, E.Count});
  }
  for (NodeId N = 0; N != G.numNodes(); ++N)
    if (G.inArcs(N).empty())
      Data.Arcs.push_back({0, Base + N * FuncSize, 1});

  Histogram H(Base, Base + G.numNodes() * FuncSize, FuncSize);
  for (NodeId N = 0; N != G.numNodes(); ++N) {
    uint64_t Samples = Rng.nextBelow(20);
    for (uint64_t S = 0; S != Samples; ++S)
      H.recordPc(Base + N * FuncSize + 1);
  }
  Data.Hist = std::move(H);
}

/// The strawman: iterate T = S + sum(frac * T_child) until convergence.
/// Returns the number of full arc sweeps needed.
unsigned naiveFixpoint(const CallGraph &G, const ProfileReport &Seeded,
                       std::vector<double> &TotalOut) {
  size_t N = G.numNodes();
  std::vector<double> Self(N), Total(N);
  std::vector<uint64_t> Calls(N);
  for (size_t I = 0; I != N; ++I) {
    Self[I] = Seeded.Functions[I].SelfTime;
    Total[I] = Self[I];
    Calls[I] = Seeded.Functions[I].Calls;
  }
  unsigned Sweeps = 0;
  while (true) {
    ++Sweeps;
    double MaxDelta = 0.0;
    std::vector<double> Next = Self;
    for (ArcId A = 0; A != G.numArcs(); ++A) {
      const Arc &E = G.arc(A);
      if (Calls[E.To] == 0)
        continue;
      Next[E.From] += Total[E.To] * static_cast<double>(E.Count) /
                      static_cast<double>(Calls[E.To]);
    }
    for (size_t I = 0; I != N; ++I)
      MaxDelta = std::max(MaxDelta, std::fabs(Next[I] - Total[I]));
    Total.swap(Next);
    if (MaxDelta < 1e-9 || Sweeps > 10000)
      break;
  }
  TotalOut = Total;
  return Sweeps;
}

/// Builds the thread-scaling workload: a random DAG of \p N routines
/// plus rings of back arcs so the condensed graph has real multi-member
/// cycles to collapse and propagate through.
void makeScalingProfile(uint32_t N, SymbolTable &Syms, ProfileData &Data) {
  CallGraph G = makeRandomDag(N, N * 4, 50, /*Seed=*/N);
  realize(G, N + 1, Syms, Data);
  // Close a cycle over every 50th run of 2..18 consecutive routines.
  SplitMix64 Rng(N * 31 + 7);
  for (uint32_t Lo = 0; Lo + 20 < N; Lo += 50) {
    uint32_t Len = 2 + static_cast<uint32_t>(Rng.nextBelow(17));
    for (uint32_t I = 0; I != Len; ++I) {
      uint32_t From = Lo + I, To = Lo + (I + 1) % Len;
      Data.Arcs.push_back({Base + From * FuncSize + 11,
                           Base + To * FuncSize, 1 + Rng.nextBelow(9)});
    }
  }
}

/// The full listings a user would see; byte-compared across thread
/// counts.
std::string renderListings(const ProfileReport &R) {
  return printFlatProfile(R) + "\n" + printCallGraph(R);
}

/// Milliseconds spent in every span named \p Name.
double spanTotalMs(const std::vector<telemetry::SpanRecord> &Spans,
                   const char *Name) {
  uint64_t Ns = 0;
  for (const telemetry::SpanRecord &S : Spans)
    if (S.Name == Name)
      Ns += S.EndNs - S.BeginNs;
  return static_cast<double>(Ns) / 1e6;
}

} // namespace

int main(int argc, char **argv) {
  const bool Smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const int Reps = Smoke ? 1 : 3;

  banner("E10 (section 4)",
         "single-traversal propagation vs naive fixpoint vs prof");

  std::printf("\n(gprof ms is the FULL pipeline: symbolize + Tarjan + "
              "collapse + propagate + sort;\n fixpoint ms is the "
              "propagation step alone, repeated until convergence — it "
              "traverses\n every arc 'sweeps' times where the topological "
              "method traverses each arc once)\n\n");
  row({"routines", "arcs", "gprof ms", "fixpoint ms", "sweeps", "prof ms",
       "agree"},
      12);

  bool Ok = true;
  double LastGprofMs = 0.0;

  std::vector<uint32_t> Sizes = {200u, 1000u, 5000u, 20000u, 50000u};
  if (Smoke)
    Sizes = {200u, 1000u};
  for (uint32_t N : Sizes) {
    CallGraph G = makeRandomDag(N, N * 4, 50, /*Seed=*/N);
    SymbolTable Syms;
    ProfileData Data;
    realize(G, N + 1, Syms, Data);

    Analyzer An(std::move(Syms));
    ProfileReport Report;
    double GprofMs =
        timeMs([&] { Report = cantFail(An.analyze(Data)); }, Reps);
    LastGprofMs = GprofMs;

    std::vector<double> NaiveTotal;
    unsigned Sweeps = 0;
    double NaiveMs =
        timeMs([&] { Sweeps = naiveFixpoint(G, Report, NaiveTotal); }, Reps);

    // prof flat-only baseline over the same inputs.
    SymbolTable ProfSyms;
    ProfileData ProfData;
    realize(G, N + 1, ProfSyms, ProfData);
    double ProfMs =
        timeMs([&] { (void)analyzeProf(ProfSyms, ProfData); }, Reps);

    // Cross-check: both propagation schemes compute the same totals.
    bool Agree = true;
    for (NodeId I = 0; I != G.numNodes(); ++I)
      Agree &= std::fabs(Report.Functions[I].totalTime() - NaiveTotal[I]) <
               1e-6 * (1.0 + NaiveTotal[I]);
    Ok &= Agree;

    row({format("%u", N), format("%zu", G.numArcs()),
         formatFixed(GprofMs, 1), formatFixed(NaiveMs, 1),
         format("%u", Sweeps), formatFixed(ProfMs, 1),
         Agree ? "yes" : "NO"},
        12);
  }

  //--- Parallel pipeline scaling (AnalyzerOptions::Threads). --------------
  const uint32_t ScaleN = 5000;
  SymbolTable ScaleSyms;
  ProfileData ScaleData;
  makeScalingProfile(ScaleN, ScaleSyms, ScaleData);
  const unsigned Cores = std::max(1u, std::thread::hardware_concurrency());

  std::printf("\nparallel pipeline over %u routines (%zu raw arcs, "
              "%u hardware threads):\n\n",
              ScaleN, ScaleData.Arcs.size(), Cores);
  row({"threads", "ms", "speedup", "symbolize", "assign", "propagate",
       "identical"},
      12);

  BenchJson Json("postprocess_scale");
  Json.set("routines", static_cast<uint64_t>(ScaleN));
  Json.set("raw_arcs", static_cast<uint64_t>(ScaleData.Arcs.size()));
  Json.set("hardware_concurrency", static_cast<uint64_t>(Cores));

  std::string Reference;
  double BaseMs = 0.0, Ms4 = 0.0;
  bool AllIdentical = true;
  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    AnalyzerOptions AO;
    AO.Threads = Threads;
    Analyzer An(ScaleSyms, AO);
    ProfileReport R;
    double Ms = timeMs([&] { R = cantFail(An.analyze(ScaleData)); }, Reps);
    std::string Listings = renderListings(R);
    if (Threads == 1) {
      Reference = std::move(Listings);
      BaseMs = Ms;
    } else {
      AllIdentical &= Listings == Reference;
    }
    if (Threads == 4)
      Ms4 = Ms;
    double Speedup = Ms > 0.0 ? BaseMs / Ms : 0.0;

    // One extra instrumented run per thread count: spans are enabled only
    // here, so the timed loop above measured the uninstrumented pipeline.
    telemetry::Registry &Reg = telemetry::Registry::instance();
    Reg.resetValues();
    Reg.enableSpans(true);
    (void)cantFail(An.analyze(ScaleData));
    Reg.enableSpans(false);
    std::vector<telemetry::SpanRecord> Spans = Reg.collectSpans();
    double SymbolizeMs = spanTotalMs(Spans, "analyzer.symbolize");
    double AssignMs = spanTotalMs(Spans, "analyzer.assign");
    double PropagateMs = spanTotalMs(Spans, "analyzer.propagate");

    row({format("%u", Threads), formatFixed(Ms, 1), formatFixed(Speedup, 2),
         formatFixed(SymbolizeMs, 1), formatFixed(AssignMs, 1),
         formatFixed(PropagateMs, 1),
         Threads == 1 ? "-" : (AllIdentical ? "yes" : "NO")},
        12);
    Json.beginRow();
    Json.setRow("threads", static_cast<uint64_t>(Threads));
    Json.setRow("ms", Ms);
    Json.setRow("speedup", Speedup);
    Json.setRow("symbolize_ms", SymbolizeMs);
    Json.setRow("assign_ms", AssignMs);
    Json.setRow("propagate_ms", PropagateMs);
  }
  Json.set("identical_listings", AllIdentical);
  Json.write();

  std::printf("\nchecks against the paper:\n");
  Ok &= check(Ok, "single-pass totals equal the fixpoint totals");
  Ok &= check(LastGprofMs < 30000.0,
              "post-processing stays a fast separate pass even at 50k "
              "routines");
  Ok &= check(AllIdentical,
              "listings are byte-identical at 1/2/4/8 analysis threads");
  if (Cores >= 4 && !Smoke)
    Ok &= check(Ms4 * 2.0 <= BaseMs,
                "4-thread pipeline is at least 2x the sequential speed");
  else
    std::printf("  [SKIP] 4-thread speedup gate (needs >= 4 cores and a "
                "full run; this host has %u)\n",
                Cores);
  return Ok ? 0 : 1;
}
