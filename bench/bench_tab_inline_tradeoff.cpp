//===- bench/bench_tab_inline_tradeoff.cpp - E12: §6's inline trade-off ---===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Paper §6, in both directions: "If this format routine is expanded
/// inline in the output routine, the overhead of a function call and
/// return can be saved for each datum that needs to be formatted", but
/// "the profiling will also become less useful since the loss of routines
/// will make its output more granular.  For example, if the symbol table
/// functions 'lookup', 'insert', and 'delete' are all merged ... it will
/// be impossible to determine the costs of any one of these individual
/// functions from the profile."
///
/// This bench builds a symbol-table-flavoured workload, progressively
/// inline-expands its helper routines, and reports for each step: cycles
/// saved (the optimization working) and profile resolution lost (distinct
/// routines with attributable time).
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "core/Analyzer.h"
#include "runtime/Monitor.h"
#include "vm/CodeGen.h"
#include "vm/VM.h"

#include <cstdio>
#include <vector>

using namespace gprof;
using namespace gprof::bench;

namespace {

/// A hash-table-ish workload built on small helper abstractions, all of
/// them inlinable (single return expressions).
const char *WorkloadSource = R"(
  fn hash1(k) { return (k * 2654435761) % 65536; }
  fn hash2(k) { return (k * 40503 + 17) % 65536; }
  fn slot_of(k) { return (hash1(k) + hash2(k)) % 4096; }
  fn probe_cost(k) { return slot_of(k) % 7 + 1; }

  fn lookup(k) {
    var cost = probe_cost(k);
    var acc = 0;
    var i = 0;
    while (i < cost) { acc = acc + peek(slot_of(k + i)); i = i + 1; }
    return acc;
  }
  fn insert(k) {
    poke(slot_of(k), k);
    return 0;
  }
  fn main() {
    var acc = 0;
    var k = 0;
    while (k < 3000) {
      insert(k * 7);
      acc = acc + lookup(k * 3);
      k = k + 1;
    }
    return acc;
  }
)";

struct Step {
  const char *Label;
  std::vector<std::string> Inlined;
};

struct Measured {
  int64_t Exit;
  uint64_t Cycles;
  size_t RoutinesWithTime;
  size_t RoutinesWithCalls;
};

Measured measure(const std::vector<std::string> &Inlined) {
  CodeGenOptions CG;
  CG.EnableProfiling = true;
  CG.InlineFunctions = Inlined;
  Image Img = compileTLOrDie(WorkloadSource, CG);
  Monitor Mon(Img.lowPc(), Img.highPc());
  VMOptions VO;
  VO.CyclesPerTick = 200;
  VM Machine(Img, VO);
  Machine.setHooks(&Mon);
  RunResult R = cantFail(Machine.run());
  ProfileReport Report = cantFail(analyzeImageProfile(Img, Mon.finish()));

  Measured M;
  M.Exit = R.ExitValue;
  M.Cycles = R.Cycles;
  M.RoutinesWithTime = 0;
  M.RoutinesWithCalls = 0;
  for (const FunctionEntry &F : Report.Functions) {
    if (F.SelfTime > 0.0)
      ++M.RoutinesWithTime;
    if (F.totalCalls() > 0)
      ++M.RoutinesWithCalls;
  }
  return M;
}

} // namespace

int main() {
  banner("E12 (section 6)",
         "inline expansion: call overhead saved vs profile resolution "
         "lost");

  const Step Steps[] = {
      {"none inlined", {}},
      {"+ hash1, hash2", {"hash1", "hash2"}},
      {"+ slot_of", {"hash1", "hash2", "slot_of"}},
      {"+ probe_cost (all)", {"hash1", "hash2", "slot_of", "probe_cost"}},
  };

  std::printf("\n");
  row({"inlining step", "cycles", "saved", "timed routines",
       "called routines"},
      17);

  Measured Base = measure({});
  int64_t ExpectedExit = Base.Exit;
  Measured Last = Base;
  bool Ok = true;

  for (const Step &S : Steps) {
    Measured M = measure(S.Inlined);
    Ok &= M.Exit == ExpectedExit;
    row({S.Label, format("%llu", (unsigned long long)M.Cycles),
         formatPercent(static_cast<double>(Base.Cycles) - M.Cycles,
                       static_cast<double>(Base.Cycles)) +
             "%",
         format("%zu", M.RoutinesWithTime),
         format("%zu", M.RoutinesWithCalls)},
        17);
    Last = M;
  }

  std::printf("\nchecks against the paper:\n");
  Ok &= check(Ok, "inlining never changes program results");
  Ok &= check(Last.Cycles < Base.Cycles,
              "\"the overhead of a function call and return can be "
              "saved for each datum\"");
  Ok &= check(Last.RoutinesWithTime < Base.RoutinesWithTime,
              "\"the loss of routines will make its output more "
              "granular\"");
  Ok &= check(Last.RoutinesWithCalls < Base.RoutinesWithCalls,
              "merged helpers can no longer be told apart in the "
              "profile (the lookup/insert/delete example)");
  return Ok ? 0 : 1;
}
