//===- bench/bench_tab_sampling.cpp - E6: sampling accuracy vs rate -------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Paper §3.2: "If sampling is done too often, the interruptions ...
/// will overwhelm the running of the profiled program.  On the other hand,
/// the program must run for enough sampled intervals that the distribution
/// of the samples accurately represents the distribution of time."
///
/// This bench computes ground-truth per-routine time by sampling every
/// cycle (CyclesPerTick = 1 — a perfect histogram), then sweeps coarser
/// sampling rates and reports how far each flat profile strays from the
/// truth, alongside the sampling overhead that finer rates cost.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "core/Analyzer.h"
#include "runtime/Monitor.h"
#include "vm/CodeGen.h"
#include "vm/VM.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>

using namespace gprof;
using namespace gprof::bench;

namespace {

const char *WorkloadSource = R"(
  fn hot(n) {
    var acc = 0;
    var i = 0;
    while (i < n) { acc = acc + i * i; i = i + 1; }
    return acc;
  }
  fn warm(n) {
    var acc = 0;
    var i = 0;
    while (i < n) { acc = acc + i; i = i + 1; }
    return acc;
  }
  fn cool(n) { return n * 3 + 1; }
  fn main() {
    var acc = 0;
    var round = 0;
    while (round < 60) {
      acc = acc + hot(900);
      acc = acc + warm(450);
      acc = acc + cool(round);
      round = round + 1;
    }
    return acc;
  }
)";

/// Per-routine fraction of total attributed time at a given sampling
/// interval.
std::map<std::string, double> fractionsAt(const Image &Img,
                                          uint64_t CyclesPerTick,
                                          uint64_t &SamplesOut) {
  MonitorOptions MO;
  Monitor Mon(Img.lowPc(), Img.highPc(), MO);
  VMOptions VO;
  VO.CyclesPerTick = CyclesPerTick;
  VM Machine(Img, VO);
  Machine.setHooks(&Mon);
  cantFail(Machine.run());
  ProfileData Data = Mon.finish();
  SamplesOut = Data.Hist.totalSamples();

  ProfileReport R = cantFail(analyzeImageProfile(Img, Data));
  std::map<std::string, double> Fractions;
  for (const FunctionEntry &F : R.Functions)
    Fractions[F.Name] = R.TotalTime > 0 ? F.SelfTime / R.TotalTime : 0.0;
  return Fractions;
}

} // namespace

int main() {
  banner("E6 (section 3.2 claim)",
         "sample-count vs profile accuracy; finer sampling costs more");

  CodeGenOptions CG;
  CG.EnableProfiling = true;
  Image Img = compileTLOrDie(WorkloadSource, CG);

  uint64_t TruthSamples = 0;
  auto Truth = fractionsAt(Img, 1, TruthSamples);

  std::printf("\nground truth (every cycle sampled, %llu samples):\n",
              static_cast<unsigned long long>(TruthSamples));
  for (const auto &[Name, Frac] : Truth)
    if (Frac > 0.001)
      std::printf("  %-8s %5.1f%%\n", Name.c_str(), 100.0 * Frac);

  std::printf("\n");
  row({"cycles/tick", "samples", "max error (pp)"}, 16);

  std::map<uint64_t, double> ErrorAt;
  for (uint64_t Interval : {17ULL, 173ULL, 1733ULL, 17333ULL, 173333ULL}) {
    // Prime-ish intervals avoid resonating with loop periods, exactly as
    // the paper's wall-clock ticks were uncorrelated with program phase.
    uint64_t Samples = 0;
    auto Fracs = fractionsAt(Img, Interval, Samples);
    double MaxErr = 0.0;
    for (const auto &[Name, TrueFrac] : Truth)
      MaxErr = std::max(MaxErr, std::fabs(Fracs[Name] - TrueFrac));
    ErrorAt[Interval] = MaxErr * 100.0;
    row({format("%llu", (unsigned long long)Interval),
         format("%llu", (unsigned long long)Samples),
         formatFixed(MaxErr * 100.0, 2)},
        16);
  }

  std::printf("\nchecks against the paper:\n");
  bool Ok = true;
  Ok &= check(ErrorAt[17ULL] < ErrorAt[173333ULL],
              "more sampled intervals -> distribution closer to the "
              "distribution of time");
  Ok &= check(ErrorAt[17ULL] < 1.0,
              "with dense sampling the profile is within 1 percentage "
              "point of ground truth");
  Ok &= check(ErrorAt[173333ULL] > ErrorAt[1733ULL] ||
                  ErrorAt[173333ULL] > 1.0,
              "too few samples visibly distort the distribution");
  return Ok ? 0 : 1;
}
