//===- bench/bench_fig2_cycle_collapse.cpp - E2: Figures 2 and 3 ----------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 2 modifies Figure 1 by making the routines labelled 3 and 7
/// mutually recursive; Figure 3 shows the graph after the resulting cycle
/// is collapsed into a single node and renumbered (9 nodes).  This bench
/// reproduces the collapse: cycle membership, the condensed DAG's size,
/// and the renumbering property.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "graph/CallGraph.h"
#include "graph/CycleCollapse.h"
#include "graph/Tarjan.h"

#include <cstdio>

using namespace gprof;
using namespace gprof::bench;

namespace {

CallGraph makeFigure2(std::vector<NodeId> &PaperNumber) {
  CallGraph G;
  PaperNumber.assign(11, InvalidNode);
  for (uint32_t N : {6u, 1u, 8u, 10u, 2u, 4u, 9u, 3u, 7u, 5u})
    PaperNumber[N] = G.addNode("node" + std::to_string(N));
  auto Arc = [&](uint32_t F, uint32_t T) {
    G.addArc(PaperNumber[F], PaperNumber[T], 1);
  };
  Arc(10, 9);
  Arc(10, 8);
  Arc(9, 7);
  Arc(9, 6);
  Arc(8, 6);
  Arc(8, 5);
  Arc(7, 4);
  Arc(7, 3);
  Arc(6, 3);
  Arc(5, 3);
  Arc(5, 2);
  Arc(3, 1);
  Arc(4, 1);
  Arc(2, 1);
  Arc(3, 7); // Figure 2's addition: 3 and 7 are mutually recursive.
  return G;
}

} // namespace

int main() {
  banner("E2 (Figures 2-3)",
         "cycle {3,7} discovered, collapsed, and renumbered");

  std::vector<NodeId> PaperNumber;
  CallGraph G = makeFigure2(PaperNumber);
  SCCResult SCCs = findSCCs(G);
  CondensedGraph Cond = collapseCycles(G, SCCs);

  std::printf("\n  original graph: %zu nodes, %zu arcs\n", G.numNodes(),
              G.numArcs());
  std::printf("  condensed graph: %zu nodes, %zu arcs\n",
              Cond.Dag.numNodes(), Cond.Dag.numArcs());
  std::printf("\n  condensed node members (topological number: members)\n");
  for (NodeId C = 0; C != Cond.Dag.numNodes(); ++C) {
    std::string Members;
    for (NodeId M : Cond.Members[C])
      Members += " " + G.nodeName(M);
    std::printf("    %2u:%s%s\n", C + 1, Members.c_str(),
                Cond.isCycle(C) ? "   <- collapsed cycle" : "");
  }

  std::printf("\nchecks against the paper:\n");
  bool AllOk = true;
  AllOk &= check(SCCs.numNontrivialComponents() == 1,
                 "exactly one strongly connected component is nontrivial");
  NodeId CycleNode = Cond.CondensedOf[PaperNumber[3]];
  AllOk &= check(CycleNode == Cond.CondensedOf[PaperNumber[7]] &&
                     Cond.Members[CycleNode].size() == 2,
                 "the cycle is exactly {node3, node7} (Figure 2)");
  AllOk &= check(Cond.Dag.numNodes() == 9,
                 "collapsing yields 9 nodes (Figure 3)");
  AllOk &= check(Cond.Dag.isAcyclic(),
                 "the collapsed graph is acyclic and can be numbered");
  bool OrderOk = true;
  for (ArcId A = 0; A != Cond.Dag.numArcs(); ++A)
    OrderOk &= Cond.Dag.arc(A).From > Cond.Dag.arc(A).To;
  AllOk &= check(OrderOk,
                 "renumbered arcs all go from higher to lower (Figure 3)");
  return AllOk ? 0 : 1;
}
