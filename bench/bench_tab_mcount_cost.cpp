//===- bench/bench_tab_mcount_cost.cpp - E5: arc table access cost --------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Paper §3.1: the arc table "is accessed once per routine call.  Access
/// to it must be as fast as possible so as not to overwhelm the time
/// required to execute the program", which is why gprof hashes on the
/// call-site address with a trivial (identity) hash.  This bench measures
/// the record() fast path of the three arc-table implementations under a
/// realistic call stream — most call sites monomorphic, a few "functional
/// variable" sites with several callees — using google-benchmark, and also
/// reports memory footprints (the space/speed trade the paper discusses).
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "gmon/ProfileData.h"
#include "runtime/ArcTable.h"
#include "runtime/Monitor.h"
#include "support/Random.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

using namespace gprof;

namespace {

constexpr Address LowPc = 0x1000;
constexpr Address HighPc = 0x1000 + (1 << 20); // 1 MiB of "text".

/// A realistic stream of (call site, callee) events: 1000 distinct sites,
/// 95% of them calling a single callee, 5% calling one of 8.
std::vector<std::pair<Address, Address>> makeCallStream(size_t Events,
                                                        uint64_t Seed) {
  SplitMix64 Rng(Seed);
  struct Site {
    Address Pc;
    std::vector<Address> Callees;
  };
  std::vector<Site> Sites;
  for (int I = 0; I != 1000; ++I) {
    Site S;
    S.Pc = LowPc + Rng.nextBelow(HighPc - LowPc);
    size_t NumCallees = Rng.nextBool(0.05) ? 8 : 1;
    for (size_t C = 0; C != NumCallees; ++C)
      S.Callees.push_back(LowPc + Rng.nextBelow(HighPc - LowPc));
    Sites.push_back(std::move(S));
  }
  std::vector<std::pair<Address, Address>> Stream;
  Stream.reserve(Events);
  for (size_t E = 0; E != Events; ++E) {
    // Zipf-ish: low-index sites fire far more often.
    const Site &S = Sites[Rng.nextBelow(1 + Rng.nextBelow(Sites.size()))];
    Stream.emplace_back(S.Pc,
                        S.Callees[Rng.nextBelow(S.Callees.size())]);
  }
  return Stream;
}

const std::vector<std::pair<Address, Address>> &stream() {
  static auto S = makeCallStream(1 << 16, 42);
  return S;
}

template <typename MakeTable>
void runRecordBench(benchmark::State &State, MakeTable Make) {
  const auto &Events = stream();
  auto Table = Make();
  for (auto _ : State) {
    for (const auto &[From, Self] : Events)
      Table->record(From, Self);
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Events.size()));
  benchmark::DoNotOptimize(Table->snapshot());
}

void BM_BsdArcTable(benchmark::State &State) {
  runRecordBench(State, [] {
    return std::make_unique<BsdArcTable>(LowPc, HighPc, 1, 1u << 20);
  });
}
BENCHMARK(BM_BsdArcTable);

void BM_BsdArcTableDense(benchmark::State &State) {
  // HASHFRACTION-style space saving: 4 addresses per froms slot.
  runRecordBench(State, [] {
    return std::make_unique<BsdArcTable>(LowPc, HighPc, 4, 1u << 20);
  });
}
BENCHMARK(BM_BsdArcTableDense);

void BM_OpenAddressing(benchmark::State &State) {
  runRecordBench(State,
                 [] { return std::make_unique<OpenAddressingArcTable>(); });
}
BENCHMARK(BM_OpenAddressing);

void BM_StdMap(benchmark::State &State) {
  runRecordBench(State, [] { return std::make_unique<StdMapArcTable>(); });
}
BENCHMARK(BM_StdMap);

//===----------------------------------------------------------------------===//
// Threaded record cost: the per-thread recorder registry under load
//===----------------------------------------------------------------------===//

/// Best-of-3 wall time (ns per record) for replaying the stream \p Reps
/// times through \p Fn.
template <typename Fn> double nsPerRecord(size_t Records, Fn Run) {
  double Best = 1e300;
  for (int Trial = 0; Trial != 3; ++Trial) {
    auto T0 = std::chrono::steady_clock::now();
    Run();
    auto T1 = std::chrono::steady_clock::now();
    double Ns = std::chrono::duration<double, std::nano>(T1 - T0).count() /
                static_cast<double>(Records);
    if (Ns < Best)
      Best = Ns;
  }
  return Best;
}

/// Replays the stream \p Reps times split round-robin over \p Threads
/// worker threads, all recording through one shared Monitor (so the cost
/// includes the thread-local registry lookup — the real mcount path for a
/// concurrent program).  Returns best-of-3 ns/record.
double threadedMonitorCost(ArcTableKind Kind, unsigned Threads,
                           size_t Reps) {
  const auto &Events = stream();
  MonitorOptions MO;
  MO.TableKind = Kind;
  MO.SampleHistogram = false;
  return nsPerRecord(Events.size() * Reps, [&] {
    Monitor Mon(LowPc, HighPc, MO);
    std::vector<std::thread> Workers;
    for (unsigned T = 0; T != Threads; ++T)
      Workers.emplace_back([&, T] {
        for (size_t R = 0; R != Reps; ++R)
          for (size_t I = T; I < Events.size(); I += Threads)
            Mon.onCall(Events[I].first, Events[I].second);
      });
    for (std::thread &W : Workers)
      W.join();
    benchmark::DoNotOptimize(Mon.extract().Arcs.size());
  });
}

/// Baseline: the bare table, no monitor, single thread.
double directTableCost(size_t Reps) {
  const auto &Events = stream();
  return nsPerRecord(Events.size() * Reps, [&] {
    BsdArcTable Table(LowPc, HighPc, 1, 1u << 20);
    for (size_t R = 0; R != Reps; ++R)
      for (const auto &[From, Self] : Events)
        Table.record(From, Self);
    benchmark::DoNotOptimize(Table.snapshot().size());
  });
}

//===----------------------------------------------------------------------===//
// CCT on/off: what the shadow stack adds to the prologue path
//===----------------------------------------------------------------------===//

/// A balanced call/return/tick stream over a small routine alphabet —
/// the event shape the CCT recorder actually sees (the arc stream above
/// has no returns).  Ends with every frame closed.
struct CctEvent {
  enum Kind { Call, Ret, Tick } K;
  Address FromPc = 0, SelfPc = 0;
};

const std::vector<CctEvent> &cctStream() {
  static auto S = [] {
    SplitMix64 Rng(271828);
    std::vector<CctEvent> Out;
    std::vector<Address> Depth;
    while (Out.size() < (1u << 16)) {
      uint64_t R = Rng.nextBelow(100);
      if (R < 44 && Depth.size() < 16) {
        Address Self = LowPc + Rng.nextBelow(64) * 0x100;
        Address From = LowPc + Rng.nextBelow(48) * 0x40;
        Out.push_back({CctEvent::Call, From, Self});
        Depth.push_back(Self);
      } else if (R < 88 && !Depth.empty()) {
        Out.push_back({CctEvent::Ret, 0, Depth.back()});
        Depth.pop_back();
      } else {
        Out.push_back({CctEvent::Tick, 0, 0});
      }
    }
    while (!Depth.empty()) {
      Out.push_back({CctEvent::Ret, 0, Depth.back()});
      Depth.pop_back();
    }
    return Out;
  }();
  return S;
}

/// Best-of-3 ns/event for replaying the balanced stream \p Reps times on
/// \p Threads threads (each thread replays the whole stream into its own
/// per-thread recorder) with context recording on or off.
double cctMonitorCost(bool Contexts, unsigned Threads, size_t Reps) {
  const auto &Events = cctStream();
  MonitorOptions MO;
  MO.SampleHistogram = false;
  MO.RecordContexts = Contexts;
  return nsPerRecord(Events.size() * Reps * Threads, [&] {
    Monitor Mon(LowPc, HighPc, MO);
    std::vector<std::thread> Workers;
    for (unsigned T = 0; T != Threads; ++T)
      Workers.emplace_back([&] {
        for (size_t R = 0; R != Reps; ++R)
          for (const CctEvent &E : Events) {
            switch (E.K) {
            case CctEvent::Call:
              Mon.onCall(E.FromPc, E.SelfPc);
              break;
            case CctEvent::Ret:
              Mon.onReturn(E.SelfPc);
              break;
            case CctEvent::Tick:
              Mon.onTick(E.SelfPc ? E.SelfPc : LowPc);
              break;
            }
          }
      });
    for (std::thread &W : Workers)
      W.join();
    benchmark::DoNotOptimize(Mon.extract().Contexts.size());
  });
}

/// The CCT on/off section: per-event cost of the full prologue path with
/// context recording off (the arc-only default every existing user is
/// on) and on, at 1/2/8 threads.  The off rows are the no-regression
/// guard: gating the CCT behind MonitorOptions must leave the arc-only
/// path as cheap as it was before the recorder existed.
void runCctSection(bench::BenchJson &Json, double Direct, size_t Reps) {
  bench::banner("E5-cct", "prologue cost with the calling-context tree "
                          "on and off (tlrun --contexts)");
  double OffOneThread = 0, OnOneThread = 0;
  bench::row({"cct", "threads", "ns/event"});
  for (bool Contexts : {false, true}) {
    for (unsigned Threads : {1u, 2u, 8u}) {
      double Ns = cctMonitorCost(Contexts, Threads, Reps);
      if (Threads == 1)
        (Contexts ? OnOneThread : OffOneThread) = Ns;
      Json.beginRow();
      Json.setRow("table", std::string(Contexts ? "cct_on" : "cct_off"));
      Json.setRow("threads", static_cast<uint64_t>(Threads));
      Json.setRow("ns_per_record", Ns);
      bench::row({Contexts ? "on" : "off", format("%u", Threads),
                  format("%.2f", Ns)});
    }
  }
  // The off path folds the balanced stream's returns and ticks (both
  // near-free when contexts are off) into the average, so the bare-table
  // bound used for the arc rows holds with the same headroom.
  bench::check(OffOneThread <= Direct * 2.5 + 5.0,
               "contexts-off prologue path shows no regression from the "
               "CCT feature gate (arc-only users pay nothing)");
  bench::check(OnOneThread <= OffOneThread * 20.0 + 100.0,
               "contexts-on stays within a small constant of the arc-only "
               "path (one shadow-stack push/pop plus a chain probe)");
  Json.set("cct_off_1t_ns_per_event", OffOneThread);
  Json.set("cct_on_1t_ns_per_event", OnOneThread);
}

/// The thread-count section: per-record cost of the shared-Monitor path
/// at 1/2/8 threads for every table kind, against the bare-table
/// baseline.  Emits BENCH_mcount_cost.json for the perf tooling and
/// checks the acceptance claim that routing record() through the
/// per-thread registry does not regress the 1-thread cost.
void runThreadSection(bool Smoke) {
  const size_t Reps = Smoke ? 1 : 8;
  bench::banner("E5-mt", "mcount cost with per-thread recorders "
                         "(docs/RUNTIME_MT.md)");
  bench::BenchJson Json("mcount_cost");
  const auto &Events = stream();
  Json.set("events_per_rep", static_cast<uint64_t>(Events.size()));
  Json.set("reps", static_cast<uint64_t>(Reps));

  double Direct = directTableCost(Reps);
  Json.beginRow();
  Json.setRow("table", std::string("bsd_direct"));
  Json.setRow("threads", static_cast<uint64_t>(1));
  Json.setRow("ns_per_record", Direct);
  bench::row({"table", "threads", "ns/record"});
  bench::row({"bsd (bare table)", "1", format("%.2f", Direct)});

  struct KindRow {
    ArcTableKind Kind;
    const char *Name;
  };
  double MonitorOneThreadBsd = 0;
  for (KindRow K : {KindRow{ArcTableKind::Bsd, "bsd"},
                    KindRow{ArcTableKind::OpenAddressing, "open"},
                    KindRow{ArcTableKind::StdMap, "map"}}) {
    for (unsigned Threads : {1u, 2u, 8u}) {
      double Ns = threadedMonitorCost(K.Kind, Threads, Reps);
      if (K.Kind == ArcTableKind::Bsd && Threads == 1)
        MonitorOneThreadBsd = Ns;
      Json.beginRow();
      Json.setRow("table", std::string(K.Name));
      Json.setRow("threads", static_cast<uint64_t>(Threads));
      Json.setRow("ns_per_record", Ns);
      bench::row({K.Name, format("%u", Threads), format("%.2f", Ns)});
    }
  }

  // The registry adds one thread-local compare to the bare record();
  // allow generous headroom for machine noise, but a regression to a
  // locked or atomic hot path would blow far past this.
  bench::check(MonitorOneThreadBsd <= Direct * 2.5 + 5.0,
               "1-thread monitor record() stays within 2.5x of the bare "
               "table (lock-free per-thread hot path)");
  Json.set("direct_ns_per_record", Direct);
  Json.set("monitor_1t_ns_per_record", MonitorOneThreadBsd);
  runCctSection(Json, Direct, Reps);
  Json.write();
}

} // namespace

int main(int argc, char **argv) {
  // --smoke: one small rep per row, no google-benchmark loops — for the
  // bench_cct_smoke ctest hook, so the CCT on/off section and the
  // BENCH_mcount_cost.json emission cannot rot.
  bool Smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  std::printf("E5: arc-table fast path (one access per routine call, "
              "section 3.1)\n");

  // Space column: the paper trades a large directly-mapped froms[] for a
  // trivial hash.
  {
    BsdArcTable Dense(LowPc, HighPc, 1);
    BsdArcTable Sparse(LowPc, HighPc, 4);
    OpenAddressingArcTable Open;
    for (const auto &[From, Self] : stream()) {
      Dense.record(From, Self);
      Sparse.record(From, Self);
      Open.record(From, Self);
    }
    std::printf("memory after replaying the stream:\n");
    std::printf("  bsd froms density 1 : %8zu KiB (trivial hash, exact "
                "call sites)\n",
                Dense.memoryBytes() / 1024);
    std::printf("  bsd froms density 4 : %8zu KiB (merges neighbouring "
                "sites)\n",
                Sparse.memoryBytes() / 1024);
    std::printf("  open addressing     : %8zu KiB (pair-keyed table the "
                "paper rejected)\n\n",
                Open.memoryBytes() / 1024);
  }

  runThreadSection(Smoke);

  if (!Smoke) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return 0;
}
