//===- bench/bench_tab_mcount_cost.cpp - E5: arc table access cost --------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Paper §3.1: the arc table "is accessed once per routine call.  Access
/// to it must be as fast as possible so as not to overwhelm the time
/// required to execute the program", which is why gprof hashes on the
/// call-site address with a trivial (identity) hash.  This bench measures
/// the record() fast path of the three arc-table implementations under a
/// realistic call stream — most call sites monomorphic, a few "functional
/// variable" sites with several callees — using google-benchmark, and also
/// reports memory footprints (the space/speed trade the paper discusses).
///
//===----------------------------------------------------------------------===//

#include "gmon/ProfileData.h"
#include "runtime/ArcTable.h"
#include "support/Random.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <vector>

using namespace gprof;

namespace {

constexpr Address LowPc = 0x1000;
constexpr Address HighPc = 0x1000 + (1 << 20); // 1 MiB of "text".

/// A realistic stream of (call site, callee) events: 1000 distinct sites,
/// 95% of them calling a single callee, 5% calling one of 8.
std::vector<std::pair<Address, Address>> makeCallStream(size_t Events,
                                                        uint64_t Seed) {
  SplitMix64 Rng(Seed);
  struct Site {
    Address Pc;
    std::vector<Address> Callees;
  };
  std::vector<Site> Sites;
  for (int I = 0; I != 1000; ++I) {
    Site S;
    S.Pc = LowPc + Rng.nextBelow(HighPc - LowPc);
    size_t NumCallees = Rng.nextBool(0.05) ? 8 : 1;
    for (size_t C = 0; C != NumCallees; ++C)
      S.Callees.push_back(LowPc + Rng.nextBelow(HighPc - LowPc));
    Sites.push_back(std::move(S));
  }
  std::vector<std::pair<Address, Address>> Stream;
  Stream.reserve(Events);
  for (size_t E = 0; E != Events; ++E) {
    // Zipf-ish: low-index sites fire far more often.
    const Site &S = Sites[Rng.nextBelow(1 + Rng.nextBelow(Sites.size()))];
    Stream.emplace_back(S.Pc,
                        S.Callees[Rng.nextBelow(S.Callees.size())]);
  }
  return Stream;
}

const std::vector<std::pair<Address, Address>> &stream() {
  static auto S = makeCallStream(1 << 16, 42);
  return S;
}

template <typename MakeTable>
void runRecordBench(benchmark::State &State, MakeTable Make) {
  const auto &Events = stream();
  auto Table = Make();
  for (auto _ : State) {
    for (const auto &[From, Self] : Events)
      Table->record(From, Self);
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Events.size()));
  benchmark::DoNotOptimize(Table->snapshot());
}

void BM_BsdArcTable(benchmark::State &State) {
  runRecordBench(State, [] {
    return std::make_unique<BsdArcTable>(LowPc, HighPc, 1, 1u << 20);
  });
}
BENCHMARK(BM_BsdArcTable);

void BM_BsdArcTableDense(benchmark::State &State) {
  // HASHFRACTION-style space saving: 4 addresses per froms slot.
  runRecordBench(State, [] {
    return std::make_unique<BsdArcTable>(LowPc, HighPc, 4, 1u << 20);
  });
}
BENCHMARK(BM_BsdArcTableDense);

void BM_OpenAddressing(benchmark::State &State) {
  runRecordBench(State,
                 [] { return std::make_unique<OpenAddressingArcTable>(); });
}
BENCHMARK(BM_OpenAddressing);

void BM_StdMap(benchmark::State &State) {
  runRecordBench(State, [] { return std::make_unique<StdMapArcTable>(); });
}
BENCHMARK(BM_StdMap);

} // namespace

int main(int argc, char **argv) {
  std::printf("E5: arc-table fast path (one access per routine call, "
              "section 3.1)\n");

  // Space column: the paper trades a large directly-mapped froms[] for a
  // trivial hash.
  {
    BsdArcTable Dense(LowPc, HighPc, 1);
    BsdArcTable Sparse(LowPc, HighPc, 4);
    OpenAddressingArcTable Open;
    for (const auto &[From, Self] : stream()) {
      Dense.record(From, Self);
      Sparse.record(From, Self);
      Open.record(From, Self);
    }
    std::printf("memory after replaying the stream:\n");
    std::printf("  bsd froms density 1 : %8zu KiB (trivial hash, exact "
                "call sites)\n",
                Dense.memoryBytes() / 1024);
    std::printf("  bsd froms density 4 : %8zu KiB (merges neighbouring "
                "sites)\n",
                Sparse.memoryBytes() / 1024);
    std::printf("  open addressing     : %8zu KiB (pair-keyed table the "
                "paper rejected)\n\n",
                Open.memoryBytes() / 1024);
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
