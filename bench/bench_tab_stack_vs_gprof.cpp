//===- bench/bench_tab_stack_vs_gprof.cpp - E11: the averaging pitfall ----===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper is candid about its central approximation (§4 and the
/// retrospective): "we derive an average time per call that need not
/// reflect reality, e.g., if some calls take longer than others.  Further,
/// when attributing time spent in called functions to their callers, we
/// have only single arcs in the call graph, and so distribute the 'average
/// time' to callers in proportion to how many times they called the
/// function."  And: "Modern profilers solve both these problems by
/// periodically gathering ... complete call stacks."
///
/// This ablation constructs the adversarial case — one routine whose cost
/// depends strongly on its argument, called many times cheaply by one
/// caller and a few times expensively by another — and compares:
///
///  - gprof's propagation (time split by call counts),
///  - the stack-sampling profiler (exact attribution),
///  - ground truth from exhaustive (every-cycle) stack sampling.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "core/Analyzer.h"
#include "runtime/Monitor.h"
#include "stackprof/StackProfiler.h"
#include "vm/CodeGen.h"
#include "vm/VM.h"

#include <cmath>
#include <cstdio>

using namespace gprof;
using namespace gprof::bench;

namespace {

const char *WorkloadSource = R"(
  // process(n) costs time proportional to n: calls are NOT all equal.
  fn process(n) {
    var i = 0;
    var a = 0;
    while (i < n) { a = a + i * i; i = i + 1; }
    return a;
  }
  fn cheap_caller() {
    // 90 tiny requests.
    var i = 0;
    var a = 0;
    while (i < 90) { a = a + process(5); i = i + 1; }
    return a;
  }
  fn expensive_caller() {
    // 2 enormous requests.
    return process(3000) + process(3000);
  }
  fn main() { return cheap_caller() + expensive_caller(); }
)";

struct Attribution {
  double CheapShare = 0.0;     // Fraction of process's time given to
                               // cheap_caller.
  double ExpensiveShare = 0.0; // ... and to expensive_caller.
};

/// gprof's answer: per-arc propagated time from the analyzer.
Attribution gprofAttribution(const Image &Img, uint64_t CyclesPerTick) {
  Monitor Mon(Img.lowPc(), Img.highPc());
  VMOptions VO;
  VO.CyclesPerTick = CyclesPerTick;
  VM Machine(Img, VO);
  Machine.setHooks(&Mon);
  cantFail(Machine.run());
  ProfileReport R = cantFail(analyzeImageProfile(Img, Mon.finish()));

  uint32_t Process = R.findFunction("process");
  uint32_t Cheap = R.findFunction("cheap_caller");
  uint32_t Expensive = R.findFunction("expensive_caller");
  double CheapTime = 0, ExpensiveTime = 0;
  for (const ReportArc &A : R.Arcs) {
    if (A.Child != Process)
      continue;
    if (A.Parent == Cheap)
      CheapTime = A.PropSelf + A.PropChild;
    if (A.Parent == Expensive)
      ExpensiveTime = A.PropSelf + A.PropChild;
  }
  double Total = CheapTime + ExpensiveTime;
  return {CheapTime / Total, ExpensiveTime / Total};
}

/// The stack sampler's answer: per-adjacency sampled time.
Attribution stackAttribution(const Image &Img, uint64_t CyclesPerTick,
                             uint64_t &SamplesOut) {
  StackSampleProfiler Prof;
  VMOptions VO;
  VO.CyclesPerTick = CyclesPerTick;
  VM Machine(Img, VO);
  Machine.setHooks(&Prof);
  cantFail(Machine.run());
  SamplesOut = Prof.sampleCount();
  StackProfile P = Prof.buildProfile(SymbolTable::fromImage(Img));
  double CheapTime = P.arcTime("cheap_caller", "process");
  double ExpensiveTime = P.arcTime("expensive_caller", "process");
  double Total = CheapTime + ExpensiveTime;
  return {CheapTime / Total, ExpensiveTime / Total};
}

} // namespace

int main() {
  banner("E11 (ablation)",
         "call-count averaging vs complete call stacks (the paper's "
         "own pitfall)");

  CodeGenOptions CG;
  CG.EnableProfiling = true;
  Image Img = compileTLOrDie(WorkloadSource, CG);

  uint64_t TruthSamples = 0;
  Attribution Truth = stackAttribution(Img, 1, TruthSamples);
  Attribution Gprof = gprofAttribution(Img, 97);
  uint64_t StackSamples = 0;
  Attribution Stack = stackAttribution(Img, 97, StackSamples);

  std::printf("\nwho is responsible for process()'s time?\n"
              "(cheap_caller makes 90 tiny calls; expensive_caller makes "
              "2 huge ones)\n\n");
  row({"method", "cheap share", "expensive share"}, 20);
  row({"ground truth", formatPercent(Truth.CheapShare, 1.0) + "%",
       formatPercent(Truth.ExpensiveShare, 1.0) + "%"},
      20);
  row({"gprof (count-split)", formatPercent(Gprof.CheapShare, 1.0) + "%",
       formatPercent(Gprof.ExpensiveShare, 1.0) + "%"},
      20);
  row({"stack sampling", formatPercent(Stack.CheapShare, 1.0) + "%",
       formatPercent(Stack.ExpensiveShare, 1.0) + "%"},
      20);

  std::printf("\nchecks against the paper:\n");
  bool Ok = true;
  Ok &= check(Truth.ExpensiveShare > 0.80,
              "ground truth: the 2 huge calls dominate process's time");
  Ok &= check(Gprof.CheapShare > 0.90,
              "gprof distributes by call count (90/92) and so charges the "
              "cheap caller — the documented average-time pitfall");
  Ok &= check(std::fabs(Stack.ExpensiveShare - Truth.ExpensiveShare) < 0.05,
              "complete call stacks attribute within 5pp of ground truth "
              "(the retrospective's 'modern profilers' fix)");
  return Ok ? 0 : 1;
}
