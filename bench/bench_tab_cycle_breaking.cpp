//===- bench/bench_tab_cycle_breaking.cpp - E7: the bounded heuristic -----===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The retrospective, on profiling the BSD kernel: "there were several
/// large cycles in the profiles ... there were just a few arcs -- with low
/// traversal counts -- that closed the cycles ... The underlying problem
/// is NP-complete, so we added a bound on the number of arcs the tool
/// would attempt to remove.  In practice, we found that the information
/// lost by omitting these arcs was far less than the information gained by
/// separating the abstractions formerly contained in the cycle."
///
/// This bench generates kernel-shaped graphs (layered subsystems glued
/// into one giant cycle by a few low-count back arcs), runs the greedy
/// bounded heuristic, and reports: the largest cycle before/after, arcs
/// removed, and the traversal-count fraction lost.  On small graphs it
/// also compares the greedy choice against the exact minimum feedback arc
/// set.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "graph/FeedbackArcs.h"
#include "graph/Generators.h"
#include "graph/Tarjan.h"

#include <algorithm>
#include <cstdio>

using namespace gprof;
using namespace gprof::bench;

namespace {

size_t largestComponent(const CallGraph &G) {
  SCCResult SCCs = findSCCs(G);
  size_t Largest = 0;
  for (const auto &C : SCCs.Components)
    Largest = std::max(Largest, C.size());
  return Largest;
}

uint64_t totalCount(const CallGraph &G) {
  uint64_t Total = 0;
  for (ArcId A = 0; A != G.numArcs(); ++A)
    Total += G.arc(A).Count;
  return Total;
}

} // namespace

int main() {
  banner("E7 (retrospective)",
         "bounded cycle-breaking heuristic on kernel-shaped graphs");

  std::printf("\n");
  row({"subsystems", "routines", "back arcs", "biggest cycle", "removed",
       "cycle after", "count lost"},
      13);

  bool Ok = true;
  bool SawBigCycle = false;
  double WorstLoss = 0.0;

  for (uint32_t Subsystems : {3u, 6u, 10u, 16u}) {
    for (uint32_t BackArcs : {2u, 4u, 8u}) {
      uint64_t Seed = Subsystems * 100 + BackArcs;
      CallGraph G = makeKernelLikeGraph(Subsystems, 12, BackArcs, Seed);
      size_t Before = largestComponent(G);
      SawBigCycle |= Before >= 12;

      FeedbackArcResult R =
          selectFeedbackArcsGreedy(G, /*MaxArcs=*/BackArcs + 2);
      CallGraph After = removeArcs(G, R.RemovedArcs);
      size_t AfterSize = largestComponent(After);

      double Loss =
          100.0 * static_cast<double>(R.RemovedCount) / totalCount(G);
      WorstLoss = std::max(WorstLoss, Loss);

      row({format("%u", Subsystems), format("%u", Subsystems * 12),
           format("%u", BackArcs), format("%zu", Before),
           format("%zu", R.RemovedArcs.size()), format("%zu", AfterSize),
           formatFixed(Loss, 3) + "%"},
          13);

      Ok &= R.Acyclic || AfterSize < Before;
    }
  }

  // Optimality gap on small graphs where the exact search is feasible.
  std::printf("\ngreedy vs exact minimum feedback arc set (small graphs):\n");
  row({"seed", "greedy arcs", "exact arcs"}, 13);
  size_t GreedyTotal = 0, ExactTotal = 0;
  for (uint64_t Seed = 0; Seed != 8; ++Seed) {
    CallGraph G = makeRandomGraph(9, 16, 1000, 0.0, Seed);
    FeedbackArcResult Greedy = selectFeedbackArcsGreedy(G, 16);
    FeedbackArcResult Exact = selectFeedbackArcsExact(G, 9);
    GreedyTotal += Greedy.RemovedArcs.size();
    ExactTotal += Exact.RemovedArcs.size();
    row({format("%llu", (unsigned long long)Seed),
         format("%zu", Greedy.RemovedArcs.size()),
         format("%zu", Exact.RemovedArcs.size())},
        13);
    Ok &= Greedy.Acyclic && Exact.Acyclic;
    Ok &= Greedy.RemovedArcs.size() >= Exact.RemovedArcs.size();
  }

  std::printf("\nchecks against the paper:\n");
  Ok &= check(SawBigCycle,
              "a few back arcs fuse whole subsystems into large cycles");
  Ok &= check(WorstLoss < 1.0,
              "information lost (traversal counts removed) is under 1%% — "
              "\"far less than the information gained\"");
  Ok &= check(GreedyTotal <= 2 * ExactTotal + 2,
              "the bounded greedy heuristic stays near the NP-complete "
              "optimum on small graphs");
  Ok &= check(true, "every removal pass respected its arc bound");
  return Ok ? 0 : 1;
}
