//===- bench/bench_tab_static_graph.cpp - E9: static arc discovery --------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Paper §4: "the program typically does not call every routine on each
/// execution", so gprof crawls the executable for statically apparent
/// arcs and adds the untraversed ones with count zero — both to show the
/// shape of the graph (§6: "the static call information is particularly
/// useful here since the test case you run probably will not exercise the
/// entire program") and to keep cycle membership stable across runs.
///
/// This bench compiles a dispatcher-style program, profiles it under
/// inputs that exercise different paths, and reports dynamic-only vs
/// dynamic+static arc counts and cycle membership per input.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "core/Analyzer.h"
#include "runtime/Monitor.h"
#include "vm/CodeGen.h"
#include "vm/StaticCallScanner.h"
#include "vm/VM.h"

#include <cstdio>

using namespace gprof;
using namespace gprof::bench;

namespace {

/// A dispatcher whose mode decides which subsystem runs; "ping" and
/// "pong" are mutually recursive, but one direction only executes in
/// mode 2, so the cycle is dynamically invisible under mode 1.
const char *WorkloadSource = R"(
  fn format_a(x) { return x * 10; }
  fn format_b(x) { return x * 100; }
  fn ping(n, deep) {
    if (deep > 0) { return pong(n, deep - 1); }
    return n;
  }
  fn pong(n, deep) {
    if (deep > 0) { return ping(n, deep - 1); }
    return n + 1;
  }
  fn dispatch(mode, x) {
    if (mode == 1) { return format_a(x) + ping(x, 0); }
    if (mode == 2) { return format_b(x) + ping(x, 6); }
    return 0;
  }
  fn work(mode) {
    var acc = 0;
    var i = 0;
    while (i < 200) { acc = acc + dispatch(mode, i); i = i + 1; }
    return acc;
  }
  fn main() { return work(1); }
)";

struct Coverage {
  size_t DynamicArcs = 0;
  size_t CombinedArcs = 0;
  size_t StaticOnlyArcs = 0;
  size_t Cycles = 0;
  size_t UnusedRoutines = 0;
};

Coverage coverageFor(const Image &Img, int64_t Mode, bool UseStatic) {
  Monitor Mon(Img.lowPc(), Img.highPc());
  VM Machine(Img);
  Machine.setHooks(&Mon);
  cantFail(Machine.call("work", {Mode}));

  AnalyzerOptions Opts;
  Opts.UseStaticArcs = UseStatic;
  ProfileReport R = cantFail(analyzeImageProfile(Img, Mon.finish(), Opts));

  Coverage C;
  for (const ReportArc &A : R.Arcs) {
    if (A.SelfArc)
      continue;
    ++C.CombinedArcs;
    if (A.Static)
      ++C.StaticOnlyArcs;
    else
      ++C.DynamicArcs;
  }
  C.Cycles = R.Cycles.size();
  C.UnusedRoutines = R.UnusedFunctions.size();
  return C;
}

} // namespace

int main() {
  banner("E9 (section 4)",
         "static arcs complete the picture the test input misses");

  CodeGenOptions CG;
  CG.EnableProfiling = true;
  Image Img = compileTLOrDie(WorkloadSource, CG);

  StaticScanResult Scan = scanStaticCalls(Img);
  std::printf("\nstatic scan of the executable image: %zu direct call "
              "sites, %zu indirect, %zu address-taken routines\n\n",
              Scan.DirectCalls.size(), Scan.IndirectCallSites.size(),
              Scan.AddressTaken.size());

  row({"input", "dyn arcs", "dyn cycles", "+static arcs", "static-only",
       "cycles w/ -c"},
      13);

  Coverage Mode1Dyn = coverageFor(Img, 1, false);
  Coverage Mode1All = coverageFor(Img, 1, true);
  Coverage Mode2Dyn = coverageFor(Img, 2, false);
  Coverage Mode2All = coverageFor(Img, 2, true);

  row({"mode 1", format("%zu", Mode1Dyn.DynamicArcs),
       format("%zu", Mode1Dyn.Cycles),
       format("%zu", Mode1All.CombinedArcs),
       format("%zu", Mode1All.StaticOnlyArcs),
       format("%zu", Mode1All.Cycles)},
      13);
  row({"mode 2", format("%zu", Mode2Dyn.DynamicArcs),
       format("%zu", Mode2Dyn.Cycles),
       format("%zu", Mode2All.CombinedArcs),
       format("%zu", Mode2All.StaticOnlyArcs),
       format("%zu", Mode2All.Cycles)},
      13);

  std::printf("\nchecks against the paper:\n");
  bool Ok = true;
  Ok &= check(Mode1Dyn.DynamicArcs < Mode2Dyn.DynamicArcs,
              "a single input leaves arcs undiscovered dynamically");
  Ok &= check(Mode1All.StaticOnlyArcs > 0,
              "the image crawl adds untraversed arcs with count zero");
  Ok &= check(Mode1Dyn.Cycles == 0 && Mode1All.Cycles == 1,
              "static arcs complete the ping/pong cycle that mode 1 "
              "never exercises (stable cycle membership, section 4)");
  Ok &= check(Mode2Dyn.Cycles == 1,
              "mode 2 exercises the cycle dynamically");
  Ok &= check(Mode1All.CombinedArcs == Mode2All.CombinedArcs,
              "with -c both runs see the same graph shape");
  return Ok ? 0 : 1;
}
