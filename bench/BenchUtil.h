//===- bench/BenchUtil.h - Shared helpers for the experiment benches ------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small table-printing and timing helpers shared by the per-experiment
/// bench binaries.  Each bench regenerates one table or figure from the
/// paper (see DESIGN.md's per-experiment index) and prints PASS/FAIL
/// checks for the paper's qualitative claims.
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_BENCH_BENCHUTIL_H
#define GPROF_BENCH_BENCHUTIL_H

#include "support/Format.h"

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace gprof {
namespace bench {

/// Prints a banner naming the experiment.
inline void banner(const std::string &Id, const std::string &Title) {
  std::printf("\n==============================================================="
              "=\n");
  std::printf("%s: %s\n", Id.c_str(), Title.c_str());
  std::printf("================================================================"
              "\n");
}

/// Prints one row of a fixed-width table.
inline void row(const std::vector<std::string> &Cells, unsigned Width = 14) {
  std::string Line;
  for (const std::string &C : Cells)
    Line += padLeft(C, Width) + "  ";
  std::printf("%s\n", Line.c_str());
}

/// Prints a PASS/FAIL line for a claim check.
inline bool check(bool Ok, const std::string &Claim) {
  std::printf("  [%s] %s\n", Ok ? "PASS" : "FAIL", Claim.c_str());
  return Ok;
}

/// Wall-clock time of \p Fn in milliseconds, best of \p Reps repetitions.
inline double timeMs(const std::function<void()> &Fn, int Reps = 3) {
  double Best = 1e300;
  for (int R = 0; R != Reps; ++R) {
    auto Start = std::chrono::steady_clock::now();
    Fn();
    auto End = std::chrono::steady_clock::now();
    double Ms =
        std::chrono::duration<double, std::milli>(End - Start).count();
    if (Ms < Best)
      Best = Ms;
  }
  return Best;
}

} // namespace bench
} // namespace gprof

#endif // GPROF_BENCH_BENCHUTIL_H
