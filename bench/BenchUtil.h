//===- bench/BenchUtil.h - Shared helpers for the experiment benches ------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small table-printing and timing helpers shared by the per-experiment
/// bench binaries.  Each bench regenerates one table or figure from the
/// paper (see DESIGN.md's per-experiment index) and prints PASS/FAIL
/// checks for the paper's qualitative claims.
///
//===----------------------------------------------------------------------===//

#ifndef GPROF_BENCH_BENCHUTIL_H
#define GPROF_BENCH_BENCHUTIL_H

#include "support/FileUtils.h"
#include "support/Format.h"

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace gprof {
namespace bench {

/// Prints a banner naming the experiment.
inline void banner(const std::string &Id, const std::string &Title) {
  std::printf("\n==============================================================="
              "=\n");
  std::printf("%s: %s\n", Id.c_str(), Title.c_str());
  std::printf("================================================================"
              "\n");
}

/// Prints one row of a fixed-width table.
inline void row(const std::vector<std::string> &Cells, unsigned Width = 14) {
  std::string Line;
  for (const std::string &C : Cells)
    Line += padLeft(C, Width) + "  ";
  std::printf("%s\n", Line.c_str());
}

/// Prints a PASS/FAIL line for a claim check.
inline bool check(bool Ok, const std::string &Claim) {
  std::printf("  [%s] %s\n", Ok ? "PASS" : "FAIL", Claim.c_str());
  return Ok;
}

/// Machine-readable bench output: accumulates scalar fields plus one
/// uniform "results" array and writes BENCH_<name>.json, the file the
/// perf-tracking tooling scrapes.  Values are stored pre-encoded; use the
/// typed set/setRow overloads.
class BenchJson {
public:
  explicit BenchJson(std::string Name) : Name(std::move(Name)) {}

  void set(const std::string &Key, const std::string &Value) {
    Fields.emplace_back(Key, quote(Value));
  }
  void set(const std::string &Key, double Value) {
    Fields.emplace_back(Key, format("%.6g", Value));
  }
  void set(const std::string &Key, uint64_t Value) {
    Fields.emplace_back(Key, format("%llu",
                                    static_cast<unsigned long long>(Value)));
  }
  void set(const std::string &Key, bool Value) {
    Fields.emplace_back(Key, Value ? "true" : "false");
  }

  /// Starts a new row in the "results" array; subsequent setRow calls
  /// fill it.
  void beginRow() { Rows.emplace_back(); }
  void setRow(const std::string &Key, double Value) {
    Rows.back().emplace_back(Key, format("%.6g", Value));
  }
  void setRow(const std::string &Key, uint64_t Value) {
    Rows.back().emplace_back(Key, format("%llu",
                                         static_cast<unsigned long long>(
                                             Value)));
  }
  void setRow(const std::string &Key, const std::string &Value) {
    Rows.back().emplace_back(Key, quote(Value));
  }

  std::string render() const {
    std::string S = "{\n  \"bench\": " + quote(Name);
    for (const auto &[K, V] : Fields)
      S += ",\n  " + quote(K) + ": " + V;
    S += ",\n  \"results\": [";
    for (size_t R = 0; R != Rows.size(); ++R) {
      S += R == 0 ? "\n    {" : ",\n    {";
      for (size_t F = 0; F != Rows[R].size(); ++F)
        S += (F == 0 ? "" : ", ") + quote(Rows[R][F].first) + ": " +
             Rows[R][F].second;
      S += "}";
    }
    S += "\n  ]\n}\n";
    return S;
  }

  /// Writes BENCH_<name>.json into the working directory and reports the
  /// path on stdout.
  void write() const {
    std::string Path = "BENCH_" + Name + ".json";
    if (Error E = writeFileText(Path, render()))
      std::printf("  (could not write %s: %s)\n", Path.c_str(),
                  E.message().c_str());
    else
      std::printf("  wrote %s\n", Path.c_str());
  }

private:
  static std::string quote(const std::string &S) {
    std::string Out = "\"";
    for (char C : S) {
      if (C == '"' || C == '\\')
        Out += '\\';
      Out += C;
    }
    return Out + "\"";
  }

  std::string Name;
  std::vector<std::pair<std::string, std::string>> Fields;
  std::vector<std::vector<std::pair<std::string, std::string>>> Rows;
};

/// Wall-clock time of \p Fn in milliseconds, best of \p Reps repetitions.
inline double timeMs(const std::function<void()> &Fn, int Reps = 3) {
  double Best = 1e300;
  for (int R = 0; R != Reps; ++R) {
    auto Start = std::chrono::steady_clock::now();
    Fn();
    auto End = std::chrono::steady_clock::now();
    double Ms =
        std::chrono::duration<double, std::milli>(End - Start).count();
    if (Ms < Best)
      Best = Ms;
  }
  return Best;
}

} // namespace bench
} // namespace gprof

#endif // GPROF_BENCH_BENCHUTIL_H
