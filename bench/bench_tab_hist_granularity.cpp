//===- bench/bench_tab_hist_granularity.cpp - E13: histogram granularity --===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Retrospective: "The space for the histogram could be controlled by
/// getting a finer or coarser histogram. ... One of us remembers an
/// epiphany of being able to use a histogram array that was four times
/// the size of the text segment of the program, getting a full 32-bit
/// count for each possible program counter value!"
///
/// This bench sweeps the histogram bucket size on a fixed workload and
/// reports, for each: memory used by the histogram, and the attribution
/// error caused by buckets straddling routine boundaries (the samples the
/// analyzer must prorate).  Bucket size 1 is the epiphany: exact
/// attribution at maximal space.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "core/Analyzer.h"
#include "runtime/Monitor.h"
#include "vm/CodeGen.h"
#include "vm/VM.h"

#include <cmath>
#include <cstdio>
#include <map>
#include <string>

using namespace gprof;
using namespace gprof::bench;

namespace {

/// Many small routines back to back, so bucket straddling matters.
std::string makeWorkloadSource() {
  std::string Src;
  for (int I = 0; I != 24; ++I)
    Src += format(R"(
      fn tiny%d(x) { return x * %d + %d; }
    )",
                  I, I + 2, I);
  Src += R"(
    fn main() {
      var acc = 0;
      var i = 0;
      while (i < 4000) {
  )";
  for (int I = 0; I != 24; ++I)
    Src += format("      acc = acc + tiny%d(i);\n", I);
  Src += R"(
        i = i + 1;
      }
      return acc;
    }
  )";
  return Src;
}

std::map<std::string, double> selfTimesAt(const Image &Img,
                                          uint64_t BucketSize,
                                          size_t &HistBytes) {
  MonitorOptions MO;
  MO.HistBucketSize = BucketSize;
  Monitor Mon(Img.lowPc(), Img.highPc(), MO);
  VMOptions VO;
  VO.CyclesPerTick = 53;
  VM Machine(Img, VO);
  Machine.setHooks(&Mon);
  cantFail(Machine.run());
  ProfileData Data = Mon.finish();
  HistBytes = Data.Hist.numBuckets() * sizeof(uint64_t);
  ProfileReport R = cantFail(analyzeImageProfile(Img, Data));
  std::map<std::string, double> Times;
  for (const FunctionEntry &F : R.Functions)
    Times[F.Name] = F.SelfTime;
  return Times;
}

} // namespace

int main() {
  banner("E13 (retrospective)",
         "histogram granularity: space vs attribution precision");

  CodeGenOptions CG;
  CG.EnableProfiling = true;
  Image Img = compileTLOrDie(makeWorkloadSource(), CG);
  std::printf("\ntext segment: %zu bytes, %zu routines\n\n",
              Img.Code.size(), Img.Functions.size());

  size_t ExactBytes = 0;
  auto Exact = selfTimesAt(Img, 1, ExactBytes);
  double Total = 0;
  for (const auto &[Name, T] : Exact)
    Total += T;

  row({"bucket size", "hist KiB", "max error", "mean error"}, 13);
  std::map<uint64_t, double> MaxErr;
  size_t BytesAt1 = 0, BytesAt64 = 0;
  for (uint64_t Bucket : {1ULL, 4ULL, 16ULL, 64ULL, 256ULL}) {
    size_t Bytes = 0;
    auto Times = selfTimesAt(Img, Bucket, Bytes);
    double Max = 0, Sum = 0;
    for (const auto &[Name, T] : Exact) {
      double Err = std::fabs(Times[Name] - T) / (Total > 0 ? Total : 1);
      Max = std::max(Max, Err);
      Sum += Err;
    }
    MaxErr[Bucket] = Max;
    if (Bucket == 1)
      BytesAt1 = Bytes;
    if (Bucket == 64)
      BytesAt64 = Bytes;
    row({format("%llu", (unsigned long long)Bucket),
         format("%.1f", static_cast<double>(Bytes) / 1024.0),
         formatPercent(Max, 1.0) + "%",
         formatPercent(Sum / Exact.size(), 1.0) + "%"},
        13);
  }

  std::printf("\nchecks against the paper:\n");
  bool Ok = true;
  Ok &= check(MaxErr[1] == 0.0,
              "bucket size 1 (the epiphany) attributes every sample "
              "exactly");
  Ok &= check(MaxErr[256] > MaxErr[4],
              "coarser histograms smear time across routine boundaries");
  Ok &= check(BytesAt64 * 32 <= BytesAt1,
              "coarser histograms cost proportionally less space");
  Ok &= check(MaxErr[4] < 0.02,
              "modest coarsening keeps attribution within 2%% — the "
              "practical \"finer or coarser\" dial");
  return Ok ? 0 : 1;
}
