//===- tests/golden_test.cpp - Byte-exact golden output regression --------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The whole pipeline is deterministic, so entire listings can be pinned
/// byte-for-byte: any unintended change to sampling, propagation, sorting
/// or formatting shows up as a golden diff.  Regenerate the expectations
/// with:
///
///   GOLDEN_UPDATE=1 ./build/tests/golden_test
///
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"
#include "core/Annotate.h"
#include "core/ContextTree.h"
#include "core/FlatPrinter.h"
#include "core/GraphPrinter.h"
#include "gmon/GmonFile.h"
#include "prof/ProfBaseline.h"
#include "runtime/Monitor.h"
#include "support/FileUtils.h"
#include "vm/CodeGen.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

using namespace gprof;

namespace {

struct Pipeline {
  Image Img;
  std::string Source;
  ProfileData Data;
  ProfileReport Report;
};

/// Compiles and profiles one corpus program under fixed settings.
Pipeline runCorpusProgram(const std::string &Name) {
  std::string Path = std::string(TL_CORPUS_DIR) + "/" + Name;
  std::string Source = cantFail(readFileText(Path));
  CodeGenOptions CG;
  CG.EnableProfiling = true;
  Pipeline P{compileTLOrDie(Source, CG), Source, {}, {}};
  Monitor Mon(P.Img.lowPc(), P.Img.highPc());
  VMOptions VO;
  VO.CyclesPerTick = 997;
  VM Machine(P.Img, VO);
  Machine.setHooks(&Mon);
  cantFail(Machine.run());
  P.Data = cantFail(readGmon(writeGmon(Mon.finish())));
  P.Report = cantFail(analyzeImageProfile(P.Img, P.Data));
  return P;
}

/// Compares \p Actual against the golden file, or rewrites it when
/// GOLDEN_UPDATE is set.
void checkGolden(const std::string &Name, const std::string &Actual) {
  std::string Path = std::string(GOLDEN_DIR) + "/" + Name;
  if (std::getenv("GOLDEN_UPDATE")) {
    cantFail(writeFileText(Path, Actual));
    SUCCEED() << "updated " << Path;
    return;
  }
  auto Expected = readFileText(Path);
  ASSERT_TRUE(static_cast<bool>(Expected))
      << "missing golden file " << Path
      << " — run GOLDEN_UPDATE=1 ./build/tests/golden_test";
  EXPECT_EQ(Actual, *Expected) << "golden mismatch for " << Name;
}

} // namespace

TEST(GoldenTest, PrimesFlatProfile) {
  Pipeline P = runCorpusProgram("primes.tl");
  checkGolden("primes_flat.txt", printFlatProfile(P.Report));
}

TEST(GoldenTest, PrimesCallGraph) {
  Pipeline P = runCorpusProgram("primes.tl");
  checkGolden("primes_graph.txt", printCallGraph(P.Report));
}

TEST(GoldenTest, PrimesProfBaseline) {
  Pipeline P = runCorpusProgram("primes.tl");
  ProfReport Prof = analyzeProf(SymbolTable::fromImage(P.Img), P.Data);
  checkGolden("primes_prof.txt", printProf(Prof));
}

TEST(GoldenTest, PrimesAnnotatedSource) {
  Pipeline P = runCorpusProgram("primes.tl");
  checkGolden("primes_annotate.txt",
              printAnnotatedSource(annotateSource(P.Img, P.Source, P.Data)));
}

TEST(GoldenTest, CalculatorCallGraphWithCycle) {
  // calculator.tl's mutually recursive evaluator exercises the cycle
  // entry format.
  Pipeline P = runCorpusProgram("calculator.tl");
  checkGolden("calculator_graph.txt", printCallGraph(P.Report));
}

namespace {

/// Like runCorpusProgram, but with context-tree recording on and the
/// analysis run at \p AnalyzerThreads workers.
Pipeline runCorpusProgramWithContexts(const std::string &Name,
                                      unsigned AnalyzerThreads) {
  std::string Path = std::string(TL_CORPUS_DIR) + "/" + Name;
  std::string Source = cantFail(readFileText(Path));
  CodeGenOptions CG;
  CG.EnableProfiling = true;
  Pipeline P{compileTLOrDie(Source, CG), Source, {}, {}};
  MonitorOptions MO;
  MO.RecordContexts = true;
  Monitor Mon(P.Img.lowPc(), P.Img.highPc(), MO);
  VMOptions VO;
  VO.CyclesPerTick = 997;
  VM Machine(P.Img, VO);
  Machine.setHooks(&Mon);
  cantFail(Machine.run());
  P.Data = cantFail(readGmon(writeGmon(Mon.finish())));
  AnalyzerOptions AO;
  AO.Threads = AnalyzerThreads;
  P.Report = cantFail(analyzeImageProfile(P.Img, P.Data, AO));
  return P;
}

} // namespace

TEST(GoldenTest, ContextsListing) {
  // The gprof --contexts listing for the context-dependent-cost corpus
  // program, pinned byte-exact at every analyzer --threads count (the
  // "output is identical for every N" contract extends to the new
  // listing).
  std::string Reference;
  for (unsigned Threads : {1u, 2u, 8u}) {
    Pipeline P = runCorpusProgramWithContexts("contexts.tl", Threads);
    SymbolTable Syms = SymbolTable::fromImage(P.Img);
    ContextTree Tree = cantFail(ContextTree::build(P.Data, Syms));
    std::string Listing = printContexts(Tree);
    if (Threads == 1) {
      Reference = Listing;
      checkGolden("contexts_listing.txt", Listing);
    } else {
      EXPECT_EQ(Listing, Reference) << "--threads " << Threads;
    }
  }
}

TEST(GoldenTest, ContextsPropagationError) {
  // The --prop-error table over the same run: cheap_user/costly_user
  // carry the paper-§6 misattribution this program is built to force;
  // a golden diff here means the propagation or the exact side moved.
  std::string Reference;
  for (unsigned Threads : {1u, 2u, 8u}) {
    Pipeline P = runCorpusProgramWithContexts("contexts.tl", Threads);
    SymbolTable Syms = SymbolTable::fromImage(P.Img);
    ContextTree Tree = cantFail(ContextTree::build(P.Data, Syms));
    std::string Table = printPropagationError(propagationError(P.Report, Tree));
    if (Threads == 1) {
      Reference = Table;
      checkGolden("contexts_properr.txt", Table);
    } else {
      EXPECT_EQ(Table, Reference) << "--threads " << Threads;
    }
  }
}
