//===- tests/misc_test.cpp - Remaining edge-case coverage -----------------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"
#include "core/SyntheticProfile.h"
#include "gmon/GmonFile.h"
#include "vm/CodeGen.h"
#include "vm/Disassembler.h"
#include "vm/StaticCallScanner.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

using namespace gprof;

//===----------------------------------------------------------------------===//
// Disassembler operand rendering
//===----------------------------------------------------------------------===//

TEST(MiscDisasmTest, OperandsRendered) {
  CodeGenOptions CG;
  CG.EnableProfiling = true;
  Image Img = compileTLOrDie(R"(
    var g = 3;
    fn f(x) { return x; }
    fn main() {
      var h = &f;
      var acc = g;
      while (acc < 5) { acc = acc + h(1); }
      poke(0, acc);
      return peek(0);
    }
  )",
                             CG);
  std::string Listing = disassemble(Img);
  EXPECT_NE(Listing.find("pushfunc   f"), std::string::npos);
  EXPECT_NE(Listing.find("calli      1 args"), std::string::npos);
  EXPECT_NE(Listing.find("loadglobal global 0"), std::string::npos);
  EXPECT_NE(Listing.find("storelocal slot 0"), std::string::npos);
  EXPECT_NE(Listing.find("jz"), std::string::npos);
  EXPECT_NE(Listing.find("memload"), std::string::npos);
  EXPECT_NE(Listing.find("memstore"), std::string::npos);
  // Every line with a pc is within the code segment.
  EXPECT_EQ(Listing.find("<illegal"), std::string::npos);
}

TEST(MiscDisasmTest, SingleInstructionHelper) {
  Image Img = compileTLOrDie("fn main() { return 7; }");
  std::string Line = disassembleInstruction(Img, Img.Functions[0].Addr);
  EXPECT_NE(Line.find("push"), std::string::npos);
  EXPECT_NE(Line.find("7"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Static scanning of profiled images
//===----------------------------------------------------------------------===//

TEST(MiscStaticScanTest, McountProloguesDoNotConfuseTheScan) {
  CodeGenOptions CG;
  CG.EnableProfiling = true;
  Image Img = compileTLOrDie(R"(
    fn a() { return b(); }
    fn b() { return 1; }
    fn main() { return a(); }
  )",
                             CG);
  StaticScanResult Scan = scanStaticCalls(Img);
  ASSERT_EQ(Scan.DirectCalls.size(), 2u);
  for (const StaticArc &A : Scan.DirectCalls)
    EXPECT_NE(Img.findFunctionAt(A.TargetPc), nullptr);
}

//===----------------------------------------------------------------------===//
// Analyzer edge paths
//===----------------------------------------------------------------------===//

TEST(MiscAnalyzerTest, ArcsIntoUnknownCodeSkipped) {
  SyntheticProfileBuilder B(100);
  uint32_t Main = B.addFunction("main");
  B.addSpontaneous(Main);
  auto In = B.build();
  // An arc whose callee lies outside every symbol: dropped, not crashed.
  In.Data.addArc(In.Syms.symbol(0).Addr + 5, /*SelfPc=*/0x999999, 7);
  Analyzer A(std::move(In.Syms));
  ProfileReport R = cantFail(A.analyze(In.Data));
  EXPECT_EQ(R.Functions[0].Calls, 1u); // Only the spontaneous one.
}

TEST(MiscAnalyzerTest, DeleteSelfArcZeroesRecursion) {
  SyntheticProfileBuilder B(100);
  uint32_t Main = B.addFunction("main");
  uint32_t Rec = B.addFunction("rec");
  B.addSpontaneous(Main);
  B.addCall(Main, Rec, 2);
  B.addCall(Rec, Rec, 9);
  auto In = B.build();
  AnalyzerOptions Opts;
  Opts.DeleteArcs = {{"rec", "rec"}};
  Analyzer A(std::move(In.Syms), Opts);
  ProfileReport R = cantFail(A.analyze(In.Data));
  uint32_t RecFn = R.findFunction("rec");
  EXPECT_EQ(R.Functions[RecFn].SelfCalls, 0u);
  EXPECT_EQ(R.Functions[RecFn].Calls, 2u);
}

TEST(MiscAnalyzerTest, EmptyProfileDataAnalyzes) {
  SyntheticProfileBuilder B(100);
  B.addFunction("main");
  auto In = B.build();
  ProfileData Empty;
  Analyzer A(std::move(In.Syms));
  ProfileReport R = cantFail(A.analyze(Empty));
  EXPECT_EQ(R.TotalTime, 0.0);
  EXPECT_EQ(R.UnusedFunctions.size(), 1u);
}

//===----------------------------------------------------------------------===//
// Gmon boundary conditions
//===----------------------------------------------------------------------===//

TEST(MiscGmonTest, ZeroHzRejected) {
  ProfileData D;
  auto Bytes = writeGmon(D);
  // Patch hz (offset 8..16) to zero.
  for (int I = 8; I != 16; ++I)
    Bytes[I] = 0;
  auto R = readGmon(Bytes);
  EXPECT_FALSE(static_cast<bool>(R));
  (void)R.takeError();
}

TEST(MiscGmonTest, ZeroRunsRejected) {
  ProfileData D;
  auto Bytes = writeGmon(D);
  // Patch runs (offset 16..20) to zero.
  for (int I = 16; I != 20; ++I)
    Bytes[I] = 0;
  auto R = readGmon(Bytes);
  EXPECT_FALSE(static_cast<bool>(R));
  (void)R.takeError();
}

//===----------------------------------------------------------------------===//
// VM::call interplay with data memory
//===----------------------------------------------------------------------===//

TEST(MiscVMTest, MemoryPersistsAcrossCalls) {
  Image Img = compileTLOrDie(R"(
    fn store(i, v) { return poke(i, v); }
    fn load(i) { return peek(i); }
    fn main() { return 0; }
  )");
  VM Machine(Img);
  cantFail(Machine.call("store", {3, 99}));
  EXPECT_EQ(cantFail(Machine.call("load", {3})).ExitValue, 99);
  Machine.resetMemory();
  EXPECT_EQ(cantFail(Machine.call("load", {3})).ExitValue, 0);
}

TEST(MiscVMTest, ConfigurableMemorySize) {
  Image Img = compileTLOrDie("fn main() { return poke(9, 1); }");
  VMOptions Small;
  Small.MemoryWords = 8;
  VM Machine(Img, Small);
  auto R = Machine.run();
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_NE(R.message().find("out of range"), std::string::npos);
  (void)R.takeError();
}
