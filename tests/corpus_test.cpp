//===- tests/corpus_test.cpp - Sweep over the TL example corpus -----------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles and runs every .tl program in examples/tl twice — plain and
/// with profiling prologues — and checks the system-wide invariants on
/// each: identical program results, conserved time attribution, exact
/// image round trips, and deterministic profiles.
///
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"
#include "core/FlatPrinter.h"
#include "core/GraphPrinter.h"
#include "gmon/GmonFile.h"
#include "runtime/Monitor.h"
#include "support/FileUtils.h"
#include "vm/CodeGen.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <dirent.h>
#include <string>
#include <vector>

using namespace gprof;

namespace {

std::vector<std::string> corpusFiles() {
  std::vector<std::string> Files;
  DIR *Dir = opendir(TL_CORPUS_DIR);
  if (!Dir)
    return Files;
  while (dirent *Entry = readdir(Dir)) {
    std::string Name = Entry->d_name;
    if (Name.size() > 3 && Name.substr(Name.size() - 3) == ".tl")
      Files.push_back(std::string(TL_CORPUS_DIR) + "/" + Name);
  }
  closedir(Dir);
  std::sort(Files.begin(), Files.end());
  return Files;
}

class CorpusTest : public testing::TestWithParam<std::string> {};

} // namespace

TEST(CorpusDiscoveryTest, CorpusIsPresent) {
  EXPECT_GE(corpusFiles().size(), 5u) << "expected the TL corpus at "
                                      << TL_CORPUS_DIR;
}

TEST_P(CorpusTest, CompilesRunsAndProfiles) {
  auto Source = readFileText(GetParam());
  ASSERT_TRUE(static_cast<bool>(Source)) << Source.message();

  // Plain and profiled compilations.
  Image Plain = compileTLOrDie(*Source);
  CodeGenOptions CG;
  CG.EnableProfiling = true;
  Image Profiled = compileTLOrDie(*Source, CG);

  // The image round-trips exactly.
  auto Reloaded = Image::deserialize(Profiled.serialize());
  ASSERT_TRUE(static_cast<bool>(Reloaded));
  EXPECT_EQ(Reloaded->Code, Profiled.Code);

  // Plain run.
  VM PlainVM(Plain);
  auto PlainRun = PlainVM.run();
  ASSERT_TRUE(static_cast<bool>(PlainRun)) << PlainRun.message();

  // Profiled run under the monitor.
  Monitor Mon(Profiled.lowPc(), Profiled.highPc());
  VMOptions VO;
  VO.CyclesPerTick = 500;
  VM ProfVM(Profiled, VO);
  ProfVM.setHooks(&Mon);
  auto ProfRun = ProfVM.run();
  ASSERT_TRUE(static_cast<bool>(ProfRun)) << ProfRun.message();

  // Instrumentation must not change observable behavior.
  EXPECT_EQ(PlainRun->ExitValue, ProfRun->ExitValue);
  EXPECT_EQ(PlainRun->Printed, ProfRun->Printed);

  // The profile analyzes cleanly and conserves time.
  ProfileData Data = cantFail(readGmon(writeGmon(Mon.finish())));
  auto Report = analyzeImageProfile(Profiled, Data);
  ASSERT_TRUE(static_cast<bool>(Report)) << Report.message();
  EXPECT_NEAR(Report->TotalTime, Data.sampledSeconds(), 1e-6);
  EXPECT_NEAR(Report->UnattributedTime, 0.0, 1e-9);

  // main is spontaneous and inherits all time (single entry point,
  // whether or not cycles exist below it).
  uint32_t Main = Report->findFunction("main");
  ASSERT_NE(Main, ~0u);
  EXPECT_EQ(Report->Functions[Main].SpontaneousCalls, 1u);
  EXPECT_NEAR(Report->Functions[Main].totalTime(), Report->TotalTime,
              1e-6);

  // Listings render without issue and mention every executed routine.
  std::string Flat = printFlatProfile(*Report);
  std::string Graph = printCallGraph(*Report);
  for (const FunctionEntry &F : Report->Functions) {
    if (F.isUnused())
      continue;
    EXPECT_NE(Flat.find(F.Name), std::string::npos) << F.Name;
    EXPECT_NE(Graph.find(F.Name), std::string::npos) << F.Name;
  }

  // Deterministic: a second profiled run gives the identical report.
  Monitor Mon2(Profiled.lowPc(), Profiled.highPc());
  VM ProfVM2(Profiled, VO);
  ProfVM2.setHooks(&Mon2);
  cantFail(ProfVM2.run());
  auto Report2 = analyzeImageProfile(Profiled, Mon2.finish());
  ASSERT_TRUE(static_cast<bool>(Report2));
  EXPECT_EQ(printCallGraph(*Report), printCallGraph(*Report2));

  // Static arcs only ever add to the graph.
  AnalyzerOptions WithStatic;
  WithStatic.UseStaticArcs = true;
  auto ReportStatic = analyzeImageProfile(Profiled, Data, WithStatic);
  ASSERT_TRUE(static_cast<bool>(ReportStatic));
  EXPECT_GE(ReportStatic->Arcs.size(), Report->Arcs.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllPrograms, CorpusTest, testing::ValuesIn(corpusFiles()),
    [](const testing::TestParamInfo<std::string> &Info) {
      std::string Name = Info.param;
      size_t Slash = Name.find_last_of('/');
      if (Slash != std::string::npos)
        Name = Name.substr(Slash + 1);
      for (char &C : Name)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });
