//===- tests/store_cli_test.cpp - End-to-end gprof-store CLI tests --------===//
//
// Part of the gprof-repro project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the gprof-store binary as a user would: profile the TL `primes`
/// example in-process (same fixed settings as the golden tests), ingest
/// the gmon shard, and check `put`/`list`/`merge`/`report`/`gc` behavior.
/// The `report` output is pinned against the same golden files as the
/// plain gprof tool, proving the store path is a drop-in front end to the
/// analyzer.
///
//===----------------------------------------------------------------------===//

#include "gmon/GmonFile.h"
#include "runtime/Monitor.h"
#include "support/FileUtils.h"
#include "support/Format.h"
#include "vm/CodeGen.h"
#include "vm/VM.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include <unistd.h>

using namespace gprof;

namespace {

int runRedirected(const std::string &Full, std::string &Output) {
  std::FILE *Pipe = popen(Full.c_str(), "r");
  if (!Pipe)
    return -1;
  Output.clear();
  char Buf[4096];
  while (size_t N = std::fread(Buf, 1, sizeof(Buf), Pipe))
    Output.append(Buf, N);
  int Status = pclose(Pipe);
  return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
}

/// Runs a command, capturing stdout+stderr; returns the exit code.
int runCommand(const std::string &Command, std::string &Output) {
  return runRedirected(Command + " 2>&1", Output);
}

/// Runs a command, capturing only stdout; stderr is discarded.  Used where
/// the output is byte-compared against golden listings, which must not see
/// the cache-feedback and telemetry lines the store emits on stderr.
int runCommandStdout(const std::string &Command, std::string &Output) {
  return runRedirected(Command + " 2>/dev/null", Output);
}

/// Runs a command, capturing only stderr; stdout is discarded.  Note the
/// redirection order: stderr must be pointed at the pipe before stdout is
/// sent to /dev/null.
int runCommandStderr(const std::string &Command, std::string &Output) {
  return runRedirected(Command + " 2>&1 >/dev/null", Output);
}

std::string tempPath(const std::string &Name) {
  // Per-process paths: ctest runs each test case as its own process, so a
  // shared fixed path would race under parallel test execution.
  return testing::TempDir() +
         format("/gprof_store_cli_%d_%s", getpid(), Name.c_str());
}

/// Fixture: profiles primes.tl once under the golden-test settings and
/// writes the image and gmon shard where the CLI can reach them.
class StoreCliTest : public testing::Test {
protected:
  static void SetUpTestSuite() {
    Img = new std::string(tempPath("primes.tlx"));
    Gmon = new std::string(tempPath("primes_gmon.out"));
    StoreDir = new std::string(tempPath("store"));
    std::filesystem::remove_all(*StoreDir);

    std::string Source =
        cantFail(readFileText(std::string(TL_CORPUS_DIR) + "/primes.tl"));
    CodeGenOptions CG;
    CG.EnableProfiling = true;
    Image Compiled = compileTLOrDie(Source, CG);
    Monitor Mon(Compiled.lowPc(), Compiled.highPc());
    VMOptions VO;
    VO.CyclesPerTick = 997;
    VM Machine(Compiled, VO);
    Machine.setHooks(&Mon);
    cantFail(Machine.run());
    cantFail(Compiled.saveToFile(*Img));
    cantFail(writeGmonFile(*Gmon, Mon.finish()));
  }

  static void TearDownTestSuite() {
    std::filesystem::remove_all(*StoreDir);
    std::remove(Img->c_str());
    std::remove(Gmon->c_str());
    delete Img;
    delete Gmon;
    delete StoreDir;
  }

  static std::string *Img, *Gmon, *StoreDir;
};

std::string *StoreCliTest::Img = nullptr;
std::string *StoreCliTest::Gmon = nullptr;
std::string *StoreCliTest::StoreDir = nullptr;

std::string golden(const std::string &Name) {
  return cantFail(readFileText(std::string(GOLDEN_DIR) + "/" + Name));
}

} // namespace

TEST_F(StoreCliTest, PutListMergeReportGc) {
  std::string Out;

  // put: prints "<digest> <path>" and is idempotent.
  int Rc = runCommand(format("%s put %s --image %s %s", GPROF_STORE_PATH,
                             StoreDir->c_str(), Img->c_str(), Gmon->c_str()),
                      Out);
  ASSERT_EQ(Rc, 0) << Out;
  ASSERT_GE(Out.size(), 64u);
  std::string Digest = Out.substr(0, 64);
  EXPECT_NE(Out.find(*Gmon), std::string::npos);

  Rc = runCommand(format("%s put %s %s", GPROF_STORE_PATH, StoreDir->c_str(),
                         Gmon->c_str()),
                  Out);
  EXPECT_EQ(Rc, 0) << Out;
  EXPECT_EQ(Out.substr(0, 64), Digest) << "re-ingest changed the digest";

  // list: one shard, shown by digest prefix.
  Rc = runCommand(format("%s list %s", GPROF_STORE_PATH, StoreDir->c_str()),
                  Out);
  EXPECT_EQ(Rc, 0) << Out;
  EXPECT_NE(Out.find(Digest.substr(0, 12)), std::string::npos);
  EXPECT_NE(Out.find("1 shard(s)"), std::string::npos);

  // merge: computes an aggregate, then serves it from the cache.
  Rc = runCommand(format("%s merge %s -j 2", GPROF_STORE_PATH,
                         StoreDir->c_str()),
                  Out);
  EXPECT_EQ(Rc, 0) << Out;
  EXPECT_NE(Out.find("aggregate"), std::string::npos);
  EXPECT_EQ(Out.find("[cached]"), std::string::npos);
  Rc = runCommand(format("%s merge %s", GPROF_STORE_PATH, StoreDir->c_str()),
                  Out);
  EXPECT_EQ(Rc, 0) << Out;
  EXPECT_NE(Out.find("[cached]"), std::string::npos);

  // --stats dumps the store telemetry as flat stats JSON on stderr; the
  // cached merge counts one cache hit and no misses.
  Rc = runCommandStderr(format("%s merge %s --stats", GPROF_STORE_PATH,
                               StoreDir->c_str()),
                        Out);
  EXPECT_EQ(Rc, 0) << Out;
  EXPECT_NE(Out.find("\"bench\": \"gprof_store_stats\""), std::string::npos)
      << Out;
  EXPECT_NE(Out.find("{\"metric\": \"store.merge.cache_hits\", "
                     "\"kind\": \"gauge\", \"value\": 1}"),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("{\"metric\": \"store.merge.cache_misses\", "
                     "\"kind\": \"gauge\", \"value\": 0}"),
            std::string::npos)
      << Out;

  // gc: the cached aggregate covers the live full member set, so it is
  // retained — the next default report stays a cache hit.
  Rc = runCommand(format("%s gc %s", GPROF_STORE_PATH, StoreDir->c_str()),
                  Out);
  EXPECT_EQ(Rc, 0) << Out;
  EXPECT_NE(Out.find("0 stale cached aggregate(s) (1 retained)"),
            std::string::npos);
  Rc = runCommand(format("%s merge %s", GPROF_STORE_PATH, StoreDir->c_str()),
                  Out);
  EXPECT_EQ(Rc, 0) << Out;
  EXPECT_NE(Out.find("[cached]"), std::string::npos);
}

TEST_F(StoreCliTest, ReportMatchesGoldenListings) {
  std::string StorePath = tempPath("golden_store");
  std::filesystem::remove_all(StorePath);
  std::string Out;
  int Rc = runCommand(format("%s put %s %s", GPROF_STORE_PATH,
                             StorePath.c_str(), Gmon->c_str()),
                      Out);
  ASSERT_EQ(Rc, 0) << Out;

  // The store's flat profile is byte-identical to the gprof golden file.
  Rc = runCommandStdout(format("%s report --flat-only %s %s",
                               GPROF_STORE_PATH, StorePath.c_str(),
                               Img->c_str()),
                        Out);
  ASSERT_EQ(Rc, 0) << Out;
  EXPECT_EQ(Out, golden("primes_flat.txt"));

  // And so is the call graph profile.
  Rc = runCommandStdout(format("%s report --graph-only %s %s",
                               GPROF_STORE_PATH, StorePath.c_str(),
                               Img->c_str()),
                        Out);
  ASSERT_EQ(Rc, 0) << Out;
  EXPECT_EQ(Out, golden("primes_graph.txt"));

  // The cache feedback lands on stderr: by now the aggregate was cached
  // by the earlier reports, so this run announces a cache hit.
  Rc = runCommandStderr(format("%s report --flat-only %s %s",
                               GPROF_STORE_PATH, StorePath.c_str(),
                               Img->c_str()),
                        Out);
  ASSERT_EQ(Rc, 0) << Out;
  EXPECT_NE(Out.find("[cache hit]"), std::string::npos) << Out;
  std::filesystem::remove_all(StorePath);
}

TEST_F(StoreCliTest, CompactAndWindowedReport) {
  std::string StorePath = tempPath("compact_store");
  std::filesystem::remove_all(StorePath);
  std::string Out;

  // Backfill a shard with an explicit capture stamp.
  int Rc = runCommand(format("%s put --capture-time 500 %s %s",
                             GPROF_STORE_PATH, StorePath.c_str(),
                             Gmon->c_str()),
                      Out);
  ASSERT_EQ(Rc, 0) << Out;

  // A window covering the stamp selects the shard; the listing matches
  // the unwindowed golden output.
  Rc = runCommandStdout(format("%s report --flat-only --since 400 "
                               "--until 600 %s %s",
                               GPROF_STORE_PATH, StorePath.c_str(),
                               Img->c_str()),
                        Out);
  ASSERT_EQ(Rc, 0) << Out;
  EXPECT_EQ(Out, golden("primes_flat.txt"));

  // A window past the stamp selects nothing — and says so, instead of
  // silently reporting over everything.
  Rc = runCommand(format("%s report --since 600 %s %s", GPROF_STORE_PATH,
                         StorePath.c_str(), Img->c_str()),
                  Out);
  EXPECT_NE(Rc, 0);
  EXPECT_NE(Out.find("no shards captured"), std::string::npos) << Out;

  // compact on a store below the fanout has nothing to fold but reports
  // the layout either way.
  Rc = runCommand(format("%s compact %s", GPROF_STORE_PATH,
                         StorePath.c_str()),
                  Out);
  EXPECT_EQ(Rc, 0) << Out;
  EXPECT_NE(Out.find("0 step(s)"), std::string::npos) << Out;
  EXPECT_NE(Out.find("1 shard(s) in 0 run(s)"), std::string::npos) << Out;

  // Retention expiry below the stamp keeps the shard.
  Rc = runCommand(format("%s gc --expire-before 400 %s", GPROF_STORE_PATH,
                         StorePath.c_str()),
                  Out);
  EXPECT_EQ(Rc, 0) << Out;
  Rc = runCommand(format("%s list %s", GPROF_STORE_PATH, StorePath.c_str()),
                  Out);
  EXPECT_EQ(Rc, 0) << Out;
  EXPECT_NE(Out.find("1 shard(s)"), std::string::npos) << Out;
  std::filesystem::remove_all(StorePath);
}

TEST_F(StoreCliTest, RejectsUnknownCommandAndMissingShard) {
  std::string Out;
  int Rc = runCommand(format("%s frobnicate", GPROF_STORE_PATH), Out);
  EXPECT_NE(Rc, 0);
  EXPECT_NE(Out.find("unknown command"), std::string::npos);

  std::string StorePath = tempPath("err_store");
  std::filesystem::remove_all(StorePath);
  Rc = runCommand(format("%s put %s %s", GPROF_STORE_PATH, StorePath.c_str(),
                         Gmon->c_str()),
                  Out);
  ASSERT_EQ(Rc, 0) << Out;
  Rc = runCommand(format("%s merge %s ffffffffffff", GPROF_STORE_PATH,
                         StorePath.c_str()),
                  Out);
  EXPECT_NE(Rc, 0);
  EXPECT_NE(Out.find("no shard matches"), std::string::npos) << Out;
  std::filesystem::remove_all(StorePath);
}

TEST_F(StoreCliTest, HelpTextsWork) {
  std::string Out;
  int Rc = runCommand(format("%s --help", GPROF_STORE_PATH), Out);
  EXPECT_EQ(Rc, 0);
  EXPECT_NE(Out.find("USAGE"), std::string::npos);
  for (const char *Cmd : {"put", "list", "merge", "report", "gc",
                          "compact"}) {
    Rc = runCommand(format("%s %s --help", GPROF_STORE_PATH, Cmd), Out);
    EXPECT_EQ(Rc, 0) << Cmd;
    EXPECT_NE(Out.find("USAGE"), std::string::npos) << Cmd;
  }
}
